# Empty dependencies file for test_uthread.
# This may be replaced when dependencies are built.
