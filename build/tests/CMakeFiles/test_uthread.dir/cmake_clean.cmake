file(REMOVE_RECURSE
  "CMakeFiles/test_uthread.dir/test_uthread.cpp.o"
  "CMakeFiles/test_uthread.dir/test_uthread.cpp.o.d"
  "test_uthread"
  "test_uthread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
