# Empty dependencies file for test_paper_api.
# This may be replaced when dependencies are built.
