file(REMOVE_RECURSE
  "CMakeFiles/test_bfs_mpi.dir/test_bfs_mpi.cpp.o"
  "CMakeFiles/test_bfs_mpi.dir/test_bfs_mpi.cpp.o.d"
  "test_bfs_mpi"
  "test_bfs_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bfs_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
