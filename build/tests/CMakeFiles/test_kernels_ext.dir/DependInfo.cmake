
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kernels_ext.cpp" "tests/CMakeFiles/test_kernels_ext.dir/test_kernels_ext.cpp.o" "gcc" "tests/CMakeFiles/test_kernels_ext.dir/test_kernels_ext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/gmt_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gmt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gmt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gmt_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gmt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/uthread/CMakeFiles/gmt_uthread.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
