# Empty compiler generated dependencies file for test_kernels_ext.
# This may be replaced when dependencies are built.
