file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_ext.dir/test_kernels_ext.cpp.o"
  "CMakeFiles/test_kernels_ext.dir/test_kernels_ext.cpp.o.d"
  "test_kernels_ext"
  "test_kernels_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
