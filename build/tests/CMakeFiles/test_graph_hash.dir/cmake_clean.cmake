file(REMOVE_RECURSE
  "CMakeFiles/test_graph_hash.dir/test_graph_hash.cpp.o"
  "CMakeFiles/test_graph_hash.dir/test_graph_hash.cpp.o.d"
  "test_graph_hash"
  "test_graph_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
