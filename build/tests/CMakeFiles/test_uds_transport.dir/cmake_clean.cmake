file(REMOVE_RECURSE
  "CMakeFiles/test_uds_transport.dir/test_uds_transport.cpp.o"
  "CMakeFiles/test_uds_transport.dir/test_uds_transport.cpp.o.d"
  "test_uds_transport"
  "test_uds_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uds_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
