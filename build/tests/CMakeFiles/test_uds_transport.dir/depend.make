# Empty dependencies file for test_uds_transport.
# This may be replaced when dependencies are built.
