file(REMOVE_RECURSE
  "CMakeFiles/test_collections_prop.dir/test_collections_prop.cpp.o"
  "CMakeFiles/test_collections_prop.dir/test_collections_prop.cpp.o.d"
  "test_collections_prop"
  "test_collections_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collections_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
