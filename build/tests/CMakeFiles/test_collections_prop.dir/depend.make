# Empty dependencies file for test_collections_prop.
# This may be replaced when dependencies are built.
