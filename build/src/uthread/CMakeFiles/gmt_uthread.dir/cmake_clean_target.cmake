file(REMOVE_RECURSE
  "libgmt_uthread.a"
)
