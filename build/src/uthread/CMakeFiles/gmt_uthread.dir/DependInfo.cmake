
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/uthread/context_x86_64.S" "/root/repo/build/src/uthread/CMakeFiles/gmt_uthread.dir/context_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  "/root/repo/include"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uthread/context.cpp" "src/uthread/CMakeFiles/gmt_uthread.dir/context.cpp.o" "gcc" "src/uthread/CMakeFiles/gmt_uthread.dir/context.cpp.o.d"
  "/root/repo/src/uthread/fiber.cpp" "src/uthread/CMakeFiles/gmt_uthread.dir/fiber.cpp.o" "gcc" "src/uthread/CMakeFiles/gmt_uthread.dir/fiber.cpp.o.d"
  "/root/repo/src/uthread/stack.cpp" "src/uthread/CMakeFiles/gmt_uthread.dir/stack.cpp.o" "gcc" "src/uthread/CMakeFiles/gmt_uthread.dir/stack.cpp.o.d"
  "/root/repo/src/uthread/ucontext_switch.cpp" "src/uthread/CMakeFiles/gmt_uthread.dir/ucontext_switch.cpp.o" "gcc" "src/uthread/CMakeFiles/gmt_uthread.dir/ucontext_switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
