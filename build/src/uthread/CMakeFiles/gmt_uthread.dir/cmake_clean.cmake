file(REMOVE_RECURSE
  "CMakeFiles/gmt_uthread.dir/context.cpp.o"
  "CMakeFiles/gmt_uthread.dir/context.cpp.o.d"
  "CMakeFiles/gmt_uthread.dir/context_x86_64.S.o"
  "CMakeFiles/gmt_uthread.dir/fiber.cpp.o"
  "CMakeFiles/gmt_uthread.dir/fiber.cpp.o.d"
  "CMakeFiles/gmt_uthread.dir/stack.cpp.o"
  "CMakeFiles/gmt_uthread.dir/stack.cpp.o.d"
  "CMakeFiles/gmt_uthread.dir/ucontext_switch.cpp.o"
  "CMakeFiles/gmt_uthread.dir/ucontext_switch.cpp.o.d"
  "libgmt_uthread.a"
  "libgmt_uthread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/gmt_uthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
