# Empty compiler generated dependencies file for gmt_uthread.
# This may be replaced when dependencies are built.
