file(REMOVE_RECURSE
  "libgmt_net.a"
)
