# Empty compiler generated dependencies file for gmt_net.
# This may be replaced when dependencies are built.
