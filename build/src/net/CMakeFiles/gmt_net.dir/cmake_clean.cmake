file(REMOVE_RECURSE
  "CMakeFiles/gmt_net.dir/inproc_transport.cpp.o"
  "CMakeFiles/gmt_net.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/gmt_net.dir/network_model.cpp.o"
  "CMakeFiles/gmt_net.dir/network_model.cpp.o.d"
  "CMakeFiles/gmt_net.dir/uds_transport.cpp.o"
  "CMakeFiles/gmt_net.dir/uds_transport.cpp.o.d"
  "libgmt_net.a"
  "libgmt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
