# Empty compiler generated dependencies file for gmt_kernels.
# This may be replaced when dependencies are built.
