file(REMOVE_RECURSE
  "libgmt_kernels.a"
)
