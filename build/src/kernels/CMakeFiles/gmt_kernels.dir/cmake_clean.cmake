file(REMOVE_RECURSE
  "CMakeFiles/gmt_kernels.dir/bfs_gmt.cpp.o"
  "CMakeFiles/gmt_kernels.dir/bfs_gmt.cpp.o.d"
  "CMakeFiles/gmt_kernels.dir/cc_gmt.cpp.o"
  "CMakeFiles/gmt_kernels.dir/cc_gmt.cpp.o.d"
  "CMakeFiles/gmt_kernels.dir/chma_gmt.cpp.o"
  "CMakeFiles/gmt_kernels.dir/chma_gmt.cpp.o.d"
  "CMakeFiles/gmt_kernels.dir/grw_gmt.cpp.o"
  "CMakeFiles/gmt_kernels.dir/grw_gmt.cpp.o.d"
  "CMakeFiles/gmt_kernels.dir/pagerank_gmt.cpp.o"
  "CMakeFiles/gmt_kernels.dir/pagerank_gmt.cpp.o.d"
  "libgmt_kernels.a"
  "libgmt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
