
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/aggregation.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/aggregation.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/aggregation.cpp.o.d"
  "/root/repo/src/runtime/api.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/api.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/api.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/cluster.cpp.o.d"
  "/root/repo/src/runtime/collectives.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/collectives.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/collectives.cpp.o.d"
  "/root/repo/src/runtime/comm_server.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/comm_server.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/comm_server.cpp.o.d"
  "/root/repo/src/runtime/global_memory.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/global_memory.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/global_memory.cpp.o.d"
  "/root/repo/src/runtime/helper.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/helper.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/helper.cpp.o.d"
  "/root/repo/src/runtime/node.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/node.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/node.cpp.o.d"
  "/root/repo/src/runtime/stats_report.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/stats_report.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/stats_report.cpp.o.d"
  "/root/repo/src/runtime/worker.cpp" "src/runtime/CMakeFiles/gmt_runtime.dir/worker.cpp.o" "gcc" "src/runtime/CMakeFiles/gmt_runtime.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/uthread/CMakeFiles/gmt_uthread.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gmt_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
