# Empty dependencies file for gmt_runtime.
# This may be replaced when dependencies are built.
