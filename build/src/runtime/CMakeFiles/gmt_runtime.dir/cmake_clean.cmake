file(REMOVE_RECURSE
  "CMakeFiles/gmt_runtime.dir/aggregation.cpp.o"
  "CMakeFiles/gmt_runtime.dir/aggregation.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/api.cpp.o"
  "CMakeFiles/gmt_runtime.dir/api.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/cluster.cpp.o"
  "CMakeFiles/gmt_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/collectives.cpp.o"
  "CMakeFiles/gmt_runtime.dir/collectives.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/comm_server.cpp.o"
  "CMakeFiles/gmt_runtime.dir/comm_server.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/global_memory.cpp.o"
  "CMakeFiles/gmt_runtime.dir/global_memory.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/helper.cpp.o"
  "CMakeFiles/gmt_runtime.dir/helper.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/node.cpp.o"
  "CMakeFiles/gmt_runtime.dir/node.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/stats_report.cpp.o"
  "CMakeFiles/gmt_runtime.dir/stats_report.cpp.o.d"
  "CMakeFiles/gmt_runtime.dir/worker.cpp.o"
  "CMakeFiles/gmt_runtime.dir/worker.cpp.o.d"
  "libgmt_runtime.a"
  "libgmt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
