file(REMOVE_RECURSE
  "CMakeFiles/gmt_sim.dir/gmt_sim.cpp.o"
  "CMakeFiles/gmt_sim.dir/gmt_sim.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/spmd_sim.cpp.o"
  "CMakeFiles/gmt_sim.dir/spmd_sim.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/workloads_chma.cpp.o"
  "CMakeFiles/gmt_sim.dir/workloads_chma.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/workloads_graph.cpp.o"
  "CMakeFiles/gmt_sim.dir/workloads_graph.cpp.o.d"
  "CMakeFiles/gmt_sim.dir/workloads_micro.cpp.o"
  "CMakeFiles/gmt_sim.dir/workloads_micro.cpp.o.d"
  "libgmt_sim.a"
  "libgmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
