# Empty compiler generated dependencies file for gmt_sim.
# This may be replaced when dependencies are built.
