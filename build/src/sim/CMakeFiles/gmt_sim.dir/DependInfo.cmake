
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gmt_sim.cpp" "src/sim/CMakeFiles/gmt_sim.dir/gmt_sim.cpp.o" "gcc" "src/sim/CMakeFiles/gmt_sim.dir/gmt_sim.cpp.o.d"
  "/root/repo/src/sim/spmd_sim.cpp" "src/sim/CMakeFiles/gmt_sim.dir/spmd_sim.cpp.o" "gcc" "src/sim/CMakeFiles/gmt_sim.dir/spmd_sim.cpp.o.d"
  "/root/repo/src/sim/workloads_chma.cpp" "src/sim/CMakeFiles/gmt_sim.dir/workloads_chma.cpp.o" "gcc" "src/sim/CMakeFiles/gmt_sim.dir/workloads_chma.cpp.o.d"
  "/root/repo/src/sim/workloads_graph.cpp" "src/sim/CMakeFiles/gmt_sim.dir/workloads_graph.cpp.o" "gcc" "src/sim/CMakeFiles/gmt_sim.dir/workloads_graph.cpp.o.d"
  "/root/repo/src/sim/workloads_micro.cpp" "src/sim/CMakeFiles/gmt_sim.dir/workloads_micro.cpp.o" "gcc" "src/sim/CMakeFiles/gmt_sim.dir/workloads_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gmt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gmt_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/uthread/CMakeFiles/gmt_uthread.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
