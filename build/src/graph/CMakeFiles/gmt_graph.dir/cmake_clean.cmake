file(REMOVE_RECURSE
  "CMakeFiles/gmt_graph.dir/dist_graph.cpp.o"
  "CMakeFiles/gmt_graph.dir/dist_graph.cpp.o.d"
  "CMakeFiles/gmt_graph.dir/generator.cpp.o"
  "CMakeFiles/gmt_graph.dir/generator.cpp.o.d"
  "libgmt_graph.a"
  "libgmt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
