
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bfs_mpi.cpp" "src/baselines/CMakeFiles/gmt_baselines.dir/bfs_mpi.cpp.o" "gcc" "src/baselines/CMakeFiles/gmt_baselines.dir/bfs_mpi.cpp.o.d"
  "/root/repo/src/baselines/bfs_upc.cpp" "src/baselines/CMakeFiles/gmt_baselines.dir/bfs_upc.cpp.o" "gcc" "src/baselines/CMakeFiles/gmt_baselines.dir/bfs_upc.cpp.o.d"
  "/root/repo/src/baselines/chma_mpi.cpp" "src/baselines/CMakeFiles/gmt_baselines.dir/chma_mpi.cpp.o" "gcc" "src/baselines/CMakeFiles/gmt_baselines.dir/chma_mpi.cpp.o.d"
  "/root/repo/src/baselines/grw_mpi.cpp" "src/baselines/CMakeFiles/gmt_baselines.dir/grw_mpi.cpp.o" "gcc" "src/baselines/CMakeFiles/gmt_baselines.dir/grw_mpi.cpp.o.d"
  "/root/repo/src/baselines/mpi_like.cpp" "src/baselines/CMakeFiles/gmt_baselines.dir/mpi_like.cpp.o" "gcc" "src/baselines/CMakeFiles/gmt_baselines.dir/mpi_like.cpp.o.d"
  "/root/repo/src/baselines/upc_like.cpp" "src/baselines/CMakeFiles/gmt_baselines.dir/upc_like.cpp.o" "gcc" "src/baselines/CMakeFiles/gmt_baselines.dir/upc_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gmt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gmt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gmt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gmt_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gmt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/uthread/CMakeFiles/gmt_uthread.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
