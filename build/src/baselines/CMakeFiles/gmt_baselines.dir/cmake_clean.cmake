file(REMOVE_RECURSE
  "CMakeFiles/gmt_baselines.dir/bfs_mpi.cpp.o"
  "CMakeFiles/gmt_baselines.dir/bfs_mpi.cpp.o.d"
  "CMakeFiles/gmt_baselines.dir/bfs_upc.cpp.o"
  "CMakeFiles/gmt_baselines.dir/bfs_upc.cpp.o.d"
  "CMakeFiles/gmt_baselines.dir/chma_mpi.cpp.o"
  "CMakeFiles/gmt_baselines.dir/chma_mpi.cpp.o.d"
  "CMakeFiles/gmt_baselines.dir/grw_mpi.cpp.o"
  "CMakeFiles/gmt_baselines.dir/grw_mpi.cpp.o.d"
  "CMakeFiles/gmt_baselines.dir/mpi_like.cpp.o"
  "CMakeFiles/gmt_baselines.dir/mpi_like.cpp.o.d"
  "CMakeFiles/gmt_baselines.dir/upc_like.cpp.o"
  "CMakeFiles/gmt_baselines.dir/upc_like.cpp.o.d"
  "libgmt_baselines.a"
  "libgmt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
