# Empty dependencies file for gmt_baselines.
# This may be replaced when dependencies are built.
