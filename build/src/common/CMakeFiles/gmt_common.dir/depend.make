# Empty dependencies file for gmt_common.
# This may be replaced when dependencies are built.
