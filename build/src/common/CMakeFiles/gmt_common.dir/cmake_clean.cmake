file(REMOVE_RECURSE
  "CMakeFiles/gmt_common.dir/config.cpp.o"
  "CMakeFiles/gmt_common.dir/config.cpp.o.d"
  "CMakeFiles/gmt_common.dir/log.cpp.o"
  "CMakeFiles/gmt_common.dir/log.cpp.o.d"
  "CMakeFiles/gmt_common.dir/time.cpp.o"
  "CMakeFiles/gmt_common.dir/time.cpp.o.d"
  "CMakeFiles/gmt_common.dir/units.cpp.o"
  "CMakeFiles/gmt_common.dir/units.cpp.o.d"
  "libgmt_common.a"
  "libgmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
