file(REMOVE_RECURSE
  "libgmt_common.a"
)
