file(REMOVE_RECURSE
  "libgmt_hash.a"
)
