# Empty dependencies file for gmt_hash.
# This may be replaced when dependencies are built.
