file(REMOVE_RECURSE
  "CMakeFiles/gmt_hash.dir/dist_hash_map.cpp.o"
  "CMakeFiles/gmt_hash.dir/dist_hash_map.cpp.o.d"
  "CMakeFiles/gmt_hash.dir/string_pool.cpp.o"
  "CMakeFiles/gmt_hash.dir/string_pool.cpp.o.d"
  "libgmt_hash.a"
  "libgmt_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
