# Empty compiler generated dependencies file for bench_loc_report.
# This may be replaced when dependencies are built.
