file(REMOVE_RECURSE
  "CMakeFiles/bench_loc_report.dir/bench_loc_report.cpp.o"
  "CMakeFiles/bench_loc_report.dir/bench_loc_report.cpp.o.d"
  "bench_loc_report"
  "bench_loc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
