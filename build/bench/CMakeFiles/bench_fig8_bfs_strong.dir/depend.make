# Empty dependencies file for bench_fig8_bfs_strong.
# This may be replaced when dependencies are built.
