# Empty dependencies file for bench_ablation_bufsize.
# This may be replaced when dependencies are built.
