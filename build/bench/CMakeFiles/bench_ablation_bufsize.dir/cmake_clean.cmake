file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bufsize.dir/bench_ablation_bufsize.cpp.o"
  "CMakeFiles/bench_ablation_bufsize.dir/bench_ablation_bufsize.cpp.o.d"
  "bench_ablation_bufsize"
  "bench_ablation_bufsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bufsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
