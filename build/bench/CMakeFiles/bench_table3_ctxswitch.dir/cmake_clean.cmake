file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ctxswitch.dir/bench_table3_ctxswitch.cpp.o"
  "CMakeFiles/bench_table3_ctxswitch.dir/bench_table3_ctxswitch.cpp.o.d"
  "bench_table3_ctxswitch"
  "bench_table3_ctxswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ctxswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
