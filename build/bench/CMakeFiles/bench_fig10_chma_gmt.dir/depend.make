# Empty dependencies file for bench_fig10_chma_gmt.
# This may be replaced when dependencies are built.
