file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_chma_gmt.dir/bench_fig10_chma_gmt.cpp.o"
  "CMakeFiles/bench_fig10_chma_gmt.dir/bench_fig10_chma_gmt.cpp.o.d"
  "bench_fig10_chma_gmt"
  "bench_fig10_chma_gmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_chma_gmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
