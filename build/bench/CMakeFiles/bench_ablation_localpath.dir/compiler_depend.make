# Empty compiler generated dependencies file for bench_ablation_localpath.
# This may be replaced when dependencies are built.
