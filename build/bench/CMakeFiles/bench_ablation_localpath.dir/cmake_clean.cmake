file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_localpath.dir/bench_ablation_localpath.cpp.o"
  "CMakeFiles/bench_ablation_localpath.dir/bench_ablation_localpath.cpp.o.d"
  "bench_ablation_localpath"
  "bench_ablation_localpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
