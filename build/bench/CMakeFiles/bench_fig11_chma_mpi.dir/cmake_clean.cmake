file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_chma_mpi.dir/bench_fig11_chma_mpi.cpp.o"
  "CMakeFiles/bench_fig11_chma_mpi.dir/bench_fig11_chma_mpi.cpp.o.d"
  "bench_fig11_chma_mpi"
  "bench_fig11_chma_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_chma_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
