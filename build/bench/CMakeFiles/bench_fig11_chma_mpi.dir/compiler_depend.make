# Empty compiler generated dependencies file for bench_fig11_chma_mpi.
# This may be replaced when dependencies are built.
