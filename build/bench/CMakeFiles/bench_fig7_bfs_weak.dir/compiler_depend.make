# Empty compiler generated dependencies file for bench_fig7_bfs_weak.
# This may be replaced when dependencies are built.
