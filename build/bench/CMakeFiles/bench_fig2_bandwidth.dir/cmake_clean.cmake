file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bandwidth.dir/bench_fig2_bandwidth.cpp.o"
  "CMakeFiles/bench_fig2_bandwidth.dir/bench_fig2_bandwidth.cpp.o.d"
  "bench_fig2_bandwidth"
  "bench_fig2_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
