# Empty compiler generated dependencies file for bench_ablation_threadmix.
# This may be replaced when dependencies are built.
