file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_threadmix.dir/bench_ablation_threadmix.cpp.o"
  "CMakeFiles/bench_ablation_threadmix.dir/bench_ablation_threadmix.cpp.o.d"
  "bench_ablation_threadmix"
  "bench_ablation_threadmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_threadmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
