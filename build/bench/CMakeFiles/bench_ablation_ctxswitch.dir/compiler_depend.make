# Empty compiler generated dependencies file for bench_ablation_ctxswitch.
# This may be replaced when dependencies are built.
