file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctxswitch.dir/bench_ablation_ctxswitch.cpp.o"
  "CMakeFiles/bench_ablation_ctxswitch.dir/bench_ablation_ctxswitch.cpp.o.d"
  "bench_ablation_ctxswitch"
  "bench_ablation_ctxswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctxswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
