# Empty dependencies file for bench_fig6_concurrency128.
# This may be replaced when dependencies are built.
