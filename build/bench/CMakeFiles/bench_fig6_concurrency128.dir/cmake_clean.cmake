file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_concurrency128.dir/bench_fig6_concurrency128.cpp.o"
  "CMakeFiles/bench_fig6_concurrency128.dir/bench_fig6_concurrency128.cpp.o.d"
  "bench_fig6_concurrency128"
  "bench_fig6_concurrency128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_concurrency128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
