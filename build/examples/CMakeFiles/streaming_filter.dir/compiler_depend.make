# Empty compiler generated dependencies file for streaming_filter.
# This may be replaced when dependencies are built.
