file(REMOVE_RECURSE
  "CMakeFiles/streaming_filter.dir/streaming_filter.cpp.o"
  "CMakeFiles/streaming_filter.dir/streaming_filter.cpp.o.d"
  "streaming_filter"
  "streaming_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
