file(REMOVE_RECURSE
  "CMakeFiles/gmt_cli.dir/gmt_cli.cpp.o"
  "CMakeFiles/gmt_cli.dir/gmt_cli.cpp.o.d"
  "gmt_cli"
  "gmt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
