# Empty compiler generated dependencies file for gmt_cli.
# This may be replaced when dependencies are built.
