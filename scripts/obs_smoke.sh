#!/usr/bin/env bash
# Observability smoke test: run a small traced BFS through gmt_cli, then
# assert that (a) the emitted Chrome trace is valid JSON containing the
# runtime's signature spans (task lifetimes, aggregation buffer flushes)
# and (b) the stats report shows a nonzero commands/message aggregation
# ratio — i.e. metrics and tracing both observed real remote traffic.
#
# Usage: scripts/obs_smoke.sh <path-to-gmt_cli> [workdir]
set -euo pipefail

cli=${1:?usage: obs_smoke.sh <path-to-gmt_cli> [workdir]}
workdir=${2:-$(mktemp -d)}
mkdir -p "$workdir"
trace="$workdir/obs_smoke_trace.json"
out="$workdir/obs_smoke_out.txt"

"$cli" bfs --nodes=2 --vertices=2000 --stats --trace="$trace" | tee "$out"

[[ -s "$trace" ]] || { echo "FAIL: trace file missing or empty: $trace" >&2; exit 1; }

python3 - "$trace" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)  # throws (and fails the smoke) on malformed JSON

events = doc["traceEvents"]
names = {e.get("name") for e in events}
for required in ("task.lifetime", "task.run", "buffer.flush"):
    if required not in names:
        sys.exit(f"FAIL: no '{required}' span among {len(events)} events")
spans = sum(1 for e in events if e.get("ph") == "X")
print(f"trace OK: {len(events)} events, {spans} spans, "
      f"{len(names)} distinct names")
EOF

grep -E 'commands/message[^0-9]*[1-9][0-9]*\.' "$out" >/dev/null || {
  echo "FAIL: stats report lacks a nonzero commands/message ratio" >&2
  exit 1
}

echo "obs smoke OK"
