#!/usr/bin/env bash
# Repo health check: configure + build, then run the tier-1 suite and the
# fault-injection suite (label "fault") separately so a reliability
# regression is distinguishable from a functional one.
#
# Usage: scripts/check.sh [--asan] [--bench-smoke]
#   --asan         build/test the asan preset instead of default
#   --bench-smoke  also run the perf-smoke benches (short task-pool
#                  concurrency sweep; emits BENCH_*.json perf records)
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
bench_smoke=0
for arg in "$@"; do
  case "$arg" in
    --asan) preset=asan ;;
    --bench-smoke) bench_smoke=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"

builddir=build
[[ "$preset" == "asan" ]] && builddir=build-asan

echo "== tier-1 tests =="
ctest --test-dir "$builddir" -LE 'fault|perf-smoke' --output-on-failure -j "$jobs"

echo "== fault-injection tests =="
ctest --test-dir "$builddir" -L fault --output-on-failure

if [[ "$bench_smoke" == 1 ]]; then
  echo "== perf-smoke benches =="
  ctest --test-dir "$builddir" -L perf-smoke --output-on-failure
fi
