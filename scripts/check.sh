#!/usr/bin/env bash
# Repo health check: configure + build, then run the tier-1 suite and the
# fault-injection suite (label "fault") separately so a reliability
# regression is distinguishable from a functional one.
#
# Usage: scripts/check.sh [--asan] [--tsan] [--bench-smoke] [--obs-smoke]
#                         [--soak]
#   --asan         build/test the asan preset instead of default
#   --tsan         build the tsan preset and run only the concurrency-
#                  sensitive labels (runtime|aggregation|flowcontrol|
#                  memory|membership|combine|cache|actor|sort) — the
#                  scheduler, aggregation pipeline, flow control, memory
#                  reclamation, the failure detector, the combining
#                  table, the cache/futures machinery, the actor
#                  mailboxes and the scan/shuffle cursor races of the
#                  histogram-sort are where data races would live
#   --bench-smoke  also run the perf-smoke benches (short task-pool
#                  concurrency sweep; emits BENCH_*.json perf records)
#   --obs-smoke    also run the observability smoke (traced BFS through
#                  gmt_cli; validates trace JSON and the stats report)
#   --soak         also run the kill-a-node-mid-BFS membership soak 20x
#                  with rotating victims, kill points and graph seeds
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
bench_smoke=0
obs_smoke=0
soak=0
for arg in "$@"; do
  case "$arg" in
    --asan) preset=asan ;;
    --tsan) preset=tsan ;;
    --bench-smoke) bench_smoke=1 ;;
    --obs-smoke) obs_smoke=1 ;;
    --soak) soak=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"

builddir=build
[[ "$preset" == "asan" ]] && builddir=build-asan
[[ "$preset" == "tsan" ]] && builddir=build-tsan

if [[ "$preset" == "tsan" ]]; then
  echo "== thread-sanitized concurrency tests =="
  ctest --test-dir "$builddir" \
    -L 'runtime|aggregation|flowcontrol|memory|membership|combine|cache|actor|sort' \
    --output-on-failure
  exit 0
fi

echo "== tier-1 tests =="
ctest --test-dir "$builddir" -LE 'fault|perf-smoke|obs-smoke' --output-on-failure -j "$jobs"

echo "== memory lifecycle tests =="
ctest --test-dir "$builddir" -L memory --output-on-failure

echo "== fault-injection tests =="
ctest --test-dir "$builddir" -L fault --output-on-failure

echo "== membership tests =="
ctest --test-dir "$builddir" -L membership --output-on-failure

echo "== source-side combining tests =="
ctest --test-dir "$builddir" -L combine --output-on-failure

echo "== cache / futures tests (incl. cached-BFS smoke) =="
ctest --test-dir "$builddir" -L cache --output-on-failure

echo "== actor/mailbox tests (incl. kill-mid-service battery) =="
ctest --test-dir "$builddir" -L actor --output-on-failure

echo "== histogram-sort / scan tests =="
ctest --test-dir "$builddir" -L sort --output-on-failure

if [[ "$soak" == 1 ]]; then
  echo "== membership soak: kill-a-node-mid-BFS x20 =="
  for i in $(seq 0 19); do
    victim=$((1 + i % 2))
    if GMT_FAULT_KILL_NODE=$victim \
       GMT_FAULT_KILL_AT=$((50 + i * 97)) \
       GMT_FAULT_SEED=$((24049 + i)) \
       "$builddir/tests/test_membership" --gtest_filter='*KillMidBfs*' \
       > /dev/null 2>&1; then
      echo "  iteration $i ok (victim=$victim)"
    else
      echo "  iteration $i FAILED (victim=$victim); re-run with:" >&2
      echo "  GMT_FAULT_KILL_NODE=$victim GMT_FAULT_KILL_AT=$((50 + i * 97)) \\" >&2
      echo "  GMT_FAULT_SEED=$((24049 + i)) $builddir/tests/test_membership \\" >&2
      echo "  --gtest_filter='*KillMidBfs*'" >&2
      exit 1
    fi
  done
fi

if [[ "$bench_smoke" == 1 ]]; then
  echo "== perf-smoke benches =="
  ctest --test-dir "$builddir" -L perf-smoke --output-on-failure
fi

if [[ "$obs_smoke" == 1 ]]; then
  echo "== observability smoke =="
  ctest --test-dir "$builddir" -L obs-smoke --output-on-failure
fi
