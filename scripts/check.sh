#!/usr/bin/env bash
# Repo health check: configure + build, then run the tier-1 suite and the
# fault-injection suite (label "fault") separately so a reliability
# regression is distinguishable from a functional one.
#
# Usage: scripts/check.sh [--asan]
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
if [[ "${1:-}" == "--asan" ]]; then
  preset=asan
fi

jobs=$(nproc 2>/dev/null || echo 2)

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"

builddir=build
[[ "$preset" == "asan" ]] && builddir=build-asan

echo "== tier-1 tests =="
ctest --test-dir "$builddir" -LE fault --output-on-failure -j "$jobs"

echo "== fault-injection tests =="
ctest --test-dir "$builddir" -L fault --output-on-failure
