// Public observability API (no runtime internals required).
//
// The runtime keeps every counter, gauge and histogram in per-node metric
// registries (src/obs). This header exposes a read-only view of them —
// `gmt::stats_snapshot()` merges all live registries into named values —
// plus the event tracer: `gmt::trace_begin/trace_end` annotate spans on the
// calling thread's track, and `gmt::dump_trace(path)` writes everything the
// runtime recorded as Chrome `trace_event` JSON (load it in
// chrome://tracing or https://ui.perfetto.dev).
//
// Environment: GMT_OBS=0 disables the metric registries (near-zero cost),
// GMT_TRACE=1 arms the tracer, GMT_TRACE_FILE=out.json dumps at cluster
// shutdown, GMT_OBS_INTERVAL_MS=N records periodic interval snapshots.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gmt {
namespace obs {

// Log2 bucketing: bucket 0 holds value 0, bucket b >= 1 holds values in
// [2^(b-1), 2^b - 1]; the last bucket absorbs everything larger.
inline constexpr std::uint32_t kHistogramBuckets = 64;

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  // Largest value recorded in bucket `b` (inclusive upper bound).
  static std::uint64_t bucket_upper_bound(std::uint32_t b) {
    if (b == 0) return 0;
    if (b >= 63) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }
};

// A merged, point-in-time view of one or more registries. Values are
// cumulative: registries that died with their cluster leave their final
// totals behind, so a snapshot taken after gmt::run() returned still
// covers the run.
struct Snapshot {
  std::uint64_t wall_ns = 0;  // capture time (steady clock)
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  // Lookup helpers: 0 / nullptr when the name is absent.
  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const HistogramValue* histogram(std::string_view name) const;
  // Adds `other` into this snapshot, summing same-named values.
  void merge(const Snapshot& other);
};

// One periodic sample recorded by the interval sampler
// (GMT_OBS_INTERVAL_MS > 0); `stats` is cumulative at `wall_ns`.
struct IntervalSample {
  std::uint64_t wall_ns = 0;
  Snapshot stats;
};

// Metric names the runtime registers (a subset; registries may hold more).
namespace names {
inline constexpr const char* kTasksExecuted = "tasks.executed";
inline constexpr const char* kIterationsExecuted = "tasks.iterations";
inline constexpr const char* kCtxSwitches = "tasks.ctx_switches";
inline constexpr const char* kTasksResident = "tasks.resident";
inline constexpr const char* kLocalOps = "ops.local";
inline constexpr const char* kRemoteOps = "ops.remote";
inline constexpr const char* kCmdsExecuted = "cmds.executed";
inline constexpr const char* kBuffersReceived = "agg.buffers_received";
inline constexpr const char* kAggCommands = "agg.commands";
inline constexpr const char* kAggBlocksFull = "agg.blocks_full";
inline constexpr const char* kAggBlocksTimeout = "agg.blocks_timeout";
inline constexpr const char* kAggBuffersSent = "agg.buffers_sent";
inline constexpr const char* kAggBufferBytes = "agg.buffer_bytes";
inline constexpr const char* kAggPasses = "agg.passes";
inline constexpr const char* kAggFlushBytes = "agg.flush_bytes";
inline constexpr const char* kAggCreditsConsumed = "agg.credits.consumed";
inline constexpr const char* kAggCreditsGranted = "agg.credits.granted";
inline constexpr const char* kAggCreditStalls = "agg.credits.stalls";
inline constexpr const char* kAggCreditStallNs = "agg.credits.stall_ns";
inline constexpr const char* kAggBlocksEmergency = "agg.blocks_emergency";
inline constexpr const char* kAggAdaptiveQueueNs = "agg.adaptive.queue_ns";
inline constexpr const char* kAggAdaptiveBlockNs = "agg.adaptive.block_ns";
inline constexpr const char* kAggCombineHits = "agg.combine.hits";
inline constexpr const char* kAggCombineInstalls = "agg.combine.installs";
inline constexpr const char* kAggCombineEvictions = "agg.combine.evictions";
inline constexpr const char* kAggCombineDrains = "agg.combine.drains";
// Read-mostly software cache (GMT_CACHE, src/runtime/swcache).
inline constexpr const char* kCacheHits = "gmt.cache.hits";
inline constexpr const char* kCacheMisses = "gmt.cache.misses";
inline constexpr const char* kCacheInstalls = "gmt.cache.installs";
inline constexpr const char* kCacheRacySkips = "gmt.cache.racy_skips";
inline constexpr const char* kCacheInvals = "gmt.cache.invals";
inline constexpr const char* kCacheInvalLines = "gmt.cache.inval_lines";
// Per-operation futures (gmt_get_f / gmt_put_f / gmt_atomic_add_f).
inline constexpr const char* kFuturesIssued = "gmt.futures.issued";
inline constexpr const char* kFuturesWaits = "gmt.futures.waits";
inline constexpr const char* kFuturesParked = "gmt.futures.parked";
inline constexpr const char* kFuturesAbandoned = "gmt.futures.abandoned";
// Actor/mailbox layer (src/actor, gmt/actor.hpp).
inline constexpr const char* kActorSent = "actor.sent";
inline constexpr const char* kActorDelivered = "actor.delivered";
inline constexpr const char* kActorAcks = "actor.acks";
inline constexpr const char* kActorReplies = "actor.replies";
inline constexpr const char* kActorParks = "actor.sender_parks";
inline constexpr const char* kActorDrains = "actor.drains";
inline constexpr const char* kActorNoMailbox = "actor.no_mailbox";
inline constexpr const char* kActorQueued = "actor.queued";
inline constexpr const char* kMemLiveHandles = "gmt.mem.live_handles";
inline constexpr const char* kMemLiveBytes = "gmt.mem.live_bytes";
inline constexpr const char* kMemFreeListDepth = "gmt.mem.free_list";
inline constexpr const char* kMemAllocs = "gmt.mem.allocs";
inline constexpr const char* kMemFrees = "gmt.mem.frees";
inline constexpr const char* kMemSlotsRecycled = "gmt.mem.slots_recycled";
inline constexpr const char* kMemDeferredReclaims =
    "gmt.mem.deferred_reclaims";
inline constexpr const char* kMemSlotsOrphaned = "gmt.mem.slots_orphaned";
inline constexpr const char* kMemArraysDegraded = "gmt.mem.arrays_degraded";
inline constexpr const char* kMemArraysRemapped = "gmt.mem.arrays_remapped";
inline constexpr const char* kNetMessages = "net.messages";
inline constexpr const char* kNetBytes = "net.bytes";
inline constexpr const char* kIncomingDepth = "net.incoming_depth";
inline constexpr const char* kRelDataFrames = "rel.data_frames";
inline constexpr const char* kRelRetransmits = "rel.retransmits";
inline constexpr const char* kRelAcksSent = "rel.acks_sent";
inline constexpr const char* kRelCrcDrops = "rel.crc_drops";
inline constexpr const char* kRelDupSuppressed = "rel.dup_suppressed";
inline constexpr const char* kRelOooHeld = "rel.ooo_held";
inline constexpr const char* kRelAckLatencyNs = "rel.ack_latency_ns";
inline constexpr const char* kFaultDrops = "fault.drops";
inline constexpr const char* kFaultDuplicates = "fault.duplicates";
inline constexpr const char* kFaultCorruptions = "fault.corruptions";
inline constexpr const char* kFaultReorders = "fault.reorders";
inline constexpr const char* kFaultBackpressures = "fault.backpressures";
inline constexpr const char* kFaultKills = "fault.kills";
// Membership / failure detection (src/runtime/membership). Per-peer health
// gauges are runtime-named: "health.peer<N>.state" (0 live, 1 suspect,
// 2 dead), "health.peer<N>.last_ack_age_us", "health.peer<N>.timeouts".
inline constexpr const char* kMembEpoch = "memb.epoch";
inline constexpr const char* kMembLiveNodes = "memb.live_nodes";
inline constexpr const char* kMembHeartbeats = "memb.heartbeats";
inline constexpr const char* kMembSuspects = "memb.suspects";
inline constexpr const char* kMembEpochCommits = "memb.epoch_commits";
inline constexpr const char* kMembPeersLost = "memb.peers_lost";
inline constexpr const char* kMembOpsFailed = "memb.ops_failed";
}  // namespace names

// Process-wide metrics switch. Reads GMT_OBS once, lazily (unset = on);
// set_enabled overrides it from code. Disabling makes every counter write a
// single predicted branch and snapshots come back empty.
bool enabled();
void set_enabled(bool on);

// Samples recorded so far by the interval sampler (oldest first, bounded).
std::vector<IntervalSample> interval_history();
void clear_interval_history();

}  // namespace obs

// Merged snapshot of every live registry (all nodes of all clusters in
// this process). Empty when obs::enabled() is false.
obs::Snapshot stats_snapshot();

// Human-readable multi-line report built from stats_snapshot(): per-scope
// task/op rows plus network, aggregation and reliability summaries.
std::string stats_report();

// ---- event tracing ----

// Arms / disarms event recording. Also armed by GMT_TRACE=1 (read when the
// first cluster or simulator instance comes up).
void trace_enable(bool on);
bool trace_enabled();

// Opens / closes a span on the calling thread's trace track. `name` must
// outlive the trace (string literals). Nesting is supported to a small
// fixed depth; unmatched ends are ignored.
void trace_begin(const char* name);
void trace_end();

// Writes everything recorded so far as Chrome trace_event JSON. Returns
// false when the file cannot be written.
bool dump_trace(const std::string& path);

// Drops all recorded events and tracks (tests; not thread-safe against
// concurrent recording).
void trace_reset();

}  // namespace gmt
