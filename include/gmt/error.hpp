// Error reporting for degraded-mode operation.
//
// The runtime is fail-stop at the membership layer: when a peer dies the
// survivors exclude it via an epoch change and keep running, but every
// operation that targeted the dead node (or a global-array partition homed
// there) completes with an error instead of data. Blocking ops cannot
// return a status without breaking the paper API, so errors are sticky
// per-task: the first failed operation latches GMT_ERR_NODE_LOST on the
// calling task, and the application polls it between operations.
//
//   gmt_put(h, off, buf, n);                 // may target a dead partition
//   if (gmt_last_error() == GMT_ERR_NODE_LOST) {
//     gmt_clear_error();
//     ... skip / retry against the replica ...
//   }
//
// The future API (gmt_get_f / gmt_put_f / gmt_atomic_add_f, api.hpp) is
// the exception to stickiness: a future resolved by a dead peer reports
// GMT_ERR_NODE_LOST as the *return value* of gmt::wait / wait_any for
// that operation alone, and never latches the task's sticky status — the
// failure is attributed to the op, not smeared across the task.
//
// With membership disabled (GMT_MEMBERSHIP=0, the default) nothing here
// ever fires: retry-budget exhaustion keeps its historical abort.
#pragma once

#include <cstdint>

namespace gmt {

// Sticky per-task operation status. Values are stable across releases.
inline constexpr std::uint32_t GMT_ERR_OK = 0;
// The operation targeted a node (or an array partition homed on a node)
// that was excluded from the membership; no data was transferred. Atomics
// report a previous value of 0.
inline constexpr std::uint32_t GMT_ERR_NODE_LOST = 1;
// An actor message reached its destination node, but no mailbox with that
// actor id was registered there; the message was dropped and its delivery
// ack carries this status (gmt/actor.hpp).
inline constexpr std::uint32_t GMT_ERR_NO_ACTOR = 2;

// Returns the calling task's sticky error status (GMT_ERR_OK when every
// operation since the last gmt_clear_error() completed). Must run inside a
// task.
std::uint32_t gmt_last_error();

// Resets the calling task's sticky error status to GMT_ERR_OK.
void gmt_clear_error();

// ---- degraded-mode introspection (valid inside a task) ----

// Current membership epoch of the calling node (0 until a failure is
// committed; grows by one per committed exclusion).
std::uint64_t gmt_membership_epoch();

// True while `node` is part of the current membership.
bool gmt_node_is_live(std::uint32_t node);

}  // namespace gmt
