// Paper-faithful spellings of the GMT API (Table I of the paper uses
// camelCase: gmt_parFor, gmt_atomicCAS, gmt_waitCommands, ...). These are
// thin aliases over the snake_case API in gmt/api.hpp so code can be
// ported from the paper's listings verbatim.
#pragma once

#include "gmt/api.hpp"

namespace gmt {

inline void gmt_putValue(gmt_handle h, std::uint64_t offset,
                         std::uint64_t value, std::uint32_t size) {
  gmt_put_value(h, offset, value, size);
}

inline void gmt_putValueNB(gmt_handle h, std::uint64_t offset,
                           std::uint64_t value, std::uint32_t size) {
  gmt_put_value_nb(h, offset, value, size);
}

inline void gmt_putNB(gmt_handle h, std::uint64_t offset, const void* data,
                      std::uint64_t size) {
  gmt_put_nb(h, offset, data, size);
}

inline void gmt_getNB(gmt_handle h, std::uint64_t offset, void* data,
                      std::uint64_t size) {
  gmt_get_nb(h, offset, data, size);
}

inline void gmt_waitCommands() { gmt_wait_commands(); }

inline std::uint64_t gmt_atomicAdd(gmt_handle h, std::uint64_t offset,
                                   std::uint64_t value,
                                   std::uint32_t width = 8) {
  return gmt_atomic_add(h, offset, value, width);
}

inline std::uint64_t gmt_atomicCAS(gmt_handle h, std::uint64_t offset,
                                   std::uint64_t expected,
                                   std::uint64_t desired,
                                   std::uint32_t width = 8) {
  return gmt_atomic_cas(h, offset, expected, desired, width);
}

inline void gmt_parFor(std::uint64_t iterations, std::uint64_t chunk_size,
                       TaskFn fn, const void* args, std::size_t args_size,
                       Spawn locality = Spawn::kPartition) {
  gmt_parfor(iterations, chunk_size, fn, args, args_size, locality);
}

}  // namespace gmt
