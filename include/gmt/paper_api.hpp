// DEPRECATED forwarder. The paper-faithful camelCase spellings
// (gmt_parFor, gmt_atomicCAS, gmt_waitCommands, ...) now live in
// gmt/api.hpp, in the "paper-spelling compatibility shim" section at the
// bottom — one canonical header instead of two parallel surfaces. Include
// gmt/api.hpp (or the gmt/gmt.hpp umbrella) directly; this file remains
// only so historical includes keep compiling and will be removed in a
// future cleanup.
#pragma once

#include "gmt/api.hpp"
