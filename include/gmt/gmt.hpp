// GMT umbrella header: the whole public surface in one include.
//
//   #include <gmt/gmt.hpp>
//
// pulls in the core task/memory API (gmt/api.hpp, paper Table I), the
// typed GlobalArray<T> wrapper (gmt/global_array.hpp), the paper's
// camelCase aliases (gmt/paper_api.hpp), and the observability API
// (gmt/obs.hpp: gmt::stats_snapshot, gmt::trace_begin/trace_end,
// gmt::dump_trace). Applications never need an include from src/.
#pragma once

#include "gmt/actor.hpp"
#include "gmt/api.hpp"
#include "gmt/error.hpp"
#include "gmt/global_array.hpp"
#include "gmt/obs.hpp"
#include "gmt/paper_api.hpp"
#include "gmt/types.hpp"
