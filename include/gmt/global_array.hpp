// Typed convenience wrapper over the raw byte-addressed API.
//
// GlobalArray<T> owns nothing: it is a (handle, element count) pair with
// element-granular accessors, copyable and trivially serialisable into
// gmt_parfor argument buffers. T must be trivially copyable — elements move
// through put/get as raw bytes.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "gmt/api.hpp"

namespace gmt {

template <typename T>
class GlobalArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "GlobalArray elements cross the network as raw bytes");

 public:
  GlobalArray() = default;

  // Allocates room for `count` elements (inside a task).
  static GlobalArray allocate(std::uint64_t count,
                              Alloc policy = Alloc::kPartition) {
    GlobalArray array;
    array.handle_ = gmt_new(count * sizeof(T), policy);
    array.count_ = count;
    return array;
  }

  void free() {
    if (handle_ != kNullHandle) gmt_free(handle_);
    handle_ = kNullHandle;
    count_ = 0;
  }

  gmt_handle handle() const { return handle_; }
  std::uint64_t size() const { return count_; }

  // Reads route through the future API: issue + immediate wait is
  // semantically identical to the blocking primitive (including the cache
  // fast path, which returns an already-resolved future on a hit) and
  // keeps one code path for both this and the overlapped get_f below.
  T get(std::uint64_t index) const {
    T value;
    wait(gmt_get_f(handle_, index * sizeof(T), &value, sizeof(T)));
    return value;
  }

  // Overlapped read: `out` fills in by the time the future is waited.
  Future get_f(std::uint64_t index, T* out) const {
    return gmt_get_f(handle_, index * sizeof(T), out, sizeof(T));
  }
  Future get_f(std::uint64_t first, std::span<T> out) const {
    return gmt_get_f<T>(handle_, first, out);
  }

  void put(std::uint64_t index, const T& value) {
    gmt_put(handle_, index * sizeof(T), &value, sizeof(T));
  }

  void put_nb(std::uint64_t index, const T& value) {
    gmt_put_nb(handle_, index * sizeof(T), &value, sizeof(T));
  }

  // Bulk element transfer.
  void get_range(std::uint64_t first, T* out, std::uint64_t n) const {
    wait(gmt_get_f(handle_, first * sizeof(T), out, n * sizeof(T)));
  }
  void put_range(std::uint64_t first, const T* data, std::uint64_t n) {
    gmt_put(handle_, first * sizeof(T), data, n * sizeof(T));
  }

  // Span forwarding: lengths come from the span, offsets are elements.
  void get(std::uint64_t first, std::span<T> out) const {
    wait(get_f(first, out));
  }
  void put(std::uint64_t first, std::span<const T> data) {
    gmt_put<T>(handle_, first, data);
  }
  void put_nb(std::uint64_t first, std::span<const T> data) {
    gmt_put_nb<T>(handle_, first, data);
  }

  // Atomics (T must be a 4- or 8-byte integer).
  T atomic_add(std::uint64_t index, T value) {
    static_assert(sizeof(T) == 4 || sizeof(T) == 8);
    return static_cast<T>(
        gmt_atomic_add(handle_, index * sizeof(T),
                       static_cast<std::uint64_t>(value), sizeof(T)));
  }
  T atomic_cas(std::uint64_t index, T expected, T desired) {
    static_assert(sizeof(T) == 4 || sizeof(T) == 8);
    return static_cast<T>(gmt_atomic_cas(
        handle_, index * sizeof(T), static_cast<std::uint64_t>(expected),
        static_cast<std::uint64_t>(desired), sizeof(T)));
  }

 private:
  gmt_handle handle_ = kNullHandle;
  std::uint64_t count_ = 0;
};

}  // namespace gmt
