// Actor/mailbox programming layer over the aggregation fabric.
//
// A *mailbox* is a typed message endpoint addressed by (node, actor-id).
// Sends are serialized through the runtime's command/aggregation path, so
// they inherit everything the fabric already provides — command
// aggregation into 64 KB buffers, credit-based flow control, reliable
// delivery, and fail-stop membership — without any new wire machinery.
// The selector/mailbox design follows the actor-based PGAS systems built
// on aggregating runtimes (Paul et al., arXiv 2107.05516): productivity
// of message passing at the throughput of aggregation.
//
// Guarantees:
//  - *Per-(sender node, mailbox) FIFO.* Messages from one node to one
//    mailbox are delivered to the handler in send order (sequence-numbered
//    at the source, reordered at the receiver; a single delivery task per
//    mailbox serializes handlers).
//  - *Bounded depth.* Each sender node may have at most
//    GMT_ACTOR_MAILBOX_DEPTH unprocessed messages in flight toward one
//    mailbox; senders at the limit park on the flow-control stall-ticket
//    list (latency-hiding suspension, not spinning) until deliveries ack.
//  - *Per-op failure.* A send toward a node excluded by a membership epoch
//    resolves its future with GMT_ERR_NODE_LOST — it never wedges, and it
//    never latches the sticky task error (post() being the task-token
//    exception, like the _nb data ops). A message for an unregistered
//    actor id resolves with GMT_ERR_NO_ACTOR.
//
// Handlers run in task context on the mailbox's node (delivery tasks ride
// the pooled O(1) scheduler), so they may freely use the whole GMT API —
// including sending to other actors.
//
//   // server node:
//   gmt::actor::register_mailbox(kShard, [](void*, const Message& m) {
//     ...; m.reply(&value, sizeof(value));
//   }, nullptr);
//   // any node:
//   std::uint64_t value;
//   gmt::Future f = gmt::actor::call(srv, kShard, &req, sizeof(req),
//                                    &value, sizeof(value));
//   if (gmt::wait(f) == GMT_ERR_OK) ... value is filled ...
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "gmt/types.hpp"

namespace gmt::actor {

// One delivered message, alive only for the duration of the handler call.
struct Message {
  std::uint32_t src = 0;        // node that sent the message
  const void* data = nullptr;   // message bytes (runtime-owned copy)
  std::uint32_t size = 0;

  // Stages reply bytes to ride the delivery ack back into the sender's
  // reply buffer (the one passed to call()). Valid only inside the
  // handler; the last reply() before the handler returns wins. Replies to
  // senders that provided no reply buffer (send()/post()) are dropped;
  // replies larger than the sender's buffer are a checked error.
  void reply(const void* bytes, std::uint32_t n) const;

  // Capacity of the sender's reply buffer (0 = sender expects no reply).
  std::uint32_t reply_capacity() const { return reply_cap_; }

  // Internal (set by the delivery loop; not for application use).
  std::vector<std::uint8_t>* reply_out_ = nullptr;
  std::uint32_t reply_cap_ = 0;
};

// A mailbox handler: invoked once per message, in send order per sender,
// in task context on the mailbox's node. `ctx` is the registration-time
// context pointer.
using Handler = void (*)(void* ctx, const Message& msg);

// Registers a mailbox under `id` on the calling node. False if the id is
// already registered here. Register before traffic arrives: messages for
// an unregistered id are rejected with GMT_ERR_NO_ACTOR, not queued.
bool register_mailbox(std::uint64_t id, Handler fn, void* ctx);

// Unregisters the mailbox; messages still queued for it are rejected with
// GMT_ERR_NO_ACTOR. False if the id was not registered.
bool unregister_mailbox(std::uint64_t id);

// Sends `size` bytes (captured before return) to the mailbox `id` on
// `node`. The future resolves once the handler has processed the message
// (GMT_ERR_OK), the destination died (GMT_ERR_NODE_LOST), or no such
// mailbox exists there (GMT_ERR_NO_ACTOR). May suspend the calling task
// when the per-(node, mailbox) window is full.
Future send(std::uint32_t node, std::uint64_t id, const void* data,
            std::uint32_t size);

// Request/response send: like send(), but the handler's reply() bytes land
// in `reply` (up to reply_capacity bytes) before the future resolves.
// `reply` must stay valid until the future is awaited.
Future call(std::uint32_t node, std::uint64_t id, const void* data,
            std::uint32_t size, void* reply, std::uint32_t reply_capacity);

// Fire-and-forget send on the calling task's own completion count:
// completion (or failure, via the sticky task error — like the _nb data
// ops) is observed at the task's next blocking point / gmt_wait_commands.
void post(std::uint32_t node, std::uint64_t id, const void* data,
          std::uint32_t size);

// True when the calling node's actor layer is quiescent: no delivery task
// outstanding and no message buffered in any local mailbox.
bool idle();

// Largest message (and largest reply) in bytes a single send may carry.
std::uint32_t max_message_bytes();

// ---- typed sugar (trivially copyable payloads) ----

template <typename T>
Future send(std::uint32_t node, std::uint64_t id, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "actor messages cross the network as raw bytes");
  return send(node, id, &value, sizeof(T));
}

template <typename Req, typename Rep>
Future call(std::uint32_t node, std::uint64_t id, const Req& req, Rep* out) {
  static_assert(std::is_trivially_copyable_v<Req> &&
                    std::is_trivially_copyable_v<Rep>,
                "actor messages cross the network as raw bytes");
  return call(node, id, &req, sizeof(Req), out, sizeof(Rep));
}

template <typename T>
void post(std::uint32_t node, std::uint64_t id, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "actor messages cross the network as raw bytes");
  post(node, id, &value, sizeof(T));
}

}  // namespace gmt::actor
