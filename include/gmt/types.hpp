// Public GMT types: handles, allocation and spawn policies.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gmt {

// Handle to a global array. Opaque; encodes the allocating node and a slot
// in that node's handle space. kNullHandle is never a valid allocation.
using gmt_handle = std::uint64_t;
inline constexpr gmt_handle kNullHandle = 0;

// Data distribution policies (paper §III-C).
//
// kRemote on a single-node cluster has no "other" node to place data on;
// it deliberately degenerates to one partition on the allocating node
// (equivalent to kLocal). This is documented, tested behaviour — see
// GlobalMemory::partition_count — not an error.
enum class Alloc : std::uint8_t {
  kPartition = 0,  // block-distributed uniformly across all nodes
  kLocal = 1,      // entirely on the allocating node
  kRemote = 2,     // block-distributed across every node but the allocator
};

// Task placement policies for parallel loops (paper §III-C).
enum class Spawn : std::uint8_t {
  kPartition = 0,  // iterations split across all nodes
  kLocal = 1,      // all iterations on the calling node
  kRemote = 2,     // iterations split across every node but the caller
};

// A parallel-loop body: called once per iteration with the iteration index
// and the (node-local copy of the) argument buffer passed to gmt_parfor.
using TaskFn = void (*)(std::uint64_t iteration, const void* args);

// Per-operation completion handle returned by gmt_get_f / gmt_put_f /
// gmt_atomic_add_f. Lightweight and trivially copyable: it wraps a
// generation-tagged token into a pooled per-worker completion cell, so
// issuing a future allocates nothing. Await with gmt::wait / wait_all /
// wait_any (gmt/api.hpp); a future is single-consume — the first wait()
// that observes it resolved releases the cell, and later waits on a copy
// return immediately with GMT_ERR_OK. A default-constructed Future is
// not valid() and resolves immediately.
struct Future {
  std::uint64_t token = 0;  // opaque: [generation | cell address | tag]
  bool valid() const { return token != 0; }
};

}  // namespace gmt
