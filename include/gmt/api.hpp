// GMT public API (paper Table I).
//
// Except for gmt::run, all functions here execute inside a GMT task —
// application code reached from gmt::run / gmt_parfor. The runtime
// identifies the calling task through the worker thread executing it;
// calling these from an arbitrary thread is a checked error.
//
//   gmt::run(2 /*nodes*/, [](std::uint64_t, const void*) {
//     gmt_handle a = gmt::gmt_new(1 << 20, gmt::Alloc::kPartition);
//     gmt::gmt_parfor(1024, 0, &body, &a, sizeof(a), gmt::Spawn::kPartition);
//     gmt::gmt_free(a);
//   });
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "gmt/types.hpp"

namespace gmt {

// ---- program entry ----

// Brings up an in-process cluster of `num_nodes` simulated nodes (default
// configuration plus GMT_* environment overrides), runs fn(0, args) as the
// root task, waits for everything it transitively spawned, and tears the
// cluster down. The `args` buffer (args_size bytes) is copied before fn
// runs. Embedders that need programmatic configuration keep using
// rt::Cluster directly.
void run(std::uint32_t num_nodes, TaskFn fn, const void* args = nullptr,
         std::size_t args_size = 0);

// ---- global memory management ----

// Allocates `size` bytes in the global address space with the given
// distribution. Zero-initialised. Blocking: the handle is valid on every
// node when this returns.
gmt_handle gmt_new(std::uint64_t size, Alloc policy);

// Releases an allocation on every node. Blocking. The caller must ensure
// no operation on the handle is still in flight.
void gmt_free(gmt_handle handle);

// ---- data movement (blocking unless _nb) ----

// Copies `size` local bytes into the array at byte `offset`.
void gmt_put(gmt_handle handle, std::uint64_t offset, const void* data,
             std::uint64_t size);
void gmt_put_nb(gmt_handle handle, std::uint64_t offset, const void* data,
                std::uint64_t size);

// Writes the low `size` (1..8) bytes of `value` at byte `offset`.
void gmt_put_value(gmt_handle handle, std::uint64_t offset,
                   std::uint64_t value, std::uint32_t size);
void gmt_put_value_nb(gmt_handle handle, std::uint64_t offset,
                      std::uint64_t value, std::uint32_t size);

// Copies `size` bytes from the array at byte `offset` into local memory.
void gmt_get(gmt_handle handle, std::uint64_t offset, void* data,
             std::uint64_t size);
void gmt_get_nb(gmt_handle handle, std::uint64_t offset, void* data,
                std::uint64_t size);

// Suspends the task until every previously issued non-blocking operation
// of this task has completed (paper §III-D).
void gmt_wait_commands();

// ---- synchronisation (paper §III-E); width is 4 or 8 bytes ----

// Atomically adds `value` at byte `offset`; returns the previous value.
std::uint64_t gmt_atomic_add(gmt_handle handle, std::uint64_t offset,
                             std::uint64_t value, std::uint32_t width = 8);

// Fire-and-forget atomic add: no previous value comes back and the task
// does not block — completion is observed at the next gmt_wait_commands
// (or any blocking call). Because nothing is returned, same-address adds
// commute, and with GMT_COMBINE=1 the aggregation layer coalesces them in
// a source-side combining table (one wire command per hot key per flush
// window). The go-to primitive for histogram/group-by style scatters.
void gmt_atomic_add_nb(gmt_handle handle, std::uint64_t offset,
                       std::uint64_t value, std::uint32_t width = 8);

// Convenience spelling of gmt_atomic_add_nb(handle, offset, 1, width).
void gmt_atomic_inc(gmt_handle handle, std::uint64_t offset,
                    std::uint32_t width = 8);

// Atomic compare-and-swap at byte `offset`; returns the observed previous
// value (equal to `expected` iff the swap happened).
std::uint64_t gmt_atomic_cas(gmt_handle handle, std::uint64_t offset,
                             std::uint64_t expected, std::uint64_t desired,
                             std::uint32_t width = 8);

// ---- typed data movement ----
//
// Span overloads over the byte-addressed primitives: offsets are *element*
// indices, lengths come from the span — no hand-multiplied sizeof(T). The
// void* spellings above remain the paper-faithful primitives underneath.

template <typename T>
void gmt_put(gmt_handle handle, std::uint64_t index, std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_put(handle, index * sizeof(T), data.data(), data.size_bytes());
}

template <typename T>
void gmt_put_nb(gmt_handle handle, std::uint64_t index,
                std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_put_nb(handle, index * sizeof(T), data.data(), data.size_bytes());
}

template <typename T>
void gmt_get(gmt_handle handle, std::uint64_t index, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_get(handle, index * sizeof(T), out.data(), out.size_bytes());
}

template <typename T>
void gmt_get_nb(gmt_handle handle, std::uint64_t index, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_get_nb(handle, index * sizeof(T), out.data(), out.size_bytes());
}

// ---- parallelism (paper §III-B) ----

// Executes fn(i, args_copy) for i in [0, iterations), spawning tasks of
// `chunk` iterations each (0 = runtime-chosen) on nodes selected by
// `policy`. The argument buffer is copied to each involved node. Blocks
// until every iteration completed. Nestable.
void gmt_parfor(std::uint64_t iterations, std::uint64_t chunk, TaskFn fn,
                const void* args, std::size_t args_size,
                Spawn policy = Spawn::kPartition);

// Executes fn(0, args_copy) as one task on the chosen node and blocks
// until it completes — the targeted "run this there" primitive (delegate
// execution) composing naturally with data placement.
void gmt_on(std::uint32_t node, TaskFn fn, const void* args,
            std::size_t args_size);

// Cooperative yield: lets the worker schedule other tasks.
void gmt_yield();

// ---- introspection ----

std::uint32_t gmt_node_id();    // node executing the calling task
std::uint32_t gmt_num_nodes();  // cluster size

}  // namespace gmt
