// GMT public API (paper Table I).
//
// Except for gmt::run, all functions here execute inside a GMT task —
// application code reached from gmt::run / gmt_parfor. The runtime
// identifies the calling task through the worker thread executing it;
// calling these from an arbitrary thread is a checked error.
//
//   gmt::run(2 /*nodes*/, [](std::uint64_t, const void*) {
//     gmt_handle a = gmt::gmt_new(1 << 20, gmt::Alloc::kPartition);
//     gmt::gmt_parfor(1024, 0, &body, &a, sizeof(a), gmt::Spawn::kPartition);
//     gmt::gmt_free(a);
//   });
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

#include "gmt/types.hpp"

namespace gmt {

// ---- program entry ----

// Brings up an in-process cluster of `num_nodes` simulated nodes (default
// configuration plus GMT_* environment overrides), runs fn(0, args) as the
// root task, waits for everything it transitively spawned, and tears the
// cluster down. The `args` buffer (args_size bytes) is copied before fn
// runs. Embedders that need programmatic configuration keep using
// rt::Cluster directly.
void run(std::uint32_t num_nodes, TaskFn fn, const void* args = nullptr,
         std::size_t args_size = 0);

// ---- global memory management ----

// Allocates `size` bytes in the global address space with the given
// distribution. Zero-initialised. Blocking: the handle is valid on every
// node when this returns.
gmt_handle gmt_new(std::uint64_t size, Alloc policy);

// Releases an allocation on every node. Blocking. The caller must ensure
// no operation on the handle is still in flight.
void gmt_free(gmt_handle handle);

// ---- data movement (blocking unless _nb) ----

// Copies `size` local bytes into the array at byte `offset`.
void gmt_put(gmt_handle handle, std::uint64_t offset, const void* data,
             std::uint64_t size);
void gmt_put_nb(gmt_handle handle, std::uint64_t offset, const void* data,
                std::uint64_t size);

// Writes the low `size` (1..8) bytes of `value` at byte `offset`.
void gmt_put_value(gmt_handle handle, std::uint64_t offset,
                   std::uint64_t value, std::uint32_t size);
void gmt_put_value_nb(gmt_handle handle, std::uint64_t offset,
                      std::uint64_t value, std::uint32_t size);

// Copies `size` bytes from the array at byte `offset` into local memory.
void gmt_get(gmt_handle handle, std::uint64_t offset, void* data,
             std::uint64_t size);
void gmt_get_nb(gmt_handle handle, std::uint64_t offset, void* data,
                std::uint64_t size);

// Suspends the task until every previously issued non-blocking operation
// of this task has completed (paper §III-D).
void gmt_wait_commands();

// ---- per-operation completion futures ----
//
// The _f variants issue the same one-sided operations but hand back a
// gmt::Future (types.hpp) instead of blocking or joining the coarse
// per-task _nb pool. A future is awaited selectively — wait(f) suspends
// only if f is still in flight, wait_any picks the first of several to
// land — so a task can overlap independent remote reads and act on each
// as it arrives, DART-style handle completion rather than a barrier.
// Issuing costs no allocation: cells are pooled per worker and
// generation-tagged like TCB completion tokens.
//
// Error model: a future resolved by a dead peer surfaces GMT_ERR_NODE_LOST
// from wait()/wait_any() for THAT operation only — per-op, not via the
// sticky task error of the blocking/_nb paths (error.hpp).
//
// Buffers (`data` of a get_f, `old_out` of an atomic_add_f) must stay
// valid until the future is waited; an unawaited future is drained by the
// implicit end-of-task wait.

// Starts the read; `data` fills in by the time wait() returns.
Future gmt_get_f(gmt_handle handle, std::uint64_t offset, void* data,
                 std::uint64_t size);

// Starts the write; the bytes are captured before return (aggregation
// copies them), so `data` may be reused immediately.
Future gmt_put_f(gmt_handle handle, std::uint64_t offset, const void* data,
                 std::uint64_t size);

// Starts the atomic add; the previous value lands in *old_out by the time
// wait() returns (*old_out is 0 if the op failed with GMT_ERR_NODE_LOST).
Future gmt_atomic_add_f(gmt_handle handle, std::uint64_t offset,
                        std::uint64_t value, std::uint64_t* old_out,
                        std::uint32_t width = 8);

// Awaits `f`; returns its per-op status (GMT_ERR_OK / GMT_ERR_NODE_LOST).
// Futures are single-consume: the first wait that sees `f` resolved
// releases its cell, and a second wait on a copy returns GMT_ERR_OK.
std::uint32_t wait(Future f);

// Awaits every future in `fs`; returns the first nonzero status (the
// remaining futures are still all consumed).
std::uint32_t wait_all(std::span<const Future> fs);

// Awaits the FIRST future in `fs` to resolve; returns its index and, via
// `status` (may be null), its per-op status. Only that future is
// consumed — the rest stay in flight for later wait/wait_any calls. At
// most 64 distinct futures per call.
std::size_t wait_any(std::span<const Future> fs,
                     std::uint32_t* status = nullptr);

// Non-consuming readiness probe: true iff wait(f) would not suspend.
// (Named is_ready rather than the MPI-style "test" to keep the word free
// for test namespaces.)
bool is_ready(Future f);

// Typed future overloads: element indices, lengths from the span.
template <typename T>
Future gmt_get_f(gmt_handle handle, std::uint64_t index, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  return gmt_get_f(handle, index * sizeof(T), out.data(), out.size_bytes());
}

template <typename T>
Future gmt_put_f(gmt_handle handle, std::uint64_t index,
                 std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  return gmt_put_f(handle, index * sizeof(T), data.data(), data.size_bytes());
}

// ---- synchronisation (paper §III-E); width is 4 or 8 bytes ----

// Atomically adds `value` at byte `offset`; returns the previous value.
std::uint64_t gmt_atomic_add(gmt_handle handle, std::uint64_t offset,
                             std::uint64_t value, std::uint32_t width = 8);

// Fire-and-forget atomic add: no previous value comes back and the task
// does not block — completion is observed at the next gmt_wait_commands
// (or any blocking call). Because nothing is returned, same-address adds
// commute, and with GMT_COMBINE=1 the aggregation layer coalesces them in
// a source-side combining table (one wire command per hot key per flush
// window). The go-to primitive for histogram/group-by style scatters.
void gmt_atomic_add_nb(gmt_handle handle, std::uint64_t offset,
                       std::uint64_t value, std::uint32_t width = 8);

// Convenience spelling of gmt_atomic_add_nb(handle, offset, 1, width).
void gmt_atomic_inc(gmt_handle handle, std::uint64_t offset,
                    std::uint32_t width = 8);

// Atomic compare-and-swap at byte `offset`; returns the observed previous
// value (equal to `expected` iff the swap happened).
std::uint64_t gmt_atomic_cas(gmt_handle handle, std::uint64_t offset,
                             std::uint64_t expected, std::uint64_t desired,
                             std::uint32_t width = 8);

// ---- typed data movement ----
//
// Span overloads over the byte-addressed primitives: offsets are *element*
// indices, lengths come from the span — no hand-multiplied sizeof(T). The
// void* spellings above remain the paper-faithful primitives underneath.

template <typename T>
void gmt_put(gmt_handle handle, std::uint64_t index, std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_put(handle, index * sizeof(T), data.data(), data.size_bytes());
}

template <typename T>
void gmt_put_nb(gmt_handle handle, std::uint64_t index,
                std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_put_nb(handle, index * sizeof(T), data.data(), data.size_bytes());
}

template <typename T>
void gmt_get(gmt_handle handle, std::uint64_t index, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_get(handle, index * sizeof(T), out.data(), out.size_bytes());
}

template <typename T>
void gmt_get_nb(gmt_handle handle, std::uint64_t index, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "elements cross the network as raw bytes");
  gmt_get_nb(handle, index * sizeof(T), out.data(), out.size_bytes());
}

// ---- typed atomics ----
//
// Span overloads for the atomic family, mirroring the put/get spellings:
// offsets are element indices, the width comes from T (a 4- or 8-byte
// integer), and a span applies the operation element-wise at consecutive
// indices. Multi-element blocking forms pipeline through futures — every
// element's op is in flight before the first await.

template <typename T>
concept GmtAtomicWord = std::is_integral_v<T> &&
                        (sizeof(T) == 4 || sizeof(T) == 8);

// Element-wise fire-and-forget adds: addends[k] is added at element
// index + k. Completion at the next blocking call / gmt_wait_commands;
// combinable exactly like the scalar _nb form.
template <GmtAtomicWord T>
void gmt_atomic_add_nb(gmt_handle handle, std::uint64_t index,
                       std::span<const T> addends) {
  for (std::size_t k = 0; k < addends.size(); ++k)
    gmt_atomic_add_nb(handle, (index + k) * sizeof(T),
                      static_cast<std::uint64_t>(addends[k]), sizeof(T));
}

// Element-wise blocking adds; previous values land in old_out (sized like
// addends).
template <GmtAtomicWord T>
void gmt_atomic_add(gmt_handle handle, std::uint64_t index,
                    std::span<const T> addends, std::span<T> old_out) {
  constexpr std::size_t kBatch = 32;
  std::uint64_t old[kBatch];
  Future fs[kBatch];
  for (std::size_t base = 0; base < addends.size(); base += kBatch) {
    const std::size_t n =
        addends.size() - base < kBatch ? addends.size() - base : kBatch;
    for (std::size_t k = 0; k < n; ++k)
      fs[k] = gmt_atomic_add_f(handle, (index + base + k) * sizeof(T),
                               static_cast<std::uint64_t>(addends[base + k]),
                               &old[k], sizeof(T));
    wait_all(std::span<const Future>(fs, n));
    for (std::size_t k = 0; k < n; ++k)
      old_out[base + k] = static_cast<T>(old[k]);
  }
}

// Element-wise compare-and-swap: element index + k swaps desired[k] in iff
// it holds expected[k]; the observed previous values land in observed.
template <GmtAtomicWord T>
void gmt_atomic_cas(gmt_handle handle, std::uint64_t index,
                    std::span<const T> expected, std::span<const T> desired,
                    std::span<T> observed) {
  for (std::size_t k = 0; k < expected.size(); ++k)
    observed[k] = static_cast<T>(
        gmt_atomic_cas(handle, (index + k) * sizeof(T),
                       static_cast<std::uint64_t>(expected[k]),
                       static_cast<std::uint64_t>(desired[k]), sizeof(T)));
}

// ---- collectives ----

// Distributed exclusive prefix scan over u64 elements:
//   dst[dst_first + i] = Σ src[src_first .. src_first + i)   for i < count
// Returns the total (the sum of the whole scanned range). Runs inside a
// task and parallelises with nested gmt_parfor in ~512-element stripes
// (partial sums → host scan of the stripe sums → rewrite), so it inherits
// the runtime's aggregation and credit-based flow control; a <= 512-element
// scan reuses the node's cached scratch cell and allocates nothing. src and
// dst may be the same handle only when the ranges coincide exactly (the
// in-place scan). The bucket-offset step of the histogram-sort
// (src/kernels/sort_gmt.cpp) is the motivating caller.
std::uint64_t gmt_scan(gmt_handle src, gmt_handle dst, std::uint64_t count,
                       std::uint64_t src_first = 0,
                       std::uint64_t dst_first = 0);

// ---- parallelism (paper §III-B) ----

// Executes fn(i, args_copy) for i in [0, iterations), spawning tasks of
// `chunk` iterations each (0 = runtime-chosen) on nodes selected by
// `policy`. The argument buffer is copied to each involved node. Blocks
// until every iteration completed. Nestable.
void gmt_parfor(std::uint64_t iterations, std::uint64_t chunk, TaskFn fn,
                const void* args, std::size_t args_size,
                Spawn policy = Spawn::kPartition);

// Executes fn(0, args_copy) as one task on the chosen node and blocks
// until it completes — the targeted "run this there" primitive (delegate
// execution) composing naturally with data placement.
void gmt_on(std::uint32_t node, TaskFn fn, const void* args,
            std::size_t args_size);

// Cooperative yield: lets the worker schedule other tasks.
void gmt_yield();

// ---- introspection ----

std::uint32_t gmt_node_id();    // node executing the calling task
std::uint32_t gmt_num_nodes();  // cluster size

// ---- paper-spelling compatibility shim ----
//
// Table I of the paper spells the API in camelCase (gmt_parFor,
// gmt_atomicCAS, gmt_waitCommands, ...). These aliases exist so the
// paper's listings port verbatim; they are frozen — new capabilities
// (futures, typed spans, error introspection) appear only under the
// canonical snake_case names above, and new code should use those.
// (gmt/paper_api.hpp is a deprecated forwarder to this header.)

inline void gmt_putValue(gmt_handle h, std::uint64_t offset,
                         std::uint64_t value, std::uint32_t size) {
  gmt_put_value(h, offset, value, size);
}

inline void gmt_putValueNB(gmt_handle h, std::uint64_t offset,
                           std::uint64_t value, std::uint32_t size) {
  gmt_put_value_nb(h, offset, value, size);
}

inline void gmt_putNB(gmt_handle h, std::uint64_t offset, const void* data,
                      std::uint64_t size) {
  gmt_put_nb(h, offset, data, size);
}

inline void gmt_getNB(gmt_handle h, std::uint64_t offset, void* data,
                      std::uint64_t size) {
  gmt_get_nb(h, offset, data, size);
}

inline void gmt_waitCommands() { gmt_wait_commands(); }

inline std::uint64_t gmt_atomicAdd(gmt_handle h, std::uint64_t offset,
                                   std::uint64_t value,
                                   std::uint32_t width = 8) {
  return gmt_atomic_add(h, offset, value, width);
}

inline std::uint64_t gmt_atomicCAS(gmt_handle h, std::uint64_t offset,
                                   std::uint64_t expected,
                                   std::uint64_t desired,
                                   std::uint32_t width = 8) {
  return gmt_atomic_cas(h, offset, expected, desired, width);
}

inline void gmt_parFor(std::uint64_t iterations, std::uint64_t chunk_size,
                       TaskFn fn, const void* args, std::size_t args_size,
                       Spawn locality = Spawn::kPartition) {
  gmt_parfor(iterations, chunk_size, fn, args, args_size, locality);
}

}  // namespace gmt
