// Pointer-chasing example: linked structures in the global address space —
// the paper's canonical irregular access pattern ("pointer- or linked
// list-based structures ... fine-grained, unpredictable accesses").
//
// Builds a set of randomly permuted linked rings across the cluster, then
// chases them concurrently: every hop is one 8-byte dependent remote read,
// the worst case for cache-based machines and the best case for software
// multithreading. Also demonstrates the collective helpers.
//
//   ./pointer_chase [num_nodes] [ring_cells]
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"

namespace {

struct ChaseArgs {
  gmt::gmt_handle next;     // next[i] = successor cell of i
  gmt::gmt_handle hops_sum; // total hops performed
  std::uint64_t cells;
  std::uint64_t hops;
};

void chase_body(std::uint64_t walker, const void* raw) {
  ChaseArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t cell = walker % args.cells;
  std::uint64_t hops = 0;
  for (std::uint64_t h = 0; h < args.hops; ++h) {
    // One dependent remote read per hop: nothing to prefetch, nothing to
    // batch at application level — the runtime's aggregation does it.
    gmt::gmt_get(args.next, cell * 8, &cell, 8);
    ++hops;
  }
  gmt::gmt_atomic_add(args.hops_sum, 0, hops, 8);
}

struct Params {
  std::uint64_t cells;
};

void root_task(std::uint64_t, const void* raw) {
  Params params;
  std::memcpy(&params, raw, sizeof(params));
  const std::uint64_t cells = params.cells;

  std::printf("building a %llu-cell permutation ring across %u nodes...\n",
              static_cast<unsigned long long>(cells), gmt::gmt_num_nodes());
  // A random permutation: cell i points at perm[i]; a single giant cycle
  // is guaranteed by the Sattolo shuffle.
  std::vector<std::uint64_t> perm(cells);
  std::iota(perm.begin(), perm.end(), 0);
  gmt::Xoshiro256 rng(7);
  for (std::uint64_t i = cells - 1; i > 0; --i) {
    const std::uint64_t j = rng.below(i);  // Sattolo: j < i
    std::swap(perm[i], perm[j]);
  }

  ChaseArgs args;
  args.next = gmt::gmt_new(cells * 8, gmt::Alloc::kPartition);
  args.hops_sum = gmt::gmt_new(8, gmt::Alloc::kPartition);
  args.cells = cells;
  args.hops = 64;
  gmt::gmt_put(args.next, 0, perm.data(), cells * 8);

  // Sanity via collectives: a permutation's element sum is n(n-1)/2 and
  // its maximum is n-1.
  const std::uint64_t sum = gmt::coll::reduce_sum_u64(args.next, 0, cells);
  const std::uint64_t max = gmt::coll::reduce_max_u64(args.next, 0, cells);
  std::printf("ring check: sum=%llu (expect %llu), max=%llu (expect %llu)\n",
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(cells * (cells - 1) / 2),
              static_cast<unsigned long long>(max),
              static_cast<unsigned long long>(cells - 1));

  const std::uint64_t walkers = 128;
  std::printf("chasing: %llu walkers x %llu hops...\n",
              static_cast<unsigned long long>(walkers),
              static_cast<unsigned long long>(args.hops));
  gmt::StopWatch watch;
  gmt::gmt_parfor(walkers, 1, &chase_body, &args, sizeof(args),
                  gmt::Spawn::kPartition);
  const double seconds = watch.elapsed_s();

  std::uint64_t total_hops = 0;
  gmt::gmt_get(args.hops_sum, 0, &total_hops, 8);
  std::printf("done: %llu dependent remote reads in %.3fs (%.2f Mreads/s)\n",
              static_cast<unsigned long long>(total_hops), seconds,
              static_cast<double>(total_hops) / seconds / 1e6);

  gmt::gmt_free(args.next);
  gmt::gmt_free(args.hops_sum);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? std::atoi(argv[1]) : 2;
  Params params{argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000ull};
  gmt::Config config = gmt::Config::testing();
  config.apply_env();  // honor GMT_* overrides (threads, reliability, faults)
  gmt::rt::Cluster cluster(nodes, config);
  cluster.run(&root_task, &params, sizeof(params));
  return 0;
}
