// Graph analytics example: build a distributed graph, run the paper's BFS
// and random-walk kernels on it, and report MTEPS — the workload class
// (graph crawling, community structure exploration) the paper's
// introduction motivates.
//
//   ./graph_analytics [num_nodes] [vertices]
#include <cstdio>
#include <cstring>

#include "graph/dist_graph.hpp"
#include "graph/generator.hpp"
#include "kernels/bfs_gmt.hpp"
#include "kernels/cc_gmt.hpp"
#include "kernels/grw_gmt.hpp"
#include "kernels/pagerank_gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

struct Params {
  std::uint64_t vertices;
};

void root_task(std::uint64_t, const void* raw) {
  Params params;
  std::memcpy(&params, raw, sizeof(params));

  // A uniform random graph like the paper's generator (scaled degrees).
  std::printf("generating %llu-vertex random graph...\n",
              static_cast<unsigned long long>(params.vertices));
  const auto csr = gmt::graph::build_csr(
      params.vertices,
      gmt::graph::generate_uniform({params.vertices, 2, 12, 1234}));
  std::printf("uploading %llu edges to the global address space...\n",
              static_cast<unsigned long long>(csr.edges()));
  auto graph = gmt::graph::DistGraph::build(csr);

  // BFS from vertex 0 (the paper's Graph500-style kernel).
  const auto bfs = gmt::kernels::bfs_gmt(graph, 0);
  std::printf("BFS : visited %llu/%llu vertices, %llu edges, %llu levels, "
              "%.2f MTEPS\n",
              static_cast<unsigned long long>(bfs.visited),
              static_cast<unsigned long long>(graph.vertices),
              static_cast<unsigned long long>(bfs.edges_traversed),
              static_cast<unsigned long long>(bfs.levels), bfs.mteps());

  // Random walks (the paper's GRW kernel).
  const auto grw = gmt::kernels::grw_gmt(graph, /*walkers=*/256,
                                         /*length=*/32);
  std::printf("GRW : %llu walkers x %llu steps, %llu edges, %.2f MTEPS\n",
              static_cast<unsigned long long>(grw.walkers),
              static_cast<unsigned long long>(grw.steps_per_walker),
              static_cast<unsigned long long>(grw.edges_traversed),
              grw.mteps());

  // Extension kernels: components and PageRank over the same graph.
  const auto cc = gmt::kernels::cc_gmt(graph);
  std::printf("CC  : %llu weakly connected components in %llu rounds\n",
              static_cast<unsigned long long>(cc.components),
              static_cast<unsigned long long>(cc.iterations));
  gmt::gmt_free(cc.labels);

  const auto pr = gmt::kernels::pagerank_gmt(graph, /*iterations=*/5);
  std::uint64_t top_fixed = 0;
  gmt::gmt_get(pr.ranks, 0, &top_fixed, 8);
  std::printf("PR  : %llu iterations; rank[0] = %.6f\n",
              static_cast<unsigned long long>(pr.iterations),
              gmt::kernels::PagerankResult::to_double(top_fixed));
  gmt::gmt_free(pr.ranks);

  graph.destroy();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? std::atoi(argv[1]) : 2;
  Params params{argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000ull};
  gmt::Config config = gmt::Config::testing();
  config.apply_env();  // honor GMT_* overrides (threads, reliability, faults)
  gmt::rt::Cluster cluster(nodes, config);
  cluster.run(&root_task, &params, sizeof(params));
  return 0;
}
