// Streaming-filter example: the paper's CHMA pattern as an application —
// concurrent streams check strings against a distributed signature table
// (virus scanning / spam filtering / NLP token stores), mutating and
// re-inserting hits.
//
//   ./streaming_filter [num_nodes] [streams]
#include <cstdio>
#include <cstring>

#include "hash/dist_hash_map.hpp"
#include "kernels/chma_gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

struct Params {
  std::uint64_t streams;
};

void root_task(std::uint64_t, const void* raw) {
  Params params;
  std::memcpy(&params, raw, sizeof(params));

  // Signature table + string pool (paper: 10M-entry map, 100M strings).
  std::printf("building distributed signature table...\n");
  auto workload = gmt::kernels::ChmaWorkload::setup(
      /*map_capacity=*/1 << 14, /*pool_size=*/1 << 12,
      /*populate=*/1 << 11, /*seed=*/2024);
  std::printf("table: %llu slots across %u nodes, %llu signatures loaded\n",
              static_cast<unsigned long long>(workload.map.capacity),
              gmt::gmt_num_nodes(),
              static_cast<unsigned long long>(1ull << 11));

  // Stream processing: each task repeatedly checks a string; hits are
  // transformed (reversed) and stored back.
  const auto result =
      gmt::kernels::chma_gmt(workload, params.streams, /*steps=*/32);
  std::printf("processed %llu accesses from %llu streams in %.3fs "
              "(%.2f Macc/s)\n",
              static_cast<unsigned long long>(result.accesses),
              static_cast<unsigned long long>(result.tasks), result.seconds,
              result.maccesses_per_s());

  // Spot check: a known signature is still present.
  const auto pool = gmt::hash::generate_pool(1 << 12, 2024);
  std::printf("spot check: signature \"%s\" present: %s\n",
              pool[7].to_string().c_str(),
              workload.map.contains(pool[7]) ? "yes" : "no");
  workload.destroy();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? std::atoi(argv[1]) : 2;
  Params params{argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128ull};
  gmt::Config config = gmt::Config::testing();
  config.apply_env();  // honor GMT_* overrides (threads, reliability, faults)
  gmt::rt::Cluster cluster(nodes, config);
  cluster.run(&root_task, &params, sizeof(params));
  return 0;
}
