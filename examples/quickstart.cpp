// Quickstart: allocate a global array across an in-process GMT cluster,
// fill it with a parallel loop, and reduce it with remote atomics —
// the whole public API in ~60 lines.
//
//   ./quickstart [num_nodes]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gmt/gmt.hpp"

namespace {

struct Args {
  gmt::gmt_handle data;
  gmt::gmt_handle sum;
};

// Parallel loop body: runs on whichever node owns its share of iterations.
void fill_and_count(std::uint64_t i, const void* raw) {
  Args args;
  std::memcpy(&args, raw, sizeof(args));

  // Write element i into the global array (blocking put of one word).
  gmt::gmt_put_value(args.data, i * 8, i * i, 8);

  // Contribute to a global reduction with a remote atomic.
  gmt::gmt_atomic_add(args.sum, 0, i, 8);
}

void root_task(std::uint64_t, const void*) {
  constexpr std::uint64_t kElements = 10000;
  std::printf("quickstart: running on %u GMT nodes\n", gmt::gmt_num_nodes());

  // Block-distributed allocation: elements spread uniformly across nodes.
  Args args;
  args.data = gmt::gmt_new(kElements * 8, gmt::Alloc::kPartition);
  args.sum = gmt::gmt_new(8, gmt::Alloc::kPartition);

  // One task per chunk of iterations, spawned cluster-wide.
  gmt::gmt_parfor(kElements, /*chunk=*/0, &fill_and_count, &args,
                  sizeof(args), gmt::Spawn::kPartition);

  // Read back a few elements and the reduction.
  std::uint64_t sample = 0;
  gmt::gmt_get(args.data, 1234 * 8, &sample, 8);
  std::uint64_t sum = 0;
  gmt::gmt_get(args.sum, 0, &sum, 8);

  std::printf("data[1234]  = %llu (expected %llu)\n",
              static_cast<unsigned long long>(sample),
              static_cast<unsigned long long>(1234ull * 1234));
  std::printf("sum(0..%llu) = %llu (expected %llu)\n",
              static_cast<unsigned long long>(kElements - 1),
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(kElements * (kElements - 1) / 2));

  gmt::gmt_free(args.data);
  gmt::gmt_free(args.sum);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? std::atoi(argv[1]) : 2;
  // gmt::run spins up an in-process cluster (GMT_* env overrides apply),
  // executes the root task to completion and tears the cluster down.
  gmt::run(nodes, &root_task);

  // Observability is public API too: the snapshot retains the finished
  // run's counters even though the cluster is gone.
  const gmt::obs::Snapshot snap = gmt::stats_snapshot();
  std::printf("quickstart: done (%llu network messages, %llu bytes)\n",
              static_cast<unsigned long long>(
                  snap.counter(gmt::obs::names::kNetMessages)),
              static_cast<unsigned long long>(
                  snap.counter(gmt::obs::names::kNetBytes)));
  std::printf("\nruntime statistics:\n%s", gmt::stats_report().c_str());
  return 0;
}
