// Sharded key-value service on the actor/mailbox layer (gmt/actor.hpp).
//
// Every node registers one mailbox under the same actor id — its *shard* —
// serving GET/PUT against a plain node-local hash map. Keys are hashed to
// shards, clients on every node issue randomized request mixes with
// gmt::actor::call(), and each reply rides the delivery ack back into the
// caller's stack buffer. Because one delivery task drains a mailbox at a
// time, the shard map needs no lock: the actor layer serializes handlers,
// while the aggregation fabric batches thousands of in-flight requests
// into 64 KB buffers underneath.
//
//   ./kv_service [num_nodes] [ops_per_node]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "gmt/gmt.hpp"

namespace {

using namespace gmt;

// The shard mailbox id — same on every node; (node, kShardActor) names one
// shard.
constexpr std::uint64_t kShardActor = 0x6b76;  // "kv"

enum KvOp : std::uint32_t { kKvGet = 0, kKvPut = 1 };

struct KvRequest {
  std::uint32_t op;
  std::uint32_t pad = 0;
  std::uint64_t key;
  std::uint64_t value;  // kKvPut only
};

struct KvReply {
  std::uint32_t found;  // GET: 1 when the key existed
  std::uint32_t pad = 0;
  std::uint64_t value;
};

// One node's shard: the handler runs on a single delivery task, so the map
// needs no synchronisation.
struct Shard {
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t hits = 0;
};

Shard* g_shards = nullptr;  // one per node; in-process cluster shares memory

void shard_handler(void* ctx, const actor::Message& msg) {
  auto* shard = static_cast<Shard*>(ctx);
  KvRequest req;
  std::memcpy(&req, msg.data, sizeof(req));
  KvReply rep{};
  if (req.op == kKvPut) {
    shard->map[req.key] = req.value;
    shard->puts++;
    rep.found = 1;
    rep.value = req.value;
  } else {
    shard->gets++;
    auto it = shard->map.find(req.key);
    if (it != shard->map.end()) {
      shard->hits++;
      rep.found = 1;
      rep.value = it->second;
    }
  }
  msg.reply(&rep, sizeof(rep));
}

void register_shard(std::uint64_t, const void*) {
  actor::register_mailbox(kShardActor, &shard_handler,
                          &g_shards[gmt_node_id()]);
}

void unregister_shard(std::uint64_t, const void*) {
  actor::unregister_mailbox(kShardActor);
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t value_for(std::uint64_t key) { return mix64(~key); }

// One client operation: 50% PUT / 50% GET against a hashed shard. GETs
// verify the returned value — the service must never return stale or
// foreign data.
void client_op(std::uint64_t i, const void*) {
  const std::uint64_t r = mix64(i);
  const std::uint64_t key = r % 4096;
  const auto shard = static_cast<std::uint32_t>(mix64(key) % gmt_num_nodes());
  KvReply rep{};
  if ((r >> 32) & 1) {
    const KvRequest req{kKvPut, 0, key, value_for(key)};
    wait(actor::call(shard, kShardActor, req, &rep));
  } else {
    const KvRequest req{kKvGet, 0, key, 0};
    wait(actor::call(shard, kShardActor, req, &rep));
    if (rep.found && rep.value != value_for(key)) {
      std::fprintf(stderr, "kv_service: stale value for key %llu\n",
                   static_cast<unsigned long long>(key));
      std::abort();
    }
  }
}

struct RootArgs {
  std::uint64_t total_ops;
};

void root_task(std::uint64_t, const void* raw) {
  RootArgs args;
  std::memcpy(&args, raw, sizeof(args));
  for (std::uint32_t n = 0; n < gmt_num_nodes(); ++n)
    gmt_on(n, &register_shard, nullptr, 0);
  // Clients spread across all nodes, one task per chunk of operations.
  gmt_parfor(args.total_ops, /*chunk=*/64, &client_op, nullptr, 0,
             Spawn::kPartition);
  for (std::uint32_t n = 0; n < gmt_num_nodes(); ++n)
    gmt_on(n, &unregister_shard, nullptr, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t ops_per_node =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  std::vector<Shard> shards(nodes);
  g_shards = shards.data();

  RootArgs args{ops_per_node * nodes};
  gmt::run(nodes, &root_task, &args, sizeof(args));

  std::uint64_t gets = 0, puts = 0, hits = 0, entries = 0;
  for (const Shard& s : shards) {
    gets += s.gets;
    puts += s.puts;
    hits += s.hits;
    entries += s.map.size();
  }
  std::printf(
      "kv_service: %llu ops over %u shards — %llu puts, %llu gets "
      "(%llu hits), %llu resident entries\n",
      static_cast<unsigned long long>(args.total_ops), nodes,
      static_cast<unsigned long long>(puts),
      static_cast<unsigned long long>(gets),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(entries));
  std::printf("\nruntime statistics:\n%s", gmt::stats_report().c_str());
  return 0;
}
