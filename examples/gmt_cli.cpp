// gmt_cli: run any kernel from the command line — the "try the library in
// one command" entry point a downstream user reaches for first.
//
//   gmt_cli <kernel> [--nodes=N] [--vertices=V] [--walkers=W] [--length=L]
//           [--tasks=W] [--steps=L] [--seed=S] [--stats] [--trace=FILE]
//
//   kernels: bfs | grw | cc | pagerank | chma
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gmt/gmt.hpp"
#include "graph/dist_graph.hpp"
#include "graph/generator.hpp"
#include "kernels/bfs_gmt.hpp"
#include "kernels/cc_gmt.hpp"
#include "kernels/chma_gmt.hpp"
#include "kernels/grw_gmt.hpp"
#include "kernels/pagerank_gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

struct CliArgs {
  std::string kernel = "bfs";
  std::uint32_t nodes = 2;
  std::uint64_t vertices = 5000;
  std::uint64_t walkers = 256;
  std::uint64_t length = 32;
  std::uint64_t tasks = 128;
  std::uint64_t steps = 32;
  std::uint64_t seed = 42;
  bool stats = false;
  std::string trace_file;

  static std::uint64_t value_of(const char* arg) {
    const char* eq = std::strchr(arg, '=');
    return eq ? std::strtoull(eq + 1, nullptr, 10) : 0;
  }

  static CliArgs parse(int argc, char** argv) {
    CliArgs args;
    if (argc > 1 && argv[1][0] != '-') args.kernel = argv[1];
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--nodes=", 8) == 0)
        args.nodes = static_cast<std::uint32_t>(value_of(a));
      else if (std::strncmp(a, "--vertices=", 11) == 0)
        args.vertices = value_of(a);
      else if (std::strncmp(a, "--walkers=", 10) == 0)
        args.walkers = value_of(a);
      else if (std::strncmp(a, "--length=", 9) == 0)
        args.length = value_of(a);
      else if (std::strncmp(a, "--tasks=", 8) == 0)
        args.tasks = value_of(a);
      else if (std::strncmp(a, "--steps=", 8) == 0)
        args.steps = value_of(a);
      else if (std::strncmp(a, "--seed=", 7) == 0)
        args.seed = value_of(a);
      else if (std::strcmp(a, "--stats") == 0)
        args.stats = true;
      else if (std::strncmp(a, "--trace=", 8) == 0)
        args.trace_file = a + 8;
    }
    return args;
  }
};

void run_kernel(std::uint64_t, const void* raw) {
  const CliArgs* args;
  std::memcpy(&args, raw, sizeof(args));

  if (args->kernel == "chma") {
    auto workload = gmt::kernels::ChmaWorkload::setup(
        args->vertices * 4, args->vertices, args->vertices / 2, args->seed);
    const auto result =
        gmt::kernels::chma_gmt(workload, args->tasks, args->steps,
                               args->seed);
    std::printf("chma: %llu accesses in %.3fs (%.3f Macc/s)\n",
                static_cast<unsigned long long>(result.accesses),
                result.seconds, result.maccesses_per_s());
    workload.destroy();
    return;
  }

  const auto csr = gmt::graph::build_csr(
      args->vertices,
      gmt::graph::generate_uniform({args->vertices, 2, 12, args->seed}));
  auto graph = gmt::graph::DistGraph::build(csr);
  std::printf("graph: %llu vertices, %llu edges on %u nodes\n",
              static_cast<unsigned long long>(graph.vertices),
              static_cast<unsigned long long>(graph.edges),
              gmt::gmt_num_nodes());

  if (args->kernel == "bfs") {
    const auto result = gmt::kernels::bfs_gmt(graph, 0);
    std::printf("bfs: visited %llu, %llu edges, %llu levels, %.3fs "
                "(%.2f MTEPS)\n",
                static_cast<unsigned long long>(result.visited),
                static_cast<unsigned long long>(result.edges_traversed),
                static_cast<unsigned long long>(result.levels),
                result.seconds, result.mteps());
  } else if (args->kernel == "grw") {
    const auto result = gmt::kernels::grw_gmt(graph, args->walkers,
                                              args->length, args->seed);
    std::printf("grw: %llu edges traversed in %.3fs (%.2f MTEPS)\n",
                static_cast<unsigned long long>(result.edges_traversed),
                result.seconds, result.mteps());
  } else if (args->kernel == "cc") {
    const auto result = gmt::kernels::cc_gmt(graph);
    std::printf("cc: %llu components in %llu rounds, %.3fs\n",
                static_cast<unsigned long long>(result.components),
                static_cast<unsigned long long>(result.iterations),
                result.seconds);
    gmt::gmt_free(result.labels);
  } else if (args->kernel == "pagerank") {
    const auto result = gmt::kernels::pagerank_gmt(graph, 10);
    std::uint64_t r0 = 0;
    gmt::gmt_get(result.ranks, 0, &r0, 8);
    std::printf("pagerank: %llu iterations, rank[0]=%.6f, %.3fs\n",
                static_cast<unsigned long long>(result.iterations),
                gmt::kernels::PagerankResult::to_double(r0), result.seconds);
    gmt::gmt_free(result.ranks);
  } else {
    std::printf("unknown kernel '%s' (bfs|grw|cc|pagerank|chma)\n",
                args->kernel.c_str());
  }
  graph.destroy();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  if (argc <= 1) {
    std::printf(
        "usage: gmt_cli <bfs|grw|cc|pagerank|chma> [--nodes=N] "
        "[--vertices=V]\n               [--walkers=W] [--length=L] "
        "[--tasks=W] [--steps=L] [--seed=S] [--stats] [--trace=FILE]\n");
    return 1;
  }
  gmt::Config config = gmt::Config::testing();
  config.apply_env();  // honor GMT_* overrides (threads, reliability, faults)
  if (!args.trace_file.empty()) {
    config.trace = true;
    config.trace_file = args.trace_file;  // dumped at cluster shutdown
  }
  {
    gmt::rt::Cluster cluster(args.nodes, config);
    const CliArgs* ptr = &args;
    cluster.run(&run_kernel, &ptr, sizeof(ptr));
  }
  // Public observability API: the report survives cluster teardown (and
  // the teardown is what flushes the trace file).
  if (args.stats) std::printf("\n%s", gmt::stats_report().c_str());
  return 0;
}
