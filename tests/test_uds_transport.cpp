// Tests for the Unix-domain-socket transport and the full runtime running
// over it (real kernel IPC instead of the in-process fabric).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "gmt/gmt.hpp"
#include "net/uds_transport.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

TEST(UdsTransport, DatagramRoundTrip) {
  net::UdsFabric fabric(2);
  net::Transport* a = fabric.endpoint(0);
  net::Transport* b = fabric.endpoint(1);

  ASSERT_TRUE(a->send(1, {10, 20, 30}));
  net::InMessage msg;
  // Kernel delivery is immediate on loopback UDS, but poll defensively.
  for (int spin = 0; spin < 100000 && !b->try_recv(&msg); ++spin)
    std::this_thread::yield();
  EXPECT_EQ(msg.src, 0u);
  EXPECT_EQ(msg.payload, (std::vector<std::uint8_t>{10, 20, 30}));
}

TEST(UdsTransport, PreservesMessageBoundaries) {
  // The kernel caps the unread-datagram queue (net.unix.max_dgram_qlen,
  // often 10), so send() legitimately reports backpressure; retry while
  // draining — exactly the comm server's discipline.
  net::UdsFabric fabric(2);
  net::InMessage msg;
  std::uint8_t next_expected = 1;
  for (std::uint8_t i = 1; i <= 50; ++i) {
    while (!fabric.endpoint(0)->send(1, std::vector<std::uint8_t>(i, i))) {
      if (fabric.endpoint(1)->try_recv(&msg)) {
        ASSERT_EQ(msg.payload.size(), next_expected);
        EXPECT_EQ(msg.payload[0], next_expected);
        ++next_expected;
      }
    }
  }
  while (next_expected <= 50) {
    if (!fabric.endpoint(1)->try_recv(&msg)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(msg.payload.size(), next_expected);  // never coalesced
    EXPECT_EQ(msg.payload[0], next_expected);
    ++next_expected;
  }
}

TEST(UdsTransport, LargeDatagrams) {
  net::UdsFabric fabric(2);
  std::vector<std::uint8_t> big(64 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 31);
  // send() consumes the payload on success, so keep a reference copy.
  std::vector<std::uint8_t> wire = big;
  ASSERT_TRUE(fabric.endpoint(0)->send(1, wire));
  EXPECT_TRUE(wire.empty());
  net::InMessage msg;
  for (int spin = 0; spin < 100000 && !fabric.endpoint(1)->try_recv(&msg);
       ++spin)
    std::this_thread::yield();
  EXPECT_EQ(msg.payload, big);
}

TEST(UdsTransport, SelfSend) {
  net::UdsFabric fabric(1);
  ASSERT_TRUE(fabric.endpoint(0)->send(0, {7}));
  net::InMessage msg;
  for (int spin = 0; spin < 100000 && !fabric.endpoint(0)->try_recv(&msg);
       ++spin)
    std::this_thread::yield();
  EXPECT_EQ(msg.src, 0u);
}

TEST(UdsTransport, CountsTraffic) {
  net::UdsFabric fabric(2);
  fabric.endpoint(0)->send(1, std::vector<std::uint8_t>(100));
  fabric.endpoint(0)->send(1, std::vector<std::uint8_t>(50));
  EXPECT_EQ(fabric.endpoint(0)->messages_sent(), 2u);
  EXPECT_EQ(fabric.endpoint(0)->bytes_sent(), 150u);
}

// The whole runtime over real kernel sockets: the same workloads the
// in-process fabric runs must behave identically.
TEST(UdsRuntime, PutGetParforAtomics) {
  net::UdsFabric fabric(2);
  std::vector<net::Transport*> transports{fabric.endpoint(0),
                                          fabric.endpoint(1)};
  rt::Cluster cluster(transports, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 200, Alloc::kPartition);
    test::parfor_lambda(200, 4, [&](std::uint64_t i) {
      gmt_put_value(h, i * 8, i * 7, 8);
    });
    for (std::uint64_t i = 0; i < 200; i += 23) {
      std::uint64_t v = 0;
      gmt_get(h, i * 8, &v, 8);
      EXPECT_EQ(v, i * 7);
    }
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(100, 2,
                        [&](std::uint64_t) { gmt_atomic_add(sum, 0, 1, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 100u);
    gmt_free(sum);
    gmt_free(h);
  });
  EXPECT_GT(cluster.total_network_messages(), 0u);
}

TEST(UdsRuntime, BulkTransfers) {
  net::UdsFabric fabric(3);
  std::vector<net::Transport*> transports{
      fabric.endpoint(0), fabric.endpoint(1), fabric.endpoint(2)};
  rt::Cluster cluster(transports, Config::testing());
  test::run_task(cluster, [] {
    constexpr std::uint64_t kBytes = 50000;
    const gmt_handle h = gmt_new(kBytes, Alloc::kPartition);
    std::vector<std::uint8_t> out(kBytes);
    for (std::uint64_t i = 0; i < kBytes; ++i)
      out[i] = static_cast<std::uint8_t>(i * 131);
    gmt_put(h, 0, out.data(), kBytes);
    std::vector<std::uint8_t> in(kBytes);
    gmt_get(h, 0, in.data(), kBytes);
    EXPECT_EQ(in, out);
    gmt_free(h);
  });
}

// Randomised mirror workload over kernel sockets: the strongest check
// that the UDS byte path (sendmsg/recv framing, source headers,
// backpressure retries) is loss- and corruption-free.
TEST(UdsRuntime, RandomWorkloadMatchesMirror) {
  net::UdsFabric fabric(2);
  std::vector<net::Transport*> transports{fabric.endpoint(0),
                                          fabric.endpoint(1)};
  rt::Cluster cluster(transports, Config::testing());
  test::run_task(cluster, [] {
    constexpr std::uint64_t kBytes = 4096;
    const gmt_handle h = gmt_new(kBytes, Alloc::kPartition);
    std::vector<std::uint8_t> mirror(kBytes, 0);
    Xoshiro256 rng(17);
    for (int op = 0; op < 200; ++op) {
      const std::uint64_t size = 1 + rng.below(128);
      const std::uint64_t offset = rng.below(kBytes - size);
      std::vector<std::uint8_t> data(size);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng());
      gmt_put(h, offset, data.data(), size);
      std::memcpy(mirror.data() + offset, data.data(), size);
    }
    std::vector<std::uint8_t> readback(kBytes);
    gmt_get(h, 0, readback.data(), kBytes);
    EXPECT_EQ(std::memcmp(readback.data(), mirror.data(), kBytes), 0);
    gmt_free(h);
  });
}

TEST(UdsRuntime, AtomicSumExact) {
  net::UdsFabric fabric(2);
  std::vector<net::Transport*> transports{fabric.endpoint(0),
                                          fabric.endpoint(1)};
  rt::Cluster cluster(transports, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(150, 3,
                        [&](std::uint64_t i) { gmt_atomic_add(sum, 0, i, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 149u * 150 / 2);
    gmt_free(sum);
  });
}

}  // namespace
}  // namespace gmt
