// Tests for the graph and hash substrates (host-side pieces plus the
// distributed structures over a live runtime).
#include <gtest/gtest.h>

#include <set>

#include "graph/dist_graph.hpp"
#include "graph/generator.hpp"
#include "hash/dist_hash_map.hpp"
#include "hash/string_pool.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// ------------------------------------------------------------ generator --

TEST(Generator, UniformDeterministic) {
  const graph::UniformConfig config{100, 1, 8, 99};
  const auto a = graph::generate_uniform(config);
  const auto b = graph::generate_uniform(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
  }
}

TEST(Generator, UniformRespectsDegreeBounds) {
  const auto edges = graph::generate_uniform({50, 2, 5, 7});
  std::vector<int> degree(50, 0);
  for (const auto& e : edges) {
    ASSERT_LT(e.src, 50u);
    ASSERT_LT(e.dst, 50u);
    ++degree[e.src];
  }
  for (int d : degree) {
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 5);
  }
}

TEST(Generator, RmatSizesAndBounds) {
  graph::RmatConfig config;
  config.scale = 8;
  config.edge_factor = 4;
  const auto edges = graph::generate_rmat(config);
  EXPECT_EQ(edges.size(), (1ull << 8) * 4);
  for (const auto& e : edges) {
    ASSERT_LT(e.src, 1ull << 8);
    ASSERT_LT(e.dst, 1ull << 8);
  }
}

TEST(Generator, RmatIsSkewed) {
  // Power-law generation concentrates edges: the busiest vertex should
  // far exceed the average out-degree.
  graph::RmatConfig config;
  config.scale = 10;
  config.edge_factor = 8;
  const auto edges = graph::generate_rmat(config);
  std::vector<std::uint64_t> degree(1 << 10, 0);
  for (const auto& e : edges) ++degree[e.src];
  const std::uint64_t max_degree =
      *std::max_element(degree.begin(), degree.end());
  EXPECT_GT(max_degree, 8u * 4);  // > 4x the mean
}

TEST(Generator, CsrBuildMatchesEdgeList) {
  const std::vector<graph::Edge> edges = {
      {0, 1}, {0, 2}, {1, 2}, {3, 0}, {3, 3}, {1, 0}};
  const graph::Csr csr = graph::build_csr(4, edges);
  EXPECT_EQ(csr.vertices, 4u);
  EXPECT_EQ(csr.edges(), 6u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 2u);
  EXPECT_EQ(csr.degree(2), 0u);
  EXPECT_EQ(csr.degree(3), 2u);
  const std::set<std::uint64_t> n0(csr.adjacency.begin() + csr.offsets[0],
                                   csr.adjacency.begin() + csr.offsets[1]);
  EXPECT_EQ(n0, (std::set<std::uint64_t>{1, 2}));
}

TEST(Generator, CsrOffsetsMonotone) {
  const auto edges = graph::generate_uniform({200, 0, 6, 5});
  const graph::Csr csr = graph::build_csr(200, edges);
  for (std::uint64_t v = 0; v < 200; ++v)
    ASSERT_LE(csr.offsets[v], csr.offsets[v + 1]);
  EXPECT_EQ(csr.offsets.back(), edges.size());
}

// ------------------------------------------------------------ dist graph --

TEST(DistGraph, MirrorsHostCsr) {
  const auto edges = graph::generate_uniform({300, 1, 6, 11});
  const graph::Csr csr = graph::build_csr(300, edges);
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    EXPECT_EQ(dist.vertices, 300u);
    EXPECT_EQ(dist.edges, csr.edges());
    for (std::uint64_t v = 0; v < 300; v += 17) {
      ASSERT_EQ(dist.degree(v), csr.degree(v)) << "vertex " << v;
      std::uint64_t begin = 0, end = 0;
      dist.edge_range(v, &begin, &end);
      ASSERT_EQ(begin, csr.offsets[v]);
      ASSERT_EQ(end, csr.offsets[v + 1]);
      if (end > begin) {
        std::vector<std::uint64_t> nbrs(end - begin);
        dist.neighbors(begin, end - begin, nbrs.data());
        for (std::uint64_t k = 0; k < end - begin; ++k)
          ASSERT_EQ(nbrs[k], csr.adjacency[begin + k]);
      }
    }
    dist.destroy();
  });
}

// ------------------------------------------------------------ string pool --

TEST(StringPool, Deterministic) {
  const auto a = hash::generate_pool(100, 5);
  const auto b = hash::generate_pool(100, 5);
  for (std::size_t i = 0; i < 100; ++i) ASSERT_TRUE(a[i] == b[i]);
}

TEST(StringPool, LengthsInRange) {
  for (const auto& key : hash::generate_pool(1000, 9)) {
    EXPECT_GE(key.length, 4);
    EXPECT_LE(key.length, 20);
    for (std::uint8_t i = 0; i < key.length; ++i) {
      EXPECT_GE(key.chars[i], 'a');
      EXPECT_LE(key.chars[i], 'z');
    }
  }
}

TEST(StringPool, ReverseIsInvolution) {
  auto key = hash::StringKey::from_string("abcdef", 6);
  auto copy = key;
  key.reverse();
  EXPECT_EQ(key.to_string(), "fedcba");
  key.reverse();
  EXPECT_TRUE(key == copy);
}

TEST(StringPool, HashNeverZeroAndStable) {
  for (const auto& key : hash::generate_pool(500, 2)) {
    EXPECT_NE(hash::hash_key(key), 0u);
    EXPECT_EQ(hash::hash_key(key), hash::hash_key(key));
  }
}

TEST(StringPool, HashDiscriminates) {
  const auto a = hash::StringKey::from_string("hello", 5);
  const auto b = hash::StringKey::from_string("hellp", 5);
  const auto c = hash::StringKey::from_string("hell", 4);
  EXPECT_NE(hash::hash_key(a), hash::hash_key(b));
  EXPECT_NE(hash::hash_key(a), hash::hash_key(c));
}

// ---------------------------------------------------------- dist hash map --

TEST(DistHashMap, InsertAndFind) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto map = hash::DistHashMap::create(256);
    const auto pool = hash::generate_pool(64, 3);
    for (const auto& key : pool) EXPECT_TRUE(map.insert(key));
    for (const auto& key : pool) EXPECT_TRUE(map.contains(key));
    EXPECT_FALSE(map.contains(hash::StringKey::from_string("notthere", 8)));
    map.destroy();
  });
}

TEST(DistHashMap, InsertIsIdempotent) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto map = hash::DistHashMap::create(128);
    const auto key = hash::StringKey::from_string("samekey", 7);
    EXPECT_TRUE(map.insert(key));
    EXPECT_TRUE(map.insert(key));
    EXPECT_EQ(map.count_occupied(), 1u);
    map.destroy();
  });
}

TEST(DistHashMap, CapacityRoundsToPowerOfTwo) {
  rt::Cluster cluster(1, Config::testing());
  test::run_task(cluster, [] {
    auto map = hash::DistHashMap::create(100);
    EXPECT_EQ(map.capacity, 128u);
    map.destroy();
  });
}

TEST(DistHashMap, ConcurrentInsertsAllLand) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto map = hash::DistHashMap::create(512);
    const auto pool = hash::generate_pool(128, 13);
    const hash::StringKey* keys = pool.data();
    std::function<void(std::uint64_t)> body = [&](std::uint64_t i) {
      map.insert(keys[i]);
    };
    test::parfor_lambda(128, 4, body);
    for (const auto& key : pool) ASSERT_TRUE(map.contains(key));
    map.destroy();
  });
}

TEST(DistHashMap, OccupancyMatchesDistinctKeys) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto map = hash::DistHashMap::create(512);
    const auto pool = hash::generate_pool(100, 21);
    std::set<std::string> distinct;
    for (const auto& key : pool) {
      map.insert(key);
      distinct.insert(key.to_string());
    }
    EXPECT_EQ(map.count_occupied(), distinct.size());
    map.destroy();
  });
}

}  // namespace
}  // namespace gmt
