// Robustness tests: the runtime under adversarial network conditions
// (message reordering via latency jitter) and the targeted-execution
// primitive gmt_on.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// ---- gmt_on: targeted remote execution ----

TEST(GmtOn, RunsOnRequestedNode) {
  rt::Cluster cluster(3, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle where = gmt_new(8 * 4, Alloc::kPartition);
    for (std::uint32_t target = 0; target < 3; ++target) {
      struct Args {
        gmt_handle where;
        std::uint32_t slot;
      } args{where, target};
      gmt_on(
          target,
          [](std::uint64_t, const void* raw) {
            Args a;
            std::memcpy(&a, raw, sizeof(a));
            gmt_put_value(a.where, a.slot * 8, gmt_node_id() + 100, 8);
          },
          &args, sizeof(args));
      std::uint64_t ran_on = 0;
      gmt_get(where, target * 8, &ran_on, 8);
      EXPECT_EQ(ran_on, target + 100u);
    }
    gmt_free(where);
  });
}

TEST(GmtOn, BlocksUntilRemoteTaskFinishes) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle counter = gmt_new(8, Alloc::kPartition);
    // The remote task performs several operations; when gmt_on returns
    // they must all be visible.
    struct Args {
      gmt_handle counter;
    } args{counter};
    gmt_on(
        1,
        [](std::uint64_t, const void* raw) {
          Args a;
          std::memcpy(&a, raw, sizeof(a));
          for (int i = 0; i < 20; ++i) gmt_atomic_add(a.counter, 0, 1, 8);
        },
        &args, sizeof(args));
    std::uint64_t total = 0;
    gmt_get(counter, 0, &total, 8);
    EXPECT_EQ(total, 20u);
    gmt_free(counter);
  });
}

TEST(GmtOn, NestsInsideParfor) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    // Each parfor body delegates an increment to the *other* node.
    struct Args {
      gmt_handle sum;
    };
    test::parfor_lambda(16, 1, [&](std::uint64_t) {
      Args args{sum};
      gmt_on(
          (gmt_node_id() + 1) % gmt_num_nodes(),
          [](std::uint64_t, const void* raw) {
            Args a;
            std::memcpy(&a, raw, sizeof(a));
            gmt_atomic_add(a.sum, 0, 1, 8);
          },
          &args, sizeof(args));
    });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 16u);
    gmt_free(sum);
  });
}

// ---- message reordering via latency jitter ----

// GMT's correctness never depends on cross-message ordering: completions
// are counted per-request (token round trips), allocation is acked before
// use. With jitter larger than the base latency, buffers from the same
// source routinely overtake each other.
TEST(Jitter, RandomWorkloadSurvivesReordering) {
  net::NetworkModel jittery = net::NetworkModel::instant();
  jittery.jitter_s = 300e-6;  // far above the (zero) base latency
  rt::Cluster cluster(3, Config::testing(), jittery);
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(4096, Alloc::kPartition);
    std::vector<std::uint8_t> mirror(4096, 0);
    Xoshiro256 rng(5);
    for (int op = 0; op < 150; ++op) {
      const std::uint64_t size = 1 + rng.below(100);
      const std::uint64_t offset = rng.below(4096 - size);
      std::vector<std::uint8_t> data(size);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng());
      gmt_put(h, offset, data.data(), size);
      std::memcpy(mirror.data() + offset, data.data(), size);
    }
    std::vector<std::uint8_t> readback(4096);
    gmt_get(h, 0, readback.data(), 4096);
    EXPECT_EQ(std::memcmp(readback.data(), mirror.data(), 4096), 0);
    gmt_free(h);
  });
}

TEST(Jitter, ParforAndAtomicsUnaffected) {
  net::NetworkModel jittery = net::NetworkModel::instant();
  jittery.jitter_s = 200e-6;
  rt::Cluster cluster(2, Config::testing(), jittery);
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(200, 4,
                        [&](std::uint64_t i) { gmt_atomic_add(sum, 0, i, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 199u * 200 / 2);
    gmt_free(sum);
  });
}

TEST(Jitter, AllocFreeChurnUnderReordering) {
  net::NetworkModel jittery = net::NetworkModel::instant();
  jittery.jitter_s = 100e-6;
  rt::Cluster cluster(2, Config::testing(), jittery);
  test::run_task(cluster, [] {
    for (int round = 0; round < 10; ++round) {
      const gmt_handle h = gmt_new(256, Alloc::kPartition);
      gmt_put_value(h, 128, round, 8);
      std::uint64_t v = 0;
      gmt_get(h, 128, &v, 8);
      ASSERT_EQ(v, static_cast<std::uint64_t>(round));
      gmt_free(h);
    }
  });
}

}  // namespace
}  // namespace gmt
