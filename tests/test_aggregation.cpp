// Tests for the command wire format and the multi-level aggregation
// machinery (pre-aggregation blocks, per-destination queues, buffer pools,
// channel queues).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "runtime/aggregation.hpp"
#include "runtime/command.hpp"

namespace gmt::rt {
namespace {

Config small_config() {
  Config c = Config::testing();
  c.buffer_size = 1024;
  c.cmd_block_entries = 4;
  c.cmd_block_timeout_ns = 1'000'000;     // 1 ms
  c.agg_queue_timeout_ns = 2'000'000;     // 2 ms
  return c;
}

CmdHeader make_put(std::uint32_t payload) {
  CmdHeader h;
  h.op = Op::kPut;
  h.handle = 42;
  h.offset = 8;
  h.token = 77;
  h.payload_size = payload;
  return h;
}

// ------------------------------------------------------------- commands --

TEST(Command, EncodeDecodeRoundTrip) {
  CmdHeader h;
  h.op = Op::kAtomicCas;
  h.flags = kWidth4;
  h.handle = 0xdeadbeefULL;
  h.offset = 1234;
  h.token = 0xabcdef;
  h.aux1 = 11;
  h.aux2 = 22;
  h.payload_size = 5;
  const std::uint8_t payload[5] = {1, 2, 3, 4, 5};

  std::uint8_t wire[256];
  encode_cmd(wire, h, payload);
  std::size_t pos = 0;
  const std::uint8_t* out_payload = nullptr;
  const CmdHeader d = decode_cmd(wire, sizeof(wire), &pos, &out_payload);

  EXPECT_EQ(pos, cmd_wire_size(h));
  EXPECT_EQ(d.op, Op::kAtomicCas);
  EXPECT_EQ(d.flags, kWidth4);
  EXPECT_EQ(d.handle, h.handle);
  EXPECT_EQ(d.offset, h.offset);
  EXPECT_EQ(d.token, h.token);
  EXPECT_EQ(d.aux1, 11u);
  EXPECT_EQ(d.aux2, 22u);
  ASSERT_EQ(d.payload_size, 5u);
  EXPECT_EQ(std::memcmp(out_payload, payload, 5), 0);
}

TEST(Command, SequentialDecode) {
  std::uint8_t wire[512];
  std::size_t written = 0;
  for (int i = 0; i < 5; ++i) {
    CmdHeader h;
    h.op = Op::kPutAck;
    h.token = i;
    encode_cmd(wire + written, h, nullptr);
    written += cmd_wire_size(h);
  }
  std::size_t pos = 0;
  const std::uint8_t* payload;
  for (int i = 0; i < 5; ++i) {
    const CmdHeader h = decode_cmd(wire, written, &pos, &payload);
    EXPECT_EQ(h.token, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(pos, written);
}

// -------------------------------------------------------- command block --

TEST(CommandBlock, TracksCapacity) {
  CommandBlock block(256, 3);
  EXPECT_TRUE(block.fits(100));
  block.append(100, wall_ns());
  block.append(100, wall_ns());
  EXPECT_FALSE(block.fits(100));  // byte capacity
  EXPECT_TRUE(block.fits(56));
  block.append(56, wall_ns());
  EXPECT_FALSE(block.fits(1));  // command-count capacity
  EXPECT_EQ(block.cmds(), 3u);
  EXPECT_EQ(block.bytes(), 256u);
  block.reset();
  EXPECT_EQ(block.cmds(), 0u);
  EXPECT_TRUE(block.fits(100));
}

TEST(CommandBlock, RecordsFirstCommandTime) {
  CommandBlock block(256, 8);
  EXPECT_EQ(block.first_cmd_ns(), 0u);
  const std::uint64_t t0 = wall_ns();
  block.append(10, t0);
  block.append(10, t0 + 100);
  EXPECT_EQ(block.first_cmd_ns(), t0);
}

// ------------------------------------------------------------ aggregator --

TEST(Aggregator, FlushesWhenBufferWorthQueued) {
  const Config config = small_config();
  Aggregator agg(config, /*nodes=*/2, /*threads=*/1);
  AggregationSlot& slot = agg.slot(0);

  // Push well over buffer_size bytes of commands toward node 1 (block
  // granularity: the byte threshold only counts *queued* blocks, so a
  // couple of extra blocks must be appended past the threshold).
  const CmdHeader put = make_put(100);
  std::vector<std::uint8_t> payload(100, 0xaa);
  const std::size_t per_cmd = cmd_wire_size(put);
  const std::size_t needed = 3 * (config.buffer_size / per_cmd + 2);
  for (std::size_t i = 0; i < needed; ++i)
    agg.append(slot, 1, put, payload.data());

  // At least one full buffer must have reached the channel queue.
  AggBuffer* buffer = nullptr;
  ASSERT_TRUE(slot.channel().pop(&buffer));
  EXPECT_EQ(buffer->dst, 1u);
  EXPECT_GT(buffer->data().size(), config.buffer_size / 2);
  // Contents decode back into the original commands.
  std::size_t pos = 0;
  const std::uint8_t* out_payload;
  const CmdHeader first = decode_cmd(buffer->data().data(),
                                     buffer->data().size(), &pos,
                                     &out_payload);
  EXPECT_EQ(first.op, Op::kPut);
  EXPECT_EQ(first.handle, 42u);
  agg.release_buffer(buffer);

  // Drain the rest so the pools are restored.
  agg.flush_all(slot);
  while (slot.channel().pop(&buffer)) agg.release_buffer(buffer);
  EXPECT_TRUE(agg.idle());
}

TEST(Aggregator, TimeoutFlushesPartialBlocks) {
  const Config config = small_config();
  Aggregator agg(config, 2, 1);
  AggregationSlot& slot = agg.slot(0);

  const CmdHeader ack{0, Op::kPutAck, 0, 0, 0, 0, 5, 0, 0};
  agg.append(slot, 1, ack, nullptr);
  // Below both thresholds: nothing on the channel yet.
  AggBuffer* buffer = nullptr;
  EXPECT_FALSE(slot.channel().pop(&buffer));

  // After the deadlines pass, poll_flush must emit a (partial) buffer.
  const std::uint64_t later = wall_ns() + config.cmd_block_timeout_ns +
                              config.agg_queue_timeout_ns + 1;
  agg.poll_flush(slot, later);
  ASSERT_TRUE(slot.channel().pop(&buffer));
  EXPECT_EQ(buffer->data().size(), kCmdHeaderSize);
  agg.release_buffer(buffer);
  EXPECT_TRUE(agg.idle());
}

TEST(Aggregator, FlushAllDrainsEverything) {
  const Config config = small_config();
  obs::Registry registry("test");  // stats handles bind here
  Aggregator agg(config, 3, 2, &registry);
  AggregationSlot& s0 = agg.slot(0);
  AggregationSlot& s1 = agg.slot(1);

  const CmdHeader put = make_put(16);
  std::uint8_t payload[16] = {};
  agg.append(s0, 1, put, payload);
  agg.append(s0, 2, put, payload);
  agg.append(s1, 1, put, payload);
  agg.flush_all(s0);
  agg.flush_all(s1);

  std::size_t buffers = 0;
  AggBuffer* buffer;
  for (auto* slot : {&s0, &s1})
    while (slot->channel().pop(&buffer)) {
      ++buffers;
      agg.release_buffer(buffer);
    }
  EXPECT_GE(buffers, 2u);
  EXPECT_TRUE(agg.idle());
  EXPECT_EQ(agg.stats().commands.read(), 3u);
}

TEST(Aggregator, StatsCountFullBlocks) {
  const Config config = small_config();
  obs::Registry registry("test");
  Aggregator agg(config, 2, 1, &registry);
  AggregationSlot& slot = agg.slot(0);
  const CmdHeader put = make_put(64);
  std::vector<std::uint8_t> payload(64);
  AggBuffer* buffer;
  for (int i = 0; i < 64; ++i) {
    agg.append(slot, 1, put, payload.data());
    // Play comm server: keep the channel drained so send_buffer's
    // backpressure loop never engages (no comm thread in this test).
    while (slot.channel().pop(&buffer)) agg.release_buffer(buffer);
  }
  EXPECT_GT(agg.stats().blocks_full.read(), 0u);
  EXPECT_GT(agg.stats().buffers_sent.read(), 0u);
  agg.flush_all(slot);
  while (slot.channel().pop(&buffer)) agg.release_buffer(buffer);
  EXPECT_TRUE(agg.idle());
}

TEST(Aggregator, ConcurrentAppendersKeepAllCommands) {
  Config config = small_config();
  config.num_buf_per_channel = 8;
  constexpr std::uint32_t kThreads = 3;
  constexpr std::uint64_t kPerThread = 5000;
  Aggregator agg(config, 2, kThreads);

  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> stop{false};
  // A drainer plays comm server: pops buffers, counts commands.
  std::thread drainer([&] {
    const std::uint8_t* payload;
    while (!stop.load() || true) {
      bool any = false;
      for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
        AggBuffer* buffer = nullptr;
        while (agg.slot(s).channel().pop(&buffer)) {
          std::size_t pos = 0;
          std::uint64_t cmds = 0;
          while (pos < buffer->data().size()) {
            decode_cmd(buffer->data().data(), buffer->data().size(), &pos,
                       &payload);
            ++cmds;
          }
          drained.fetch_add(cmds);
          agg.release_buffer(buffer);
          any = true;
        }
      }
      if (!any && stop.load()) break;
      if (!any) std::this_thread::yield();
    }
  });

  std::vector<std::thread> appenders;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      const CmdHeader put = make_put(8);
      std::uint8_t payload[8] = {};
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        agg.append(agg.slot(t), 1, put, payload);
      agg.flush_all(agg.slot(t));
    });
  }
  for (auto& thread : appenders) thread.join();
  // Final flush from any slot in case another thread's queue had leftovers.
  agg.flush_all(agg.slot(0));
  stop.store(true);
  drainer.join();

  EXPECT_EQ(drained.load(), kThreads * kPerThread);
  EXPECT_TRUE(agg.idle());
}

TEST(AggregatorDeathTest, OversizedCommandRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Config config = small_config();
  Aggregator agg(config, 2, 1);
  const CmdHeader huge = make_put(config.buffer_size);
  std::vector<std::uint8_t> payload(config.buffer_size);
  EXPECT_DEATH(agg.append(agg.slot(0), 1, huge, payload.data()),
               "exceeds aggregation buffer");
}

}  // namespace
}  // namespace gmt::rt
