// Randomised model-checking of the runtime's memory semantics: a long
// random sequence of API operations runs against the distributed runtime
// AND a flat host mirror; after every phase the two must agree. This is
// the strongest correctness property the suite has — any lost command,
// double-executed reply, mis-routed span or stale-buffer bug shows up as
// a mirror divergence.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

constexpr std::uint64_t kArrayBytes = 8192;

struct Mirror {
  std::vector<std::uint8_t> bytes = std::vector<std::uint8_t>(kArrayBytes, 0);

  std::uint64_t read_word(std::uint64_t offset) const {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + offset, 8);
    return v;
  }
  void write_word(std::uint64_t offset, std::uint64_t v) {
    std::memcpy(bytes.data() + offset, &v, 8);
  }
};

// One phase: `ops` random operations applied identically to both sides
// (sequentially, from the root task — this checks routing and data
// integrity, not concurrency; the concurrent properties are covered by
// the atomic-sum and CAS-claim tests).
void random_phase(gmt_handle h, Mirror& mirror, Xoshiro256& rng,
                  int ops) {
  for (int i = 0; i < ops; ++i) {
    switch (rng.below(7)) {
      case 0: {  // bulk put
        const std::uint64_t size = 1 + rng.below(300);
        const std::uint64_t offset = rng.below(kArrayBytes - size);
        std::vector<std::uint8_t> data(size);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng());
        gmt_put(h, offset, data.data(), size);
        std::memcpy(mirror.bytes.data() + offset, data.data(), size);
        break;
      }
      case 1: {  // put_value
        const std::uint32_t size = 1 + static_cast<std::uint32_t>(
                                           rng.below(8));
        const std::uint64_t offset = rng.below(kArrayBytes - size);
        const std::uint64_t value = rng();
        gmt_put_value(h, offset, value, size);
        std::memcpy(mirror.bytes.data() + offset, &value, size);
        break;
      }
      case 2: {  // non-blocking puts + wait
        for (int k = 0; k < 4; ++k) {
          const std::uint64_t offset = rng.below(kArrayBytes - 8) & ~7ULL;
          const std::uint64_t value = rng();
          gmt_put_value_nb(h, offset, value, 8);
          mirror.write_word(offset, value);
        }
        gmt_wait_commands();
        break;
      }
      case 3: {  // atomic add
        const std::uint64_t offset = rng.below(kArrayBytes / 8) * 8;
        const std::uint64_t operand = rng.below(1 << 20);
        const std::uint64_t old = gmt_atomic_add(h, offset, operand, 8);
        ASSERT_EQ(old, mirror.read_word(offset));
        mirror.write_word(offset, old + operand);
        break;
      }
      case 4: {  // atomic CAS (sometimes expected-correct, sometimes not)
        const std::uint64_t offset = rng.below(kArrayBytes / 8) * 8;
        const std::uint64_t current = mirror.read_word(offset);
        const std::uint64_t expected = rng.below(2) ? current : rng();
        const std::uint64_t desired = rng();
        const std::uint64_t old = gmt_atomic_cas(h, offset, expected,
                                                 desired, 8);
        ASSERT_EQ(old, current);
        if (current == expected) mirror.write_word(offset, desired);
        break;
      }
      case 5: {  // random read-back of a slice
        const std::uint64_t size = 1 + rng.below(200);
        const std::uint64_t offset = rng.below(kArrayBytes - size);
        std::vector<std::uint8_t> data(size);
        gmt_get(h, offset, data.data(), size);
        ASSERT_EQ(std::memcmp(data.data(), mirror.bytes.data() + offset,
                              size),
                  0);
        break;
      }
      case 6: {  // alloc/free lifecycle mixed into the phase: a scratch
                 // array comes and goes without disturbing the mirror
        const std::uint64_t bytes = 8 + rng.below(512);
        const Alloc policy = rng.below(2) ? Alloc::kPartition : Alloc::kLocal;
        const gmt_handle scratch = gmt_new(bytes, policy);
        const std::uint64_t value = rng();
        gmt_put_value(scratch, 0, value, 8);
        std::uint64_t readback = 0;
        gmt_get(scratch, 0, &readback, 8);
        ASSERT_EQ(readback, value);
        gmt_free(scratch);
        break;
      }
    }
  }
  // Phase barrier: full verification.
  std::vector<std::uint8_t> all(kArrayBytes);
  gmt_get(h, 0, all.data(), kArrayBytes);
  ASSERT_EQ(std::memcmp(all.data(), mirror.bytes.data(), kArrayBytes), 0);
}

using ModelParam = std::tuple<std::uint32_t, Alloc, std::uint64_t>;

class ModelCheck : public ::testing::TestWithParam<ModelParam> {};

TEST_P(ModelCheck, RuntimeMatchesMirror) {
  const auto [nodes, policy, seed] = GetParam();
  rt::Cluster cluster(nodes, Config::testing());
  test::run_task(cluster, [&, policy = policy, seed = seed] {
    const gmt_handle h = gmt_new(kArrayBytes, policy);
    Mirror mirror;
    Xoshiro256 rng(seed);
    for (int phase = 0; phase < 3; ++phase)
      random_phase(h, mirror, rng, 120);
    gmt_free(h);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelCheck,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 3),
                       ::testing::Values(Alloc::kPartition, Alloc::kRemote),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

// The same random workload with the local fast path disabled: every op
// takes the full command/helper path, including node-local ones.
TEST(ModelCheckNoFastPath, RuntimeMatchesMirror) {
  Config config = Config::testing();
  config.local_fast_path = false;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(kArrayBytes, Alloc::kPartition);
    Mirror mirror;
    Xoshiro256 rng(99);
    random_phase(h, mirror, rng, 200);
    gmt_free(h);
  });
}

// Concurrent model check: tasks race on *disjoint* stripes; each stripe
// must match its own mirror at the end (cross-stripe isolation).
TEST(ModelCheckConcurrent, DisjointStripesIsolated) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    constexpr std::uint64_t kStripes = 16;
    constexpr std::uint64_t kStripeBytes = 512;
    const gmt_handle h = gmt_new(kStripes * kStripeBytes, Alloc::kPartition);
    test::parfor_lambda(kStripes, 1, [&](std::uint64_t stripe) {
      Xoshiro256 rng(stripe * 31 + 7);
      std::vector<std::uint8_t> mirror(kStripeBytes, 0);
      const std::uint64_t base = stripe * kStripeBytes;
      for (int op = 0; op < 60; ++op) {
        const std::uint64_t size = 1 + rng.below(64);
        const std::uint64_t offset = rng.below(kStripeBytes - size);
        std::vector<std::uint8_t> data(size);
        for (auto& b : data) b = static_cast<std::uint8_t>(rng());
        gmt_put(h, base + offset, data.data(), size);
        std::memcpy(mirror.data() + offset, data.data(), size);
      }
      std::vector<std::uint8_t> readback(kStripeBytes);
      gmt_get(h, base, readback.data(), kStripeBytes);
      EXPECT_EQ(std::memcmp(readback.data(), mirror.data(), kStripeBytes),
                0)
          << "stripe " << stripe;
    });
    gmt_free(h);
  });
}

}  // namespace
}  // namespace gmt
