// End-to-end application scenarios composing several subsystems —
// distributed graph + hash map + collectives on one cluster — verified
// against host computations. These are the "does the whole library
// compose" tests a downstream user's first week looks like.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "graph/dist_graph.hpp"
#include "hash/dist_hash_map.hpp"
#include "kernels/bfs_gmt.hpp"
#include "kernels/cc_gmt.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// Scenario 1: degree analytics — upload a graph, compute its degree
// distribution with collectives, verify against the host CSR.
TEST(Scenario, DegreeAnalytics) {
  const auto csr = graph::build_csr(
      400, graph::generate_uniform({400, 0, 10, 77}));
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);

    // Degrees via a parallel loop into a global array.
    const gmt_handle degrees = gmt_new(400 * 8, Alloc::kPartition);
    test::parfor_lambda(400, 8, [&](std::uint64_t v) {
      gmt_put_value(degrees, v * 8, dist.degree(v), 8);
    });

    // Total degree equals edge count; max/min match the host.
    EXPECT_EQ(coll::reduce_sum_u64(degrees, 0, 400), csr.edges());
    std::uint64_t host_max = 0, host_min = ~0ULL;
    for (std::uint64_t v = 0; v < 400; ++v) {
      host_max = std::max(host_max, csr.degree(v));
      host_min = std::min(host_min, csr.degree(v));
    }
    EXPECT_EQ(coll::reduce_max_u64(degrees, 0, 400), host_max);
    EXPECT_EQ(coll::reduce_min_u64(degrees, 0, 400), host_min);

    // Histogram of degree mod 4 against host counts.
    const gmt_handle bins = gmt_new(4 * 8, Alloc::kPartition);
    coll::histogram_mod_u64(degrees, 0, 400, bins, 4);
    std::uint64_t counts[4];
    gmt_get(bins, 0, counts, 32);
    std::uint64_t expected[4] = {};
    for (std::uint64_t v = 0; v < 400; ++v) ++expected[csr.degree(v) % 4];
    for (int b = 0; b < 4; ++b) EXPECT_EQ(counts[b], expected[b]) << b;

    gmt_free(bins);
    gmt_free(degrees);
    dist.destroy();
  });
}

// Scenario 2: reachability + dedup — BFS marks reachable vertices, their
// ids are inserted into a distributed hash map as strings, and membership
// answers match the BFS result.
TEST(Scenario, ReachabilitySet) {
  const auto csr = graph::build_csr(
      200, graph::generate_uniform({200, 1, 4, 31}));
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::BfsResult bfs = kernels::bfs_gmt(dist, 0);

    // Insert "v<id>" for each vertex the host BFS reaches.
    std::vector<bool> reachable(200, false);
    {
      std::vector<std::uint64_t> stack{0};
      reachable[0] = true;
      while (!stack.empty()) {
        const std::uint64_t v = stack.back();
        stack.pop_back();
        for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
          const std::uint64_t u = csr.adjacency[e];
          if (!reachable[u]) {
            reachable[u] = true;
            stack.push_back(u);
          }
        }
      }
    }
    auto map = hash::DistHashMap::create(1024);
    std::uint64_t host_count = 0;
    for (std::uint64_t v = 0; v < 200; ++v) {
      if (!reachable[v]) continue;
      ++host_count;
      char name[24];
      const int len = std::snprintf(name, sizeof(name), "v%llu",
                                    static_cast<unsigned long long>(v));
      map.insert(hash::StringKey::from_string(name, len));
    }
    EXPECT_EQ(bfs.visited, host_count);
    EXPECT_EQ(map.count_occupied(), host_count);

    // Unreachable vertices are absent.
    for (std::uint64_t v = 0; v < 200; ++v) {
      char name[24];
      const int len = std::snprintf(name, sizeof(name), "v%llu",
                                    static_cast<unsigned long long>(v));
      EXPECT_EQ(map.contains(hash::StringKey::from_string(name, len)),
                reachable[v])
          << v;
    }
    map.destroy();
    dist.destroy();
  });
}

// Scenario 3: component sizes — CC labels feed a histogram keyed by
// label; the largest bucket matches the host's largest component.
TEST(Scenario, ComponentSizes) {
  // Three chains of different lengths + isolated vertices.
  std::vector<graph::Edge> edges;
  for (std::uint64_t v = 0; v + 1 < 30; ++v) edges.push_back({v, v + 1});
  for (std::uint64_t v = 40; v + 1 < 55; ++v) edges.push_back({v, v + 1});
  for (std::uint64_t v = 60; v + 1 < 64; ++v) edges.push_back({v, v + 1});
  const auto csr = graph::build_csr(70, edges);

  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::CcResult cc = kernels::cc_gmt(dist);
    // 3 chains + (70 - 30 - 15 - 4) isolated = 3 + 21 isolated... counted:
    // vertices 30..39 and 55..59 and 64..69 are isolated (21 of them).
    EXPECT_EQ(cc.components, 3u + 21u);

    // Count members of the big chain's component (label 0).
    EXPECT_EQ(coll::count_equal_u64(cc.labels, 0, 70, 0), 30u);
    EXPECT_EQ(coll::count_equal_u64(cc.labels, 0, 70, 40), 15u);
    EXPECT_EQ(coll::count_equal_u64(cc.labels, 0, 70, 60), 4u);

    gmt_free(cc.labels);
    dist.destroy();
  });
}

// Scenario 4: data pipeline — fill, transform in place with a parallel
// loop, copy to a second array, reduce both; invariants tie the stages.
TEST(Scenario, TransformPipeline) {
  rt::Cluster cluster(3, Config::testing());
  test::run_task(cluster, [] {
    constexpr std::uint64_t kCount = 4000;
    const gmt_handle a = gmt_new(kCount * 8, Alloc::kPartition);
    const gmt_handle b = gmt_new(kCount * 8, Alloc::kPartition);

    coll::fill_u64(a, 0, kCount, 3);
    // a[i] = 3 + i
    test::parfor_lambda(kCount, 16, [&](std::uint64_t i) {
      gmt_atomic_add(a, i * 8, i, 8);
    });
    coll::copy(b, 0, a, 0, kCount * 8);

    const std::uint64_t expected =
        3 * kCount + kCount * (kCount - 1) / 2;
    EXPECT_EQ(coll::reduce_sum_u64(a, 0, kCount), expected);
    EXPECT_EQ(coll::reduce_sum_u64(b, 0, kCount), expected);
    EXPECT_EQ(coll::reduce_min_u64(b, 0, kCount), 3u);
    EXPECT_EQ(coll::reduce_max_u64(b, 0, kCount), 3 + kCount - 1);

    gmt_free(a);
    gmt_free(b);
  });
}

}  // namespace
}  // namespace gmt
