// Read-mostly software cache (GMT_CACHE): hit accounting, zero-cost-off,
// and the coherence invariants the design promises — a write followed by a
// read never observes stale data, on the writing node (self-invalidation
// after completion), across nodes (the kCacheInval broadcast completes
// before the write unblocks), and across handle generations (free/realloc
// reusing a slot can never hit the dead array's lines). Plus: a randomized
// multi-task soak on shared cache lines, node death with the cache armed
// (a cached line must never mask GMT_ERR_NODE_LOST), and the cached-BFS
// smoke — identical traversal with the cache on and off.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "common/config.hpp"
#include "gmt/error.hpp"
#include "gmt/gmt.hpp"
#include "gmt/obs.hpp"
#include "graph/dist_graph.hpp"
#include "graph/generator.hpp"
#include "kernels/bfs_gmt.hpp"
#include "net/faulty_transport.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

#if defined(__SANITIZE_THREAD__)
#define GMT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GMT_TEST_TSAN 1
#endif
#endif

#ifdef GMT_TEST_TSAN
constexpr int kSoakScale = 8;
#else
constexpr int kSoakScale = 1;
#endif

constexpr std::uint64_t kBlock = 4096;

Config cache_config(bool on) {
  Config config = Config::testing();
  config.cache = on;
  return config;
}

struct CacheDelta {
  std::uint64_t hits, misses, installs, invals;
};

obs::Snapshot snap() { return stats_snapshot(); }

CacheDelta delta(const obs::Snapshot& before, const obs::Snapshot& after) {
  return CacheDelta{
      after.counter(obs::names::kCacheHits) -
          before.counter(obs::names::kCacheHits),
      after.counter(obs::names::kCacheMisses) -
          before.counter(obs::names::kCacheMisses),
      after.counter(obs::names::kCacheInstalls) -
          before.counter(obs::names::kCacheInstalls),
      after.counter(obs::names::kCacheInvals) -
          before.counter(obs::names::kCacheInvals),
  };
}

// Repeated reads of a remote partition are served from the cache after the
// first line fetch: installs and hits both move, and every byte is right.
TEST(Cache, RepeatedRemoteReadsHit) {
  const obs::Snapshot before = snap();
  rt::Cluster cluster(2, cache_config(true));
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    for (int i = 0; i < 64; ++i)
      gmt_put_value(h, kBlock + i * 8, 0x5000u + i, 8);
    for (int pass = 0; pass < 3; ++pass) {
      for (int i = 0; i < 64; ++i) {
        std::uint64_t v = 0;
        gmt_get(h, kBlock + i * 8, &v, 8);
        EXPECT_EQ(v, 0x5000u + i) << "pass " << pass << " word " << i;
      }
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(h);
  });
  const CacheDelta d = delta(before, snap());
  EXPECT_GT(d.installs, 0u);
  // 64 sequential words share one 1024-byte line: one miss, then hits.
  EXPECT_GT(d.hits, d.misses);
}

// GMT_CACHE=0 is the default and must be zero-cost: no counter moves, and
// reads (blocking and future) behave identically.
TEST(Cache, OffMovesNoCounters) {
  const obs::Snapshot before = snap();
  rt::Cluster cluster(2, cache_config(false));
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    gmt_put_value(h, kBlock, 77, 8);
    for (int pass = 0; pass < 4; ++pass) {
      std::uint64_t v = 0;
      gmt_get(h, kBlock, &v, 8);
      EXPECT_EQ(v, 77u);
      std::uint64_t w = 0;
      EXPECT_EQ(wait(gmt_get_f(h, kBlock, &w, 8)), GMT_ERR_OK);
      EXPECT_EQ(w, 77u);
    }
    gmt_free(h);
  });
  const CacheDelta d = delta(before, snap());
  EXPECT_EQ(d.hits, 0u);
  EXPECT_EQ(d.misses, 0u);
  EXPECT_EQ(d.installs, 0u);
  EXPECT_EQ(d.invals, 0u);
}

// Same-task write-then-read across put_value / bulk put / atomic_add: the
// writer's own node self-invalidates after the write completes, so a
// cached line never outlives the store it mirrors.
TEST(Cache, WriteThenReadNeverStaleSameTask) {
  rt::Cluster cluster(2, cache_config(true));
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    // Both a local (offset 0) and a remote (offset kBlock) slot.
    for (const std::uint64_t base : {std::uint64_t{0}, kBlock}) {
      for (std::uint64_t v = 1; v <= 24; ++v) {
        gmt_put_value(h, base + 128, v, 8);
        std::uint64_t got = 0;
        gmt_get(h, base + 128, &got, 8);
        EXPECT_EQ(got, v) << "base " << base;

        std::uint64_t bulk[4] = {v, v + 1, v + 2, v + 3};
        gmt_put(h, base + 256, bulk, sizeof(bulk));
        std::uint64_t back[4] = {0};
        gmt_get(h, base + 256, back, sizeof(back));
        for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], v + i);

        gmt_atomic_add(h, base + 512, 1, 8);
        std::uint64_t counter = 0;
        gmt_get(h, base + 512, &counter, 8);
        EXPECT_EQ(counter, v) << "base " << base;
      }
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(h);
  });
}

struct RemoteCheckArgs {
  gmt_handle h;
  std::uint64_t offset;
  std::uint64_t expect;
};

// A write on one node is visible to reads on another immediately after the
// writer unblocks: the invalidate broadcast rides the write's completion,
// so the reader's warm cache line is already gone. The reader re-warms its
// cache every round to keep the next round's invalidation load-bearing.
TEST(Cache, InvalidateBroadcastBeatsCrossNodeReads) {
  rt::Cluster cluster(2, cache_config(true));
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    const std::uint64_t off = 64;  // partition 0, homed on the writer
    for (std::uint64_t r = 1; r <= 32; ++r) {
      gmt_put_value(h, off, r, 8);  // local write + kCacheInval broadcast
      RemoteCheckArgs args{h, off, r};
      gmt_on(
          1,
          [](std::uint64_t, const void* raw) {
            RemoteCheckArgs a;
            std::memcpy(&a, raw, sizeof(a));
            // Two reads: the first must miss (the broadcast dropped any
            // line from the previous round), the second may hit — both
            // must see this round's value.
            for (int pass = 0; pass < 2; ++pass) {
              std::uint64_t v = 0;
              gmt_get(a.h, a.offset, &v, 8);
              EXPECT_EQ(v, a.expect) << "pass " << pass;
            }
          },
          &args, sizeof(args));
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(h);
  });
}

// Randomized coherence soak: tasks spread across both nodes each own a
// disjoint word range but share cache lines and the handle, so installs,
// hits and whole-handle invalidation broadcasts collide constantly while
// every task's expected values stay deterministic. Writes-then-reads must
// never observe stale data, under any interleaving.
TEST(Cache, RandomizedSharedLineSoakNeverStale) {
  constexpr std::uint64_t kTasks = 8;
  constexpr std::uint64_t kSlots = 32;  // per task, 8 bytes each
  const int kOps = 400 / kSoakScale;

  const obs::Snapshot before = snap();
  rt::Cluster cluster(2, cache_config(true));
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(kTasks * kSlots * 8, Alloc::kPartition);
    test::parfor_lambda(kTasks, 1, [&](std::uint64_t task) {
      // Rotate the ownership map by half the task count: a contiguous
      // parfor partition would otherwise hand every task its own node's
      // slots and the whole soak would ride the local fast path.
      const std::uint64_t owned = (task + kTasks / 2) % kTasks;
      const std::uint64_t base = owned * kSlots * 8;
      std::uint64_t expected[kSlots] = {0};  // fresh arrays read as zero
      std::mt19937_64 rng(0xc0ffee + task);
      for (int op = 0; op < kOps; ++op) {
        const std::uint64_t slot = rng() % kSlots;
        switch (rng() % 4) {
          case 0:  // overwrite
            expected[slot] = (task << 32) | static_cast<std::uint32_t>(op);
            gmt_put_value(h, base + slot * 8, expected[slot], 8);
            break;
          case 1: {  // atomic increment, old value checked
            const std::uint64_t old =
                gmt_atomic_add(h, base + slot * 8, 3, 8);
            EXPECT_EQ(old, expected[slot]) << "task " << task;
            expected[slot] += 3;
            break;
          }
          case 2: {  // single-word read
            std::uint64_t v = ~0ull;
            gmt_get(h, base + slot * 8, &v, 8);
            EXPECT_EQ(v, expected[slot]) << "task " << task;
            break;
          }
          default: {  // bulk read of the whole owned range
            std::uint64_t all[kSlots];
            gmt_get(h, base, all, sizeof(all));
            for (std::uint64_t s = 0; s < kSlots; ++s)
              EXPECT_EQ(all[s], expected[s]) << "task " << task << " s " << s;
            break;
          }
        }
      }
    });
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(h);
  });
  // The soak must actually have exercised the coherence machinery.
  const CacheDelta d = delta(before, snap());
  EXPECT_GT(d.installs, 0u);
  EXPECT_GT(d.invals, 0u);
}

// Free/realloc recycles handle slots under a new generation; the cache
// keys on the full handle (generation included), so lines installed for a
// dead array can never satisfy reads of its successor.
TEST(Cache, GenerationBumpNeverServesDeadArray) {
  rt::Cluster cluster(2, cache_config(true));
  test::run_task(cluster, [] {
    for (std::uint64_t round = 0; round < 8; ++round) {
      const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
      const std::uint64_t base = round * 1000;
      for (int i = 0; i < 32; ++i)
        gmt_put_value(h, kBlock + i * 8, base + i, 8);
      // First pass warms the cache, second pass reads through it; both
      // must see this round's pattern, never a previous generation's.
      for (int pass = 0; pass < 2; ++pass) {
        for (int i = 0; i < 32; ++i) {
          std::uint64_t v = ~0ull;
          gmt_get(h, kBlock + i * 8, &v, 8);
          ASSERT_EQ(v, base + i) << "round " << round << " pass " << pass;
        }
      }
      gmt_free(h);
    }
  });
}

Config membership_cache_config() {
  Config config = Config::testing();
  config.reliable_transport = true;
  config.membership = true;
  config.heartbeat_ns = 2'000'000;          // 2 ms
  config.suspect_timeout_ns = 200'000'000;  // 200 ms
  config.cache = true;
  return config;
}

// Node death with the cache armed: reads of the lost partition fail with
// GMT_ERR_NODE_LOST every time — a cached line must never stand in for a
// dead owner — futures surface the error per-op, and the surviving
// partitions keep full (cached) service.
TEST(Cache, DeadOwnerNeverServedFromCache) {
  Config config = membership_cache_config();
  config.fault.kill_node = 2;
  config.fault.kill_at = 0;
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(3 * kBlock, Alloc::kPartition);
    while (gmt_membership_epoch() == 0) gmt_yield();
    EXPECT_FALSE(gmt_node_is_live(2));
    gmt_clear_error();

    // Blocking reads of the dead partition fail sticky, repeatedly — the
    // buffer is never filled with fabricated (or stale cached) bytes.
    for (int i = 0; i < 4; ++i) {
      std::uint64_t v = 0xabad1dea;
      gmt_get(h, 2 * kBlock, &v, 8);
      EXPECT_EQ(gmt_last_error(), GMT_ERR_NODE_LOST);
      EXPECT_EQ(v, 0xabad1deau);
      gmt_clear_error();
    }

    // In-flight futures against the dead partition resolve per-op.
    std::uint64_t dv = 0;
    EXPECT_EQ(wait(gmt_get_f(h, 2 * kBlock + 64, &dv, 8)),
              GMT_ERR_NODE_LOST);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    // Survivors keep coherent cached service.
    for (std::uint64_t v = 1; v <= 8; ++v) {
      gmt_put_value(h, 1 * kBlock, v, 8);
      std::uint64_t got = 0;
      gmt_get(h, 1 * kBlock, &got, 8);
      EXPECT_EQ(got, v);
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
  });
}

// The cached-BFS smoke: the same graph traversed with the cache on and off
// yields bit-identical results, and the cached run actually pulled its
// adjacency reads through the cache.
TEST(Cache, CachedBfsMatchesUncached) {
  graph::UniformConfig gc;
  gc.vertices = 256;
  gc.min_degree = 1;
  gc.max_degree = 8;
  gc.seed = 7;
  const graph::Csr csr =
      graph::build_csr(gc.vertices, graph::generate_uniform(gc));

  kernels::BfsResult results[2];
  for (int cached = 0; cached < 2; ++cached) {
    const obs::Snapshot before = snap();
    rt::Cluster cluster(2, cache_config(cached == 1));
    test::run_task(cluster, [&] {
      graph::DistGraph dist = graph::DistGraph::build(csr);
      results[cached] = kernels::bfs_gmt(dist, 0);
      EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
      dist.destroy();
    });
    const CacheDelta d = delta(before, snap());
    if (cached == 1)
      EXPECT_GT(d.installs, 0u);
    else
      EXPECT_EQ(d.installs, 0u);
  }
  EXPECT_GT(results[0].visited, 1u);
  EXPECT_EQ(results[1].visited, results[0].visited);
  EXPECT_EQ(results[1].edges_traversed, results[0].edges_traversed);
  EXPECT_EQ(results[1].levels, results[0].levels);
}

}  // namespace
}  // namespace gmt
