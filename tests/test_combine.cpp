// Source-side combining tests: exact histogram counts with the combining
// table on and off (both kernel strategies), last-writer-wins dedup for
// repeated puts interleaved with ordinary traffic, fire-and-forget atomics
// on replicated arrays, combined commands addressed to a peer that dies
// mid-run failing with GMT_ERR_NODE_LOST (never hanging, never silently
// succeeding), and exact results through a lossy fault-injected network.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "gmt/error.hpp"
#include "gmt/gmt.hpp"
#include "kernels/histogram_gmt.hpp"
#include "net/faulty_transport.hpp"
#include "runtime/cluster.hpp"
#include "runtime/stats_report.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

Config combine_config(bool combine) {
  Config config = Config::testing();
  config.num_workers = 2;
  config.combine = combine;
  config.combine_table = 64;
  return config;
}

std::vector<std::uint64_t> host_histogram(
    const std::vector<std::uint64_t>& keys, std::uint64_t buckets) {
  std::vector<std::uint64_t> counts(buckets, 0);
  for (const std::uint64_t k : keys) ++counts[k];
  return counts;
}

struct HistCase {
  const char* name;
  bool combine;
  kernels::HistogramMode mode;
};

void PrintTo(const HistCase& c, std::ostream* os) { *os << c.name; }

class HistogramExact : public ::testing::TestWithParam<HistCase> {};

// The proof-kernel correctness matrix: skewed keys, both strategies, with
// and without the combining table — bit-exact counts in every cell.
TEST_P(HistogramExact, MatchesHostCounts) {
  const HistCase& hc = GetParam();
  Config config = combine_config(hc.combine);
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  constexpr std::uint64_t kKeys = 40'000;
  constexpr std::uint64_t kBuckets = 97;  // non-power-of-two on purpose
  const std::vector<std::uint64_t> keys =
      kernels::make_zipf_keys(kKeys, kBuckets, 1.1, /*seed=*/0x2fll);
  const std::vector<std::uint64_t> expected = host_histogram(keys, kBuckets);

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    const gmt_handle kh = kernels::upload_keys(keys);
    const kernels::HistogramResult result =
        kernels::histogram_gmt(kh, kKeys, kBuckets, hc.mode);
    std::vector<std::uint64_t> counts(kBuckets, 0);
    gmt_get(result.counts, 0, counts.data(), kBuckets * 8);
    std::uint64_t total = 0;
    for (std::uint64_t b = 0; b < kBuckets; ++b) {
      EXPECT_EQ(counts[b], expected[b]) << "bucket " << b;
      total += counts[b];
    }
    EXPECT_EQ(total, kKeys);
    gmt_free(result.counts);
    gmt_free(kh);
  });

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  if (hc.combine && hc.mode == kernels::HistogramMode::kDirect) {
    // Zipf 1.1 direct increments must actually combine: hot buckets hit
    // resident entries, and every hit is a command that never hit the wire.
    EXPECT_GT(summary.commands_elided(), 0u);
    EXPECT_GT(summary.combine_installs, 0u);
  } else if (!hc.combine) {
    EXPECT_EQ(summary.combine_installs, 0u);
    EXPECT_EQ(summary.combine_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, HistogramExact,
    ::testing::Values(
        HistCase{"DirectCombineOff", false, kernels::HistogramMode::kDirect},
        HistCase{"DirectCombineOn", true, kernels::HistogramMode::kDirect},
        HistCase{"TwoPhaseCombineOff", false,
                 kernels::HistogramMode::kTwoPhase},
        HistCase{"TwoPhaseCombineOn", true,
                 kernels::HistogramMode::kTwoPhase}),
    [](const ::testing::TestParamInfo<HistCase>& info) {
      return std::string(info.param.name);
    });

// Repeated non-blocking puts to the same cell dedup to the last value, and
// the drain-before-ordinary-append rule keeps held entries ordered against
// blocking traffic on the same destination: a blocking put issued between
// two held puts can never be overtaken by the first one.
TEST(Combine, PutDedupLastWriterWins) {
  Config config = combine_config(true);
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(2, config);
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(2 * 4096, Alloc::kPartition);
    const std::uint64_t remote = 4096;  // partition 1: always off-node

    for (std::uint64_t i = 0; i <= 99; ++i)
      gmt_put_value_nb(h, remote, i, 8);
    gmt_wait_commands();
    std::uint64_t back = 0;
    gmt_get(h, remote, &back, 8);
    EXPECT_EQ(back, 99u);

    // Held put, then a blocking put to the same cell (drains the held
    // entry first), then another held put: final value is the last write.
    gmt_put_value_nb(h, remote, 7, 8);
    std::uint64_t word = 8;
    gmt_put(h, remote, &word, 8);
    gmt_put_value_nb(h, remote, 9, 8);
    gmt_wait_commands();
    gmt_get(h, remote, &back, 8);
    EXPECT_EQ(back, 9u);

    // 4-byte puts dedup independently of 8-byte ones (width is part of
    // the combining key via flags).
    gmt_put_value_nb(h, remote + 64, 0x11111111, 4);
    gmt_put_value_nb(h, remote + 64, 0x2222, 4);
    gmt_wait_commands();
    std::uint32_t back32 = 0;
    gmt_get(h, remote + 64, &back32, 4);
    EXPECT_EQ(back32, 0x2222u);
    gmt_free(h);
  });

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GT(summary.commands_elided(), 0u);
}

// Fire-and-forget atomics against a replicated array bypass combining and
// degrade to the blocking mirror-updating path — totals stay exact.
TEST(Combine, ReplicatedArraysBypassCombining) {
  Config config = combine_config(true);
  config.replicate = true;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(3 * 64, Alloc::kPartition);
    // One writer, local and remote cells interleaved. (Concurrent writers
    // to a single replicated cell are outside the replication contract:
    // write-through mirror updates from different nodes are unordered.)
    for (std::uint64_t i = 0; i < 60; ++i) {
      gmt_atomic_inc(h, (i % 3) * 64, 8);
      gmt_wait_commands();
    }
    for (std::uint64_t p = 0; p < 3; ++p) {
      std::uint64_t back = 0;
      gmt_get(h, p * 64, &back, 8);
      EXPECT_EQ(back, 20u) << "partition " << p;
    }
    gmt_free(h);
  });
}

// A peer that goes dark mid-stream while combined increments are in flight:
// held entries flushed into the void must be failed by the membership sweep
// — gmt_wait_commands returns with GMT_ERR_NODE_LOST, it does not hang and
// the loss is not silent. After the epoch commits, further combined ops
// fail fast and the survivors keep exact counts.
TEST(Combine, KillMidStreamFailsCombinedOpsNodeLost) {
  Config config = combine_config(true);
  config.reliable_transport = true;
  config.membership = true;
  config.heartbeat_ns = 2'000'000;          // 2 ms
  config.suspect_timeout_ns = 200'000'000;  // 200 ms
  config.fault.kill_node = 2;
  config.fault.kill_at = 50;  // dies mid-run, with traffic in flight
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(3 * 4096, Alloc::kPartition);
    // Pump combined increments at the doomed partition until the failure
    // surfaces. Every round completes (merged ops ack immediately, held
    // ones are failed by detection) — liveness is the assertion.
    std::uint64_t rounds = 0;
    while (gmt_last_error() == GMT_ERR_OK && rounds < 1'000'000) {
      for (int i = 0; i < 32; ++i) gmt_atomic_inc(h, 2 * 4096, 8);
      gmt_wait_commands();
      ++rounds;
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_NODE_LOST);
    gmt_clear_error();

    while (gmt_membership_epoch() == 0) gmt_yield();
    EXPECT_FALSE(gmt_node_is_live(2));
    gmt_clear_error();

    // Post-epoch, combined ops to the dead partition fail fast.
    gmt_atomic_add_nb(h, 2 * 4096 + 64, 5, 8);
    gmt_wait_commands();
    EXPECT_EQ(gmt_last_error(), GMT_ERR_NODE_LOST);
    gmt_clear_error();

    // The surviving partition still counts exactly through the combiner.
    for (int i = 0; i < 100; ++i) gmt_atomic_inc(h, 1 * 4096, 8);
    gmt_wait_commands();
    std::uint64_t back = 0;
    gmt_get(h, 1 * 4096, &back, 8);
    EXPECT_EQ(back, 100u);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(h);
  });

  EXPECT_TRUE(cluster.faulty_transport(2)->killed());
  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GT(summary.ops_failed_node_lost, 0u);
}

// The fault matrix with combining on: drops, duplicates, corruption and
// reordering under the reliability layer, and the skewed direct histogram
// still lands bit-exact counts — combining must not break exactly-once.
TEST(Combine, LossyNetworkExactCounts) {
  Config config = combine_config(true);
  config.reliable_transport = true;
  config.fault.drop = 0.05;
  config.fault.duplicate = 0.02;
  config.fault.corrupt = 0.01;
  config.fault.reorder = 0.02;
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  constexpr std::uint64_t kKeys = 20'000;
  constexpr std::uint64_t kBuckets = 64;
  const std::vector<std::uint64_t> keys =
      kernels::make_zipf_keys(kKeys, kBuckets, 1.0, /*seed=*/0xfa117);
  const std::vector<std::uint64_t> expected = host_histogram(keys, kBuckets);

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    const gmt_handle kh = kernels::upload_keys(keys);
    const kernels::HistogramResult result = kernels::histogram_gmt(
        kh, kKeys, kBuckets, kernels::HistogramMode::kDirect);
    std::vector<std::uint64_t> counts(kBuckets, 0);
    gmt_get(result.counts, 0, counts.data(), kBuckets * 8);
    for (std::uint64_t b = 0; b < kBuckets; ++b)
      EXPECT_EQ(counts[b], expected[b]) << "bucket " << b;
    gmt_free(result.counts);
    gmt_free(kh);
  });

  const net::FaultCountersSnapshot faults = cluster.total_fault_counters();
  EXPECT_GT(faults.total(), 0u);
  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GT(summary.commands_elided(), 0u);
  EXPECT_GT(summary.retransmits, 0u);
}

}  // namespace
}  // namespace gmt
