// Tests for the discrete-event simulator: engine semantics, runtime model
// behaviour, workload correctness and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/gmt_sim.hpp"
#include "sim/scripted_task.hpp"
#include "sim/spmd_sim.hpp"
#include "sim/workloads_chma.hpp"
#include "sim/workloads_graph.hpp"
#include "sim/workloads_micro.hpp"

namespace gmt::sim {
namespace {

// ----------------------------------------------------------------- engine --

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(Engine, FifoForEqualTimestamps) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    engine.schedule(1.0, [&order, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) engine.schedule_in(1.0, chain);
  };
  engine.schedule_in(0, chain);
  engine.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), 4.0);
}

TEST(EngineDeathTest, EventCapCatchesRunaways) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Engine engine;
  std::function<void()> forever = [&] { engine.schedule_in(1.0, forever); };
  engine.schedule_in(0, forever);
  EXPECT_DEATH(engine.run(/*max_events=*/100), "event cap");
}

// ------------------------------------------------------------- GMT model --

// A trivial task issuing `n` blocking ops to the next node.
std::unique_ptr<SimTask> ping_task(std::uint32_t node, std::uint32_t nodes,
                                   std::uint64_t n) {
  return std::make_unique<ScriptedTask>(
      0, n, [node, nodes](std::uint64_t, std::vector<SimOp>* ops) {
        ops->push_back(SimOp{(node + 1) % nodes, 8, 0, 10, true});
      });
}

TEST(SimGmt, ParforRunsAllIterations) {
  Engine engine;
  SimGmtRuntime runtime(&engine, 2, SimGmtConfig{}, GmtCosts{});
  std::uint64_t executed = 0;
  bool completed = false;
  runtime.parfor(
      100, 5,
      [&](std::uint32_t, std::uint64_t begin, std::uint64_t end) {
        executed += end - begin;
        return ping_task(0, 2, 1);
      },
      [&] { completed = true; });
  engine.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(executed, 100u);
  EXPECT_GT(runtime.network_messages(), 0u);
}

TEST(SimGmt, VirtualTimeAdvances) {
  Engine engine;
  SimGmtRuntime runtime(&engine, 2, SimGmtConfig{}, GmtCosts{});
  double finish = 0;
  runtime.parfor_single(
      0, 10, 1,
      [&](std::uint32_t node, std::uint64_t, std::uint64_t) {
        return ping_task(node, 2, 50);
      },
      [&] { finish = engine.now(); });
  engine.run();
  EXPECT_GT(finish, 0.0);
}

TEST(SimGmt, LocalOpsProduceNoTraffic) {
  Engine engine;
  SimGmtRuntime runtime(&engine, 2, SimGmtConfig{}, GmtCosts{});
  bool done = false;
  runtime.parfor_single(
      0, 4, 1,
      [&](std::uint32_t node, std::uint64_t, std::uint64_t) {
        // All ops target the task's own node.
        return std::make_unique<ScriptedTask>(
            0, 10, [node](std::uint64_t, std::vector<SimOp>* ops) {
              ops->push_back(SimOp{node, 8, 8, 10, true});
            });
      },
      [&] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(runtime.network_messages(), 0u);
}

TEST(SimGmt, AggregationReducesMessages) {
  const auto run = [&](bool aggregation) {
    Engine engine;
    SimGmtConfig config;
    config.aggregation_enabled = aggregation;
    SimGmtRuntime runtime(&engine, 2, config, GmtCosts{});
    runtime.parfor_single(
        0, 64, 1,
        [&](std::uint32_t node, std::uint64_t, std::uint64_t) {
          return ping_task(node, 2, 32);
        },
        [] {});
    engine.run();
    return runtime.network_messages();
  };
  const std::uint64_t with = run(true);
  const std::uint64_t without = run(false);
  EXPECT_LT(with, without / 4);  // aggregation coalesces heavily
}

TEST(SimGmt, DeterministicAcrossRuns) {
  const auto run = [] {
    PutBenchParams params;
    params.nodes = 4;
    params.tasks = 64;
    params.puts_per_task = 32;
    params.all_nodes_send = true;
    const PutBenchResult result = put_bench_gmt(params);
    return std::make_pair(result.seconds, result.messages);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --------------------------------------------------------- put benchmark --

TEST(PutBench, RateIncreasesWithConcurrency) {
  PutBenchParams low;
  low.tasks = 16;
  low.puts_per_task = 64;
  PutBenchParams high = low;
  high.tasks = 1024;
  EXPECT_GT(put_bench_gmt(high).payload_rate_MBps(),
            put_bench_gmt(low).payload_rate_MBps() * 2);
}

TEST(PutBench, LargerPutsMoveMoreBytes) {
  PutBenchParams small;
  small.tasks = 256;
  small.puts_per_task = 64;
  small.put_size = 8;
  PutBenchParams big = small;
  big.put_size = 128;
  EXPECT_GT(put_bench_gmt(big).payload_rate_MBps(),
            put_bench_gmt(small).payload_rate_MBps() * 4);
}

TEST(PutBench, BeatsModeledMpiAtSmallSizes) {
  // The paper's headline: aggregated 8..128-byte puts at high concurrency
  // sustain far more than raw 32-process MPI sends of the same size.
  PutBenchParams params;
  params.tasks = 15360;
  params.puts_per_task = 64;
  params.put_size = 16;
  const double gmt_rate = put_bench_gmt(params).payload_rate_MBps();
  const double mpi_rate = mpi_send_rate_MBps(16, 32, GmtCosts{});
  EXPECT_GT(gmt_rate, 3 * mpi_rate);
}

// ------------------------------------------------------------ SPMD model --

TEST(SimSpmd, BlockingRoundTripsSerialise) {
  Engine engine;
  SimSpmd spmd(&engine, 2, SpmdCosts{});
  class Logic final : public RankLogic {
   public:
    explicit Logic(std::uint32_t rank) : rank_(rank) {}
    Status next(SpmdOp* op) override {
      if (rank_ != 0 || count_ >= 10) return Status::kDone;
      ++count_;
      op->dst = 1;
      return Status::kOp;
    }

   private:
    std::uint32_t rank_;
    int count_ = 0;
  };
  double finish = 0;
  spmd.start([](std::uint32_t r) { return std::make_unique<Logic>(r); },
             [&] { finish = engine.now(); });
  engine.run();
  // 10 round trips: at least 10 x (2 messages) and measurable time.
  EXPECT_EQ(spmd.network_messages(), 20u);
  EXPECT_GT(finish, 10 * 2 * SpmdCosts{}.net.latency_s);
}

TEST(SimSpmd, BarrierWaitsForAll) {
  Engine engine;
  SimSpmd spmd(&engine, 3, SpmdCosts{});
  struct Shared {
    int before = 0;
    bool ok = true;
  } shared;
  class Logic final : public RankLogic {
   public:
    Logic(Shared* shared, std::uint32_t rank) : shared_(shared), rank_(rank) {}
    Status next(SpmdOp* op) override {
      switch (stage_++) {
        case 0:
          ++shared_->before;
          op->work_cycles = rank_ == 0 ? 1e6 : 10;  // rank 0 is slow
          return Status::kLocal;
        case 1:
          return Status::kBarrier;
        default:
          if (shared_->before != 3) shared_->ok = false;
          return Status::kDone;
      }
    }

   private:
    Shared* shared_;
    std::uint32_t rank_;
    int stage_ = 0;
  };
  spmd.start(
      [&](std::uint32_t r) { return std::make_unique<Logic>(&shared, r); },
      [] {});
  engine.run();
  EXPECT_TRUE(shared.ok);
  EXPECT_EQ(shared.before, 3);
}

// -------------------------------------------------------- graph workloads --

TEST(SimBfs, SemanticsMatchHostReference) {
  const auto csr = graph::build_csr(
      600, graph::generate_uniform({600, 1, 5, 3}));
  // Host reference visited count.
  const GraphKernelResult xmt = sim_bfs_xmt(csr, 2, 0);  // host semantics
  const GraphKernelResult gmt = sim_bfs_gmt(csr, 3, 0, {}, {});
  const GraphKernelResult upc = sim_bfs_upc(csr, 3, 0, {});
  EXPECT_EQ(gmt.visited, xmt.visited);
  EXPECT_EQ(upc.visited, xmt.visited);
  EXPECT_EQ(gmt.edges_traversed, xmt.edges_traversed);
  EXPECT_EQ(upc.edges_traversed, xmt.edges_traversed);
  EXPECT_GT(gmt.seconds, 0.0);
  EXPECT_GT(upc.seconds, 0.0);
}

TEST(SimBfs, GmtBeatsUpc) {
  // Needs a frontier wide enough for multithreading to cover the
  // aggregation latency — the paper's central premise. (On tiny graphs
  // the flush deadline dominates and the comparison is meaningless.)
  const auto csr = graph::build_csr(
      20000, graph::generate_uniform({20000, 4, 16, 5}));
  const GraphKernelResult gmt = sim_bfs_gmt(csr, 4, 0, {}, {});
  const GraphKernelResult upc = sim_bfs_upc(csr, 4, 0, {});
  EXPECT_GT(gmt.mteps(), 3 * upc.mteps());
}

TEST(SimBfs, Deterministic) {
  const auto csr = graph::build_csr(
      500, graph::generate_uniform({500, 1, 6, 9}));
  const GraphKernelResult a = sim_bfs_gmt(csr, 2, 0, {}, {});
  const GraphKernelResult b = sim_bfs_gmt(csr, 2, 0, {}, {});
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(SimGrw, CountsAndDeterminism) {
  const auto csr = graph::build_csr(
      400, graph::generate_uniform({400, 1, 6, 13}));
  const GraphKernelResult a = sim_grw_gmt(csr, 2, 100, 10, {}, {});
  EXPECT_EQ(a.edges_traversed, 1000u);  // no dead ends
  const GraphKernelResult b = sim_grw_gmt(csr, 2, 100, 10, {}, {});
  EXPECT_EQ(a.seconds, b.seconds);
}

TEST(SimGrw, MpiModelsCompleteAllWalks) {
  const auto csr = graph::build_csr(
      300, graph::generate_uniform({300, 1, 5, 17}));
  const GraphKernelResult plain = sim_grw_mpi(csr, 3, 60, 8, {});
  const GraphKernelResult batched = sim_grw_mpi_batched(csr, 3, 60, 8, {});
  EXPECT_EQ(plain.edges_traversed, 60u * 8);
  EXPECT_EQ(batched.edges_traversed, 60u * 8);
  // Batching reduces message count by construction.
  EXPECT_LT(batched.messages, plain.messages);
}

TEST(SimGrw, GmtBeatsPerDelegationMpiAtScale) {
  // Weak-scaling shape: with enough walkers per node to keep the workers
  // multithreaded, GMT clears the per-delegation MPI baseline well.
  const auto csr = graph::build_csr(
      16000, graph::generate_uniform({16000, 2, 8, 19}));
  const GraphKernelResult gmt = sim_grw_gmt(csr, 4, 24000, 10, {}, {});
  const GraphKernelResult mpi = sim_grw_mpi(csr, 4, 24000, 10, {});
  EXPECT_GT(gmt.mteps(), 3 * mpi.mteps());
}

TEST(SimXmt, ModelScalesWithProcessors) {
  const auto csr = graph::build_csr(
      3000, graph::generate_uniform({3000, 4, 12, 23}));
  const GraphKernelResult two = sim_bfs_xmt(csr, 2, 0);
  const GraphKernelResult eight = sim_bfs_xmt(csr, 8, 0);
  EXPECT_GT(eight.mteps(), two.mteps());
}

// --------------------------------------------------------- CHMA workloads --

TEST(SimChma, AccessCountsAndDeterminism) {
  ChmaSimParams params;
  params.nodes = 2;
  params.tasks = 64;
  params.steps = 8;
  params.map_capacity = 1 << 12;
  params.pool_size = 1 << 10;
  params.populate = 1 << 9;
  const ChmaSimResult a = sim_chma_gmt(params, {}, {});
  EXPECT_EQ(a.accesses, 64u * 8);
  const ChmaSimResult b = sim_chma_gmt(params, {}, {});
  EXPECT_EQ(a.seconds, b.seconds);
  const ChmaSimResult mpi = sim_chma_mpi(params, {});
  EXPECT_EQ(mpi.accesses, 64u * 8);
  EXPECT_GT(mpi.seconds, 0.0);
}

TEST(SimChma, GmtThroughputGrowsWithW) {
  ChmaSimParams small;
  small.nodes = 2;
  small.tasks = 64;
  small.steps = 8;
  small.map_capacity = 1 << 12;
  small.pool_size = 1 << 10;
  small.populate = 1 << 9;
  ChmaSimParams large = small;
  large.tasks = 1024;
  EXPECT_GT(sim_chma_gmt(large, {}, {}).maccesses_per_s(),
            2 * sim_chma_gmt(small, {}, {}).maccesses_per_s());
}

TEST(SimChma, MpiThroughputFlatInW) {
  // The paper's point: MPI throughput is capped by ranks, not W.
  ChmaSimParams small;
  small.nodes = 2;
  small.tasks = 32;
  small.steps = 8;
  small.map_capacity = 1 << 12;
  small.pool_size = 1 << 10;
  small.populate = 1 << 9;
  ChmaSimParams large = small;
  large.tasks = 512;
  const double rate_small = sim_chma_mpi(small, {}).maccesses_per_s();
  const double rate_large = sim_chma_mpi(large, {}).maccesses_per_s();
  EXPECT_LT(rate_large, rate_small * 2);
}

}  // namespace
}  // namespace gmt::sim
