// Observability subsystem tests: histogram bucketing, sharded-counter
// merging under a thread storm, trace-JSON well-formedness, the typed span
// overloads, and the GMT_OBS=0 kill switch.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gmt/gmt.hpp"
#include "graph/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/cluster.hpp"
#include "sim/workloads_graph.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// ---- minimal JSON validator ----
//
// Recursive-descent acceptor for the full JSON grammar — enough to assert
// that a dumped trace is structurally valid (Chrome refuses anything less).

struct JsonParser {
  const char* p;
  const char* end;

  explicit JsonParser(const std::string& s)
      : p(s.data()), end(s.data() + s.size()) {}

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool string() {
    skip_ws();
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') ++p;
      ++p;
    }
    return p < end && *p++ == '"';
  }
  bool number() {
    skip_ws();
    const char* start = p;
    if (p < end && *p == '-') ++p;
    while (p < end && ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
                       *p == 'E' || *p == '+' || *p == '-'))
      ++p;
    return p != start;
  }
  bool literal(const char* word) {
    skip_ws();
    const std::size_t n = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < n || std::strncmp(p, word, n) != 0)
      return false;
    p += n;
    return true;
  }
  bool value() {
    skip_ws();
    if (p >= end) return false;
    switch (*p) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool document() {
    if (!value()) return false;
    skip_ws();
    return p == end;
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_trace_path(const char* tag) {
  return ::testing::TempDir() + "/gmt_trace_" + tag + ".json";
}

TEST(JsonValidator, SelfCheck) {
  EXPECT_TRUE(JsonParser(R"({"a":[1,2.5,-3e1],"b":{"c":"x\"y"},"d":null})")
                  .document());
  EXPECT_FALSE(JsonParser(R"({"a":[1,2})").document());
  EXPECT_FALSE(JsonParser(R"({"a":1,})").document());
  EXPECT_FALSE(JsonParser("{\"a\":1} trailing").document());
}

// ---- histogram bucketing ----

TEST(ObsHistogram, Log2BucketBoundaries) {
  obs::Registry registry("test");
  obs::Histogram hist = registry.histogram("h");

  // Bucket 0 holds zeros; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  hist.observe(0);
  hist.observe(1);
  hist.observe(2);
  hist.observe(3);
  hist.observe(4);
  hist.observe(7);
  hist.observe(8);
  hist.observe((1ull << 20) - 1);  // top of bucket 20
  hist.observe(1ull << 20);        // bottom of bucket 21
  hist.observe(~0ull);             // saturates into the last bucket

  const obs::HistogramValue v = hist.read();
  EXPECT_EQ(v.buckets[0], 1u);
  EXPECT_EQ(v.buckets[1], 1u);
  EXPECT_EQ(v.buckets[2], 2u);  // 2 and 3
  EXPECT_EQ(v.buckets[3], 2u);  // 4 and 7
  EXPECT_EQ(v.buckets[4], 1u);  // 8
  EXPECT_EQ(v.buckets[20], 1u);
  EXPECT_EQ(v.buckets[21], 1u);
  EXPECT_EQ(v.buckets[obs::kHistogramBuckets - 1], 1u);
  EXPECT_EQ(v.count, 10u);

  // Upper bounds match the bucketing rule.
  EXPECT_EQ(obs::HistogramValue::bucket_upper_bound(0), 0u);
  EXPECT_EQ(obs::HistogramValue::bucket_upper_bound(1), 1u);
  EXPECT_EQ(obs::HistogramValue::bucket_upper_bound(3), 7u);
  EXPECT_EQ(obs::HistogramValue::bucket_upper_bound(63), ~0ull);
}

TEST(ObsHistogram, SumAndMeanRideAlong) {
  obs::Registry registry("test");
  obs::Histogram hist = registry.histogram("h");
  hist.observe(100);
  hist.observe(300);
  const obs::HistogramValue v = hist.read();
  EXPECT_EQ(v.sum, 400u);
  EXPECT_DOUBLE_EQ(v.mean(), 200.0);
}

// ---- sharded counters ----

TEST(ObsRegistry, ShardedCountersMergeUnderThreadStorm) {
  obs::Registry registry("test");
  obs::Counter counter = registry.counter("storm");
  obs::Gauge gauge = registry.gauge("updown");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        gauge.inc();
        if (i % 2 == 0) gauge.dec();
      }
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.read(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.read(), static_cast<std::int64_t>(kThreads) * kPerThread / 2);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("storm"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, SameNameRebindsToSameSlot) {
  obs::Registry registry("test");
  obs::Counter a = registry.counter("shared");
  obs::Counter b = registry.counter("shared");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.read(), 7u);
  EXPECT_EQ(b.read(), 7u);
}

TEST(ObsRegistry, UnboundHandlesAreInert) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram hist;
  counter.add(5);
  gauge.inc();
  hist.observe(42);
  EXPECT_EQ(counter.read(), 0u);
  EXPECT_EQ(gauge.read(), 0);
  EXPECT_EQ(hist.read().count, 0u);
}

// ---- the GMT_OBS=0 kill switch ----

TEST(ObsEnabled, DisabledRegistryDropsWritesAndSnapshots) {
  obs::Registry registry("test");
  obs::Counter counter = registry.counter("c");
  counter.add(2);
  obs::set_enabled(false);
  counter.add(100);                           // dropped
  EXPECT_TRUE(registry.snapshot().empty());   // snapshots come back empty
  EXPECT_TRUE(obs::global_snapshot().empty());
  obs::set_enabled(true);
  EXPECT_EQ(counter.read(), 2u);  // pre-disable writes were kept
}

// ---- spans: public typed overloads ----

TEST(ObsPublicApi, SpanOverloadsRoundTrip) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(64 * sizeof(std::uint32_t),
                                 Alloc::kPartition);
    std::array<std::uint32_t, 64> data{};
    for (std::uint32_t i = 0; i < 64; ++i) data[i] = i * 7;
    gmt_put<std::uint32_t>(h, 0, std::span<const std::uint32_t>(data));

    std::array<std::uint32_t, 64> back{};
    gmt_get<std::uint32_t>(h, 0, std::span<std::uint32_t>(back));
    EXPECT_EQ(back, data);

    // Element-indexed partial window.
    std::array<std::uint32_t, 8> window{};
    gmt_get<std::uint32_t>(h, 16, std::span<std::uint32_t>(window));
    for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(window[i], (16 + i) * 7);
    gmt_free(h);
  });
}

TEST(ObsPublicApi, GlobalArraySpanForwarding) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto arr = GlobalArray<std::uint64_t>::allocate(128, Alloc::kPartition);
    std::array<std::uint64_t, 32> data{};
    for (std::uint64_t i = 0; i < 32; ++i) data[i] = i * i;
    arr.put(64, std::span<const std::uint64_t>(data));
    std::array<std::uint64_t, 32> back{};
    arr.get(64, std::span<std::uint64_t>(back));
    EXPECT_EQ(back, data);
    arr.free();
  });
}

// ---- tracing ----

TEST(ObsTrace, RuntimeSpansDumpAsValidChromeJson) {
  trace_reset();
  trace_enable(true);
  {
    rt::Cluster cluster(2, Config::testing());
    test::run_task(cluster, [] {
      const gmt_handle h = gmt_new(8 * 512, Alloc::kRemote);
      trace_begin("user.phase");
      test::parfor_lambda(128, 4, [&](std::uint64_t i) {
        gmt_put_value(h, (i % 512) * 8, i, 8);
      });
      trace_end();
      gmt_free(h);
    });
  }
  trace_enable(false);

  const std::string path = temp_trace_path("runtime");
  ASSERT_TRUE(dump_trace(path));
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonParser(json).document()) << "invalid JSON in " << path;

  // The runtime's signature spans are all present.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("task.lifetime"), std::string::npos);
  EXPECT_NE(json.find("task.run"), std::string::npos);
  EXPECT_NE(json.find("buffer.flush"), std::string::npos);
  EXPECT_NE(json.find("user.phase"), std::string::npos);
  EXPECT_NE(json.find("worker"), std::string::npos);  // named thread tracks
  std::remove(path.c_str());
  trace_reset();
}

TEST(ObsTrace, SimulatorEmitsVirtualTimeSpans) {
  trace_reset();
  trace_enable(true);
  const graph::Csr csr = graph::build_csr(
      200, graph::generate_uniform({200, 1, 4, /*seed=*/11}));
  (void)sim::sim_bfs_gmt(csr, 2, 0, {}, {});
  trace_enable(false);

  const std::string path = temp_trace_path("sim");
  ASSERT_TRUE(dump_trace(path));
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonParser(json).document()) << "invalid JSON in " << path;
  EXPECT_NE(json.find("sim/node0/tasks"), std::string::npos);
  EXPECT_NE(json.find("task.lifetime"), std::string::npos);
  EXPECT_NE(json.find("buffer.flush"), std::string::npos);
  std::remove(path.c_str());
  trace_reset();
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  trace_reset();
  ASSERT_FALSE(trace_enabled());
  trace_begin("ghost");
  trace_end();
  const std::string path = temp_trace_path("empty");
  ASSERT_TRUE(dump_trace(path));
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonParser(json).document());
  EXPECT_EQ(json.find("ghost"), std::string::npos);
  std::remove(path.c_str());
}

// ---- snapshots outliving the cluster ----

TEST(ObsSnapshot, RetainedAfterClusterTeardown) {
  obs::clear_retired_snapshots();
  {
    rt::Cluster cluster(2, Config::testing());
    test::run_task(cluster, [] {
      const gmt_handle h = gmt_new(8 * 64, Alloc::kPartition);
      test::parfor_lambda(64, 4, [&](std::uint64_t i) {
        gmt_put_value(h, i * 8, i, 8);
      });
      gmt_free(h);
    });
  }  // registries destroyed here
  const obs::Snapshot snap = stats_snapshot();
  EXPECT_GE(snap.counter(obs::names::kIterationsExecuted), 65u);
  EXPECT_GT(snap.counter(obs::names::kTasksExecuted), 0u);

  const std::string report = stats_report();
  EXPECT_NE(report.find("node0"), std::string::npos);
  EXPECT_NE(report.find("node1"), std::string::npos);
  obs::clear_retired_snapshots();
}

// ---- interval sampler ----

TEST(ObsSampler, IntervalHistoryRecordsSamples) {
  obs::clear_interval_history();
  {
    Config config = Config::testing();
    config.obs_interval_ms = 5;
    rt::Cluster cluster(2, config);
    test::run_task(cluster, [] {
      const gmt_handle h = gmt_new(8 * 256, Alloc::kPartition);
      test::parfor_lambda(256, 2, [&](std::uint64_t i) {
        gmt_put_value(h, i * 8, i, 8);
      });
      gmt_free(h);
    });
  }  // sampler's final tick fires before the nodes stop
  const auto history = obs::interval_history();
  ASSERT_GE(history.size(), 1u);
  const obs::Snapshot& last = history.back().stats;
  EXPECT_GT(last.counter(obs::names::kTasksExecuted), 0u);
  obs::clear_interval_history();
}

}  // namespace
}  // namespace gmt
