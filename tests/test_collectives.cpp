// Tests for the collective helpers composed from GMT primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

class Collectives : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  rt::Cluster cluster_{GetParam(), Config::testing()};
};

TEST_P(Collectives, FillWritesEveryElement) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 3000;
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    coll::fill_u64(h, 0, kCount, 0xabcd);
    std::vector<std::uint64_t> data(kCount);
    gmt_get(h, 0, data.data(), kCount * 8);
    for (std::uint64_t v : data) ASSERT_EQ(v, 0xabcdu);
    gmt_free(h);
  });
}

TEST_P(Collectives, FillSubRangeLeavesRestUntouched) {
  test::run_task(cluster_, [] {
    const gmt_handle h = gmt_new(100 * 8, Alloc::kPartition);
    coll::fill_u64(h, 10, 30, 7);
    std::vector<std::uint64_t> data(100);
    gmt_get(h, 0, data.data(), 100 * 8);
    for (std::uint64_t i = 0; i < 100; ++i)
      ASSERT_EQ(data[i], (i >= 10 && i < 40) ? 7u : 0u) << i;
    gmt_free(h);
  });
}

TEST_P(Collectives, ReduceSum) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 2500;
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    std::vector<std::uint64_t> data(kCount);
    std::iota(data.begin(), data.end(), 1);
    gmt_put(h, 0, data.data(), kCount * 8);
    EXPECT_EQ(coll::reduce_sum_u64(h, 0, kCount), kCount * (kCount + 1) / 2);
    EXPECT_EQ(coll::reduce_sum_u64(h, 100, 5),
              101u + 102 + 103 + 104 + 105);
    EXPECT_EQ(coll::reduce_sum_u64(h, 0, 0), 0u);  // empty range
    gmt_free(h);
  });
}

TEST_P(Collectives, ReduceMinMax) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 1200;
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    std::vector<std::uint64_t> data(kCount);
    for (std::uint64_t i = 0; i < kCount; ++i)
      data[i] = (i * 7919) % 10000 + 5;
    data[577] = 3;        // global min
    data[901] = 1 << 20;  // global max
    gmt_put(h, 0, data.data(), kCount * 8);
    EXPECT_EQ(coll::reduce_min_u64(h, 0, kCount), 3u);
    EXPECT_EQ(coll::reduce_max_u64(h, 0, kCount), 1u << 20);
    gmt_free(h);
  });
}

TEST_P(Collectives, CountEqual) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 2000;
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    coll::fill_u64(h, 0, kCount, 1);
    coll::fill_u64(h, 500, 250, 42);
    EXPECT_EQ(coll::count_equal_u64(h, 0, kCount, 42), 250u);
    EXPECT_EQ(coll::count_equal_u64(h, 0, kCount, 1), kCount - 250);
    EXPECT_EQ(coll::count_equal_u64(h, 0, kCount, 99), 0u);
    gmt_free(h);
  });
}

TEST_P(Collectives, CopyBetweenArrays) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kBytes = 200000;
    const gmt_handle src = gmt_new(kBytes, Alloc::kPartition);
    const gmt_handle dst = gmt_new(kBytes, Alloc::kRemote);
    std::vector<std::uint8_t> pattern(kBytes);
    for (std::uint64_t i = 0; i < kBytes; ++i)
      pattern[i] = static_cast<std::uint8_t>(i * 131 + 17);
    gmt_put(src, 0, pattern.data(), kBytes);
    coll::copy(dst, 0, src, 0, kBytes);
    std::vector<std::uint8_t> readback(kBytes);
    gmt_get(dst, 0, readback.data(), kBytes);
    EXPECT_EQ(readback, pattern);
    gmt_free(src);
    gmt_free(dst);
  });
}

TEST_P(Collectives, CopyWithOffsets) {
  test::run_task(cluster_, [] {
    const gmt_handle src = gmt_new(1000, Alloc::kPartition);
    const gmt_handle dst = gmt_new(1000, Alloc::kPartition);
    std::uint8_t marker[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    gmt_put(src, 123, marker, 10);
    coll::copy(dst, 777, src, 123, 10);
    std::uint8_t out[10];
    gmt_get(dst, 777, out, 10);
    EXPECT_EQ(std::memcmp(out, marker, 10), 0);
    gmt_free(src);
    gmt_free(dst);
  });
}

TEST_P(Collectives, HistogramCounts) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 1000;
    constexpr std::uint64_t kBins = 8;
    const gmt_handle data = gmt_new(kCount * 8, Alloc::kPartition);
    const gmt_handle bins = gmt_new(kBins * 8, Alloc::kPartition);
    std::vector<std::uint64_t> values(kCount);
    std::vector<std::uint64_t> expected(kBins, 0);
    for (std::uint64_t i = 0; i < kCount; ++i) {
      values[i] = i * i + 3;
      ++expected[values[i] % kBins];
    }
    gmt_put(data, 0, values.data(), kCount * 8);
    coll::histogram_mod_u64(data, 0, kCount, bins, kBins);
    std::vector<std::uint64_t> counts(kBins);
    gmt_get(bins, 0, counts.data(), kBins * 8);
    EXPECT_EQ(counts, expected);
    gmt_free(data);
    gmt_free(bins);
  });
}

// Reductions reuse a cached scratch accumulator: repeated calls must not
// grow the handle table (one cell per node is cached at most).
TEST_P(Collectives, RepeatedReductionsDoNotGrowHandleTable) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 500;
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    coll::fill_u64(h, 0, kCount, 2);
    EXPECT_EQ(coll::reduce_sum_u64(h, 0, kCount), 2 * kCount);  // caches
    gmt_free(h);
  });
  std::uint64_t base = 0;
  for (std::uint32_t n = 0; n < cluster_.num_nodes(); ++n)
    base += cluster_.node(n).memory().live_handles();
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 500;
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    coll::fill_u64(h, 0, kCount, 2);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(coll::reduce_sum_u64(h, 0, kCount), 2 * kCount);
      EXPECT_EQ(coll::reduce_min_u64(h, 0, kCount), 2u);
    }
    gmt_free(h);
  });
  std::uint64_t after = 0;
  for (std::uint32_t n = 0; n < cluster_.num_nodes(); ++n)
    after += cluster_.node(n).memory().live_handles();
  EXPECT_EQ(after, base);
}

INSTANTIATE_TEST_SUITE_P(Nodes, Collectives, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gmt
