// Fuzzes the reliable-delivery frame decode paths (label: flowcontrol).
//
// parse_frame / frame_length_mismatch are the first code that touches
// bytes from the wire, so they must reject every malformed input cleanly:
// no crash, no out-of-bounds read (this binary runs under the ASan
// preset), and no acceptance of a frame whose bytes were altered. Fixed
// seeds keep every run reproducible.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "net/frame.hpp"

namespace gmt::net {
namespace {

std::vector<std::uint8_t> make_valid_frame(std::mt19937_64& rng,
                                           std::size_t payload_len) {
  std::vector<std::uint8_t> frame(kFrameHeaderSize + payload_len);
  for (std::size_t i = kFrameHeaderSize; i < frame.size(); ++i)
    frame[i] = static_cast<std::uint8_t>(rng());
  FrameHeader header;
  header.type = static_cast<std::uint8_t>(payload_len > 0 ? FrameType::kData
                                                          : FrameType::kAck);
  header.src = static_cast<std::uint32_t>(rng() % 64);
  header.seq = rng();
  header.ack = rng();
  header.credit = static_cast<std::uint16_t>(rng());
  seal_frame(frame, header);
  return frame;
}

TEST(FrameFuzz, ValidFramesRoundTrip) {
  std::mt19937_64 rng(0xf00d);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t payload_len = rng() % 512;
    const auto frame = make_valid_frame(rng, payload_len);
    FrameHeader out;
    ASSERT_TRUE(parse_frame(frame, &out));
    EXPECT_EQ(out.payload_len, payload_len);
    EXPECT_FALSE(frame_length_mismatch(frame.data(), frame.size()));
    // refresh_frame_ack rewrites ack+credit and stays parseable.
    auto refreshed = frame;
    refresh_frame_ack(refreshed, rng(), static_cast<std::uint16_t>(rng()));
    ASSERT_TRUE(parse_frame(refreshed, &out));
  }
}

TEST(FrameFuzz, TruncationsAreRejected) {
  std::mt19937_64 rng(0xcafe);
  for (int i = 0; i < 2000; ++i) {
    auto frame = make_valid_frame(rng, 8 + rng() % 256);
    // Any proper prefix must be rejected — by parse_frame always, and by
    // the length-only check whenever the header survived intact.
    const std::size_t cut = rng() % frame.size();
    frame.resize(cut);
    FrameHeader out;
    EXPECT_FALSE(parse_frame(frame, &out)) << "accepted truncation to " << cut;
    if (cut >= kFrameHeaderSize)
      EXPECT_TRUE(frame_length_mismatch(frame.data(), frame.size()));
  }
}

TEST(FrameFuzz, ExtensionsAreRejected) {
  std::mt19937_64 rng(0xbeef);
  for (int i = 0; i < 2000; ++i) {
    auto frame = make_valid_frame(rng, rng() % 256);
    const std::size_t extra = 1 + rng() % 64;
    for (std::size_t j = 0; j < extra; ++j)
      frame.push_back(static_cast<std::uint8_t>(rng()));
    FrameHeader out;
    EXPECT_FALSE(parse_frame(frame, &out));
    EXPECT_TRUE(frame_length_mismatch(frame.data(), frame.size()));
  }
}

TEST(FrameFuzz, BitFlipsAreRejected) {
  std::mt19937_64 rng(0xd00d);
  int header_flips_caught = 0;
  for (int i = 0; i < 4000; ++i) {
    auto frame = make_valid_frame(rng, 4 + rng() % 128);
    const std::size_t byte = rng() % frame.size();
    const std::uint8_t bit = 1u << (rng() % 8);
    frame[byte] ^= bit;
    FrameHeader out;
    EXPECT_FALSE(parse_frame(frame, &out))
        << "accepted bit flip at byte " << byte;
    if (byte < kFrameHeaderSize) ++header_flips_caught;
    // Undo: the original must still parse (the flip, not shared state,
    // caused the rejection).
    frame[byte] ^= bit;
    ASSERT_TRUE(parse_frame(frame, &out));
  }
  EXPECT_GT(header_flips_caught, 0);
}

TEST(FrameFuzz, GarbageIsRejected) {
  std::mt19937_64 rng(0xabad1dea);
  for (int i = 0; i < 4000; ++i) {
    std::vector<std::uint8_t> buf(rng() % 600);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    // Half the time plant the magic so the check goes past the first gate.
    if (buf.size() >= 4 && rng() % 2 == 0)
      std::memcpy(buf.data(), &kFrameMagic, 4);
    FrameHeader out;
    EXPECT_FALSE(parse_frame(buf, &out));
    frame_length_mismatch(buf.data(), buf.size());  // must not crash
  }
}

TEST(FrameFuzz, DeclaredLengthLiesAreRejected) {
  std::mt19937_64 rng(0x1eaf);
  for (int i = 0; i < 2000; ++i) {
    auto frame = make_valid_frame(rng, 16 + rng() % 128);
    // Overwrite payload_len (offset 12) with a lie, leaving the CRC stale.
    std::uint32_t lie = static_cast<std::uint32_t>(rng());
    std::memcpy(frame.data() + 12, &lie, 4);
    FrameHeader out;
    EXPECT_FALSE(parse_frame(frame, &out));
    if (lie != frame.size() - kFrameHeaderSize)
      EXPECT_TRUE(frame_length_mismatch(frame.data(), frame.size()));
  }
}

}  // namespace
}  // namespace gmt::net
