// Unit tests for src/common: units, config, rng, timing, backoff.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace gmt {
namespace {

// ---------------------------------------------------------------- units --

TEST(Units, ParsesPlainNumbers) {
  std::uint64_t v = 0;
  ASSERT_TRUE(parse_size("0", &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(parse_size("12345", &v));
  EXPECT_EQ(v, 12345u);
}

TEST(Units, ParsesBinarySuffixes) {
  std::uint64_t v = 0;
  ASSERT_TRUE(parse_size("64K", &v));
  EXPECT_EQ(v, 64u << 10);
  ASSERT_TRUE(parse_size("64KB", &v));
  EXPECT_EQ(v, 64u << 10);
  ASSERT_TRUE(parse_size("2M", &v));
  EXPECT_EQ(v, 2u << 20);
  ASSERT_TRUE(parse_size("1GB", &v));
  EXPECT_EQ(v, 1ull << 30);
  ASSERT_TRUE(parse_size("1T", &v));
  EXPECT_EQ(v, 1ull << 40);
}

TEST(Units, ParsesLowercaseSuffixes) {
  std::uint64_t v = 0;
  ASSERT_TRUE(parse_size("8kb", &v));
  EXPECT_EQ(v, 8u << 10);
}

TEST(Units, ParsesFractions) {
  std::uint64_t v = 0;
  ASSERT_TRUE(parse_size("1.5K", &v));
  EXPECT_EQ(v, 1536u);
}

TEST(Units, RejectsGarbage) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_size("", &v));
  EXPECT_FALSE(parse_size("abc", &v));
  EXPECT_FALSE(parse_size("12X", &v));
  EXPECT_FALSE(parse_size("12KBs", &v));
  EXPECT_FALSE(parse_size("-5", &v));
}

TEST(Units, FormatsBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(65536), "64.00 KB");
  EXPECT_EQ(format_bytes(2.5 * 1024 * 1024), "2.50 MB");
}

TEST(Units, FormatsRatesAndCounts) {
  EXPECT_EQ(format_rate(2048), "2.00 KB/s");
  EXPECT_EQ(format_count(1.5e6), "1.50 M");
}

// --------------------------------------------------------------- config --

TEST(Config, OlympusMatchesPaperTableIV) {
  const Config c = Config::olympus();
  EXPECT_EQ(c.num_workers, 15u);
  EXPECT_EQ(c.num_helpers, 15u);
  EXPECT_EQ(c.num_buf_per_channel, 4u);
  EXPECT_EQ(c.max_tasks_per_worker, 1024u);
  EXPECT_EQ(c.buffer_size, 64u * 1024);
  EXPECT_TRUE(c.validate().empty());
}

TEST(Config, TestingConfigValidates) {
  EXPECT_TRUE(Config::testing().validate().empty());
}

TEST(Config, RejectsZeroWorkers) {
  Config c = Config::testing();
  c.num_workers = 0;
  EXPECT_FALSE(c.validate().empty());
}

TEST(Config, RejectsTinyBuffers) {
  Config c = Config::testing();
  c.buffer_size = 64;
  EXPECT_FALSE(c.validate().empty());
}

TEST(Config, RejectsTinyStacks) {
  Config c = Config::testing();
  c.task_stack_size = 1024;
  EXPECT_FALSE(c.validate().empty());
}

TEST(Config, EnvOverrides) {
  setenv("GMT_NUM_WORKERS", "7", 1);
  setenv("GMT_BUFFER_SIZE", "32K", 1);
  Config c = Config::testing();
  c.apply_env();
  EXPECT_EQ(c.num_workers, 7u);
  EXPECT_EQ(c.buffer_size, 32u * 1024);
  unsetenv("GMT_NUM_WORKERS");
  unsetenv("GMT_BUFFER_SIZE");
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

// ----------------------------------------------------------------- time --

TEST(Time, WallClockMonotonic) {
  const std::uint64_t a = wall_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const std::uint64_t b = wall_ns();
  EXPECT_GT(b, a);
}

TEST(Time, TscCalibrationSane) {
  const double hz = tsc_hz();
  EXPECT_GT(hz, 1e8);   // >100 MHz
  EXPECT_LT(hz, 1e11);  // <100 GHz
}

TEST(Time, CycleConversionRoundTrips) {
  const double ns = cycles_to_ns(ns_to_cycles(1000.0));
  EXPECT_NEAR(ns, 1000.0, 1e-6);
}

TEST(Time, StopWatchMeasures) {
  StopWatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.elapsed_s(), 0.004);
  EXPECT_LT(watch.elapsed_s(), 1.0);
}

// -------------------------------------------------------------- backoff --

TEST(Backoff, EscalatesToSleeping) {
  Backoff backoff(4, 4);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(backoff.sleeping());
    backoff.pause();
  }
  EXPECT_TRUE(backoff.sleeping());
  backoff.reset();
  EXPECT_FALSE(backoff.sleeping());
}

// ------------------------------------------------------------ cacheline --

TEST(Cacheline, PaddedIsolates) {
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLine, 0u);
  EXPECT_EQ(sizeof(PaddedAtomicU64), kCacheLine);
  EXPECT_EQ(alignof(PaddedAtomicU64), kCacheLine);
}

}  // namespace
}  // namespace gmt
