// Tests of the GMT kernels against host-side reference implementations.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "kernels/bfs_gmt.hpp"
#include "kernels/chma_gmt.hpp"
#include "kernels/grw_gmt.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// Host reference BFS: visited count and level structure.
struct HostBfs {
  std::uint64_t visited = 0;
  std::uint64_t levels = 0;
  std::uint64_t edges = 0;
  std::vector<std::uint64_t> depth;  // ~0 = unreached
};

HostBfs host_bfs(const graph::Csr& csr, std::uint64_t root) {
  HostBfs result;
  result.depth.assign(csr.vertices, ~0ULL);
  std::queue<std::uint64_t> queue;
  result.depth[root] = 0;
  queue.push(root);
  result.visited = 1;
  while (!queue.empty()) {
    const std::uint64_t v = queue.front();
    queue.pop();
    result.levels = std::max(result.levels, result.depth[v] + 1);
    for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      ++result.edges;
      const std::uint64_t u = csr.adjacency[e];
      if (result.depth[u] == ~0ULL) {
        result.depth[u] = result.depth[v] + 1;
        queue.push(u);
        ++result.visited;
      }
    }
  }
  return result;
}

graph::Csr test_graph(std::uint64_t vertices, std::uint64_t seed) {
  return graph::build_csr(
      vertices, graph::generate_uniform({vertices, 1, 6, seed}));
}

// ---- BFS ----

class BfsNodes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BfsNodes, MatchesHostReference) {
  const std::uint32_t nodes = GetParam();
  const graph::Csr csr = test_graph(800, 17);
  const HostBfs reference = host_bfs(csr, 0);

  rt::Cluster cluster(nodes, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::BfsResult result = kernels::bfs_gmt(dist, 0);
    EXPECT_EQ(result.visited, reference.visited);
    EXPECT_EQ(result.levels, reference.levels);
    EXPECT_EQ(result.edges_traversed, reference.edges);
    dist.destroy();
  });
}

INSTANTIATE_TEST_SUITE_P(Nodes, BfsNodes, ::testing::Values(1, 2, 3));

TEST(Bfs, DifferentRootsStillCorrect) {
  const graph::Csr csr = test_graph(400, 5);
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    for (std::uint64_t root : {1ULL, 57ULL, 399ULL}) {
      const HostBfs reference = host_bfs(csr, root);
      const kernels::BfsResult result = kernels::bfs_gmt(dist, root);
      EXPECT_EQ(result.visited, reference.visited) << "root " << root;
      EXPECT_EQ(result.edges_traversed, reference.edges) << "root " << root;
    }
    dist.destroy();
  });
}

TEST(Bfs, IsolatedRoot) {
  // A root with no outgoing edges: BFS visits just the root.
  graph::Csr csr = graph::build_csr(10, {{1, 2}, {2, 3}});
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::BfsResult result = kernels::bfs_gmt(dist, 0);
    EXPECT_EQ(result.visited, 1u);
    EXPECT_EQ(result.edges_traversed, 0u);
    dist.destroy();
  });
}

TEST(Bfs, ExplicitChunkSize) {
  const graph::Csr csr = test_graph(300, 23);
  const HostBfs reference = host_bfs(csr, 0);
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::BfsResult result = kernels::bfs_gmt(dist, 0, /*chunk=*/3);
    EXPECT_EQ(result.visited, reference.visited);
    dist.destroy();
  });
}

// ---- GRW ----

TEST(Grw, TraversesExactlyRequestedEdges) {
  // On a graph with no dead ends every step traverses one edge.
  const graph::Csr csr = test_graph(200, 31);  // min_degree 1: no dead ends
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::GrwResult result = kernels::grw_gmt(dist, 40, 25);
    EXPECT_EQ(result.edges_traversed, 40u * 25);
    dist.destroy();
  });
}

TEST(Grw, DeadEndsTeleportWithoutCounting) {
  // Star graph pointing at a sink: walks hit the sink and teleport.
  std::vector<graph::Edge> edges;
  for (std::uint64_t v = 1; v < 20; ++v) edges.push_back({v, 0});
  const graph::Csr csr = graph::build_csr(20, edges);  // vertex 0: no out
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::GrwResult result = kernels::grw_gmt(dist, 10, 12);
    EXPECT_LE(result.edges_traversed, 10u * 12);
    EXPECT_GT(result.edges_traversed, 0u);
    dist.destroy();
  });
}

TEST(Grw, WalkerCountScalesWork) {
  const graph::Csr csr = test_graph(100, 3);
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const auto small = kernels::grw_gmt(dist, 10, 10);
    const auto large = kernels::grw_gmt(dist, 30, 10);
    EXPECT_EQ(small.edges_traversed, 100u);
    EXPECT_EQ(large.edges_traversed, 300u);
    dist.destroy();
  });
}

// ---- CHMA ----

TEST(Chma, SetupPopulatesMap) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto workload = kernels::ChmaWorkload::setup(1024, 256, 128, 7);
    const auto pool = hash::generate_pool(256, 7);
    // The first 128 pool strings are present.
    for (int i = 0; i < 128; ++i)
      ASSERT_TRUE(workload.map.contains(pool[i])) << "key " << i;
    workload.destroy();
  });
}

TEST(Chma, AccessesCountMatchesWxL) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto workload = kernels::ChmaWorkload::setup(1024, 256, 128, 7);
    const auto result = kernels::chma_gmt(workload, 16, 8);
    EXPECT_EQ(result.accesses, 16u * 8);
    EXPECT_EQ(result.tasks, 16u);
    EXPECT_EQ(result.steps_per_task, 8u);
    workload.destroy();
  });
}

TEST(Chma, ReverseInsertionsLand) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    auto workload = kernels::ChmaWorkload::setup(2048, 128, 128, 9);
    kernels::chma_gmt(workload, 8, 16, 9);
    // Every original key still present (re-inserts are idempotent; the
    // kernel only adds reversed variants).
    const auto pool = hash::generate_pool(128, 9);
    for (const auto& key : pool) ASSERT_TRUE(workload.map.contains(key));
    workload.destroy();
  });
}

}  // namespace
}  // namespace gmt
