// Histogram-sort and prefix-scan tests: the gmt_scan collective against a
// host oracle (stripe boundaries, in-place, sub-ranges), the sort's
// randomized property suite (output bit-exact against std::sort, per-bucket
// offsets consistent with the host histogram), empty/single-bucket/slice-
// boundary edges, the task-exit drain regression the old histogram zeroing
// relied on, and a kill-a-node-mid-sort fault case that must recover an
// exact result from replicas after the membership epoch commits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/config.hpp"
#include "gmt/error.hpp"
#include "gmt/gmt.hpp"
#include "kernels/histogram_gmt.hpp"
#include "kernels/sort_gmt.hpp"
#include "net/faulty_transport.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "runtime/stats_report.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

Config sort_config(bool combine) {
  Config config = Config::testing();
  config.num_workers = 2;
  config.combine = combine;
  config.combine_table = 64;
  return config;
}

// Chunked read-back of an n x u64 global array.
std::vector<std::uint64_t> read_u64(gmt_handle h, std::uint64_t n) {
  std::vector<std::uint64_t> out(n);
  constexpr std::uint64_t kChunk = 4096;
  for (std::uint64_t i = 0; i < n; i += kChunk) {
    const std::uint64_t count = n - i < kChunk ? n - i : kChunk;
    gmt_get(h, i * 8, out.data() + i, count * 8);
  }
  return out;
}

std::vector<std::uint64_t> host_histogram(
    const std::vector<std::uint64_t>& keys, std::uint64_t buckets) {
  std::vector<std::uint64_t> counts(buckets, 0);
  for (const std::uint64_t k : keys) ++counts[k];
  return counts;
}

std::vector<std::uint64_t> host_exclusive_scan(
    const std::vector<std::uint64_t>& in) {
  std::vector<std::uint64_t> out(in.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = running;
    running += in[i];
  }
  return out;
}

// Uploads keys, sorts, and checks the full contract against the host:
// sorted output bit-exact against std::sort, offsets equal to the exclusive
// scan of the host histogram (so per-bucket counts derived from adjacent
// offsets sum to n), and the phase timers populated.
void check_sort_matches_oracle(const std::vector<std::uint64_t>& keys,
                               std::uint64_t buckets,
                               kernels::HistogramMode mode) {
  const gmt_handle kh = kernels::upload_keys(keys);
  kernels::SortResult result =
      kernels::sort_gmt(kh, keys.size(), buckets, mode);
  ASSERT_EQ(gmt_last_error(), GMT_ERR_OK);

  std::vector<std::uint64_t> oracle = keys;
  std::sort(oracle.begin(), oracle.end());
  if (keys.empty()) {
    EXPECT_EQ(result.sorted, kNullHandle);
  } else {
    ASSERT_NE(result.sorted, kNullHandle);
    const std::vector<std::uint64_t> sorted =
        read_u64(result.sorted, keys.size());
    // Bit-exact match: bucket-internal order is vacuous (equal keys), so
    // the nondeterministic per-task window-claim order cannot show here.
    EXPECT_EQ(sorted, oracle);
  }

  const std::vector<std::uint64_t> expected_offsets =
      host_exclusive_scan(host_histogram(keys, buckets));
  const std::vector<std::uint64_t> offsets = read_u64(result.offsets, buckets);
  EXPECT_EQ(offsets, expected_offsets);

  kernels::sort_free(result);
  if (kh != kNullHandle) gmt_free(kh);
}

// ---------------------------------------------------------------- scan --

class Scan : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  rt::Cluster cluster_{GetParam(), Config::testing()};
};

TEST_P(Scan, MatchesHostAcrossStripeBoundaries) {
  test::run_task(cluster_, [] {
    // 512 is the stripe size: cover below, at, just above, and far above.
    for (const std::uint64_t count : {1ull, 5ull, 511ull, 512ull, 513ull,
                                      2500ull}) {
      std::mt19937_64 rng(count * 77 + 1);
      std::vector<std::uint64_t> in(count);
      for (auto& v : in) v = rng() % 1000;
      const gmt_handle src = gmt_new(count * 8, Alloc::kPartition);
      const gmt_handle dst = gmt_new(count * 8, Alloc::kPartition);
      gmt_put(src, 0, in.data(), count * 8);

      const std::uint64_t total = gmt_scan(src, dst, count);
      std::uint64_t expected_total = 0;
      for (const std::uint64_t v : in) expected_total += v;
      EXPECT_EQ(total, expected_total) << "count " << count;
      EXPECT_EQ(read_u64(dst, count), host_exclusive_scan(in))
          << "count " << count;
      gmt_free(src);
      gmt_free(dst);
    }
  });
}

TEST_P(Scan, EmptyRangeReturnsZeroAndWritesNothing) {
  test::run_task(cluster_, [] {
    const gmt_handle h = gmt_new(8 * 8, Alloc::kPartition);
    coll::fill_u64(h, 0, 8, 0xdead);
    EXPECT_EQ(gmt_scan(h, h, 0), 0u);
    for (const std::uint64_t v : read_u64(h, 8)) EXPECT_EQ(v, 0xdeadu);
    gmt_free(h);
  });
}

TEST_P(Scan, InPlaceAndSubRange) {
  test::run_task(cluster_, [] {
    constexpr std::uint64_t kCount = 1500;
    std::mt19937_64 rng(9);
    std::vector<std::uint64_t> in(kCount);
    for (auto& v : in) v = rng() % 50;

    // In-place: src == dst over the identical range.
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    gmt_put(h, 0, in.data(), kCount * 8);
    gmt_scan(h, h, kCount);
    EXPECT_EQ(read_u64(h, kCount), host_exclusive_scan(in));

    // Sub-range with distinct firsts: scan in[100..700) into out[10..610),
    // leaving the cells around the destination window untouched.
    gmt_put(h, 0, in.data(), kCount * 8);
    const gmt_handle out = gmt_new(700 * 8, Alloc::kPartition);
    coll::fill_u64(out, 0, 700, 7);
    const std::vector<std::uint64_t> window(in.begin() + 100,
                                            in.begin() + 700);
    const std::uint64_t total = gmt_scan(h, out, 600, 100, 10);
    std::uint64_t expected_total = 0;
    for (const std::uint64_t v : window) expected_total += v;
    EXPECT_EQ(total, expected_total);
    const std::vector<std::uint64_t> expected = host_exclusive_scan(window);
    const std::vector<std::uint64_t> got = read_u64(out, 700);
    for (std::uint64_t i = 0; i < 700; ++i) {
      if (i < 10 || i >= 610)
        EXPECT_EQ(got[i], 7u) << "clobbered cell " << i;
      else
        EXPECT_EQ(got[i], expected[i - 10]) << "cell " << i;
    }
    gmt_free(h);
    gmt_free(out);
  });
}

INSTANTIATE_TEST_SUITE_P(Nodes, Scan, ::testing::Values(1u, 3u));

// ---------------------------------------------------------------- sort --

struct SortCase {
  const char* name;
  bool combine;
  kernels::HistogramMode mode;
};

void PrintTo(const SortCase& c, std::ostream* os) { *os << c.name; }

class SortExact : public ::testing::TestWithParam<SortCase> {};

// The headline contract on skewed keys: both counting strategies, with and
// without the combining table, produce output bit-exact against std::sort.
TEST_P(SortExact, MatchesStdSortOracle) {
  const SortCase& sc = GetParam();
  Config config = sort_config(sc.combine);
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  constexpr std::uint64_t kKeys = 30'000;
  constexpr std::uint64_t kBuckets = 97;  // non-power-of-two on purpose
  const std::vector<std::uint64_t> keys =
      kernels::make_zipf_keys(kKeys, kBuckets, 1.1, /*seed=*/0x50e7);

  rt::Cluster cluster(3, config);
  test::run_task(cluster,
                 [&] { check_sort_matches_oracle(keys, kBuckets, sc.mode); });
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SortExact,
    ::testing::Values(
        SortCase{"DirectCombineOff", false, kernels::HistogramMode::kDirect},
        SortCase{"DirectCombineOn", true, kernels::HistogramMode::kDirect},
        SortCase{"TwoPhaseCombineOff", false,
                 kernels::HistogramMode::kTwoPhase},
        SortCase{"TwoPhaseCombineOn", true,
                 kernels::HistogramMode::kTwoPhase}),
    [](const ::testing::TestParamInfo<SortCase>& info) {
      return std::string(info.param.name);
    });

// Randomized property sweep: sizes straddling the 8192-key slice boundary,
// bucket counts from 1 (every key identical destination: the single-bucket
// degenerate case) to more buckets than keys, uniform and skewed draws.
TEST(Sort, RandomizedPropertySuite) {
  Config config = sort_config(true);
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  struct Shape {
    std::uint64_t n;
    std::uint64_t buckets;
    double skew;
  };
  const Shape shapes[] = {
      {1, 1, 0.0},       {17, 1, 0.0},      {1000, 1300, 0.0},
      {8192, 64, 0.5},   {8193, 64, 1.3},   {20'000, 513, 1.0},
      {4096, 3, 1.5},
  };

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    std::uint32_t which = 0;
    for (const Shape& shape : shapes) {
      const std::vector<std::uint64_t> keys = kernels::make_zipf_keys(
          shape.n, shape.buckets, shape.skew, /*seed=*/0xabc + which);
      const kernels::HistogramMode mode =
          which % 2 ? kernels::HistogramMode::kTwoPhase
                    : kernels::HistogramMode::kDirect;
      check_sort_matches_oracle(keys, shape.buckets, mode);
      ++which;
    }
  });
}

// n = 0: upload of an empty key set has no backing array (kNullHandle),
// the histogram spawns zero slices, and the sort returns a null sorted
// handle with all-zero offsets instead of tripping gmt_new(0).
TEST(Sort, EmptyInput) {
  Config config = sort_config(true);
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const std::vector<std::uint64_t> none;
    EXPECT_EQ(kernels::upload_keys(none), kNullHandle);

    const kernels::HistogramResult hist = kernels::histogram_gmt(
        kNullHandle, 0, 13, kernels::HistogramMode::kDirect);
    for (const std::uint64_t c : read_u64(hist.counts, 13)) EXPECT_EQ(c, 0u);
    gmt_free(hist.counts);

    check_sort_matches_oracle(none, 13, kernels::HistogramMode::kTwoPhase);
  });
}

// Regression for the contract the old histogram zeroing leaned on: a parfor
// body may finish with fire-and-forget puts still in flight, and the
// implicit end-of-task wait must drain them (combining table included)
// before the parfor returns — a subsequent reader can never observe the old
// cell values. Pinned with combining both off and on, since held
// combining-table entries complete later than plain aggregated commands.
TEST(Sort, TaskExitDrainsNonBlockingPuts) {
  for (const bool combine : {false, true}) {
    Config config = sort_config(combine);
    ASSERT_TRUE(config.validate().empty()) << config.validate();
    rt::Cluster cluster(3, config);
    test::run_task(cluster, [combine] {
      constexpr std::uint64_t kCells = 3000;
      const gmt_handle h = gmt_new(kCells * 8, Alloc::kPartition);
      coll::fill_u64(h, 0, kCells, ~0ull);
      test::parfor_lambda(kCells, 0, [&](std::uint64_t i) {
        gmt_put_value_nb(h, i * 8, i ^ 0x9e37, 8);
        // No gmt_wait_commands() on purpose: task exit must drain.
      });
      const std::vector<std::uint64_t> cells = read_u64(h, kCells);
      for (std::uint64_t i = 0; i < kCells; ++i)
        ASSERT_EQ(cells[i], i ^ 0x9e37) << "cell " << i << " combine "
                                        << combine;
      gmt_free(h);
    });
  }
}

// Kill a node mid-sort. With replication on, the lost partitions (keys,
// counts, cursors, output) remap to replicas at the epoch change; a retry
// after the degraded run must produce a bit-exact sorted result — the
// fault-matrix version of the acceptance criterion. Mirrors the
// KillMidBfsSurvivorsRecoverExactly structure.
TEST(Sort, KillMidSortRecoversExactly) {
  Config config = sort_config(true);
  config.reliable_transport = true;
  config.membership = true;
  config.replicate = true;
  config.heartbeat_ns = 2'000'000;          // 2 ms
  config.suspect_timeout_ns = 200'000'000;  // 200 ms
  config.fault.kill_node = 2;
  config.fault.kill_at = 400;  // dies with shuffle traffic in flight
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  constexpr std::uint64_t kKeys = 25'000;
  constexpr std::uint64_t kBuckets = 128;
  const std::vector<std::uint64_t> keys =
      kernels::make_zipf_keys(kKeys, kBuckets, 1.0, /*seed=*/0xdead);
  std::vector<std::uint64_t> oracle = keys;
  std::sort(oracle.begin(), oracle.end());

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    const gmt_handle kh = kernels::upload_keys(keys);
    ASSERT_EQ(gmt_last_error(), GMT_ERR_OK) << "upload before the kill";

    bool ok = false;
    std::vector<std::uint64_t> sorted;
    for (int attempt = 0; attempt < 8 && !ok; ++attempt) {
      gmt_clear_error();
      kernels::SortResult result = kernels::sort_gmt(
          kh, kKeys, kBuckets, kernels::HistogramMode::kDirect);
      if (gmt_last_error() == GMT_ERR_OK && result.sorted != kNullHandle) {
        sorted = read_u64(result.sorted, kKeys);
        ok = gmt_last_error() == GMT_ERR_OK;
      }
      gmt_clear_error();
      kernels::sort_free(result);
      gmt_clear_error();
      if (!ok && !gmt_node_is_live(config.fault.kill_node)) {
        // Dead node noticed: wait for the epoch so the retry partitions
        // its parfors over the survivors only.
        while (gmt_membership_epoch() == 0) gmt_yield();
      }
    }
    ASSERT_TRUE(ok) << "sort never completed cleanly";
    EXPECT_EQ(sorted, oracle);

    // A late kill_at may only trip after the sort finished; waiting for
    // the epoch keeps the post-conditions below meaningful.
    while (gmt_membership_epoch() == 0) gmt_yield();
    gmt_clear_error();
    gmt_free(kh);
    gmt_clear_error();
  });

  const net::FaultyTransport* victim =
      cluster.faulty_transport(config.fault.kill_node);
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(victim->killed());
  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GE(summary.membership_epoch, 1u);
}

}  // namespace
}  // namespace gmt
