// Tests for the global address space: handle encoding, block distribution
// properties, and handle-table lifecycle.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "runtime/global_memory.hpp"

namespace gmt::rt {
namespace {

TEST(Handle, EncodingRoundTrips) {
  const gmt_handle h = make_handle(300, 123456, 7);
  EXPECT_EQ(handle_node(h), 300u);
  EXPECT_EQ(handle_slot(h), 123456u);
  EXPECT_EQ(handle_generation(h), 7u);
}

TEST(Handle, NullIsNeverValid) {
  GlobalMemory gm(0, 4);
  EXPECT_FALSE(gm.valid(kNullHandle));
}

// ---- block distribution properties (parameterised sweep) ----
// Tuple: (total size, num nodes, policy, home node)

using DistParam = std::tuple<std::uint64_t, std::uint32_t, Alloc,
                             std::uint32_t>;

class Distribution : public ::testing::TestWithParam<DistParam> {};

TEST_P(Distribution, PartitionsCoverWithoutOverlap) {
  const auto [size, nodes, policy, home] = GetParam();
  ArrayMeta meta;
  meta.size = size;
  meta.policy = policy;
  meta.home_node = home;
  meta.num_nodes = nodes;

  // Sum of per-node bytes equals the total.
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < nodes; ++n) total += meta.bytes_on_node(n);
  EXPECT_EQ(total, size);

  // Decomposing the full range produces contiguous, non-overlapping spans
  // whose owners match bytes_on_node accounting.
  std::vector<OwnedSpan> spans;
  meta.decompose(0, size, &spans);
  std::uint64_t covered = 0;
  std::vector<std::uint64_t> per_node(nodes, 0);
  for (const OwnedSpan& span : spans) {
    EXPECT_EQ(span.global_offset, covered);
    EXPECT_GT(span.size, 0u);
    ASSERT_LT(span.node, nodes);
    per_node[span.node] += span.size;
    covered += span.size;
  }
  EXPECT_EQ(covered, size);
  for (std::uint32_t n = 0; n < nodes; ++n)
    EXPECT_EQ(per_node[n], meta.bytes_on_node(n)) << "node " << n;
}

TEST_P(Distribution, PolicyRespectsPlacement) {
  const auto [size, nodes, policy, home] = GetParam();
  ArrayMeta meta;
  meta.size = size;
  meta.policy = policy;
  meta.home_node = home;
  meta.num_nodes = nodes;

  if (policy == Alloc::kLocal) {
    EXPECT_EQ(meta.bytes_on_node(home), size);
  }
  if (policy == Alloc::kRemote && nodes > 1) {
    EXPECT_EQ(meta.bytes_on_node(home), 0u);
  }
}

TEST_P(Distribution, BlocksAreWordAligned) {
  const auto [size, nodes, policy, home] = GetParam();
  ArrayMeta meta;
  meta.size = size;
  meta.policy = policy;
  meta.home_node = home;
  meta.num_nodes = nodes;
  EXPECT_EQ(meta.block_size() % 8, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Distribution,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(1, 7, 8, 64, 1000, 4096, 100000,
                                         1 << 20),
        ::testing::Values<std::uint32_t>(1, 2, 3, 5, 8, 16),
        ::testing::Values(Alloc::kPartition, Alloc::kLocal, Alloc::kRemote),
        ::testing::Values<std::uint32_t>(0)));

INSTANTIATE_TEST_SUITE_P(
    NonZeroHome, Distribution,
    ::testing::Combine(::testing::Values<std::uint64_t>(1000, 4096),
                       ::testing::Values<std::uint32_t>(3, 8),
                       ::testing::Values(Alloc::kPartition, Alloc::kLocal,
                                         Alloc::kRemote),
                       ::testing::Values<std::uint32_t>(1, 2)));

TEST(Distribution, DecomposeSubRanges) {
  ArrayMeta meta;
  meta.size = 1000;
  meta.policy = Alloc::kPartition;
  meta.num_nodes = 4;
  // block_size = roundup8(250) = 256.
  EXPECT_EQ(meta.block_size(), 256u);

  std::vector<OwnedSpan> spans;
  meta.decompose(250, 20, &spans);  // crosses the 256 boundary
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].node, 0u);
  EXPECT_EQ(spans[0].local_offset, 250u);
  EXPECT_EQ(spans[0].size, 6u);
  EXPECT_EQ(spans[1].node, 1u);
  EXPECT_EQ(spans[1].local_offset, 0u);
  EXPECT_EQ(spans[1].size, 14u);
}

TEST(Distribution, RemotePolicySkipsHome) {
  ArrayMeta meta;
  meta.size = 3000;
  meta.policy = Alloc::kRemote;
  meta.home_node = 1;
  meta.num_nodes = 4;
  std::vector<OwnedSpan> spans;
  meta.decompose(0, meta.size, &spans);
  for (const OwnedSpan& span : spans) EXPECT_NE(span.node, 1u);
}

// kRemote on one node has nobody else to hold the data: documented
// degeneration to a single home-node partition (gmt/types.hpp).
TEST(Distribution, RemoteSingleNodeDegeneratesToHome) {
  ArrayMeta meta;
  meta.size = 1000;
  meta.policy = Alloc::kRemote;
  meta.home_node = 0;
  meta.num_nodes = 1;
  EXPECT_EQ(meta.partition_count(), 1u);
  EXPECT_EQ(meta.partition_node(0), 0u);
  EXPECT_EQ(meta.node_partition(0), 0);
  EXPECT_EQ(meta.bytes_on_node(0), 1000u);
  std::vector<OwnedSpan> spans;
  meta.decompose(0, meta.size, &spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].node, 0u);
  EXPECT_EQ(spans[0].size, 1000u);
}

// Direct unit coverage of the placement arithmetic: partition_node and
// node_partition are inverses over owning nodes, and non-owners hold zero
// bytes, for every policy / cluster size / home combination.
TEST(Distribution, PartitionArithmeticRoundTrips) {
  for (const Alloc policy :
       {Alloc::kPartition, Alloc::kLocal, Alloc::kRemote}) {
    for (const std::uint32_t nodes : {1u, 2u, 5u, 8u}) {
      for (std::uint32_t home = 0; home < nodes; ++home) {
        ArrayMeta meta;
        meta.size = 4096;
        meta.policy = policy;
        meta.home_node = home;
        meta.num_nodes = nodes;
        for (std::uint32_t p = 0; p < meta.partition_count(); ++p) {
          const std::uint32_t owner = meta.partition_node(p);
          ASSERT_LT(owner, nodes)
              << "policy " << static_cast<int>(policy) << " nodes " << nodes
              << " home " << home << " part " << p;
          EXPECT_EQ(meta.node_partition(owner),
                    static_cast<std::int64_t>(p));
        }
        for (std::uint32_t n = 0; n < nodes; ++n) {
          const std::int64_t part = meta.node_partition(n);
          if (part < 0)
            EXPECT_EQ(meta.bytes_on_node(n), 0u);
          else
            EXPECT_EQ(meta.partition_node(static_cast<std::uint32_t>(part)),
                      n);
        }
      }
    }
  }
}

// ---- handle table lifecycle ----

TEST(GlobalMemory, RegisterAndAccess) {
  GlobalMemory gm(0, 2);
  const gmt_handle h = gm.reserve_handle();
  gm.register_array(h, 1024, Alloc::kPartition, 0);
  EXPECT_TRUE(gm.valid(h));
  LocalArray& array = gm.get(h);
  EXPECT_EQ(array.meta.size, 1024u);
  EXPECT_EQ(array.partition_bytes, array.meta.bytes_on_node(0));
  // Storage is zero-initialised.
  for (std::uint64_t i = 0; i < array.partition_bytes; ++i)
    ASSERT_EQ(array.partition[i], 0);
  EXPECT_EQ(gm.local_bytes(), array.partition_bytes);
  gm.unregister_array(h);
  EXPECT_FALSE(gm.valid(h));
  EXPECT_EQ(gm.local_bytes(), 0u);
}

TEST(GlobalMemory, HandlesAreUniqueAndTagged) {
  GlobalMemory gm(3, 8);
  const gmt_handle a = gm.reserve_handle();
  const gmt_handle b = gm.reserve_handle();
  EXPECT_NE(a, b);
  EXPECT_EQ(handle_node(a), 3u);
  EXPECT_EQ(handle_node(b), 3u);
}

TEST(GlobalMemory, RemoteNodeHoldsNoLocalPartition) {
  GlobalMemory gm(1, 2);
  const gmt_handle h = make_handle(0, 5, 1);
  gm.register_array(h, 100, Alloc::kLocal, /*home=*/0);
  EXPECT_TRUE(gm.valid(h));
  EXPECT_EQ(gm.get(h).partition_bytes, 0u);
  gm.unregister_array(h);
}

// Regression: the death sweep scans [1, next_slot_), and next_slot_ only
// ever advanced through local reserve_handle. On a node that never
// allocates, every broadcast-registered array sat above the sweep limit,
// so a pre-death array never degraded/remapped there and its reads kept
// routing to the dead owner (surfaced by Sort.KillMidSortRecoversExactly).
TEST(GlobalMemory, DeathSweepCoversRemotelyAllocatedSlots) {
  // Node 1 of 3, never allocates locally; slot 7 was reserved by node 0.
  GlobalMemory gm(1, 3, 1 << 16, nullptr, /*replicate_threshold=*/1 << 20);
  const gmt_handle h = make_handle(0, 7, 1);
  gm.register_array(h, 3 * 64, Alloc::kPartition, 0);
  ASSERT_FALSE(gm.meta(h).degraded);

  gm.degrade_node(2);
  const ArrayMeta meta = gm.meta(h);
  EXPECT_TRUE(meta.degraded);
  // Replicated array with a surviving buddy: the lost partition remaps
  // onto the ring successor's replica.
  EXPECT_EQ(meta.remap_partition, 2u);
  EXPECT_EQ(meta.remap_node, meta.buddy_node(2));
  gm.unregister_array(h);
}

// ---- slot recycling ----

TEST(GlobalMemory, RecycleReusesSlotWithBumpedGeneration) {
  GlobalMemory gm(0, 1);
  const gmt_handle a = gm.reserve_handle();
  gm.register_array(a, 64, Alloc::kLocal, 0);
  gm.unregister_array(a);
  gm.recycle_handle(a);
  EXPECT_EQ(gm.free_list_depth(), 1u);
  const gmt_handle b = gm.reserve_handle();
  EXPECT_EQ(gm.free_list_depth(), 0u);
  EXPECT_EQ(handle_slot(b), handle_slot(a));
  EXPECT_EQ(handle_generation(b),
            static_cast<std::uint16_t>(handle_generation(a) + 1));
  EXPECT_NE(a, b);
  gm.register_array(b, 64, Alloc::kLocal, 0);
  EXPECT_TRUE(gm.valid(b));
  EXPECT_FALSE(gm.valid(a));  // the old incarnation is stale
  gm.unregister_array(b);
}

TEST(GlobalMemory, SteadyAllocFreeNeverExhausts) {
  // Far more cycles than the table has slots: without recycling this
  // aborts with "handle space exhausted" partway through.
  GlobalMemory gm(0, 1, /*max_handles=*/64);
  for (int i = 0; i < 10000; ++i) {
    const gmt_handle h = gm.reserve_handle();
    gm.register_array(h, 32, Alloc::kLocal, 0);
    gm.unregister_array(h);
    gm.recycle_handle(h);
  }
  gm.reclaim_deferred();
  EXPECT_EQ(gm.live_handles(), 0u);
  EXPECT_EQ(gm.local_bytes(), 0u);
}

TEST(GlobalMemory, GenerationWrapSkipsNull) {
  GlobalMemory gm(0, 1, /*max_handles=*/4);
  gmt_handle h = gm.reserve_handle();
  std::uint16_t prev = handle_generation(h);
  bool wrapped = false;
  // Cycle one slot past the 16-bit generation space: the generation must
  // wrap without ever minting the reserved null generation 0.
  for (int i = 0; i < 70000; ++i) {
    gm.register_array(h, 8, Alloc::kLocal, 0);
    gm.unregister_array(h);
    gm.recycle_handle(h);
    const gmt_handle next = gm.reserve_handle();
    ASSERT_EQ(handle_slot(next), handle_slot(h));
    ASSERT_NE(handle_generation(next), 0u);
    if (handle_generation(next) < prev) wrapped = true;
    prev = handle_generation(next);
    h = next;
  }
  EXPECT_TRUE(wrapped);
}

using GlobalMemoryDeath = GlobalMemory;

TEST(GlobalMemoryDeathTest, DoubleFreeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GlobalMemory gm(0, 1);
  const gmt_handle h = gm.reserve_handle();
  gm.register_array(h, 64, Alloc::kLocal, 0);
  gm.unregister_array(h);
  EXPECT_DEATH(gm.unregister_array(h), "double free");
}

TEST(GlobalMemoryDeathTest, StaleGenerationDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GlobalMemory gm(0, 1);
  const gmt_handle h = gm.reserve_handle();
  gm.register_array(h, 64, Alloc::kLocal, 0);
  const gmt_handle stale = make_handle(handle_node(h), handle_slot(h),
                                       handle_generation(h) + 1);
  EXPECT_FALSE(gm.valid(stale));
  EXPECT_DEATH(gm.get(stale), "stale");
  gm.unregister_array(h);
}

TEST(GlobalMemoryDeathTest, OutOfBoundsDecomposeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ArrayMeta meta;
  meta.size = 100;
  meta.num_nodes = 2;
  std::vector<OwnedSpan> spans;
  EXPECT_DEATH(meta.decompose(90, 20, &spans), "out of bounds");
}

// Regression: `offset + length <= size` wraps for huge offsets —
// (~0ULL - 10) + 20 == 9 <= 100 — and used to admit the decomposition.
// The check is now overflow-proof.
TEST(GlobalMemoryDeathTest, OverflowingBoundsCheckAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ArrayMeta meta;
  meta.size = 100;
  meta.num_nodes = 2;
  std::vector<OwnedSpan> spans;
  EXPECT_DEATH(meta.decompose(~0ULL - 10, 20, &spans), "out of bounds");
  EXPECT_DEATH(meta.decompose(~0ULL, 1, &spans), "out of bounds");
}

TEST(GlobalMemoryDeathTest, StaleHandleAfterRecycleAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  GlobalMemory gm(0, 1);
  const gmt_handle a = gm.reserve_handle();
  gm.register_array(a, 64, Alloc::kLocal, 0);
  gm.unregister_array(a);
  gm.recycle_handle(a);
  const gmt_handle b = gm.reserve_handle();
  gm.register_array(b, 64, Alloc::kLocal, 0);
  // The recycled slot is live under a new generation; the old handle must
  // still abort loudly, not alias the new array.
  EXPECT_DEATH(gm.get(a), "stale");
  gm.unregister_array(b);
}

}  // namespace
}  // namespace gmt::rt
