// Property-style parameterised sweeps over the lock-free collections:
// conservation (nothing lost, nothing duplicated) across capacities and
// thread mixes, and FIFO per producer.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "collections/mpmc_queue.hpp"
#include "collections/pool.hpp"
#include "collections/spsc_ring.hpp"

namespace gmt {
namespace {

// ---- SPSC across capacities ----

class SpscCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscCapacity, ConservationAndOrder) {
  SpscRing<std::uint64_t> ring(GetParam());
  constexpr std::uint64_t kCount = 50000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i)
      while (!ring.push(i)) std::this_thread::yield();
  });
  std::uint64_t expected = 0, got;
  while (expected < kCount) {
    if (ring.pop(&got)) {
      ASSERT_EQ(got, expected++);
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpscCapacity,
                         ::testing::Values(1, 2, 4, 64, 1024));

// ---- MPMC across (capacity, producers, consumers) ----

using MpmcParam = std::tuple<std::size_t, int, int>;

class MpmcMix : public ::testing::TestWithParam<MpmcParam> {};

TEST_P(MpmcMix, EveryValueExactlyOnce) {
  const auto [capacity, producers, consumers] = GetParam();
  MpmcQueue<std::uint64_t> queue(capacity);
  constexpr std::uint64_t kPerProducer = 20000;
  const std::uint64_t total = producers * kPerProducer;

  std::atomic<std::uint64_t> popped{0};
  std::vector<std::atomic<std::uint8_t>> seen(total);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!queue.push(p * kPerProducer + i)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t value;
      while (popped.load() < total) {
        if (queue.pop(&value)) {
          // Exactly-once: flag must flip 0 -> 1.
          ASSERT_EQ(seen[value].exchange(1), 0) << "duplicate " << value;
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(popped.load(), total);
  for (std::uint64_t v = 0; v < total; ++v)
    ASSERT_EQ(seen[v].load(), 1) << "lost " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, MpmcMix,
    ::testing::Values(MpmcParam{4, 1, 1}, MpmcParam{64, 2, 1},
                      MpmcParam{64, 1, 2}, MpmcParam{256, 2, 2},
                      MpmcParam{16, 3, 3}));

// FIFO holds per producer even under MPMC contention.
TEST(MpmcProperty, PerProducerOrderPreserved) {
  MpmcQueue<std::uint64_t> queue(128);
  constexpr int kProducers = 2;
  constexpr std::uint64_t kPerProducer = 30000;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        // Encode (producer, sequence).
        while (!queue.push((static_cast<std::uint64_t>(p) << 32) | i))
          std::this_thread::yield();
      }
    });
  }
  std::map<std::uint64_t, std::uint64_t> next_seq;
  std::uint64_t value;
  std::uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    if (!queue.pop(&value)) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t producer = value >> 32;
    const std::uint64_t seq = value & 0xffffffff;
    ASSERT_EQ(seq, next_seq[producer]++);
    ++popped;
  }
  for (auto& thread : threads) thread.join();
}

// ---- pool under many-thread churn, population invariant ----

class PoolThreads : public ::testing::TestWithParam<int> {};

TEST_P(PoolThreads, PopulationConserved) {
  const int threads = GetParam();
  ObjectPool<std::uint64_t> pool(8);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 30000; ++i) {
        std::uint64_t* obj;
        while (!(obj = pool.try_acquire())) std::this_thread::yield();
        *obj ^= 0x5a5a5a5a;  // touch
        pool.release(obj);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(pool.available_approx(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Threads, PoolThreads, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace gmt
