// Tests for the MPI-style BFS baseline against a host reference and the
// other programming models.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "baselines/bfs_mpi.hpp"
#include "baselines/bfs_upc.hpp"

namespace gmt::baselines {
namespace {

struct HostBfs {
  std::uint64_t visited = 0;
  std::uint64_t edges = 0;
};

HostBfs host_bfs(const graph::Csr& csr, std::uint64_t root) {
  HostBfs result;
  std::vector<bool> seen(csr.vertices, false);
  std::queue<std::uint64_t> queue;
  seen[root] = true;
  queue.push(root);
  result.visited = 1;
  while (!queue.empty()) {
    const std::uint64_t v = queue.front();
    queue.pop();
    for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      ++result.edges;
      const std::uint64_t u = csr.adjacency[e];
      if (!seen[u]) {
        seen[u] = true;
        queue.push(u);
        ++result.visited;
      }
    }
  }
  return result;
}

class BfsMpiRanks : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BfsMpiRanks, MatchesHostReference) {
  const std::uint32_t ranks = GetParam();
  const auto csr = graph::build_csr(
      600, graph::generate_uniform({600, 1, 5, 61}));
  const HostBfs reference = host_bfs(csr, 0);
  const BfsMpiResult result = bfs_mpi(csr, ranks, 0);
  EXPECT_EQ(result.visited, reference.visited);
  EXPECT_EQ(result.edges_traversed, reference.edges);
}

INSTANTIATE_TEST_SUITE_P(Ranks, BfsMpiRanks, ::testing::Values(1, 2, 3));

TEST(BfsMpi, DifferentRoots) {
  const auto csr = graph::build_csr(
      300, graph::generate_uniform({300, 1, 4, 67}));
  for (std::uint64_t root : {7ull, 150ull, 299ull}) {
    const HostBfs reference = host_bfs(csr, root);
    const BfsMpiResult result = bfs_mpi(csr, 2, root);
    EXPECT_EQ(result.visited, reference.visited) << "root " << root;
  }
}

TEST(BfsMpi, AgreesWithUpcBaseline) {
  const auto csr = graph::build_csr(
      400, graph::generate_uniform({400, 1, 5, 71}));
  const BfsMpiResult mpi = bfs_mpi(csr, 2, 0);
  const BfsUpcResult upc = bfs_upc(csr, 2, 0);
  EXPECT_EQ(mpi.visited, upc.visited);
  EXPECT_EQ(mpi.edges_traversed, upc.edges_traversed);
}

TEST(BfsMpi, IsolatedRootVisitsOnlyItself) {
  const auto csr = graph::build_csr(10, {{1, 2}, {2, 3}});
  const BfsMpiResult result = bfs_mpi(csr, 2, 0);
  EXPECT_EQ(result.visited, 1u);
  EXPECT_EQ(result.edges_traversed, 0u);
}

}  // namespace
}  // namespace gmt::baselines
