// Actor/mailbox layer invariants (gmt/actor.hpp), exercised by seeded
// randomized multi-node traffic and a fault-injected service battery:
//
//  - per-(sender node, mailbox) FIFO with no loss and no duplication, under
//    randomized destination/payload mixes from every node at once;
//  - bounded mailbox depth: a burst past GMT_ACTOR_MAILBOX_DEPTH parks the
//    sender on the stall-ticket list and everything still drains;
//  - quiescence: actor::idle() flips false while a message is buffered and
//    true once every mailbox has drained;
//  - rejection: sends to an unregistered id resolve with GMT_ERR_NO_ACTOR;
//  - kill-a-node mid-service: calls toward the corpse resolve with
//    GMT_ERR_NODE_LOST (never wedge), survivors keep serving verified
//    replies — run plain, with source-side combining enabled, and with the
//    software cache enabled, so the fault matrix covers the full stack.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/config.hpp"
#include "common/time.hpp"
#include "gmt/error.hpp"
#include "gmt/gmt.hpp"
#include "gmt/obs.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

constexpr std::uint32_t kMaxNodes = 3;
constexpr std::uint64_t kCheckActor = 0xc4ec;
constexpr std::uint64_t kEchoActor = 0xec40;

Config membership_config() {
  Config config = Config::testing();
  config.reliable_transport = true;
  config.membership = true;
  config.heartbeat_ns = 2'000'000;          // 2 ms
  config.suspect_timeout_ns = 200'000'000;  // 200 ms
  return config;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---- FIFO / no-loss / no-dup checker ----
//
// Each sender node keeps a per-destination counter and stamps it into the
// message; the receiving handler (one per node) asserts the counter from
// each source arrives exactly in 0,1,2,... order. Any loss, duplication,
// or reorder per (sender node, mailbox) breaks the exact-match.

struct SeqMsg {
  std::uint64_t counter;
  std::uint32_t pad_len;  // trailing pad bytes, value-checked for integrity
  std::uint32_t pad0 = 0;
};

struct CheckerState {
  std::uint64_t expected[kMaxNodes] = {0, 0, 0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> received{0};
};

CheckerState g_check[kMaxNodes];

void checker_handler(void* ctx, const actor::Message& msg) {
  auto* st = static_cast<CheckerState*>(ctx);
  SeqMsg m;
  std::memcpy(&m, msg.data, sizeof(m));
  if (msg.src >= kMaxNodes || msg.size != sizeof(SeqMsg) + m.pad_len ||
      m.counter != st->expected[msg.src]) {
    st->violations.fetch_add(1, std::memory_order_relaxed);
  } else {
    st->expected[msg.src]++;
  }
  // Payload integrity: the pad rides through aggregation untouched.
  const auto* pad = static_cast<const std::uint8_t*>(msg.data) + sizeof(m);
  for (std::uint32_t i = 0; i < m.pad_len; ++i)
    if (pad[i] != static_cast<std::uint8_t>(m.counter * 13 + i))
      st->violations.fetch_add(1, std::memory_order_relaxed);
  st->received.fetch_add(1, std::memory_order_relaxed);
}

TEST(Actor, FifoNoLossNoDupUnderRandomizedTraffic) {
  constexpr std::uint64_t kPerPair = 400;  // msgs per (sender, dst) pair
  for (CheckerState& st : g_check) {
    for (std::uint64_t& e : st.expected) e = 0;
    st.violations.store(0);
    st.received.store(0);
  }

  rt::Cluster cluster(kMaxNodes, Config::testing());
  test::run_task(cluster, [] {
    const std::uint32_t nodes = gmt_num_nodes();
    for (std::uint32_t n = 0; n < nodes; ++n)
      gmt_on(
          n,
          [](std::uint64_t, const void*) {
            ASSERT_TRUE(actor::register_mailbox(kCheckActor, &checker_handler,
                                                &g_check[gmt_node_id()]));
          },
          nullptr, 0);

    // One sender task per node; each sends kPerPair messages to every
    // node (self included) with a seeded-random destination order and a
    // seeded-random pad length per message. Sequence counters are claimed
    // in program order, so the checker's exact-order assertion is the
    // FIFO/no-loss/no-dup proof.
    test::parfor_lambda(nodes, 1, [nodes](std::uint64_t sender) {
      std::uint64_t rng = 0x5eed0000 + sender;
      std::uint64_t counter[kMaxNodes] = {0, 0, 0};
      std::uint64_t sent = 0;
      const std::uint64_t total = kPerPair * nodes;
      std::uint8_t buf[sizeof(SeqMsg) + 48];
      while (sent < total) {
        rng = mix64(rng);
        const auto dst = static_cast<std::uint32_t>(rng % nodes);
        if (counter[dst] >= kPerPair) continue;
        SeqMsg m{};
        m.counter = counter[dst]++;
        m.pad_len = static_cast<std::uint32_t>((rng >> 32) % 48);
        std::memcpy(buf, &m, sizeof(m));
        for (std::uint32_t i = 0; i < m.pad_len; ++i)
          buf[sizeof(m) + i] = static_cast<std::uint8_t>(m.counter * 13 + i);
        actor::post(dst, kCheckActor, buf, sizeof(m) + m.pad_len);
        ++sent;
      }
    });
    // parfor joined => every post was acked => every message processed.

    for (std::uint32_t n = 0; n < nodes; ++n)
      gmt_on(
          n,
          [](std::uint64_t, const void*) {
            // Quiescence on every node once traffic is joined.
            const std::uint64_t deadline = wall_ns() + 5'000'000'000ull;
            while (!actor::idle() && wall_ns() < deadline) gmt_yield();
            EXPECT_TRUE(actor::idle());
            EXPECT_TRUE(actor::unregister_mailbox(kCheckActor));
          },
          nullptr, 0);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
  });

  std::uint64_t received = 0;
  for (std::uint32_t n = 0; n < kMaxNodes; ++n) {
    EXPECT_EQ(g_check[n].violations.load(), 0u) << "node " << n;
    for (std::uint32_t s = 0; s < kMaxNodes; ++s)
      EXPECT_EQ(g_check[n].expected[s], kPerPair)
          << "node " << n << " from " << s;
    received += g_check[n].received.load();
  }
  EXPECT_EQ(received, kPerPair * kMaxNodes * kMaxNodes);
}

// ---- bounded depth: parks and full drain ----

std::atomic<std::uint64_t> g_sink_count{0};

void sink_handler(void*, const actor::Message& msg) {
  std::uint64_t v;
  std::memcpy(&v, msg.data, sizeof(v));
  g_sink_count.fetch_add(1, std::memory_order_relaxed);
}

TEST(Actor, BoundedDepthParksSenderAndDrains) {
  constexpr std::uint64_t kBurst = 256;
  g_sink_count.store(0);
  Config config = Config::testing();
  config.actor_mailbox_depth = 4;  // tiny window: a burst must park
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  const std::uint64_t parks_before =
      stats_snapshot().counter(obs::names::kActorParks);

  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    ASSERT_EQ(gmt_node_id(), 0u);
    gmt_on(
        1,
        [](std::uint64_t, const void*) {
          ASSERT_TRUE(
              actor::register_mailbox(kEchoActor, &sink_handler, nullptr));
        },
        nullptr, 0);
    // Fire-and-forget burst far past the 4-deep window, from one task:
    // the sender must park (not spin, not drop) and the parfor-free join
    // below (task end) collects every ack.
    for (std::uint64_t i = 0; i < kBurst; ++i)
      actor::post(1, kEchoActor, i);
    gmt_wait_commands();
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_on(
        1,
        [](std::uint64_t, const void*) {
          const std::uint64_t deadline = wall_ns() + 5'000'000'000ull;
          while (!actor::idle() && wall_ns() < deadline) gmt_yield();
          EXPECT_TRUE(actor::idle());
          EXPECT_TRUE(actor::unregister_mailbox(kEchoActor));
        },
        nullptr, 0);
  });

  EXPECT_EQ(g_sink_count.load(), kBurst);
  const std::uint64_t parks_after =
      stats_snapshot().counter(obs::names::kActorParks);
  EXPECT_GT(parks_after - parks_before, 0u)
      << "a 256-message burst through a 4-deep window must park the sender";
}

// ---- quiescence tracks buffering; replies land; rejects surface ----

void echo_double_handler(void*, const actor::Message& msg) {
  std::uint64_t v;
  std::memcpy(&v, msg.data, sizeof(v));
  v *= 2;
  msg.reply(&v, sizeof(v));
}

TEST(Actor, IdleFlipsWithBufferedMessagesAndRepliesLand) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    EXPECT_TRUE(actor::idle());  // nothing registered, nothing buffered
    ASSERT_TRUE(
        actor::register_mailbox(kEchoActor, &echo_double_handler, nullptr));
    EXPECT_FALSE(actor::register_mailbox(kEchoActor, &echo_double_handler,
                                         nullptr));  // duplicate id

    // Self-send: the message is buffered in the local mailbox the moment
    // send() returns (the delivery task has not run — this task has not
    // yielded), so idle() must read false, then true after the reply.
    std::uint64_t reply = 0;
    const std::uint64_t req = 21;
    Future f = actor::call(gmt_node_id(), kEchoActor, req, &reply);
    EXPECT_FALSE(actor::idle());
    EXPECT_EQ(wait(f), GMT_ERR_OK);
    EXPECT_EQ(reply, 42u);
    const std::uint64_t deadline = wall_ns() + 5'000'000'000ull;
    while (!actor::idle() && wall_ns() < deadline) gmt_yield();
    EXPECT_TRUE(actor::idle());

    EXPECT_TRUE(actor::unregister_mailbox(kEchoActor));
    EXPECT_FALSE(actor::unregister_mailbox(kEchoActor));

    // Messages for an id nobody registered resolve per-op with
    // GMT_ERR_NO_ACTOR — sticky task status untouched.
    const std::uint64_t no_mailbox_before =
        stats_snapshot().counter(obs::names::kActorNoMailbox);
    EXPECT_EQ(wait(actor::send(1, /*unregistered id*/ 0xab5e47, req)),
              GMT_ERR_NO_ACTOR);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    EXPECT_GT(stats_snapshot().counter(obs::names::kActorNoMailbox),
              no_mailbox_before);
  });
}

// Concurrent randomized request/response traffic: every reply must carry
// the transform of its own request — cross-wiring a reply to the wrong
// caller or clobbering a stale buffer fails the exact match.
TEST(Actor, ConcurrentCallsGetTheirOwnReplies) {
  rt::Cluster cluster(kMaxNodes, Config::testing());
  test::run_task(cluster, [] {
    const std::uint32_t nodes = gmt_num_nodes();
    for (std::uint32_t n = 0; n < nodes; ++n)
      gmt_on(
          n,
          [](std::uint64_t, const void*) {
            ASSERT_TRUE(actor::register_mailbox(kEchoActor,
                                                &echo_double_handler, nullptr));
          },
          nullptr, 0);
    test::parfor_lambda(3000, 16, [nodes](std::uint64_t i) {
      const std::uint64_t v = mix64(i) >> 1;
      const auto dst = static_cast<std::uint32_t>(mix64(~i) % nodes);
      std::uint64_t reply = 0;
      ASSERT_EQ(wait(actor::call(dst, kEchoActor, v, &reply)), GMT_ERR_OK);
      ASSERT_EQ(reply, v * 2);
    });
    for (std::uint32_t n = 0; n < nodes; ++n)
      gmt_on(
          n,
          [](std::uint64_t, const void*) {
            EXPECT_TRUE(actor::unregister_mailbox(kEchoActor));
          },
          nullptr, 0);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
  });
}

// ---- kill-a-node mid-service ----
//
// Node 2 goes dark after its first 50 sends, with request traffic in
// flight toward it. Liveness is the core assertion: every call() resolves
// (OK before the cut, GMT_ERR_NODE_LOST once detection fails the in-flight
// window) and survivors answer verified replies throughout and after.
void run_kill_mid_service(Config config) {
  config.fault.kill_node = 2;
  config.fault.kill_at = 50;  // dies mid-run, with traffic in flight
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [] {
    for (std::uint32_t n = 0; n < 3; ++n)
      gmt_on(
          n,
          [](std::uint64_t, const void*) {
            actor::register_mailbox(kEchoActor, &echo_double_handler, nullptr);
          },
          nullptr, 0);
    // The spawn toward the doomed node may itself be failed by detection.
    gmt_clear_error();

    std::uint64_t corpse_losses = 0, corpse_oks = 0, rounds = 0;
    while (gmt_membership_epoch() == 0 && rounds < 1'000'000) {
      for (std::uint32_t dst = 0; dst < 3; ++dst) {
        const std::uint64_t v = mix64(rounds * 3 + dst) >> 1;
        std::uint64_t reply = 0;
        const std::uint32_t status =
            wait(actor::call(dst, kEchoActor, v, &reply));
        if (dst == 2) {
          // Toward the corpse: OK before the cut, NODE_LOST after —
          // never a hang, never any third status.
          ASSERT_TRUE(status == GMT_ERR_OK || status == GMT_ERR_NODE_LOST)
              << status;
          status == GMT_ERR_OK ? ++corpse_oks : ++corpse_losses;
          if (status == GMT_ERR_OK) {
            ASSERT_EQ(reply, v * 2);
          }
        } else {
          ASSERT_EQ(status, GMT_ERR_OK);
          ASSERT_EQ(reply, v * 2);
        }
      }
      ++rounds;
    }
    ASSERT_GT(gmt_membership_epoch(), 0u);
    EXPECT_FALSE(gmt_node_is_live(2));
    EXPECT_GT(corpse_losses, 0u);
    (void)corpse_oks;  // may legitimately be zero if the cut lands early
    gmt_clear_error();  // post-style stickiness from the dying window

    // After the epoch: sends toward the corpse fail fast per-op; the
    // survivors keep serving verified replies; sticky status stays clean.
    for (int i = 0; i < 32; ++i) {
      std::uint64_t reply = 0;
      EXPECT_EQ(wait(actor::call(2, kEchoActor, std::uint64_t{7}, &reply)),
                GMT_ERR_NODE_LOST);
      for (std::uint32_t dst = 0; dst < 2; ++dst) {
        const std::uint64_t v = mix64(1000 + i * 2 + dst) >> 1;
        std::uint64_t r = 0;
        EXPECT_EQ(wait(actor::call(dst, kEchoActor, v, &r)), GMT_ERR_OK);
        EXPECT_EQ(r, v * 2);
      }
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    for (std::uint32_t n = 0; n < 2; ++n)
      gmt_on(
          n,
          [](std::uint64_t, const void*) {
            EXPECT_TRUE(actor::unregister_mailbox(kEchoActor));
          },
          nullptr, 0);
  });
}

TEST(Actor, KillMidServiceSurvivorsKeepServing) {
  run_kill_mid_service(membership_config());
}

TEST(Actor, KillMidServiceWithCombining) {
  Config config = membership_config();
  config.combine = true;
  run_kill_mid_service(config);
}

TEST(Actor, KillMidServiceWithCache) {
  Config config = membership_config();
  config.cache = true;
  run_kill_mid_service(config);
}

}  // namespace
}  // namespace gmt
