// Retransmission-timeout schedule unit tests: the exact exponential
// backoff sequence, the retry_timeout_max_ns cap, attempt accounting up to
// retry_budget exhaustion, and the recoverable peer-suspect hand-off that
// replaces the historical hard abort when a failure detector is attached.
//
// All timing is synthetic: the channel is pumped at chosen now_ns values,
// so the schedule is asserted to the nanosecond with no wall-clock
// flakiness.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "net/frame.hpp"
#include "net/inproc_transport.hpp"
#include "obs/metrics.hpp"
#include "runtime/reliable_channel.hpp"

namespace gmt {
namespace {

constexpr std::uint64_t kRto = 1'000'000;     // initial retry timeout
constexpr std::uint64_t kRtoMax = 4'000'000;  // backoff cap
constexpr std::uint32_t kBudget = 6;          // transmissions before suspect

struct RtoFixture {
  Config config;
  net::InprocFabric fabric;
  obs::Registry registry{"test"};
  rt::ReliabilityStats stats;
  rt::ReliableChannel channel;
  std::vector<std::uint32_t> suspected;

  RtoFixture()
      : config([] {
          Config c = Config::testing();
          c.reliable_transport = true;
          c.retry_timeout_ns = kRto;
          c.retry_timeout_max_ns = kRtoMax;
          c.retry_budget = kBudget;
          return c;
        }()),
        fabric(2, net::NetworkModel::instant()),
        channel(config, fabric.endpoint(0), &stats) {
    stats.bind(registry);
    channel.set_suspect_callback(
        [this](std::uint32_t peer) { suspected.push_back(peer); });
  }

  void submit_one() {
    std::vector<std::uint8_t> frame(net::kFrameHeaderSize + 4, 0xab);
    channel.submit(1, std::move(frame));
  }

  std::uint64_t retransmits() const { return stats.retransmits.read(); }

  void ack_up_to(std::uint64_t seq, std::uint64_t now_ns) {
    std::vector<std::uint8_t> ack(net::kFrameHeaderSize);
    net::FrameHeader header;
    header.type = static_cast<std::uint8_t>(net::FrameType::kAck);
    header.src = 1;
    header.ack = seq;
    net::seal_frame(ack, header);
    std::deque<net::InMessage> out;
    channel.on_message(net::InMessage{1, std::move(ack)}, now_ns, &out);
    EXPECT_TRUE(out.empty());
  }
};

TEST(ReliableRto, ExactExponentialScheduleWithCap) {
  RtoFixture fx;
  fx.submit_one();

  const std::uint64_t t0 = 10'000'000;
  fx.channel.pump(t0);  // first transmission
  EXPECT_EQ(fx.stats.data_frames_sent.read(), 1u);
  EXPECT_EQ(fx.retransmits(), 0u);

  // The retransmit fires exactly at first_send + rto, not a tick earlier,
  // and each timeout doubles the wait up to retry_timeout_max_ns:
  // gaps of 1ms, 2ms, 4ms, then capped at 4ms.
  const std::uint64_t gaps[] = {kRto, 2 * kRto, kRtoMax, kRtoMax, kRtoMax};
  std::uint64_t due = t0;
  std::uint64_t expected_retx = 0;
  for (const std::uint64_t gap : gaps) {
    due += gap;
    fx.channel.pump(due - 1);
    EXPECT_EQ(fx.retransmits(), expected_retx) << "early fire at gap " << gap;
    fx.channel.pump(due);
    ++expected_retx;
    EXPECT_EQ(fx.retransmits(), expected_retx) << "missed fire at gap " << gap;
  }
  // 1 first send + 5 retransmits = retry_budget transmissions in total.
  EXPECT_EQ(fx.stats.data_frames_sent.read() + fx.retransmits(),
            std::uint64_t{kBudget});
  EXPECT_EQ(fx.channel.health(1).consec_timeouts, kBudget - 1);
  EXPECT_TRUE(fx.suspected.empty());
}

TEST(ReliableRto, BudgetExhaustionFiresSuspectOnceAndSuspends) {
  RtoFixture fx;
  fx.submit_one();

  // Walk the full schedule to budget exhaustion.
  std::uint64_t now = 1'000'000;
  fx.channel.pump(now);
  std::uint64_t gap = kRto;
  for (std::uint32_t i = 1; i < kBudget; ++i) {
    now += gap;
    fx.channel.pump(now);
    gap = gap * 2 < kRtoMax ? gap * 2 : kRtoMax;
  }
  EXPECT_EQ(fx.retransmits(), std::uint64_t{kBudget} - 1);
  EXPECT_TRUE(fx.suspected.empty());

  // The next due timeout exceeds the budget: the peer is handed to the
  // failure detector (no abort), exactly once, and transmissions toward it
  // are suspended — attempts stay at the budget.
  now += kRtoMax;
  fx.channel.pump(now);
  ASSERT_EQ(fx.suspected.size(), 1u);
  EXPECT_EQ(fx.suspected[0], 1u);
  EXPECT_EQ(fx.channel.health(1).state, rt::PeerState::kSuspect);

  now += kRtoMax;
  fx.channel.pump(now);
  now += kRtoMax;
  fx.channel.pump(now);
  EXPECT_EQ(fx.suspected.size(), 1u);  // not re-fired
  EXPECT_EQ(fx.retransmits(), std::uint64_t{kBudget} - 1);

  // A suspect peer no longer blocks quiescence: its window will never be
  // acked, so shutdown must not wait on it.
  EXPECT_TRUE(fx.channel.quiescent());

  // Fail-stop resolution: purging drops the unacked window and later
  // submissions toward the dead peer die locally.
  EXPECT_EQ(fx.channel.purge_peer(1), 1u);
  EXPECT_TRUE(fx.channel.peer_dead(1));
  EXPECT_TRUE(fx.channel.quiescent());
  fx.submit_one();
  fx.channel.pump(now + kRtoMax);
  EXPECT_TRUE(fx.channel.quiescent());
}

TEST(ReliableRto, AckBeforeBudgetKeepsPeerLive) {
  RtoFixture fx;
  fx.submit_one();

  std::uint64_t now = 5'000'000;
  fx.channel.pump(now);
  now += kRto;
  fx.channel.pump(now);  // one retransmit
  EXPECT_EQ(fx.retransmits(), 1u);
  EXPECT_EQ(fx.channel.health(1).consec_timeouts, 1u);

  fx.ack_up_to(1, now + 1000);
  EXPECT_TRUE(fx.channel.quiescent());
  EXPECT_EQ(fx.channel.health(1).state, rt::PeerState::kLive);
  EXPECT_EQ(fx.channel.health(1).consec_timeouts, 0u);
  EXPECT_TRUE(fx.suspected.empty());

  // A fresh frame restarts the schedule from the initial timeout (per-frame
  // rto, not a per-peer carry-over).
  fx.submit_one();
  fx.channel.pump(now + 2000);
  fx.channel.pump(now + 2000 + kRto - 1);
  EXPECT_EQ(fx.retransmits(), 1u);
  fx.channel.pump(now + 2000 + kRto);
  EXPECT_EQ(fx.retransmits(), 2u);
}

}  // namespace
}  // namespace gmt
