// Tests for the MPI-like and UPC-like baseline runtimes and their kernels,
// including cross-model agreement with the host reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <queue>

#include "baselines/bfs_upc.hpp"
#include "baselines/chma_mpi.hpp"
#include "baselines/grw_mpi.hpp"
#include "baselines/mpi_like.hpp"
#include "baselines/upc_like.hpp"

namespace gmt::baselines {
namespace {

// ------------------------------------------------------------- MPI world --

TEST(MpiWorld, PingPong) {
  MpiWorld world(2);
  std::atomic<int> checks{0};
  world.run([&](MpiRank& rank) {
    if (rank.rank() == 0) {
      const std::uint64_t payload = 0xabcdef;
      rank.send(1, 7, &payload, sizeof(payload));
      std::uint32_t src;
      std::vector<std::uint8_t> reply;
      rank.recv_tag(8, &src, &reply);
      EXPECT_EQ(src, 1u);
      std::uint64_t value;
      std::memcpy(&value, reply.data(), 8);
      EXPECT_EQ(value, 0xabcdef + 1);
      ++checks;
    } else {
      std::uint32_t src;
      std::vector<std::uint8_t> request;
      rank.recv_tag(7, &src, &request);
      std::uint64_t value;
      std::memcpy(&value, request.data(), 8);
      ++value;
      rank.send(0, 8, &value, sizeof(value));
      ++checks;
    }
  });
  EXPECT_EQ(checks.load(), 2);
}

TEST(MpiWorld, TagMatchingSkipsOthers) {
  MpiWorld world(2);
  world.run([&](MpiRank& rank) {
    if (rank.rank() == 0) {
      const int a = 1, b = 2;
      rank.send(1, 100, &a, sizeof(a));
      rank.send(1, 200, &b, sizeof(b));
    } else {
      std::uint32_t src;
      std::vector<std::uint8_t> payload;
      rank.recv_tag(200, &src, &payload);  // out of order
      int value;
      std::memcpy(&value, payload.data(), 4);
      EXPECT_EQ(value, 2);
      rank.recv_tag(100, &src, &payload);
      std::memcpy(&value, payload.data(), 4);
      EXPECT_EQ(value, 1);
    }
  });
}

class MpiRanks : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MpiRanks, BarrierSynchronises) {
  const std::uint32_t ranks = GetParam();
  MpiWorld world(ranks);
  std::atomic<int> phase_one{0};
  std::atomic<bool> violated{false};
  world.run([&](MpiRank& rank) {
    for (int round = 0; round < 3; ++round) {
      phase_one.fetch_add(1);
      rank.barrier();
      // After the barrier, everyone finished the increment.
      if (phase_one.load() < static_cast<int>(ranks) * (round + 1))
        violated.store(true);
      rank.barrier();
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(MpiRanks, AllreduceSums) {
  const std::uint32_t ranks = GetParam();
  MpiWorld world(ranks);
  std::atomic<bool> ok{true};
  world.run([&](MpiRank& rank) {
    const std::uint64_t total = rank.allreduce_sum(rank.rank() + 1);
    if (total != static_cast<std::uint64_t>(ranks) * (ranks + 1) / 2)
      ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(Ranks, MpiRanks, ::testing::Values(1, 2, 3, 5));

// ------------------------------------------------------------- UPC world --

class UpcThreads : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(UpcThreads, SharedArrayRoundTrip) {
  const std::uint32_t threads = GetParam();
  UpcWorld world(threads);
  world.run([&](UpcThread& upc) {
    const upc_array array = upc.alloc_shared(threads * 64);
    // Each thread writes a pattern into every 64-byte stripe it owns by
    // index, then all verify everything.
    for (std::uint32_t t = 0; t < threads; ++t) {
      if (t == upc.id()) {
        for (std::uint64_t w = 0; w < 8; ++w) {
          const std::uint64_t value = t * 100 + w;
          upc.sput(array, t * 64 + w * 8, &value, 8);
        }
      }
    }
    upc.barrier();
    for (std::uint32_t t = 0; t < threads; ++t) {
      for (std::uint64_t w = 0; w < 8; ++w) {
        std::uint64_t value = 0;
        upc.sget(array, t * 64 + w * 8, &value, 8);
        EXPECT_EQ(value, t * 100 + w);
      }
    }
    upc.barrier();
  });
}

TEST_P(UpcThreads, RemoteAtomics) {
  const std::uint32_t threads = GetParam();
  UpcWorld world(threads);
  world.run([&](UpcThread& upc) {
    const upc_array counter = upc.alloc_shared(8);
    for (int i = 0; i < 50; ++i) upc.sadd(counter, 0, 1);
    upc.barrier();
    std::uint64_t total = 0;
    upc.sget(counter, 0, &total, 8);
    EXPECT_EQ(total, threads * 50u);
    upc.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Threads, UpcThreads, ::testing::Values(1, 2, 4));

TEST(UpcWorld, CasClaimsExactlyOnce) {
  UpcWorld world(3);
  std::atomic<int> wins{0};
  world.run([&](UpcThread& upc) {
    const upc_array cell = upc.alloc_shared(8);
    if (upc.scas(cell, 0, 0, upc.id() + 1) == 0) wins.fetch_add(1);
    upc.barrier();
  });
  EXPECT_EQ(wins.load(), 1);
}

TEST(UpcWorld, AllreduceCorrectForNonPowerOfTwo) {
  UpcWorld world(3);
  std::atomic<bool> ok{true};
  world.run([&](UpcThread& upc) {
    if (upc.allreduce_sum(10) != 30) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

// ------------------------------------------------------------ kernels ----

struct HostBfs {
  std::uint64_t visited = 0;
  std::uint64_t edges = 0;
};

HostBfs host_bfs(const graph::Csr& csr, std::uint64_t root) {
  HostBfs result;
  std::vector<bool> seen(csr.vertices, false);
  std::queue<std::uint64_t> queue;
  seen[root] = true;
  queue.push(root);
  result.visited = 1;
  while (!queue.empty()) {
    const std::uint64_t v = queue.front();
    queue.pop();
    for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      ++result.edges;
      const std::uint64_t u = csr.adjacency[e];
      if (!seen[u]) {
        seen[u] = true;
        queue.push(u);
        ++result.visited;
      }
    }
  }
  return result;
}

graph::Csr test_graph(std::uint64_t vertices, std::uint64_t seed) {
  return graph::build_csr(vertices,
                          graph::generate_uniform({vertices, 1, 5, seed}));
}

TEST(BfsUpcKernel, MatchesHostReference) {
  const graph::Csr csr = test_graph(500, 41);
  const HostBfs reference = host_bfs(csr, 0);
  for (std::uint32_t threads : {1u, 2u, 3u}) {
    const BfsUpcResult result = bfs_upc(csr, threads, 0);
    EXPECT_EQ(result.visited, reference.visited) << threads << " threads";
    EXPECT_EQ(result.edges_traversed, reference.edges);
  }
}

TEST(BfsUpcKernel, VisitedCacheVariantAgrees) {
  const graph::Csr csr = test_graph(400, 43);
  const HostBfs reference = host_bfs(csr, 0);
  const BfsUpcResult result = bfs_upc(csr, 2, 0, /*use_visited_cache=*/true);
  EXPECT_EQ(result.visited, reference.visited);
}

TEST(GrwMpiKernel, CompletesAllWalks) {
  const graph::Csr csr = test_graph(300, 47);  // min degree 1: no dead ends
  const GrwMpiResult result = grw_mpi(csr, 3, 30, 15);
  EXPECT_EQ(result.edges_traversed, 30u * 15);
  EXPECT_GT(result.rounds, 0u);
}

TEST(GrwMpiKernel, SingleRankDegeneratesToLocal) {
  const graph::Csr csr = test_graph(100, 51);
  const GrwMpiResult result = grw_mpi(csr, 1, 10, 10);
  EXPECT_EQ(result.edges_traversed, 100u);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(ChmaMpiKernel, RunsAllSteps) {
  const ChmaMpiResult result =
      chma_mpi(/*ranks=*/3, /*map=*/2048, /*pool=*/512, /*populate=*/256,
               /*streams=*/9, /*steps=*/12);
  EXPECT_EQ(result.accesses, 9u * 12);
}

TEST(ChmaMpiKernel, WorksWithSingleRank) {
  const ChmaMpiResult result = chma_mpi(1, 1024, 256, 128, 4, 10);
  EXPECT_EQ(result.accesses, 40u);
}

}  // namespace
}  // namespace gmt::baselines
