// Tests for the extension kernels (connected components, PageRank)
// against host references.
#include <gtest/gtest.h>

#include <numeric>
#include <queue>
#include <vector>

#include "kernels/cc_gmt.hpp"
#include "kernels/pagerank_gmt.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// Host weakly-connected components via union-find.
std::uint64_t host_components(const graph::Csr& csr) {
  std::vector<std::uint64_t> parent(csr.vertices);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::uint64_t(std::uint64_t)> find =
      [&](std::uint64_t x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
  for (std::uint64_t v = 0; v < csr.vertices; ++v)
    for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      const std::uint64_t a = find(v), b = find(csr.adjacency[e]);
      if (a != b) parent[a] = b;
    }
  std::uint64_t roots = 0;
  for (std::uint64_t v = 0; v < csr.vertices; ++v)
    if (find(v) == v) ++roots;
  return roots;
}

// Host PageRank reference (double precision).
std::vector<double> host_pagerank(const graph::Csr& csr,
                                  std::uint32_t iterations,
                                  double damping) {
  const std::uint64_t n = csr.vertices;
  std::vector<double> cur(n, 1.0 / n), next(n);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      const std::uint64_t deg = csr.degree(v);
      if (deg == 0) {
        dangling += damping * cur[v];
        continue;
      }
      const double share = damping * cur[v] / deg;
      for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e)
        next[csr.adjacency[e]] += share;
    }
    const double base = (1.0 - damping) / n + dangling / n;
    for (std::uint64_t v = 0; v < n; ++v) next[v] += base;
    cur.swap(next);
  }
  return cur;
}

TEST(ConnectedComponents, MatchesUnionFind) {
  for (std::uint64_t seed : {3ull, 7ull}) {
    // min_degree 0 leaves isolated vertices -> several components.
    const auto csr = graph::build_csr(
        300, graph::generate_uniform({300, 0, 3, seed}));
    const std::uint64_t expected = host_components(csr);
    rt::Cluster cluster(2, Config::testing());
    test::run_task(cluster, [&] {
      graph::DistGraph dist = graph::DistGraph::build(csr);
      const kernels::CcResult result = kernels::cc_gmt(dist);
      EXPECT_EQ(result.components, expected) << "seed " << seed;
      gmt_free(result.labels);
      dist.destroy();
    });
  }
}

TEST(ConnectedComponents, LabelsAgreeWithinComponent) {
  // Two disjoint cliques: every vertex labelled by its clique minimum.
  std::vector<graph::Edge> edges;
  for (std::uint64_t a = 0; a < 5; ++a)
    for (std::uint64_t b = 0; b < 5; ++b)
      if (a != b) edges.push_back({a, b});
  for (std::uint64_t a = 5; a < 10; ++a)
    for (std::uint64_t b = 5; b < 10; ++b)
      if (a != b) edges.push_back({a, b});
  const auto csr = graph::build_csr(10, edges);
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::CcResult result = kernels::cc_gmt(dist);
    EXPECT_EQ(result.components, 2u);
    std::uint64_t labels[10];
    gmt_get(result.labels, 0, labels, 80);
    for (int v = 0; v < 5; ++v) EXPECT_EQ(labels[v], 0u);
    for (int v = 5; v < 10; ++v) EXPECT_EQ(labels[v], 5u);
    gmt_free(result.labels);
    dist.destroy();
  });
}

TEST(ConnectedComponents, SingleChain) {
  std::vector<graph::Edge> edges;
  for (std::uint64_t v = 0; v + 1 < 50; ++v) edges.push_back({v, v + 1});
  const auto csr = graph::build_csr(50, edges);
  rt::Cluster cluster(3, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::CcResult result = kernels::cc_gmt(dist);
    EXPECT_EQ(result.components, 1u);
    gmt_free(result.labels);
    dist.destroy();
  });
}

TEST(Pagerank, MatchesHostReference) {
  const auto csr = graph::build_csr(
      200, graph::generate_uniform({200, 1, 5, 11}));
  const std::vector<double> expected = host_pagerank(csr, 8, 0.85);
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::PagerankResult result = kernels::pagerank_gmt(dist, 8);
    for (std::uint64_t v = 0; v < 200; v += 13) {
      std::uint64_t fixed;
      gmt_get(result.ranks, v * 8, &fixed, 8);
      EXPECT_NEAR(kernels::PagerankResult::to_double(fixed), expected[v],
                  1e-4)
          << "vertex " << v;
    }
    gmt_free(result.ranks);
    dist.destroy();
  });
}

TEST(Pagerank, MassApproximatelyConserved) {
  const auto csr = graph::build_csr(
      150, graph::generate_uniform({150, 1, 4, 17}));
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::PagerankResult result = kernels::pagerank_gmt(dist, 6);
    double total = 0;
    for (std::uint64_t v = 0; v < 150; ++v) {
      std::uint64_t fixed;
      gmt_get(result.ranks, v * 8, &fixed, 8);
      total += kernels::PagerankResult::to_double(fixed);
    }
    EXPECT_NEAR(total, 1.0, 0.01);  // fixed-point truncation loses a little
    gmt_free(result.ranks);
    dist.destroy();
  });
}

TEST(Pagerank, SinkReceivesMoreRank) {
  // A star pointing at vertex 0: vertex 0 must outrank the leaves.
  std::vector<graph::Edge> edges;
  for (std::uint64_t v = 1; v < 20; ++v) {
    edges.push_back({v, 0});
    edges.push_back({0, v});  // keep 0 non-dangling
  }
  const auto csr = graph::build_csr(20, edges);
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::PagerankResult result = kernels::pagerank_gmt(dist, 10);
    std::uint64_t hub, leaf;
    gmt_get(result.ranks, 0, &hub, 8);
    gmt_get(result.ranks, 5 * 8, &leaf, 8);
    EXPECT_GT(hub, 5 * leaf);
    gmt_free(result.ranks);
    dist.destroy();
  });
}

}  // namespace
}  // namespace gmt
