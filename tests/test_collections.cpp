// Unit and stress tests for the lock-free collections.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "collections/mpmc_queue.hpp"
#include "collections/pool.hpp"
#include "collections/spsc_ring.hpp"

namespace gmt {
namespace {

// ----------------------------------------------------------------- SPSC --

TEST(SpscRing, FifoSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(&out));  // empty
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  SpscRing<int> one(1);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> ring(4);
  int out;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.push(round));
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out, round);
  }
}

TEST(SpscRing, SizeApprox) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size_approx(), 2u);
}

TEST(SpscRing, TwoThreadStress) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i)
      while (!ring.push(i)) std::this_thread::yield();
  });
  std::uint64_t expected = 0;
  std::uint64_t got;
  while (expected < kCount) {
    if (ring.pop(&got)) {
      ASSERT_EQ(got, expected);  // strict FIFO, no loss, no duplication
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MovesOwnership) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.pop(&out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

// ----------------------------------------------------------------- MPMC --

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_FALSE(queue.push(99));
  int out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.pop(&out));
}

TEST(MpmcQueue, ReusableAfterDrain) {
  MpmcQueue<int> queue(4);
  int out;
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(queue.push(round));
    EXPECT_TRUE(queue.push(round + 1000));
    ASSERT_TRUE(queue.pop(&out));
    ASSERT_TRUE(queue.pop(&out));
  }
  EXPECT_TRUE(queue.empty_approx());
}

TEST(MpmcQueue, MultiThreadSumPreserved) {
  // All pushed values are popped exactly once: the sum is conserved.
  MpmcQueue<std::uint64_t> queue(256);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 30000;

  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value = p * kPerProducer + i + 1;
        while (!queue.push(value)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t value;
      while (consumed_count.load() < kProducers * kPerProducer) {
        if (queue.pop(&value)) {
          consumed_sum.fetch_add(value);
          consumed_count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t expected = 0;
  for (std::uint64_t v = 1; v <= kProducers * kPerProducer; ++v) expected += v;
  EXPECT_EQ(consumed_sum.load(), expected);
  EXPECT_EQ(consumed_count.load(), kProducers * kPerProducer);
}

// ----------------------------------------------------------------- pool --

TEST(ObjectPool, AcquireReleaseCycle) {
  ObjectPool<int> pool(4);
  EXPECT_EQ(pool.population(), 4u);
  std::vector<int*> held;
  for (int i = 0; i < 4; ++i) {
    int* obj = pool.try_acquire();
    ASSERT_NE(obj, nullptr);
    held.push_back(obj);
  }
  EXPECT_EQ(pool.try_acquire(), nullptr);  // exhausted, no allocation
  for (int* obj : held) pool.release(obj);
  EXPECT_EQ(pool.available_approx(), 4u);  // leak-free invariant
}

TEST(ObjectPool, ObjectsAreDistinct) {
  ObjectPool<int> pool(8);
  std::vector<int*> held;
  for (int i = 0; i < 8; ++i) held.push_back(pool.try_acquire());
  std::sort(held.begin(), held.end());
  EXPECT_EQ(std::adjacent_find(held.begin(), held.end()), held.end());
  for (int* obj : held) pool.release(obj);
}

TEST(ObjectPool, ConstructorArgsForwarded) {
  struct Sized {
    explicit Sized(std::size_t n) : data(n) {}
    std::vector<int> data;
  };
  ObjectPool<Sized> pool(2, 37);
  Sized* obj = pool.try_acquire();
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->data.size(), 37u);
  pool.release(obj);
}

TEST(ObjectPool, GuardReturnsOnScopeExit) {
  ObjectPool<int> pool(1);
  {
    PoolGuard<int> guard(pool, pool.try_acquire());
    EXPECT_TRUE(guard);
    EXPECT_EQ(pool.available_approx(), 0u);
  }
  EXPECT_EQ(pool.available_approx(), 1u);
}

TEST(ObjectPool, GuardDetachKeepsObject) {
  ObjectPool<int> pool(1);
  int* raw = nullptr;
  {
    PoolGuard<int> guard(pool, pool.try_acquire());
    raw = guard.detach();
  }
  EXPECT_EQ(pool.available_approx(), 0u);  // detach prevented release
  pool.release(raw);
  EXPECT_EQ(pool.available_approx(), 1u);
}

TEST(ObjectPool, ConcurrentRecycling) {
  ObjectPool<std::uint64_t> pool(16);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> cycles{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::uint64_t* obj = nullptr;
        while (!(obj = pool.try_acquire())) std::this_thread::yield();
        *obj = 42;  // touch
        pool.release(obj);
        cycles.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cycles.load(), 80000u);
  EXPECT_EQ(pool.available_approx(), 16u);  // population restored
}

}  // namespace
}  // namespace gmt
