// Membership-layer tests: a peer killed mid-run is detected (heartbeat
// silence or retry-budget exhaustion), the survivors agree on a new epoch,
// every operation that targeted the dead node completes with
// GMT_ERR_NODE_LOST instead of hanging, and — with GMT_REPLICATE on — the
// lost partitions are served from their buddy replicas so a retried BFS
// reproduces the exact fault-free answer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <queue>
#include <vector>

#include "common/config.hpp"
#include "gmt/error.hpp"
#include "gmt/gmt.hpp"
#include "graph/generator.hpp"
#include "kernels/bfs_gmt.hpp"
#include "net/faulty_transport.hpp"
#include "runtime/cluster.hpp"
#include "runtime/membership.hpp"
#include "runtime/stats_report.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

Config membership_config() {
  Config config = Config::testing();
  config.reliable_transport = true;
  config.membership = true;
  // Generous detection windows: under TSan on a loaded single core a live
  // peer's heartbeats can be scheduled out for tens of milliseconds, and a
  // false suspicion cascades into survivors excluding each other. The
  // tests assert detection semantics; detection speed is benchmarked.
  config.heartbeat_ns = 2'000'000;          // 2 ms
  config.suspect_timeout_ns = 200'000'000;  // 200 ms
  return config;
}

struct HostBfs {
  std::uint64_t visited = 0;
  std::uint64_t edges = 0;
};

HostBfs host_bfs(const graph::Csr& csr, std::uint64_t root) {
  HostBfs result;
  std::vector<bool> seen(csr.vertices, false);
  std::queue<std::uint64_t> queue;
  seen[root] = true;
  queue.push(root);
  result.visited = 1;
  while (!queue.empty()) {
    const std::uint64_t v = queue.front();
    queue.pop();
    for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      ++result.edges;
      const std::uint64_t u = csr.adjacency[e];
      if (!seen[u]) {
        seen[u] = true;
        queue.push(u);
        ++result.visited;
      }
    }
  }
  return result;
}

std::uint64_t env_u64_or(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name))
    return std::strtoull(v, nullptr, 0);
  return fallback;
}

// A node that never gets a frame out is suspected via heartbeat silence,
// the survivors commit an exclusion epoch, and operations that targeted its
// partition fail fast with GMT_ERR_NODE_LOST — no hang, no abort.
TEST(Membership, KillCommitsEpochAndFailsOpsNodeLost) {
  Config config = membership_config();
  config.fault.kill_node = 2;
  config.fault.kill_at = 0;  // dark from the first send
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    // The broadcast registration targets the dead node, so this blocks
    // until detection fails the in-flight ack — detection latency, not
    // forever.
    const gmt_handle h = gmt_new(3 * 4096, Alloc::kPartition);
    while (gmt_membership_epoch() == 0) gmt_yield();
    EXPECT_TRUE(gmt_node_is_live(0));
    EXPECT_TRUE(gmt_node_is_live(1));
    EXPECT_FALSE(gmt_node_is_live(2));
    gmt_clear_error();

    // Partition 2 is homed on the dead node: without replication the write
    // is refused with a sticky error instead of data loss...
    std::uint64_t word = 0xdead;
    gmt_put(h, 2 * 4096, &word, 8);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_NODE_LOST);
    gmt_clear_error();
    // ...and a failed atomic reports a previous value of 0.
    EXPECT_EQ(gmt_atomic_add(h, 2 * 4096 + 64, 7, 8), 0u);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_NODE_LOST);
    gmt_clear_error();

    // The surviving partitions keep full service.
    word = 0xbeef;
    gmt_put(h, 1 * 4096, &word, 8);
    std::uint64_t back = 0;
    gmt_get(h, 1 * 4096, &back, 8);
    EXPECT_EQ(back, 0xbeefu);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    // A parfor redistributes over the survivors instead of dropping the
    // dead node's share.
    std::atomic<std::uint64_t> ran{0};
    test::parfor_lambda(90, 1, [&](std::uint64_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 90u);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    gmt_free(h);
    gmt_clear_error();  // the free toward the dead partition errors
  });

  // The victim really went dark, and detection ran kill -> suspicion ->
  // epoch commit in that order on the coordinator.
  const net::FaultyTransport* victim = cluster.faulty_transport(2);
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(victim->killed());
  rt::MembershipManager* m0 = cluster.node(0).membership();
  ASSERT_NE(m0, nullptr);
  // (No ordering assertion against killed_ns: with a node dark from its
  // first send, the observer's silence timer — baselined at startup — can
  // expire marginally before the victim's first swallowed send stamps its
  // kill time.)
  EXPECT_GT(m0->first_suspect_ns(), 0u);
  EXPECT_GE(m0->last_commit_ns(), m0->first_suspect_ns());

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GE(summary.membership_epoch, 1u);
  EXPECT_GE(summary.epoch_commits, 1u);
  EXPECT_GE(summary.peers_lost, 2u);  // nodes 0 and 1 each declared node 2
  EXPECT_GT(summary.heartbeats_sent, 0u);
  EXPECT_GT(summary.ops_failed_node_lost, 0u);
  EXPECT_GT(summary.arrays_degraded, 0u);
  EXPECT_EQ(summary.arrays_remapped, 0u);  // replication was off
}

// With GMT_REPLICATE on, a small partitioned array survives the death of a
// partition's home: reads and writes are remapped to the buddy replica and
// the pre-kill contents are intact.
TEST(Membership, ReplicatedArraySurvivesPartitionLoss) {
  Config config = membership_config();
  config.replicate = true;
  config.fault.kill_node = 1;
  config.fault.kill_at = env_u64_or("GMT_FAULT_KILL_AT", 40);
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  constexpr std::uint64_t kWords = 512;  // spans all three partitions
  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    gmt_handle h = kNullHandle;
    bool ok = false;
    for (int attempt = 0; attempt < 8 && !ok; ++attempt) {
      gmt_clear_error();
      h = gmt_new(kWords * 8, Alloc::kPartition);
      for (std::uint64_t i = 0; i < kWords; ++i)
        gmt_put_value_nb(h, i * 8, i * 3 + 1, 8);
      gmt_wait_commands();
      if (gmt_last_error() == GMT_ERR_OK) {
        ok = true;
        break;
      }
      // Mid-write death: wait out the epoch agreement, then rebuild
      // against the survivor membership.
      while (gmt_membership_epoch() == 0) gmt_yield();
      gmt_clear_error();
      gmt_free(h);
    }
    ASSERT_TRUE(ok);

    // Force the failure to be visible before verifying (the kill may not
    // have tripped during a fast write phase): poke the victim until the
    // epoch commits.
    while (gmt_membership_epoch() == 0) {
      gmt_put_value_nb(h, (kWords / 2) * 8, 1, 8);  // partition 1 traffic
      gmt_wait_commands();
      gmt_yield();
    }
    gmt_clear_error();
    // Re-write, now routed to the replica for the lost partition.
    for (std::uint64_t i = 0; i < kWords; ++i)
      gmt_put_value_nb(h, i * 8, i * 3 + 1, 8);
    gmt_wait_commands();
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    // Every word — including the lost partition's — reads back exactly.
    for (std::uint64_t i = 0; i < kWords; ++i) {
      std::uint64_t word = 0;
      gmt_get(h, i * 8, &word, 8);
      EXPECT_EQ(word, i * 3 + 1) << "word " << i;
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    // Atomics execute on the replica too.
    EXPECT_EQ(gmt_atomic_add(h, (kWords / 2) * 8, 5, 8),
              (kWords / 2) * 3 + 1);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    gmt_free(h);
    gmt_clear_error();
  });

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GE(summary.membership_epoch, 1u);
  EXPECT_GT(summary.arrays_remapped, 0u);
}

// The kill-mid-BFS soak: a node dies while a BFS is traversing a graph
// whose arrays are replicated. The survivors (a) commit a new epoch,
// (b) retry and reproduce the exact fault-free BFS answer from the buddy
// replicas, and (c) never deadlock. GMT_FAULT_KILL_NODE / GMT_FAULT_KILL_AT
// / GMT_FAULT_SEED override the defaults so check.sh --soak can rotate
// victims and timings.
TEST(Membership, KillMidBfsSurvivorsRecoverExactly) {
  Config config = membership_config();
  config.replicate = true;
  config.fault.kill_node = static_cast<std::uint32_t>(
      env_u64_or("GMT_FAULT_KILL_NODE", 1));
  config.fault.kill_at = env_u64_or("GMT_FAULT_KILL_AT", 600);
  config.fault.seed = env_u64_or("GMT_FAULT_SEED", 0x5eed);
  ASSERT_TRUE(config.validate().empty()) << config.validate();
  const std::uint64_t graph_seed = env_u64_or("GMT_FAULT_SEED", 17);

  const graph::Csr csr = graph::build_csr(
      400, graph::generate_uniform({400, 1, 6, graph_seed}));
  const HostBfs reference = host_bfs(csr, 0);

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    // A small replicated probe array held across the whole run: whenever
    // the kill lands, at least this array is remapped, and the post-epoch
    // write/read below exercises the replica path end to end.
    constexpr std::uint64_t kProbeWords = 96;
    const gmt_handle probe = gmt_new(kProbeWords * 8, Alloc::kPartition);

    kernels::BfsResult bfs;
    bool ok = false;
    for (int attempt = 0; attempt < 8 && !ok; ++attempt) {
      gmt_clear_error();
      graph::DistGraph dist = graph::DistGraph::build(csr);
      if (gmt_last_error() == GMT_ERR_OK) {
        bfs = kernels::bfs_gmt(dist, 0);
        ok = gmt_last_error() == GMT_ERR_OK;
      }
      gmt_clear_error();
      dist.destroy();
      gmt_clear_error();
      if (!ok && !gmt_node_is_live(config.fault.kill_node)) {
        // Dead node noticed: wait for the epoch so the retry partitions
        // its parfors over the survivors only.
        while (gmt_membership_epoch() == 0) gmt_yield();
      }
    }
    ASSERT_TRUE(ok) << "BFS never completed cleanly";
    EXPECT_EQ(bfs.visited, reference.visited);
    EXPECT_EQ(bfs.edges_traversed, reference.edges);

    // A late kill_at may only trip after the BFS finished: the victim's
    // heartbeats alone exhaust it, so waiting for the epoch terminates.
    while (gmt_membership_epoch() == 0) gmt_yield();
    gmt_clear_error();
    for (std::uint64_t i = 0; i < kProbeWords; ++i)
      gmt_put_value_nb(probe, i * 8, i ^ 0x55, 8);
    gmt_wait_commands();
    for (std::uint64_t i = 0; i < kProbeWords; ++i) {
      std::uint64_t word = 0;
      gmt_get(probe, i * 8, &word, 8);
      EXPECT_EQ(word, i ^ 0x55) << "probe word " << i;
    }
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(probe);
    gmt_clear_error();
  });

  const net::FaultyTransport* victim =
      cluster.faulty_transport(config.fault.kill_node);
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(victim->killed());
  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GE(summary.membership_epoch, 1u);
  EXPECT_GT(summary.arrays_remapped, 0u);
}

// Without replication the data on the lost partitions is gone: the run must
// still terminate (no deadlock), commit the exclusion epoch, and surface
// the loss as a sticky error rather than fabricate a result.
TEST(Membership, KillMidBfsWithoutReplicationTerminatesWithError) {
  Config config = membership_config();
  config.fault.kill_node = 1;
  config.fault.kill_at = 60;
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  const graph::Csr csr = graph::build_csr(
      400, graph::generate_uniform({400, 1, 6, /*seed=*/17}));

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    // The victim dies within a few milliseconds (its heartbeats alone
    // reach kill_at); once the survivors exclude it, every build/BFS pass
    // touches its unreplicated partitions and must latch the loss.
    std::uint32_t err = GMT_ERR_OK;
    for (int attempt = 0; attempt < 8 && err == GMT_ERR_OK; ++attempt) {
      graph::DistGraph dist = graph::DistGraph::build(csr);
      kernels::bfs_gmt(dist, 0);
      err = gmt_last_error();
      gmt_clear_error();
      dist.destroy();
      gmt_clear_error();
    }
    while (gmt_membership_epoch() == 0) gmt_yield();
    EXPECT_EQ(err, GMT_ERR_NODE_LOST);
  });

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GE(summary.membership_epoch, 1u);
  EXPECT_GT(summary.arrays_degraded, 0u);
  EXPECT_GT(summary.ops_failed_node_lost, 0u);
}

}  // namespace
}  // namespace gmt
