// Reliability-layer tests: CRC framing, the sequence/ack state machine,
// the fault-injecting transport decorator, and the full runtime surviving
// a hostile network (drops, duplicates, corruption, reordering) with
// bit-identical results.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <queue>
#include <vector>

#include "common/config.hpp"
#include "common/crc32.hpp"
#include "kernels/bfs_gmt.hpp"
#include "kernels/chma_gmt.hpp"
#include "net/faulty_transport.hpp"
#include "net/frame.hpp"
#include "net/inproc_transport.hpp"
#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"
#include "runtime/reliable_channel.hpp"
#include "runtime/stats_report.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// ---- CRC32C ----

TEST(Crc32c, KnownAnswer) {
  // The canonical CRC-32C check value (RFC 3720 appendix, iSCSI).
  EXPECT_EQ(crc32c("123456789", 9), 0xe3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1537);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split : {0ul, 1ul, 7ul, 512ul, 1536ul, 1537ul}) {
    const std::uint32_t first = crc32c(data.data(), split);
    const std::uint32_t chained =
        crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chained, whole) << "split " << split;
  }
}

TEST(Crc32c, SingleBitFlipChangesValue) {
  std::vector<std::uint8_t> data(256, 0xab);
  const std::uint32_t reference = crc32c(data.data(), data.size());
  for (std::size_t bit : {0ul, 777ul, 2047ul}) {
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32c(data.data(), data.size()), reference);
    data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

// ---- frame seal/parse ----

std::vector<std::uint8_t> make_data_frame(std::uint32_t src, std::uint64_t seq,
                                          std::uint64_t ack,
                                          const std::vector<std::uint8_t>&
                                              payload) {
  std::vector<std::uint8_t> frame(net::kFrameHeaderSize);
  frame.insert(frame.end(), payload.begin(), payload.end());
  net::FrameHeader header;
  header.type = static_cast<std::uint8_t>(net::FrameType::kData);
  header.src = src;
  header.seq = seq;
  header.ack = ack;
  net::seal_frame(frame, header);
  return frame;
}

TEST(Frame, SealParseRoundTrip) {
  const std::vector<std::uint8_t> payload = {10, 20, 30, 40, 50};
  const std::vector<std::uint8_t> frame = make_data_frame(3, 42, 7, payload);
  net::FrameHeader header;
  ASSERT_TRUE(net::parse_frame(frame, &header));
  EXPECT_EQ(header.src, 3u);
  EXPECT_EQ(header.seq, 42u);
  EXPECT_EQ(header.ack, 7u);
  EXPECT_EQ(header.payload_len, payload.size());
  EXPECT_EQ(0, std::memcmp(frame.data() + net::kFrameHeaderSize,
                           payload.data(), payload.size()));
}

TEST(Frame, AnySingleBitFlipRejected) {
  const std::vector<std::uint8_t> good =
      make_data_frame(1, 9, 0, {1, 2, 3, 4});
  net::FrameHeader header;
  for (std::size_t bit = 0; bit < good.size() * 8; ++bit) {
    std::vector<std::uint8_t> bad = good;
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(net::parse_frame(bad, &header)) << "bit " << bit;
  }
}

TEST(Frame, TruncationAndGarbageRejected) {
  std::vector<std::uint8_t> frame = make_data_frame(0, 1, 0, {1, 2, 3});
  net::FrameHeader header;
  frame.pop_back();  // torn tail
  EXPECT_FALSE(net::parse_frame(frame, &header));
  EXPECT_FALSE(net::parse_frame({1, 2, 3}, &header));  // way too short
  std::vector<std::uint8_t> noise(64, 0x5a);
  EXPECT_FALSE(net::parse_frame(noise, &header));  // no magic
}

TEST(Frame, LengthMismatchDetected) {
  std::vector<std::uint8_t> frame = make_data_frame(0, 1, 0, {1, 2, 3, 4});
  EXPECT_FALSE(net::frame_length_mismatch(frame.data(), frame.size()));
  EXPECT_TRUE(net::frame_length_mismatch(frame.data(), frame.size() - 2));
  // Non-frame traffic is not flagged (no magic).
  std::vector<std::uint8_t> other(64, 0);
  EXPECT_FALSE(net::frame_length_mismatch(other.data(), other.size()));
}

TEST(Frame, RefreshAckPreservesPayloadCrc) {
  std::vector<std::uint8_t> frame = make_data_frame(2, 5, 1, {9, 9, 9});
  net::refresh_frame_ack(frame, 4);
  net::FrameHeader header;
  ASSERT_TRUE(net::parse_frame(frame, &header));
  EXPECT_EQ(header.ack, 4u);
  EXPECT_EQ(header.seq, 5u);
}

// ---- ReliableChannel sequence window ----

struct ChannelFixture {
  Config config;
  net::InprocFabric fabric;
  obs::Registry registry{"test"};
  rt::ReliabilityStats stats;
  rt::ReliableChannel channel;
  std::deque<net::InMessage> out;

  ChannelFixture()
      : config([] {
          Config c = Config::testing();
          c.reliable_transport = true;
          return c;
        }()),
        fabric(2, net::NetworkModel::instant()),
        channel(config, fabric.endpoint(1), &stats) {
    stats.bind(registry);
  }

  void feed(const std::vector<std::uint8_t>& frame, std::uint64_t now_ns) {
    channel.on_message(net::InMessage{0, frame}, now_ns, &out);
  }
};

TEST(ReliableChannel, DuplicateDeliveryIsSuppressed) {
  // The seq window makes command execution idempotent: a retransmitted
  // buffer that was already delivered must never reach the helpers again.
  ChannelFixture fx;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const std::vector<std::uint8_t> frame = make_data_frame(0, 1, 0, payload);

  fx.feed(frame, 1000);
  ASSERT_EQ(fx.out.size(), 1u);
  EXPECT_EQ(fx.out.front().payload, payload);
  EXPECT_EQ(fx.out.front().src, 0u);

  fx.feed(frame, 2000);  // duplicate (lost-ack retransmission)
  fx.feed(frame, 3000);  // and again
  EXPECT_EQ(fx.out.size(), 1u);
  EXPECT_EQ(fx.stats.dup_suppressed.read(), 2u);
}

TEST(ReliableChannel, OutOfOrderFramesDeliveredInOrder) {
  ChannelFixture fx;
  const std::vector<std::uint8_t> first = {1};
  const std::vector<std::uint8_t> second = {2};
  const std::vector<std::uint8_t> third = {3};

  fx.feed(make_data_frame(0, 3, 0, third), 1000);
  fx.feed(make_data_frame(0, 2, 0, second), 2000);
  EXPECT_TRUE(fx.out.empty());  // gap at seq 1: nothing deliverable yet
  EXPECT_EQ(fx.stats.out_of_order_held.read(), 2u);

  fx.feed(make_data_frame(0, 1, 0, first), 3000);
  ASSERT_EQ(fx.out.size(), 3u);
  EXPECT_EQ(fx.out[0].payload, first);
  EXPECT_EQ(fx.out[1].payload, second);
  EXPECT_EQ(fx.out[2].payload, third);
}

TEST(ReliableChannel, CorruptFrameDroppedAndCounted) {
  ChannelFixture fx;
  std::vector<std::uint8_t> frame = make_data_frame(0, 1, 0, {5, 6, 7});
  frame[net::kFrameHeaderSize] ^= 0x01;  // corrupt the payload
  fx.feed(frame, 1000);
  EXPECT_TRUE(fx.out.empty());
  EXPECT_EQ(fx.stats.crc_drops.read(), 1u);
  // The intact retransmission is accepted as seq 1, not a duplicate.
  fx.feed(make_data_frame(0, 1, 0, {5, 6, 7}), 2000);
  EXPECT_EQ(fx.out.size(), 1u);
  EXPECT_EQ(fx.stats.dup_suppressed.read(), 0u);
}

TEST(ReliableChannel, RetransmitsUntilAckedThenQuiesces) {
  Config config = Config::testing();
  config.reliable_transport = true;
  net::InprocFabric fabric(2, net::NetworkModel::instant());
  obs::Registry registry("test");
  rt::ReliabilityStats stats;
  stats.bind(registry);
  rt::ReliableChannel sender(config, fabric.endpoint(0), &stats);

  sender.submit(1, make_data_frame(0, 0, 0, {1, 2, 3}));
  EXPECT_FALSE(sender.quiescent());
  std::uint64_t now = 1'000'000;
  sender.pump(now);
  EXPECT_EQ(stats.data_frames_sent.read(), 1u);

  // No ack arrives: pumping past the timeout retransmits with backoff.
  now += config.retry_timeout_ns + 1;
  sender.pump(now);
  now += 2 * config.retry_timeout_ns + 1;
  sender.pump(now);
  EXPECT_GE(stats.retransmits.read(), 2u);
  EXPECT_FALSE(sender.quiescent());

  // A cumulative ack for seq 1 clears the window.
  std::vector<std::uint8_t> ack(net::kFrameHeaderSize);
  net::FrameHeader header;
  header.type = static_cast<std::uint8_t>(net::FrameType::kAck);
  header.src = 1;
  header.ack = 1;
  net::seal_frame(ack, header);
  std::deque<net::InMessage> out;
  sender.on_message(net::InMessage{1, std::move(ack)}, now, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(sender.quiescent());
  // Acked-frame accounting lives in the ack-latency histogram now.
  EXPECT_EQ(stats.ack_latency_ns.read().count, 1u);
}

// ---- FaultyTransport ----

net::FaultCountersSnapshot run_fault_traffic(const FaultInjection& spec,
                                             std::vector<std::size_t>* got) {
  net::InprocFabric fabric(2, net::NetworkModel::instant());
  net::FaultyTransport faulty(fabric.endpoint(0), spec);
  for (int i = 0; i < 400; ++i) {
    std::vector<std::uint8_t> msg(4 + (i % 16), static_cast<std::uint8_t>(i));
    while (!faulty.send(1, msg)) {
      net::InMessage drain;
      while (fabric.endpoint(1)->try_recv(&drain)) got->push_back(
          drain.payload.size());
    }
  }
  net::InMessage msg;
  while (fabric.endpoint(1)->try_recv(&msg)) got->push_back(
      msg.payload.size());
  return faulty.counters().snapshot();
}

TEST(FaultyTransport, DeterministicForAGivenSeed) {
  FaultInjection spec;
  spec.drop = 0.1;
  spec.duplicate = 0.1;
  spec.corrupt = 0.1;
  spec.reorder = 0.1;
  spec.seed = 1234;
  // Keep releases countdown-driven: a wall-clock deadline firing mid-run
  // would make the interleaving timing-dependent.
  spec.reorder_hold_ns = 1'000'000'000;

  std::vector<std::size_t> got_a, got_b;
  const net::FaultCountersSnapshot a = run_fault_traffic(spec, &got_a);
  const net::FaultCountersSnapshot b = run_fault_traffic(spec, &got_b);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.corruptions, b.corruptions);
  EXPECT_EQ(a.reorders, b.reorders);
  EXPECT_EQ(got_a, got_b);
  EXPECT_GT(a.drops, 0u);
  EXPECT_GT(a.duplicates, 0u);
  EXPECT_GT(a.corruptions, 0u);
  EXPECT_GT(a.reorders, 0u);

  spec.seed = 99;  // a different seed draws a different schedule
  std::vector<std::size_t> got_c;
  const net::FaultCountersSnapshot c = run_fault_traffic(spec, &got_c);
  EXPECT_NE(a.drops, c.drops);
}

TEST(FaultyTransport, DropsExactlyAccountForMissingMessages) {
  FaultInjection spec;
  spec.drop = 0.25;
  spec.seed = 7;
  std::vector<std::size_t> got;
  const net::FaultCountersSnapshot counters = run_fault_traffic(spec, &got);
  EXPECT_GT(counters.drops, 0u);
  EXPECT_EQ(got.size() + counters.drops, 400u);
}

TEST(FaultyTransport, CleanSpecIsTransparent) {
  FaultInjection spec;  // all probabilities zero
  EXPECT_FALSE(spec.any());
  std::vector<std::size_t> got;
  const net::FaultCountersSnapshot counters = run_fault_traffic(spec, &got);
  EXPECT_EQ(counters.total(), 0u);
  EXPECT_EQ(got.size(), 400u);
}

// ---- config plumbing ----

TEST(FaultConfig, LossyFaultsRequireReliableTransport) {
  Config config = Config::testing();
  config.fault.drop = 0.1;
  EXPECT_FALSE(config.validate().empty());
  config.reliable_transport = true;
  EXPECT_TRUE(config.validate().empty()) << config.validate();
}

TEST(FaultConfig, BackpressureOnlyNeedsNoReliability) {
  // Backpressure is lossless: legal without the reliability layer.
  Config config = Config::testing();
  config.fault.backpressure = 0.2;
  EXPECT_TRUE(config.validate().empty()) << config.validate();
}

// ---- fault-matrix integration: the runtime under a hostile network ----

struct HostBfs {
  std::uint64_t visited = 0;
  std::uint64_t edges = 0;
};

HostBfs host_bfs(const graph::Csr& csr, std::uint64_t root) {
  HostBfs result;
  std::vector<bool> seen(csr.vertices, false);
  std::queue<std::uint64_t> queue;
  seen[root] = true;
  queue.push(root);
  result.visited = 1;
  while (!queue.empty()) {
    const std::uint64_t v = queue.front();
    queue.pop();
    for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
      ++result.edges;
      const std::uint64_t u = csr.adjacency[e];
      if (!seen[u]) {
        seen[u] = true;
        queue.push(u);
        ++result.visited;
      }
    }
  }
  return result;
}

struct FaultCase {
  const char* name;
  double drop;
  double duplicate;
  double corrupt;
  double reorder;
  bool expect_retransmits;
  bool expect_dup_suppressed;
  bool expect_crc_drops;
};

void PrintTo(const FaultCase& c, std::ostream* os) { *os << c.name; }

class FaultMatrix : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultMatrix, BfsAndChmaSurviveWithCorrectResults) {
  const FaultCase& fc = GetParam();
  Config config = Config::testing();
  config.reliable_transport = true;
  config.fault.drop = fc.drop;
  config.fault.duplicate = fc.duplicate;
  config.fault.corrupt = fc.corrupt;
  config.fault.reorder = fc.reorder;
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  const graph::Csr csr = graph::build_csr(
      600, graph::generate_uniform({600, 1, 6, /*seed=*/17}));
  const HostBfs reference = host_bfs(csr, 0);

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::BfsResult bfs = kernels::bfs_gmt(dist, 0);
    EXPECT_EQ(bfs.visited, reference.visited);
    EXPECT_EQ(bfs.edges_traversed, reference.edges);
    dist.destroy();

    auto workload = kernels::ChmaWorkload::setup(1024, 128, 96, 7);
    const kernels::ChmaResult chma = kernels::chma_gmt(workload, 12, 8);
    EXPECT_EQ(chma.accesses, 12u * 8);
    const auto pool = hash::generate_pool(128, 7);
    for (int i = 0; i < 96; ++i)
      EXPECT_TRUE(workload.map.contains(pool[i])) << "key " << i;
    workload.destroy();
  });

  // The faults really fired...
  const net::FaultCountersSnapshot faults = cluster.total_fault_counters();
  EXPECT_GT(faults.total(), 0u);
  if (fc.drop > 0) {
    EXPECT_GT(faults.drops, 0u);
  }
  if (fc.duplicate > 0) {
    EXPECT_GT(faults.duplicates, 0u);
  }
  if (fc.corrupt > 0) {
    EXPECT_GT(faults.corruptions, 0u);
  }
  if (fc.reorder > 0) {
    EXPECT_GT(faults.reorders, 0u);
  }

  // ...and the reliability layer visibly recovered from them.
  rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GT(summary.data_frames_sent, 0u);
  if (fc.expect_retransmits) {
    EXPECT_GT(summary.retransmits, 0u);
  }
  if (fc.expect_dup_suppressed) {
    EXPECT_GT(summary.dup_suppressed, 0u);
  }
  if (fc.expect_crc_drops) {
    EXPECT_GT(summary.crc_drops, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classes, FaultMatrix,
    ::testing::Values(
        FaultCase{"DropOnly", 0.05, 0, 0, 0, true, false, false},
        FaultCase{"DupOnly", 0, 0.08, 0, 0, false, true, false},
        FaultCase{"CorruptOnly", 0, 0, 0.05, 0, false, false, true},
        FaultCase{"Combined", 0.05, 0.02, 0.01, 0.02, true, false, false}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return std::string(info.param.name);
    });

// ---- credit-starvation soak: flow control under a hostile network ----

TEST(FlowControl, CreditStarvationSoakMakesForwardProgress) {
  // A tiny credit window (2 buffers in flight per destination) combined
  // with drops and backpressure starves senders of credits for long
  // stretches: grants ride acks, and acked frames are being dropped. The
  // soak asserts liveness (the workload completes — tasks parked on
  // credits are woken when grants finally land) and that the credit
  // machinery demonstrably engaged.
  Config config = Config::testing();
  config.reliable_transport = true;
  config.flow_credits = 2;
  config.buffer_size = 2048;
  config.fault.drop = 0.05;
  config.fault.backpressure = 0.15;
  config.fault.seed = 0xc4ed17;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(64 * 1024, Alloc::kPartition);
    std::vector<std::uint8_t> chunk(256);
    // Flood of non-blocking puts round-robined across partitions: far
    // more buffered bytes than the 2-buffer window permits, so the
    // sender must repeatedly stall and resume on grants.
    for (int round = 0; round < 40; ++round) {
      for (std::uint64_t off = 0; off + chunk.size() <= 64 * 1024;
           off += chunk.size()) {
        chunk.assign(chunk.size(),
                     static_cast<std::uint8_t>(round ^ (off >> 8)));
        gmt_put_nb(h, off, chunk.data(), chunk.size());
      }
      gmt_wait_commands();
    }
    // Spot-check the last round landed intact.
    std::vector<std::uint8_t> back(256);
    gmt_get(h, 0, back.data(), back.size());
    EXPECT_EQ(back[0], static_cast<std::uint8_t>(39));
    gmt_free(h);
  });

  const net::FaultCountersSnapshot faults = cluster.total_fault_counters();
  EXPECT_GT(faults.drops, 0u);
  EXPECT_GT(faults.backpressures, 0u);

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GT(summary.retransmits, 0u);          // the network really hurt
  EXPECT_GT(summary.credits_consumed, 0u);     // window was exercised
  EXPECT_GT(summary.credits_granted, 0u);      // grants flowed back
  // Every buffer shipped consumed a credit; every buffer drained granted
  // one. Retransmitted buffers don't re-consume, so consumed <= granted +
  // (window still open) is the steady-state bound after quiescence.
  EXPECT_LE(summary.credits_consumed,
            summary.credits_granted + 2ull * 3 * 3);
}

TEST(FlowControl, TinyWindowCleanNetworkStillCompletes) {
  // flow_credits=1 with no faults: the tightest legal window. Progress
  // must come purely from the grant round-trip; this is the test most
  // likely to hang if a lost-wakeup or credit-leak bug exists.
  Config config = Config::testing();
  config.reliable_transport = true;
  config.flow_credits = 1;
  config.buffer_size = 1024;

  rt::Cluster cluster(2, config);
  test::run_task(cluster, [&] {
    const gmt_handle h = gmt_new(32 * 1024, Alloc::kPartition);
    std::vector<std::uint8_t> chunk(512, 0xee);
    for (std::uint64_t off = 0; off + chunk.size() <= 32 * 1024;
         off += chunk.size())
      gmt_put_nb(h, off, chunk.data(), chunk.size());
    gmt_wait_commands();
    std::vector<std::uint8_t> back(512);
    gmt_get(h, 31 * 1024, back.data(), back.size());
    EXPECT_EQ(back[511], 0xee);
    gmt_free(h);
  });

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GT(summary.credits_consumed, 0u);
  EXPECT_GT(summary.credits_granted, 0u);
}

TEST(FaultFree, ReliableTransportAloneStaysCorrect) {
  // The protocol without any faults: pure overhead check — results and
  // stats must show zero recoveries.
  Config config = Config::testing();
  config.reliable_transport = true;

  const graph::Csr csr = graph::build_csr(
      400, graph::generate_uniform({400, 1, 6, /*seed=*/5}));
  const HostBfs reference = host_bfs(csr, 0);

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [&] {
    graph::DistGraph dist = graph::DistGraph::build(csr);
    const kernels::BfsResult bfs = kernels::bfs_gmt(dist, 0);
    EXPECT_EQ(bfs.visited, reference.visited);
    dist.destroy();
  });

  const rt::ClusterStatsSummary summary = rt::summarize_stats(cluster);
  EXPECT_GT(summary.data_frames_sent, 0u);
  // No corruption is possible without an injector. Retransmissions (and
  // the duplicate suppressions they cause) can still occur legitimately:
  // on an oversubscribed host the ack may simply arrive after the RTO.
  EXPECT_EQ(summary.crc_drops, 0u);
  EXPECT_EQ(cluster.total_fault_counters().total(), 0u);
}

}  // namespace
}  // namespace gmt
