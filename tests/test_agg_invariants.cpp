// Randomized invariants for the aggregation pipeline (label: flowcontrol).
//
// The pipeline moves commands through three levels (thread-local blocks,
// per-destination MPMC queues, pooled buffers on SPSC channels) with three
// flush triggers (block full, buffer's-worth queued, deadline) — plenty of
// interleavings for a command to get lost, duplicated, or reordered. Each
// command here carries a unique (slot, sequence) tag so the invariants are
// checked exactly:
//
//  - Deterministic suite: a seeded random schedule of appends, deadline
//    firings and flush_all calls, drained after every step. Single-threaded
//    scheduling makes global delivery order well-defined, so per-(slot,
//    destination) FIFO order is asserted, plus idle() <=> quiescence at
//    every step.
//  - Concurrent suite: seeded random traffic from several threads with
//    randomized flush interleavings; delivery order across threads is
//    unspecified, so it asserts exact set-completeness (nothing lost,
//    nothing duplicated, payloads intact) and per-thread tag monotonicity
//    is not required.
//  - Credit suite: the flow-control state machine driven directly (no comm
//    server): consumption per shipped buffer, the overdraft bound, grant
//    wrap-around, and drain/grant bookkeeping.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"
#include "runtime/aggregation.hpp"
#include "runtime/command.hpp"

namespace gmt::rt {
namespace {

Config small_config() {
  Config c = Config::testing();
  c.buffer_size = 1024;
  c.cmd_block_entries = 4;
  c.cmd_block_timeout_ns = 1'000'000;  // 1 ms
  c.agg_queue_timeout_ns = 2'000'000;  // 2 ms
  return c;
}

// One tagged command: slot in aux1, per-(slot,dst) sequence in aux2, and a
// payload whose bytes are derived from the tag (corruption check).
CmdHeader make_tagged(std::uint64_t slot, std::uint64_t seq,
                      std::uint32_t payload_size) {
  CmdHeader h;
  h.op = Op::kPut;
  h.handle = 7;
  h.offset = seq;
  h.token = (slot << 48) | seq;
  h.aux1 = slot;
  h.aux2 = seq;
  h.payload_size = payload_size;
  return h;
}

std::uint8_t tag_byte(std::uint64_t slot, std::uint64_t seq) {
  return static_cast<std::uint8_t>(0x5a ^ (slot * 31 + seq));
}

struct Decoded {
  std::uint64_t slot;
  std::uint64_t seq;
  std::uint32_t dst;
};

// Pops every channel buffer, decodes its commands in order and appends them
// to `out` (delivery order: buffers of one aggregate pass land on one
// channel in creation order). Verifies payload integrity inline.
void drain_channels(Aggregator& agg, std::vector<Decoded>* out) {
  for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
    AggBuffer* buffer = nullptr;
    while (agg.slot(s).channel().pop(&buffer)) {
      std::size_t pos = 0;
      const std::uint8_t* payload = nullptr;
      while (pos < buffer->data().size()) {
        const CmdHeader h = decode_cmd(buffer->data().data(),
                                       buffer->data().size(), &pos, &payload);
        if (h.payload_size > 0) {
          const std::uint8_t expected = tag_byte(h.aux1, h.aux2);
          for (std::uint32_t b = 0; b < h.payload_size; ++b)
            ASSERT_EQ(payload[b], expected)
                << "payload corrupted (slot " << h.aux1 << " seq " << h.aux2
                << ")";
        }
        out->push_back(Decoded{h.aux1, h.aux2, buffer->dst});
      }
      agg.release_buffer(buffer);
    }
  }
}

// ------------------------------------------------- deterministic schedule --

TEST(AggInvariants, RandomScheduleKeepsPerSlotDstFifo) {
  for (const std::uint64_t seed : {1u, 7u, 1234u}) {
    Config config = small_config();
    // This test drains channels only between steps, so one step must never
    // need more buffers than the pool holds (a worst-case poll_flush can
    // force-flush every destination at once): size pool and channels with
    // slack for that — the live comm server usually provides it.
    config.num_buf_per_channel = 16;
    constexpr std::uint32_t kNodes = 4;
    constexpr std::uint32_t kSlots = 3;
    constexpr int kSteps = 4000;
    Aggregator agg(config, kNodes, kSlots);
    std::mt19937_64 rng(seed);

    // Per (slot, dst): next sequence to issue / next expected to arrive.
    std::uint64_t issued[kSlots][kNodes] = {};
    std::uint64_t arrived[kSlots][kNodes] = {};
    std::uint64_t in_flight = 0;
    std::vector<Decoded> delivered;

    for (int step = 0; step < kSteps; ++step) {
      const std::uint32_t action = rng() % 100;
      const auto slot = static_cast<std::uint32_t>(rng() % kSlots);
      const auto dst = static_cast<std::uint32_t>(rng() % kNodes);
      if (action < 80) {
        // Append a tagged command of random size.
        const auto size = static_cast<std::uint32_t>(rng() % 48);
        const std::uint64_t seq = issued[slot][dst]++;
        std::vector<std::uint8_t> payload(size, tag_byte(slot, seq));
        agg.append(agg.slot(slot), dst, make_tagged(slot, seq, size),
                   payload.empty() ? nullptr : payload.data());
        ++in_flight;
      } else if (action < 90) {
        // Deadline firing: far-future now forces every timeout.
        agg.poll_flush(agg.slot(slot),
                       wall_ns() + config.agg_queue_timeout_ns * 1000);
      } else if (action < 95) {
        // No-op poll at the current time (deadlines usually not reached).
        agg.poll_flush(agg.slot(slot), wall_ns());
      } else {
        agg.flush_all(agg.slot(slot));
      }

      // Drain after every step; delivery order is deterministic here.
      delivered.clear();
      drain_channels(agg, &delivered);
      for (const Decoded& d : delivered) {
        ASSERT_LT(d.slot, kSlots);
        ASSERT_LT(d.dst, kNodes);
        ASSERT_EQ(d.seq, arrived[d.slot][d.dst])
            << "seed " << seed << " step " << step
            << ": out-of-order or duplicated delivery for slot " << d.slot
            << " -> dst " << d.dst;
        ++arrived[d.slot][d.dst];
        --in_flight;
      }
      // idle() <=> nothing buffered anywhere.
      ASSERT_EQ(agg.idle(), in_flight == 0)
          << "seed " << seed << " step " << step << ": idle()="
          << agg.idle() << " but " << in_flight << " commands in flight";
    }

    // Final quiescence: flush everything, nothing lost.
    for (std::uint32_t s = 0; s < kSlots; ++s) agg.flush_all(agg.slot(s));
    delivered.clear();
    drain_channels(agg, &delivered);
    for (const Decoded& d : delivered) {
      ASSERT_EQ(d.seq, arrived[d.slot][d.dst]);
      ++arrived[d.slot][d.dst];
      --in_flight;
    }
    EXPECT_EQ(in_flight, 0u) << "seed " << seed << ": commands lost";
    for (std::uint32_t s = 0; s < kSlots; ++s)
      for (std::uint32_t d = 0; d < kNodes; ++d)
        EXPECT_EQ(arrived[s][d], issued[s][d])
            << "seed " << seed << " slot " << s << " dst " << d;
    EXPECT_TRUE(agg.idle());
  }
}

// ---------------------------------------------------- concurrent traffic --

TEST(AggInvariants, ConcurrentRandomTrafficLosesNothing) {
  Config config = small_config();
  config.num_buf_per_channel = 8;
  constexpr std::uint32_t kNodes = 3;
  constexpr std::uint32_t kThreads = 3;
  constexpr std::uint64_t kPerThread = 4000;
  Aggregator agg(config, kNodes, kThreads);

  // Every delivered (slot, seq) pair, tallied by the drainer. seq is unique
  // per slot here (single counter across destinations).
  std::vector<std::vector<std::uint32_t>> seen(
      kThreads, std::vector<std::uint32_t>(kPerThread, 0));
  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    for (;;) {
      bool any = false;
      for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
        AggBuffer* buffer = nullptr;
        while (agg.slot(s).channel().pop(&buffer)) {
          std::size_t pos = 0;
          const std::uint8_t* payload = nullptr;
          while (pos < buffer->data().size()) {
            const CmdHeader h = decode_cmd(
                buffer->data().data(), buffer->data().size(), &pos, &payload);
            ASSERT_LT(h.aux1, kThreads);
            ASSERT_LT(h.aux2, kPerThread);
            if (h.payload_size > 0) {
              const std::uint8_t expected = tag_byte(h.aux1, h.aux2);
              for (std::uint32_t b = 0; b < h.payload_size; ++b)
                ASSERT_EQ(payload[b], expected);
            }
            ++seen[h.aux1][h.aux2];
            drained.fetch_add(1);
          }
          agg.release_buffer(buffer);
          any = true;
        }
      }
      if (!any && stop.load()) break;
      if (!any) std::this_thread::yield();
    }
  });

  std::vector<std::thread> appenders;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      std::mt19937_64 rng(0xfeed + t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const auto dst = static_cast<std::uint32_t>(rng() % kNodes);
        const auto size = static_cast<std::uint32_t>(rng() % 64);
        std::vector<std::uint8_t> payload(size, tag_byte(t, i));
        agg.append(agg.slot(t), dst, make_tagged(t, i, size),
                   payload.empty() ? nullptr : payload.data());
        // Randomized flush interleavings against the other appenders.
        if (rng() % 97 == 0)
          agg.poll_flush(agg.slot(t),
                         wall_ns() + config.agg_queue_timeout_ns * 1000);
        if (rng() % 211 == 0) agg.flush_all(agg.slot(t));
      }
      agg.flush_all(agg.slot(t));
    });
  }
  for (auto& thread : appenders) thread.join();
  agg.flush_all(agg.slot(0));  // leftovers another thread's queue may hold
  stop.store(true);
  drainer.join();

  EXPECT_EQ(drained.load(), kThreads * kPerThread);
  for (std::uint32_t t = 0; t < kThreads; ++t)
    for (std::uint64_t i = 0; i < kPerThread; ++i)
      ASSERT_EQ(seen[t][i], 1u) << "thread " << t << " command " << i
                                << (seen[t][i] ? " duplicated" : " lost");
  EXPECT_TRUE(agg.idle());
}

// ------------------------------------------------ combining-table checker --

// A combinable fire-and-forget command, as Node::emit would build it: no
// payload, value in aux1, constant token per (slot, dst) — the issuing
// task's TCB, shared by all its outstanding non-blocking ops.
CmdHeader make_combinable(Op op, std::uint64_t offset, std::uint64_t token,
                          std::uint64_t value) {
  CmdHeader h;
  h.op = op;
  h.handle = 7;
  h.offset = offset;
  h.token = token;
  h.flags = static_cast<std::uint8_t>(
      kCombine | (op == Op::kAtomicAdd ? kNoReply : 0));
  h.aux1 = value;
  return h;
}

// Seeded random traffic through a deliberately tiny combining table (8
// cells, 12 live offsets per slot: constant collisions and evictions),
// mixed with ordinary tagged puts, deadline firings and flush_all. The
// model checks the two semantic invariants merging must preserve — adds
// are sum-preserving per (dst, offset) and repeated put-values dedup to
// the last issued value — plus the structural ones: ordinary traffic
// keeps per-(slot, dst) FIFO, idle() <=> quiescence (held combine entries
// count as non-idle), hits equal elided commands, and the wire command
// count equals issued-minus-elided.
TEST(AggInvariants, CombiningPreservesSumsFinalValuesAndFifo) {
  for (const std::uint64_t seed : {3u, 11u, 4242u}) {
    Config config = small_config();
    config.num_buf_per_channel = 16;
    config.combine = true;
    config.combine_table = 8;
    constexpr std::uint32_t kNodes = 3;
    constexpr std::uint32_t kSlots = 2;
    constexpr std::uint32_t kOffsets = 12;  // per slot, > table size
    constexpr int kSteps = 6000;
    obs::Registry registry("test");
    Aggregator agg(config, kNodes, kSlots, &registry);
    ASSERT_TRUE(agg.combining());
    std::mt19937_64 rng(seed);

    // All writes to offset index (slot * kOffsets + j) come from `slot`
    // only, so per-offset delivery order is the slot's issue order.
    constexpr std::uint32_t kCells = kSlots * kOffsets;
    std::uint64_t sum_issued[kNodes][kCells] = {};
    std::uint64_t sum_delivered[kNodes][kCells] = {};
    std::uint64_t last_put_issued[kNodes][kCells] = {};
    std::uint64_t last_put_delivered[kNodes][kCells] = {};
    bool put_issued[kNodes][kCells] = {};
    std::uint64_t issued_raw[kSlots][kNodes] = {};
    std::uint64_t arrived_raw[kSlots][kNodes] = {};
    std::uint64_t raw_in_flight = 0;
    std::uint64_t wire_expected = 0;  // combined cmds that must ship once
    std::uint64_t combined_delivered = 0;
    std::uint64_t merges = 0;

    const auto issue_combinable = [&](Op op, std::uint32_t slot,
                                      std::uint32_t dst, std::uint64_t value) {
      const std::uint32_t cell =
          slot * kOffsets + static_cast<std::uint32_t>(rng() % kOffsets);
      const CmdHeader h = make_combinable(
          op, cell * 8, /*token=*/(std::uint64_t{slot} << 8) | dst, value);
      if (op == Op::kAtomicAdd) {
        sum_issued[dst][cell] += value;
      } else {
        last_put_issued[dst][cell] = value;
        put_issued[dst][cell] = true;
      }
      switch (agg.combine(agg.slot(slot), dst, h)) {
        case CombineResult::kMerged:
          ++merges;
          break;
        case CombineResult::kInstalled:
          ++wire_expected;
          break;
        case CombineResult::kBypass:  // no dead dests here, but mirror emit
          agg.append(agg.slot(slot), dst, h, nullptr);
          ++wire_expected;
          break;
      }
    };

    std::vector<Decoded> delivered;
    for (int step = 0; step < kSteps; ++step) {
      const std::uint32_t action = rng() % 100;
      const auto slot = static_cast<std::uint32_t>(rng() % kSlots);
      const auto dst = static_cast<std::uint32_t>(rng() % kNodes);
      if (action < 35) {
        issue_combinable(Op::kAtomicAdd, slot, dst, rng() % 1000 + 1);
      } else if (action < 55) {
        issue_combinable(Op::kPutValue, slot, dst, rng() + 1);
      } else if (action < 80) {
        const auto size = static_cast<std::uint32_t>(rng() % 48);
        const std::uint64_t seq = issued_raw[slot][dst]++;
        std::vector<std::uint8_t> payload(size, tag_byte(slot, seq));
        agg.append(agg.slot(slot), dst, make_tagged(slot, seq, size),
                   payload.empty() ? nullptr : payload.data());
        ++raw_in_flight;
      } else if (action < 90) {
        // Far-future deadline: fires block timeouts AND combine drains.
        agg.poll_flush(agg.slot(slot),
                       wall_ns() + config.agg_queue_timeout_ns * 1000);
      } else if (action < 95) {
        agg.poll_flush(agg.slot(slot), wall_ns());
      } else {
        agg.flush_all(agg.slot(slot));
      }

      delivered.clear();
      for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
        AggBuffer* buffer = nullptr;
        while (agg.slot(s).channel().pop(&buffer)) {
          std::size_t pos = 0;
          const std::uint8_t* payload = nullptr;
          while (pos < buffer->data().size()) {
            const CmdHeader h = decode_cmd(
                buffer->data().data(), buffer->data().size(), &pos, &payload);
            if (h.op == Op::kAtomicAdd || h.op == Op::kPutValue) {
              const std::uint64_t cell = h.offset / 8;
              ASSERT_LT(cell, kCells);
              if (h.op == Op::kAtomicAdd)
                sum_delivered[buffer->dst][cell] += h.aux1;
              else
                last_put_delivered[buffer->dst][cell] = h.aux1;
              ++combined_delivered;
            } else {
              delivered.push_back(Decoded{h.aux1, h.aux2, buffer->dst});
            }
          }
          agg.release_buffer(buffer);
        }
      }
      for (const Decoded& d : delivered) {
        ASSERT_EQ(d.seq, arrived_raw[d.slot][d.dst])
            << "seed " << seed << " step " << step
            << ": raw FIFO broken for slot " << d.slot << " -> " << d.dst;
        ++arrived_raw[d.slot][d.dst];
        --raw_in_flight;
      }
      const std::uint64_t outstanding =
          raw_in_flight + (wire_expected - combined_delivered);
      ASSERT_EQ(agg.idle(), outstanding == 0)
          << "seed " << seed << " step " << step << ": idle()=" << agg.idle()
          << " with " << outstanding << " outstanding";
    }

    // Quiesce and check the semantic invariants end to end.
    for (std::uint32_t s = 0; s < kSlots; ++s) agg.flush_all(agg.slot(s));
    for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
      AggBuffer* buffer = nullptr;
      while (agg.slot(s).channel().pop(&buffer)) {
        std::size_t pos = 0;
        const std::uint8_t* payload = nullptr;
        while (pos < buffer->data().size()) {
          const CmdHeader h = decode_cmd(buffer->data().data(),
                                         buffer->data().size(), &pos,
                                         &payload);
          if (h.op == Op::kAtomicAdd) {
            sum_delivered[buffer->dst][h.offset / 8] += h.aux1;
            ++combined_delivered;
          } else if (h.op == Op::kPutValue) {
            last_put_delivered[buffer->dst][h.offset / 8] = h.aux1;
            ++combined_delivered;
          } else {
            ASSERT_EQ(h.aux2, arrived_raw[h.aux1][buffer->dst]);
            ++arrived_raw[h.aux1][buffer->dst];
            --raw_in_flight;
          }
        }
        agg.release_buffer(buffer);
      }
    }
    EXPECT_TRUE(agg.idle()) << "seed " << seed;
    EXPECT_EQ(raw_in_flight, 0u) << "seed " << seed;
    EXPECT_EQ(combined_delivered, wire_expected) << "seed " << seed;
    for (std::uint32_t s = 0; s < kSlots; ++s)
      for (std::uint32_t d = 0; d < kNodes; ++d)
        EXPECT_EQ(arrived_raw[s][d], issued_raw[s][d])
            << "seed " << seed << " slot " << s << " dst " << d;
    for (std::uint32_t d = 0; d < kNodes; ++d)
      for (std::uint32_t c = 0; c < kCells; ++c) {
        EXPECT_EQ(sum_delivered[d][c], sum_issued[d][c])
            << "seed " << seed << ": add sum not preserved for dst " << d
            << " cell " << c;
        if (put_issued[d][c])
          EXPECT_EQ(last_put_delivered[d][c], last_put_issued[d][c])
              << "seed " << seed << ": put dedup lost the last value for dst "
              << d << " cell " << c;
      }
    EXPECT_GT(merges, 0u) << "seed " << seed << ": table never merged";
    EXPECT_GT(agg.stats().combine_evictions.read(), 0u) << "seed " << seed;
    // Every hit is one elided wire command, and nothing else was elided.
    EXPECT_EQ(agg.stats().combine_hits.read(), merges) << "seed " << seed;
    std::uint64_t raw_total = 0;
    for (std::uint32_t s = 0; s < kSlots; ++s)
      for (std::uint32_t d = 0; d < kNodes; ++d) raw_total += issued_raw[s][d];
    EXPECT_EQ(agg.stats().commands.read(), raw_total + wire_expected)
        << "seed " << seed;
  }
}

// -------------------------------------------------- credit state machine --

TEST(AggInvariants, CreditsGateAggregationAndGrantsReopen) {
  Config config = small_config();
  config.reliable_transport = true;
  config.flow_credits = 2;
  obs::Registry registry("test");
  Aggregator agg(config, /*nodes=*/2, /*threads=*/1, &registry);
  AggregationSlot& slot = agg.slot(0);
  ASSERT_TRUE(agg.flow_enabled());
  ASSERT_EQ(agg.credits_available(1), 2);

  // Saturate destination 1 far past the credit window.
  const CmdHeader put = make_tagged(0, 0, 100);
  std::vector<std::uint8_t> payload(100, tag_byte(0, 0));
  const std::size_t per_cmd = cmd_wire_size(put);
  const std::size_t commands = 30 * (config.buffer_size / per_cmd);
  std::uint64_t appended = 0;
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < commands; ++i) {
    agg.append(slot, 1, put, payload.data());
    ++appended;
    AggBuffer* buffer = nullptr;  // play comm server: drain, but do NOT
    while (slot.channel().pop(&buffer)) {  // grant credits back yet
      ++sent;
      agg.release_buffer(buffer);
    }
  }
  agg.flush_all(slot);
  AggBuffer* buffer = nullptr;
  while (slot.channel().pop(&buffer)) {
    ++sent;
    agg.release_buffer(buffer);
  }
  // The window limits shipped buffers: 2 credits, plus at most one
  // overdraft per aggregation pass holding a popped block.
  EXPECT_GE(sent, 1u);
  EXPECT_LE(agg.stats().credits_consumed.read(), 3u);
  EXPECT_LE(agg.credits_available(1), 0);
  EXPECT_FALSE(agg.idle());  // the backlog is credit-gated, not lost

  // Stale/duplicate adverts must not mint credits.
  const std::int64_t before = agg.credits_available(1);
  agg.apply_credit_grant(1, 0);                    // duplicate of initial
  agg.apply_credit_grant(1, static_cast<std::uint16_t>(-5));  // stale wrap
  EXPECT_EQ(agg.credits_available(1), before);

  // Grants reopen the window; repeated grant/drain rounds deliver the
  // whole backlog with never more than the window in flight per round.
  std::uint16_t cumulative = 0;
  std::uint64_t delivered_cmds = 0;
  for (int round = 0; round < 10000 && !agg.idle(); ++round) {
    cumulative = static_cast<std::uint16_t>(cumulative + 2);
    agg.apply_credit_grant(1, cumulative);
    agg.poll_flush(slot, wall_ns() + config.agg_queue_timeout_ns * 1000);
    std::uint64_t sent_this_round = 0;
    while (slot.channel().pop(&buffer)) {
      // reliable_transport reserves a frame-header prefix in each buffer.
      std::size_t pos = net::kFrameHeaderSize;
      const std::uint8_t* p = nullptr;
      while (pos < buffer->data().size()) {
        decode_cmd(buffer->data().data(), buffer->data().size(), &pos, &p);
        ++delivered_cmds;
      }
      ++sent_this_round;
      agg.release_buffer(buffer);
    }
    EXPECT_LE(sent_this_round, 3u);  // window + overdraft
  }
  EXPECT_TRUE(agg.idle());
  // Commands shipped before the gate plus the granted rounds cover all.
  std::uint64_t total = delivered_cmds;
  EXPECT_LE(total, appended);
  // Everything eventually delivered: drain bookkeeping agrees.
  EXPECT_EQ(agg.stats().commands.read(), appended);
}

TEST(AggInvariants, DrainedCreditAccumulatesPerSource) {
  Config config = small_config();
  config.reliable_transport = true;
  config.flow_credits = 4;
  obs::Registry registry("test");
  Aggregator agg(config, /*nodes=*/3, /*threads=*/1, &registry);
  EXPECT_EQ(agg.drained_credit(1), 0u);
  for (int i = 0; i < 5; ++i) agg.note_buffer_drained(1);
  agg.note_buffer_drained(2);
  EXPECT_EQ(agg.drained_credit(1), 5u);
  EXPECT_EQ(agg.drained_credit(2), 1u);
  EXPECT_EQ(agg.stats().credits_granted.read(), 6u);
}

}  // namespace
}  // namespace gmt::rt
