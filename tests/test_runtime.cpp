// End-to-end tests of the GMT runtime: the public API exercised on
// in-process multi-node clusters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

#include "gmt/global_array.hpp"
#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

Config test_config() { return Config::testing(); }

// ---- parameterised put/get round trips ----
// Tuple: (nodes, policy, transfer size, offset)

using RoundTripParam = std::tuple<std::uint32_t, Alloc, std::uint64_t,
                                  std::uint64_t>;

class PutGetRoundTrip : public ::testing::TestWithParam<RoundTripParam> {};

TEST_P(PutGetRoundTrip, DataSurvives) {
  const auto [nodes, policy, size, offset] = GetParam();
  rt::Cluster cluster(nodes, test_config());
  test::run_task(cluster, [&, policy = policy, size = size,
                           offset = offset] {
    const gmt_handle h = gmt_new(offset + size + 64, policy);
    std::vector<std::uint8_t> out(size), in(size);
    for (std::uint64_t i = 0; i < size; ++i)
      out[i] = static_cast<std::uint8_t>(i * 31 + 7);
    gmt_put(h, offset, out.data(), size);
    gmt_get(h, offset, in.data(), size);
    EXPECT_EQ(in, out);
    gmt_free(h);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PutGetRoundTrip,
    ::testing::Combine(
        ::testing::Values<std::uint32_t>(1, 2, 3),
        ::testing::Values(Alloc::kPartition, Alloc::kLocal, Alloc::kRemote),
        ::testing::Values<std::uint64_t>(1, 8, 100, 4096, 40000),
        ::testing::Values<std::uint64_t>(0, 13)));

// ---- basic lifecycle ----

TEST(Runtime, AllocZeroInitialised) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(1024, Alloc::kPartition);
    std::vector<std::uint8_t> data(1024, 0xff);
    gmt_get(h, 0, data.data(), 1024);
    for (std::uint8_t b : data) ASSERT_EQ(b, 0);
    gmt_free(h);
  });
}

TEST(Runtime, ManyAllocations) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    std::vector<gmt_handle> handles;
    for (int i = 0; i < 32; ++i)
      handles.push_back(gmt_new(256 + i * 8, Alloc::kPartition));
    // All distinct and independently writable.
    for (std::size_t i = 0; i < handles.size(); ++i)
      gmt_put_value(handles[i], 0, i + 1, 8);
    for (std::size_t i = 0; i < handles.size(); ++i) {
      std::uint64_t v = 0;
      gmt_get(handles[i], 0, &v, 8);
      EXPECT_EQ(v, i + 1);
    }
    for (const gmt_handle h : handles) gmt_free(h);
  });
}

TEST(Runtime, NodeIdentity) {
  rt::Cluster cluster(3, test_config());
  test::run_task(cluster, [] {
    EXPECT_EQ(gmt_num_nodes(), 3u);
    EXPECT_EQ(gmt_node_id(), 0u);  // root runs on node 0
  });
}

TEST(Runtime, RunTwiceOnSameCluster) {
  rt::Cluster cluster(2, test_config());
  int runs = 0;
  test::run_task(cluster, [&] { ++runs; });
  test::run_task(cluster, [&] { ++runs; });
  EXPECT_EQ(runs, 2);
}

// ---- put_value widths ----

TEST(Runtime, PutValueWidths) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(64, Alloc::kPartition);
    gmt_put_value(h, 0, 0x1122334455667788ULL, 8);
    gmt_put_value(h, 16, 0xaabbccdd, 4);
    gmt_put_value(h, 24, 0xeeff, 2);
    gmt_put_value(h, 32, 0x42, 1);
    std::uint64_t v8 = 0;
    std::uint32_t v4 = 0;
    std::uint16_t v2 = 0;
    std::uint8_t v1 = 0;
    gmt_get(h, 0, &v8, 8);
    gmt_get(h, 16, &v4, 4);
    gmt_get(h, 24, &v2, 2);
    gmt_get(h, 32, &v1, 1);
    EXPECT_EQ(v8, 0x1122334455667788ULL);
    EXPECT_EQ(v4, 0xaabbccddu);
    EXPECT_EQ(v2, 0xeeff);
    EXPECT_EQ(v1, 0x42);
    gmt_free(h);
  });
}

TEST(Runtime, PutValueAcrossPartitionBoundary) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    // 16-byte array over 2 nodes -> 8-byte blocks; a 4-byte value at
    // offset 6 straddles the boundary.
    const gmt_handle h = gmt_new(16, Alloc::kPartition);
    gmt_put_value(h, 6, 0xdeadbeef, 4);
    std::uint32_t v = 0;
    gmt_get(h, 6, &v, 4);
    EXPECT_EQ(v, 0xdeadbeefu);
    gmt_free(h);
  });
}

// ---- non-blocking operations ----

TEST(Runtime, NonBlockingPutsCompleteAtWait) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 256, Alloc::kPartition);
    for (std::uint64_t i = 0; i < 256; ++i)
      gmt_put_value_nb(h, i * 8, i ^ 0x5a5a, 8);
    gmt_wait_commands();
    for (std::uint64_t i = 0; i < 256; ++i) {
      std::uint64_t v = 0;
      gmt_get(h, i * 8, &v, 8);
      ASSERT_EQ(v, i ^ 0x5a5a);
    }
    gmt_free(h);
  });
}

TEST(Runtime, NonBlockingGets) {
  rt::Cluster cluster(3, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 64, Alloc::kPartition);
    for (std::uint64_t i = 0; i < 64; ++i)
      gmt_put_value_nb(h, i * 8, i * 3, 8);
    gmt_wait_commands();
    std::uint64_t results[64] = {};
    for (std::uint64_t i = 0; i < 64; ++i)
      gmt_get_nb(h, i * 8, &results[i], 8);
    gmt_wait_commands();
    for (std::uint64_t i = 0; i < 64; ++i) ASSERT_EQ(results[i], i * 3);
    gmt_free(h);
  });
}

// ---- atomics ----

TEST(Runtime, AtomicAddReturnsOld) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(16, Alloc::kPartition);
    EXPECT_EQ(gmt_atomic_add(h, 0, 5, 8), 0u);
    EXPECT_EQ(gmt_atomic_add(h, 0, 3, 8), 5u);
    EXPECT_EQ(gmt_atomic_add(h, 8, 1, 8), 0u);  // second node's partition
    std::uint64_t v = 0;
    gmt_get(h, 0, &v, 8);
    EXPECT_EQ(v, 8u);
    gmt_free(h);
  });
}

TEST(Runtime, AtomicCasSemantics) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(16, Alloc::kPartition);
    EXPECT_EQ(gmt_atomic_cas(h, 8, 0, 100, 8), 0u);    // success
    EXPECT_EQ(gmt_atomic_cas(h, 8, 0, 200, 8), 100u);  // failure, old value
    std::uint64_t v = 0;
    gmt_get(h, 8, &v, 8);
    EXPECT_EQ(v, 100u);
    gmt_free(h);
  });
}

TEST(Runtime, Atomic32Bit) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(16, Alloc::kPartition);
    EXPECT_EQ(gmt_atomic_add(h, 12, 7, 4), 0u);
    EXPECT_EQ(gmt_atomic_cas(h, 12, 7, 9, 4), 7u);
    std::uint32_t v = 0;
    gmt_get(h, 12, &v, 4);
    EXPECT_EQ(v, 9u);
    gmt_free(h);
  });
}

// Concurrent atomic adds linearise: the final sum is exact.
TEST(Runtime, ConcurrentAtomicAddSum) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle counter = gmt_new(8, Alloc::kPartition);
    constexpr std::uint64_t kTasks = 200;
    constexpr std::uint64_t kAddsPerTask = 10;
    test::parfor_lambda(kTasks, 4, [&](std::uint64_t) {
      for (std::uint64_t i = 0; i < kAddsPerTask; ++i)
        gmt_atomic_add(counter, 0, 1, 8);
    });
    std::uint64_t total = 0;
    gmt_get(counter, 0, &total, 8);
    EXPECT_EQ(total, kTasks * kAddsPerTask);
    gmt_free(counter);
  });
}

// Concurrent CAS claims: every slot is won exactly once.
TEST(Runtime, ConcurrentCasClaims) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle slots = gmt_new(8 * 16, Alloc::kPartition);
    const gmt_handle wins = gmt_new(8, Alloc::kPartition);
    // 128 tasks race to claim 16 slots; 16 total wins expected.
    test::parfor_lambda(128, 2, [&](std::uint64_t i) {
      const std::uint64_t slot = i % 16;
      if (gmt_atomic_cas(slots, slot * 8, 0, i + 1, 8) == 0)
        gmt_atomic_add(wins, 0, 1, 8);
    });
    std::uint64_t total = 0;
    gmt_get(wins, 0, &total, 8);
    EXPECT_EQ(total, 16u);
    gmt_free(slots);
    gmt_free(wins);
  });
}

// ---- parfor ----

using ParforParam = std::tuple<std::uint32_t, std::uint64_t, std::uint64_t,
                               Spawn>;

class Parfor : public ::testing::TestWithParam<ParforParam> {};

TEST_P(Parfor, ExecutesEveryIterationOnce) {
  const auto [nodes, iterations, chunk, policy] = GetParam();
  rt::Cluster cluster(nodes, test_config());
  test::run_task(cluster, [&, iterations = iterations, chunk = chunk,
                           policy = policy] {
    const gmt_handle marks = gmt_new(iterations * 8, Alloc::kPartition);
    test::parfor_lambda(
        iterations, chunk,
        [&](std::uint64_t i) { gmt_atomic_add(marks, i * 8, 1, 8); },
        policy);
    // Every iteration ran exactly once.
    std::vector<std::uint64_t> counts(iterations);
    gmt_get(marks, 0, counts.data(), iterations * 8);
    for (std::uint64_t i = 0; i < iterations; ++i)
      ASSERT_EQ(counts[i], 1u) << "iteration " << i;
    gmt_free(marks);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Parfor,
    ::testing::Combine(::testing::Values<std::uint32_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 7, 64, 500),
                       ::testing::Values<std::uint64_t>(0, 1, 13),
                       ::testing::Values(Spawn::kPartition, Spawn::kLocal,
                                         Spawn::kRemote)));

TEST(ParforMore, IterationIndicesCoverRange) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(100, 0,
                        [&](std::uint64_t i) { gmt_atomic_add(sum, 0, i, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 99u * 100 / 2);
    gmt_free(sum);
  });
}

TEST(ParforMore, TasksRunOnAllNodes) {
  rt::Cluster cluster(3, test_config());
  test::run_task(cluster, [] {
    const gmt_handle per_node = gmt_new(8 * 3, Alloc::kPartition);
    test::parfor_lambda(300, 1, [&](std::uint64_t) {
      gmt_atomic_add(per_node, gmt_node_id() * 8, 1, 8);
    });
    std::uint64_t counts[3];
    gmt_get(per_node, 0, counts, 24);
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 300u);
    for (int n = 0; n < 3; ++n)
      EXPECT_GT(counts[n], 0u) << "node " << n << " ran nothing";
    gmt_free(per_node);
  });
}

TEST(ParforMore, RemotePolicySkipsCaller) {
  rt::Cluster cluster(3, test_config());
  test::run_task(cluster, [] {
    const gmt_handle per_node = gmt_new(8 * 3, Alloc::kPartition);
    test::parfor_lambda(
        60, 1,
        [&](std::uint64_t) { gmt_atomic_add(per_node, gmt_node_id() * 8, 1, 8); },
        Spawn::kRemote);
    std::uint64_t counts[3];
    gmt_get(per_node, 0, counts, 24);
    EXPECT_EQ(counts[0], 0u);  // caller node excluded
    EXPECT_EQ(counts[1] + counts[2], 60u);
    gmt_free(per_node);
  });
}

TEST(ParforMore, LocalPolicyStaysOnCaller) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle per_node = gmt_new(8 * 2, Alloc::kPartition);
    test::parfor_lambda(
        40, 1,
        [&](std::uint64_t) { gmt_atomic_add(per_node, gmt_node_id() * 8, 1, 8); },
        Spawn::kLocal);
    std::uint64_t counts[2];
    gmt_get(per_node, 0, counts, 16);
    EXPECT_EQ(counts[0], 40u);
    EXPECT_EQ(counts[1], 0u);
    gmt_free(per_node);
  });
}

TEST(ParforMore, NestedParfor) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(4, 1, [&](std::uint64_t) {
      test::parfor_lambda(8, 1, [&](std::uint64_t) {
        gmt_atomic_add(sum, 0, 1, 8);
      });
    });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 32u);
    gmt_free(sum);
  });
}

TEST(ParforMore, ArgumentsCopiedToTasks) {
  rt::Cluster cluster(2, test_config());
  struct Args {
    gmt_handle sum;
    std::uint64_t magic;
  };
  test::run_task(cluster, [] {
    Args args{gmt_new(8, Alloc::kPartition), 0x12345678};
    gmt_parfor(
        10, 1,
        [](std::uint64_t, const void* raw) {
          Args a;
          std::memcpy(&a, raw, sizeof(a));
          gmt_atomic_add(a.sum, 0, a.magic, 8);
        },
        &args, sizeof(args), Spawn::kPartition);
    std::uint64_t total = 0;
    gmt_get(args.sum, 0, &total, 8);
    EXPECT_EQ(total, 10u * 0x12345678);
    gmt_free(args.sum);
  });
}

TEST(ParforMore, ZeroIterationsIsNoop) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    test::parfor_lambda(0, 1, [&](std::uint64_t) { ADD_FAILURE(); });
  });
}

TEST(ParforMore, ManyTasksBeyondWorkerLimit) {
  // More tasks than max_tasks_per_worker x workers forces itb recycling.
  Config config = test_config();
  config.max_tasks_per_worker = 8;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(2000, 1,
                        [&](std::uint64_t) { gmt_atomic_add(sum, 0, 1, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 2000u);
    gmt_free(sum);
  });
}

// ---- typed wrapper ----

TEST(GlobalArrayWrapper, TypedAccess) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    auto array = GlobalArray<std::uint64_t>::allocate(128);
    EXPECT_EQ(array.size(), 128u);
    array.put(3, 777);
    EXPECT_EQ(array.get(3), 777u);
    EXPECT_EQ(array.atomic_add(3, 1), 777u);
    EXPECT_EQ(array.atomic_cas(3, 778, 1000), 778u);
    EXPECT_EQ(array.get(3), 1000u);

    std::uint64_t block[4] = {1, 2, 3, 4};
    array.put_range(10, block, 4);
    std::uint64_t readback[4] = {};
    array.get_range(10, readback, 4);
    EXPECT_EQ(std::memcmp(block, readback, sizeof(block)), 0);
    array.free();
  });
}

// ---- configuration variants ----

TEST(RuntimeConfig, WithoutLocalFastPath) {
  Config config = test_config();
  config.local_fast_path = false;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(1024, Alloc::kPartition);
    std::uint64_t v = 0;
    gmt_put_value(h, 0, 42, 8);  // offset 0 is node-local; goes via helpers
    gmt_get(h, 0, &v, 8);
    EXPECT_EQ(v, 42u);
    EXPECT_EQ(gmt_atomic_add(h, 0, 1, 8), 42u);
    gmt_free(h);
  });
}

TEST(RuntimeConfig, MultipleWorkersAndHelpers) {
  Config config = test_config();
  config.num_workers = 2;
  config.num_helpers = 2;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(400, 4,
                        [&](std::uint64_t) { gmt_atomic_add(sum, 0, 1, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 400u);
    gmt_free(sum);
  });
}

TEST(RuntimeConfig, SingleNodeCluster) {
  rt::Cluster cluster(1, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(256, Alloc::kPartition);
    gmt_put_value(h, 8, 5, 8);
    EXPECT_EQ(gmt_atomic_add(h, 8, 2, 8), 5u);
    const gmt_handle sum = gmt_new(8, Alloc::kLocal);
    test::parfor_lambda(50, 0,
                        [&](std::uint64_t) { gmt_atomic_add(sum, 0, 1, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 50u);
    gmt_free(h);
    gmt_free(sum);
  });
}

// ---- cross-task visibility ----

TEST(Runtime, BlockingPutVisibleToOtherTasks) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 64, Alloc::kPartition);
    // Phase 1 writes, parfor barrier, phase 2 reads.
    test::parfor_lambda(64, 1, [&](std::uint64_t i) {
      gmt_put_value(h, i * 8, i + 1000, 8);
    });
    test::parfor_lambda(64, 1, [&](std::uint64_t i) {
      std::uint64_t v = 0;
      gmt_get(h, i * 8, &v, 8);
      EXPECT_EQ(v, i + 1000);
    });
    gmt_free(h);
  });
}

TEST(Runtime, YieldKeepsTaskRunnable) {
  rt::Cluster cluster(1, test_config());
  test::run_task(cluster, [] {
    int progress = 0;
    for (int i = 0; i < 10; ++i) {
      gmt_yield();
      ++progress;
    }
    EXPECT_EQ(progress, 10);
  });
}

// ---- quiescence invariants after shutdown ----

TEST(Runtime, StatsAccumulate) {
  rt::Cluster cluster(2, test_config());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(1 << 14, Alloc::kPartition);
    test::parfor_lambda(100, 2, [&](std::uint64_t i) {
      gmt_put_value(h, (i % 2048) * 8, i, 8);
    });
    gmt_free(h);
  });
  std::uint64_t iterations = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    iterations += cluster.node(n).stats().iterations_executed.read();
  // 100 body iterations + 1 root + upload helpers etc.
  EXPECT_GE(iterations, 101u);
  EXPECT_GT(cluster.total_network_messages(), 0u);
}

}  // namespace
}  // namespace gmt
