// Tests for user-level threading: the custom context switch, fibers,
// stacks, and parity with the libc ucontext path.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "uthread/context.hpp"
#include "uthread/fiber.hpp"
#include "uthread/stack.hpp"
#include "uthread/ucontext_switch.hpp"

namespace gmt {
namespace {

TEST(Stack, AllocatesUsableMemory) {
  Stack stack(32 * 1024);
  ASSERT_NE(stack.base(), nullptr);
  EXPECT_GE(stack.size(), 32u * 1024);
  // Touch the whole usable range; the guard page is below it.
  auto* bytes = static_cast<char*>(stack.base());
  for (std::size_t i = 0; i < stack.size(); i += 4096) bytes[i] = 1;
  bytes[stack.size() - 1] = 1;
}

TEST(Stack, MoveTransfersOwnership) {
  Stack a(16 * 1024);
  void* base = a.base();
  Stack b(std::move(a));
  EXPECT_EQ(b.base(), base);
  EXPECT_EQ(a.base(), nullptr);
  a = std::move(b);
  EXPECT_EQ(a.base(), base);
}

TEST(StackPool, RecyclesStacks) {
  StackPool pool(16 * 1024, 2);
  EXPECT_EQ(pool.pooled(), 2u);
  Stack s1 = pool.acquire();
  Stack s2 = pool.acquire();
  EXPECT_EQ(pool.pooled(), 0u);
  Stack s3 = pool.acquire();  // grows on demand
  ASSERT_NE(s3.base(), nullptr);
  void* recycled = s1.base();
  pool.release(std::move(s1));
  Stack s4 = pool.acquire();
  EXPECT_EQ(s4.base(), recycled);  // LIFO reuse
  pool.release(std::move(s2));
  pool.release(std::move(s3));
  pool.release(std::move(s4));
  EXPECT_EQ(pool.pooled(), 3u);
}

TEST(Fiber, RunsToCompletion) {
  StackPool pool(32 * 1024, 1);
  int value = 0;
  Fiber fiber(pool.acquire(), [&](Fiber&) { value = 42; });
  EXPECT_FALSE(fiber.resume());
  EXPECT_TRUE(fiber.finished());
  EXPECT_EQ(value, 42);
}

TEST(Fiber, YieldAlternatesControl) {
  StackPool pool(32 * 1024, 1);
  std::vector<int> trace;
  Fiber fiber(pool.acquire(), [&](Fiber& self) {
    trace.push_back(1);
    self.yield();
    trace.push_back(3);
    self.yield();
    trace.push_back(5);
  });
  EXPECT_TRUE(fiber.resume());
  trace.push_back(2);
  EXPECT_TRUE(fiber.resume());
  trace.push_back(4);
  EXPECT_FALSE(fiber.resume());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kFibers = 64;
  constexpr int kYields = 10;
  StackPool pool(32 * 1024, kFibers);
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> counts(kFibers, 0);
  for (int f = 0; f < kFibers; ++f) {
    fibers.push_back(std::make_unique<Fiber>(
        pool.acquire(), [&counts, f](Fiber& self) {
          for (int i = 0; i < kYields; ++i) {
            ++counts[f];
            self.yield();
          }
        }));
  }
  // Round-robin scheduling.
  bool any = true;
  while (any) {
    any = false;
    for (auto& fiber : fibers)
      if (!fiber->finished() && fiber->resume()) any = true;
  }
  for (int f = 0; f < kFibers; ++f) EXPECT_EQ(counts[f], kYields);
}

TEST(Fiber, LocalStateSurvivesSwitches) {
  StackPool pool(64 * 1024, 1);
  long result = 0;
  Fiber fiber(pool.acquire(), [&](Fiber& self) {
    // Stack-resident state across many switches.
    long values[64];
    std::iota(values, values + 64, 1);
    for (int round = 0; round < 16; ++round) self.yield();
    result = std::accumulate(values, values + 64, 0L);
  });
  while (fiber.resume()) {
  }
  EXPECT_EQ(result, 64L * 65 / 2);
}

TEST(Fiber, DeepCallChainOnOwnStack) {
  StackPool pool(256 * 1024, 1);
  // Recursion that would need ~100KB of stack.
  struct Recur {
    static long run(int depth, Fiber& self) {
      volatile char pad[1024] = {};
      (void)pad;
      if (depth == 0) {
        self.yield();
        return 0;
      }
      return 1 + Recur::run(depth - 1, self);
    }
  };
  long depth_reached = -1;
  Fiber fiber(pool.acquire(),
              [&](Fiber& self) { depth_reached = Recur::run(90, self); });
  while (fiber.resume()) {
  }
  EXPECT_EQ(depth_reached, 90);
}

TEST(Fiber, StackReclaimedAfterFinish) {
  StackPool pool(32 * 1024, 1);
  Fiber fiber(pool.acquire(), [](Fiber&) {});
  while (fiber.resume()) {
  }
  pool.release(std::move(fiber).take_stack());
  EXPECT_EQ(pool.pooled(), 1u);
}

// Raw context API: the synthetic first frame must be ABI-correct (this is
// where a broken trampoline alignment crashes on the first movaps).
namespace rawctx {
Context g_main;
Context g_task;
int g_stage = 0;

void entry(void* arg) {
  EXPECT_EQ(*static_cast<int*>(arg), 1234);
  g_stage = 1;
  // Use SSE to catch stack misalignment.
  volatile double d = 3.14159;
  d = d * d;
  switch_context(&g_task, g_main);
  g_stage = 2;
  switch_context(&g_task, g_main);
  ADD_FAILURE() << "resumed finished context";
}
}  // namespace rawctx

TEST(Context, RawMakeAndSwitch) {
  Stack stack(32 * 1024);
  int arg = 1234;
  rawctx::g_stage = 0;
  rawctx::g_task = make_context(stack.base(), stack.size(), &rawctx::entry,
                                &arg);
  switch_context(&rawctx::g_main, rawctx::g_task);
  EXPECT_EQ(rawctx::g_stage, 1);
  switch_context(&rawctx::g_main, rawctx::g_task);
  EXPECT_EQ(rawctx::g_stage, 2);
}

// ucontext comparator must provide the same semantics (used by the
// ablation bench that reproduces the paper's §IV-D claim).
namespace uctx {
UContext g_main;
UContext g_task;
int g_counter = 0;

void entry(void* arg) {
  EXPECT_EQ(arg, &g_counter);
  for (int i = 0; i < 3; ++i) {
    ++g_counter;
    switch_ucontext(&g_task, &g_main);
  }
}
}  // namespace uctx

TEST(UContext, ParityWithCustomSwitch) {
  Stack stack(64 * 1024);
  uctx::g_counter = 0;
  make_ucontext(&uctx::g_task, stack.base(), stack.size(), &uctx::entry,
                &uctx::g_counter, &uctx::g_main);
  for (int i = 1; i <= 3; ++i) {
    switch_ucontext(&uctx::g_main, &uctx::g_task);
    EXPECT_EQ(uctx::g_counter, i);
  }
}

}  // namespace
}  // namespace gmt
