// Tests for the runtime statistics reporting.
#include <gtest/gtest.h>

#include <cmath>

#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"
#include "runtime/stats_report.hpp"
#include "test_util.hpp"

namespace gmt::rt {
namespace {

TEST(StatsReport, CountersReflectWork) {
  Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 256, Alloc::kPartition);
    test::parfor_lambda(256, 4, [&](std::uint64_t i) {
      gmt_put_value(h, i * 8, i, 8);
    });
    gmt_free(h);
  });
  const ClusterStatsSummary summary = summarize_stats(cluster);
  EXPECT_GE(summary.iterations_executed, 257u);  // 256 body + root
  EXPECT_GT(summary.tasks_executed, 0u);
  EXPECT_GT(summary.ctx_switches, 0u);
  EXPECT_GT(summary.remote_commands, 0u);
  EXPECT_GT(summary.network_messages, 0u);
  // Every remote command was executed somewhere.
  EXPECT_GE(summary.commands_executed, summary.remote_commands);
}

TEST(StatsReport, AggregationCoalesces) {
  Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 2048, Alloc::kRemote);
    // A burst of fine-grained remote puts from many tasks: far more
    // commands than network messages.
    test::parfor_lambda(
        512, 8, [&](std::uint64_t i) { gmt_put_value(h, (i % 2048) * 8, i, 8); },
        Spawn::kLocal);
    gmt_free(h);
  });
  const ClusterStatsSummary summary = summarize_stats(cluster);
  EXPECT_GT(summary.commands_per_message(), 2.0);
}

TEST(StatsReport, FormatIsComplete) {
  Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(1024, Alloc::kPartition);
    gmt_put_value(h, 512, 1, 8);
    gmt_free(h);
  });
  const std::string report = format_stats_report(cluster);
  EXPECT_NE(report.find("node"), std::string::npos);
  EXPECT_NE(report.find("network:"), std::string::npos);
  EXPECT_NE(report.find("commands/message"), std::string::npos);
  // One row per node plus header and summary.
  EXPECT_GE(std::count(report.begin(), report.end(), '\n'), 4);
}

TEST(StatsReport, LocalFastPathShowsInCounters) {
  Cluster cluster(1, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(1024, Alloc::kLocal);
    for (int i = 0; i < 50; ++i) gmt_put_value(h, 8 * (i % 100), i, 8);
    gmt_free(h);
  });
  const ClusterStatsSummary summary = summarize_stats(cluster);
  EXPECT_GE(summary.local_ops, 50u);
}

// ---- per-message helper math edge cases ----

TEST(StatsReport, RatiosAreNaNWithoutMessages) {
  // A zero-message summary has no per-message averages; 0 would read as
  // "aggregation did nothing", which is a different claim entirely.
  ClusterStatsSummary summary;
  EXPECT_TRUE(std::isnan(summary.commands_per_message()));
  EXPECT_TRUE(std::isnan(summary.bytes_per_message()));
  EXPECT_EQ(summary.mean_ack_latency_us(), 0.0);

  summary.network_messages = 4;
  summary.remote_commands = 10;
  summary.network_bytes = 1024;
  EXPECT_DOUBLE_EQ(summary.commands_per_message(), 2.5);
  EXPECT_DOUBLE_EQ(summary.bytes_per_message(), 256.0);

  summary.acked_frames = 2;
  summary.ack_latency_ns = 4'000'000;
  EXPECT_DOUBLE_EQ(summary.mean_ack_latency_us(), 2000.0);
}

TEST(StatsReport, LocalOnlyRunOmitsRatioRow) {
  // A single-node run never touches the network: the summary must report
  // NaN ratios and the formatted report must drop the commands/message row
  // instead of printing 0.
  Cluster cluster(1, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(1024, Alloc::kLocal);
    for (int i = 0; i < 20; ++i) gmt_put_value(h, 8 * i, i, 8);
    gmt_free(h);
  });
  const ClusterStatsSummary summary = summarize_stats(cluster);
  EXPECT_EQ(summary.network_messages, 0u);
  EXPECT_TRUE(std::isnan(summary.commands_per_message()));
  EXPECT_TRUE(std::isnan(summary.bytes_per_message()));

  const std::string report = format_stats_report(cluster);
  EXPECT_EQ(report.find("commands/message"), std::string::npos);
  EXPECT_NE(report.find("no remote traffic"), std::string::npos);
}

}  // namespace
}  // namespace gmt::rt
