// Stress and failure-injection tests for the threaded runtime: resource
// exhaustion pressure, deep nesting, tiny buffers, quiescence invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

TEST(RuntimeStress, TinyBuffersForceConstantFlushing) {
  // Aggregation buffers barely larger than one command: every command
  // ships nearly alone; correctness must be unaffected.
  Config config = Config::testing();
  config.buffer_size = 512;
  config.cmd_block_entries = 2;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 512, Alloc::kPartition);
    test::parfor_lambda(512, 8, [&](std::uint64_t i) {
      gmt_put_value(h, i * 8, i + 7, 8);
    });
    std::vector<std::uint64_t> data(512);
    gmt_get(h, 0, data.data(), 512 * 8);
    for (std::uint64_t i = 0; i < 512; ++i) ASSERT_EQ(data[i], i + 7);
    gmt_free(h);
  });
}

TEST(RuntimeStress, ScarceCommandBlocks) {
  // A command-block pool at the enforced minimum: recycling pressure on
  // every append.
  Config config = Config::testing();
  // Validation minimum; the aggregator's internal floor then provides just
  // one open block per thread per destination plus minimal slack.
  config.cmd_block_pool_size = config.num_workers + config.num_helpers;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(300, 4,
                        [&](std::uint64_t) { gmt_atomic_add(sum, 0, 1, 8); });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 300u);
    gmt_free(sum);
  });
}

TEST(RuntimeStress, DeepNestedParfor) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    // Three levels of nesting: 3 x 3 x 3 = 27 leaf increments.
    test::parfor_lambda(3, 1, [&](std::uint64_t) {
      test::parfor_lambda(3, 1, [&](std::uint64_t) {
        test::parfor_lambda(3, 1, [&](std::uint64_t) {
          gmt_atomic_add(sum, 0, 1, 8);
        });
      });
    });
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 27u);
    gmt_free(sum);
  });
}

TEST(RuntimeStress, SingleWorkerSurvivesBlockingStorm) {
  // One worker, one helper, many tasks that all block: pure
  // latency-tolerance scheduling.
  Config config = Config::testing();
  config.num_workers = 1;
  config.num_helpers = 1;
  config.max_tasks_per_worker = 8;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(8 * 64, Alloc::kPartition);
    test::parfor_lambda(64, 1, [&](std::uint64_t i) {
      for (int repeat = 0; repeat < 4; ++repeat) {
        gmt_put_value(h, i * 8, i * 10 + repeat, 8);
        std::uint64_t v = 0;
        gmt_get(h, i * 8, &v, 8);
        ASSERT_EQ(v, i * 10 + repeat);
      }
    });
    gmt_free(h);
  });
}

TEST(RuntimeStress, ManySmallParforsBackToBack) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    for (int round = 0; round < 40; ++round) {
      test::parfor_lambda(10, 1,
                          [&](std::uint64_t) { gmt_atomic_add(sum, 0, 1, 8); });
    }
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, 400u);
    gmt_free(sum);
  });
}

TEST(RuntimeStress, LargeParforArguments) {
  // Argument buffers near the command payload ceiling are copied to every
  // node intact.
  rt::Cluster cluster(3, Config::testing());
  test::run_task(cluster, [] {
    struct BigArgs {
      gmt_handle sum;
      std::uint8_t blob[2000];
    };
    static BigArgs args;  // static: too big for a task stack
    args.sum = gmt_new(8, Alloc::kPartition);
    for (int i = 0; i < 2000; ++i)
      args.blob[i] = static_cast<std::uint8_t>(i * 13);
    gmt_parfor(
        12, 1,
        [](std::uint64_t, const void* raw) {
          const BigArgs* a = static_cast<const BigArgs*>(raw);
          std::uint64_t checksum = 0;
          for (int i = 0; i < 2000; ++i) checksum += a->blob[i];
          std::uint64_t expected = 0;
          for (int i = 0; i < 2000; ++i)
            expected += static_cast<std::uint8_t>(i * 13);
          if (checksum == expected) gmt_atomic_add(a->sum, 0, 1, 8);
        },
        &args, sizeof(args), Spawn::kPartition);
    std::uint64_t total = 0;
    gmt_get(args.sum, 0, &total, 8);
    EXPECT_EQ(total, 12u);
    gmt_free(args.sum);
  });
}

TEST(RuntimeStress, InterleavedAllocFreeChurn) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    for (int round = 0; round < 25; ++round) {
      const gmt_handle a = gmt_new(1024, Alloc::kPartition);
      const gmt_handle b = gmt_new(64, Alloc::kLocal);
      gmt_put_value(a, 512, round, 8);
      gmt_put_value(b, 0, round * 2, 8);
      std::uint64_t va = 0, vb = 0;
      gmt_get(a, 512, &va, 8);
      gmt_get(b, 0, &vb, 8);
      ASSERT_EQ(va, static_cast<std::uint64_t>(round));
      ASSERT_EQ(vb, static_cast<std::uint64_t>(round * 2));
      gmt_free(b);
      gmt_free(a);
    }
  });
}

TEST(RuntimeStress, TransfersSpanningAllPartitions) {
  // One transfer touching every node's partition in a single call.
  rt::Cluster cluster(3, Config::testing());
  test::run_task(cluster, [] {
    constexpr std::uint64_t kBytes = 30000;  // 10000 per node
    const gmt_handle h = gmt_new(kBytes, Alloc::kPartition);
    std::vector<std::uint8_t> out(kBytes);
    for (std::uint64_t i = 0; i < kBytes; ++i)
      out[i] = static_cast<std::uint8_t>(i ^ (i >> 8));
    gmt_put(h, 0, out.data(), kBytes);
    std::vector<std::uint8_t> in(kBytes);
    gmt_get(h, 0, in.data(), kBytes);
    EXPECT_EQ(in, out);
    gmt_free(h);
  });
}

TEST(RuntimeStress, PoolPopulationsRestoredAtQuiescence) {
  // After a busy run and shutdown, the aggregator must be idle (all
  // command blocks and buffers returned) on every node.
  auto cluster = std::make_unique<rt::Cluster>(2, Config::testing());
  test::run_task(*cluster, [] {
    const gmt_handle h = gmt_new(8 * 1024, Alloc::kPartition);
    test::parfor_lambda(1024, 16, [&](std::uint64_t i) {
      gmt_put_value_nb(h, i * 8, i, 8);
    });
    gmt_free(h);
  });
  for (std::uint32_t n = 0; n < cluster->num_nodes(); ++n)
    EXPECT_TRUE(cluster->node(n).aggregator().idle()) << "node " << n;
}

TEST(RuntimeStressDeathTest, OversizedParforArgsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  rt::Cluster cluster(2, Config::testing());
  EXPECT_DEATH(
      test::run_task(cluster,
                     [] {
                       std::vector<std::uint8_t> huge(1 << 20);
                       gmt_parfor(
                           4, 1, [](std::uint64_t, const void*) {},
                           huge.data(), huge.size(), Spawn::kPartition);
                     }),
      "args too large");
}

TEST(RuntimeStressDeathTest, MisalignedAtomicRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  rt::Cluster cluster(2, Config::testing());
  EXPECT_DEATH(test::run_task(cluster,
                              [] {
                                const gmt_handle h =
                                    gmt_new(64, Alloc::kPartition);
                                gmt_atomic_add(h, 3, 1, 8);
                              }),
               "misaligned");
}

}  // namespace
}  // namespace gmt
