// Task-lifecycle recycling: pooled TCBs, token generations, pooled
// iteration blocks, and the O(1) parked/wake scheduler under spawn storms.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"
#include "runtime/task.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

// A delayed completion whose token was minted against a previous TCB
// incarnation must be dropped by the generation check, not decrement (or
// wake) whatever task owns the recycled TCB now.
TEST(TaskRecycling, StaleTokenCannotResumeRecycledTask) {
  rt::Task task;
  task.pending_ops.store(2, std::memory_order_relaxed);
  const std::uint64_t token = rt::task_token(&task);

  rt::complete_one(token);
  EXPECT_EQ(task.pending_ops.load(), 1u);

  // Recycle: release_task bumps the generation; tokens minted before are
  // now stale.
  task.generation.fetch_add(1, std::memory_order_release);
  rt::complete_one(token);
  EXPECT_EQ(task.pending_ops.load(), 1u) << "stale completion applied";

  // A token minted against the current incarnation still lands.
  rt::complete_one(rt::task_token(&task));
  EXPECT_EQ(task.pending_ops.load(), 0u);
}

TEST(TaskRecycling, TokenRoundTripsPointerAndGeneration) {
  rt::Task task;
  task.generation.store(0x1234, std::memory_order_relaxed);
  const std::uint64_t token = rt::task_token(&task);
  EXPECT_EQ(rt::task_from_token(token), &task);
  EXPECT_EQ(rt::token_generation(token), 0x1234);
}

// The wake handshake: a completion that drains pending_ops while the task
// is parked pushes it onto the owning wake-list exactly once.
TEST(TaskRecycling, ParkedTaskWakesThroughMpscList) {
  rt::TaskWakeList list;
  rt::Task task;
  task.wake = &list;
  task.pending_ops.store(1, std::memory_order_relaxed);
  task.parked.store(true, std::memory_order_relaxed);

  rt::complete_one(rt::task_token(&task));
  EXPECT_FALSE(task.parked.load());
  rt::Task* woken = list.drain_fifo();
  ASSERT_EQ(woken, &task);
  EXPECT_EQ(woken->wake_next, nullptr);
  EXPECT_EQ(list.drain_fifo(), nullptr);

  // Not parked (running, or already claimed): no push.
  task.pending_ops.store(1, std::memory_order_relaxed);
  rt::complete_one(rt::task_token(&task));
  EXPECT_EQ(list.drain_fifo(), nullptr);
}

// Spawn storm: nested parfors with chunk 1 (one task per iteration) and
// blocking gets, far more tasks than the resident cap — every TCB and
// iteration block recycles many times; every iteration must still run
// exactly once.
TEST(TaskRecycling, SpawnStormNestedParforCountsExact) {
  Config config = Config::testing();
  config.num_workers = 2;
  config.max_tasks_per_worker = 16;
  config.task_pool_reserve = 4;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle counter = gmt_new(8, Alloc::kPartition);
    const gmt_handle data = gmt_new(64 * 8, Alloc::kPartition);
    test::parfor_lambda(64, 1, [&](std::uint64_t i) {
      gmt_put_value(data, i * 8, i * 3, 8);
      test::parfor_lambda(16, 1, [&](std::uint64_t) {
        std::uint64_t value = 0;
        gmt_get(data, (i % 64) * 8, &value, 8);  // blocking get parks
        ASSERT_EQ(value, i * 3);
        gmt_atomic_add(counter, 0, 1, 8);
      });
    });
    std::uint64_t total = 0;
    gmt_get(counter, 0, &total, 8);
    EXPECT_EQ(total, 64u * 16u);
    gmt_free(counter);
    gmt_free(data);
  });
  std::uint64_t iterations = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    iterations += cluster.node(n).stats().iterations_executed.read();
  // 64 outer + 64*16 inner + root/helper wrappers; at least the user work.
  EXPECT_GE(iterations, 64u + 64u * 16u);
}

// Same storm with the pools disabled (ablation mode) — the allocating path
// and the scanning scheduler must stay correct too.
TEST(TaskRecycling, SpawnStormAllocatingPathStillCorrect) {
  Config config = Config::testing();
  config.task_pool = false;
  config.max_tasks_per_worker = 8;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    const gmt_handle counter = gmt_new(8, Alloc::kPartition);
    test::parfor_lambda(32, 1, [&](std::uint64_t) {
      test::parfor_lambda(8, 1,
                          [&](std::uint64_t) { gmt_atomic_add(counter, 0, 1, 8); });
    });
    std::uint64_t total = 0;
    gmt_get(counter, 0, &total, 8);
    EXPECT_EQ(total, 32u * 8u);
    gmt_free(counter);
  });
}

// TCBs actually recycle: after a storm far larger than the pool reserve,
// the free-list holds at most task_pool_cap TCBs and at least one (the
// storm's tasks drained back), and repeated runs do not grow it without
// bound.
TEST(TaskRecycling, FreeListBoundedAndReused) {
  Config config = Config::testing();
  config.num_workers = 1;
  config.max_tasks_per_worker = 32;
  config.task_pool_reserve = 2;
  config.task_pool_cap = 64;
  rt::Cluster cluster(1, config);
  for (int round = 0; round < 3; ++round) {
    test::run_task(cluster, [] {
      test::parfor_lambda(256, 1, [&](std::uint64_t) { gmt_yield(); });
    });
  }
  const std::size_t pooled = cluster.node(0).worker(0).pooled_tasks();
  EXPECT_GE(pooled, 1u);
  EXPECT_LE(pooled, 64u);
}

// Large parfor arguments spill out of the iteration block's inline buffer;
// both paths must deliver the same bytes to every task.
TEST(TaskRecycling, LargeArgsSpillBeyondInlineStorage) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    // parfor_lambda ships a pointer (8 B, inline); exercise the spill path
    // with a fat argument block through the raw API.
    struct Fat {
      std::uint8_t bytes[200];  // > IterBlock::kInlineArgs
    } fat;
    for (std::size_t i = 0; i < sizeof(fat.bytes); ++i)
      fat.bytes[i] = static_cast<std::uint8_t>(i * 7 + 1);
    const gmt_handle sum = gmt_new(8, Alloc::kPartition);
    static gmt_handle g_sum;
    g_sum = sum;
    gmt_parfor(
        8, 1,
        [](std::uint64_t, const void* args) {
          const Fat* f = static_cast<const Fat*>(args);
          std::uint64_t acc = 0;
          for (std::size_t i = 0; i < sizeof(f->bytes); ++i)
            acc += f->bytes[i];
          gmt_atomic_add(g_sum, 0, acc, 8);
        },
        &fat, sizeof(fat), Spawn::kPartition);
    std::uint64_t expected_one = 0;
    for (std::size_t i = 0; i < sizeof(fat.bytes); ++i)
      expected_one += static_cast<std::uint8_t>(i * 7 + 1);
    std::uint64_t total = 0;
    gmt_get(sum, 0, &total, 8);
    EXPECT_EQ(total, expected_one * 8);
    gmt_free(sum);
  });
}

// decompose_fill must agree with the vector decompose for ranges that
// produce more spans than one buffer fill.
TEST(TaskRecycling, DecomposeFillMatchesVectorDecompose) {
  rt::ArrayMeta meta;
  meta.size = 1024;
  meta.policy = Alloc::kPartition;
  meta.num_nodes = 16;  // block_size = 64 -> a long range spans many nodes
  meta.home_node = 0;

  std::vector<rt::OwnedSpan> expect;
  meta.decompose(8, 1000, &expect);
  ASSERT_GT(expect.size(), 3u);

  rt::OwnedSpan spans[3];
  std::vector<rt::OwnedSpan> got;
  std::uint64_t covered = 0;
  while (covered < 1000) {
    std::size_t count = 0;
    covered += meta.decompose_fill(8 + covered, 1000 - covered, spans, 3,
                                   &count);
    for (std::size_t i = 0; i < count; ++i) got.push_back(spans[i]);
  }
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, expect[i].node);
    EXPECT_EQ(got[i].local_offset, expect[i].local_offset);
    EXPECT_EQ(got[i].global_offset, expect[i].global_offset);
    EXPECT_EQ(got[i].size, expect[i].size);
  }
}

}  // namespace
}  // namespace gmt
