// Per-operation futures: gmt_get_f / gmt_put_f / gmt_atomic_add_f return a
// pooled, generation-tagged gmt::Future; gmt::wait / wait_all / wait_any
// suspend the issuing task only when the awaited op is still in flight.
// Covered here: data correctness through every future-producing op, the
// wait-on-default / double-wait contracts, wait_any picking a resolved
// member while the rest stay awaitable, trace-verified overlap of two
// remote gets issued from one task, end-of-task draining of abandoned
// futures, and per-op GMT_ERR_NODE_LOST surfacing (the sticky task status
// stays clean when a future's peer dies).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "gmt/error.hpp"
#include "gmt/gmt.hpp"
#include "gmt/obs.hpp"
#include "net/faulty_transport.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

constexpr std::uint64_t kBlock = 4096;

Config membership_config() {
  Config config = Config::testing();
  config.reliable_transport = true;
  config.membership = true;
  config.heartbeat_ns = 2'000'000;          // 2 ms
  config.suspect_timeout_ns = 200'000'000;  // 200 ms
  return config;
}

// Every future-producing op resolves with the right data / old value, and
// a resolved future can be waited again (idempotent copy semantics).
TEST(Futures, GetPutAtomicResolveWithCorrectData) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);

    // put_f to the remote partition, then read it back through get_f.
    std::uint64_t src[8];
    for (int i = 0; i < 8; ++i) src[i] = 0x100u + i;
    Future pf = gmt_put_f(h, kBlock, src, sizeof(src));
    EXPECT_EQ(wait(pf), GMT_ERR_OK);

    std::uint64_t dst[8] = {0};
    Future gf = gmt_get_f(h, kBlock, dst, sizeof(dst));
    EXPECT_EQ(wait(gf), GMT_ERR_OK);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], 0x100u + i);

    // Double-wait on a copy of a resolved future is a no-op success.
    EXPECT_EQ(wait(gf), GMT_ERR_OK);
    // Waiting a default (never-issued) future is a no-op success too.
    EXPECT_EQ(wait(Future{}), GMT_ERR_OK);
    EXPECT_TRUE(is_ready(Future{}));

    // atomic_add_f returns the previous value through old_out.
    gmt_put_value(h, kBlock + 512, 40, 8);
    std::uint64_t old = ~0ull;
    Future af = gmt_atomic_add_f(h, kBlock + 512, 2, &old, 8);
    EXPECT_EQ(wait(af), GMT_ERR_OK);
    EXPECT_EQ(old, 40u);
    std::uint64_t now = 0;
    gmt_get(h, kBlock + 512, &now, 8);
    EXPECT_EQ(now, 42u);

    // Typed element-index template overloads.
    std::array<std::uint64_t, 4> typed{};
    Future tf = gmt_get_f<std::uint64_t>(h, kBlock / 8,
                                         std::span<std::uint64_t>(typed));
    EXPECT_EQ(wait(tf), GMT_ERR_OK);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(typed[i], 0x100u + i);

    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(h);
  });
}

// A batch of independent gets issued up front and collected with wait_all:
// every buffer lands, statuses aggregate to OK.
TEST(Futures, WaitAllCollectsABatch) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    constexpr int kN = 32;
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    for (int i = 0; i < kN; ++i) gmt_put_value(h, kBlock + i * 8, 7u + i, 8);

    std::uint64_t vals[kN] = {0};
    Future fs[kN];
    for (int i = 0; i < kN; ++i)
      fs[i] = gmt_get_f(h, kBlock + i * 8, &vals[i], 8);
    EXPECT_EQ(wait_all(std::span<const Future>(fs, kN)), GMT_ERR_OK);
    for (int i = 0; i < kN; ++i) EXPECT_EQ(vals[i], 7u + i);
    gmt_free(h);
  });
}

// wait_any returns the index of a resolved member; the others stay
// awaitable and resolve with correct data afterwards.
TEST(Futures, WaitAnyLeavesRestAwaitable) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    constexpr int kN = 4;
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    for (int i = 0; i < kN; ++i)
      gmt_put_value(h, kBlock + i * 64, 0xa0u + i, 8);

    std::uint64_t vals[kN] = {0};
    Future fs[kN];
    for (int i = 0; i < kN; ++i)
      fs[i] = gmt_get_f(h, kBlock + i * 64, &vals[i], 8);

    bool done[kN] = {false};
    for (int round = 0; round < kN; ++round) {
      std::uint32_t status = ~0u;
      const std::size_t idx =
          wait_any(std::span<const Future>(fs, kN), &status);
      ASSERT_LT(idx, static_cast<std::size_t>(kN));
      EXPECT_EQ(status, GMT_ERR_OK);
      // A consumed future reads as ready; wait_any may legitimately hand
      // back an already-consumed index, so just record first completions.
      if (!done[idx]) {
        done[idx] = true;
        EXPECT_EQ(vals[idx], 0xa0u + idx);
      }
      EXPECT_TRUE(is_ready(fs[idx]));
    }
    // Everything is eventually collectable regardless of wait_any order.
    EXPECT_EQ(wait_all(std::span<const Future>(fs, kN)), GMT_ERR_OK);
    for (int i = 0; i < kN; ++i) EXPECT_EQ(vals[i], 0xa0u + i);
    gmt_free(h);
  });
}

// The acceptance check for pipelining: two remote gets issued from a
// single task are both in flight before either resolves. The tracer
// records an instant per issue and per resolution; the dump must show >= 2
// "future.issue" events timestamped before the first "future.resolve".
TEST(Futures, TraceShowsTwoGetsInFlightBeforeFirstResolve) {
  trace_reset();
  trace_enable(true);

  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    gmt_put_value(h, kBlock, 1, 8);
    gmt_put_value(h, kBlock + 8, 2, 8);

    std::uint64_t a = 0, b = 0;
    Future fs[2];
    fs[0] = gmt_get_f(h, kBlock, &a, 8);
    fs[1] = gmt_get_f(h, kBlock + 8, &b, 8);
    std::uint32_t status = ~0u;
    (void)wait_any(std::span<const Future>(fs, 2), &status);
    EXPECT_EQ(status, GMT_ERR_OK);
    EXPECT_EQ(wait_all(std::span<const Future>(fs, 2)), GMT_ERR_OK);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    gmt_free(h);
  });

  const std::string path =
      ::testing::TempDir() + "gmt_futures_overlap_trace.json";
  ASSERT_TRUE(dump_trace(path));
  trace_enable(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string trace = ss.str();

  // Pull the "ts" field out of every instant event with the given name.
  const auto collect_ts = [&trace](const char* name) {
    std::vector<double> ts;
    const std::string needle = std::string("\"name\":\"") + name + "\"";
    std::size_t pos = 0;
    while ((pos = trace.find(needle, pos)) != std::string::npos) {
      const std::size_t t = trace.find("\"ts\":", pos);
      if (t != std::string::npos)
        ts.push_back(std::strtod(trace.c_str() + t + 5, nullptr));
      pos += needle.size();
    }
    return ts;
  };
  const std::vector<double> issues = collect_ts("future.issue");
  const std::vector<double> resolves = collect_ts("future.resolve");
  ASSERT_GE(issues.size(), 2u);
  ASSERT_GE(resolves.size(), 2u);
  double first_resolve = resolves[0];
  for (const double r : resolves) first_resolve = std::min(first_resolve, r);
  int in_flight_before_first_resolve = 0;
  for (const double i : issues)
    if (i <= first_resolve) ++in_flight_before_first_resolve;
  EXPECT_GE(in_flight_before_first_resolve, 2)
      << "expected >=2 gets issued before the first resolution; trace at "
      << path;
}

// A task that issues futures and returns without waiting must not leak
// cells or let the completion write a dead frame: the end-of-task drain
// waits them out (and counts them).
TEST(Futures, AbandonedFuturesDrainAtTaskEnd) {
  const std::uint64_t abandoned_before =
      stats_snapshot().counter(obs::names::kFuturesAbandoned);
  static std::uint64_t sink[4];  // outlives the task on purpose
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    gmt_put_value(h, kBlock, 9, 8);
    for (int i = 0; i < 4; ++i)
      (void)gmt_get_f(h, kBlock + i * 8, &sink[i], 8);
    // Deliberately no wait: task_entry's drain must collect all four.
    gmt_free(h);
  });
  const std::uint64_t abandoned_after =
      stats_snapshot().counter(obs::names::kFuturesAbandoned);
  EXPECT_GE(abandoned_after - abandoned_before, 4u);
}

// Per-op error surfacing: a future whose target partition is homed on a
// dead node resolves with GMT_ERR_NODE_LOST as the wait() return value —
// and the task's sticky status stays GMT_ERR_OK throughout.
TEST(Futures, DeadPeerSurfacesNodeLostPerOpNotSticky) {
  Config config = membership_config();
  config.fault.kill_node = 2;
  config.fault.kill_at = 0;  // dark from the first send
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(3 * kBlock, Alloc::kPartition);
    while (gmt_membership_epoch() == 0) gmt_yield();
    EXPECT_FALSE(gmt_node_is_live(2));
    gmt_clear_error();  // registration against the dead node is sticky

    // One future to the dead partition, one to a live one, in flight
    // together; each resolves with its own verdict.
    std::uint64_t dead_val = 0, live_val = 0;
    gmt_put_value(h, 1 * kBlock, 0x11, 8);
    Future fs[2];
    fs[0] = gmt_get_f(h, 2 * kBlock, &dead_val, 8);
    fs[1] = gmt_get_f(h, 1 * kBlock, &live_val, 8);

    std::uint32_t st0 = wait(fs[0]);
    std::uint32_t st1 = wait(fs[1]);
    EXPECT_EQ(st0, GMT_ERR_NODE_LOST);
    EXPECT_EQ(st1, GMT_ERR_OK);
    EXPECT_EQ(live_val, 0x11u);
    // The whole point of the per-op model: the sticky status never saw it.
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    // wait_any over a dead-partition future hands back the failed op with
    // its status instead of hanging or aborting.
    std::uint64_t v = 0;
    Future f = gmt_get_f(h, 2 * kBlock + 64, &v, 8);
    std::uint32_t status = ~0u;
    const std::size_t idx = wait_any(std::span<const Future>(&f, 1), &status);
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(status, GMT_ERR_NODE_LOST);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);

    // put_f and atomic_add_f follow the same contract.
    std::uint64_t word = 0xdead;
    EXPECT_EQ(wait(gmt_put_f(h, 2 * kBlock, &word, 8)), GMT_ERR_NODE_LOST);
    std::uint64_t old = ~0ull;
    EXPECT_EQ(wait(gmt_atomic_add_f(h, 2 * kBlock, 1, &old, 8)),
              GMT_ERR_NODE_LOST);
    EXPECT_EQ(old, 0u);  // failed atomics report a previous value of 0
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
  });
}

// wait_any over a mixed set — one member doomed by node loss, the rest
// healthy — hands back every index with its own verdict: the failed op
// surfaces GMT_ERR_NODE_LOST through the status out-param, the successes
// surface GMT_ERR_OK with correct data, and nothing hangs.
TEST(Futures, WaitAnyMixedNodeLostAndSuccesses) {
  Config config = membership_config();
  config.fault.kill_node = 2;
  config.fault.kill_at = 0;  // dark from the first send
  config.fault.seed = 0x5eed;
  ASSERT_TRUE(config.validate().empty()) << config.validate();

  rt::Cluster cluster(3, config);
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(3 * kBlock, Alloc::kPartition);
    while (gmt_membership_epoch() == 0) gmt_yield();
    gmt_clear_error();

    constexpr int kN = 3;
    gmt_put_value(h, 1 * kBlock, 0x21, 8);
    gmt_put_value(h, 1 * kBlock + 8, 0x22, 8);
    std::uint64_t vals[kN] = {0, 0, 0};
    Future fs[kN];
    fs[0] = gmt_get_f(h, 2 * kBlock, &vals[0], 8);  // doomed partition
    fs[1] = gmt_get_f(h, 1 * kBlock, &vals[1], 8);
    fs[2] = gmt_get_f(h, 1 * kBlock + 8, &vals[2], 8);

    // Collect with wait_any, shrinking the set as members resolve (a
    // consumed future reads as ready forever, so it must leave the set).
    std::uint32_t seen_status[kN] = {~0u, ~0u, ~0u};
    bool done[kN] = {false, false, false};
    int remaining = kN;
    while (remaining > 0) {
      Future pending[kN];
      std::size_t back_map[kN];
      std::size_t n = 0;
      for (std::size_t i = 0; i < kN; ++i)
        if (!done[i]) {
          back_map[n] = i;
          pending[n++] = fs[i];
        }
      std::uint32_t status = ~0u;
      const std::size_t idx =
          wait_any(std::span<const Future>(pending, n), &status);
      ASSERT_LT(idx, n);
      done[back_map[idx]] = true;
      seen_status[back_map[idx]] = status;
      --remaining;
    }
    EXPECT_EQ(seen_status[0], GMT_ERR_NODE_LOST);
    EXPECT_EQ(seen_status[1], GMT_ERR_OK);
    EXPECT_EQ(seen_status[2], GMT_ERR_OK);
    EXPECT_EQ(vals[1], 0x21u);
    EXPECT_EQ(vals[2], 0x22u);
    // Per-op verdicts never leak into the sticky task status.
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
  });
}

// ---- actor replies resolve through the same future machinery ----

void futures_actor_echo(void*, const actor::Message& msg) {
  std::uint64_t v;
  std::memcpy(&v, msg.data, sizeof(v));
  v += 0x1000;
  msg.reply(&v, sizeof(v));
}

// An actor call() is just another future-producing op: the reply rides the
// delivery ack into the caller's buffer before the future resolves, the
// future composes with wait_all alongside data-plane futures, and a
// reply-less send() resolves OK without touching the buffer.
TEST(Futures, ActorReplyRoundTripViaFuture) {
  constexpr std::uint64_t kEcho = 0xfeca;
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    gmt_on(
        1,
        [](std::uint64_t, const void*) {
          ASSERT_TRUE(
              actor::register_mailbox(kEcho, &futures_actor_echo, nullptr));
        },
        nullptr, 0);

    // Round trip: reply lands before wait() returns.
    std::uint64_t reply = 0;
    Future f = actor::call(1, kEcho, std::uint64_t{5}, &reply);
    EXPECT_EQ(wait(f), GMT_ERR_OK);
    EXPECT_EQ(reply, 0x1005u);
    EXPECT_TRUE(is_ready(f));
    EXPECT_EQ(wait(f), GMT_ERR_OK);  // double-wait stays a no-op success

    // Actor futures mix with data-plane futures under wait_all.
    const gmt_handle h = gmt_new(2 * kBlock, Alloc::kPartition);
    gmt_put_value(h, kBlock, 0x77, 8);
    std::uint64_t got = 0, reply2 = 0;
    Future fs[2];
    fs[0] = gmt_get_f(h, kBlock, &got, 8);
    fs[1] = actor::call(1, kEcho, std::uint64_t{9}, &reply2);
    EXPECT_EQ(wait_all(std::span<const Future>(fs, 2)), GMT_ERR_OK);
    EXPECT_EQ(got, 0x77u);
    EXPECT_EQ(reply2, 0x1009u);

    // send() (no reply buffer) resolves once the handler ran; the
    // handler's reply() is dropped and nothing is clobbered.
    reply = 0xdeadbeef;
    EXPECT_EQ(wait(actor::send(1, kEcho, std::uint64_t{1})), GMT_ERR_OK);
    EXPECT_EQ(reply, 0xdeadbeefu);

    gmt_on(
        1,
        [](std::uint64_t, const void*) {
          EXPECT_TRUE(actor::unregister_mailbox(kEcho));
        },
        nullptr, 0);
    EXPECT_EQ(gmt_last_error(), GMT_ERR_OK);
    gmt_free(h);
  });
}

}  // namespace
}  // namespace gmt
