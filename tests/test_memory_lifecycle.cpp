// Lifecycle tests for the PGAS memory layer: handle-exhaustion soaks,
// deferred-reclamation races, and free-list concurrency. These are the
// "unbounded run" guarantees — steady alloc/free traffic never exhausts
// the handle space, and a free racing in-flight accesses never yields a
// use-after-free (run under the asan and tsan presets).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gmt/obs.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "runtime/global_memory.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

#if defined(__SANITIZE_THREAD__)
#define GMT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GMT_TEST_TSAN 1
#endif
#endif

// tsan slows the blocking-op path ~10x; scale the soak iteration counts
// (not the race tests) so the binary stays inside the ctest timeout. The
// default and asan presets run the full counts the acceptance criteria
// name.
#ifdef GMT_TEST_TSAN
constexpr int kSoakScale = 8;
#else
constexpr int kSoakScale = 1;
#endif

// The soaks are latency-bound: every blocking alloc/free pays the command
// and aggregation flush deadlines per hop. Shrink them — these tests probe
// lifecycle correctness, not aggregation batching.
Config fast_config() {
  Config c = Config::testing();
  c.cmd_block_timeout_ns = 2'000;
  c.agg_queue_timeout_ns = 5'000;
  return c;
}

// ---- deterministic deferred-reclamation unit tests (no cluster) ----

TEST(DeferredReclaim, UnpinnedFreeReclaimsImmediately) {
  rt::GlobalMemory gm(0, 1);
  const gmt_handle h = gm.reserve_handle();
  gm.register_array(h, 1024, Alloc::kLocal, 0);
  gm.unregister_array(h);  // nobody pinned: no deferral
  EXPECT_EQ(gm.deferred_depth(), 0u);
  EXPECT_EQ(gm.local_bytes(), 0u);
}

TEST(DeferredReclaim, PinnedReaderKeepsStorageAlive) {
  rt::GlobalMemory gm(0, 1);
  const gmt_handle h = gm.reserve_handle();
  gm.register_array(h, 4096, Alloc::kLocal, 0);
  std::atomic<int> stage{0};
  std::thread reader([&] {
    rt::GlobalMemory::AccessGuard guard(gm);
    rt::LocalArray& array = gm.get(h);
    stage.store(1, std::memory_order_release);
    // Keep dereferencing while the main thread frees the handle: the pin
    // defers the delete, so asan/tsan verify these reads hit live storage.
    while (stage.load(std::memory_order_acquire) != 2) {
      volatile std::uint8_t sink = array.partition[123];
      (void)sink;
    }
    volatile std::uint8_t last = array.local_ptr(4095)[0];
    (void)last;
  });
  while (stage.load(std::memory_order_acquire) != 1) std::this_thread::yield();
  gm.unregister_array(h);
  EXPECT_FALSE(gm.valid(h));       // new lookups fail immediately...
  EXPECT_GE(gm.deferred_depth(), 1u);  // ...but the storage is deferred
  stage.store(2, std::memory_order_release);
  reader.join();
  gm.reclaim_deferred();  // the pin is gone: the partition frees now
  EXPECT_EQ(gm.deferred_depth(), 0u);
  EXPECT_EQ(gm.local_bytes(), 0u);
}

TEST(DeferredReclaim, ConcurrentAllocFreeRecycle) {
  rt::GlobalMemory gm(0, 1);
  constexpr int kThreads = 8;
  constexpr int kCycles = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCycles; ++i) {
        const gmt_handle h = gm.reserve_handle();
        gm.register_array(h, 16 + (i & 63), Alloc::kLocal, 0);
        {
          rt::GlobalMemory::AccessGuard guard(gm);
          gm.get(h).local_ptr(0)[0] = static_cast<std::uint8_t>(t);
        }
        gm.unregister_array(h);
        gm.recycle_handle(h);
      }
    });
  }
  for (auto& th : threads) th.join();
  gm.reclaim_deferred();
  EXPECT_EQ(gm.live_handles(), 0u);
  EXPECT_EQ(gm.deferred_depth(), 0u);
  EXPECT_EQ(gm.local_bytes(), 0u);
  EXPECT_GE(gm.free_list_depth(), 1u);
}

// ---- full-runtime soaks ----

std::int64_t cluster_gauge(rt::Cluster& cluster, const char* name) {
  std::int64_t total = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    total += cluster.node(n).obs().snapshot().gauge(name);
  return total;
}

// >= 200k gmt_new/gmt_free cycles against a 65,536-entry handle table:
// before slot recycling this aborted with "handle space exhausted" at
// cycle 65,535. A small rotating window of live handles keeps the free
// list churning out of order.
TEST(MemoryLifecycle, AllocFreeSoakNeverExhausts) {
  rt::Cluster cluster(2, fast_config());
  // Prime all pools so the baseline gauges are steady-state.
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(64, Alloc::kPartition);
    gmt_free(h);
  });
  const std::int64_t base_handles =
      cluster_gauge(cluster, obs::names::kMemLiveHandles);
  const std::int64_t base_bytes =
      cluster_gauge(cluster, obs::names::kMemLiveBytes);

  test::run_task(cluster, [] {
    constexpr int kCycles = 200000 / kSoakScale;
    gmt_handle window[8] = {};
    for (int i = 0; i < kCycles; ++i) {
      const int w = i & 7;
      if (window[w] != kNullHandle) gmt_free(window[w]);
      const Alloc policy = (i % 3 == 0)   ? Alloc::kLocal
                           : (i % 3 == 1) ? Alloc::kPartition
                                          : Alloc::kRemote;
      window[w] = gmt_new(8 + (i % 5) * 64, policy);
    }
    for (gmt_handle h : window)
      if (h != kNullHandle) gmt_free(h);
  });

  // Everything freed: the live gauges return to the primed baseline.
  EXPECT_EQ(cluster_gauge(cluster, obs::names::kMemLiveHandles),
            base_handles);
  EXPECT_EQ(cluster_gauge(cluster, obs::names::kMemLiveBytes), base_bytes);
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    EXPECT_EQ(cluster.node(n).memory().live_handles(),
              static_cast<std::uint64_t>(base_handles) / cluster.num_nodes());
  // The soak ran on recycled slots, not fresh ones.
  std::uint64_t recycled = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    recycled += cluster.node(n).obs().snapshot().counter(
        obs::names::kMemSlotsRecycled);
  EXPECT_GT(recycled, 100000u / kSoakScale);
}

// >= 100k reductions: each used to burn one handle (alloc/free per call),
// exhausting the table at 65,535; the cached scratch accumulator plus
// recycling make this unbounded.
constexpr std::uint64_t kCount = 64;  // reduction-soak array elements

TEST(MemoryLifecycle, ReductionSoakReusesScratch) {
  rt::Cluster cluster(2, fast_config());
  // Prime: the first reduction caches the scratch cell, which then stays
  // live until teardown — take the baseline after it exists.
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    coll::fill_u64(h, 0, kCount, 1);
    EXPECT_EQ(coll::reduce_sum_u64(h, 0, kCount), kCount);
    gmt_free(h);
  });
  const std::int64_t base_handles =
      cluster_gauge(cluster, obs::names::kMemLiveHandles);
  const std::int64_t base_bytes =
      cluster_gauge(cluster, obs::names::kMemLiveBytes);

  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(kCount * 8, Alloc::kPartition);
    coll::fill_u64(h, 0, kCount, 1);
    for (int i = 0; i < 100000 / kSoakScale; ++i) {
      if (i % 4 == 0) {
        ASSERT_EQ(coll::reduce_min_u64(h, 0, kCount), 1u);
      } else if (i % 4 == 1) {
        ASSERT_EQ(coll::reduce_max_u64(h, 0, kCount), 1u);
      } else if (i % 4 == 2) {
        ASSERT_EQ(coll::count_equal_u64(h, 0, kCount, 1), kCount);
      } else {
        ASSERT_EQ(coll::reduce_sum_u64(h, 0, kCount), kCount);
      }
    }
    gmt_free(h);
  });

  EXPECT_EQ(cluster_gauge(cluster, obs::names::kMemLiveHandles),
            base_handles);
  EXPECT_EQ(cluster_gauge(cluster, obs::names::kMemLiveBytes), base_bytes);
}

// Free racing remote traffic: tasks keep the helpers busy (and pinned)
// with puts/gets/atomics on a stable array while one task alloc/frees a
// second array in a loop. The fast path is disabled so every op takes the
// command/helper path — the one that touches freed storage without
// deferred reclamation. asan/tsan verify the protocol.
TEST(MemoryLifecycle, FreeVsRemoteOpRace) {
  Config config = fast_config();
  config.local_fast_path = false;
  rt::Cluster cluster(2, config);
  test::run_task(cluster, [] {
    constexpr std::uint64_t kWords = 256;
    const gmt_handle stable = gmt_new(kWords * 8, Alloc::kPartition);
    test::parfor_lambda(
        9, 1,
        [&](std::uint64_t i) {
          if (i == 0) {
            for (int k = 0; k < 300; ++k) {
              const gmt_handle h = gmt_new(1024, Alloc::kPartition);
              gmt_put_value(h, 0, static_cast<std::uint64_t>(k), 8);
              std::uint64_t v = 0;
              gmt_get(h, 0, &v, 8);
              ASSERT_EQ(v, static_cast<std::uint64_t>(k));
              gmt_free(h);
            }
          } else {
            for (int k = 0; k < 2000; ++k) {
              const std::uint64_t off = ((i * 131 + k) % kWords) * 8;
              gmt_put_value(stable, off, static_cast<std::uint64_t>(k), 8);
              std::uint64_t v = 0;
              gmt_get(stable, off, &v, 8);
              gmt_atomic_add(stable, off, 1, 8);
            }
          }
        },
        Spawn::kPartition);
    gmt_free(stable);
  });
}

}  // namespace
}  // namespace gmt
