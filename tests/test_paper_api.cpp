// The paper-faithful camelCase compatibility shim (Table I spellings,
// frozen at the blocking/_nb surface) must behave identically to the
// snake_case API it aliases — a verbatim port of the paper's code style
// runs unchanged. The shim lives at the bottom of gmt/api.hpp; this test
// deliberately includes it through the deprecated gmt/paper_api.hpp
// forwarder so that the legacy include path keeps compiling too.
#include <gtest/gtest.h>

#include <cstring>

#include "gmt/paper_api.hpp"
#include "runtime/cluster.hpp"
#include "test_util.hpp"

namespace gmt {
namespace {

TEST(PaperApi, TableOneRoundTrip) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    // gmt_new / gmt_putValue / gmt_get in the paper's spelling.
    const gmt_handle h = gmt_new(64 * 8, Alloc::kPartition);
    gmt_putValue(h, 0, 111, 8);
    gmt_putValueNB(h, 8, 222, 8);
    gmt_waitCommands();
    std::uint64_t a = 0, b = 0;
    gmt_get(h, 0, &a, 8);
    gmt_getNB(h, 8, &b, 8);
    gmt_waitCommands();
    EXPECT_EQ(a, 111u);
    EXPECT_EQ(b, 222u);

    EXPECT_EQ(gmt_atomicAdd(h, 16, 5), 0u);
    EXPECT_EQ(gmt_atomicCAS(h, 16, 5, 9), 5u);
    gmt_free(h);
  });
}

namespace paper_style {
// A verbatim-style paper listing: parallel sum with gmt_parFor.
struct Args {
  gmt_handle sum;
};
void body(std::uint64_t i, const void* raw) {
  Args a;
  std::memcpy(&a, raw, sizeof(a));
  gmt_atomicAdd(a.sum, 0, i);
}
}  // namespace paper_style

TEST(PaperApi, ParForSpelling) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    paper_style::Args args{gmt_new(8, Alloc::kPartition)};
    gmt_parFor(100, 4, &paper_style::body, &args, sizeof(args));
    std::uint64_t total = 0;
    gmt_get(args.sum, 0, &total, 8);
    EXPECT_EQ(total, 99u * 100 / 2);
    gmt_free(args.sum);
  });
}

TEST(PaperApi, PutNBThenWait) {
  rt::Cluster cluster(2, Config::testing());
  test::run_task(cluster, [] {
    const gmt_handle h = gmt_new(1024, Alloc::kRemote);
    std::uint8_t data[100];
    for (int i = 0; i < 100; ++i) data[i] = static_cast<std::uint8_t>(i);
    gmt_putNB(h, 33, data, 100);
    gmt_waitCommands();
    std::uint8_t readback[100];
    gmt_get(h, 33, readback, 100);
    EXPECT_EQ(std::memcmp(data, readback, 100), 0);
    gmt_free(h);
  });
}

}  // namespace
}  // namespace gmt
