// Tests for the network layer: cost model calibration and the in-process
// fabric.
#include <gtest/gtest.h>

#include <thread>

#include "net/inproc_transport.hpp"
#include "net/network_model.hpp"

namespace gmt::net {
namespace {

// ----------------------------------------------------------- cost model --

TEST(NetworkModel, OccupancyGrowsWithSize) {
  const NetworkModel m = NetworkModel::olympus();
  EXPECT_GT(m.occupancy_s(1024), m.occupancy_s(64));
  EXPECT_GT(m.delivery_s(64), m.occupancy_s(64));  // latency added
}

TEST(NetworkModel, RateApproachesBandwidthForLargeMessages) {
  const NetworkModel m = NetworkModel::olympus();
  // 1 MB messages amortise alpha almost entirely.
  EXPECT_GT(m.rate_Bps(1 << 20), 0.9 * m.bandwidth_Bps);
  // Tiny messages are overhead-bound, far below wire speed.
  EXPECT_LT(m.rate_Bps(8), 0.01 * m.bandwidth_Bps);
}

TEST(NetworkModel, PaperAnchor64KB) {
  // The paper measures 2815 MB/s for 64 KB MPI messages on Olympus; the
  // calibrated model must land within 10%.
  const NetworkModel m = NetworkModel::olympus();
  const double mbps = m.rate_Bps(64 * 1024) / (1 << 20);
  EXPECT_NEAR(mbps, 2815.0, 281.0);
}

TEST(NetworkModel, InstantIsFree) {
  const NetworkModel m = NetworkModel::instant();
  EXPECT_LT(m.delivery_s(1 << 20), 1e-9);  // effectively free
}

TEST(MpiEndpointModel, PaperAnchorsSmallMessages) {
  // 32-process MPI between two Olympus nodes: 9.63 MB/s at 16 B and
  // 72.26 MB/s at 128 B (paper §IV-B / §V-A). Within 20%.
  MpiEndpointModel m;
  m.processes = 32;
  EXPECT_NEAR(m.aggregate_rate_Bps(16) / (1 << 20), 9.63, 9.63 * 0.2);
  EXPECT_NEAR(m.aggregate_rate_Bps(128) / (1 << 20), 72.26, 72.26 * 0.2);
}

TEST(MpiEndpointModel, MoreProcessesNeverSlower) {
  MpiEndpointModel one;
  MpiEndpointModel many;
  many.processes = 32;
  for (std::uint32_t size : {64u, 1024u, 65536u})
    EXPECT_GE(many.aggregate_rate_Bps(size),
              one.aggregate_rate_Bps(size) * 0.999);
}

TEST(MpiEndpointModel, ThreadsHurtThroughput) {
  // Table II's observation: multithreaded MPI rates are low.
  MpiEndpointModel single;
  MpiEndpointModel threaded;
  threaded.threads = 4;
  EXPECT_LT(threaded.aggregate_rate_Bps(1024),
            single.aggregate_rate_Bps(1024));
}

TEST(MpiEndpointModel, RateMonotonicInSize) {
  MpiEndpointModel m;
  m.processes = 32;
  double prev = 0;
  for (std::uint32_t size = 8; size <= 65536; size *= 2) {
    const double rate = m.aggregate_rate_Bps(size);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

// --------------------------------------------------------------- fabric --

TEST(InprocFabric, DeliversBetweenEndpoints) {
  InprocFabric fabric(2, NetworkModel::instant());
  InprocEndpoint* a = fabric.endpoint(0);
  InprocEndpoint* b = fabric.endpoint(1);

  EXPECT_TRUE(a->send(1, {1, 2, 3}));
  InMessage msg;
  // Instant model: deliverable immediately.
  ASSERT_TRUE(b->try_recv(&msg));
  EXPECT_EQ(msg.src, 0u);
  EXPECT_EQ(msg.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(b->try_recv(&msg));
}

TEST(InprocFabric, SelfSendLoopsBack) {
  InprocFabric fabric(2, NetworkModel::instant());
  InprocEndpoint* a = fabric.endpoint(0);
  EXPECT_TRUE(a->send(0, {9}));
  InMessage msg;
  ASSERT_TRUE(a->try_recv(&msg));
  EXPECT_EQ(msg.src, 0u);
  EXPECT_EQ(msg.payload.size(), 1u);
}

TEST(InprocFabric, PerSourceFifoOrder) {
  InprocFabric fabric(2, NetworkModel::instant());
  for (std::uint8_t i = 0; i < 100; ++i)
    ASSERT_TRUE(fabric.endpoint(0)->send(1, {i}));
  InMessage msg;
  for (std::uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(fabric.endpoint(1)->try_recv(&msg));
    EXPECT_EQ(msg.payload[0], i);
  }
}

TEST(InprocFabric, CountsTraffic) {
  InprocFabric fabric(3, NetworkModel::instant());
  fabric.endpoint(0)->send(1, std::vector<std::uint8_t>(100));
  fabric.endpoint(2)->send(1, std::vector<std::uint8_t>(50));
  EXPECT_EQ(fabric.total_messages(), 2u);
  EXPECT_EQ(fabric.total_bytes(), 150u);
  InMessage msg;
  while (fabric.endpoint(1)->try_recv(&msg)) {
  }
}

TEST(InprocFabric, BackpressureWhenRingFull) {
  InprocFabric fabric(2, NetworkModel::instant(), /*ring_capacity=*/4);
  int accepted = 0;
  while (fabric.endpoint(0)->send(1, {1}) && accepted < 100) ++accepted;
  EXPECT_GE(accepted, 4);
  EXPECT_LT(accepted, 100);  // eventually refused
  // Draining restores capacity.
  InMessage msg;
  while (fabric.endpoint(1)->try_recv(&msg)) {
  }
  EXPECT_TRUE(fabric.endpoint(0)->send(1, {2}));
}

TEST(InprocFabric, ModeledLatencyDelaysDelivery) {
  NetworkModel slow = NetworkModel::instant();
  slow.latency_s = 20e-3;  // 20 ms
  InprocFabric fabric(2, slow);
  fabric.endpoint(0)->send(1, {1});
  InMessage msg;
  EXPECT_FALSE(fabric.endpoint(1)->try_recv(&msg));  // too early
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(fabric.endpoint(1)->try_recv(&msg));
}

TEST(InprocFabric, UndeliveredMessagesReclaimed) {
  // Destructor must free in-flight payloads (checked under ASan builds).
  InprocFabric fabric(2, NetworkModel::instant());
  for (int i = 0; i < 10; ++i)
    fabric.endpoint(0)->send(1, std::vector<std::uint8_t>(1024));
}

TEST(InprocFabric, ConcurrentPairsIndependent) {
  InprocFabric fabric(4, NetworkModel::instant());
  std::vector<std::thread> threads;
  for (std::uint32_t pair = 0; pair < 2; ++pair) {
    threads.emplace_back([&fabric, pair] {
      const std::uint32_t src = pair * 2, dst = pair * 2 + 1;
      for (int i = 0; i < 5000; ++i) {
        while (!fabric.endpoint(src)->send(
            dst, {static_cast<std::uint8_t>(i & 0xff)}))
          std::this_thread::yield();
      }
    });
    threads.emplace_back([&fabric, pair] {
      const std::uint32_t dst = pair * 2 + 1;
      InMessage msg;
      int received = 0;
      int expected = 0;
      while (received < 5000) {
        if (fabric.endpoint(dst)->try_recv(&msg)) {
          ASSERT_EQ(msg.payload[0], expected & 0xff);
          ++expected;
          ++received;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace gmt::net
