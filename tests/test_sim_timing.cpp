// Regression and property tests for the simulator's virtual-time
// accounting — including the tick-chain bug where completions inside a
// worker tick spawned zero-delay tick chains that collapsed all local
// work to one instant.
#include <gtest/gtest.h>

#include <memory>

#include "sim/cost_model.hpp"
#include "sim/gmt_sim.hpp"
#include "sim/scripted_task.hpp"
#include "sim/workloads_micro.hpp"

namespace gmt::sim {
namespace {

double run_local_work(std::uint32_t nodes, std::uint64_t tasks,
                      std::uint64_t ops_per_task, const GmtCosts& costs) {
  Engine engine;
  SimGmtRuntime runtime(&engine, nodes, SimGmtConfig{}, costs);
  double finish = -1;
  runtime.parfor(
      tasks, 1,
      [&](std::uint32_t node, std::uint64_t, std::uint64_t) {
        return std::make_unique<ScriptedTask>(
            0, ops_per_task, [node](std::uint64_t, std::vector<SimOp>* ops) {
              ops->push_back(SimOp{node, 8, 8, 60, true});
            });
      },
      [&] { finish = engine.now(); });
  engine.run();
  return finish;
}

TEST(SimTiming, LocalWorkCostsRealTime) {
  // Regression: 100 tasks x 1000 local ops on one node must take at least
  // the serial per-op cost divided by worker parallelism.
  const GmtCosts costs;
  const double seconds = run_local_work(1, 100, 1000, costs);
  const double per_op_cycles =
      costs.cmd_gen_cycles + costs.cmd_exec_cycles + 60;
  const double floor =
      100.0 * 1000 * costs.cycles_to_s(per_op_cycles) / 15.0;  // 15 workers
  EXPECT_GT(seconds, floor * 0.8);
  EXPECT_LT(seconds, floor * 20);
}

TEST(SimTiming, MoreLocalWorkTakesProportionallyLonger) {
  const GmtCosts costs;
  const double one = run_local_work(1, 50, 200, costs);
  const double four = run_local_work(1, 200, 200, costs);
  EXPECT_GT(four, 2.5 * one);
  EXPECT_LT(four, 8.0 * one);
}

TEST(SimTiming, WorkerParallelismSpeedsUpLocalWork) {
  GmtCosts costs;
  Engine engine;
  const auto run_with_workers = [&](std::uint32_t workers) {
    Engine local_engine;
    SimGmtConfig config;
    config.num_workers = workers;
    SimGmtRuntime runtime(&local_engine, 1, config, costs);
    double finish = -1;
    runtime.parfor(
        64, 1,
        [&](std::uint32_t node, std::uint64_t, std::uint64_t) {
          return std::make_unique<ScriptedTask>(
              0, 500, [node](std::uint64_t, std::vector<SimOp>* ops) {
                ops->push_back(SimOp{node, 8, 8, 60, true});
              });
        },
        [&] { finish = local_engine.now(); });
    local_engine.run();
    return finish;
  };
  const double one_worker = run_with_workers(1);
  const double eight_workers = run_with_workers(8);
  EXPECT_GT(one_worker, 4 * eight_workers);
}

TEST(SimTiming, RemoteOpsCostAtLeastNetworkLatency) {
  // A single task doing sequential blocking remote ops cannot finish
  // faster than ops x one-way latency x 2.
  Engine engine;
  GmtCosts costs;
  SimGmtRuntime runtime(&engine, 2, SimGmtConfig{}, costs);
  double finish = -1;
  constexpr std::uint64_t kOps = 50;
  runtime.parfor_single(
      0, 1, 1,
      [&](std::uint32_t, std::uint64_t, std::uint64_t) {
        return std::make_unique<ScriptedTask>(
            0, kOps, [](std::uint64_t, std::vector<SimOp>* ops) {
              ops->push_back(SimOp{1, 8, 8, 10, true});
            });
      },
      [&] { finish = engine.now(); });
  engine.run();
  EXPECT_GT(finish, kOps * 2 * costs.net.latency_s);
}

TEST(SimTiming, SaturatedPutsMatchPaperAnchors) {
  // The headline calibration check: 8-byte blocking puts at the paper's
  // task counts must land near the published rates (within a factor 2).
  PutBenchParams params;
  params.nodes = 2;
  params.puts_per_task = 64;
  params.put_size = 8;

  params.tasks = 1024;
  const double rate_1024 = put_bench_gmt(params).payload_rate_MBps();
  EXPECT_GT(rate_1024, 8.55 / 2);   // paper: 8.55 MB/s
  EXPECT_LT(rate_1024, 8.55 * 2);

  params.tasks = 15360;
  const double rate_15360 = put_bench_gmt(params).payload_rate_MBps();
  EXPECT_GT(rate_15360, 72.48 / 2);  // paper: 72.48 MB/s
  EXPECT_LT(rate_15360, 72.48 * 2);

  // And the paper's 8.4x concurrency gain, within a loose band.
  EXPECT_GT(rate_15360 / rate_1024, 3.0);
}

TEST(SimTiming, FlushDeadlineBoundsSparseLatency) {
  // One lonely blocking op: end-to-end must be at least one flush
  // deadline (request leg) and at most a few (request + reply legs).
  Engine engine;
  GmtCosts costs;
  SimGmtConfig config;
  SimGmtRuntime runtime(&engine, 2, config, costs);
  double finish = -1;
  runtime.parfor_single(
      0, 1, 1,
      [&](std::uint32_t, std::uint64_t, std::uint64_t) {
        return std::make_unique<ScriptedTask>(
            0, 1, [](std::uint64_t, std::vector<SimOp>* ops) {
              ops->push_back(SimOp{1, 8, 8, 10, true});
            });
      },
      [&] { finish = engine.now(); });
  engine.run();
  EXPECT_GT(finish, config.agg_timeout_s);
  EXPECT_LT(finish, 6 * config.agg_timeout_s);
}

}  // namespace
}  // namespace gmt::sim
