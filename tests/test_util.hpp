// Test helpers: run C++ lambdas as GMT tasks.
//
// The public API takes plain function pointers (they must be shippable in
// spawn commands); tests want lambdas with captures. In-process, a pointer
// to a std::function travels through the argument buffer safely — the
// function object outlives the call because gmt_parfor/run block.
#pragma once

#include <cstring>
#include <functional>

#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"

namespace gmt::test {

// Runs `body` as the root task of the cluster.
inline void run_task(rt::Cluster& cluster, std::function<void()> body) {
  std::function<void()>* ptr = &body;
  cluster.run(
      [](std::uint64_t, const void* args) {
        std::function<void()>* fn;
        std::memcpy(&fn, args, sizeof(fn));
        (*fn)();
      },
      &ptr, sizeof(ptr));
}

// Parallel-for over a lambda taking the iteration index. Must be called
// from inside a task.
inline void parfor_lambda(std::uint64_t iterations, std::uint64_t chunk,
                          const std::function<void(std::uint64_t)>& body,
                          Spawn policy = Spawn::kPartition) {
  const std::function<void(std::uint64_t)>* ptr = &body;
  gmt_parfor(
      iterations, chunk,
      [](std::uint64_t i, const void* args) {
        const std::function<void(std::uint64_t)>* fn;
        std::memcpy(&fn, args, sizeof(fn));
        (*fn)(i);
      },
      &ptr, sizeof(ptr), policy);
}

}  // namespace gmt::test
