// Ablation: the custom context switch vs libc swapcontext (paper §IV-D).
// swapcontext saves and restores the signal mask with a syscall on every
// switch; the custom switch moves only callee-saved registers. Real
// measurement on this host.
#include <vector>

#include "bench_util.hpp"
#include "common/time.hpp"
#include "uthread/context.hpp"
#include "uthread/stack.hpp"
#include "uthread/ucontext_switch.hpp"

namespace {

using namespace gmt;

Context g_custom_main, g_custom_task;
std::uint64_t g_rounds = 0;

void custom_body(void*) {
  for (;;) switch_context(&g_custom_task, g_custom_main);
}

double measure_custom(std::uint64_t rounds) {
  Stack stack(32 * 1024);
  g_custom_task = make_context(stack.base(), stack.size(), &custom_body,
                               nullptr);
  const std::uint64_t begin = rdtscp();
  for (std::uint64_t i = 0; i < rounds; ++i)
    switch_context(&g_custom_main, g_custom_task);
  const std::uint64_t cycles = rdtscp() - begin;
  return static_cast<double>(cycles) / (2.0 * static_cast<double>(rounds));
}

UContext g_uctx_main, g_uctx_task;

void uctx_body(void*) {
  for (;;) switch_ucontext(&g_uctx_task, &g_uctx_main);
}

double measure_ucontext(std::uint64_t rounds) {
  Stack stack(64 * 1024);
  make_ucontext(&g_uctx_task, stack.base(), stack.size(), &uctx_body,
                nullptr, nullptr);
  const std::uint64_t begin = rdtscp();
  for (std::uint64_t i = 0; i < rounds; ++i)
    switch_ucontext(&g_uctx_main, &g_uctx_task);
  const std::uint64_t cycles = rdtscp() - begin;
  return static_cast<double>(cycles) / (2.0 * static_cast<double>(rounds));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto rounds = static_cast<std::uint64_t>(200000 * args.scale);

  measure_custom(1000);    // warm up
  measure_ucontext(1000);
  const double custom = measure_custom(rounds);
  const double uctx = measure_ucontext(rounds);

  bench::Table table({"switch", "cycles", "ns"});
  table.add_row({"custom (GMT)", bench::fmt("%.1f", custom),
                 bench::fmt("%.1f", cycles_to_ns(custom))});
  table.add_row({"ucontext (libc)", bench::fmt("%.1f", uctx),
                 bench::fmt("%.1f", cycles_to_ns(uctx))});
  table.add_row({"ratio", bench::fmt("%.1fx", uctx / custom), ""});
  table.print("Ablation: custom context switch vs swapcontext");
  table.write_csv(args.csv_path);

  std::printf("\npaper: custom switch ~500 cycles; swapcontext pays an "
              "extra sigprocmask syscall per switch\n");
  return 0;
}
