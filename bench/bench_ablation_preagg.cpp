// Ablation: pre-aggregation via thread-local command blocks vs pushing
// every command through the shared MPMC aggregation queue (paper §IV-C:
// "the cost of concurrent accesses to the queues is too high ... if
// performed for every generated command"). Real measurement: concurrent
// threads pay per-command either one shared-queue CAS or one local block
// append (with a queue push every block).
#include <atomic>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "collections/mpmc_queue.hpp"
#include "common/time.hpp"
#include "runtime/aggregation.hpp"
#include "runtime/command.hpp"

namespace {

using namespace gmt;

constexpr std::uint64_t kCmdsPerThread = 200000;

// Every command CASes into the shared queue (what GMT avoids).
double direct_ns_per_cmd(std::uint32_t threads) {
  MpmcQueue<std::uint64_t> queue(1 << 16);
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    std::uint64_t v;
    while (!stop.load(std::memory_order_relaxed)) {
      bool any = false;
      while (queue.pop(&v)) any = true;
      // Back off when the queue runs dry instead of spinning on the head
      // CAS: a hot-spinning drainer steals cycles from the producers under
      // measurement and skews the per-command figure on small machines.
      if (!any) std::this_thread::yield();
    }
  });
  StopWatch watch;
  std::vector<std::thread> producers;
  for (std::uint32_t t = 0; t < threads; ++t)
    producers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kCmdsPerThread; ++i)
        while (!queue.push(i)) std::this_thread::yield();
    });
  for (auto& p : producers) p.join();
  const double seconds = watch.elapsed_s();
  stop.store(true);
  drainer.join();
  return seconds * 1e9 / static_cast<double>(threads * kCmdsPerThread);
}

// Commands append to a thread-local block; the shared queue sees one push
// per 64 commands (GMT's design).
double preagg_ns_per_cmd(std::uint32_t threads) {
  MpmcQueue<std::uint64_t> queue(1 << 16);
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    std::uint64_t v;
    while (!stop.load(std::memory_order_relaxed)) {
      bool any = false;
      while (queue.pop(&v)) any = true;
      // Back off when the queue runs dry instead of spinning on the head
      // CAS: a hot-spinning drainer steals cycles from the producers under
      // measurement and skews the per-command figure on small machines.
      if (!any) std::this_thread::yield();
    }
  });
  StopWatch watch;
  std::vector<std::thread> producers;
  for (std::uint32_t t = 0; t < threads; ++t)
    producers.emplace_back([&] {
      rt::CommandBlock block(64 * 64, 64);
      rt::CmdHeader header;
      header.op = rt::Op::kPutValue;
      std::uint64_t pushed = 0;
      for (std::uint64_t i = 0; i < kCmdsPerThread; ++i) {
        if (!block.fits(rt::kCmdHeaderSize)) {
          block.reset();
          while (!queue.push(++pushed)) std::this_thread::yield();
        }
        header.aux1 = i;
        rt::encode_cmd(block.append(rt::kCmdHeaderSize, 0), header, nullptr);
      }
    });
  for (auto& p : producers) p.join();
  const double seconds = watch.elapsed_s();
  stop.store(true);
  drainer.join();
  return seconds * 1e9 / static_cast<double>(threads * kCmdsPerThread);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::BenchJson json("preagg");
  json.set_config("cmds_per_thread", kCmdsPerThread);

  bench::Table table({"producer threads", "direct MPMC ns/cmd",
                      "pre-aggregated ns/cmd", "speedup"});
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    const double direct = direct_ns_per_cmd(threads);
    const double preagg = preagg_ns_per_cmd(threads);
    table.add_row({bench::fmt_u64(threads), bench::fmt("%.1f", direct),
                   bench::fmt("%.1f", preagg),
                   bench::fmt("%.1fx", direct / preagg)});
    // Thread count tagged into the metric name: the speedup is a function
    // of producer contention, so the records are not comparable across
    // thread counts and must not collapse into one series.
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "t%u", threads);
    json.add_metric(std::string(prefix) + "_direct_ns_per_cmd", direct, "ns");
    json.add_metric(std::string(prefix) + "_preagg_ns_per_cmd", preagg, "ns");
    json.add_metric(std::string(prefix) + "_speedup", direct / preagg, "x");
  }
  table.print("Ablation: per-command shared-queue access vs command blocks");
  table.write_csv(args.csv_path);
  json.write(args.json_path);
  return 0;
}
