// Shared benchmark-harness helpers: aligned table printing, CSV emission,
// and a --scale flag so every bench can run quickly by default yet approach
// paper-scale workloads on capable machines.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace gmt::bench {

// Parses "--scale=N" (workload multiplier), "--csv=path" and "--json=path".
struct BenchArgs {
  double scale = 1.0;
  std::string csv_path;
  std::string json_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0)
        args.scale = std::atof(argv[i] + 8);
      else if (std::strncmp(argv[i], "--csv=", 6) == 0)
        args.csv_path = argv[i] + 6;
      else if (std::strncmp(argv[i], "--json=", 7) == 0)
        args.json_path = argv[i] + 7;
    }
    if (args.scale <= 0) args.scale = 1.0;
    return args;
  }
};

// Accumulates rows, prints an aligned table, optionally writes CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(const char* title) const {
    std::printf("\n== %s ==\n", title);
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    const auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
      std::printf("\n");
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
  }

  void write_csv(const std::string& path) const {
    if (path.empty()) return;
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return;
    const auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::fprintf(f, "%s%s", cells[c].c_str(),
                     c + 1 < cells.size() ? "," : "\n");
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
    std::fclose(f);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Machine-readable perf record: one BENCH_<name>.json per benchmark holding
// the config that produced the run and a flat metric list. Committed records
// form the repo's perf trajectory — regressions show up as a diff, and
// scripts/check.sh --bench-smoke refreshes the smoke-sized ones.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void set_config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, value);
  }
  void set_config(const std::string& key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    config_.emplace_back(key, buf);
  }

  void add_metric(const std::string& name, double value,
                  const std::string& unit) {
    metrics_.push_back(Metric{name, value, unit});
  }

  // Writes to `path`, or to BENCH_<name>.json in the working directory when
  // path is empty.
  bool write(const std::string& path = "") const {
    const std::string file = path.empty() ? "BENCH_" + name_ + ".json" : path;
    FILE* f = std::fopen(file.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": {",
                 name_.c_str());
    for (std::size_t i = 0; i < config_.size(); ++i)
      std::fprintf(f, "%s\n    \"%s\": \"%s\"", i ? "," : "",
                   config_[i].first.c_str(), config_[i].second.c_str());
    std::fprintf(f, "\n  },\n  \"metrics\": [");
    for (std::size_t i = 0; i < metrics_.size(); ++i)
      std::fprintf(
          f, "%s\n    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}",
          i ? "," : "", metrics_[i].name.c_str(), metrics_[i].value,
          metrics_[i].unit.c_str());
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", file.c_str());
    return true;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
  };
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<Metric> metrics_;
};

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string fmt_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace gmt::bench
