// Shared benchmark-harness helpers: aligned table printing, CSV emission,
// and a --scale flag so every bench can run quickly by default yet approach
// paper-scale workloads on capable machines.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace gmt::bench {

// Parses "--scale=N" (workload multiplier) and "--csv=path".
struct BenchArgs {
  double scale = 1.0;
  std::string csv_path;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0)
        args.scale = std::atof(argv[i] + 8);
      else if (std::strncmp(argv[i], "--csv=", 6) == 0)
        args.csv_path = argv[i] + 6;
    }
    if (args.scale <= 0) args.scale = 1.0;
    return args;
  }
};

// Accumulates rows, prints an aligned table, optionally writes CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(const char* title) const {
    std::printf("\n== %s ==\n", title);
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    const auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
      std::printf("\n");
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
  }

  void write_csv(const std::string& path) const {
    if (path.empty()) return;
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return;
    const auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::fprintf(f, "%s%s", cells[c].c_str(),
                     c + 1 < cells.size() ? "," : "\n");
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
    std::fclose(f);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string fmt_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace gmt::bench
