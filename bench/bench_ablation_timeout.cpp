// Ablation: command/buffer flush deadline sweep (paper §IV-C condition
// (ii)). Short deadlines cut sparse-traffic latency but ship small
// buffers; long deadlines maximise coalescing but stall low-concurrency
// workloads. Reported at both a starved and a saturated task count.
#include "bench_util.hpp"
#include "sim/workloads_micro.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::Table table({"flush deadline us", "rate @256 tasks MB/s",
                      "rate @8192 tasks MB/s"});
  for (double timeout_us : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    std::vector<std::string> row{bench::fmt("%.0f", timeout_us)};
    for (std::uint64_t tasks : {256ull, 8192ull}) {
      sim::PutBenchParams params;
      params.nodes = 2;
      params.tasks = tasks;
      params.puts_per_task = static_cast<std::uint64_t>(48 * args.scale);
      params.put_size = 16;
      params.config.agg_timeout_s = timeout_us * 1e-6;
      row.push_back(
          bench::fmt("%.2f", sim::put_bench_gmt(params).payload_rate_MBps()));
    }
    table.add_row(std::move(row));
  }
  table.print("Ablation: flush deadline vs throughput");
  table.write_csv(args.csv_path);
  return 0;
}
