// Ablation: command/buffer flush deadline sweep (paper §IV-C condition
// (ii)). Short deadlines cut sparse-traffic latency but ship small
// buffers; long deadlines maximise coalescing but stall low-concurrency
// workloads. Reported at both a starved and a saturated task count, plus
// an adaptive-flush row (GMT_ADAPTIVE_FLUSH): the controller must match
// the best fixed deadline without hand-tuning — BENCH_flowcontrol.json
// records the comparison.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "sim/workloads_micro.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  const std::vector<std::uint64_t> task_counts{256ull, 8192ull};
  auto run = [&](double timeout_us, bool adaptive, std::uint64_t tasks) {
    sim::PutBenchParams params;
    params.nodes = 2;
    params.tasks = tasks;
    params.puts_per_task = static_cast<std::uint64_t>(48 * args.scale);
    params.put_size = 16;
    params.config.agg_timeout_s = timeout_us * 1e-6;
    params.config.adaptive_flush = adaptive;
    return sim::put_bench_gmt(params).payload_rate_MBps();
  };

  bench::Table table({"flush deadline us", "rate @256 tasks MB/s",
                      "rate @8192 tasks MB/s"});
  const std::vector<double> sweep{2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0};
  // [task count index] -> per-sweep-point rates, for the summary metrics.
  std::vector<std::vector<double>> fixed(task_counts.size());
  for (double timeout_us : sweep) {
    std::vector<std::string> row{bench::fmt("%.0f", timeout_us)};
    for (std::size_t t = 0; t < task_counts.size(); ++t) {
      const double rate = run(timeout_us, /*adaptive=*/false, task_counts[t]);
      fixed[t].push_back(rate);
      row.push_back(bench::fmt("%.2f", rate));
    }
    table.add_row(std::move(row));
  }
  std::vector<double> adaptive(task_counts.size());
  {
    std::vector<std::string> row{"adaptive"};
    for (std::size_t t = 0; t < task_counts.size(); ++t) {
      // Deliberately mis-seeded at 25us (5x the sweep optimum): the AIMD
      // controller must converge down on its own to count as adaptive.
      adaptive[t] = run(25.0, /*adaptive=*/true, task_counts[t]);
      row.push_back(bench::fmt("%.2f", adaptive[t]));
    }
    table.add_row(std::move(row));
  }
  table.print("Ablation: flush deadline vs throughput");
  table.write_csv(args.csv_path);

  bench::BenchJson json("flowcontrol");
  json.set_config("nodes", 2);
  json.set_config("put_size", 16);
  json.set_config("sweep_us", "2,5,10,25,50,100,200,400,800");
  for (std::size_t t = 0; t < task_counts.size(); ++t) {
    const std::string tag = bench::fmt_u64(task_counts[t]) + "_tasks";
    const auto minmax =
        std::minmax_element(fixed[t].begin(), fixed[t].end());
    json.add_metric("fixed_best_" + tag, *minmax.second, "MB/s");
    json.add_metric("fixed_worst_" + tag, *minmax.first, "MB/s");
    json.add_metric("fixed_small_extreme_" + tag, fixed[t].front(), "MB/s");
    json.add_metric("fixed_large_extreme_" + tag, fixed[t].back(), "MB/s");
    json.add_metric("adaptive_" + tag, adaptive[t], "MB/s");
    json.add_metric("adaptive_vs_best_" + tag,
                    *minmax.second > 0 ? adaptive[t] / *minmax.second : 0,
                    "ratio");
  }
  json.write();
  return 0;
}
