// Paper Figure 11: CHMA throughput for the hand-coded MPI implementation
// on the same axes as Figure 10. Paper observation: "the performance
// between the GMT and the MPI implementations differs by two or more
// orders of magnitude, because of the fine grained communication involved
// in the kernel" — each MPI process blocks on every string until the owner
// replies.
#include "bench_util.hpp"
#include "sim/workloads_chma.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  // W per node, matching the GMT figure's weak-scaled workload.
  bench::Table table({"nodes", "W=128/node L=8", "W=512/node L=8",
                      "W=1280/node L=8", "GMT/MPI @W=1280"});
  for (std::uint32_t nodes : {2u, 8u, 32u, 128u}) {
    std::vector<std::string> row{bench::fmt_u64(nodes)};
    double mpi_large = 0;
    for (auto [tasks_per_node, steps] :
         {std::pair{128ull, 8ull}, {512ull, 8ull}, {1280ull, 8ull}}) {
      sim::ChmaSimParams params;
      params.nodes = nodes;
      params.tasks = tasks_per_node * nodes;
      params.steps = steps;
      params.map_capacity =
          static_cast<std::uint64_t>((1 << 17) * args.scale);
      params.pool_size = static_cast<std::uint64_t>((1 << 15) * args.scale);
      params.populate = params.pool_size / 2;
      const double rate = sim::sim_chma_mpi(params, {}).maccesses_per_s();
      if (tasks_per_node == 1280ull) mpi_large = rate;
      row.push_back(bench::fmt("%.4f", rate));
    }
    // The headline ratio against the GMT series of Figure 10.
    sim::ChmaSimParams params;
    params.nodes = nodes;
    params.tasks = 1280ull * nodes;
    params.steps = 8;
    params.map_capacity = static_cast<std::uint64_t>((1 << 17) * args.scale);
    params.pool_size = static_cast<std::uint64_t>((1 << 15) * args.scale);
    params.populate = params.pool_size / 2;
    const double gmt_rate = sim::sim_chma_gmt(params, {}, {}).maccesses_per_s();
    row.push_back(bench::fmt("%.0fx", gmt_rate / (mpi_large > 0 ? mpi_large
                                                                : 1e-9)));
    table.add_row(std::move(row));
  }
  table.print("Figure 11: CHMA MPI throughput (Macc/s) + GMT ratio");
  table.write_csv(args.csv_path);

  std::printf("\nshape target: MPI flat in W (rank-serial), far below GMT; "
              "paper reports a 2+ order gap\n");
  return 0;
}
