// Paper Figure 8: BFS strong scaling on a fixed random graph (paper: 10M
// vertices / 2.5B edges, bounded by the Cray XMT's 1 TB): GMT vs UPC vs
// Cray XMT.
//
// Shape targets: GMT scales and outperforms UPC by orders of magnitude;
// UPC does not scale (the paper could not complete runs beyond 16 nodes
// in reasonable time); the XMT is competitive with GMT. The UPC series is
// capped at 16 nodes here too — not because the simulation cannot run it,
// but to mirror the paper's protocol (and the simulated times already
// show the flat trend).
#include "bench_util.hpp"
#include "graph/generator.hpp"
#include "sim/workloads_graph.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto vertices =
      static_cast<std::uint64_t>(50000 * args.scale);  // paper: 10M

  const auto csr = graph::build_csr(
      vertices, graph::generate_uniform({vertices, 6, 30, 7}));
  std::printf("graph: %llu vertices, %llu edges\n",
              static_cast<unsigned long long>(vertices),
              static_cast<unsigned long long>(csr.edges()));

  bench::Table table(
      {"nodes", "GMT MTEPS", "UPC MTEPS", "XMT MTEPS (model)"});
  for (std::uint32_t nodes : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto gmt_result = sim::sim_bfs_gmt(csr, nodes, 0, {}, {});
    std::string upc = "-";
    if (nodes <= 16)
      upc = bench::fmt("%.2f", sim::sim_bfs_upc(csr, nodes, 0, {}).mteps());
    const auto xmt_result = sim::sim_bfs_xmt(csr, nodes, 0);
    table.add_row({bench::fmt_u64(nodes),
                   bench::fmt("%.2f", gmt_result.mteps()), upc,
                   bench::fmt("%.2f", xmt_result.mteps())});
  }
  table.print("Figure 8: BFS strong scaling, GMT vs UPC vs Cray XMT");
  table.write_csv(args.csv_path);

  std::printf("\nshape targets: GMT >> UPC (orders of magnitude); GMT "
              "competitive with XMT; GMT gains flatten at high node counts "
              "as per-node parallelism runs out (paper: above 64 nodes)\n");
  return 0;
}
