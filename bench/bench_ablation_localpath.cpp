// Ablation: the node-local fast path (execute local commands in the
// issuing worker) vs routing every command through helpers and the
// loopback. Real-runtime measurement on this host: node-local puts/atomics
// with the fast path toggled.
#include <cstring>

#include "bench_util.hpp"
#include "common/time.hpp"
#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

struct BenchState {
  std::uint64_t ops;
  double seconds;
};

void local_ops_root(std::uint64_t, const void* raw) {
  BenchState* state;
  std::memcpy(&state, raw, sizeof(state));
  // kLocal allocation: every access is node-local from the root's node.
  const gmt::gmt_handle h = gmt::gmt_new(1 << 16, gmt::Alloc::kLocal);
  gmt::StopWatch watch;
  for (std::uint64_t i = 0; i < state->ops; ++i) {
    gmt::gmt_put_value(h, (i % 4096) * 8, i, 8);
    gmt::gmt_atomic_add(h, (i % 4096) * 8, 1, 8);
  }
  state->seconds = watch.elapsed_s();
  gmt::gmt_free(h);
}

double run(bool fast_path, std::uint64_t ops) {
  gmt::Config config = gmt::Config::testing();
  config.local_fast_path = fast_path;
  gmt::rt::Cluster cluster(2, config);
  BenchState state{ops, 0};
  BenchState* ptr = &state;
  cluster.run(&local_ops_root, &ptr, sizeof(ptr));
  return state.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = gmt::bench::BenchArgs::parse(argc, argv);
  const auto ops = static_cast<std::uint64_t>(20000 * args.scale);

  const double with = run(true, ops);
  const double without = run(false, ops);

  gmt::bench::Table table({"mode", "seconds", "Mops/s"});
  table.add_row({"fast path ON", gmt::bench::fmt("%.4f", with),
                 gmt::bench::fmt("%.2f", 2.0 * ops / with / 1e6)});
  table.add_row({"fast path OFF (via helpers)",
                 gmt::bench::fmt("%.4f", without),
                 gmt::bench::fmt("%.2f", 2.0 * ops / without / 1e6)});
  table.add_row({"speedup", gmt::bench::fmt("%.1fx", without / with), ""});
  table.print("Ablation: node-local fast path (real runtime, this host)");
  table.write_csv(args.csv_path);
  return 0;
}
