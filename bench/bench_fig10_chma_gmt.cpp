// Paper Figure 10: Concurrent Hash Map Access throughput (million accesses
// per second) for GMT, while increasing cluster nodes and varying the
// number of concurrent tasks W and the steps per task L. Paper workload:
// 100M-string pool, 10M-entry map (scaled here; --scale grows it).
#include "bench_util.hpp"
#include "sim/workloads_chma.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  // W is per node (the workload weak-scales with the cluster, like the
  // paper's other kernels); L is steps per task.
  bench::Table table({"nodes", "W=128/node L=8", "W=512/node L=8",
                      "W=1280/node L=8", "W=1280/node L=32"});
  for (std::uint32_t nodes : {2u, 8u, 32u, 128u}) {
    std::vector<std::string> row{bench::fmt_u64(nodes)};
    for (auto [tasks_per_node, steps] :
         {std::pair{128ull, 8ull}, {512ull, 8ull}, {1280ull, 8ull},
          {1280ull, 32ull}}) {
      sim::ChmaSimParams params;
      params.nodes = nodes;
      params.tasks = tasks_per_node * nodes;
      params.steps = steps;
      params.map_capacity =
          static_cast<std::uint64_t>((1 << 17) * args.scale);  // paper: 10M
      params.pool_size =
          static_cast<std::uint64_t>((1 << 15) * args.scale);  // paper: 100M
      params.populate = params.pool_size / 2;
      const auto result = sim::sim_chma_gmt(params, {}, {});
      row.push_back(bench::fmt("%.3f", result.maccesses_per_s()));
    }
    table.add_row(std::move(row));
  }
  table.print("Figure 10: CHMA GMT throughput (Macc/s)");
  table.write_csv(args.csv_path);

  std::printf("\nshape target: throughput grows with W (more concurrency "
              "to aggregate) and with nodes\n");
  return 0;
}
