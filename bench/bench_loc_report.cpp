// Programming-effort comparison (paper §V-B/§V-C): source lines of the
// kernels under each programming model. The paper reports ~80 LoC for the
// GMT/XMT BFS vs ~700 for the optimised UPC BFS, and an MPI GRW 15x longer
// than the GMT version. This tool counts non-blank, non-comment lines of
// this repository's kernels at run time.
#include <cctype>
#include <fstream>
#include <string>

#include "bench_util.hpp"

#ifndef GMT_SOURCE_DIR
#define GMT_SOURCE_DIR "."
#endif

namespace {

std::uint64_t count_loc(const std::string& relative) {
  std::ifstream in(std::string(GMT_SOURCE_DIR) + "/" + relative);
  if (!in) return 0;
  std::uint64_t lines = 0;
  std::string line;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size()) continue;
    if (in_block_comment) {
      if (line.find("*/") != std::string::npos) in_block_comment = false;
      continue;
    }
    if (line.compare(i, 2, "//") == 0) continue;
    if (line.compare(i, 2, "/*") == 0 &&
        line.find("*/", i + 2) == std::string::npos) {
      in_block_comment = true;
      continue;
    }
    ++lines;
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = gmt::bench::BenchArgs::parse(argc, argv);
  using gmt::bench::fmt_u64;

  const std::uint64_t bfs_gmt = count_loc("src/kernels/bfs_gmt.cpp");
  const std::uint64_t bfs_upc = count_loc("src/baselines/bfs_upc.cpp") +
                                count_loc("src/baselines/upc_like.cpp");
  const std::uint64_t grw_gmt = count_loc("src/kernels/grw_gmt.cpp");
  const std::uint64_t grw_mpi = count_loc("src/baselines/grw_mpi.cpp") +
                                count_loc("src/baselines/mpi_like.cpp");
  const std::uint64_t chma_gmt = count_loc("src/kernels/chma_gmt.cpp");
  const std::uint64_t chma_mpi = count_loc("src/baselines/chma_mpi.cpp");

  gmt::bench::Table table({"kernel", "GMT LoC", "baseline LoC", "ratio"});
  table.add_row({"BFS (vs UPC + its runtime)", fmt_u64(bfs_gmt),
                 fmt_u64(bfs_upc),
                 gmt::bench::fmt("%.1fx", bfs_gmt ? static_cast<double>(
                                                        bfs_upc) /
                                                        bfs_gmt
                                                  : 0)});
  table.add_row({"GRW (vs MPI + its runtime)", fmt_u64(grw_gmt),
                 fmt_u64(grw_mpi),
                 gmt::bench::fmt("%.1fx", grw_gmt ? static_cast<double>(
                                                        grw_mpi) /
                                                        grw_gmt
                                                  : 0)});
  table.add_row({"CHMA (vs MPI kernel only)", fmt_u64(chma_gmt),
                 fmt_u64(chma_mpi),
                 gmt::bench::fmt("%.1fx", chma_gmt ? static_cast<double>(
                                                         chma_mpi) /
                                                         chma_gmt
                                                   : 0)});
  table.print("Programming effort: kernel source lines by model");
  table.write_csv(args.csv_path);

  std::printf("\npaper: BFS ~80 LoC (GMT/XMT) vs ~700 (UPC); MPI GRW 15x "
              "the GMT source\n");
  std::printf("note: baseline counts include the hand-rolled runtime "
              "support the application programmer must own under that "
              "model.\n");
  return 0;
}
