// Ablation: the integer histogram-sort (count → scan → shuffle) over the
// combining layer. Sweeps key skew (Zipf s) with GMT_COMBINE on vs off,
// recording per-phase wall time, end-to-end sort throughput and wire
// commands. Skewed keys concentrate both the counting atomics and the
// shuffle's cursor fetch-adds on a few hot buckets — exactly the traffic
// the combining table elides — so the command reduction must grow with s
// while the sorted output stays bit-exact against the std::sort oracle at
// every swept configuration (the bench aborts on any mismatch).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "gmt/gmt.hpp"
#include "gmt/obs.hpp"
#include "kernels/sort_gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace gmt;

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kBuckets = 512;

// Root-task context: cluster.run takes a plain function, so the bench
// threads its state through a global (single-threaded driver).
struct RunContext {
  const std::vector<std::uint64_t>* keys = nullptr;
  const std::vector<std::uint64_t>* oracle = nullptr;
  gmt_handle handle = kNullHandle;
  kernels::SortResult result;
  bool exact = false;
} g_ctx;

void upload_root(std::uint64_t, const void*) {
  g_ctx.handle = kernels::upload_keys(*g_ctx.keys);
}

void sort_root(std::uint64_t, const void*) {
  const std::uint64_t n = g_ctx.keys->size();
  g_ctx.result = kernels::sort_gmt(g_ctx.handle, n, kBuckets,
                                   kernels::HistogramMode::kDirect);

  // Oracle check: the sorted array must match std::sort bit-exactly.
  std::vector<std::uint64_t> sorted(n);
  constexpr std::uint64_t kChunk = 4096;
  for (std::uint64_t i = 0; i < n; i += kChunk) {
    const std::uint64_t count = n - i < kChunk ? n - i : kChunk;
    gmt_get(g_ctx.result.sorted, i * 8, sorted.data() + i, count * 8);
  }
  g_ctx.exact = sorted == *g_ctx.oracle;

  kernels::sort_free(g_ctx.result);
  gmt_free(g_ctx.handle);
  g_ctx.handle = kNullHandle;
}

std::uint64_t wire_commands(rt::Cluster& cluster) {
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    total += cluster.node(n).obs().snapshot().counter(
        obs::names::kAggCommands);
  return total;
}

struct RunResult {
  double count_s = 0;
  double scan_s = 0;
  double shuffle_s = 0;
  double total_s = 0;
  double mkeys = 0;        // sorted keys per second, in millions
  std::uint64_t cmds = 0;  // wire commands of the sort only
};

RunResult run_once(const std::vector<std::uint64_t>& keys,
                   const std::vector<std::uint64_t>& oracle, bool combine) {
  Config config;
  config.combine = combine;
  config.pin_threads = false;  // benches share one oversubscribed host
  rt::Cluster cluster(kNodes, config);

  g_ctx.keys = &keys;
  g_ctx.oracle = &oracle;
  cluster.run(&upload_root);
  const std::uint64_t before = wire_commands(cluster);
  cluster.run(&sort_root);
  RunResult r;
  r.cmds = wire_commands(cluster) - before;
  r.count_s = g_ctx.result.count_seconds;
  r.scan_s = g_ctx.result.scan_seconds;
  r.shuffle_s = g_ctx.result.shuffle_seconds;
  r.total_s = g_ctx.result.seconds;
  r.mkeys = static_cast<double>(keys.size()) / g_ctx.result.seconds / 1e6;
  if (!g_ctx.exact) {
    std::fprintf(stderr,
                 "FATAL: sorted output diverged from the std::sort oracle "
                 "(combine=%d, n=%zu)\n",
                 combine ? 1 : 0, keys.size());
    std::exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto n = static_cast<std::uint64_t>(200'000 * args.scale);

  bench::BenchJson json("sort");
  json.set_config("nodes", kNodes);
  json.set_config("keys", n);
  json.set_config("buckets", kBuckets);

  bench::Table table({"zipf s", "combine", "count s", "scan s", "shuffle s",
                      "total s", "M keys/s", "wire cmds", "cmds off/on",
                      "keys/s on/off"});
  for (const double s : {0.0, 0.75, 1.0, 1.5}) {
    const auto keys = kernels::make_zipf_keys(n, kBuckets, s, 0xc0ffee);
    std::vector<std::uint64_t> oracle = keys;
    std::sort(oracle.begin(), oracle.end());

    const RunResult off = run_once(keys, oracle, false);
    const RunResult on = run_once(keys, oracle, true);

    const double cmd_reduction =
        static_cast<double>(off.cmds) / static_cast<double>(on.cmds);
    const double speedup = on.mkeys / off.mkeys;
    table.add_row({bench::fmt("%.2f", s), "off",
                   bench::fmt("%.3f", off.count_s),
                   bench::fmt("%.3f", off.scan_s),
                   bench::fmt("%.3f", off.shuffle_s),
                   bench::fmt("%.3f", off.total_s),
                   bench::fmt("%.2f", off.mkeys), bench::fmt_u64(off.cmds),
                   "", ""});
    table.add_row({bench::fmt("%.2f", s), "on",
                   bench::fmt("%.3f", on.count_s),
                   bench::fmt("%.3f", on.scan_s),
                   bench::fmt("%.3f", on.shuffle_s),
                   bench::fmt("%.3f", on.total_s),
                   bench::fmt("%.2f", on.mkeys), bench::fmt_u64(on.cmds),
                   bench::fmt("%.2fx", cmd_reduction),
                   bench::fmt("%.2fx", speedup)});

    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "s%.2f", s);
    json.add_metric(std::string(prefix) + "_cmds_off",
                    static_cast<double>(off.cmds), "commands");
    json.add_metric(std::string(prefix) + "_cmds_on",
                    static_cast<double>(on.cmds), "commands");
    json.add_metric(std::string(prefix) + "_cmd_reduction", cmd_reduction,
                    "x");
    json.add_metric(std::string(prefix) + "_mkeys_off", off.mkeys, "Mkeys/s");
    json.add_metric(std::string(prefix) + "_mkeys_on", on.mkeys, "Mkeys/s");
    json.add_metric(std::string(prefix) + "_speedup", speedup, "x");
    json.add_metric(std::string(prefix) + "_count_s_on", on.count_s, "s");
    json.add_metric(std::string(prefix) + "_scan_s_on", on.scan_s, "s");
    json.add_metric(std::string(prefix) + "_shuffle_s_on", on.shuffle_s, "s");
  }

  table.print("Ablation: histogram-sort over the combining layer");
  table.write_csv(args.csv_path);
  json.write(args.json_path);
  return 0;
}
