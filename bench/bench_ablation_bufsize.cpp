// Ablation: aggregation buffer size sweep. The paper picks 64 KB as "a
// good compromise" between bandwidth and memory footprint (§IV-B); this
// sweep shows the saturating curve that motivates it.
#include "bench_util.hpp"
#include "sim/workloads_micro.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::Table table({"buffer size", "rate MB/s", "msgs", "bytes/msg"});
  for (std::uint32_t size = 4 * 1024; size <= 256 * 1024; size *= 2) {
    sim::PutBenchParams params;
    params.nodes = 2;
    params.tasks = 8192;
    params.puts_per_task = static_cast<std::uint64_t>(48 * args.scale);
    params.put_size = 16;
    params.config.buffer_size = size;
    const auto result = sim::put_bench_gmt(params);
    table.add_row(
        {bench::fmt_u64(size),
         bench::fmt("%.2f", result.payload_rate_MBps()),
         bench::fmt_u64(result.messages),
         bench::fmt("%.0f", result.messages
                                ? static_cast<double>(result.wire_bytes) /
                                      result.messages
                                : 0)});
  }
  table.print("Ablation: aggregation buffer size (paper sweet spot: 64 KB)");
  table.write_csv(args.csv_path);
  return 0;
}
