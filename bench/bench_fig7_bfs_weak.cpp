// Paper Figure 7: BFS weak scaling — MTEPS while growing the cluster with
// a fixed number of vertices per node (paper: 1M vertices/node with up to
// 4000 random edges each, 2 TB at 128 nodes; scaled down here, use
// --scale to grow).
#include "bench_util.hpp"
#include "graph/generator.hpp"
#include "sim/workloads_graph.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto vertices_per_node =
      static_cast<std::uint64_t>(4000 * args.scale);  // paper: 1M

  bench::Table table({"nodes", "vertices", "edges", "levels", "MTEPS"});
  for (std::uint32_t nodes : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const std::uint64_t vertices = vertices_per_node * nodes;
    const auto csr = graph::build_csr(
        vertices,
        graph::generate_uniform({vertices, 2, 16, 42}));  // paper: <=4000
    const auto result = sim::sim_bfs_gmt(csr, nodes, 0, {}, {});
    table.add_row({bench::fmt_u64(nodes), bench::fmt_u64(vertices),
                   bench::fmt_u64(csr.edges()),
                   bench::fmt_u64(result.levels),
                   bench::fmt("%.2f", result.mteps())});
  }
  table.print("Figure 7: GMT BFS weak scaling (MTEPS)");
  table.write_csv(args.csv_path);

  std::printf("\nshape target: near-linear MTEPS growth with nodes "
              "(weak scaling holds)\n");
  return 0;
}
