// google-benchmark microbenchmarks of the runtime's building blocks:
// channel queues (SPSC), aggregation queues (MPMC), pools, the command
// codec and the context switch. These are the per-operation costs the
// simulator's GmtCosts are sanity-checked against.
#include <benchmark/benchmark.h>

#include "collections/mpmc_queue.hpp"
#include "collections/pool.hpp"
#include "collections/spsc_ring.hpp"
#include "runtime/command.hpp"
#include "uthread/context.hpp"
#include "uthread/stack.hpp"

namespace {

using namespace gmt;

void BM_SpscPushPop(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    ring.push(1);
    ring.pop(&v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SpscPushPop);

void BM_MpmcPushPop(benchmark::State& state) {
  MpmcQueue<std::uint64_t> queue(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    queue.push(1);
    queue.pop(&v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MpmcPushPop);

void BM_PoolAcquireRelease(benchmark::State& state) {
  ObjectPool<std::uint64_t> pool(64);
  for (auto _ : state) {
    std::uint64_t* obj = pool.try_acquire();
    benchmark::DoNotOptimize(obj);
    pool.release(obj);
  }
}
BENCHMARK(BM_PoolAcquireRelease);

void BM_CommandEncode(benchmark::State& state) {
  std::uint8_t wire[256];
  std::uint8_t payload[16] = {};
  rt::CmdHeader header;
  header.op = rt::Op::kPut;
  header.payload_size = 16;
  for (auto _ : state) {
    rt::encode_cmd(wire, header, payload);
    benchmark::DoNotOptimize(wire[0]);
  }
}
BENCHMARK(BM_CommandEncode);

void BM_CommandDecode(benchmark::State& state) {
  std::uint8_t wire[256];
  std::uint8_t payload[16] = {};
  rt::CmdHeader header;
  header.op = rt::Op::kPut;
  header.payload_size = 16;
  rt::encode_cmd(wire, header, payload);
  for (auto _ : state) {
    std::size_t pos = 0;
    const std::uint8_t* out;
    const rt::CmdHeader h = rt::decode_cmd(wire, sizeof(wire), &pos, &out);
    benchmark::DoNotOptimize(h.token);
  }
}
BENCHMARK(BM_CommandDecode);

Context g_main, g_task;

void switch_body(void*) {
  for (;;) switch_context(&g_task, g_main);
}

void BM_ContextSwitchRoundTrip(benchmark::State& state) {
  Stack stack(32 * 1024);
  g_task = make_context(stack.base(), stack.size(), &switch_body, nullptr);
  for (auto _ : state) switch_context(&g_main, g_task);
}
BENCHMARK(BM_ContextSwitchRoundTrip);

}  // namespace

BENCHMARK_MAIN();
