// Ablation: aggregation on vs off at equal task counts (the paper's first
// pillar isolated). With aggregation disabled every command ships as its
// own network message and pays full per-message overhead.
#include "bench_util.hpp"
#include "sim/workloads_micro.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::Table table({"tasks", "agg ON MB/s", "agg OFF MB/s", "speedup",
                      "msgs ON", "msgs OFF"});
  for (std::uint64_t tasks : {64ull, 512ull, 4096ull}) {
    sim::PutBenchParams params;
    params.nodes = 2;
    params.tasks = tasks;
    params.puts_per_task = static_cast<std::uint64_t>(64 * args.scale);
    params.put_size = 16;
    const auto on = sim::put_bench_gmt(params);
    params.config.aggregation_enabled = false;
    const auto off = sim::put_bench_gmt(params);
    table.add_row(
        {bench::fmt_u64(tasks), bench::fmt("%.2f", on.payload_rate_MBps()),
         bench::fmt("%.2f", off.payload_rate_MBps()),
         bench::fmt("%.1fx",
                    on.payload_rate_MBps() / off.payload_rate_MBps()),
         bench::fmt_u64(on.messages), bench::fmt_u64(off.messages)});
  }
  table.print("Ablation: message aggregation on/off (16B blocking puts)");
  table.write_csv(args.csv_path);
  return 0;
}
