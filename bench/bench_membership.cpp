// Membership-layer cost model, real runtime on this host:
//   1. detection latency — a peer goes dark and we time the pipeline
//      kill -> first suspicion -> committed exclusion epoch on the
//      coordinator (heartbeat silence is the detector; the suspect
//      timeout dominates);
//   2. failure-free overhead — BFS throughput with the failure detector
//      (heartbeats, pending-op tracking) and with buddy replication on
//      top, against a reliable-transport-only baseline.
// Emits BENCH_membership.json for the committed perf trajectory.
#include <cstring>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "gmt/gmt.hpp"
#include "graph/generator.hpp"
#include "kernels/bfs_gmt.hpp"
#include "net/faulty_transport.hpp"
#include "runtime/cluster.hpp"
#include "runtime/membership.hpp"

namespace {

using namespace gmt;

Config base_config() {
  Config config = Config::testing();
  config.reliable_transport = true;
  return config;
}

void wait_epoch_root(std::uint64_t, const void*) {
  while (gmt_membership_epoch() == 0) gmt_yield();
  gmt_clear_error();
}

struct DetectionSample {
  double suspect_us;  // kill -> first suspicion on the coordinator
  double commit_us;   // kill -> epoch commit on the coordinator
};

DetectionSample measure_detection(std::uint64_t seed) {
  Config config = base_config();
  config.membership = true;
  config.fault.kill_node = 2;
  config.fault.kill_at = 0;  // dark from its first send
  config.fault.seed = seed;

  rt::Cluster cluster(3, config);
  cluster.run(&wait_epoch_root, nullptr, 0);

  const net::FaultyTransport* victim = cluster.faulty_transport(2);
  const rt::MembershipManager* m0 = cluster.node(0).membership();
  // Saturating: with no app traffic the observer's silence timer (which
  // baselines at startup) can expire marginally before the victim's first
  // swallowed send stamps killed_ns — that is a zero-latency detection,
  // not a negative one.
  const auto since_kill = [&](std::uint64_t ns) {
    const std::uint64_t killed = victim->killed_ns();
    return ns > killed ? (ns - killed) / 1e3 : 0.0;
  };
  DetectionSample sample{};
  sample.suspect_us = since_kill(m0->first_suspect_ns());
  sample.commit_us = since_kill(m0->last_commit_ns());
  return sample;
}

struct BfsState {
  const graph::Csr* csr;
  kernels::BfsResult result;
};

void bfs_root(std::uint64_t, const void* raw) {
  BfsState* state;
  std::memcpy(&state, raw, sizeof(state));
  graph::DistGraph dist = graph::DistGraph::build(*state->csr);
  state->result = kernels::bfs_gmt(dist, 0);
  dist.destroy();
}

// Best-of-`reps` fault-free BFS time under the given feature set.
double bfs_seconds(const graph::Csr& csr, bool membership, bool replicate,
                   int reps) {
  Config config = base_config();
  config.membership = membership;
  config.replicate = replicate;
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    rt::Cluster cluster(3, config);
    BfsState state{&csr, {}};
    BfsState* ptr = &state;
    cluster.run(&bfs_root, &ptr, sizeof(ptr));
    if (best == 0 || state.result.seconds < best)
      best = state.result.seconds;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto trials = static_cast<int>(5 * args.scale) > 1
                          ? static_cast<int>(5 * args.scale)
                          : 1;
  const auto vertices = static_cast<std::uint64_t>(4000 * args.scale);

  double suspect_us = 0, commit_us = 0;
  for (int t = 0; t < trials; ++t) {
    const DetectionSample s = measure_detection(0x5eed + t);
    suspect_us += s.suspect_us;
    commit_us += s.commit_us;
  }
  suspect_us /= trials;
  commit_us /= trials;

  bench::Table detect({"stage", "latency (us, mean)"});
  detect.add_row({"kill -> suspicion", bench::fmt("%.1f", suspect_us)});
  detect.add_row({"kill -> epoch commit", bench::fmt("%.1f", commit_us)});
  detect.print("Membership: detection latency (3 nodes, node 2 killed)");

  const graph::Csr csr = graph::build_csr(
      vertices, graph::generate_uniform({vertices, 1, 6, 17}));
  const int reps = 5;
  const double base_s = bfs_seconds(csr, false, false, reps);
  const double member_s = bfs_seconds(csr, true, false, reps);
  const double replica_s = bfs_seconds(csr, true, true, reps);
  const double edges = static_cast<double>(csr.edges());

  bench::Table bfs({"mode", "seconds", "MTEPS", "overhead"});
  bfs.add_row({"reliable only (baseline)", bench::fmt("%.4f", base_s),
               bench::fmt("%.2f", edges / base_s / 1e6), "-"});
  bfs.add_row({"+ membership", bench::fmt("%.4f", member_s),
               bench::fmt("%.2f", edges / member_s / 1e6),
               bench::fmt("%.1f%%", (member_s / base_s - 1) * 100)});
  bfs.add_row({"+ membership + replication", bench::fmt("%.4f", replica_s),
               bench::fmt("%.2f", edges / replica_s / 1e6),
               bench::fmt("%.1f%%", (replica_s / base_s - 1) * 100)});
  bfs.print("Membership: fault-free BFS overhead (3 nodes)");
  bfs.write_csv(args.csv_path);

  bench::BenchJson json("membership");
  json.set_config("nodes", std::uint64_t{3});
  json.set_config("detection_trials", static_cast<std::uint64_t>(trials));
  json.set_config("bfs_vertices", vertices);
  json.set_config("bfs_edges", csr.edges());
  json.add_metric("detect_suspect_latency_mean", suspect_us, "us");
  json.add_metric("detect_commit_latency_mean", commit_us, "us");
  json.add_metric("bfs_baseline", base_s, "s");
  json.add_metric("bfs_membership", member_s, "s");
  json.add_metric("bfs_membership_replicated", replica_s, "s");
  json.add_metric("bfs_membership_overhead",
                  (member_s / base_s - 1) * 100, "percent");
  json.add_metric("bfs_replication_overhead",
                  (replica_s / base_s - 1) * 100, "percent");
  json.write(args.json_path);
  return 0;
}
