// Ablation: the task-lifecycle pools (recycled TCBs + context re-arm +
// pooled iteration blocks + O(1) parked/wake scheduling) against the
// allocating path (new Task / new IterBlock per spawn, full make_context,
// scheduler scans resident tasks per decision).
//
// Fig. 5-style concurrency sweep: N resident parent tasks park on a nested
// parfor while their children churn through full spawn+schedule+complete
// lifecycles (iteration block + TCB + two context switches + completion
// accounting). The allocating scheduler rotates past all N blocked parents
// for every scheduling decision; the pooled one parks them off-queue and
// decides in O(1), never touching the heap. Throughput is spawned tasks
// per second over the whole storm.
//
// Emits BENCH_taskpool.json (override with --json=path) recording both
// modes and the speedup per concurrency level — the committed
// perf-trajectory record for the task subsystem.
#include <algorithm>
#include <cstdint>
#include <cstring>

#include "bench_util.hpp"
#include "common/time.hpp"
#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

void child_task(std::uint64_t, const void*) {}

void parent_task(std::uint64_t, const void* raw) {
  std::uint64_t spawns;
  std::memcpy(&spawns, raw, sizeof(spawns));
  // Nested parfor, chunk=1: the parent parks until every child task ran.
  // With N resident parents all parked this way, each child completion is
  // a scheduling decision taken against N blocked tasks.
  gmt::gmt_parfor(spawns, 1, &child_task, nullptr, 0, gmt::Spawn::kLocal);
}

struct RootArgs {
  std::uint64_t parents;
  std::uint64_t spawns_per_parent;
};

void root_task(std::uint64_t, const void* raw) {
  RootArgs r;
  std::memcpy(&r, raw, sizeof(r));
  // chunk=1: one parent per iteration, all resident on this node's worker.
  gmt::gmt_parfor(r.parents, 1, &parent_task, &r.spawns_per_parent,
                  sizeof(r.spawns_per_parent), gmt::Spawn::kLocal);
}

// Spawned-tasks/second for one configuration; median of three timed runs
// on a warmed cluster (stack pools, buffers and — when enabled — the task
// and iteration-block pools all hot).
double run_sweep(bool task_pool, std::uint64_t resident,
                 std::uint64_t parents, std::uint64_t spawns_per_parent) {
  gmt::Config config = gmt::Config::testing();
  config.num_workers = 1;
  config.num_helpers = 1;
  config.max_tasks_per_worker = static_cast<std::uint32_t>(resident);
  config.task_pool = task_pool;
  // Every parked parent keeps a child iteration block in flight, so size
  // the pools to the concurrency level — otherwise the pooled path falls
  // back to the heap mid-storm and the ablation measures the fallback,
  // not the pool.
  config.itb_pool_size = static_cast<std::uint32_t>(2 * resident + 64);
  config.task_pool_reserve = static_cast<std::uint32_t>(resident / 4 + 8);
  gmt::rt::Cluster cluster(1, config);

  RootArgs warmup{parents, 1};
  cluster.run(&root_task, &warmup, sizeof(warmup));

  RootArgs args{parents, spawns_per_parent};
  const double total_tasks =
      static_cast<double>(parents) * (1 + spawns_per_parent);
  double rates[3];
  for (double& rate : rates) {
    const std::uint64_t t0 = gmt::wall_ns();
    cluster.run(&root_task, &args, sizeof(args));
    const std::uint64_t elapsed = gmt::wall_ns() - t0;
    rate = total_tasks * 1e9 / static_cast<double>(elapsed ? elapsed : 1);
  }
  std::sort(rates, rates + 3);
  return rates[1];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto total_tasks = static_cast<std::uint64_t>(16384 * args.scale);

  bench::Table table({"resident tasks", "alloc tasks/s", "pooled tasks/s",
                      "speedup"});
  bench::BenchJson json("taskpool");
  json.set_config("nodes", std::uint64_t{1});
  json.set_config("workers_per_node", std::uint64_t{1});
  json.set_config("total_tasks_target", total_tasks);
  json.set_config("workload", "parked parents over nested-parfor children");

  double speedup_at_1024 = 0;
  for (std::uint64_t resident : {64ull, 256ull, 1024ull}) {
    // Child itbs round-robin through the queue, so one parent retires per
    // round and one is adopted: steady-state parked parents ==
    // spawns_per_parent (clamped by the cap). Give each parent `resident`
    // children so the sweep actually holds `resident` tasks parked, and
    // enough parents to sustain that plateau and fill the time budget.
    const std::uint64_t spawns = resident;
    const std::uint64_t parents = std::max(
        resident,
        std::min<std::uint64_t>(4096, total_tasks / (resident + 1)));
    const double alloc_rate = run_sweep(false, resident, parents, spawns);
    const double pooled_rate = run_sweep(true, resident, parents, spawns);
    const double speedup = pooled_rate / (alloc_rate > 0 ? alloc_rate : 1);
    if (resident == 1024) speedup_at_1024 = speedup;
    table.add_row({bench::fmt_u64(resident), bench::fmt("%.0f", alloc_rate),
                   bench::fmt("%.0f", pooled_rate),
                   bench::fmt("%.2fx", speedup)});
    const std::string tag = "resident_" + bench::fmt_u64(resident);
    json.add_metric("spawn_rate_alloc_" + tag, alloc_rate, "tasks/s");
    json.add_metric("spawn_rate_pooled_" + tag, pooled_rate, "tasks/s");
    json.add_metric("speedup_" + tag, speedup, "x");
  }

  table.print("Taskpool ablation: spawn+complete throughput, task sweep");
  table.write_csv(args.csv_path);
  json.write(args.json_path);

  std::printf("\ntarget: pooled >= 2x alloc at 1024 resident tasks "
              "(got %.2fx)\n", speedup_at_1024);
  return 0;
}
