// Paper Table II: MPI transfer rates between two Olympus nodes vs message
// size, for 32 processes and 1/2/4 threads per process.
//
// The physical testbed is modelled by net::MpiEndpointModel, calibrated
// against the paper's published anchors (2815 MB/s at 64 KB; 9.63 MB/s at
// 16 B and 72.26 MB/s at 128 B with 32 processes). Rows reproduce the
// table's regimes: processes recover throughput at large sizes, threads
// stay low at every size.
#include "bench_util.hpp"
#include "net/network_model.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::Table table({"msg size", "32 procs MB/s", "1 thread MB/s",
                      "2 threads MB/s", "4 threads MB/s"});

  const auto rate = [](std::uint32_t processes, std::uint32_t threads,
                       std::uint64_t size) {
    net::MpiEndpointModel model;
    model.processes = processes;
    model.threads = threads;
    return model.aggregate_rate_Bps(size) / (1 << 20);
  };

  for (std::uint64_t size = 64; size <= 64 * 1024; size *= 4) {
    table.add_row({bench::fmt_u64(size) + " B",
                   bench::fmt("%.2f", rate(32, 1, size)),
                   bench::fmt("%.2f", rate(1, 1, size)),
                   bench::fmt("%.2f", rate(1, 2, size)),
                   bench::fmt("%.2f", rate(1, 4, size))});
  }
  table.print("Table II: modelled MPI transfer rates, 2 nodes");
  table.write_csv(args.csv_path);

  std::printf(
      "\npaper anchors: 2815 MB/s @64KB; 9.63 MB/s @16B and 72.26 MB/s "
      "@128B (32 procs)\n");
  std::printf("model:         %.2f MB/s @64KB; %.2f MB/s @16B and %.2f MB/s "
              "@128B\n",
              rate(32, 1, 64 * 1024), rate(32, 1, 16), rate(32, 1, 128));
  return 0;
}
