// Paper Figure 6: the Figure 5 experiment on 128 nodes — every node's
// tasks put to uniformly random peers, so per-destination aggregation
// queues fill 127x more slowly and buffers ship mostly on timeout.
//
// The paper's observation: "a slight degradation in performance" versus 2
// nodes, but aggregation still beats raw MPI sends by an order of
// magnitude (16-byte GMT puts: 139.78 MB/s vs 9.63 MB/s for MPI).
#include "bench_util.hpp"
#include "sim/workloads_micro.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto puts_per_task =
      static_cast<std::uint64_t>(16 * args.scale);  // paper: 4096

  bench::Table table(
      {"tasks/node", "8B MB/s", "16B MB/s", "64B MB/s", "128B MB/s"});
  for (std::uint64_t per_node : {60ull, 240ull, 960ull, 3840ull}) {
    std::vector<std::string> row{bench::fmt_u64(per_node)};
    for (std::uint32_t size : {8u, 16u, 64u, 128u}) {
      sim::PutBenchParams params;
      params.nodes = 128;
      params.tasks = per_node * params.nodes;
      params.puts_per_task = puts_per_task;
      params.put_size = size;
      params.all_nodes_send = true;
      const auto result = sim::put_bench_gmt(params);
      // Per-node payload rate, comparable to the 2-node figure.
      row.push_back(bench::fmt(
          "%.2f", result.payload_rate_MBps() / params.nodes));
    }
    table.add_row(std::move(row));
  }
  table.print("Figure 6: GMT put rates per node, 128 nodes, random peers");
  table.write_csv(args.csv_path);

  std::printf("\nMPI comparator (no aggregation): 16B = %.2f MB/s\n",
              sim::mpi_send_rate_MBps(16, 32, {}));
  std::printf("paper anchors: GMT 16B over 128 nodes = 139.78 MB/s vs MPI "
              "9.63 MB/s\n");
  return 0;
}
