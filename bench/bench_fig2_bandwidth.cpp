// Paper Figure 2: bandwidth between two nodes vs message (put) size with
// one worker and one communication server, against raw MPI of the same
// size.
//
// Primary series: the simulated runtime with the Olympus calibration
// (paper-comparable numbers). Secondary series: the *real* threaded
// runtime moving actual bytes between two in-process nodes — functional
// verification of the same path; its absolute rate reflects this host, not
// QDR InfiniBand, so it is labelled separately.
#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/time.hpp"

#include "bench_util.hpp"
#include "gmt/gmt.hpp"
#include "net/network_model.hpp"
#include "runtime/cluster.hpp"
#include "sim/workloads_micro.hpp"

namespace {

struct RealArgs {
  gmt::gmt_handle handle;
  std::uint64_t puts;
  std::uint64_t size;
};

void real_put_task(std::uint64_t, const void* raw) {
  RealArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::vector<std::uint8_t> buffer(args.size, 0x5a);
  for (std::uint64_t i = 0; i < args.puts; ++i)
    gmt::gmt_put(args.handle, (i * args.size) % (1 << 20), buffer.data(),
                 args.size);
}

struct RealBench {
  std::uint64_t size;
  std::uint64_t puts;
  double mbps;
};

void real_root(std::uint64_t, const void* raw) {
  RealBench* bench;
  std::memcpy(&bench, raw, sizeof(bench));
  // Array on node 1 only (kRemote from node 0 with 2 nodes).
  const gmt::gmt_handle h =
      gmt::gmt_new((1 << 20) + 64 * 1024, gmt::Alloc::kRemote);
  RealArgs args{h, bench->puts, bench->size};
  gmt::StopWatch watch;
  gmt::gmt_parfor(16, 1, &real_put_task, &args, sizeof(args),
                  gmt::Spawn::kLocal);
  const double seconds = watch.elapsed_s();
  bench->mbps = static_cast<double>(16 * bench->puts * bench->size) /
                seconds / (1 << 20);
  gmt::gmt_free(h);
}

// ---- read-mostly cache section (BENCH_cache.json) ----
//
// A >=99%-read workload against a remote array: node-0 tasks stream 8-byte
// sequential reads from a static array homed on node 1, with one 8-byte
// write to a *separate* scratch array every 1024 ops (~0.1% writes; the
// write-invalidate broadcast is per-handle, so scratch writes never evict
// the read array's lines). Three rows: blocking gets with the cache off,
// the same with GMT_CACHE on, and future-pipelined gets (batches of 16
// gmt_get_f + wait_all) with the cache off.

struct ReadMostlyArgs {
  gmt::gmt_handle read_h;
  gmt::gmt_handle write_h;
  std::uint64_t read_bytes;
  std::uint64_t ops;  // per task
  bool pipelined;     // batches of 16 futures instead of blocking gets
};

void read_mostly_task(std::uint64_t it, const void* raw) {
  using namespace gmt;
  ReadMostlyArgs args;
  std::memcpy(&args, raw, sizeof(args));
  // Stagger starting lines so tasks don't all warm the same line at once.
  const std::uint64_t start = (it * 4096) % args.read_bytes;
  std::uint64_t sum = 0;
  if (!args.pipelined) {
    for (std::uint64_t i = 0; i < args.ops; ++i) {
      std::uint64_t v = 0;
      gmt_get(args.read_h, (start + i * 8) % args.read_bytes, &v, 8);
      sum += v;
      if ((i & 1023) == 1023)
        gmt_put_value(args.write_h, it * 8, sum, 8);
    }
  } else {
    constexpr std::uint64_t kBatch = 16;
    std::uint64_t vals[kBatch];
    Future fs[kBatch];
    for (std::uint64_t i = 0; i < args.ops; i += kBatch) {
      const std::uint64_t n = std::min(kBatch, args.ops - i);
      for (std::uint64_t j = 0; j < n; ++j)
        fs[j] = gmt_get_f(args.read_h,
                          (start + (i + j) * 8) % args.read_bytes, &vals[j],
                          8);
      wait_all(std::span<const Future>(fs, n));
      for (std::uint64_t j = 0; j < n; ++j) sum += vals[j];
      if ((i & 1023) == 1008)
        gmt_put_value(args.write_h, it * 8, sum, 8);
    }
  }
  gmt_put_value(args.write_h, it * 8, sum, 8);  // keep the reads live
}

struct ReadMostlyBench {
  std::uint64_t ops_per_task;
  bool pipelined;
  double reads_per_s;
};

void read_mostly_root(std::uint64_t, const void* raw) {
  using namespace gmt;
  ReadMostlyBench* bench;
  std::memcpy(&bench, raw, sizeof(bench));
  constexpr std::uint64_t kReadBytes = 128 * 1024;  // homed on node 1
  constexpr std::uint64_t kTasks = 8;
  const gmt_handle read_h = gmt_new(kReadBytes, Alloc::kRemote);
  const gmt_handle write_h = gmt_new(4096, Alloc::kRemote);
  ReadMostlyArgs args{read_h, write_h, kReadBytes, bench->ops_per_task,
                      bench->pipelined};
  StopWatch watch;
  gmt_parfor(kTasks, 1, &read_mostly_task, &args, sizeof(args),
             Spawn::kLocal);
  const double seconds = watch.elapsed_s();
  bench->reads_per_s =
      static_cast<double>(kTasks * bench->ops_per_task) / seconds;
  gmt_free(read_h);
  gmt_free(write_h);
}

double run_read_mostly(bool cache_on, bool pipelined, double scale) {
  using namespace gmt;
  Config config = Config::testing();
  config.cache = cache_on;
  rt::Cluster cluster(2, config);
  ReadMostlyBench bench{
      std::max<std::uint64_t>(512,
                              static_cast<std::uint64_t>(16 * 1024 * scale)),
      pipelined, 0};
  ReadMostlyBench* ptr = &bench;
  cluster.run(&read_mostly_root, &ptr, sizeof(ptr));
  return bench.reads_per_s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::Table table({"put size", "GMT model MB/s", "raw MPI model MB/s",
                      "real runtime MB/s (this host)"});

  rt::Cluster cluster(2, Config::testing());
  for (std::uint64_t size = 64; size <= 64 * 1024; size *= 4) {
    // Modelled series: one worker, enough tasks to keep the pipe busy.
    sim::PutBenchParams params;
    params.nodes = 2;
    params.config.num_workers = 1;
    params.config.num_helpers = 1;
    params.tasks = 512;
    params.puts_per_task = static_cast<std::uint64_t>(32 * args.scale);
    params.put_size = static_cast<std::uint32_t>(size);
    const auto modelled = sim::put_bench_gmt(params);

    net::MpiEndpointModel mpi;
    mpi.processes = 1;
    const double mpi_rate = mpi.aggregate_rate_Bps(size) / (1 << 20);

    // Real series: node 0 tasks put into node 1's memory.
    RealBench real{size, std::max<std::uint64_t>(
                             4, static_cast<std::uint64_t>(
                                    256 * 1024 * args.scale / size)),
                   0};
    RealBench* real_ptr = &real;
    cluster.run(&real_root, &real_ptr, sizeof(real_ptr));

    table.add_row({bench::fmt_u64(size) + " B",
                   bench::fmt("%.2f", modelled.payload_rate_MBps()),
                   bench::fmt("%.2f", mpi_rate),
                   bench::fmt("%.2f", real.mbps)});
  }
  table.print("Figure 2: bandwidth vs put size, 2 nodes, 1 worker");
  table.write_csv(args.csv_path);

  std::printf("\npaper: GMT reaches 2630 MB/s at 64KB vs MPI 2815 MB/s "
              "(93%% of raw MPI)\n");

  // Read-mostly cache rows (real runtime, this host).
  const double uncached = run_read_mostly(false, false, args.scale);
  const double cached = run_read_mostly(true, false, args.scale);
  const double pipelined = run_read_mostly(false, true, args.scale);
  const double speedup = uncached > 0 ? cached / uncached : 0;

  bench::Table cache_table(
      {"mode", "8B reads/s (this host)", "vs uncached"});
  cache_table.add_row({"uncached blocking", bench::fmt("%.0f", uncached),
                       bench::fmt("%.2fx", 1.0)});
  cache_table.add_row({"cached blocking (GMT_CACHE=1)",
                       bench::fmt("%.0f", cached),
                       bench::fmt("%.2fx", speedup)});
  cache_table.add_row({"future-pipelined x16 (cache off)",
                       bench::fmt("%.0f", pipelined),
                       bench::fmt("%.2fx",
                                  uncached > 0 ? pipelined / uncached : 0)});
  cache_table.print(
      "Read-mostly remote reads (>=99% reads), 2 nodes, 8 tasks");

  bench::BenchJson json("cache");
  json.set_config("nodes", 2);
  json.set_config("tasks", 8);
  json.set_config("read_bytes", 128 * 1024);
  json.set_config("write_fraction", "1/1024");
  json.add_metric("reads_per_s_uncached", uncached, "ops/s");
  json.add_metric("reads_per_s_cached", cached, "ops/s");
  json.add_metric("reads_per_s_future_pipelined", pipelined, "ops/s");
  json.add_metric("cache_read_speedup", speedup, "x");
  json.write(args.json_path);
  return 0;
}
