// Paper Figure 2: bandwidth between two nodes vs message (put) size with
// one worker and one communication server, against raw MPI of the same
// size.
//
// Primary series: the simulated runtime with the Olympus calibration
// (paper-comparable numbers). Secondary series: the *real* threaded
// runtime moving actual bytes between two in-process nodes — functional
// verification of the same path; its absolute rate reflects this host, not
// QDR InfiniBand, so it is labelled separately.
#include <cstring>
#include <vector>

#include "common/time.hpp"

#include "bench_util.hpp"
#include "gmt/gmt.hpp"
#include "net/network_model.hpp"
#include "runtime/cluster.hpp"
#include "sim/workloads_micro.hpp"

namespace {

struct RealArgs {
  gmt::gmt_handle handle;
  std::uint64_t puts;
  std::uint64_t size;
};

void real_put_task(std::uint64_t, const void* raw) {
  RealArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::vector<std::uint8_t> buffer(args.size, 0x5a);
  for (std::uint64_t i = 0; i < args.puts; ++i)
    gmt::gmt_put(args.handle, (i * args.size) % (1 << 20), buffer.data(),
                 args.size);
}

struct RealBench {
  std::uint64_t size;
  std::uint64_t puts;
  double mbps;
};

void real_root(std::uint64_t, const void* raw) {
  RealBench* bench;
  std::memcpy(&bench, raw, sizeof(bench));
  // Array on node 1 only (kRemote from node 0 with 2 nodes).
  const gmt::gmt_handle h =
      gmt::gmt_new((1 << 20) + 64 * 1024, gmt::Alloc::kRemote);
  RealArgs args{h, bench->puts, bench->size};
  gmt::StopWatch watch;
  gmt::gmt_parfor(16, 1, &real_put_task, &args, sizeof(args),
                  gmt::Spawn::kLocal);
  const double seconds = watch.elapsed_s();
  bench->mbps = static_cast<double>(16 * bench->puts * bench->size) /
                seconds / (1 << 20);
  gmt::gmt_free(h);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::Table table({"put size", "GMT model MB/s", "raw MPI model MB/s",
                      "real runtime MB/s (this host)"});

  rt::Cluster cluster(2, Config::testing());
  for (std::uint64_t size = 64; size <= 64 * 1024; size *= 4) {
    // Modelled series: one worker, enough tasks to keep the pipe busy.
    sim::PutBenchParams params;
    params.nodes = 2;
    params.config.num_workers = 1;
    params.config.num_helpers = 1;
    params.tasks = 512;
    params.puts_per_task = static_cast<std::uint64_t>(32 * args.scale);
    params.put_size = static_cast<std::uint32_t>(size);
    const auto modelled = sim::put_bench_gmt(params);

    net::MpiEndpointModel mpi;
    mpi.processes = 1;
    const double mpi_rate = mpi.aggregate_rate_Bps(size) / (1 << 20);

    // Real series: node 0 tasks put into node 1's memory.
    RealBench real{size, std::max<std::uint64_t>(
                             4, static_cast<std::uint64_t>(
                                    256 * 1024 * args.scale / size)),
                   0};
    RealBench* real_ptr = &real;
    cluster.run(&real_root, &real_ptr, sizeof(real_ptr));

    table.add_row({bench::fmt_u64(size) + " B",
                   bench::fmt("%.2f", modelled.payload_rate_MBps()),
                   bench::fmt("%.2f", mpi_rate),
                   bench::fmt("%.2f", real.mbps)});
  }
  table.print("Figure 2: bandwidth vs put size, 2 nodes, 1 worker");
  table.write_csv(args.csv_path);

  std::printf("\npaper: GMT reaches 2630 MB/s at 64KB vs MPI 2815 MB/s "
              "(93%% of raw MPI)\n");
  return 0;
}
