// Actor-service latency/throughput under open-loop load.
//
// A sharded echo/KV actor runs on every node of an in-process cluster; one
// generator task per node issues gmt::actor::call() requests on a fixed
// arrival schedule (open loop: arrivals are paced by the clock, not by
// completions, so queueing delay is charged to the request instead of
// silently throttling the load). A bounded window of outstanding futures
// keeps reply buffers alive; when the window is full the generator blocks
// on the oldest request — at that point the offered rate exceeds the
// service rate and the achieved throughput plateaus at saturation.
//
// Three or more offered-load points (light / moderate / beyond-saturation)
// give the latency-throughput curve: p50/p99 at each point plus the
// saturation throughput. Emits BENCH_actor.json.
#include <algorithm>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "common/assert.hpp"
#include "common/config.hpp"
#include "common/time.hpp"
#include "gmt/gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace gmt;

constexpr std::uint32_t kNodes = 3;
constexpr std::uint64_t kShardActor = 0xbe7c;
constexpr std::size_t kWindow = 256;  // outstanding calls per generator

struct KvRequest {
  std::uint64_t key;
  std::uint64_t value;
};

struct KvReply {
  std::uint64_t value;
};

struct Shard {
  std::unordered_map<std::uint64_t, std::uint64_t> map;
};

Shard g_shards[kNodes];

// Collected per run (in-process cluster: plain process globals).
std::mutex g_mu;
std::vector<std::uint64_t> g_latencies_ns;
std::uint64_t g_first_send_ns = 0;
std::uint64_t g_last_done_ns = 0;

void shard_handler(void* ctx, const actor::Message& msg) {
  auto* shard = static_cast<Shard*>(ctx);
  KvRequest req;
  std::memcpy(&req, msg.data, sizeof(req));
  std::uint64_t& cell = shard->map[req.key];
  cell += req.value;
  const KvReply rep{cell};
  msg.reply(&rep, sizeof(rep));
}

void register_shard(std::uint64_t, const void*) {
  actor::register_mailbox(kShardActor, &shard_handler,
                          &g_shards[gmt_node_id()]);
}

void unregister_shard(std::uint64_t, const void*) {
  actor::unregister_mailbox(kShardActor);
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct GenArgs {
  std::uint64_t requests;     // per generator
  std::uint64_t interval_ns;  // arrival spacing per generator
};

struct Outstanding {
  Future future;
  std::uint64_t scheduled_ns;  // latency baseline (open loop)
  std::size_t slot;            // reply-buffer index
};

// One generator per node (parfor with one iteration per node).
void generator(std::uint64_t gen, const void* raw) {
  GenArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::vector<KvReply> replies(kWindow);
  std::vector<std::size_t> free_slots(kWindow);
  for (std::size_t i = 0; i < kWindow; ++i) free_slots[i] = i;
  std::deque<Outstanding> window;
  std::vector<std::uint64_t> latencies;
  latencies.reserve(args.requests);
  std::uint64_t first_send = 0, last_done = 0;

  const auto retire = [&](const Outstanding& o) {
    wait(o.future);
    const std::uint64_t now = wall_ns();
    latencies.push_back(now - o.scheduled_ns);
    last_done = now;
    free_slots.push_back(o.slot);
  };

  std::uint64_t next = wall_ns();
  for (std::uint64_t i = 0; i < args.requests; ++i) {
    while (wall_ns() < next) gmt_yield();
    if (window.size() >= kWindow || free_slots.empty()) {
      retire(window.front());
      window.pop_front();
    }
    const std::size_t slot = free_slots.back();
    free_slots.pop_back();
    const std::uint64_t r = mix64(gen * 0x10001 + i);
    const KvRequest req{r % 8192, 1};
    const auto dst = static_cast<std::uint32_t>(mix64(req.key) % kNodes);
    if (first_send == 0) first_send = wall_ns();
    window.push_back(Outstanding{
        actor::call(dst, kShardActor, req, &replies[slot]), next, slot});
    next += args.interval_ns;
  }
  while (!window.empty()) {
    retire(window.front());
    window.pop_front();
  }

  std::lock_guard<std::mutex> lock(g_mu);
  g_latencies_ns.insert(g_latencies_ns.end(), latencies.begin(),
                        latencies.end());
  if (g_first_send_ns == 0 || first_send < g_first_send_ns)
    g_first_send_ns = first_send;
  if (last_done > g_last_done_ns) g_last_done_ns = last_done;
}

void root_task(std::uint64_t, const void* raw) {
  GenArgs args;
  std::memcpy(&args, raw, sizeof(args));
  for (std::uint32_t n = 0; n < gmt_num_nodes(); ++n)
    gmt_on(n, &register_shard, nullptr, 0);
  gmt_parfor(gmt_num_nodes(), /*chunk=*/1, &generator, &args, sizeof(args),
             Spawn::kPartition);
  for (std::uint32_t n = 0; n < gmt_num_nodes(); ++n)
    gmt_on(n, &unregister_shard, nullptr, 0);
}

struct LoadPoint {
  double offered_rate;   // requests/s, cluster-wide
  double achieved_rate;  // completions/s over the measured span
  double p50_us;
  double p99_us;
};

LoadPoint run_point(double offered_rate, std::uint64_t requests_per_gen) {
  for (Shard& s : g_shards) s.map.clear();
  g_latencies_ns.clear();
  g_first_send_ns = g_last_done_ns = 0;

  GenArgs args;
  args.requests = requests_per_gen;
  args.interval_ns =
      static_cast<std::uint64_t>(1e9 * kNodes / offered_rate);
  if (args.interval_ns == 0) args.interval_ns = 1;

  Config config;
  rt::Cluster cluster(kNodes, config);
  cluster.run(&root_task, &args, sizeof(args));

  LoadPoint point{};
  point.offered_rate = offered_rate;
  auto& lat = g_latencies_ns;
  GMT_CHECK(!lat.empty());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(lat.size() - 1));
    std::nth_element(lat.begin(), lat.begin() + idx, lat.end());
    return static_cast<double>(lat[idx]) / 1000.0;
  };
  point.p50_us = pct(0.50);
  point.p99_us = pct(0.99);
  const double span_s =
      static_cast<double>(g_last_done_ns - g_first_send_ns) / 1e9;
  point.achieved_rate =
      span_s > 0 ? static_cast<double>(lat.size()) / span_s : 0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);

  // Light / moderate / beyond-saturation offered loads (cluster-wide
  // requests per second). The top point is deliberately past what the
  // in-process fabric sustains, so the achieved column exposes the
  // saturation plateau rather than tracking the offer.
  const double rates[] = {50e3, 200e3, 2e6};
  std::vector<LoadPoint> points;
  for (const double rate : rates) {
    // Size each run to a ~0.5 s schedule at the offered rate, scaled.
    auto requests = static_cast<std::uint64_t>(
        rate / kNodes * 0.5 * args.scale);
    if (requests < 2000) requests = 2000;
    points.push_back(run_point(rate, requests));
  }

  double saturation = 0;
  for (const LoadPoint& p : points)
    if (p.achieved_rate > saturation) saturation = p.achieved_rate;

  bench::Table table(
      {"offered (req/s)", "achieved (req/s)", "p50 (us)", "p99 (us)"});
  for (const LoadPoint& p : points)
    table.add_row({bench::fmt("%.0f", p.offered_rate),
                   bench::fmt("%.0f", p.achieved_rate),
                   bench::fmt("%.1f", p.p50_us),
                   bench::fmt("%.1f", p.p99_us)});
  table.print("Actor KV service: open-loop latency/throughput (3 nodes)");
  table.write_csv(args.csv_path);

  bench::BenchJson json("actor");
  json.set_config("nodes", std::uint64_t{kNodes});
  json.set_config("window", static_cast<std::uint64_t>(kWindow));
  json.set_config("load_points", std::uint64_t{3});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::string tag = "load" + std::to_string(i);
    json.add_metric(tag + "_offered", points[i].offered_rate, "req/s");
    json.add_metric(tag + "_achieved", points[i].achieved_rate, "req/s");
    json.add_metric(tag + "_p50", points[i].p50_us, "us");
    json.add_metric(tag + "_p99", points[i].p99_us, "us");
  }
  json.add_metric("saturation_throughput", saturation, "req/s");
  json.write(args.json_path);
  return 0;
}
