// Paper Figure 5: transfer rate of blocking puts between two nodes while
// increasing the number of concurrent tasks, for message sizes 8..128 B.
//
// All tasks run on node 0 (15 workers) and put into node 1, exactly the
// paper's setup; "MPI 32 procs" is the no-aggregation comparator line the
// paper overlays. Paper anchor: 8-byte puts go from 8.55 MB/s at 1024
// tasks to 72.48 MB/s at 15360 (8.4x), and 128-byte puts approach 1 GB/s
// while MPI manages 72.26 MB/s.
#include "bench_util.hpp"
#include "sim/workloads_micro.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto puts_per_task =
      static_cast<std::uint64_t>(64 * args.scale);  // paper: 4096

  bench::Table table({"tasks", "8B MB/s", "16B MB/s", "32B MB/s", "64B MB/s",
                      "128B MB/s"});
  for (std::uint64_t tasks : {15ull, 60ull, 240ull, 1024ull, 3840ull,
                              15360ull}) {
    std::vector<std::string> row{bench::fmt_u64(tasks)};
    for (std::uint32_t size : {8u, 16u, 32u, 64u, 128u}) {
      sim::PutBenchParams params;
      params.nodes = 2;
      params.tasks = tasks;
      params.puts_per_task = puts_per_task;
      params.put_size = size;
      row.push_back(
          bench::fmt("%.2f", sim::put_bench_gmt(params).payload_rate_MBps()));
    }
    table.add_row(std::move(row));
  }
  table.print("Figure 5: GMT put rates, 2 nodes, task sweep");
  table.write_csv(args.csv_path);

  bench::Table mpi({"size", "MPI 32-proc MB/s"});
  for (std::uint32_t size : {8u, 16u, 32u, 64u, 128u})
    mpi.add_row({bench::fmt_u64(size) + " B",
                 bench::fmt("%.2f", sim::mpi_send_rate_MBps(size, 32, {}))});
  mpi.print("Figure 5 comparator: raw MPI sends");

  std::printf("\npaper anchors: 8B 8.55 MB/s @1024 tasks -> 72.48 MB/s "
              "@15360; 128B ~1 GB/s @15360 vs MPI 72.26 MB/s\n");
  return 0;
}
