// Ablation: source-side combining of remote atomics on the distributed
// histogram kernel. Sweeps key skew (Zipf s) and the combining-table size
// with GMT_COMBINE on vs off, recording wall time, increment throughput
// and — the figure of merit — aggregation commands on the wire: every
// combining hit is one command and one ack that never left the node.
// Uniform keys (s = 0) bound the repeat rate at slice_len/buckets per
// bucket; skew concentrates the mass, so the reduction factor must grow
// monotonically with s — and must never cost throughput at s = 0.
#include <cstdint>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "gmt/gmt.hpp"
#include "gmt/obs.hpp"
#include "kernels/histogram_gmt.hpp"
#include "runtime/cluster.hpp"

namespace {

using namespace gmt;

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kBuckets = 512;

// Root-task context: cluster.run takes a plain function, so the bench
// threads its state through a global (single-threaded driver).
struct RunContext {
  const std::vector<std::uint64_t>* keys = nullptr;
  kernels::HistogramMode mode = kernels::HistogramMode::kDirect;
  gmt_handle handle = kNullHandle;
  double seconds = 0;
  std::uint64_t total = 0;
} g_ctx;

void upload_root(std::uint64_t, const void*) {
  g_ctx.handle = kernels::upload_keys(*g_ctx.keys);
}

void count_root(std::uint64_t, const void*) {
  const kernels::HistogramResult result = kernels::histogram_gmt(
      g_ctx.handle, g_ctx.keys->size(), kBuckets, g_ctx.mode);
  g_ctx.seconds = result.seconds;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  gmt_get(result.counts, 0, counts.data(), kBuckets * 8);
  g_ctx.total = std::accumulate(counts.begin(), counts.end(), 0ull);
  gmt_free(result.counts);
  gmt_free(g_ctx.handle);
  g_ctx.handle = kNullHandle;
}

std::uint64_t wire_commands(rt::Cluster& cluster) {
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n)
    total += cluster.node(n).obs().snapshot().counter(
        obs::names::kAggCommands);
  return total;
}

struct RunResult {
  double seconds = 0;
  double mops = 0;       // remote increments per microsecond-ish (M ops/s)
  std::uint64_t cmds = 0;  // wire commands of the counting phase only
};

RunResult run_once(const std::vector<std::uint64_t>& keys,
                   kernels::HistogramMode mode, bool combine,
                   std::uint32_t table) {
  Config config;
  config.combine = combine;
  config.combine_table = table;
  config.pin_threads = false;  // benches share one oversubscribed host
  rt::Cluster cluster(kNodes, config);

  g_ctx.keys = &keys;
  g_ctx.mode = mode;
  cluster.run(&upload_root);
  const std::uint64_t before = wire_commands(cluster);
  cluster.run(&count_root);
  RunResult r;
  r.cmds = wire_commands(cluster) - before;
  r.seconds = g_ctx.seconds;
  r.mops = static_cast<double>(keys.size()) / g_ctx.seconds / 1e6;
  if (g_ctx.total != keys.size()) {
    std::fprintf(stderr, "FATAL: histogram lost counts (%llu != %llu)\n",
                 static_cast<unsigned long long>(g_ctx.total),
                 static_cast<unsigned long long>(keys.size()));
    std::exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto n = static_cast<std::uint64_t>(400'000 * args.scale);

  bench::BenchJson json("combine");
  json.set_config("nodes", kNodes);
  json.set_config("keys", n);
  json.set_config("buckets", kBuckets);

  bench::Table table({"kernel", "zipf s", "table", "combine", "seconds",
                      "M ops/s", "wire cmds", "cmds off/on", "ops on/off"});
  const auto add = [&](const char* kernel, double s, std::uint32_t tbl,
                       const RunResult& off, const RunResult& on) {
    const double cmd_reduction =
        static_cast<double>(off.cmds) / static_cast<double>(on.cmds);
    const double speedup = on.mops / off.mops;
    table.add_row({kernel, bench::fmt("%.1f", s), bench::fmt_u64(tbl), "off",
                   bench::fmt("%.3f", off.seconds),
                   bench::fmt("%.2f", off.mops), bench::fmt_u64(off.cmds),
                   "", ""});
    table.add_row({kernel, bench::fmt("%.1f", s), bench::fmt_u64(tbl), "on",
                   bench::fmt("%.3f", on.seconds), bench::fmt("%.2f", on.mops),
                   bench::fmt_u64(on.cmds), bench::fmt("%.2fx", cmd_reduction),
                   bench::fmt("%.2fx", speedup)});
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "%s_s%.1f_t%u", kernel, s, tbl);
    json.add_metric(std::string(prefix) + "_cmds_off",
                    static_cast<double>(off.cmds), "commands");
    json.add_metric(std::string(prefix) + "_cmds_on",
                    static_cast<double>(on.cmds), "commands");
    json.add_metric(std::string(prefix) + "_cmd_reduction", cmd_reduction,
                    "x");
    json.add_metric(std::string(prefix) + "_mops_off", off.mops, "Mops/s");
    json.add_metric(std::string(prefix) + "_mops_on", on.mops, "Mops/s");
    json.add_metric(std::string(prefix) + "_speedup", speedup, "x");
  };

  // Skew sweep, direct increments, default table size.
  for (const double s : {0.0, 0.5, 1.0, 1.5}) {
    const auto keys = kernels::make_zipf_keys(n, kBuckets, s, 0xc0ffee);
    const RunResult off =
        run_once(keys, kernels::HistogramMode::kDirect, false, 256);
    const RunResult on =
        run_once(keys, kernels::HistogramMode::kDirect, true, 256);
    add("direct", s, 256, off, on);
  }

  // Table-size sweep at the interesting skew.
  {
    const auto keys = kernels::make_zipf_keys(n, kBuckets, 1.0, 0xc0ffee);
    const RunResult off =
        run_once(keys, kernels::HistogramMode::kDirect, false, 256);
    for (const std::uint32_t tbl : {64u, 1024u}) {
      const RunResult on =
          run_once(keys, kernels::HistogramMode::kDirect, true, tbl);
      add("direct", 1.0, tbl, off, on);
    }
    // The hand-rolled software answer (task-local tables, one add per
    // nonzero bucket) as the reference point combining competes with.
    const RunResult tp_off =
        run_once(keys, kernels::HistogramMode::kTwoPhase, false, 256);
    const RunResult tp_on =
        run_once(keys, kernels::HistogramMode::kTwoPhase, true, 256);
    add("two-phase", 1.0, 256, tp_off, tp_on);
  }

  table.print("Ablation: source-side combining (distributed histogram)");
  table.write_csv(args.csv_path);
  json.write(args.json_path);
  return 0;
}
