// Ablation: worker/helper split at a fixed thread budget. The paper's
// Olympus configuration dedicates 15 cores to workers and 15 to helpers
// (Table IV); this sweep shows why a balanced split wins — workers
// generate commands, helpers execute them and generate replies, and the
// slower side gates throughput.
#include "bench_util.hpp"
#include "graph/generator.hpp"
#include "sim/workloads_graph.hpp"
#include "sim/workloads_micro.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);
  constexpr std::uint32_t kThreadBudget = 30;

  const auto csr = graph::build_csr(
      static_cast<std::uint64_t>(20000 * args.scale),
      graph::generate_uniform(
          {static_cast<std::uint64_t>(20000 * args.scale), 4, 16, 3}));

  bench::Table table({"workers", "helpers", "puts MB/s", "BFS MTEPS"});
  for (std::uint32_t workers : {5u, 10u, 15u, 20u, 25u}) {
    const std::uint32_t helpers = kThreadBudget - workers;

    sim::PutBenchParams puts;
    puts.nodes = 2;
    puts.tasks = 8192;
    puts.puts_per_task = 48;
    puts.put_size = 16;
    puts.config.num_workers = workers;
    puts.config.num_helpers = helpers;
    puts.config.max_tasks_per_worker = 16384 / workers;

    sim::SimGmtConfig bfs_config;
    bfs_config.num_workers = workers;
    bfs_config.num_helpers = helpers;
    const auto bfs = sim::sim_bfs_gmt(csr, 4, 0, bfs_config, {});

    table.add_row(
        {bench::fmt_u64(workers), bench::fmt_u64(helpers),
         bench::fmt("%.2f", sim::put_bench_gmt(puts).payload_rate_MBps()),
         bench::fmt("%.2f", bfs.mteps())});
  }
  table.print("Ablation: worker/helper split at 30 threads (paper: 15/15)");
  table.write_csv(args.csv_path);
  return 0;
}
