// Paper Figure 9: Graph Random Walk weak scaling (log scale) — GMT vs the
// hand-coded MPI implementation. Paper setup: 1M vertices per node, ~4000
// edges per vertex, V/2 walker tasks; GMT is "one or more orders of
// magnitude faster".
//
// Both the paper's measured MPI baseline (blocking per-walk delegation)
// and the batched variant the paper describes as possible are reported.
#include "bench_util.hpp"
#include "graph/generator.hpp"
#include "sim/workloads_graph.hpp"

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto vertices_per_node =
      static_cast<std::uint64_t>(3000 * args.scale);  // paper: 1M
  const std::uint64_t walk_length = 16;

  bench::Table table({"nodes", "walkers", "GMT MTEPS", "MPI MTEPS",
                      "MPI-batched MTEPS", "GMT/MPI"});
  for (std::uint32_t nodes : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const std::uint64_t vertices = vertices_per_node * nodes;
    const std::uint64_t walkers = vertices / 2;  // paper: V/2 tasks
    const auto csr = graph::build_csr(
        vertices, graph::generate_uniform({vertices, 2, 12, 11}));
    const auto gmt_result =
        sim::sim_grw_gmt(csr, nodes, walkers, walk_length, {}, {});
    const auto mpi_result =
        sim::sim_grw_mpi(csr, nodes, walkers, walk_length, {});
    const auto batched =
        sim::sim_grw_mpi_batched(csr, nodes, walkers, walk_length, {});
    table.add_row(
        {bench::fmt_u64(nodes), bench::fmt_u64(walkers),
         bench::fmt("%.2f", gmt_result.mteps()),
         bench::fmt("%.3f", mpi_result.mteps()),
         bench::fmt("%.2f", batched.mteps()),
         bench::fmt("%.1fx", gmt_result.mteps() / mpi_result.mteps())});
  }
  table.print("Figure 9: GRW weak scaling, GMT vs MPI (log-scale in paper)");
  table.write_csv(args.csv_path);

  std::printf("\nshape target: GMT one or more orders of magnitude above "
              "the MPI line, gap widening with nodes\n");
  return 0;
}
