// Paper Table III: context-switch latency (cycles) while varying the
// number of tasks (1..1024) and the number of switches per task (100,
// 1000). This is a *real measurement* of the runtime's custom x86-64
// switch, the same experiment the paper runs: more tasks stress the cache
// footprint of saved contexts, more switches amortise cold misses.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/time.hpp"
#include "uthread/fiber.hpp"

namespace {

// Round-robin switches across `tasks` fibers until each performed
// `switches` yields; returns average cycles per switch (one switch = one
// transfer of control, worker->fiber or fiber->worker counted as a pair).
double measure_cycles(std::size_t tasks, std::size_t switches) {
  using namespace gmt;
  StackPool pool(32 * 1024, tasks);
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    fibers.push_back(std::make_unique<Fiber>(
        pool.acquire(), [switches](Fiber& self) {
          for (std::size_t s = 0; s < switches; ++s) self.yield();
        }));
  }

  const std::uint64_t begin = rdtscp();
  bool any = true;
  while (any) {
    any = false;
    for (auto& fiber : fibers)
      if (!fiber->finished() && fiber->resume()) any = true;
  }
  const std::uint64_t cycles = rdtscp() - begin;
  // Each yield is a round trip: two context switches.
  const double total_switches =
      2.0 * static_cast<double>(tasks) * static_cast<double>(switches);
  return static_cast<double>(cycles) / total_switches;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmt;
  const auto args = bench::BenchArgs::parse(argc, argv);

  bench::Table table(
      {"ctx switches", "1 task", "8 tasks", "64 tasks", "1024 tasks"});
  for (std::size_t switches : {100u, 1000u}) {
    std::vector<std::string> row{bench::fmt_u64(switches)};
    for (std::size_t tasks : {1u, 8u, 64u, 1024u}) {
      // Warm up, then measure.
      measure_cycles(tasks, 10);
      row.push_back(bench::fmt("%.2f", measure_cycles(tasks, switches)));
    }
    table.add_row(std::move(row));
  }
  table.print("Table III: context-switch latency (cycles), custom switch");
  table.write_csv(args.csv_path);

  std::printf("\npaper: 494-591 cycles across the same matrix "
              "(Opteron 6272 @ 2.1 GHz)\n");
  return 0;
}
