// Global address space: handle table, block distribution, and the node's
// local partitions.
//
// A gmt_array is identified by a handle and addressed by byte offset; the
// runtime maps (handle, offset) to (owner node, local offset) with the
// block-distribution arithmetic below. Every node holds an identical copy
// of each allocation's metadata (size, policy, block size) plus the storage
// for its own partition — exactly the state a PGAS runtime replicates so no
// remote lookup is ever needed to route a request.
//
// Handle lifecycle (see DESIGN.md "Handle lifecycle"):
//
//  - *Slot recycling.* Retired slots return to a lock-free free list on the
//    node that reserved them; reuse bumps the slot's 16-bit generation
//    (skipping the reserved null generation 0), so a stale handle still
//    fails loudly in get()/valid() while steady alloc/free traffic never
//    exhausts the handle space.
//  - *Deferred reclamation.* unregister_array unlinks the LocalArray
//    immediately (new lookups fail) but defers the delete until every
//    pinned accessor has moved past the retire epoch. Helpers pin around
//    each incoming buffer and workers around each local fast-path access,
//    so a remote op racing a free either completes against still-live
//    storage or fails the generation check — never a use-after-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "common/cacheline.hpp"
#include "gmt/types.hpp"
#include "obs/metrics.hpp"

namespace gmt::rt {

// Handle encoding: [ node (16) | slot (32) | generation (16) ].
inline gmt_handle make_handle(std::uint32_t node, std::uint32_t slot,
                              std::uint16_t generation) {
  return (static_cast<std::uint64_t>(node) << 48) |
         (static_cast<std::uint64_t>(slot) << 16) | generation;
}
inline std::uint32_t handle_node(gmt_handle h) {
  return static_cast<std::uint32_t>(h >> 48);
}
inline std::uint32_t handle_slot(gmt_handle h) {
  return static_cast<std::uint32_t>((h >> 16) & 0xffffffffULL);
}
inline std::uint16_t handle_generation(gmt_handle h) {
  return static_cast<std::uint16_t>(h & 0xffffULL);
}

// One contiguous span of a global range owned by a single node.
struct OwnedSpan {
  std::uint32_t node;
  std::uint64_t local_offset;   // offset into the owner's partition
  std::uint64_t global_offset;  // offset into the gmt_array
  std::uint64_t size;
};

// Metadata for one allocation, identical on every node.
struct ArrayMeta {
  static constexpr std::uint32_t kNoRemap = 0xffffffffu;

  std::uint64_t size = 0;   // total bytes
  Alloc policy = Alloc::kPartition;
  std::uint32_t home_node = 0;   // the allocating node
  std::uint32_t num_nodes = 1;   // cluster size at allocation
  std::uint16_t generation = 0;

  // Failure-mode state (populated into the by-value copy meta() returns
  // from the slot's atomic degrade word; the fields on the stored
  // LocalArray stay at their defaults except `replicated`). `degraded`
  // means at least one partition's owner died; operations that touch it
  // fail with GMT_ERR_NODE_LOST unless the partition was remapped onto its
  // buddy replica (opt-in replication, GMT_REPLICATE=1).
  bool replicated = false;
  bool degraded = false;
  std::uint32_t remap_partition = kNoRemap;  // lost partition index
  std::uint32_t remap_node = 0;              // buddy serving its replica

  // Nodes that hold a partition, in partition order. kRemote on a
  // single-node cluster has nobody else to hold the data, so it
  // deliberately degenerates to one home-node partition (same as kLocal);
  // this is documented, tested behaviour, not a silent fallback.
  std::uint32_t partition_count() const {
    switch (policy) {
      case Alloc::kPartition: return num_nodes;
      case Alloc::kLocal: return 1;
      case Alloc::kRemote: return num_nodes > 1 ? num_nodes - 1 : 1;
    }
    return 1;
  }

  // Bytes per partition block (last block may be short). Rounded to 8
  // bytes so naturally-aligned words never straddle an ownership boundary
  // (remote atomics require their word to live on a single node).
  std::uint64_t block_size() const {
    const std::uint64_t parts = partition_count();
    return (((size + parts - 1) / parts) + 7) & ~std::uint64_t{7};
  }

  // Buddy replication (kPartition policy only): partition `part`'s replica
  // lives on the owner of the next partition in ring order, biased
  // block_size() bytes into that node's local address space (past its own
  // partition, whose bytes never exceed one block).
  std::uint32_t buddy_node(std::uint32_t part) const {
    return partition_node((part + 1) % partition_count());
  }

  // The cluster node holding partition index `part`.
  std::uint32_t partition_node(std::uint32_t part) const {
    switch (policy) {
      case Alloc::kPartition:
        return part;
      case Alloc::kLocal:
        return home_node;
      case Alloc::kRemote:
        // Skip the home node: partitions map to 0..N-1 minus home.
        if (num_nodes <= 1) return home_node;
        return part < home_node ? part : part + 1;
    }
    return home_node;
  }

  // Inverse of partition_node: the partition index owned by `node`, or -1.
  std::int64_t node_partition(std::uint32_t node) const {
    switch (policy) {
      case Alloc::kPartition:
        return node < num_nodes ? static_cast<std::int64_t>(node) : -1;
      case Alloc::kLocal:
        return node == home_node ? 0 : -1;
      case Alloc::kRemote:
        if (node == home_node || node >= num_nodes || num_nodes <= 1)
          return node == home_node && num_nodes <= 1 ? 0 : -1;
        return node < home_node ? node : node - 1;
    }
    return -1;
  }

  // Bytes of this array stored on `node`.
  std::uint64_t bytes_on_node(std::uint32_t node) const {
    const std::int64_t part = node_partition(node);
    if (part < 0) return 0;
    const std::uint64_t block = block_size();
    const std::uint64_t begin = static_cast<std::uint64_t>(part) * block;
    if (begin >= size) return 0;
    const std::uint64_t end = begin + block;
    return (end > size ? size : end) - begin;
  }

  // Decomposes a prefix of [offset, offset+length) into per-owner
  // contiguous spans, writing at most `cap` of them to `out` and storing
  // the number written in *count. Returns the bytes covered; callers loop
  // until the whole range is consumed. This is the hot-path variant: the
  // span buffer lives on the caller's stack, so op_put/op_get construct no
  // std::vector per operation.
  std::uint64_t decompose_fill(std::uint64_t offset, std::uint64_t length,
                               OwnedSpan* out, std::size_t cap,
                               std::size_t* count) const;

  // Decomposes [offset, offset+size) into per-owner contiguous spans,
  // appended to *out. Ranges crossing block boundaries split. Convenience
  // wrapper over decompose_fill for cold paths and tests.
  void decompose(std::uint64_t offset, std::uint64_t length,
                 std::vector<OwnedSpan>* out) const;
};

// Per-node view of one allocation: shared metadata + this node's storage,
// plus (opt-in replication) the replica of the partition this node wards.
// Replica bytes live at local offsets >= replica_bias (= block_size());
// local_ptr dispatches on the offset so remote requesters address replica
// bytes with plain `local_offset + block_size()` arithmetic.
struct LocalArray {
  ArrayMeta meta;
  std::unique_ptr<std::uint8_t[]> partition;  // null if no partition here
  std::uint64_t partition_bytes = 0;
  std::unique_ptr<std::uint8_t[]> replica;  // warded partition's mirror
  std::uint64_t replica_bytes = 0;
  std::uint64_t replica_bias = 0;  // = meta.block_size() when replica set

  std::uint8_t* local_ptr(std::uint64_t local_offset) {
    if (replica && local_offset >= replica_bias) {
      const std::uint64_t r = local_offset - replica_bias;
      GMT_DCHECK(r < replica_bytes);
      return replica.get() + r;
    }
    GMT_DCHECK(local_offset < partition_bytes);
    return partition.get() + local_offset;
  }
};

// Lifecycle metrics surfaced to the obs registry (inert when unbound).
struct MemStats {
  obs::Gauge live_handles;       // entries registered in this node's table
  obs::Gauge live_bytes;         // partition bytes held on this node
  obs::Gauge free_list_depth;    // retired slots awaiting reuse
  obs::Counter allocs;           // register_array calls
  obs::Counter frees;            // unregister_array calls
  obs::Counter slots_recycled;   // reservations served from the free list
  obs::Counter deferred_reclaims;  // frees that outlived a reclaim scan
  obs::Counter slots_orphaned;   // frees initiated off the home node
  obs::Counter arrays_degraded;  // arrays that lost a partition to a death
  obs::Counter arrays_remapped;  // of those, remapped onto a buddy replica

  void bind(obs::Registry& reg);
};

// The handle table of one node. Registration happens via broadcast ALLOC
// commands, so all nodes agree on (slot, generation) for each handle.
class GlobalMemory {
 public:
  // `replicate_threshold` > 0 turns on buddy replication: kPartition
  // arrays up to that many bytes (with >1 partition) get their partitions
  // mirrored to the next node in ring order, so a single node's death
  // remaps instead of degrading them.
  GlobalMemory(std::uint32_t node_id, std::uint32_t num_nodes,
               std::uint32_t max_handles = 1 << 16,
               obs::Registry* registry = nullptr,
               std::uint64_t replicate_threshold = 0);
  ~GlobalMemory();
  GlobalMemory(const GlobalMemory&) = delete;
  GlobalMemory& operator=(const GlobalMemory&) = delete;

  std::uint32_t node_id() const { return node_id_; }
  std::uint32_t num_nodes() const { return num_nodes_; }

  // Reserves a slot on the allocating node (local step of gmt_new):
  // recycled from the free list when one is available, carved from the
  // monotonic counter otherwise. Returns the handle all nodes will
  // register under; its generation is the slot's previous generation + 1
  // (never the reserved null generation 0), so every handle minted against
  // an earlier incarnation of the slot fails the get()/valid() check.
  gmt_handle reserve_handle();

  // Registers an allocation under `handle` and materialises this node's
  // partition (zero-initialised). Called on every node.
  void register_array(gmt_handle handle, std::uint64_t size, Alloc policy,
                      std::uint32_t home_node);

  // Drops the allocation: the slot empties immediately (new lookups fail)
  // and this node's partition is reclaimed once no pinned accessor can
  // still hold it (immediately when nobody is pinned).
  void unregister_array(gmt_handle handle);

  // Returns `handle`'s slot to this node's free list for reuse. Only legal
  // on the reserving node (handle_node(handle) == node_id()), after the
  // free protocol fully completed: every node has unregistered, so a
  // broadcast re-registration of the recycled slot can no longer race an
  // in-flight FREE. The caller (op_free) guarantees that ordering.
  void recycle_handle(gmt_handle handle);

  // Records a free whose initiating node is not the reserving node: the
  // slot retires without recycling (reuse would race the in-flight FREE
  // broadcast at third nodes). Observability only.
  void note_orphaned_slot() { stats_.slots_orphaned.add(); }

  // Lookup; fails loudly on stale or unknown handles.
  LocalArray& get(gmt_handle handle);

  // Metadata by value: safe to hold across fiber suspension points, where
  // a reference into the LocalArray could dangle if another task frees the
  // handle while this one is parked.
  ArrayMeta meta(gmt_handle handle);

  bool valid(gmt_handle handle) const;

  // ---- degraded mode (membership layer) ----

  // Fail-stop: `dead` left the membership. Every registered array with a
  // partition there is marked degraded via its slot's atomic degrade word;
  // replicated arrays whose buddy survives are remapped onto the replica
  // instead. Future register_array calls consult the accumulated dead set,
  // so allocations made after the death are born degraded/remapped too.
  // Called from the comm-server thread; readers see the word through
  // meta(). Idempotent per node.
  void degrade_node(std::uint32_t dead);

  std::uint64_t dead_mask() const {
    return dead_mask_.load(std::memory_order_acquire);
  }
  bool replicate_enabled() const { return replicate_threshold_ > 0; }

  // ---- deferred reclamation (epoch pins) ----

  // Marks the calling thread as actively dereferencing table entries.
  // While a guard is live, any LocalArray obtained from get() stays
  // allocated even if another thread unregisters it; the delete is
  // deferred until the guard (and every other active guard pinned before
  // the retire) drops. Nestable on one thread; cheap (one fenced store
  // per outermost pin).
  class AccessGuard {
   public:
    explicit AccessGuard(GlobalMemory& gm);
    ~AccessGuard();
    AccessGuard(const AccessGuard&) = delete;
    AccessGuard& operator=(const AccessGuard&) = delete;

   private:
    GlobalMemory& gm_;
    std::uint32_t idx_;
    bool outermost_;
  };

  // Frees every deferred partition no pinned accessor can still reach.
  // Called opportunistically on the alloc/free paths and at teardown.
  void reclaim_deferred();

  // Bytes currently allocated for partitions on this node.
  std::uint64_t local_bytes() const {
    return local_bytes_.load(std::memory_order_relaxed);
  }

  // Test/report introspection (racy snapshots).
  std::size_t free_list_depth() const {
    return free_depth_.load(std::memory_order_relaxed);
  }
  std::size_t deferred_depth() const;
  std::uint64_t live_handles() const {
    return live_handles_.load(std::memory_order_relaxed);
  }

 private:
  friend class AccessGuard;

  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;
  static constexpr std::uint32_t kMaxAccessors = 256;

  struct Slot {
    std::atomic<LocalArray*> array{nullptr};
    std::atomic<std::uint16_t> generation{0};
    // Intrusive link for the retired-slot free list (valid only while the
    // slot sits in the list).
    std::atomic<std::uint32_t> next_free{0};
    // Degrade word, packed [ degraded(1) | remap_valid(1) | .. |
    // remap_node(16) | remap_partition(16) ]; 0 = healthy. Written by
    // degrade_node/register_array, folded into meta()'s by-value copy.
    std::atomic<std::uint64_t> degrade{0};
  };

  static constexpr std::uint64_t kDegradedBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kRemapValidBit = std::uint64_t{1} << 62;

  // Degrade word for `meta` given the accumulated dead set (0 = healthy).
  std::uint64_t degrade_word(const ArrayMeta& meta,
                             std::uint64_t dead_mask) const;

  // One pinned-epoch cell per accessor thread. 0 = quiescent; a non-zero
  // value is the global epoch observed when the thread pinned.
  struct alignas(kCacheLine) Accessor {
    std::atomic<std::uint64_t> epoch{0};
  };

  // An unlinked LocalArray awaiting reclamation: freeable once every
  // active accessor's pinned epoch reaches safe_epoch.
  struct Deferred {
    LocalArray* array;
    std::uint64_t safe_epoch;
    bool survived_scan;  // outlived at least one reclaim pass
  };

  void push_free(std::uint32_t slot);
  std::uint32_t pop_free();
  std::uint32_t accessor_index();  // registers the calling thread lazily
  void pin(std::uint32_t idx);
  void unpin(std::uint32_t idx);
  void retire(LocalArray* array);
  void reclaim_locked();

  const std::uint32_t node_id_;
  const std::uint32_t num_nodes_;
  const std::uint32_t max_handles_;
  const std::uint64_t replicate_threshold_;
  std::atomic<std::uint64_t> dead_mask_{0};
  const std::uint64_t uid_;  // distinguishes instances for the TLS cache
  std::vector<Slot> slots_;
  std::atomic<std::uint32_t> next_slot_{1};  // slot 0 unused (null handle)
  std::atomic<std::uint64_t> local_bytes_{0};
  std::atomic<std::uint64_t> live_handles_{0};

  // Retired-slot free list: Treiber stack over slot indices, head packed
  // as [ tag (32) | slot (32) ]; the tag increments on every successful
  // push and pop, closing the classic indexed-stack ABA window.
  std::atomic<std::uint64_t> free_head_;
  std::atomic<std::uint32_t> free_depth_{0};

  // Epoch machinery. The global epoch advances on every retire; accessor
  // cells publish the epoch a thread pinned at (0 = quiescent).
  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::uint32_t> num_accessors_{0};
  std::unique_ptr<Accessor[]> accessors_;
  mutable std::mutex deferred_mu_;
  std::vector<Deferred> deferred_;
  // Mirror of deferred_.size(), maintained under the mutex: lets the
  // steady-state alloc path skip the lock when nothing is retired.
  std::atomic<std::size_t> deferred_count_{0};

  MemStats stats_;
};

}  // namespace gmt::rt
