// Global address space: handle table, block distribution, and the node's
// local partitions.
//
// A gmt_array is identified by a handle and addressed by byte offset; the
// runtime maps (handle, offset) to (owner node, local offset) with the
// block-distribution arithmetic below. Every node holds an identical copy
// of each allocation's metadata (size, policy, block size) plus the storage
// for its own partition — exactly the state a PGAS runtime replicates so no
// remote lookup is ever needed to route a request.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "gmt/types.hpp"

namespace gmt::rt {

// Handle encoding: [ node (16) | slot (32) | generation (16) ].
inline gmt_handle make_handle(std::uint32_t node, std::uint32_t slot,
                              std::uint16_t generation) {
  return (static_cast<std::uint64_t>(node) << 48) |
         (static_cast<std::uint64_t>(slot) << 16) | generation;
}
inline std::uint32_t handle_node(gmt_handle h) {
  return static_cast<std::uint32_t>(h >> 48);
}
inline std::uint32_t handle_slot(gmt_handle h) {
  return static_cast<std::uint32_t>((h >> 16) & 0xffffffffULL);
}
inline std::uint16_t handle_generation(gmt_handle h) {
  return static_cast<std::uint16_t>(h & 0xffffULL);
}

// One contiguous span of a global range owned by a single node.
struct OwnedSpan {
  std::uint32_t node;
  std::uint64_t local_offset;   // offset into the owner's partition
  std::uint64_t global_offset;  // offset into the gmt_array
  std::uint64_t size;
};

// Metadata for one allocation, identical on every node.
struct ArrayMeta {
  std::uint64_t size = 0;   // total bytes
  Alloc policy = Alloc::kPartition;
  std::uint32_t home_node = 0;   // the allocating node
  std::uint32_t num_nodes = 1;   // cluster size at allocation
  std::uint16_t generation = 0;

  // Nodes that hold a partition, in partition order.
  std::uint32_t partition_count() const {
    switch (policy) {
      case Alloc::kPartition: return num_nodes;
      case Alloc::kLocal: return 1;
      case Alloc::kRemote: return num_nodes > 1 ? num_nodes - 1 : 1;
    }
    return 1;
  }

  // Bytes per partition block (last block may be short). Rounded to 8
  // bytes so naturally-aligned words never straddle an ownership boundary
  // (remote atomics require their word to live on a single node).
  std::uint64_t block_size() const {
    const std::uint64_t parts = partition_count();
    return (((size + parts - 1) / parts) + 7) & ~std::uint64_t{7};
  }

  // The cluster node holding partition index `part`.
  std::uint32_t partition_node(std::uint32_t part) const {
    switch (policy) {
      case Alloc::kPartition:
        return part;
      case Alloc::kLocal:
        return home_node;
      case Alloc::kRemote:
        // Skip the home node: partitions map to 0..N-1 minus home.
        if (num_nodes <= 1) return home_node;
        return part < home_node ? part : part + 1;
    }
    return home_node;
  }

  // Inverse of partition_node: the partition index owned by `node`, or -1.
  std::int64_t node_partition(std::uint32_t node) const {
    switch (policy) {
      case Alloc::kPartition:
        return node < num_nodes ? static_cast<std::int64_t>(node) : -1;
      case Alloc::kLocal:
        return node == home_node ? 0 : -1;
      case Alloc::kRemote:
        if (node == home_node || node >= num_nodes || num_nodes <= 1)
          return node == home_node && num_nodes <= 1 ? 0 : -1;
        return node < home_node ? node : node - 1;
    }
    return -1;
  }

  // Bytes of this array stored on `node`.
  std::uint64_t bytes_on_node(std::uint32_t node) const {
    const std::int64_t part = node_partition(node);
    if (part < 0) return 0;
    const std::uint64_t block = block_size();
    const std::uint64_t begin = static_cast<std::uint64_t>(part) * block;
    if (begin >= size) return 0;
    const std::uint64_t end = begin + block;
    return (end > size ? size : end) - begin;
  }

  // Decomposes a prefix of [offset, offset+length) into per-owner
  // contiguous spans, writing at most `cap` of them to `out` and storing
  // the number written in *count. Returns the bytes covered; callers loop
  // until the whole range is consumed. This is the hot-path variant: the
  // span buffer lives on the caller's stack, so op_put/op_get construct no
  // std::vector per operation.
  std::uint64_t decompose_fill(std::uint64_t offset, std::uint64_t length,
                               OwnedSpan* out, std::size_t cap,
                               std::size_t* count) const;

  // Decomposes [offset, offset+size) into per-owner contiguous spans,
  // appended to *out. Ranges crossing block boundaries split. Convenience
  // wrapper over decompose_fill for cold paths and tests.
  void decompose(std::uint64_t offset, std::uint64_t length,
                 std::vector<OwnedSpan>* out) const;
};

// Per-node view of one allocation: shared metadata + this node's storage.
struct LocalArray {
  ArrayMeta meta;
  std::unique_ptr<std::uint8_t[]> partition;  // null if no partition here
  std::uint64_t partition_bytes = 0;

  std::uint8_t* local_ptr(std::uint64_t local_offset) {
    GMT_DCHECK(local_offset < partition_bytes);
    return partition.get() + local_offset;
  }
};

// The handle table of one node. Registration happens via broadcast ALLOC
// commands, so all nodes agree on (slot, generation) for each handle.
class GlobalMemory {
 public:
  GlobalMemory(std::uint32_t node_id, std::uint32_t num_nodes,
               std::uint32_t max_handles = 1 << 16);

  std::uint32_t node_id() const { return node_id_; }
  std::uint32_t num_nodes() const { return num_nodes_; }

  // Reserves a slot on the allocating node (local step of gmt_new).
  // Returns the handle all nodes will register under.
  gmt_handle reserve_handle();

  // Registers an allocation under `handle` and materialises this node's
  // partition (zero-initialised). Called on every node.
  void register_array(gmt_handle handle, std::uint64_t size, Alloc policy,
                      std::uint32_t home_node);

  // Drops the allocation and frees this node's partition.
  void unregister_array(gmt_handle handle);

  // Lookup; fails loudly on stale or unknown handles.
  LocalArray& get(gmt_handle handle);
  const ArrayMeta& meta(gmt_handle handle) { return get(handle).meta; }

  bool valid(gmt_handle handle) const;

  // Bytes currently allocated for partitions on this node.
  std::uint64_t local_bytes() const {
    return local_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<LocalArray*> array{nullptr};
    std::atomic<std::uint16_t> generation{0};
  };

  const std::uint32_t node_id_;
  const std::uint32_t num_nodes_;
  const std::uint32_t max_handles_;
  std::vector<Slot> slots_;
  std::atomic<std::uint32_t> next_slot_{1};  // slot 0 unused (null handle)
  std::atomic<std::uint64_t> local_bytes_{0};
};

}  // namespace gmt::rt
