#include "runtime/aggregation.hpp"

#include "common/backoff.hpp"
#include "common/time.hpp"
#include "gmt/obs.hpp"
#include "net/frame.hpp"
#include "obs/trace.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

namespace {

// Pool must let every thread hold one open block per destination and still
// leave slack for blocks parked in aggregation queues.
std::size_t block_population(const Config& config, std::uint32_t num_nodes,
                             std::uint32_t num_threads) {
  const std::size_t floor_needed =
      static_cast<std::size_t>(num_threads) * num_nodes + 4 * num_threads + 16;
  return config.cmd_block_pool_size > floor_needed
             ? config.cmd_block_pool_size
             : floor_needed;
}

std::size_t buffer_population(const Config& config,
                              std::uint32_t num_threads) {
  const std::size_t n =
      static_cast<std::size_t>(config.num_buf_per_channel) * num_threads;
  return n < 8 ? 8 : n;
}

// Bytes of a buffer available to commands. The frame header reserve comes
// out of the command budget so a full command block always fits an empty
// aggregation buffer.
std::uint32_t payload_capacity(const Config& config) {
  return config.buffer_size -
         (config.reliable_transport
              ? static_cast<std::uint32_t>(net::kFrameHeaderSize)
              : 0u);
}

// Recycle passes a non-task caller attempts before it is handed an
// off-pool emergency block (it must not wait: a helper that stops draining
// incoming buffers would wedge the peer's credit window — a distributed
// deadlock the emergency path exists to rule out).
constexpr std::uint32_t kEmergencyPasses = 8;

// Adaptive flush AIMD parameters. The queue deadline halves every time the
// deadline fires with less than kAdaptiveFillNum/Den of a buffer queued
// (waiting bought no coalescing) and grows by 5/4 whenever the size
// trigger flushes a full buffer first (waiting is free); the block
// deadline tracks it at half scale so blocks feed queues ahead of the
// queue flush. The floor sits where per-message fixed costs start to
// dominate; the ceiling bounds worst-case latency for sparse traffic.
constexpr std::uint64_t kAdaptiveQueueMinNs = 5'000;
constexpr std::uint64_t kAdaptiveQueueMaxNs = 1'000'000;
constexpr std::uint64_t kAdaptiveBlockMinNs = 2'500;
constexpr std::uint64_t kAdaptiveBlockMaxNs = 500'000;
constexpr std::uint64_t kAdaptiveFillNum = 1;
constexpr std::uint64_t kAdaptiveFillDen = 4;

std::uint64_t clamp_adaptive(std::uint64_t t) {
  if (t < kAdaptiveQueueMinNs) return kAdaptiveQueueMinNs;
  if (t > kAdaptiveQueueMaxNs) return kAdaptiveQueueMaxNs;
  return t;
}

}  // namespace

void AggStats::bind(obs::Registry& reg) {
  commands = reg.counter(obs::names::kAggCommands);
  blocks_full = reg.counter(obs::names::kAggBlocksFull);
  blocks_timeout = reg.counter(obs::names::kAggBlocksTimeout);
  buffers_sent = reg.counter(obs::names::kAggBuffersSent);
  buffer_bytes = reg.counter(obs::names::kAggBufferBytes);
  aggregations = reg.counter(obs::names::kAggPasses);
  flush_bytes = reg.histogram(obs::names::kAggFlushBytes);
  credits_consumed = reg.counter(obs::names::kAggCreditsConsumed);
  credits_granted = reg.counter(obs::names::kAggCreditsGranted);
  credit_stalls = reg.counter(obs::names::kAggCreditStalls);
  blocks_emergency = reg.counter(obs::names::kAggBlocksEmergency);
  credit_stall_ns = reg.histogram(obs::names::kAggCreditStallNs);
  adaptive_queue_ns = reg.histogram(obs::names::kAggAdaptiveQueueNs);
  adaptive_block_ns = reg.histogram(obs::names::kAggAdaptiveBlockNs);
  combine_hits = reg.counter(obs::names::kAggCombineHits);
  combine_installs = reg.counter(obs::names::kAggCombineInstalls);
  combine_evictions = reg.counter(obs::names::kAggCombineEvictions);
  combine_drains = reg.counter(obs::names::kAggCombineDrains);
}

Aggregator::Aggregator(const Config& config, std::uint32_t num_nodes,
                       std::uint32_t num_threads, obs::Registry* registry)
    : config_(config),
      num_nodes_(num_nodes),
      combine_entries_(config.combine ? config.combine_table : 0),
      block_pool_(block_population(config, num_nodes, num_threads),
                  payload_capacity(config), config.cmd_block_entries),
      buffer_pool_(buffer_population(config, num_threads), config.buffer_size,
                   config.reliable_transport
                       ? static_cast<std::uint32_t>(net::kFrameHeaderSize)
                       : 0u) {
  if (registry) stats_.bind(*registry);
  queues_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    // 2x the pool population: the queue must absorb emergency (off-pool)
    // blocks on top of every pooled block without ever being full.
    auto queue = std::make_unique<DestQueue>(block_pool_.population() * 2);
    queue->credits.store(static_cast<std::int64_t>(config.flow_credits),
                         std::memory_order_relaxed);
    queues_.push_back(std::move(queue));
  }
  slots_.reserve(num_threads);
  for (std::uint32_t i = 0; i < num_threads; ++i)
    slots_.push_back(std::make_unique<AggregationSlot>(
        this, num_nodes, config.num_buf_per_channel * 2 + 2,
        combine_entries_));
}

bool Aggregator::park_for_aggregation(const CmdHeader* header) {
  Worker* w = Worker::current();
  if (w == nullptr) return false;
  Task* task = w->current_task();
  if (task == nullptr || task->wake == nullptr) return false;

  const std::uint64_t token = task_token(task);
  // The stall ticket is one pending_op completed by wake_stalled. When the
  // command being appended already carries this task's token, its op_*
  // caller pre-counted it in pending_ops — that unsent op can never
  // complete on its own (it is exactly what we are stalled on), so its
  // count *is* the ticket; consuming it and restoring it after the wakeup
  // avoids a self-deadlock in task_block. Any other command (e.g. a
  // spawn-done bound for a remote task) needs an explicit ticket.
  const bool precounted = header != nullptr && header->token == token;
  if (!precounted) task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stall_mutex_);
    stall_tokens_.push_back(token);
    stall_waiters_.store(static_cast<std::uint32_t>(stall_tokens_.size()),
                         std::memory_order_release);
  }
  stats_.credit_stalls.add();
  const std::uint64_t stall_start_ns = wall_ns();
  w->task_block();
  stats_.credit_stall_ns.observe(wall_ns() - stall_start_ns);
  if (precounted) task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Aggregator::wake_stalled() {
  if (stall_waiters_.load(std::memory_order_acquire) == 0) return;
  std::vector<std::uint64_t> tokens;
  {
    std::lock_guard<std::mutex> lock(stall_mutex_);
    tokens.swap(stall_tokens_);
    stall_waiters_.store(0, std::memory_order_release);
  }
  for (std::uint64_t token : tokens) complete_one(token);
}

void Aggregator::note_buffer_drained(std::uint32_t src) {
  if (!flow_enabled()) return;
  queues_[src]->drained.fetch_add(1, std::memory_order_release);
  stats_.credits_granted.add();
}

std::uint16_t Aggregator::drained_credit(std::uint32_t peer) const {
  return static_cast<std::uint16_t>(
      queues_[peer]->drained.load(std::memory_order_acquire));
}

void Aggregator::apply_credit_grant(std::uint32_t peer,
                                    std::uint16_t cumulative) {
  if (!flow_enabled()) return;
  DestQueue& queue = *queues_[peer];
  std::uint16_t seen = queue.grant_seen.load(std::memory_order_relaxed);
  for (;;) {
    // Cumulative counter mod 2^16: a delta in [1, 0x7fff] is a fresh grant,
    // anything else a stale or duplicate advert (reordered ack).
    const auto delta = static_cast<std::uint16_t>(cumulative - seen);
    if (delta == 0 || delta >= 0x8000) return;
    if (queue.grant_seen.compare_exchange_weak(seen, cumulative,
                                               std::memory_order_acq_rel)) {
      queue.credits.fetch_add(delta, std::memory_order_release);
      wake_stalled();
      return;
    }
  }
}

std::int64_t Aggregator::credits_available(std::uint32_t dst) const {
  return queues_[dst]->credits.load(std::memory_order_acquire);
}

CommandBlock* Aggregator::acquire_block(AggregationSlot& slot,
                                        const CmdHeader* header) {
  CommandBlock* block = block_pool_.try_acquire();
  if (block) return block;
  Backoff backoff;
  for (std::uint32_t pass = 0;; ++pass) {
    // Recycle: aggregating the fullest queue releases its blocks.
    std::uint32_t best = 0;
    std::uint64_t best_bytes = 0;
    for (std::uint32_t d = 0; d < num_nodes_; ++d) {
      const std::uint64_t bytes =
          queues_[d]->queued_bytes.load(std::memory_order_relaxed);
      if (bytes > best_bytes) {
        best_bytes = bytes;
        best = d;
      }
    }
    if (best_bytes > 0) aggregate(slot, best, /*force=*/true);
    block = block_pool_.try_acquire();
    if (block) return block;
    // A task parks (woken by the poll_flush fallback once blocks recycle);
    // the caller re-evaluates slot state from scratch on nullptr.
    if (park_for_aggregation(header)) return nullptr;
    if (pass >= kEmergencyPasses) {
      const std::uint32_t outstanding =
          emergency_outstanding_.fetch_add(1, std::memory_order_relaxed);
      if (outstanding < block_pool_.population()) {
        auto* fresh = new CommandBlock(payload_capacity(config_),
                                       config_.cmd_block_entries);
        fresh->pooled = false;
        stats_.blocks_emergency.add();
        return fresh;
      }
      emergency_outstanding_.fetch_sub(1, std::memory_order_relaxed);
    }
    // Root task (no wake list) or non-task context: yield the fiber if
    // possible so siblings make progress, otherwise back off the thread.
    if (Worker* w = Worker::current(); w && w->current_task())
      w->task_yield();
    else
      backoff.pause();
  }
}

void Aggregator::recycle_block(CommandBlock* block) {
  if (block->pooled) {
    block->reset();
    block_pool_.release(block);
  } else {
    delete block;
    emergency_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  }
}

AggBuffer* Aggregator::acquire_buffer(AggregationSlot& slot) {
  // Buffers come back from the comm server after each send; under
  // exhaustion wait for it to catch up — a task yields so its siblings
  // keep running, other contexts back off (the comm server drains the
  // channels on its own thread either way).
  (void)slot;
  Backoff backoff;
  for (;;) {
    AggBuffer* buffer = buffer_pool_.try_acquire();
    if (buffer) return buffer;
    if (Worker* w = Worker::current(); w && w->current_task())
      w->task_yield();
    else
      backoff.pause();
  }
}

bool Aggregator::append(AggregationSlot& slot, std::uint32_t dst,
                        const CmdHeader& header, const void* payload) {
  // Per-(slot,dst) FIFO with held entries: a held combined op must never be
  // passed by a later command to the same destination (a blocking put after
  // a held put to one address must land second, and a blocking atomic must
  // observe every held add), so any ordinary append flushes the table
  // first. One predicted-not-taken branch when combining is off.
  if (combine_entries_ != 0 && slot.combine_[dst].live > 0)
    drain_combined(slot, dst);
  return append_raw(slot, dst, header, payload);
}

CombineResult Aggregator::combine(AggregationSlot& slot, std::uint32_t dst,
                                  const CmdHeader& header) {
  if (combine_entries_ == 0) return CombineResult::kBypass;
  GMT_DCHECK(dst < num_nodes_);
  GMT_DCHECK(header.payload_size == 0);
  GMT_DCHECK(header.op == Op::kAtomicAdd || header.op == Op::kPutValue);
  const std::uint32_t index = combine_index(header);
  // Retry loop: the eviction below appends into the command block, which
  // can suspend this fiber (credit park, pool wait); a sibling task may
  // have refilled the cell — or the membership layer killed the
  // destination — by the time it resumes, so each iteration re-reads
  // everything from scratch.
  for (;;) {
    if (dest_dead(dst)) return CombineResult::kBypass;
    AggregationSlot::CombineTable& table = slot.combine_[dst];
    AggregationSlot::CombineEntry& cell = table.cells[index];
    if (!cell.used) {
      cell.used = true;
      cell.handle = header.handle;
      cell.offset = header.offset;
      cell.token = header.token;
      cell.value = header.aux1;
      cell.aux2 = header.aux2;
      cell.op = header.op;
      cell.flags = header.flags;
      if (table.live++ == 0) table.first_ns = wall_ns();
      stats_.combine_installs.add();
      return CombineResult::kInstalled;
    }
    if (cell.handle == header.handle && cell.offset == header.offset &&
        cell.token == header.token && cell.op == header.op &&
        cell.flags == header.flags && cell.aux2 == header.aux2) {
      // Same key, same task: fold. Adds accumulate (mod 2^width, exactly
      // how the destination's fetch_add would have wrapped applying them
      // one by one); repeated put-values dedup last-writer-wins.
      if (cell.op == Op::kAtomicAdd)
        cell.value += header.aux1;
      else
        cell.value = header.aux1;
      stats_.combine_hits.add();
      return CombineResult::kMerged;
    }
    // Collision: evict the resident straight into the command block.
    // Clear the cell *before* the append — it can suspend this fiber.
    const CmdHeader evicted = entry_header(cell);
    cell.used = false;
    --table.live;
    stats_.combine_evictions.add();
    // False only when dst died mid-eviction: the entry is dropped, and the
    // membership death sweep fails its install-time-tracked token.
    (void)append_raw(slot, dst, evicted, nullptr);
  }
}

void Aggregator::drain_combined(AggregationSlot& slot, std::uint32_t dst) {
  AggregationSlot::CombineTable& table = slot.combine_[dst];
  for (std::size_t i = 0; i < table.cells.size(); ++i) {
    // Indexed re-read each iteration: append_raw can suspend the fiber and
    // siblings mutate the table meanwhile.
    AggregationSlot::CombineEntry& cell = table.cells[i];
    if (!cell.used) continue;
    const CmdHeader header = entry_header(cell);
    cell.used = false;
    --table.live;
    stats_.combine_drains.add();
    // Dead destination: dropped without completion — the token was tracked
    // at install, so the membership sweep owns failing it.
    (void)append_raw(slot, dst, header, nullptr);
  }
}

bool Aggregator::append_raw(AggregationSlot& slot, std::uint32_t dst,
                            const CmdHeader& header, const void* payload) {
  GMT_DCHECK(dst < num_nodes_);
  const std::size_t wire = cmd_wire_size(header);
  GMT_CHECK_MSG(wire + kCmdHeaderSize <= payload_capacity(config_),
                "single command exceeds aggregation buffer (chunk it)");

  // Retry loop: every park/yield below can suspend the calling task, and
  // another task on the same worker may mutate the slot meanwhile — so a
  // suspension point never shares an iteration with the append that follows
  // it, and each iteration re-reads all slot state from scratch.
  const bool flow = flow_enabled();
  for (;;) {
    // Checked every iteration: a task parked on credit toward a peer that
    // then died is woken by mark_dead and must land here, not re-park
    // against a credit grant that will never come.
    if (dest_dead(dst)) return false;
    if (flow) {
      // Credit backpressure: once a full buffer's worth is backlogged for a
      // credit-starved destination, appending more only grows the backlog.
      // Park the task until the peer grants credits; non-task callers fall
      // through (helpers must keep draining — the queue absorbs it).
      DestQueue& queue = *queues_[dst];
      if (queue.credits.load(std::memory_order_acquire) <= 0 &&
          queue.queued_bytes.load(std::memory_order_relaxed) >=
              config_.buffer_size) {
        if (park_for_aggregation(&header)) continue;
      }
    }
    CommandBlock* current = slot.current_[dst];
    if (current && !current->fits(wire)) {
      // push_block may aggregate, which can suspend in acquire_buffer; the
      // slot can hold a different current block by the time it returns.
      push_block(slot, dst);
      stats_.blocks_full.add();
      continue;
    }
    if (current == nullptr) {
      CommandBlock* fresh = acquire_block(slot, &header);
      if (fresh == nullptr) continue;  // parked and woken: re-evaluate
      if (slot.current_[dst] != nullptr) {
        // A sibling task installed a block for this destination while this
        // task waited on the pool; installing `fresh` over it would orphan
        // that block and lose its commands.
        recycle_block(fresh);
        continue;
      }
      slot.current_[dst] = fresh;
      current = fresh;
    }
    // No suspension point between reading `current` and appending into it.
    std::uint8_t* out = current->append(wire, wall_ns());
    encode_cmd(out, header, payload);
    stats_.commands.add();
    return true;
  }
}

void Aggregator::mark_dead(std::uint32_t dst) {
  GMT_DCHECK(dst < num_nodes_ && dst < 64);
  // Bit first (release): after this, append refuses the destination, so the
  // drain below races only with stragglers whose commands the next
  // aggregate() pass drops.
  dead_mask_.fetch_or(std::uint64_t{1} << dst, std::memory_order_acq_rel);
  drain_dead(dst);
  // Tasks parked on the dead peer's credit window re-evaluate and fail out
  // through append() == false instead of waiting for a grant forever.
  wake_stalled();
}

void Aggregator::drain_dead(std::uint32_t dst) {
  DestQueue& queue = *queues_[dst];
  CommandBlock* block = nullptr;
  while (queue.blocks.pop(&block)) {
    queue.queued_bytes.fetch_sub(block->bytes(), std::memory_order_relaxed);
    recycle_block(block);
    block = nullptr;
  }
  if (queue.queued_bytes.load(std::memory_order_relaxed) == 0)
    queue.oldest_ns.store(0, std::memory_order_relaxed);
}

void Aggregator::push_block(AggregationSlot& slot, std::uint32_t dst) {
  CommandBlock* block = slot.current_[dst];
  GMT_DCHECK(block && block->cmds() > 0);
  slot.current_[dst] = nullptr;

  DestQueue& queue = *queues_[dst];
  const std::uint64_t bytes = block->bytes();
  // Sized to the block-pool population plus emergency headroom, the queue
  // can never be genuinely full — but a Vyukov push can fail transiently
  // while concurrent pops are mid-flight, so retry.
  Backoff push_backoff;
  for (std::uint32_t attempt = 0; !queue.blocks.push(block); ++attempt) {
    GMT_CHECK_MSG(attempt < 1u << 24,
                  "aggregation queue overflow (sized to pool population)");
    push_backoff.pause();
  }
  const std::uint64_t now = wall_ns();
  const std::uint64_t prev =
      queue.queued_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (prev == 0) queue.oldest_ns.store(now, std::memory_order_relaxed);

  // Enough queued for a full network buffer? Aggregate now (paper step 4).
  if (prev + bytes >= config_.buffer_size) {
    if (config_.adaptive_flush) {
      // AIMD grow: the size trigger filled a buffer before the deadline
      // fired, so the deadline wasn't costing latency — it can afford to
      // lengthen and let sparser phases coalesce more.
      const std::uint64_t t = queue_timeout_ns(queue);
      const std::uint64_t grown = clamp_adaptive(t + t / 4);
      queue.adaptive_ns.store(grown, std::memory_order_relaxed);
    }
    aggregate(slot, dst, /*force=*/false);
  }
}

void Aggregator::aggregate(AggregationSlot& slot, std::uint32_t dst,
                           bool force) {
  DestQueue& queue = *queues_[dst];
  if (dest_dead(dst)) {
    // Before the credit check on purpose: a dead peer grants no credits, so
    // its backlog must drain unconditionally or it pins pool blocks (and
    // idle()) forever. The commands are dropped; the membership layer
    // already failed their tracked completions.
    drain_dead(dst);
    return;
  }
  AggBuffer* buffer = nullptr;
  CommandBlock* block = nullptr;

  stats_.aggregations.add();
  const bool flow = flow_enabled();
  const bool tracing = obs::trace_on();
  const std::uint64_t trace_start_ns = tracing ? wall_ns() : 0;
  std::uint64_t drained_bytes = 0;
  for (;;) {
    if (!block) {
      // Out of credit: stop *before* popping so no block is stranded
      // outside the queue (a filled buffer still ships below). Only a pass
      // already holding a popped block overdraws — by exactly one buffer,
      // since the next iteration lands back here — so credits go negative
      // by at most one per concurrent pass and the receiver's incoming
      // queue is sized for the overshoot.
      if (flow && queue.credits.load(std::memory_order_acquire) <= 0) break;
      if (!queue.blocks.pop(&block)) break;
    }
    if (!buffer) {
      buffer = acquire_buffer(slot);
      buffer->reset();
      buffer->dst = dst;
      if (flow) {
        queue.credits.fetch_sub(1, std::memory_order_acq_rel);
        stats_.credits_consumed.add();
      }
    }
    if (!buffer->fits(block->bytes())) {
      // Ship the filled buffer, keep the block for the next one.
      send_buffer(slot, buffer);
      buffer = nullptr;
      continue;
    }
    buffer->append(block->data(), block->bytes());
    drained_bytes += block->bytes();
    queue.queued_bytes.fetch_sub(block->bytes(), std::memory_order_relaxed);
    recycle_block(block);
    block = nullptr;
    // Without force, stop once less than a buffer's worth remains queued;
    // the remainder waits for more traffic or the timeout.
    if (!force && buffer->data().size() >= config_.buffer_size / 2 &&
        queue.queued_bytes.load(std::memory_order_relaxed) == 0)
      break;
  }
  if (buffer) {
    if (buffer->payload_bytes() > 0) {
      send_buffer(slot, buffer);
    } else {
      // Acquired but never filled (cannot happen today: a buffer is only
      // acquired with a block in hand); refund its credit.
      if (flow) queue.credits.fetch_add(1, std::memory_order_release);
      buffer_pool_.release(buffer);
    }
  }
  if (queue.queued_bytes.load(std::memory_order_relaxed) == 0)
    queue.oldest_ns.store(0, std::memory_order_relaxed);
  if (tracing && drained_bytes > 0)
    obs::trace_complete("buffer.flush", trace_start_ns, wall_ns(),
                        drained_bytes);
}

void Aggregator::send_buffer(AggregationSlot& slot, AggBuffer* buffer) {
  stats_.buffers_sent.add();
  stats_.buffer_bytes.add(buffer->payload_bytes());
  stats_.flush_bytes.observe(buffer->payload_bytes());
  Backoff backoff;
  while (!slot.channel_.push(buffer)) backoff.pause();
}

std::uint64_t Aggregator::queue_timeout_ns(DestQueue& queue) const {
  if (!config_.adaptive_flush) return config_.agg_queue_timeout_ns;
  std::uint64_t t = queue.adaptive_ns.load(std::memory_order_relaxed);
  if (t == 0) {
    // First read seeds from the configured deadline; from there the AIMD
    // loop owns the value.
    t = clamp_adaptive(config_.agg_queue_timeout_ns);
    queue.adaptive_ns.store(t, std::memory_order_relaxed);
  }
  return t;
}

std::uint64_t Aggregator::block_timeout_ns(std::uint64_t queue_timeout) const {
  if (!config_.adaptive_flush) return config_.cmd_block_timeout_ns;
  const std::uint64_t t = queue_timeout / 2;
  if (t < kAdaptiveBlockMinNs) return kAdaptiveBlockMinNs;
  if (t > kAdaptiveBlockMaxNs) return kAdaptiveBlockMaxNs;
  return t;
}

void Aggregator::poll_flush(AggregationSlot& slot, std::uint64_t now_ns) {
  for (std::uint32_t dst = 0; dst < num_nodes_; ++dst) {
    DestQueue& queue = *queues_[dst];
    const std::uint64_t queue_timeout = queue_timeout_ns(queue);
    if (combine_entries_ != 0 && slot.combine_[dst].live > 0) {
      // Held entries share the block deadline: they join the command block
      // here and ride the normal flush below. A dead destination drains
      // immediately so held entries never pin idle()/quiescence.
      if (dest_dead(dst) ||
          now_ns - slot.combine_[dst].first_ns >=
              block_timeout_ns(queue_timeout))
        drain_combined(slot, dst);
    }
    CommandBlock* current = slot.current_[dst];
    if (current && current->cmds() > 0) {
      const std::uint64_t block_timeout = block_timeout_ns(queue_timeout);
      if (now_ns - current->first_cmd_ns() >= block_timeout) {
        push_block(slot, dst);
        stats_.blocks_timeout.add();
        if (config_.adaptive_flush)
          stats_.adaptive_block_ns.observe(block_timeout);
      }
    }
    const std::uint64_t oldest =
        queue.oldest_ns.load(std::memory_order_relaxed);
    if (oldest != 0 && now_ns - oldest >= queue_timeout) {
      if (config_.adaptive_flush &&
          queue.queued_bytes.load(std::memory_order_relaxed) <
              config_.buffer_size * kAdaptiveFillNum / kAdaptiveFillDen) {
        // AIMD shrink: the deadline fired with the queue mostly empty, so
        // waiting bought almost no coalescing — it was pure latency. Halve
        // it so light traffic converges to the floor fast.
        const std::uint64_t shrunk = clamp_adaptive(queue_timeout / 2);
        queue.adaptive_ns.store(shrunk, std::memory_order_relaxed);
      }
      aggregate(slot, dst, /*force=*/true);
      if (config_.adaptive_flush)
        stats_.adaptive_queue_ns.observe(queue_timeout);
    }
  }
  // Lost-wakeup fallback: workers and helpers poll continuously, so any
  // task whose wake raced a resource release is re-readied within a poll
  // period (it re-parks if the resource is still gone).
  if (stall_waiters_.load(std::memory_order_acquire) != 0) wake_stalled();
}

void Aggregator::flush_all(AggregationSlot& slot) {
  for (std::uint32_t dst = 0; dst < num_nodes_; ++dst) {
    if (combine_entries_ != 0 && slot.combine_[dst].live > 0)
      drain_combined(slot, dst);
    CommandBlock* current = slot.current_[dst];
    if (current && current->cmds() > 0) push_block(slot, dst);
    if (queues_[dst]->queued_bytes.load(std::memory_order_relaxed) > 0)
      aggregate(slot, dst, /*force=*/true);
  }
}

void Aggregator::release_buffer(AggBuffer* buffer) {
  buffer->reset();
  buffer_pool_.release(buffer);
  wake_stalled();
}

bool Aggregator::idle() const {
  for (const auto& queue : queues_)
    if (queue->queued_bytes.load(std::memory_order_relaxed) != 0) return false;
  for (const auto& slot : slots_) {
    for (CommandBlock* block : slot->current_)
      if (block && block->cmds() > 0) return false;
    for (const auto& table : slot->combine_)
      if (table.live > 0) return false;
    if (!slot->channel_.empty()) return false;
  }
  return true;
}

}  // namespace gmt::rt
