#include "runtime/aggregation.hpp"

#include "common/backoff.hpp"
#include "common/time.hpp"
#include "gmt/obs.hpp"
#include "net/frame.hpp"
#include "obs/trace.hpp"

namespace gmt::rt {

namespace {

// Pool must let every thread hold one open block per destination and still
// leave slack for blocks parked in aggregation queues.
std::size_t block_population(const Config& config, std::uint32_t num_nodes,
                             std::uint32_t num_threads) {
  const std::size_t floor_needed =
      static_cast<std::size_t>(num_threads) * num_nodes + 4 * num_threads + 16;
  return config.cmd_block_pool_size > floor_needed
             ? config.cmd_block_pool_size
             : floor_needed;
}

std::size_t buffer_population(const Config& config,
                              std::uint32_t num_threads) {
  const std::size_t n =
      static_cast<std::size_t>(config.num_buf_per_channel) * num_threads;
  return n < 8 ? 8 : n;
}

// Bytes of a buffer available to commands. The frame header reserve comes
// out of the command budget so a full command block always fits an empty
// aggregation buffer.
std::uint32_t payload_capacity(const Config& config) {
  return config.buffer_size -
         (config.reliable_transport
              ? static_cast<std::uint32_t>(net::kFrameHeaderSize)
              : 0u);
}

}  // namespace

void AggStats::bind(obs::Registry& reg) {
  commands = reg.counter(obs::names::kAggCommands);
  blocks_full = reg.counter(obs::names::kAggBlocksFull);
  blocks_timeout = reg.counter(obs::names::kAggBlocksTimeout);
  buffers_sent = reg.counter(obs::names::kAggBuffersSent);
  buffer_bytes = reg.counter(obs::names::kAggBufferBytes);
  aggregations = reg.counter(obs::names::kAggPasses);
  flush_bytes = reg.histogram(obs::names::kAggFlushBytes);
}

Aggregator::Aggregator(const Config& config, std::uint32_t num_nodes,
                       std::uint32_t num_threads, obs::Registry* registry)
    : config_(config),
      num_nodes_(num_nodes),
      block_pool_(block_population(config, num_nodes, num_threads),
                  payload_capacity(config), config.cmd_block_entries),
      buffer_pool_(buffer_population(config, num_threads), config.buffer_size,
                   config.reliable_transport
                       ? static_cast<std::uint32_t>(net::kFrameHeaderSize)
                       : 0u) {
  if (registry) stats_.bind(*registry);
  queues_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    queues_.push_back(
        std::make_unique<DestQueue>(block_pool_.population()));
  slots_.reserve(num_threads);
  for (std::uint32_t i = 0; i < num_threads; ++i)
    slots_.push_back(std::make_unique<AggregationSlot>(
        this, num_nodes, config.num_buf_per_channel * 2 + 2));
}

CommandBlock* Aggregator::acquire_block(AggregationSlot& slot) {
  CommandBlock* block = block_pool_.try_acquire();
  if (block) return block;
  // Pool dry: recycle by aggregating the fullest queue, then retry.
  Backoff backoff;
  for (;;) {
    std::uint32_t best = 0;
    std::uint64_t best_bytes = 0;
    for (std::uint32_t d = 0; d < num_nodes_; ++d) {
      const std::uint64_t bytes =
          queues_[d]->queued_bytes.load(std::memory_order_relaxed);
      if (bytes > best_bytes) {
        best_bytes = bytes;
        best = d;
      }
    }
    if (best_bytes > 0) aggregate(slot, best, /*force=*/true);
    block = block_pool_.try_acquire();
    if (block) return block;
    backoff.pause();
  }
}

AggBuffer* Aggregator::acquire_buffer(AggregationSlot& slot) {
  // Buffers come back from the comm server after each send; under
  // exhaustion just wait for it to catch up — but keep draining our own
  // channel-visible state via backoff (the comm server runs on its own
  // thread).
  (void)slot;
  Backoff backoff;
  for (;;) {
    AggBuffer* buffer = buffer_pool_.try_acquire();
    if (buffer) return buffer;
    backoff.pause();
  }
}

void Aggregator::append(AggregationSlot& slot, std::uint32_t dst,
                        const CmdHeader& header, const void* payload) {
  GMT_DCHECK(dst < num_nodes_);
  const std::size_t wire = cmd_wire_size(header);
  GMT_CHECK_MSG(wire + kCmdHeaderSize <= payload_capacity(config_),
                "single command exceeds aggregation buffer (chunk it)");

  CommandBlock*& current = slot.current_[dst];
  if (current && !current->fits(wire)) {
    push_block(slot, dst);
    stats_.blocks_full.add();
  }
  if (!current) current = acquire_block(slot);

  std::uint8_t* out = current->append(wire, wall_ns());
  encode_cmd(out, header, payload);
  stats_.commands.add();
}

void Aggregator::push_block(AggregationSlot& slot, std::uint32_t dst) {
  CommandBlock* block = slot.current_[dst];
  GMT_DCHECK(block && block->cmds() > 0);
  slot.current_[dst] = nullptr;

  DestQueue& queue = *queues_[dst];
  const std::uint64_t bytes = block->bytes();
  // Sized to the block-pool population, the queue can never be genuinely
  // full — but a Vyukov push can fail transiently while concurrent pops
  // are mid-flight, so retry.
  Backoff push_backoff;
  for (std::uint32_t attempt = 0; !queue.blocks.push(block); ++attempt) {
    GMT_CHECK_MSG(attempt < 1u << 24,
                  "aggregation queue overflow (sized to pool population)");
    push_backoff.pause();
  }
  const std::uint64_t prev =
      queue.queued_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (prev == 0)
    queue.oldest_ns.store(wall_ns(), std::memory_order_relaxed);

  // Enough queued for a full network buffer? Aggregate now (paper step 4).
  if (prev + bytes >= config_.buffer_size)
    aggregate(slot, dst, /*force=*/false);
}

void Aggregator::aggregate(AggregationSlot& slot, std::uint32_t dst,
                           bool force) {
  DestQueue& queue = *queues_[dst];
  AggBuffer* buffer = nullptr;
  CommandBlock* block = nullptr;

  stats_.aggregations.add();
  const bool tracing = obs::trace_on();
  const std::uint64_t trace_start_ns = tracing ? wall_ns() : 0;
  std::uint64_t drained_bytes = 0;
  for (;;) {
    if (!block && !queue.blocks.pop(&block)) break;
    if (!buffer) {
      buffer = acquire_buffer(slot);
      buffer->reset();
      buffer->dst = dst;
    }
    if (!buffer->fits(block->bytes())) {
      // Ship the filled buffer, keep the block for the next one.
      send_buffer(slot, buffer);
      buffer = nullptr;
      continue;
    }
    buffer->append(block->data(), block->bytes());
    drained_bytes += block->bytes();
    queue.queued_bytes.fetch_sub(block->bytes(), std::memory_order_relaxed);
    block->reset();
    block_pool_.release(block);
    block = nullptr;
    // Without force, stop once less than a buffer's worth remains queued;
    // the remainder waits for more traffic or the timeout.
    if (!force && buffer->data().size() >= config_.buffer_size / 2 &&
        queue.queued_bytes.load(std::memory_order_relaxed) == 0)
      break;
  }
  if (buffer) {
    if (buffer->payload_bytes() > 0) {
      send_buffer(slot, buffer);
    } else {
      buffer_pool_.release(buffer);
    }
  }
  if (queue.queued_bytes.load(std::memory_order_relaxed) == 0)
    queue.oldest_ns.store(0, std::memory_order_relaxed);
  if (tracing && drained_bytes > 0)
    obs::trace_complete("buffer.flush", trace_start_ns, wall_ns(),
                        drained_bytes);
}

void Aggregator::send_buffer(AggregationSlot& slot, AggBuffer* buffer) {
  stats_.buffers_sent.add();
  stats_.buffer_bytes.add(buffer->payload_bytes());
  stats_.flush_bytes.observe(buffer->payload_bytes());
  Backoff backoff;
  while (!slot.channel_.push(buffer)) backoff.pause();
}

void Aggregator::poll_flush(AggregationSlot& slot, std::uint64_t now_ns) {
  for (std::uint32_t dst = 0; dst < num_nodes_; ++dst) {
    CommandBlock* current = slot.current_[dst];
    if (current && current->cmds() > 0 &&
        now_ns - current->first_cmd_ns() >= config_.cmd_block_timeout_ns) {
      push_block(slot, dst);
      stats_.blocks_timeout.add();
    }
    DestQueue& queue = *queues_[dst];
    const std::uint64_t oldest =
        queue.oldest_ns.load(std::memory_order_relaxed);
    if (oldest != 0 && now_ns - oldest >= config_.agg_queue_timeout_ns)
      aggregate(slot, dst, /*force=*/true);
  }
}

void Aggregator::flush_all(AggregationSlot& slot) {
  for (std::uint32_t dst = 0; dst < num_nodes_; ++dst) {
    CommandBlock* current = slot.current_[dst];
    if (current && current->cmds() > 0) push_block(slot, dst);
    if (queues_[dst]->queued_bytes.load(std::memory_order_relaxed) > 0)
      aggregate(slot, dst, /*force=*/true);
  }
}

void Aggregator::release_buffer(AggBuffer* buffer) {
  buffer->reset();
  buffer_pool_.release(buffer);
}

bool Aggregator::idle() const {
  for (const auto& queue : queues_)
    if (queue->queued_bytes.load(std::memory_order_relaxed) != 0) return false;
  for (const auto& slot : slots_) {
    for (CommandBlock* block : slot->current_)
      if (block && block->cmds() > 0) return false;
    if (!slot->channel_.empty()) return false;
  }
  return true;
}

}  // namespace gmt::rt
