#include "runtime/collectives.hpp"

#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "runtime/node.hpp"

namespace gmt::coll {

namespace {

// Elements processed per task: large enough to amortise spawn cost, small
// enough that the stripe buffer (kStripe * 8 bytes) fits comfortably on a
// task stack alongside call frames.
constexpr std::uint64_t kStripe = 512;

struct RangeArgs {
  gmt_handle array;
  std::uint64_t first;
  std::uint64_t count;
  std::uint64_t value;       // fill value / probe value
  gmt_handle accumulator;    // reduction cell(s)
  std::uint64_t num_bins;
};

std::uint64_t stripe_count(std::uint64_t count) {
  return (count + kStripe - 1) / kStripe;
}

// Bounds of stripe s within [first, first+count).
void stripe_bounds(const RangeArgs& args, std::uint64_t stripe,
                   std::uint64_t* begin, std::uint64_t* n) {
  *begin = args.first + stripe * kStripe;
  const std::uint64_t end = args.first + args.count;
  *n = *begin < end ? (end - *begin < kStripe ? end - *begin : kStripe) : 0;
}

void fill_body(std::uint64_t stripe, const void* raw) {
  RangeArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  stripe_bounds(args, stripe, &begin, &n);
  std::uint64_t buffer[kStripe];
  for (std::uint64_t i = 0; i < n; ++i) buffer[i] = args.value;
  if (n) gmt_put(args.array, begin * 8, buffer, n * 8);
}

void sum_body(std::uint64_t stripe, const void* raw) {
  RangeArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  stripe_bounds(args, stripe, &begin, &n);
  if (!n) return;
  std::uint64_t buffer[kStripe];
  gmt_get(args.array, begin * 8, buffer, n * 8);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < n; ++i) sum += buffer[i];
  gmt_atomic_add(args.accumulator, 0, sum, 8);
}

void min_body(std::uint64_t stripe, const void* raw) {
  RangeArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  stripe_bounds(args, stripe, &begin, &n);
  if (!n) return;
  std::uint64_t buffer[kStripe];
  gmt_get(args.array, begin * 8, buffer, n * 8);
  std::uint64_t local = ~0ULL;
  for (std::uint64_t i = 0; i < n; ++i)
    if (buffer[i] < local) local = buffer[i];
  // CAS-minimise the global cell. The first CAS doubles as the read that
  // seeds `seen` — a no-op write when the cell already equals `local` —
  // saving the blocking gmt_get round-trip the loop used to start with.
  std::uint64_t seen = gmt_atomic_cas(args.accumulator, 0, local, local, 8);
  while (local < seen) {
    const std::uint64_t old = gmt_atomic_cas(args.accumulator, 0, seen,
                                             local, 8);
    if (old == seen) break;
    seen = old;
  }
}

void max_body(std::uint64_t stripe, const void* raw) {
  RangeArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  stripe_bounds(args, stripe, &begin, &n);
  if (!n) return;
  std::uint64_t buffer[kStripe];
  gmt_get(args.array, begin * 8, buffer, n * 8);
  std::uint64_t local = 0;
  for (std::uint64_t i = 0; i < n; ++i)
    if (buffer[i] > local) local = buffer[i];
  // Seed `seen` from the first CAS return instead of a blocking gmt_get
  // (see min_body).
  std::uint64_t seen = gmt_atomic_cas(args.accumulator, 0, local, local, 8);
  while (local > seen) {
    const std::uint64_t old = gmt_atomic_cas(args.accumulator, 0, seen,
                                             local, 8);
    if (old == seen) break;
    seen = old;
  }
}

void count_body(std::uint64_t stripe, const void* raw) {
  RangeArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  stripe_bounds(args, stripe, &begin, &n);
  if (!n) return;
  std::uint64_t buffer[kStripe];
  gmt_get(args.array, begin * 8, buffer, n * 8);
  std::uint64_t matches = 0;
  for (std::uint64_t i = 0; i < n; ++i)
    if (buffer[i] == args.value) ++matches;
  if (matches) gmt_atomic_add(args.accumulator, 0, matches, 8);
}

void histogram_body(std::uint64_t stripe, const void* raw) {
  RangeArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  stripe_bounds(args, stripe, &begin, &n);
  if (!n) return;
  std::uint64_t buffer[kStripe];
  gmt_get(args.array, begin * 8, buffer, n * 8);
  for (std::uint64_t i = 0; i < n; ++i)
    gmt_atomic_add(args.accumulator, (buffer[i] % args.num_bins) * 8, 1, 8);
}

struct ScanArgs {
  gmt_handle in;
  gmt_handle out;
  gmt_handle partials;  // one u64 per stripe
  std::uint64_t in_first;
  std::uint64_t out_first;
  std::uint64_t count;
};

void scan_bounds(const ScanArgs& args, std::uint64_t stripe,
                 std::uint64_t* begin, std::uint64_t* n) {
  *begin = stripe * kStripe;
  *n = *begin < args.count
           ? (args.count - *begin < kStripe ? args.count - *begin : kStripe)
           : 0;
}

// Pass 1: per-stripe sums into partials[stripe].
void scan_sum_body(std::uint64_t stripe, const void* raw) {
  ScanArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  scan_bounds(args, stripe, &begin, &n);
  if (!n) return;
  std::uint64_t buffer[kStripe];
  gmt_get(args.in, (args.in_first + begin) * 8, buffer, n * 8);
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < n; ++i) sum += buffer[i];
  gmt_put_value(args.partials, stripe * 8, sum, 8);
}

// Pass 2: partials[stripe] now holds the stripe's exclusive base; re-read
// the input slice, scan it in place and write the output slice. In-place
// (in == out, same range) is safe because each stripe reads only the slice
// it overwrites.
void scan_write_body(std::uint64_t stripe, const void* raw) {
  ScanArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin, n;
  scan_bounds(args, stripe, &begin, &n);
  if (!n) return;
  std::uint64_t base = 0;
  gmt_get(args.partials, stripe * 8, &base, 8);
  std::uint64_t buffer[kStripe];
  gmt_get(args.in, (args.in_first + begin) * 8, buffer, n * 8);
  std::uint64_t running = base;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = buffer[i];
    buffer[i] = running;
    running += v;
  }
  gmt_put(args.out, (args.out_first + begin) * 8, buffer, n * 8);
}

struct CopyArgs {
  gmt_handle dst;
  gmt_handle src;
  std::uint64_t dst_offset;
  std::uint64_t src_offset;
  std::uint64_t bytes;
  std::uint64_t stripe_bytes;
};

void copy_body(std::uint64_t stripe, const void* raw) {
  CopyArgs args;
  std::memcpy(&args, raw, sizeof(args));
  const std::uint64_t begin = stripe * args.stripe_bytes;
  if (begin >= args.bytes) return;
  const std::uint64_t n = args.bytes - begin < args.stripe_bytes
                              ? args.bytes - begin
                              : args.stripe_bytes;
  std::vector<std::uint8_t> buffer(n);
  gmt_get(args.src, args.src_offset + begin, buffer.data(), n);
  gmt_put(args.dst, args.dst_offset + begin, buffer.data(), n);
}

// Scratch accumulator lifecycle: reductions claim the calling node's cached
// 8-byte cell and seed it with `init`; when the cache is empty or already
// claimed by a concurrent reduction, they fall back to a fresh allocation.
// Before slot recycling this alloc/free-per-reduction pattern was the
// fastest way to exhaust the handle space (ISSUE 5); it is still two
// broadcast barriers per call, so the cache stays.
gmt_handle scratch_acquire(std::uint64_t init) {
  rt::Node& node = rt::Worker::current()->node();
  gmt_handle h = node.coll_scratch_acquire();
  if (h == kNullHandle) h = gmt_new(8, Alloc::kPartition);
  gmt_put_value(h, 0, init, 8);
  return h;
}

void scratch_release(gmt_handle h) {
  rt::Node& node = rt::Worker::current()->node();
  if (!node.coll_scratch_release(h)) gmt_free(h);
}

std::uint64_t run_reduction(gmt_handle array, std::uint64_t first,
                            std::uint64_t count, TaskFn body,
                            std::uint64_t init) {
  if (count == 0) return init;
  RangeArgs args;
  args.array = array;
  args.first = first;
  args.count = count;
  args.accumulator = scratch_acquire(init);
  gmt_parfor(stripe_count(count), 0, body, &args, sizeof(args),
             Spawn::kPartition);
  std::uint64_t result = 0;
  gmt_get(args.accumulator, 0, &result, 8);
  scratch_release(args.accumulator);
  return result;
}

}  // namespace

void fill_u64(gmt_handle array, std::uint64_t first, std::uint64_t count,
              std::uint64_t value) {
  if (count == 0) return;
  RangeArgs args;
  args.array = array;
  args.first = first;
  args.count = count;
  args.value = value;
  gmt_parfor(stripe_count(count), 0, &fill_body, &args, sizeof(args),
             Spawn::kPartition);
}

std::uint64_t reduce_sum_u64(gmt_handle array, std::uint64_t first,
                             std::uint64_t count) {
  return run_reduction(array, first, count, &sum_body, 0);
}

std::uint64_t reduce_min_u64(gmt_handle array, std::uint64_t first,
                             std::uint64_t count) {
  return run_reduction(array, first, count, &min_body, ~0ULL);
}

std::uint64_t reduce_max_u64(gmt_handle array, std::uint64_t first,
                             std::uint64_t count) {
  return run_reduction(array, first, count, &max_body, 0);
}

std::uint64_t count_equal_u64(gmt_handle array, std::uint64_t first,
                              std::uint64_t count, std::uint64_t value) {
  if (count == 0) return 0;
  RangeArgs args;
  args.array = array;
  args.first = first;
  args.count = count;
  args.value = value;
  args.accumulator = scratch_acquire(0);
  gmt_parfor(stripe_count(count), 0, &count_body, &args, sizeof(args),
             Spawn::kPartition);
  std::uint64_t result = 0;
  gmt_get(args.accumulator, 0, &result, 8);
  scratch_release(args.accumulator);
  return result;
}

std::uint64_t exclusive_scan_u64(gmt_handle in, std::uint64_t in_first,
                                 std::uint64_t count, gmt_handle out,
                                 std::uint64_t out_first) {
  if (count == 0) return 0;
  ScanArgs args;
  args.in = in;
  args.out = out;
  args.in_first = in_first;
  args.out_first = out_first;
  args.count = count;
  const std::uint64_t stripes = stripe_count(count);
  // The common case (histogram-sort over <= 512 buckets) is one stripe:
  // its single partial-sum cell is exactly the cached scratch accumulator,
  // so the scan allocates nothing.
  const bool cached = stripes == 1;
  args.partials = cached ? scratch_acquire(0)
                         : gmt_new(stripes * 8, Alloc::kPartition);

  gmt_parfor(stripes, 0, &scan_sum_body, &args, sizeof(args),
             Spawn::kPartition);

  // Host scan of the stripe sums turns partials into exclusive bases.
  std::vector<std::uint64_t> sums(stripes);
  gmt_get(args.partials, 0, sums.data(), stripes * 8);
  std::uint64_t running = 0;
  for (std::uint64_t s = 0; s < stripes; ++s) {
    const std::uint64_t v = sums[s];
    sums[s] = running;
    running += v;
  }
  gmt_put(args.partials, 0, sums.data(), stripes * 8);

  gmt_parfor(stripes, 0, &scan_write_body, &args, sizeof(args),
             Spawn::kPartition);

  if (cached)
    scratch_release(args.partials);
  else
    gmt_free(args.partials);
  return running;
}

void histogram_mod_u64(gmt_handle array, std::uint64_t first,
                       std::uint64_t count, gmt_handle bins,
                       std::uint64_t num_bins) {
  GMT_CHECK(num_bins > 0);
  if (count == 0) return;
  RangeArgs args;
  args.array = array;
  args.first = first;
  args.count = count;
  args.accumulator = bins;
  args.num_bins = num_bins;
  gmt_parfor(stripe_count(count), 0, &histogram_body, &args, sizeof(args),
             Spawn::kPartition);
}

void copy(gmt_handle dst, std::uint64_t dst_offset, gmt_handle src,
          std::uint64_t src_offset, std::uint64_t bytes) {
  if (bytes == 0) return;
  CopyArgs args;
  args.dst = dst;
  args.src = src;
  args.dst_offset = dst_offset;
  args.src_offset = src_offset;
  args.bytes = bytes;
  args.stripe_bytes = 32 * 1024;
  const std::uint64_t stripes =
      (bytes + args.stripe_bytes - 1) / args.stripe_bytes;
  gmt_parfor(stripes, 1, &copy_body, &args, sizeof(args), Spawn::kPartition);
}

}  // namespace gmt::coll
