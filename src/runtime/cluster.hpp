// Cluster: the in-process stand-in for an N-node machine. Owns the fabric
// and the N node runtimes, and drives the root task (the program's "task
// zero", paper §IV-D).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "gmt/obs.hpp"
#include "net/faulty_transport.hpp"
#include "net/inproc_transport.hpp"
#include "obs/sampler.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

class Cluster {
 public:
  // `model` instant() runs the fabric with no injected delay; pass
  // NetworkModel::olympus() for cluster-like timing.
  Cluster(std::uint32_t num_nodes, const Config& config,
          net::NetworkModel model = net::NetworkModel::instant());

  // Runs the nodes over caller-provided transports (one per node, e.g. a
  // UdsFabric's endpoints). The transports must outlive the cluster.
  Cluster(const std::vector<net::Transport*>& transports,
          const Config& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::uint32_t num_nodes() const { return num_nodes_; }
  Node& node(std::uint32_t id) { return *nodes_[id]; }
  // Valid only for the in-process-fabric constructor.
  net::InprocFabric& fabric() { return *fabric_; }

  // Runs fn(0, args) as the root task on node 0 and blocks until it — and
  // transitively everything it spawned — completes. May be called several
  // times; the runtime threads stay up between runs.
  void run(TaskFn fn, const void* args = nullptr, std::size_t args_size = 0);

  // Aggregate statistics across nodes (bytes on the wire, messages, ...).
  std::uint64_t total_network_bytes() const;
  std::uint64_t total_network_messages() const;

  // Fault-injection decorator for node `id`, or null when config.fault is
  // all-zero (no decorator installed).
  const net::FaultyTransport* faulty_transport(std::uint32_t id) const {
    return faulty_.empty() ? nullptr : faulty_[id].get();
  }
  // Faults injected across all endpoints, by class.
  net::FaultCountersSnapshot total_fault_counters() const;

 private:
  void start();
  void stop();
  // Installs FaultyTransport decorators over transports_ when configured.
  void wrap_faults(const Config& config);
  // Applies GMT_OBS/GMT_TRACE, arms the tracer and records the sampler and
  // trace-dump settings (shared ctor tail).
  void init_obs(const Config& config);
  // Sampler callback: merged node snapshot -> interval history + trace
  // counter series.
  void sample_tick(std::uint64_t now_ns);

  const std::uint32_t num_nodes_;
  std::unique_ptr<net::InprocFabric> fabric_;  // null with external transports
  std::vector<net::Transport*> transports_;
  std::vector<std::unique_ptr<net::FaultyTransport>> faulty_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;

  // Inert TCB carrying the root completion count (see run()). A member —
  // not a stack local — so a completion token that outlives a run still
  // dereferences a live Task; the per-run generation bump marks such
  // tokens stale.
  Task root_;

  // Observability wiring (see src/obs): trace auto-dump target, interval
  // sampler and the previous-sample counters it diffs against.
  std::string trace_file_;
  std::uint32_t obs_interval_ms_ = 0;
  std::unique_ptr<obs::Sampler> sampler_;
  std::uint64_t prev_tasks_ = 0;
  std::uint64_t prev_buffers_ = 0;
  // Fault totals already mirrored into the registry (stop() adds deltas).
  net::FaultCountersSnapshot prev_faults_;
};

}  // namespace gmt::rt
