#include "common/backoff.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

CommServer::CommServer(Node* node) : node_(node) {}

void CommServer::start() {
  thread_ = std::thread([this] { main_loop(); });
}

void CommServer::join() {
  if (thread_.joinable()) thread_.join();
}

void CommServer::main_loop() {
  Backoff backoff;
  Aggregator& agg = node_->aggregator();
  net::Transport& transport = node_->transport();
  // A message received but not yet accepted by the (full) incoming queue.
  net::InMessage* held = nullptr;

  for (;;) {
    bool progressed = false;

    // Outgoing: retry buffers that hit backpressure, in order per paper's
    // non-blocking MPI_Isend discipline, then drain every channel queue.
    while (!retry_.empty()) {
      AggBuffer* buffer = retry_.front();
      if (!transport.send(buffer->dst, {buffer->data().begin(),
                                        buffer->data().end()}))
        break;
      retry_.pop_front();
      agg.release_buffer(buffer);
      progressed = true;
    }
    if (retry_.empty()) {
      for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
        AggBuffer* buffer = nullptr;
        while (agg.slot(s).channel().pop(&buffer)) {
          if (transport.send(buffer->dst, {buffer->data().begin(),
                                           buffer->data().end()})) {
            agg.release_buffer(buffer);
          } else {
            retry_.push_back(buffer);
          }
          progressed = true;
        }
      }
    }

    // Incoming: move messages from the transport to the helpers' queue.
    for (;;) {
      if (!held) {
        auto msg = std::make_unique<net::InMessage>();
        if (!transport.try_recv(msg.get())) break;
        held = msg.release();
      }
      if (!node_->incoming().push(held)) break;  // helpers saturated
      held = nullptr;
      progressed = true;
    }

    if (progressed) {
      backoff.reset();
    } else {
      if (node_->stopping() && retry_.empty() && held == nullptr) break;
      backoff.pause();
    }
  }
  delete held;
}

}  // namespace gmt::rt
