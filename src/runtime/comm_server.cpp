#include <algorithm>

#include "common/backoff.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

CommServer::CommServer(Node* node) : node_(node) {
  rstats_.bind(node_->obs());
  if (node_->config().reliable_transport)
    channel_ = std::make_unique<ReliableChannel>(
        node_->config(), &node_->transport(), &rstats_,
        node_->config().flow_credits > 0 ? this : nullptr);
  if (channel_ && node_->membership() != nullptr) {
    MembershipManager* m = node_->membership();
    m->attach(channel_.get(), &node_->aggregator(), &node_->memory());
    channel_->set_suspect_callback([m](std::uint32_t peer) {
      m->on_suspect(peer);
    });
    channel_->set_control_sink([m](std::uint32_t src, net::FrameType type,
                                   const net::EpochPayload& payload) {
      m->on_control(src, type, payload);
    });
  }
}

// FlowTap: the comm server is the only thread driving the channel, so the
// credit hooks simply forward to the aggregator's atomics.
std::uint16_t CommServer::outgoing_credit(std::uint32_t peer) {
  return node_->aggregator().drained_credit(peer);
}

void CommServer::incoming_credit(std::uint32_t peer,
                                 std::uint16_t cumulative) {
  node_->aggregator().apply_credit_grant(peer, cumulative);
}

CommServer::~CommServer() = default;

void CommServer::start() {
  thread_ = std::thread([this] {
    node_->pin_thread(node_->config().num_workers +
                      node_->config().num_helpers);
    if (obs::trace_on())
      obs::name_thread_track("node" + std::to_string(node_->id()) + "/comm");
    main_loop();
  });
}

void CommServer::join() {
  if (thread_.joinable()) thread_.join();
}

// Drains the channel queues into the transport (directly, or through the
// reliable channel). Each buffer's bytes are moved out once — backpressure
// retries and retransmissions never re-copy from the aggregation buffer,
// and the buffer itself returns to its pool immediately.
bool CommServer::pump_outgoing(std::uint64_t now_ns) {
  Aggregator& agg = node_->aggregator();
  net::Transport& transport = node_->transport();
  bool progressed = false;

  if (channel_) {
    for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
      AggBuffer* buffer = nullptr;
      while (agg.slot(s).channel().pop(&buffer)) {
        const std::uint32_t dst = buffer->dst;
        std::vector<std::uint8_t> frame = buffer->take();
        agg.release_buffer(buffer);
        channel_->submit(dst, std::move(frame));
        progressed = true;
      }
    }
    if (channel_->pump(now_ns)) progressed = true;
    return progressed;
  }

  // Unreliable path: retry backpressured payloads first, in order, per the
  // paper's non-blocking MPI_Isend discipline.
  while (!retry_.empty()) {
    PendingSend& pending = retry_.front();
    const std::size_t size = pending.payload.size();  // send() moves it out
    if (!transport.send(pending.dst, pending.payload)) break;
    rstats_.wire_messages.add();
    rstats_.wire_bytes.add(size);
    retry_.pop_front();
    progressed = true;
  }
  if (retry_.empty()) {
    for (std::uint32_t s = 0; s < agg.num_slots(); ++s) {
      AggBuffer* buffer = nullptr;
      while (agg.slot(s).channel().pop(&buffer)) {
        const std::uint32_t dst = buffer->dst;
        std::vector<std::uint8_t> payload = buffer->take();
        const std::size_t size = payload.size();  // send() moves it out
        agg.release_buffer(buffer);
        if (!transport.send(dst, payload)) {
          retry_.push_back(PendingSend{dst, std::move(payload)});
        } else {
          rstats_.wire_messages.add();
          rstats_.wire_bytes.add(size);
        }
        progressed = true;
      }
    }
  }
  return progressed;
}

void CommServer::main_loop() {
  Backoff backoff;
  net::Transport& transport = node_->transport();
  // A message received but not yet accepted by the (full) incoming queue.
  net::InMessage* held = nullptr;
  // First time the stop request was observed (reliable shutdown grace).
  std::uint64_t stop_seen_ns = 0;
  // After the last peer frame, wait this long before trusting the silence:
  // a peer whose ack got lost retransmits within its capped timeout.
  const std::uint64_t grace_ns = 2 * node_->config().retry_timeout_max_ns +
                                 4 * node_->config().retry_timeout_ns;

  MembershipManager* membership = channel_ ? node_->membership() : nullptr;

  for (;;) {
    bool progressed = false;
    const std::uint64_t now = wall_ns();

    // Failure detection only while running: shutdown silence is expected
    // (peers stop sending as they drain), not a death. Retry-budget
    // exhaustion keeps working in-stop as the backstop.
    if (membership != nullptr && !node_->stopping()) membership->tick(now);

    if (pump_outgoing(now)) progressed = true;

    // Incoming: move messages from the transport to the helpers' queue.
    for (;;) {
      if (!held) {
        if (channel_) {
          while (deliverable_.empty()) {
            net::InMessage raw;
            if (!transport.try_recv(&raw)) break;
            channel_->on_message(std::move(raw), now, &deliverable_);
            progressed = true;
          }
          if (deliverable_.empty()) break;
          held = new net::InMessage(std::move(deliverable_.front()));
          deliverable_.pop_front();
        } else {
          auto msg = std::make_unique<net::InMessage>();
          if (!transport.try_recv(msg.get())) break;
          held = msg.release();
        }
      }
      if (!node_->incoming().push(held)) break;  // helpers saturated
      node_->stats().incoming_depth.inc();
      held = nullptr;
      progressed = true;
    }

    if (progressed) {
      backoff.reset();
      continue;
    }
    if (node_->stopping() && held == nullptr) {
      if (!channel_) {
        if (retry_.empty()) break;
      } else if (deliverable_.empty()) {
        if (stop_seen_ns == 0) {
          stop_seen_ns = now;
          channel_->force_acks();  // do not sit on the ack delay at exit
        }
        const std::uint64_t quiet_since =
            std::max(stop_seen_ns, channel_->last_recv_ns());
        // All peers confirmed dead: nobody is left to retransmit, so the
        // silence grace only delays teardown.
        const bool peers_gone =
            membership != nullptr && membership->all_peers_dead();
        if (channel_->quiescent() &&
            (peers_gone || now - quiet_since >= grace_ns))
          break;
      }
    }
    backoff.pause();
  }
  delete held;
}

}  // namespace gmt::rt
