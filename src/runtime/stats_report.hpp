// Runtime statistics reporting: a human-readable snapshot of every node's
// task, command and aggregation counters — the first diagnostic for "is
// aggregation actually coalescing?" and "are workers or helpers the
// bottleneck?".
//
// Since the observability subsystem landed this is a thin consumer of the
// per-node metric registries (src/obs): summarize_stats reads each node's
// obs::Registry snapshot by name and folds it into the flat summary struct
// benches and tests consume. Applications should prefer the public
// gmt::stats_snapshot() / gmt::stats_report() (include/gmt/obs.hpp), which
// need no runtime internals.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace gmt::rt {

class Cluster;

struct ClusterStatsSummary {
  std::uint64_t tasks_executed = 0;
  std::uint64_t iterations_executed = 0;
  std::uint64_t ctx_switches = 0;
  std::uint64_t local_ops = 0;
  std::uint64_t remote_commands = 0;
  std::uint64_t commands_executed = 0;
  std::uint64_t buffers_sent = 0;
  std::uint64_t buffer_bytes = 0;
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;

  // Reliability-layer health (all zero when reliable transport is off).
  std::uint64_t data_frames_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t crc_drops = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t out_of_order_held = 0;
  std::uint64_t acked_frames = 0;
  std::uint64_t ack_latency_ns = 0;

  // Injected faults (all zero unless a FaultyTransport decorator is on).
  std::uint64_t faults_injected = 0;

  // Membership / failure detection (all zero when GMT_MEMBERSHIP is off).
  std::uint64_t membership_epoch = 0;   // max committed epoch across nodes
  std::uint64_t peers_lost = 0;         // local death declarations (summed)
  std::uint64_t epoch_commits = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t ops_failed_node_lost = 0;
  std::uint64_t arrays_degraded = 0;
  std::uint64_t arrays_remapped = 0;

  // Flow control (all zero when config.flow_credits == 0).
  std::uint64_t credits_consumed = 0;
  std::uint64_t credits_granted = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t credit_stall_ns = 0;  // summed park time across stalls
  std::uint64_t blocks_emergency = 0;

  // Adaptive flush (zero when config.adaptive_flush is off): count and sum
  // of the effective queue deadline at each timeout-driven flush.
  std::uint64_t adaptive_flushes = 0;
  std::uint64_t adaptive_queue_deadline_ns = 0;

  // Source-side combining (all zero when GMT_COMBINE is off). Every hit is
  // one command (and its ack) that never reached the wire.
  std::uint64_t combine_hits = 0;
  std::uint64_t combine_installs = 0;
  std::uint64_t combine_evictions = 0;
  std::uint64_t combine_drains = 0;
  std::uint64_t commands_elided() const { return combine_hits; }

  // Read-mostly software cache (all zero when GMT_CACHE is off). Every hit
  // is a remote read served without touching the wire.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_installs = 0;
  std::uint64_t cache_invals = 0;        // invalidation rounds applied
  std::uint64_t cache_inval_lines = 0;   // lines actually dropped
  double cache_hit_rate() const {
    const std::uint64_t probes = cache_hits + cache_misses;
    return probes ? static_cast<double>(cache_hits) / probes : 0;
  }

  // Per-operation futures (zero when the application never used the _f
  // API). `futures_parked` counts waits that actually suspended the task;
  // issued minus parked is the overlap the futures bought.
  std::uint64_t futures_issued = 0;
  std::uint64_t futures_waits = 0;
  std::uint64_t futures_parked = 0;
  std::uint64_t futures_abandoned = 0;

  // Actor/mailbox layer (zero when the application never sent a message).
  // `actor_replies` counts delivery acks that carried handler reply bytes;
  // `actor_no_mailbox` counts messages rejected with GMT_ERR_NO_ACTOR.
  std::uint64_t actor_sent = 0;
  std::uint64_t actor_delivered = 0;
  std::uint64_t actor_replies = 0;
  std::uint64_t actor_sender_parks = 0;
  std::uint64_t actor_drains = 0;
  std::uint64_t actor_no_mailbox = 0;

  // Average commands coalesced per network message (the aggregation
  // figure of merit; 1.0 means aggregation did nothing). NaN when no
  // message went out at all — a pure-local run has no aggregation ratio,
  // which is not the same as "aggregation did nothing".
  double commands_per_message() const {
    return network_messages
               ? static_cast<double>(remote_commands) / network_messages
               : std::numeric_limits<double>::quiet_NaN();
  }
  double bytes_per_message() const {
    return network_messages
               ? static_cast<double>(network_bytes) / network_messages
               : std::numeric_limits<double>::quiet_NaN();
  }
  // Mean first-send-to-ack latency in microseconds (0 until acks flow).
  double mean_ack_latency_us() const {
    return acked_frames
               ? static_cast<double>(ack_latency_ns) / acked_frames / 1000.0
               : 0;
  }
  // Mean park time of a credit/pool-stalled task in microseconds.
  double mean_stall_us() const {
    return credit_stalls
               ? static_cast<double>(credit_stall_ns) / credit_stalls / 1000.0
               : 0;
  }
  // Mean effective queue deadline at timeout-driven flushes (microseconds).
  double mean_adaptive_deadline_us() const {
    return adaptive_flushes ? static_cast<double>(adaptive_queue_deadline_ns) /
                                  adaptive_flushes / 1000.0
                            : 0;
  }
};

// Aggregates counters across all nodes of the cluster.
ClusterStatsSummary summarize_stats(Cluster& cluster);

// Multi-line report: per-node rows plus the cluster summary. The
// commands/message row is omitted for message-free runs.
std::string format_stats_report(Cluster& cluster);

}  // namespace gmt::rt
