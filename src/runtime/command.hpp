// GMT command set and wire format.
//
// Every interaction between nodes — data movement, synchronisation, task
// management (paper §IV-A) — is a fixed-header command, optionally followed
// by inline payload bytes. Commands are written into command blocks,
// aggregated into buffers, and parsed back out by helpers at the receiving
// node. The encoding is position-independent except for `token` values,
// which are opaque 64-bit cookies meaningful only to the node that issued
// the request (they round-trip unchanged in replies — the same discipline a
// real MPI backend would use with request-table indices).
#pragma once

#include <cstdint>
#include <cstring>

#include "common/assert.hpp"

namespace gmt::rt {

enum class Op : std::uint8_t {
  kPut = 1,        // write payload into [handle,offset); acks with kPutAck
  kPutValue,       // write an immediate value (no payload)
  kGet,            // read [handle,offset,aux2); replies with kGetReply
  kGetReply,       // payload = data; aux1 = requester-local dest address
  kPutAck,         // completion of kPut / kPutValue
  kAtomicAdd,      // aux1 = operand; flags = width; replies kAtomicReply
  kAtomicCas,      // aux1 = expected, aux2 = desired; replies kAtomicReply
  kAtomicReply,    // aux1 = old value; aux2 = requester-local result address
  kSpawn,          // handle = fn, offset = chunk, aux1 = begin, aux2 = count
  kSpawnDone,      // aux1 = iterations completed
  kAlloc,          // offset = size; flags = policy; aux1 = allocating node
  kAllocAck,       //
  kFree,           //
  kFreeAck,        //
  kCacheInval,     // drop cached lines of `handle`; acks with kPutAck
  // Actor/mailbox layer (src/actor): handle = actor id, aux1 = per-(sender
  // node, destination mailbox) sequence number, offset = sender-local reply
  // buffer address (0 = none), aux2 = reply buffer capacity, payload = the
  // message bytes. Acked with kActorAck once the receiving mailbox's
  // delivery task has *processed* the message (not merely enqueued it), so
  // the sender-side window genuinely bounds unprocessed messages.
  kActorMsg,
  // Ack/reply of kActorMsg: token echo, handle = actor id, aux1 = the
  // sender-local reply address (0 when no reply rides along), aux2 =
  // delivery status (0 or GMT_ERR_*), payload = reply bytes.
  kActorAck,
};

// True for request ops whose issuer holds a pending_ops count that only a
// reply (or the membership layer, if the peer dies first) will release.
// Reply/ack ops expect nothing back and are fire-and-forget on the wire.
inline bool op_expects_completion(Op op) {
  switch (op) {
    case Op::kPut:
    case Op::kPutValue:
    case Op::kGet:
    case Op::kAtomicAdd:
    case Op::kAtomicCas:
    case Op::kSpawn:
    case Op::kAlloc:
    case Op::kFree:
    case Op::kCacheInval:
    case Op::kActorMsg:
      return true;
    default:
      return false;
  }
}

// Width of an atomic/immediate operand in bytes (4 or 8), kept in flags,
// plus modifier bits for the fire-and-forget path.
enum Flags : std::uint8_t {
  kWidth8 = 0,
  kWidth4 = 1,
  // kAtomicAdd only: the issuer does not consume the previous value — the
  // helper applies the add and acks with kPutAck (token echo) instead of
  // kAtomicReply, so the command needs no result address.
  kNoReply = 2,
  // Source-side hint, ignored by the receiver: the op is fire-and-forget
  // and commutative/idempotent at its address, so the aggregator may hold
  // it in the combining table and merge later same-key ops into it.
  kCombine = 4,
};

struct CmdHeader {
  std::uint32_t payload_size = 0;
  Op op{};
  std::uint8_t flags = 0;
  std::uint16_t reserved = 0;
  std::uint64_t handle = 0;
  std::uint64_t offset = 0;
  std::uint64_t token = 0;  // opaque to the receiver; echoed in replies
  std::uint64_t aux1 = 0;
  std::uint64_t aux2 = 0;
};
static_assert(sizeof(CmdHeader) == 48, "wire format is 48-byte headers");

inline constexpr std::size_t kCmdHeaderSize = sizeof(CmdHeader);

// Total wire size of a command.
inline std::size_t cmd_wire_size(const CmdHeader& h) {
  return kCmdHeaderSize + h.payload_size;
}

// Serialises header+payload at `out` (caller guarantees space).
inline void encode_cmd(std::uint8_t* out, const CmdHeader& header,
                       const void* payload) {
  std::memcpy(out, &header, kCmdHeaderSize);
  if (header.payload_size)
    std::memcpy(out + kCmdHeaderSize, payload, header.payload_size);
}

// Reads one command starting at data[pos]; advances pos past it. Returns
// the header and a pointer to the in-place payload.
inline CmdHeader decode_cmd(const std::uint8_t* data, std::size_t size,
                            std::size_t* pos, const std::uint8_t** payload) {
  GMT_CHECK(*pos + kCmdHeaderSize <= size);
  CmdHeader header;
  std::memcpy(&header, data + *pos, kCmdHeaderSize);
  *pos += kCmdHeaderSize;
  GMT_CHECK(*pos + header.payload_size <= size);
  *payload = data + *pos;
  *pos += header.payload_size;
  return header;
}

}  // namespace gmt::rt
