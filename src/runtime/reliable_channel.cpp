#include "runtime/reliable_channel.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "gmt/obs.hpp"
#include "obs/trace.hpp"

namespace gmt::rt {

void ReliabilityStats::bind(obs::Registry& reg) {
  data_frames_sent = reg.counter(obs::names::kRelDataFrames);
  retransmits = reg.counter(obs::names::kRelRetransmits);
  acks_sent = reg.counter(obs::names::kRelAcksSent);
  crc_drops = reg.counter(obs::names::kRelCrcDrops);
  dup_suppressed = reg.counter(obs::names::kRelDupSuppressed);
  out_of_order_held = reg.counter(obs::names::kRelOooHeld);
  ack_latency_ns = reg.histogram(obs::names::kRelAckLatencyNs);
  wire_messages = reg.counter(obs::names::kNetMessages);
  wire_bytes = reg.counter(obs::names::kNetBytes);
}

ReliableChannel::ReliableChannel(const Config& config,
                                 net::Transport* transport,
                                 ReliabilityStats* stats, FlowTap* flow)
    : config_(config),
      transport_(transport),
      stats_(stats),
      flow_(flow),
      send_(transport->num_nodes()),
      recv_(transport->num_nodes()),
      health_(new PeerHealth[transport->num_nodes()]) {}

void ReliableChannel::submit(std::uint32_t dst,
                             std::vector<std::uint8_t>&& frame) {
  GMT_DCHECK(frame.size() >= net::kFrameHeaderSize);
  if (peer_dead(dst)) return;  // excluded: the buffer dies here, not on wire
  PeerSend& peer = send_[dst];
  Unacked entry;
  entry.seq = peer.next_seq++;
  entry.rto_ns = config_.retry_timeout_ns;
  entry.frame = std::move(frame);

  net::FrameHeader header;
  header.type = static_cast<std::uint8_t>(net::FrameType::kData);
  header.src = transport_->node_id();
  header.seq = entry.seq;
  header.ack = recv_[dst].expect - 1;
  net::seal_frame(entry.frame, header);
  peer.window.push_back(std::move(entry));
}

bool ReliableChannel::pump_sends(std::uint32_t dst, std::uint64_t now_ns) {
  // Transmissions toward suspect peers are suspended until the membership
  // layer resolves them (dead = purge; there is no rehabilitation path).
  if (health_[dst].state.load(std::memory_order_relaxed) != PeerState::kLive)
    return false;
  bool progressed = false;
  PeerRecv& reverse = recv_[dst];
  for (Unacked& u : send_[dst].window) {
    const bool backpressured = !u.tx.empty();
    if (!backpressured) {
      if (u.attempts == 0) {
        // First transmission.
      } else if (now_ns >= u.next_retx_ns) {
        if (u.attempts >= config_.retry_budget) {
          if (suspect_ != nullptr) {
            // Recoverable: hand the peer to the failure detector instead of
            // aborting. mark_suspect suspends this peer's transmissions, so
            // attempts stays exactly at the budget.
            GMT_LOG_ERROR(
                "node %u suspected dead: seq %llu unacked after %u attempts",
                dst, static_cast<unsigned long long>(u.seq), u.attempts);
            mark_suspect(dst);
            return progressed;
          }
          GMT_LOG_ERROR(
              "reliable delivery to node %u failed: seq %llu unacked after "
              "%u attempts (retry budget exhausted)",
              dst, static_cast<unsigned long long>(u.seq), u.attempts);
          GMT_CHECK_MSG(false, "reliable delivery retry budget exhausted");
        }
        u.rto_ns = std::min(u.rto_ns * 2, config_.retry_timeout_max_ns);
        stats_->retransmits.add();
        health_[dst].consec_timeouts.fetch_add(1, std::memory_order_relaxed);
        obs::trace_instant("rel.retransmit", u.seq);
      } else {
        continue;  // in flight, ack still possible before the timeout
      }
      // The retained frame keeps its payload CRC; the piggybacked
      // cumulative ack and credit grant are refreshed per transmission.
      // `credit_advertised` tracks the frame content (not the live value):
      // a backpressured tx goes out later exactly as built here.
      const std::uint16_t credit =
          flow_ != nullptr ? flow_->outgoing_credit(dst) : 0;
      u.tx = u.frame;
      net::refresh_frame_ack(u.tx, reverse.expect - 1, credit);
      reverse.credit_advertised = credit;
    }
    const std::size_t tx_size = u.tx.size();  // send() moves the frame out
    if (!transport_->send(dst, u.tx)) return progressed;  // backpressure
    stats_->wire_messages.add();
    stats_->wire_bytes.add(tx_size);
    health_[dst].last_tx_ns.store(now_ns, std::memory_order_relaxed);
    u.tx.clear();
    if (u.attempts == 0) {
      u.first_send_ns = now_ns;
      stats_->data_frames_sent.add();
    }
    ++u.attempts;
    u.next_retx_ns = now_ns + u.rto_ns;
    // The data frame carried our current cumulative ack for this peer.
    if (reverse.ack_due) {
      reverse.ack_due = false;
      reverse.ack_immediate = false;
    }
    progressed = true;
  }
  return progressed;
}

bool ReliableChannel::pump_acks(std::uint32_t src, std::uint64_t now_ns) {
  if (health_[src].state.load(std::memory_order_relaxed) != PeerState::kLive)
    return false;
  PeerRecv& peer = recv_[src];
  // An unadvertised credit grant behaves like an owed ack: if no reverse
  // data frame carries it within the ack delay, a standalone ack does —
  // otherwise a credit-starved peer with no traffic to ack would stall
  // forever waiting for a grant that has nothing to ride.
  if (flow_ != nullptr && !peer.ack_due &&
      flow_->outgoing_credit(src) != peer.credit_advertised) {
    peer.ack_due = true;
    peer.ack_due_since_ns = now_ns;
  }
  if (!peer.ack_due) return false;
  if (!peer.ack_immediate &&
      now_ns - peer.ack_due_since_ns < config_.ack_delay_ns)
    return false;

  std::vector<std::uint8_t> frame(net::kFrameHeaderSize);
  net::FrameHeader header;
  header.type = static_cast<std::uint8_t>(net::FrameType::kAck);
  header.src = transport_->node_id();
  header.ack = peer.expect - 1;
  header.credit = flow_ != nullptr ? flow_->outgoing_credit(src) : 0;
  net::seal_frame(frame, header);
  const std::size_t frame_size = frame.size();  // send() moves the frame out
  if (!transport_->send(src, frame)) return false;  // retry next pump
  peer.ack_due = false;
  peer.ack_immediate = false;
  peer.credit_advertised = header.credit;
  stats_->acks_sent.add();
  stats_->wire_messages.add();
  stats_->wire_bytes.add(frame_size);
  health_[src].last_tx_ns.store(now_ns, std::memory_order_relaxed);
  return true;
}

bool ReliableChannel::pump(std::uint64_t now_ns) {
  bool progressed = false;
  const std::uint32_t n = transport_->num_nodes();
  for (std::uint32_t peer = 0; peer < n; ++peer) {
    if (pump_sends(peer, now_ns)) progressed = true;
    if (pump_acks(peer, now_ns)) progressed = true;
  }
  return progressed;
}

void ReliableChannel::process_ack(std::uint32_t src, std::uint64_t ack,
                                  std::uint64_t now_ns) {
  PeerSend& peer = send_[src];
  while (!peer.window.empty() && peer.window.front().seq <= ack) {
    const Unacked& u = peer.window.front();
    if (u.attempts > 0)
      stats_->ack_latency_ns.observe(now_ns - u.first_send_ns);
    peer.window.pop_front();
  }
  health_[src].consec_timeouts.store(0, std::memory_order_relaxed);
}

void ReliableChannel::deliver(std::uint32_t src,
                              std::vector<std::uint8_t>&& frame,
                              std::deque<net::InMessage>* deliverable) {
  frame.erase(frame.begin(),
              frame.begin() + static_cast<std::ptrdiff_t>(
                                  net::kFrameHeaderSize));
  deliverable->push_back(net::InMessage{src, std::move(frame)});
}

void ReliableChannel::on_message(net::InMessage&& msg, std::uint64_t now_ns,
                                 std::deque<net::InMessage>* deliverable) {
  net::FrameHeader header;
  if (!net::parse_frame(msg.payload, &header) ||
      header.src >= transport_->num_nodes()) {
    stats_->crc_drops.add();
    return;
  }
  // Fail-stop: a peer excluded by a membership epoch stays excluded — late
  // frames from it (stragglers in the fabric) are dropped wholesale.
  if (peer_dead(header.src)) return;
  last_recv_ns_ = now_ns;
  health_[header.src].last_heard_ns.store(now_ns, std::memory_order_relaxed);
  process_ack(header.src, header.ack, now_ns);
  if (flow_ != nullptr) flow_->incoming_credit(header.src, header.credit);
  if (header.type == static_cast<std::uint8_t>(net::FrameType::kEpochPropose) ||
      header.type == static_cast<std::uint8_t>(net::FrameType::kEpochAck)) {
    if (control_ != nullptr &&
        header.payload_len == sizeof(net::EpochPayload)) {
      net::EpochPayload epoch;
      std::memcpy(&epoch, msg.payload.data() + net::kFrameHeaderSize,
                  sizeof(epoch));
      control_(header.src, static_cast<net::FrameType>(header.type), epoch);
    }
    return;
  }
  if (header.type != static_cast<std::uint8_t>(net::FrameType::kData)) return;

  PeerRecv& peer = recv_[header.src];
  const auto mark_ack_due = [&](bool immediate) {
    if (!peer.ack_due) peer.ack_due_since_ns = now_ns;
    peer.ack_due = true;
    if (immediate) peer.ack_immediate = true;
  };

  if (header.seq < peer.expect || peer.held.count(header.seq)) {
    // Duplicate: our ack was lost or is still in flight. Suppress the
    // payload and re-ack immediately so the sender stops retransmitting.
    stats_->dup_suppressed.add();
    mark_ack_due(/*immediate=*/true);
    return;
  }
  if (header.seq == peer.expect) {
    deliver(header.src, std::move(msg.payload), deliverable);
    ++peer.expect;
    // Out-of-order arrivals waiting on this gap become deliverable.
    for (auto it = peer.held.begin();
         it != peer.held.end() && it->first == peer.expect;
         it = peer.held.erase(it)) {
      deliver(header.src, std::move(it->second), deliverable);
      ++peer.expect;
    }
    mark_ack_due(/*immediate=*/false);
    return;
  }
  // Future frame: hold it within the reorder window; beyond the window it
  // is dropped and recovered by the sender's retransmission.
  if (peer.held.size() < config_.reorder_window) {
    peer.held.emplace(header.seq, std::move(msg.payload));
    stats_->out_of_order_held.add();
  }
  mark_ack_due(/*immediate=*/false);
}

void ReliableChannel::mark_suspect(std::uint32_t peer) {
  PeerState expected = PeerState::kLive;
  if (health_[peer].state.compare_exchange_strong(
          expected, PeerState::kSuspect, std::memory_order_acq_rel) &&
      suspect_ != nullptr)
    suspect_(peer);
}

void ReliableChannel::note_suspect(std::uint32_t peer) { mark_suspect(peer); }

std::size_t ReliableChannel::purge_peer(std::uint32_t peer) {
  health_[peer].state.store(PeerState::kDead, std::memory_order_release);
  const std::size_t dropped = send_[peer].window.size();
  send_[peer].window.clear();
  recv_[peer].held.clear();
  recv_[peer].ack_due = false;
  recv_[peer].ack_immediate = false;
  return dropped;
}

bool ReliableChannel::send_heartbeat(std::uint32_t peer,
                                     std::uint64_t now_ns) {
  PeerRecv& reverse = recv_[peer];
  std::vector<std::uint8_t> frame(net::kFrameHeaderSize);
  net::FrameHeader header;
  header.type = static_cast<std::uint8_t>(net::FrameType::kHeartbeat);
  header.src = transport_->node_id();
  header.ack = reverse.expect - 1;
  header.credit = flow_ != nullptr ? flow_->outgoing_credit(peer) : 0;
  net::seal_frame(frame, header);
  const std::size_t frame_size = frame.size();
  if (!transport_->send(peer, frame)) return false;
  stats_->wire_messages.add();
  stats_->wire_bytes.add(frame_size);
  health_[peer].last_tx_ns.store(now_ns, std::memory_order_relaxed);
  // The heartbeat carried our current cumulative ack and credit.
  reverse.ack_due = false;
  reverse.ack_immediate = false;
  reverse.credit_advertised = header.credit;
  return true;
}

bool ReliableChannel::send_control(std::uint32_t dst, net::FrameType type,
                                   const net::EpochPayload& payload) {
  std::vector<std::uint8_t> frame(net::kFrameHeaderSize +
                                  sizeof(net::EpochPayload));
  std::memcpy(frame.data() + net::kFrameHeaderSize, &payload,
              sizeof(payload));
  net::FrameHeader header;
  header.type = static_cast<std::uint8_t>(type);
  header.src = transport_->node_id();
  header.ack = recv_[dst].expect - 1;
  header.credit = flow_ != nullptr ? flow_->outgoing_credit(dst) : 0;
  net::seal_frame(frame, header);
  const std::size_t frame_size = frame.size();
  if (!transport_->send(dst, frame)) return false;
  stats_->wire_messages.add();
  stats_->wire_bytes.add(frame_size);
  return true;
}

PeerHealthSnapshot ReliableChannel::health(std::uint32_t peer) const {
  const PeerHealth& h = health_[peer];
  return PeerHealthSnapshot{
      h.state.load(std::memory_order_acquire),
      h.last_heard_ns.load(std::memory_order_relaxed),
      h.consec_timeouts.load(std::memory_order_relaxed)};
}

void ReliableChannel::force_acks() {
  for (PeerRecv& peer : recv_)
    if (peer.ack_due) peer.ack_immediate = true;
}

bool ReliableChannel::quiescent() const {
  // Peers the membership layer removed (or is removing) are not waited on:
  // their windows will never drain and their acks have no audience.
  const std::uint32_t n = transport_->num_nodes();
  for (std::uint32_t peer = 0; peer < n; ++peer) {
    if (health_[peer].state.load(std::memory_order_relaxed) !=
        PeerState::kLive)
      continue;
    if (!send_[peer].window.empty()) return false;
    if (recv_[peer].ack_due) return false;
  }
  return true;
}

}  // namespace gmt::rt
