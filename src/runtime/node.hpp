// One GMT node: global memory partition, aggregator, and the three kinds of
// specialised threads (paper §IV-A) — workers execute tasks, helpers manage
// the global address space and replies, a single communication server owns
// the network endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "collections/intrusive_mpsc.hpp"
#include "collections/mpmc_queue.hpp"
#include "collections/pool.hpp"
#include "collections/ring_buffer.hpp"
#include "common/cacheline.hpp"
#include "common/config.hpp"
#include "gmt/types.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "runtime/aggregation.hpp"
#include "runtime/global_memory.hpp"
#include "runtime/membership.hpp"
#include "runtime/reliable_channel.hpp"
#include "runtime/swcache.hpp"
#include "runtime/task.hpp"
#include "uthread/context.hpp"
#include "uthread/stack.hpp"

namespace gmt::rt {

class ActorRuntime;  // src/actor/mailbox.hpp
class Node;

// Per-node counters surfaced to benches and tests. Registry-backed
// handles: writes shard per thread, read() merges (see obs/metrics.hpp).
// Unbound (default-constructed) handles drop writes, so the struct is
// inert until bind() runs against the node's registry.
struct NodeStats {
  obs::Counter tasks_executed;
  obs::Counter iterations_executed;
  obs::Counter ctx_switches;
  obs::Counter local_ops;        // ops satisfied by the local fast path
  obs::Counter remote_ops;       // commands issued to other nodes
  obs::Counter cmds_executed;    // commands executed by helpers
  obs::Counter buffers_received; // aggregation buffers from the network
  obs::Gauge resident_tasks;     // live TCBs across the node's workers
  obs::Gauge incoming_depth;     // messages queued for helpers
  obs::Histogram task_quantum_ns;  // run_task slice length (tracing only)
  obs::Counter futures_issued;     // gmt_get_f / gmt_put_f / gmt_atomic_add_f
  obs::Counter futures_waits;      // wait / wait_all / wait_any resolutions
  obs::Counter futures_parked;     // waits that actually suspended the task
  obs::Counter futures_abandoned;  // cells drained by the end-of-task wait

  void bind(obs::Registry& reg);
};

// Worker: executes application tasks, generates commands (paper Fig. 4).
class Worker {
 public:
  Worker(Node* node, std::uint32_t worker_id, AggregationSlot* slot);
  ~Worker();

  void start();
  void join();

  Node& node() { return *node_; }
  std::uint32_t id() const { return id_; }
  AggregationSlot& agg_slot() { return *slot_; }
  Task* current_task() { return current_; }

  // --- called from task context (the task is current_) ---

  // Parks the current task until its pending_ops drains to zero. This is
  // the latency-tolerance primitive: the worker switches to another task
  // while the reply is in flight.
  void task_block();

  // Cooperative yield; the task stays runnable.
  void task_yield();

  // The worker that created the currently-running OS thread, or null when
  // called from a non-worker thread (helpers, main).
  static Worker* current();

  // TCBs currently cached in the free-list (test/bench introspection; read
  // from the worker thread or at quiescence only).
  std::size_t pooled_tasks() const { return free_tasks_.size(); }

  // --- futures (task context; see task.hpp's FutureCell protocol) ---

  // Pops a pooled cell (or allocates one), links it into the current
  // task's live-futures list, and returns it with pending == 0.
  FutureCell* acquire_future_cell();

  // Awaits the future behind `token`. Returns the per-op status
  // (GMT_ERR_*); a consumed or null token returns GMT_ERR_OK immediately.
  // Suspension, if needed, drains the task's whole pending_ops count — so
  // a wait also completes previously issued _nb operations.
  std::uint32_t future_wait(std::uint64_t token);

  // Awaits the first of `n` futures to resolve; returns its index and (via
  // `status`, may be null) its per-op status, consuming only that future.
  // At most kMaxWaitAny distinct futures per call.
  static constexpr std::size_t kMaxWaitAny = 64;
  std::size_t future_wait_any(const ::gmt::Future* futures, std::size_t n,
                              std::uint32_t* status);

  // Non-consuming readiness probe.
  static bool future_ready(std::uint64_t token);

 private:
  friend class Node;

  void main_loop();
  void run_task(Task* task);
  bool try_adopt_work();
  void finish_task(Task* task);
  void drain_wake_list();
  static void task_entry(void* raw_task);
  Task* make_task(IterBlock* itb, std::uint64_t begin, std::uint64_t end);
  Task* allocate_task();  // fresh TCB: heap Task + pooled stack + cached top
  void release_task(Task* task);
  // Resolves + recycles `cell` (resolved: pending == 0). Runs the deferred
  // self-invalidation for mutating futures, unlinks from the task list,
  // bumps the generation and returns the cell to the free-list.
  std::uint32_t consume_future(Task* task, FutureCell* cell);
  // End-of-task drain: awaits every live cell so no in-flight reply can
  // land after the TCB (and the futures' destination buffers) recycle.
  void drain_futures(Task* task);

  Node* node_;
  std::uint32_t id_;
  AggregationSlot* slot_;
  StackPool stacks_;
  const bool pooling_;  // config.task_pool: recycle TCBs + O(1) scheduling
  // Ready ring: runnable tasks only (pooling mode). In the ablation mode
  // (task_pool off) blocked tasks are re-enqueued here and the scheduler
  // scans for a runnable one — the pre-pool behaviour.
  RingBuffer<Task*> ready_;
  // Tasks whose pending_ops drained to zero while parked; pushed by
  // completers (helpers, peer workers), drained only by this worker.
  TaskWakeList wake_list_;
  std::vector<Task*> free_tasks_;  // recycled TCBs, single-owner
  FutureCell* free_cells_ = nullptr;  // recycled future cells, single-owner
  std::uint64_t live_tasks_ = 0;
  Context sched_ctx_{};
  Task* current_ = nullptr;
  std::thread thread_;
};

// Helper: executes incoming commands against the local partition and
// generates replies.
class Helper {
 public:
  Helper(Node* node, std::uint32_t helper_id, AggregationSlot* slot);

  void start();
  void join();

 private:
  void main_loop();
  void process_buffer(const net::InMessage& msg);
  void execute(const CmdHeader& cmd, const std::uint8_t* payload,
               std::uint32_t src);

  Node* node_;
  std::uint32_t id_;
  AggregationSlot* slot_;
  std::thread thread_;
};

// Communication server: the node's single network endpoint (paper §IV-B).
// With config.reliable_transport it runs the seq/ack/retransmit protocol
// of ReliableChannel under every send and receive; otherwise it moves raw
// buffers and trusts the transport, at zero added cost. As the channel's
// FlowTap it bridges credit grants between the wire and the aggregator.
class CommServer : public FlowTap {
 public:
  explicit CommServer(Node* node);
  ~CommServer() override;

  void start();
  void join();

  const ReliabilityStats& reliability_stats() const { return rstats_; }

  // FlowTap (called only from the comm server thread's channel pump).
  std::uint16_t outgoing_credit(std::uint32_t peer) override;
  void incoming_credit(std::uint32_t peer, std::uint16_t cumulative) override;

 private:
  void main_loop();
  bool pump_outgoing(std::uint64_t now_ns);

  Node* node_;
  std::thread thread_;
  // Payloads that hit transport backpressure (unreliable path), retried in
  // order; each is built exactly once — retries never copy.
  struct PendingSend {
    std::uint32_t dst;
    std::vector<std::uint8_t> payload;
  };
  std::deque<PendingSend> retry_;
  // Reliable path (null when disabled).
  std::unique_ptr<ReliableChannel> channel_;
  std::deque<net::InMessage> deliverable_;
  ReliabilityStats rstats_;
};

class Node {
 public:
  Node(std::uint32_t id, std::uint32_t num_nodes, const Config& config,
       net::Transport* transport);
  ~Node();

  void start();
  void request_stop() { stop_.store(true, std::memory_order_release); }
  bool stopping() const { return stop_.load(std::memory_order_acquire); }
  void join();

  std::uint32_t id() const { return id_; }
  std::uint32_t num_nodes() const { return num_nodes_; }
  const Config& config() const { return config_; }
  GlobalMemory& memory() { return gm_; }
  Aggregator& aggregator() { return agg_; }
  net::Transport& transport() { return *transport_; }
  MpmcQueue<IterBlock*>& itb_queue() { return itbs_; }
  MpmcQueue<net::InMessage*>& incoming() { return incoming_; }
  NodeStats& stats() { return stats_; }
  ::gmt::obs::Registry& obs() { return obs_; }
  const CommServer& comm_server() const { return *comm_; }

  // Membership layer (null when config.membership is off). The epoch and
  // liveness accessors degrade to static-cluster answers without it.
  MembershipManager* membership() { return membership_.get(); }
  std::uint64_t membership_epoch() const {
    return membership_ ? membership_->epoch() : 0;
  }
  bool node_is_live(std::uint32_t node) const {
    return membership_ ? membership_->is_live(node) : node < num_nodes_;
  }
  // Helper-side reply arbitration: false = the reply is stale (its op was
  // already failed by the death sweep) and must be dropped untouched.
  bool reply_ok(std::uint32_t src, std::uint64_t token) {
    return membership_ == nullptr || membership_->reply_arrived(src, token);
  }
  Worker& worker(std::uint32_t i) { return *workers_[i]; }
  std::uint32_t num_workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

  // Read-mostly software cache (null unless config.cache). Helpers call
  // cache()->invalidate() for incoming kCacheInval commands; workers run
  // the post-completion self-invalidation of their own writes.
  SwCache* cache() { return cache_.get(); }

  // Actor/mailbox layer (always constructed; costs nothing until the
  // first mailbox registers or send issues).
  ActorRuntime& actors() { return *actors_; }

  // ---- operation layer: called from task context on this node ----

  gmt_handle op_alloc(Worker& w, std::uint64_t size, Alloc policy);
  void op_free(Worker& w, gmt_handle handle);

  void op_put(Worker& w, gmt_handle h, std::uint64_t offset, const void* data,
              std::uint64_t size, bool blocking);
  void op_put_value(Worker& w, gmt_handle h, std::uint64_t offset,
                    std::uint64_t value, std::uint32_t size, bool blocking);
  void op_get(Worker& w, gmt_handle h, std::uint64_t offset, void* data,
              std::uint64_t size, bool blocking);
  std::uint64_t op_atomic_add(Worker& w, gmt_handle h, std::uint64_t offset,
                              std::uint64_t operand, std::uint32_t width);
  // Fire-and-forget add: no previous value is returned and the task does
  // not block — the helper applies the add and acks with kPutAck instead of
  // kAtomicReply (Flags::kNoReply), which makes the command commutative and
  // eligible for source-side combining (config.combine). Completion is
  // observed at the task's next blocking point / gmt_wait_commands.
  void op_atomic_add_nb(Worker& w, gmt_handle h, std::uint64_t offset,
                        std::uint64_t operand, std::uint32_t width);
  std::uint64_t op_atomic_cas(Worker& w, gmt_handle h, std::uint64_t offset,
                              std::uint64_t expected, std::uint64_t desired,
                              std::uint32_t width);

  // Future-returning flavours: the commands ride a pooled FutureCell's
  // token instead of the task's, so the task keeps running until it awaits
  // the returned future (gmt::wait / wait_all / wait_any). A future whose
  // work completed synchronously (local fast path, cache hit) comes back
  // already resolved. Errors (NODE_LOST) surface per-op from wait(), not
  // via the sticky task status. Replicated arrays degrade to the blocking
  // forms (the buddy mirror needs the op's completed value).
  ::gmt::Future op_get_f(Worker& w, gmt_handle h, std::uint64_t offset,
                         void* data, std::uint64_t size);
  ::gmt::Future op_put_f(Worker& w, gmt_handle h, std::uint64_t offset,
                         const void* data, std::uint64_t size);
  // The previous value is written to *old_out when the future resolves
  // (immediately on the local fast path); old_out must stay valid until
  // the future is awaited.
  ::gmt::Future op_atomic_add_f(Worker& w, gmt_handle h, std::uint64_t offset,
                                std::uint64_t operand, std::uint64_t* old_out,
                                std::uint32_t width);

  void op_wait_commands(Worker& w);
  void op_parfor(Worker& w, std::uint64_t iterations, std::uint64_t chunk,
                 TaskFn fn, const void* args, std::size_t args_size,
                 Spawn policy);
  void op_execute_on(Worker& w, std::uint32_t target, TaskFn fn,
                     const void* args, std::size_t args_size);

  // Registers `handle` locally and broadcasts kAlloc; used by op_alloc and
  // by the bootstrap path (pre-registering before workers run).
  void register_everywhere(Worker& w, gmt_handle handle, std::uint64_t size,
                           Alloc policy);

  // Enqueues the root work item (one iteration running `fn`); completion
  // decrements root->pending_ops. Called by Cluster before/while threads run.
  void spawn_root(TaskFn fn, const void* args, std::size_t args_size,
                  Task* root);

  // Worker-side completion of an iteration block (last iteration done).
  void report_spawn_done(Worker& w, IterBlock* itb);

  // Iteration-block lifecycle: pooled blocks with heap fallback under
  // exhaustion (or plain heap blocks when config.task_pool is off). The
  // returned block is reset and ready to fill.
  IterBlock* acquire_itb();
  void release_itb(IterBlock* itb);

  // Pins the calling thread to a core when config.pin_threads is set.
  // Slots are numbered [workers | helpers | comm server] within a node and
  // offset by node id, so co-hosted in-process nodes spread instead of
  // stacking on core 0. Skipped entirely when the host has fewer cores
  // than the cluster has threads (pinning would serialise the runtime).
  void pin_thread(std::uint32_t slot) const;

  // Cached scratch accumulator for collectives: one 8-byte kPartition cell
  // reused across reductions instead of an alloc/free pair per call (each
  // pair costs two broadcast barriers and, before slot recycling, burned a
  // handle forever). acquire() claims the cached handle — kNullHandle when
  // absent or already claimed, in which case the caller allocates fresh.
  // release() re-caches the handle; false means another reduction re-cached
  // first and the caller must gmt_free its copy. The cached cell lives
  // until teardown, where ~GlobalMemory reclaims its storage.
  gmt_handle coll_scratch_acquire() {
    return coll_scratch_.exchange(kNullHandle, std::memory_order_acq_rel);
  }
  bool coll_scratch_release(gmt_handle h) {
    gmt_handle expected = kNullHandle;
    return coll_scratch_.compare_exchange_strong(expected, h,
                                                 std::memory_order_acq_rel);
  }

  // Largest payload a single command may carry (the reliability layer's
  // frame header, when enabled, comes out of the same buffer budget).
  std::uint32_t max_payload() const {
    return config_.buffer_size - 2 * kCmdHeaderSize -
           (config_.reliable_transport
                ? static_cast<std::uint32_t>(net::kFrameHeaderSize)
                : 0u);
  }

 private:
  friend class Worker;
  friend class Helper;
  friend class CommServer;
  friend class ActorRuntime;  // emits kActorMsg / kActorAck commands

  // Emits one command on behalf of `task` (pending_ops already counted by
  // the caller) or executes it locally when the fast path applies.
  void emit(AggregationSlot& slot, std::uint32_t dst, const CmdHeader& header,
            const void* payload);

  // Completion sink for an operation's commands: task ops count into the
  // task's pending_ops under the task token; future ops count into their
  // cell under the cell token. The shared span loops below are written
  // against this pair so both flavours use one code path.
  struct OpSink {
    std::uint64_t token;
    std::atomic<std::uint32_t>* pending;
  };
  static OpSink task_sink(Task* task) {
    return OpSink{task_token(task), &task->pending_ops};
  }
  static OpSink future_sink(FutureCell* cell) {
    return OpSink{future_token(cell), &cell->pending};
  }

  // Core span loops shared by the blocking/_nb and future flavours. The
  // caller took `meta` by value and decides whether/how to wait.
  void do_put(Worker& w, Task* task, const OpSink& sink, gmt_handle h,
              std::uint64_t offset, const void* data, std::uint64_t size,
              const ArrayMeta& meta);
  void do_get(Worker& w, const OpSink& sink, gmt_handle h,
              std::uint64_t offset, void* data, std::uint64_t size,
              const ArrayMeta& meta);

  // Cache-aware blocking get: probes the software cache line-by-line,
  // fetches misses in whole lines (batched, one suspension per batch) and
  // installs them. Non-blocking callers probe but never install.
  void cached_get(Worker& w, Task* task, gmt_handle h, std::uint64_t offset,
                  void* data, std::uint64_t size, const ArrayMeta& meta,
                  bool blocking);

  // Writer-side coherence: one kCacheInval per live peer riding `sink`, so
  // the write's completion also covers every remote cache dropping the
  // handle's lines. No-op when the cache is off.
  void broadcast_inval(Worker& w, const OpSink& sink, gmt_handle h);

  // Buddy-replication mirrors (no-ops unless meta.replicated). They ride
  // the calling task's token, so the task's next block waits for them.
  void mirror_span(Worker& w, Task* task, gmt_handle h, const ArrayMeta& meta,
                   const OwnedSpan& span, const std::uint8_t* src);
  void mirror_value(Worker& w, Task* task, gmt_handle h, const ArrayMeta& meta,
                    const OwnedSpan& span, std::uint64_t value,
                    std::uint32_t size);

  // Shared atomic appliers (used by the local fast path and by helpers).
  static std::uint64_t apply_atomic_add(std::uint8_t* addr,
                                        std::uint64_t operand,
                                        std::uint32_t width);
  static std::uint64_t apply_atomic_cas(std::uint8_t* addr,
                                        std::uint64_t expected,
                                        std::uint64_t desired,
                                        std::uint32_t width);

  const std::uint32_t id_;
  const std::uint32_t num_nodes_;
  const Config config_;
  net::Transport* transport_;

  // Declared before every subsystem that registers metrics (aggregator,
  // stats, comm server) and therefore destroyed after all of them.
  ::gmt::obs::Registry obs_;
  GlobalMemory gm_;
  Aggregator agg_;
  ObjectPool<IterBlock> itb_pool_;
  MpmcQueue<IterBlock*> itbs_;
  MpmcQueue<net::InMessage*> incoming_;
  NodeStats stats_;
  std::unique_ptr<SwCache> cache_;  // null unless config.cache
  std::unique_ptr<ActorRuntime> actors_;
  std::atomic<bool> stop_{false};
  std::atomic<gmt_handle> coll_scratch_{kNullHandle};

  // Created before the comm server (which wires itself to it) and after
  // the registry/aggregator/memory it references.
  std::unique_ptr<MembershipManager> membership_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Helper>> helpers_;
  std::unique_ptr<CommServer> comm_;
};

}  // namespace gmt::rt
