#include <cstring>

#include "actor/mailbox.hpp"
#include "common/backoff.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

Helper::Helper(Node* node, std::uint32_t helper_id, AggregationSlot* slot)
    : node_(node), id_(helper_id), slot_(slot) {}

void Helper::start() {
  thread_ = std::thread([this] {
    node_->pin_thread(node_->config().num_workers + id_);
    if (obs::trace_on())
      obs::name_thread_track("node" + std::to_string(node_->id()) +
                             "/helper" + std::to_string(id_));
    main_loop();
  });
}

void Helper::join() {
  if (thread_.joinable()) thread_.join();
}

void Helper::main_loop() {
  Backoff backoff;
  for (;;) {
    net::InMessage* msg = nullptr;
    if (node_->incoming().pop(&msg)) {
      node_->stats().incoming_depth.dec();
      process_buffer(*msg);
      // One buffer drained = one credit granted back to its sender (rides
      // the next frame or a standalone ack toward msg->src).
      node_->aggregator().note_buffer_drained(msg->src);
      delete msg;
      backoff.reset();
    } else {
      node_->aggregator().poll_flush(*slot_, wall_ns());
      if (node_->stopping() && node_->incoming().empty_approx()) break;
      backoff.pause();
    }
  }
}

void Helper::process_buffer(const net::InMessage& msg) {
  node_->stats().buffers_received.add();
  const bool tracing = obs::trace_on();
  const std::uint64_t trace_start_ns = tracing ? wall_ns() : 0;
  const std::uint8_t* data = msg.payload.data();
  const std::size_t size = msg.payload.size();
  std::size_t pos = 0;
  std::uint64_t cmds = 0;
  {
    // One pin per buffer: every gm.get() inside execute() runs against
    // storage a concurrent unregister_array cannot reclaim until we unpin.
    // A kFree executed under our own pin only defers — retire() never
    // waits on accessors, so the self-pin cannot deadlock.
    GlobalMemory::AccessGuard guard(node_->memory());
    while (pos < size) {
      const std::uint8_t* payload = nullptr;
      const CmdHeader cmd = decode_cmd(data, size, &pos, &payload);
      execute(cmd, payload, msg.src);
      ++cmds;
    }
  }
  node_->stats().cmds_executed.add(cmds);
  if (tracing)
    obs::trace_complete("cmds.process", trace_start_ns, wall_ns(), cmds);
}

void Helper::execute(const CmdHeader& cmd, const std::uint8_t* payload,
                     std::uint32_t src) {
  auto& gm = node_->memory();
  switch (cmd.op) {
    case Op::kPut: {
      LocalArray& array = gm.get(cmd.handle);
      std::memcpy(array.local_ptr(cmd.offset), payload, cmd.payload_size);
      CmdHeader ack;
      ack.op = Op::kPutAck;
      ack.token = cmd.token;
      node_->emit(*slot_, src, ack, nullptr);
      break;
    }
    case Op::kPutValue: {
      LocalArray& array = gm.get(cmd.handle);
      const std::uint64_t value = cmd.aux1;
      const auto size = static_cast<std::uint32_t>(cmd.aux2);
      GMT_DCHECK(size <= 8);
      std::memcpy(array.local_ptr(cmd.offset), &value, size);
      CmdHeader ack;
      ack.op = Op::kPutAck;
      ack.token = cmd.token;
      node_->emit(*slot_, src, ack, nullptr);
      break;
    }
    case Op::kGet: {
      LocalArray& array = gm.get(cmd.handle);
      CmdHeader reply;
      reply.op = Op::kGetReply;
      reply.token = cmd.token;
      reply.aux1 = cmd.aux1;  // requester-local destination address
      reply.payload_size = static_cast<std::uint32_t>(cmd.aux2);
      node_->emit(*slot_, src, reply, array.local_ptr(cmd.offset));
      break;
    }
    case Op::kGetReply: {
      // Back at the origin: land the data, then release the waiter. A
      // stale reply (its op already failed by the death sweep) must not
      // touch the destination address — the waiter may have moved on.
      if (!node_->reply_ok(src, cmd.token)) break;
      std::memcpy(reinterpret_cast<void*>(cmd.aux1), payload,
                  cmd.payload_size);
      complete_one(cmd.token);
      break;
    }
    case Op::kPutAck: {
      if (!node_->reply_ok(src, cmd.token)) break;
      complete_one(cmd.token);
      break;
    }
    case Op::kAtomicAdd: {
      LocalArray& array = gm.get(cmd.handle);
      const std::uint32_t width = (cmd.flags & kWidth4) ? 4 : 8;
      const std::uint64_t old =
          Node::apply_atomic_add(array.local_ptr(cmd.offset), cmd.aux1, width);
      CmdHeader reply;
      if ((cmd.flags & kNoReply) != 0) {
        // Fire-and-forget add: nobody consumes the old value, so a bare
        // ack releases the issuer's pending_op without a result address.
        reply.op = Op::kPutAck;
      } else {
        reply.op = Op::kAtomicReply;
        reply.aux1 = old;
        reply.aux2 = cmd.aux2;  // requester-local result address
      }
      reply.token = cmd.token;
      node_->emit(*slot_, src, reply, nullptr);
      break;
    }
    case Op::kAtomicCas: {
      LocalArray& array = gm.get(cmd.handle);
      const std::uint32_t width = (cmd.flags & kWidth4) ? 4 : 8;
      // CAS packs expected in aux1 and desired in aux2; the requester-local
      // result address rides in `offset`'s upper companion — we reuse the
      // payload for it to keep the header compact.
      std::uint64_t result_addr = 0;
      GMT_DCHECK(cmd.payload_size == sizeof(result_addr));
      std::memcpy(&result_addr, payload, sizeof(result_addr));
      const std::uint64_t old = Node::apply_atomic_cas(
          array.local_ptr(cmd.offset), cmd.aux1, cmd.aux2, width);
      CmdHeader reply;
      reply.op = Op::kAtomicReply;
      reply.token = cmd.token;
      reply.aux1 = old;
      reply.aux2 = result_addr;
      node_->emit(*slot_, src, reply, nullptr);
      break;
    }
    case Op::kAtomicReply: {
      if (!node_->reply_ok(src, cmd.token)) break;
      if (cmd.aux2)
        std::memcpy(reinterpret_cast<void*>(cmd.aux2), &cmd.aux1, 8);
      complete_one(cmd.token);
      break;
    }
    case Op::kSpawn: {
      IterBlock* itb = node_->acquire_itb();
      itb->fn = reinterpret_cast<TaskFn>(cmd.handle);
      itb->chunk = cmd.offset ? cmd.offset : 1;
      itb->begin = cmd.aux1;
      itb->end = cmd.aux1 + cmd.aux2;
      itb->next.store(itb->begin, std::memory_order_relaxed);
      itb->origin_node = src;
      itb->token = cmd.token;
      itb->set_args(payload, cmd.payload_size);
      GMT_CHECK_MSG(node_->itb_queue().push(itb), "itb queue overflow");
      break;
    }
    case Op::kSpawnDone: {
      if (!node_->reply_ok(src, cmd.token)) break;
      if (cmd.aux2 != 0)
        complete_one_error(cmd.token,
                           static_cast<std::uint32_t>(cmd.aux2));
      else
        complete_one(cmd.token);
      break;
    }
    case Op::kAlloc: {
      gm.register_array(cmd.handle, cmd.offset,
                        static_cast<Alloc>(cmd.flags),
                        static_cast<std::uint32_t>(cmd.aux1));
      CmdHeader ack;
      ack.op = Op::kAllocAck;
      ack.token = cmd.token;
      node_->emit(*slot_, src, ack, nullptr);
      break;
    }
    case Op::kAllocAck: {
      if (!node_->reply_ok(src, cmd.token)) break;
      complete_one(cmd.token);
      break;
    }
    case Op::kFree: {
      gm.unregister_array(cmd.handle);
      CmdHeader ack;
      ack.op = Op::kFreeAck;
      ack.token = cmd.token;
      node_->emit(*slot_, src, ack, nullptr);
      break;
    }
    case Op::kFreeAck: {
      if (!node_->reply_ok(src, cmd.token)) break;
      complete_one(cmd.token);
      break;
    }
    case Op::kCacheInval: {
      // Write-invalidate broadcast from a mutating node: drop every cached
      // line of the handle, then ack on the writer's completion token so
      // its blocking point (or future) covers this cache too.
      if (SwCache* cache = node_->cache()) cache->invalidate(cmd.handle);
      CmdHeader ack;
      ack.op = Op::kPutAck;
      ack.token = cmd.token;
      node_->emit(*slot_, src, ack, nullptr);
      break;
    }
    case Op::kActorMsg: {
      // Hand the message to the actor layer: it copies the payload,
      // resequences per (src, mailbox), and acks with kActorAck only
      // after a delivery task has run the handler.
      node_->actors().deliver(*slot_, cmd, payload, src);
      break;
    }
    case Op::kActorAck: {
      // Window bookkeeping first — the window must open even when the
      // token echo is stale (the send already failed via the death
      // sweep), or leaked slots would pile up toward a live peer.
      node_->actors().note_ack(src, cmd.handle);
      if (!node_->reply_ok(src, cmd.token)) break;
      if (cmd.payload_size && cmd.aux1)
        std::memcpy(reinterpret_cast<void*>(cmd.aux1), payload,
                    cmd.payload_size);
      if (cmd.aux2)
        complete_one_error(cmd.token, static_cast<std::uint32_t>(cmd.aux2));
      else
        complete_one(cmd.token);
      break;
    }
  }
}

}  // namespace gmt::rt
