// Implementation of the public API: thin dispatch from the calling worker
// thread to its node's operation layer.
#include "gmt/gmt.hpp"

#include <string>

#include "common/assert.hpp"
#include "common/config.hpp"
#include "runtime/cluster.hpp"
#include "runtime/collectives.hpp"
#include "runtime/node.hpp"

namespace gmt {

void run(std::uint32_t num_nodes, TaskFn fn, const void* args,
         std::size_t args_size) {
  Config config;
  config.apply_env();
  const std::string error = config.validate();
  GMT_CHECK_MSG(error.empty(), error.c_str());
  rt::Cluster cluster(num_nodes, config);
  cluster.run(fn, args, args_size);
}

namespace {

rt::Worker& current_worker() {
  rt::Worker* worker = rt::Worker::current();
  GMT_CHECK_MSG(worker != nullptr && worker->current_task() != nullptr,
                "GMT API called outside a task context");
  return *worker;
}

}  // namespace

gmt_handle gmt_new(std::uint64_t size, Alloc policy) {
  rt::Worker& w = current_worker();
  return w.node().op_alloc(w, size, policy);
}

// Contract: the handle must be live (allocated, not yet freed) and the
// caller must have quiesced its own outstanding operations against it.
// Freeing recycles the slot — a later allocation may reuse it under a new
// generation — so stale handles kept past the free abort loudly rather
// than aliasing the new array.
void gmt_free(gmt_handle handle) {
  rt::Worker& w = current_worker();
  GMT_CHECK_MSG(handle != kNullHandle, "gmt_free of null handle");
  w.node().op_free(w, handle);
}

void gmt_put(gmt_handle handle, std::uint64_t offset, const void* data,
             std::uint64_t size) {
  rt::Worker& w = current_worker();
  w.node().op_put(w, handle, offset, data, size, /*blocking=*/true);
}

void gmt_put_nb(gmt_handle handle, std::uint64_t offset, const void* data,
                std::uint64_t size) {
  rt::Worker& w = current_worker();
  w.node().op_put(w, handle, offset, data, size, /*blocking=*/false);
}

void gmt_put_value(gmt_handle handle, std::uint64_t offset,
                   std::uint64_t value, std::uint32_t size) {
  rt::Worker& w = current_worker();
  w.node().op_put_value(w, handle, offset, value, size, /*blocking=*/true);
}

void gmt_put_value_nb(gmt_handle handle, std::uint64_t offset,
                      std::uint64_t value, std::uint32_t size) {
  rt::Worker& w = current_worker();
  w.node().op_put_value(w, handle, offset, value, size, /*blocking=*/false);
}

void gmt_get(gmt_handle handle, std::uint64_t offset, void* data,
             std::uint64_t size) {
  rt::Worker& w = current_worker();
  w.node().op_get(w, handle, offset, data, size, /*blocking=*/true);
}

void gmt_get_nb(gmt_handle handle, std::uint64_t offset, void* data,
                std::uint64_t size) {
  rt::Worker& w = current_worker();
  w.node().op_get(w, handle, offset, data, size, /*blocking=*/false);
}

void gmt_wait_commands() {
  rt::Worker& w = current_worker();
  w.node().op_wait_commands(w);
}

Future gmt_get_f(gmt_handle handle, std::uint64_t offset, void* data,
                 std::uint64_t size) {
  rt::Worker& w = current_worker();
  return w.node().op_get_f(w, handle, offset, data, size);
}

Future gmt_put_f(gmt_handle handle, std::uint64_t offset, const void* data,
                 std::uint64_t size) {
  rt::Worker& w = current_worker();
  return w.node().op_put_f(w, handle, offset, data, size);
}

Future gmt_atomic_add_f(gmt_handle handle, std::uint64_t offset,
                        std::uint64_t value, std::uint64_t* old_out,
                        std::uint32_t width) {
  rt::Worker& w = current_worker();
  return w.node().op_atomic_add_f(w, handle, offset, value, old_out, width);
}

std::uint32_t wait(Future f) { return current_worker().future_wait(f.token); }

std::uint32_t wait_all(std::span<const Future> fs) {
  rt::Worker& w = current_worker();
  std::uint32_t status = 0;
  for (const Future& f : fs) {
    const std::uint32_t st = w.future_wait(f.token);
    if (status == 0) status = st;
  }
  return status;
}

std::size_t wait_any(std::span<const Future> fs, std::uint32_t* status) {
  rt::Worker& w = current_worker();
  return w.future_wait_any(fs.data(), fs.size(), status);
}

bool is_ready(Future f) {
  (void)current_worker();  // same task-context contract as wait()
  return rt::Worker::future_ready(f.token);
}

std::uint64_t gmt_atomic_add(gmt_handle handle, std::uint64_t offset,
                             std::uint64_t value, std::uint32_t width) {
  rt::Worker& w = current_worker();
  return w.node().op_atomic_add(w, handle, offset, value, width);
}

void gmt_atomic_add_nb(gmt_handle handle, std::uint64_t offset,
                       std::uint64_t value, std::uint32_t width) {
  rt::Worker& w = current_worker();
  w.node().op_atomic_add_nb(w, handle, offset, value, width);
}

void gmt_atomic_inc(gmt_handle handle, std::uint64_t offset,
                    std::uint32_t width) {
  rt::Worker& w = current_worker();
  w.node().op_atomic_add_nb(w, handle, offset, 1, width);
}

std::uint64_t gmt_atomic_cas(gmt_handle handle, std::uint64_t offset,
                             std::uint64_t expected, std::uint64_t desired,
                             std::uint32_t width) {
  rt::Worker& w = current_worker();
  return w.node().op_atomic_cas(w, handle, offset, expected, desired, width);
}

std::uint64_t gmt_scan(gmt_handle src, gmt_handle dst, std::uint64_t count,
                       std::uint64_t src_first, std::uint64_t dst_first) {
  (void)current_worker();  // same task-context contract as the ops above
  return coll::exclusive_scan_u64(src, src_first, count, dst, dst_first);
}

void gmt_parfor(std::uint64_t iterations, std::uint64_t chunk, TaskFn fn,
                const void* args, std::size_t args_size, Spawn policy) {
  rt::Worker& w = current_worker();
  w.node().op_parfor(w, iterations, chunk, fn, args, args_size, policy);
}

void gmt_on(std::uint32_t node, TaskFn fn, const void* args,
            std::size_t args_size) {
  rt::Worker& w = current_worker();
  w.node().op_execute_on(w, node, fn, args, args_size);
}

void gmt_yield() { current_worker().task_yield(); }

std::uint32_t gmt_last_error() {
  return current_worker().current_task()->status.load(
      std::memory_order_acquire);
}

void gmt_clear_error() {
  current_worker().current_task()->status.store(0, std::memory_order_release);
}

std::uint64_t gmt_membership_epoch() {
  return current_worker().node().membership_epoch();
}

bool gmt_node_is_live(std::uint32_t node) {
  return current_worker().node().node_is_live(node);
}

std::uint32_t gmt_node_id() { return current_worker().node().id(); }

std::uint32_t gmt_num_nodes() {
  return current_worker().node().num_nodes();
}

}  // namespace gmt
