#include "runtime/swcache.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace gmt::rt {

void SwCacheStats::bind(obs::Registry& reg) {
  hits = reg.counter(obs::names::kCacheHits);
  misses = reg.counter(obs::names::kCacheMisses);
  installs = reg.counter(obs::names::kCacheInstalls);
  racy_skips = reg.counter(obs::names::kCacheRacySkips);
  invals = reg.counter(obs::names::kCacheInvals);
  inval_lines = reg.counter(obs::names::kCacheInvalLines);
}

SwCache::SwCache(std::uint64_t capacity_bytes, obs::Registry* registry) {
  std::uint64_t lines = capacity_bytes / kLineBytes;
  if (lines == 0) lines = 1;
  // Round down to a power of two so entry_index is a mask.
  while ((lines & (lines - 1)) != 0) lines &= lines - 1;
  entries_ = std::make_unique<Entry[]>(lines);
  mask_ = static_cast<std::size_t>(lines - 1);
  if (registry != nullptr) stats_.bind(*registry);
}

bool SwCache::lookup(gmt_handle handle, std::uint64_t line,
                     std::uint32_t offset_in_line, std::uint32_t len,
                     void* out) {
  GMT_CHECK(offset_in_line + len <= kLineBytes);
  Entry& e = entries_[entry_index(handle, line)];
  lock_entry(e);
  const bool hit = e.valid && e.handle == handle && e.line == line &&
                   offset_in_line >= e.start &&
                   offset_in_line + len <= e.start + e.len;
  if (hit) std::memcpy(out, e.data + offset_in_line, len);
  unlock_entry(e);
  if (hit)
    stats_.hits.add();
  else
    stats_.misses.add();
  return hit;
}

std::uint64_t SwCache::epoch(gmt_handle handle) const {
  return epochs_[epoch_shard(handle)].value.load(std::memory_order_seq_cst);
}

void SwCache::install(gmt_handle handle, std::uint64_t line, const void* data,
                      std::uint32_t start, std::uint32_t len,
                      std::uint64_t epoch_at_fetch) {
  GMT_CHECK(start + len <= kLineBytes);
  Entry& e = entries_[entry_index(handle, line)];
  lock_entry(e);
  // The epoch must be re-read under the entry lock: invalidate() bumps the
  // epoch before walking entries under the same lock, so if the epoch still
  // matches here the walk has not passed this entry yet (it will clear the
  // install) or never will (no concurrent invalidation).
  if (epochs_[epoch_shard(handle)].value.load(std::memory_order_seq_cst) !=
      epoch_at_fetch) {
    unlock_entry(e);
    stats_.racy_skips.add();
    return;
  }
  e.valid = true;
  e.handle = handle;
  e.line = line;
  e.start = start;
  e.len = len;
  std::memcpy(e.data + start, data, len);
  unlock_entry(e);
  stats_.installs.add();
}

void SwCache::invalidate(gmt_handle handle) {
  // Epoch first (seq_cst): any reader that snapshotted the old epoch before
  // its fetch will refuse to install, and any install that already made it
  // in is cleared by the walk below.
  epochs_[epoch_shard(handle)].value.fetch_add(1, std::memory_order_seq_cst);
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    Entry& e = entries_[i];
    lock_entry(e);
    if (e.valid && e.handle == handle) {
      e.valid = false;
      ++dropped;
    }
    unlock_entry(e);
  }
  stats_.invals.add();
  if (dropped) stats_.inval_lines.add(dropped);
}

}  // namespace gmt::rt
