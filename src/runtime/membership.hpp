// Failure detection and fail-stop membership epochs.
//
// The paper's runtime assumes every node lives for the whole run; a single
// crashed node turns blocked workers into a cluster-wide hang, because the
// completion protocol (paper §IV) releases a task only when the reply for
// each of its pending operations arrives. This layer removes that
// assumption for fail-stop crashes:
//
//   detection  — the reliability layer records per-peer signals (last valid
//                frame heard, consecutive retransmission timeouts). The
//                MembershipManager turns them into suspicion: silence past
//                GMT_SUSPECT_TIMEOUT_NS, or a frame exhausting its retry
//                budget. Heartbeats keep idle-but-healthy links noisy so
//                silence is meaningful.
//   exclusion  — every node that suspects a peer immediately fail-stops it
//                locally (stops sending, purges channel state, drains
//                aggregation queues, fails the peer's in-flight operations
//                with GMT_ERR_NODE_LOST). The lowest live node id then
//                proposes membership epoch N+1 carrying the survivor set;
//                peers intersect it with their own view, adopt, and ack;
//                the coordinator commits once every live peer acked and
//                rebroadcasts until then. Membership only shrinks, so
//                concurrent proposals converge to the same set.
//   recovery   — global arrays with partitions on the dead node are marked
//                degraded (operations fail loudly with GMT_ERR_NODE_LOST
//                and the task keeps running); with GMT_REPLICATE=1 small
//                partitioned arrays carry a buddy replica and the epoch
//                change remaps lost partitions onto it instead.
//
// Exactly-once completion discipline: an operation's token is tracked in
// the PendingOpTracker *before* its command is offered to the aggregator,
// and every completion path — normal reply, death sweep, append rejection —
// must win the token's map entry before touching the task. Replies for
// untracked tokens are stale (the op was already failed) and are dropped
// without dereferencing their result addresses.
//
// Threading: tick()/on_suspect()/on_control() run on the comm-server
// thread only. The tracker and the read-side accessors (is_live, epoch)
// are called from workers and helpers concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/cacheline.hpp"
#include "common/config.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"

namespace gmt::rt {

class Aggregator;
class GlobalMemory;
class ReliableChannel;

struct MembershipStats {
  obs::Counter heartbeats;      // kHeartbeat frames sent
  obs::Counter suspects;        // peers locally declared dead
  obs::Counter epoch_commits;   // epochs this node committed/adopted
  obs::Counter peers_lost;      // same as suspects, kept for reports
  obs::Counter ops_failed;      // operations completed with NODE_LOST
  obs::Gauge epoch;             // current committed epoch
  obs::Gauge live_nodes;        // size of the live set (this node's view)

  void bind(obs::Registry& reg);
};

// In-flight remote operations per destination: token -> outstanding count
// (one task may aim several chunks of several ops, all sharing its token,
// at the same peer; counts are fungible because a completion is just a
// pending_ops decrement). Workers track *after* the aggregator accepted
// the command — so the aggregation stall-ticket machinery never shares a
// pending_ops count with the tracker — which means a fast reply can
// outrun its own track: counts are signed, and such a reply leaves a
// tombstone (negative count) that the late track cancels. The map entry
// is the arbiter between the normal reply path and the death sweep, so
// each count is released exactly once.
class PendingOpTracker {
 public:
  explicit PendingOpTracker(std::uint32_t num_nodes);

  // Records one outstanding completion for `token` toward `dst` (cancels a
  // tombstone left by a reply that already arrived).
  void track(std::uint32_t dst, std::uint64_t token);

  // Emit-side failure path: claims one *tracked* completion. True = the
  // caller owns it and must fail the op; false = a reply or the death
  // sweep already released it.
  bool complete(std::uint32_t dst, std::uint64_t token);

  // Helper-side reply arbitration. True = deliver the reply and complete
  // the op; false = the reply is stale (the death sweep already failed the
  // op) and must be dropped without touching its result addresses. A reply
  // with no tracked count from a still-live source outran its track and
  // leaves a tombstone; `live_mask` is read under the shard lock, which
  // orders it against fail_all (the membership layer clears the live bit
  // strictly before sweeping).
  bool consume_reply(std::uint32_t src, std::uint64_t token,
                     const std::atomic<std::uint64_t>& live_mask);

  // Fails every tracked completion toward `dst` with `status`
  // (complete_one_error per count), preserving tombstones. Returns the
  // number failed.
  std::size_t fail_all(std::uint32_t dst, std::uint32_t status);

 private:
  struct alignas(kCacheLine) Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::int32_t> ops;
  };

  std::unique_ptr<Shard[]> shards_;  // one per destination node
  std::uint32_t num_nodes_;
};

class MembershipManager {
 public:
  MembershipManager(const Config& config, std::uint32_t node_id,
                    std::uint32_t num_nodes, obs::Registry* registry);

  // Wires the comm-side collaborators (called once by the comm server
  // before its thread starts driving tick()).
  void attach(ReliableChannel* channel, Aggregator* agg, GlobalMemory* gm);

  // ---- read side (any thread) ----
  bool is_live(std::uint32_t node) const {
    return (live_mask_.load(std::memory_order_acquire) >> node) & 1u;
  }
  std::uint64_t live_mask() const {
    return live_mask_.load(std::memory_order_acquire);
  }
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  // True when every peer (not counting this node) has been declared dead —
  // the comm server's shutdown drain has nobody left to wait for.
  bool all_peers_dead() const {
    return live_mask_.load(std::memory_order_acquire) ==
           (std::uint64_t{1} << node_id_);
  }

  PendingOpTracker& tracker() { return tracker_; }

  // Helper-side reply arbitration (see PendingOpTracker::consume_reply).
  bool reply_arrived(std::uint32_t src, std::uint64_t token) {
    return tracker_.consume_reply(src, token, live_mask_);
  }

  // Completes `token` with GMT_ERR_NODE_LOST (caller already owns the
  // completion — emit-side rejection path).
  void fail_token(std::uint64_t token);

  // ---- comm-server thread ----

  // Periodic driver: heartbeats toward quiet live peers, silence-based
  // suspicion, proposal rebroadcast, health-gauge refresh.
  void tick(std::uint64_t now_ns);

  // ReliableChannel's retry-budget-exhaustion callback.
  void on_suspect(std::uint32_t peer);

  // Membership control frames (kEpochPropose / kEpochAck) routed by the
  // channel.
  void on_control(std::uint32_t src, net::FrameType type,
                  const net::EpochPayload& payload);

  // ---- instrumentation (tests / bench) ----
  std::uint64_t first_suspect_ns() const {
    return first_suspect_ns_.load(std::memory_order_acquire);
  }
  std::uint64_t last_commit_ns() const {
    return last_commit_ns_.load(std::memory_order_acquire);
  }
  std::uint64_t peers_lost() const {
    return peers_lost_.load(std::memory_order_acquire);
  }

 private:
  // Local fail-stop: removes `peer` from the live set and drains every
  // structure that could otherwise wait on it forever, then (re)enters the
  // epoch agreement. Idempotent.
  void declare_dead(std::uint32_t peer, std::uint64_t now_ns);

  // Starts/refreshes the coordinator's proposal for the current live set
  // (no-op when another live node has a lower id — it leads).
  void refresh_proposal(std::uint64_t now_ns);
  void broadcast_proposal(std::uint64_t now_ns);
  void commit(std::uint64_t epoch, std::uint64_t now_ns);

  bool coordinator() const {
    const std::uint64_t mask = live_mask_.load(std::memory_order_relaxed);
    return (mask & ((std::uint64_t{1} << node_id_) - 1)) == 0;
  }

  void publish_health(std::uint64_t now_ns);

  const Config config_;
  const std::uint32_t node_id_;
  const std::uint32_t num_nodes_;

  ReliableChannel* channel_ = nullptr;
  Aggregator* agg_ = nullptr;
  GlobalMemory* gm_ = nullptr;

  PendingOpTracker tracker_;
  MembershipStats stats_;

  std::atomic<std::uint64_t> live_mask_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> first_suspect_ns_{0};
  std::atomic<std::uint64_t> last_commit_ns_{0};
  std::atomic<std::uint64_t> peers_lost_{0};

  // Comm-thread-only protocol state.
  std::uint64_t start_ns_ = 0;           // first tick (silence baseline)
  std::uint64_t proposed_epoch_ = 0;     // 0 = no proposal in flight
  std::uint64_t acks_pending_ = 0;       // live peers yet to ack
  std::uint64_t next_propose_ns_ = 0;    // rebroadcast pacing
  std::uint64_t next_health_ns_ = 0;     // gauge refresh pacing

  // Gauges accumulate deltas, so remember the last published values.
  std::int64_t prev_epoch_gauge_ = 0;
  std::int64_t prev_live_gauge_ = 0;
  struct PeerGauges {
    obs::Gauge state;
    obs::Gauge last_ack_age_us;
    obs::Gauge timeouts;
    std::int64_t prev_state = 0;
    std::int64_t prev_age = 0;
    std::int64_t prev_timeouts = 0;
  };
  std::vector<PeerGauges> peer_gauges_;
};

}  // namespace gmt::rt
