#include "runtime/membership.hpp"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "gmt/error.hpp"
#include "gmt/obs.hpp"
#include "runtime/aggregation.hpp"
#include "runtime/global_memory.hpp"
#include "runtime/reliable_channel.hpp"
#include "runtime/task.hpp"

namespace gmt::rt {

void MembershipStats::bind(obs::Registry& reg) {
  namespace names = obs::names;
  heartbeats = reg.counter(names::kMembHeartbeats);
  suspects = reg.counter(names::kMembSuspects);
  epoch_commits = reg.counter(names::kMembEpochCommits);
  peers_lost = reg.counter(names::kMembPeersLost);
  ops_failed = reg.counter(names::kMembOpsFailed);
  epoch = reg.gauge(names::kMembEpoch);
  live_nodes = reg.gauge(names::kMembLiveNodes);
}

PendingOpTracker::PendingOpTracker(std::uint32_t num_nodes)
    : shards_(new Shard[num_nodes]), num_nodes_(num_nodes) {}

void PendingOpTracker::track(std::uint32_t dst, std::uint64_t token) {
  GMT_DCHECK(dst < num_nodes_);
  Shard& shard = shards_[dst];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ops.try_emplace(token, 0).first;
  if (++it->second == 0) shard.ops.erase(it);  // cancelled a tombstone
}

bool PendingOpTracker::complete(std::uint32_t dst, std::uint64_t token) {
  GMT_DCHECK(dst < num_nodes_);
  Shard& shard = shards_[dst];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ops.find(token);
  if (it == shard.ops.end() || it->second <= 0) return false;
  if (--it->second == 0) shard.ops.erase(it);
  return true;
}

bool PendingOpTracker::consume_reply(
    std::uint32_t src, std::uint64_t token,
    const std::atomic<std::uint64_t>& live_mask) {
  GMT_DCHECK(src < num_nodes_);
  Shard& shard = shards_[src];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.ops.find(token);
  if (it != shard.ops.end() && it->second > 0) {
    if (--it->second == 0) shard.ops.erase(it);
    return true;
  }
  // No tracked count. From a dead source that means the sweep already
  // failed the op — the reply is stale. From a live source the reply beat
  // its own track (the sweep cannot have run: the live bit is cleared
  // before fail_all, and this lock orders us against it); tombstone so the
  // late track cancels instead of re-arming the count.
  if (!((live_mask.load(std::memory_order_acquire) >> src) & 1u))
    return false;
  --shard.ops[token];
  return true;
}

std::size_t PendingOpTracker::fail_all(std::uint32_t dst,
                                       std::uint32_t status) {
  GMT_DCHECK(dst < num_nodes_);
  Shard& shard = shards_[dst];
  std::vector<std::pair<std::uint64_t, std::int32_t>> taken;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    taken.reserve(shard.ops.size());
    for (auto it = shard.ops.begin(); it != shard.ops.end();) {
      if (it->second > 0) {
        taken.emplace_back(it->first, it->second);
        it = shard.ops.erase(it);
      } else {
        ++it;  // tombstone: its reply was already delivered; keep it for
               // the late track to cancel
      }
    }
  }
  // Completions run outside the lock: complete_one_error may wake a task.
  std::size_t failed = 0;
  for (const auto& [token, count] : taken) {
    for (std::int32_t i = 0; i < count; ++i) complete_one_error(token, status);
    failed += static_cast<std::size_t>(count);
  }
  return failed;
}

MembershipManager::MembershipManager(const Config& config,
                                     std::uint32_t node_id,
                                     std::uint32_t num_nodes,
                                     obs::Registry* registry)
    : config_(config),
      node_id_(node_id),
      num_nodes_(num_nodes),
      tracker_(num_nodes),
      live_mask_(num_nodes >= 64 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << num_nodes) - 1) {
  GMT_CHECK(num_nodes <= 64);  // EpochPayload.members is a 64-bit bitmask
  peer_gauges_.resize(num_nodes);
  if (registry != nullptr) {
    stats_.bind(*registry);
    for (std::uint32_t p = 0; p < num_nodes_; ++p) {
      if (p == node_id_) continue;
      const std::string base = "health.peer" + std::to_string(p);
      peer_gauges_[p].state = registry->gauge(base + ".state");
      peer_gauges_[p].last_ack_age_us =
          registry->gauge(base + ".last_ack_age_us");
      peer_gauges_[p].timeouts = registry->gauge(base + ".timeouts");
    }
  }
  stats_.live_nodes.add(static_cast<std::int64_t>(num_nodes));
  prev_live_gauge_ = static_cast<std::int64_t>(num_nodes);
}

void MembershipManager::attach(ReliableChannel* channel, Aggregator* agg,
                               GlobalMemory* gm) {
  channel_ = channel;
  agg_ = agg;
  gm_ = gm;
}

void MembershipManager::fail_token(std::uint64_t token) {
  stats_.ops_failed.add();
  complete_one_error(token, GMT_ERR_NODE_LOST);
}

void MembershipManager::tick(std::uint64_t now_ns) {
  if (channel_ == nullptr) return;
  if (start_ns_ == 0) {
    // First tick: the silence baseline for peers never heard from, so a
    // peer that dies before its first frame is still detected.
    start_ns_ = now_ns;
    next_health_ns_ = now_ns + config_.heartbeat_ns;
  }
  const std::uint64_t mask = live_mask_.load(std::memory_order_relaxed);
  for (std::uint32_t peer = 0; peer < num_nodes_; ++peer) {
    if (peer == node_id_ || !((mask >> peer) & 1u)) continue;
    const PeerHealthSnapshot h = channel_->health(peer);
    if (h.state != PeerState::kLive) {
      // Retry-budget exhaustion already flagged it via on_suspect; make
      // sure the local fail-stop ran even if the callback was unset.
      declare_dead(peer, now_ns);
      continue;
    }
    const std::uint64_t heard = h.last_heard_ns ? h.last_heard_ns : start_ns_;
    if (now_ns > heard && now_ns - heard >= config_.suspect_timeout_ns) {
      channel_->note_suspect(peer);
      declare_dead(peer, now_ns);
      continue;
    }
    const std::uint64_t sent =
        std::max(channel_->last_tx_ns(peer), start_ns_);
    if (now_ns > sent && now_ns - sent >= config_.heartbeat_ns) {
      if (channel_->send_heartbeat(peer, now_ns)) stats_.heartbeats.add();
    }
  }
  if (proposed_epoch_ != 0 && acks_pending_ != 0 &&
      now_ns >= next_propose_ns_)
    broadcast_proposal(now_ns);
  if (now_ns >= next_health_ns_) {
    publish_health(now_ns);
    next_health_ns_ =
        now_ns + std::max<std::uint64_t>(config_.heartbeat_ns, 1'000'000);
  }
}

void MembershipManager::on_suspect(std::uint32_t peer) {
  declare_dead(peer, wall_ns());
}

void MembershipManager::declare_dead(std::uint32_t peer,
                                     std::uint64_t now_ns) {
  const std::uint64_t bit = std::uint64_t{1} << peer;
  const std::uint64_t prev = live_mask_.load(std::memory_order_relaxed);
  if (!(prev & bit)) return;  // idempotent (note_suspect may re-enter)
  std::uint64_t zero = 0;
  first_suspect_ns_.compare_exchange_strong(zero, now_ns,
                                            std::memory_order_acq_rel);
  // Clear the live bit before touching the channel: note_suspect's callback
  // re-enters declare_dead and must see the peer already excluded.
  live_mask_.store(prev & ~bit, std::memory_order_release);
  stats_.suspects.add();
  stats_.peers_lost.add();
  peers_lost_.fetch_add(1, std::memory_order_acq_rel);

  // Drain order matters. (1) Stop the channel: nothing new leaves and its
  // unacked window empties. (2) Mark the aggregation destination dead: the
  // queued blocks recycle, credit/stall parks wake, and — crucially before
  // (3) — emit's append starts refusing the destination, so a track racing
  // this sweep either lands before the swap (we fail it) or its append is
  // rejected (the worker fails it). (3) Fail every tracked in-flight op.
  // (4) Degrade/remap the global arrays that lost partitions.
  channel_->note_suspect(peer);
  const std::size_t purged = channel_->purge_peer(peer);
  if (agg_ != nullptr) agg_->mark_dead(peer);
  const std::size_t failed = tracker_.fail_all(peer, GMT_ERR_NODE_LOST);
  stats_.ops_failed.add(failed);
  if (gm_ != nullptr) gm_->degrade_node(peer);
  GMT_LOG_WARN(
      "node %u: peer %u declared dead (%zu unacked frames purged, %zu "
      "in-flight ops failed, live mask %llx)",
      node_id_, peer, purged, failed,
      static_cast<unsigned long long>(prev & ~bit));

  refresh_proposal(now_ns);
}

void MembershipManager::refresh_proposal(std::uint64_t now_ns) {
  if (!coordinator()) {
    // A lower live id leads the agreement; drop any proposal we were
    // driving and answer its kEpochPropose instead.
    proposed_epoch_ = 0;
    acks_pending_ = 0;
    return;
  }
  // Monotone proposal numbers: a second death during an open proposal
  // supersedes it, and peers adopt whichever carries the higher epoch.
  proposed_epoch_ =
      std::max(epoch_.load(std::memory_order_relaxed), proposed_epoch_) + 1;
  acks_pending_ = live_mask_.load(std::memory_order_relaxed) &
                  ~(std::uint64_t{1} << node_id_);
  if (acks_pending_ == 0) {
    commit(proposed_epoch_, now_ns);
    return;
  }
  broadcast_proposal(now_ns);
}

void MembershipManager::broadcast_proposal(std::uint64_t now_ns) {
  const net::EpochPayload payload{
      proposed_epoch_, live_mask_.load(std::memory_order_relaxed)};
  for (std::uint32_t peer = 0; peer < num_nodes_; ++peer) {
    if ((acks_pending_ >> peer) & 1u)
      channel_->send_control(peer, net::FrameType::kEpochPropose, payload);
  }
  next_propose_ns_ = now_ns + config_.heartbeat_ns;
}

void MembershipManager::commit(std::uint64_t epoch, std::uint64_t now_ns) {
  epoch_.store(epoch, std::memory_order_release);
  last_commit_ns_.store(now_ns, std::memory_order_release);
  stats_.epoch_commits.add();
  proposed_epoch_ = 0;
  acks_pending_ = 0;
  GMT_LOG_INFO("node %u: membership epoch %llu committed (live mask %llx)",
               node_id_, static_cast<unsigned long long>(epoch),
               static_cast<unsigned long long>(
                   live_mask_.load(std::memory_order_relaxed)));
}

void MembershipManager::on_control(std::uint32_t src, net::FrameType type,
                                   const net::EpochPayload& payload) {
  const std::uint64_t now = wall_ns();
  if (type == net::FrameType::kEpochPropose) {
    if (!((payload.members >> node_id_) & 1u)) {
      // The survivors excluded *us* (we were slow, not crashed). Fail-stop
      // semantics forbid rejoining: keep running locally and let their
      // epoch stand.
      GMT_LOG_WARN("node %u: excluded by epoch %llu proposal from node %u",
                   node_id_, static_cast<unsigned long long>(payload.epoch),
                   src);
      return;
    }
    // Adopt deaths we have not noticed ourselves yet (the membership set
    // only ever shrinks, so intersecting views is safe).
    std::uint64_t excluded = live_mask_.load(std::memory_order_relaxed) &
                             ~payload.members &
                             ~(std::uint64_t{1} << node_id_);
    for (std::uint32_t p = 0; p < num_nodes_ && excluded != 0; ++p) {
      if ((excluded >> p) & 1u) {
        declare_dead(p, now);
        excluded &= ~(std::uint64_t{1} << p);
      }
    }
    if (payload.epoch > epoch_.load(std::memory_order_relaxed))
      commit(payload.epoch, now);
    const net::EpochPayload ack{payload.epoch,
                                live_mask_.load(std::memory_order_relaxed)};
    channel_->send_control(src, net::FrameType::kEpochAck, ack);
    return;
  }
  if (type == net::FrameType::kEpochAck) {
    if (proposed_epoch_ == 0 || payload.epoch != proposed_epoch_)
      return;  // stale ack for a superseded proposal
    acks_pending_ &= ~(std::uint64_t{1} << src);
    if (acks_pending_ == 0) commit(proposed_epoch_, now);
  }
}

void MembershipManager::publish_health(std::uint64_t now_ns) {
  const auto epoch_now =
      static_cast<std::int64_t>(epoch_.load(std::memory_order_relaxed));
  stats_.epoch.add(epoch_now - prev_epoch_gauge_);
  prev_epoch_gauge_ = epoch_now;
  const auto live_now = static_cast<std::int64_t>(
      std::popcount(live_mask_.load(std::memory_order_relaxed)));
  stats_.live_nodes.add(live_now - prev_live_gauge_);
  prev_live_gauge_ = live_now;
  for (std::uint32_t p = 0; p < num_nodes_; ++p) {
    if (p == node_id_) continue;
    PeerGauges& g = peer_gauges_[p];
    const PeerHealthSnapshot h = channel_->health(p);
    const auto state = static_cast<std::int64_t>(h.state);
    g.state.add(state - g.prev_state);
    g.prev_state = state;
    std::int64_t age = g.prev_age;  // dead peers freeze at their last age
    if (h.state != PeerState::kDead) {
      const std::uint64_t heard =
          h.last_heard_ns ? h.last_heard_ns : start_ns_;
      age = static_cast<std::int64_t>(
          (now_ns > heard ? now_ns - heard : 0) / 1000);
    }
    g.last_ack_age_us.add(age - g.prev_age);
    g.prev_age = age;
    const auto timeouts = static_cast<std::int64_t>(h.consec_timeouts);
    g.timeouts.add(timeouts - g.prev_timeouts);
    g.prev_timeouts = timeouts;
  }
}

}  // namespace gmt::rt
