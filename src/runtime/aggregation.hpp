// Multi-level command aggregation (paper §IV-C, Fig. 3).
//
// Level 1 — pre-aggregation: each worker/helper owns one *command block*
// per destination node and appends commands to it without synchronisation.
// Level 2 — aggregation queues: full (or timed-out) command blocks are
// pushed into a per-destination MPMC queue shared by all threads of the
// node. Level 3 — aggregation buffers: whichever thread observes a queue
// holding a buffer's worth of bytes pops blocks, memcpys them into a pooled
// aggregation buffer, and hands the buffer to the communication server over
// its private SPSC channel queue. Blocks and buffers recycle through
// fixed-population pools; nothing allocates on the command path.
//
// Flow control (config.flow_credits > 0): each destination holds a credit
// window counted in aggregation buffers. Aggregation consumes one credit
// per buffer shipped; the receiving node's helpers grant credits back as
// they drain buffers, and the cumulative drained count rides the
// reliability layer's frame headers (see net::FrameHeader::credit). A
// sender out of credit stops draining that DestQueue, and once a full
// buffer's worth is backlogged, appending *tasks* are parked through the
// O(1) scheduler wake-list instead of spinning — the same latency-hiding
// trick GMT uses for remote operations, applied to backpressure.
//
// Adaptive flushing (config.adaptive_flush): the block/queue flush
// deadlines are tuned per destination by an AIMD control loop on flush
// outcomes. A deadline that fires with the queue still mostly empty is
// adding latency for no coalescing — halve it; a queue whose buffers fill
// before the deadline can afford a longer one for free — grow it. The
// loop converges to the short-deadline floor for elastic, latency-bound
// traffic (where every extra microsecond of waiting starves the tasks
// that would produce the next commands) and backs off only when the size
// trigger is already doing the flushing (paper Fig. 4's sweet spot
// without hand-tuning the fixed timeouts). A rate-EWMA controller was
// tried first and rejected: with blocked tasks the offered load is
// elastic, so a long deadline suppresses the measured rate, which
// prescribes a still longer deadline — a self-reinforcing bad fixed
// point.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "collections/mpmc_queue.hpp"
#include "collections/pool.hpp"
#include "collections/spsc_ring.hpp"
#include "common/cacheline.hpp"
#include "common/config.hpp"
#include "obs/metrics.hpp"
#include "runtime/command.hpp"

namespace gmt::rt {

// Reusable array of serialised commands bound for one destination.
class CommandBlock {
 public:
  CommandBlock(std::uint32_t capacity_bytes, std::uint32_t capacity_cmds)
      : capacity_bytes_(capacity_bytes),
        capacity_cmds_(capacity_cmds),
        data_(std::make_unique<std::uint8_t[]>(capacity_bytes)) {}

  // False for emergency heap blocks handed out when the pool is dry and the
  // caller must not block (helpers); such blocks are deleted, not released.
  bool pooled = true;

  bool fits(std::size_t wire_bytes) const {
    return bytes_ + wire_bytes <= capacity_bytes_ && cmds_ < capacity_cmds_;
  }

  // Reserves wire_bytes and returns the write cursor.
  std::uint8_t* append(std::size_t wire_bytes, std::uint64_t now_ns) {
    GMT_DCHECK(fits(wire_bytes));
    if (cmds_ == 0) first_cmd_ns_ = now_ns;
    std::uint8_t* out = data_.get() + bytes_;
    bytes_ += static_cast<std::uint32_t>(wire_bytes);
    ++cmds_;
    return out;
  }

  void reset() {
    bytes_ = 0;
    cmds_ = 0;
    first_cmd_ns_ = 0;
  }

  const std::uint8_t* data() const { return data_.get(); }
  std::uint32_t bytes() const { return bytes_; }
  std::uint32_t cmds() const { return cmds_; }
  std::uint64_t first_cmd_ns() const { return first_cmd_ns_; }
  std::uint32_t capacity_bytes() const { return capacity_bytes_; }

 private:
  const std::uint32_t capacity_bytes_;
  const std::uint32_t capacity_cmds_;
  std::unique_ptr<std::uint8_t[]> data_;
  std::uint32_t bytes_ = 0;
  std::uint32_t cmds_ = 0;
  std::uint64_t first_cmd_ns_ = 0;
};

// Pooled network-sized buffer the comm server sends as one message. When
// the reliability layer is on, `header_reserve` placeholder bytes lead the
// buffer so the comm server seals the frame header in place — commands are
// never copied again after aggregation.
class AggBuffer {
 public:
  explicit AggBuffer(std::uint32_t capacity, std::uint32_t header_reserve = 0)
      : capacity_(capacity), header_reserve_(header_reserve) {
    reset();
  }

  std::uint32_t dst = 0;

  bool fits(std::size_t more) const { return data_.size() + more <= capacity_; }
  void append(const std::uint8_t* bytes, std::size_t count) {
    data_.insert(data_.end(), bytes, bytes + count);
  }
  void reset() {
    data_.clear();
    if (data_.capacity() < capacity_) data_.reserve(capacity_);
    data_.resize(header_reserve_);
  }

  // Moves the contents (header placeholder + commands) out for sending;
  // the buffer is unusable until the next reset() (release_buffer does it).
  std::vector<std::uint8_t> take() { return std::move(data_); }

  const std::vector<std::uint8_t>& data() const { return data_; }
  // Command bytes, excluding the reserved frame-header prefix.
  std::uint32_t payload_bytes() const {
    return static_cast<std::uint32_t>(data_.size()) - header_reserve_;
  }
  std::uint32_t capacity() const { return capacity_; }

 private:
  std::uint32_t capacity_;
  std::uint32_t header_reserve_;
  std::vector<std::uint8_t> data_;
};

// Aggregation statistics (per node, registry-backed; unbound handles are
// inert, so an Aggregator built without a registry simply counts nothing).
struct AggStats {
  obs::Counter commands;          // commands appended
  obs::Counter blocks_full;       // blocks flushed because full
  obs::Counter blocks_timeout;    // blocks flushed on timeout
  obs::Counter buffers_sent;      // aggregation buffers to comm server
  obs::Counter buffer_bytes;      // payload bytes in those buffers
  obs::Counter aggregations;      // aggregation passes executed
  obs::Histogram flush_bytes;     // payload-size distribution per buffer
  obs::Counter credits_consumed;  // credits spent shipping buffers
  obs::Counter credits_granted;   // credits granted to peers (buffers drained)
  obs::Counter credit_stalls;     // tasks parked on credit/pool exhaustion
  obs::Counter blocks_emergency;  // off-pool blocks handed to non-task callers
  obs::Histogram credit_stall_ns; // park duration per stall
  obs::Histogram adaptive_queue_ns;  // effective queue deadline at flush
  obs::Histogram adaptive_block_ns;  // effective block deadline at flush
  obs::Counter combine_hits;       // ops merged into a resident entry
  obs::Counter combine_installs;   // entries installed (one wire cmd each)
  obs::Counter combine_evictions;  // entries displaced by a colliding key
  obs::Counter combine_drains;     // entries flushed by deadline/order/barrier

  void bind(obs::Registry& reg);
};

class Aggregator;

// Outcome of offering a fire-and-forget command to the combining table.
enum class CombineResult : std::uint8_t {
  kBypass,     // combining off / dst dead / cell conflict: emit normally
  kInstalled,  // entry holds the op; it owns one eventual completion
  kMerged,     // folded into a resident same-key entry; no wire command
};

// Per-thread face of the aggregator: the thread-local command blocks and
// the SPSC channel to the comm server. One per worker and per helper.
class AggregationSlot {
 public:
  AggregationSlot(Aggregator* owner, std::uint32_t num_nodes,
                  std::size_t channel_capacity,
                  std::uint32_t combine_entries)
      : owner_(owner), current_(num_nodes, nullptr),
        channel_(channel_capacity) {
    if (combine_entries > 0) {
      combine_.resize(num_nodes);
      for (CombineTable& table : combine_)
        table.cells.resize(combine_entries);
    }
  }

  SpscRing<AggBuffer*>& channel() { return channel_; }

 private:
  friend class Aggregator;

  // One held fire-and-forget command. Only the owning thread touches the
  // table (same confinement as `current_`); `mark_dead` never reaches in —
  // entries bound for a dead destination are dropped at drain time.
  struct CombineEntry {
    std::uint64_t handle = 0;
    std::uint64_t offset = 0;
    std::uint64_t token = 0;  // same-task only: the key includes the token
    std::uint64_t value = 0;  // summed operand (add) / latest value (put)
    std::uint64_t aux2 = 0;   // kPutValue size; 0 for adds
    Op op{};
    std::uint8_t flags = 0;
    bool used = false;
  };
  struct CombineTable {
    std::vector<CombineEntry> cells;  // direct-mapped, evict-on-collision
    std::uint32_t live = 0;           // occupied cells
    std::uint64_t first_ns = 0;       // stamp of the install that made live>0
  };

  Aggregator* owner_;
  std::vector<CommandBlock*> current_;  // per destination; lazily acquired
  SpscRing<AggBuffer*> channel_;        // filled buffers -> comm server
  std::vector<CombineTable> combine_;   // per destination; empty = off
};

// Node-wide aggregation state: pools, per-destination queues, slots.
class Aggregator {
 public:
  // `registry` (may be null) receives the agg.* metrics.
  Aggregator(const Config& config, std::uint32_t num_nodes,
             std::uint32_t num_threads, obs::Registry* registry = nullptr);

  std::uint32_t num_slots() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  AggregationSlot& slot(std::uint32_t i) { return *slots_[i]; }

  // Appends one command (header + optional payload) bound for `dst` to the
  // slot's command block, flushing/aggregating as thresholds trip. Applies
  // *cooperative* backpressure: under pool or credit exhaustion a calling
  // task is parked on the scheduler wake-list (or yielded) until resources
  // return, while non-task callers (helpers, comm server) force aggregation
  // and fall back to off-pool emergency blocks so they always stay live —
  // nothing hot-spins. Returns false — the command dropped, nothing
  // buffered — only when `dst` has been declared dead (mark_dead); the
  // caller owns failing the op's completion.
  bool append(AggregationSlot& slot, std::uint32_t dst,
              const CmdHeader& header, const void* payload);

  // Source-side combining (config.combine): offers a payload-free
  // fire-and-forget command to the slot's per-destination table instead of
  // the command block. kInstalled — the entry owns the op's one pending
  // completion (callers with membership must track the token so the death
  // sweep can fail it); kMerged — the op was folded into the resident
  // same-(handle,offset,op,width,token) entry and needs no wire command of
  // its own (the caller completes it immediately); kBypass — combining is
  // off or `dst` is dead: emit through append() as usual. A key collision
  // evicts the resident entry straight into the command block (which may
  // suspend the calling fiber) and retries.
  CombineResult combine(AggregationSlot& slot, std::uint32_t dst,
                        const CmdHeader& header);

  // True when source-side combining is configured on (table size > 0).
  bool combining() const { return combine_entries_ != 0; }

  // Membership fail-stop: marks `dst` dead, drains and recycles its queued
  // command blocks (their commands are dropped — the membership layer fails
  // the tracked in-flight ops) and wakes every stalled task so none stays
  // parked on credit that the dead peer will never grant. Idempotent;
  // called from the comm-server thread.
  void mark_dead(std::uint32_t dst);
  bool dest_dead(std::uint32_t dst) const {
    return dst < 64 &&
           ((dead_mask_.load(std::memory_order_acquire) >> dst) & 1u);
  }

  // Pushes the slot's non-empty timed-out command blocks into the
  // aggregation queues and runs aggregation on queues past their timeout
  // (paper's condition (ii)). Called by idle workers/helpers.
  void poll_flush(AggregationSlot& slot, std::uint64_t now_ns);

  // Unconditionally flushes everything the slot holds and aggregates all
  // queues (used at barriers/shutdown so no command is stranded).
  void flush_all(AggregationSlot& slot);

  // Comm server side: returns a sent buffer to the pool.
  void release_buffer(AggBuffer* buffer);

  const AggStats& stats() const { return stats_; }
  const Config& config() const { return config_; }

  // True when no commands are buffered anywhere in the aggregator (used by
  // quiescence tests).
  bool idle() const;

  // ---- flow control (config.flow_credits > 0) ----

  bool flow_enabled() const { return config_.flow_credits > 0; }

  // Receiver side: a helper finished processing one aggregation buffer that
  // arrived from `src` — one more credit to grant back to that peer.
  void note_buffer_drained(std::uint32_t src);

  // Cumulative count (mod 2^16) of buffers drained from `peer`, i.e. the
  // grant value the comm server stamps into frames bound for `peer`.
  std::uint16_t drained_credit(std::uint32_t peer) const;

  // Sender side: peer advertised its cumulative drained count; applies the
  // delta to the credit window (wrap-guarded — stale or duplicate adverts
  // are ignored) and wakes any tasks parked on credit exhaustion.
  void apply_credit_grant(std::uint32_t peer, std::uint16_t cumulative);

  // Remaining credit toward `dst` (may be transiently negative: a pass that
  // already holds a popped block overdraws rather than strand it).
  std::int64_t credits_available(std::uint32_t dst) const;

  // Off-pool emergency blocks currently outstanding (test introspection).
  std::uint32_t emergency_blocks_outstanding() const {
    return emergency_outstanding_.load(std::memory_order_relaxed);
  }

  // Completes every registered stall ticket, re-readying parked tasks.
  // Called when resources return (credits granted, buffers released) and
  // from poll_flush as a bounded-latency fallback against lost wakeups.
  void wake_stalled();

  // Public face of park_for_aggregation for other backpressure producers
  // (the actor layer parks window-saturated senders here, so mailbox
  // bounds reuse the same ticket list, wake protocol, and poll_flush
  // lost-wakeup fallback as credit exhaustion). `header` identifies the
  // command being stalled; false when there is no parkable task context
  // and the caller must fall back to yielding.
  bool park_for_stall(const CmdHeader* header) {
    return park_for_aggregation(header);
  }

 private:
  // append() minus the combining-table drain: the target of evictions and
  // drains themselves (entering through append() would recurse).
  bool append_raw(AggregationSlot& slot, std::uint32_t dst,
                  const CmdHeader& header, const void* payload);

  // Flushes every held entry for (slot, dst) into the command block in
  // cell order. Appends may suspend the calling fiber; entries installed
  // by sibling tasks during such a suspension are later traffic and simply
  // wait for the next drain. Entries bound for a dead destination are
  // dropped without completion — their tokens were tracked at install, so
  // the membership death sweep owns failing them.
  void drain_combined(AggregationSlot& slot, std::uint32_t dst);

  // Direct-mapped cell index for a combinable command's key.
  std::uint32_t combine_index(const CmdHeader& header) const {
    std::uint64_t h = header.handle * 0x9E3779B97F4A7C15ull;
    h ^= header.offset * 0xFF51AFD7ED558CCDull;
    h ^= header.token;
    h ^= h >> 33;
    h *= 0xC4CEB9FE1A85EC53ull;
    h ^= h >> 29;
    return static_cast<std::uint32_t>(h) & (combine_entries_ - 1);
  }

  // Rebuilds the wire command a held entry stands for.
  static CmdHeader entry_header(const AggregationSlot::CombineEntry& cell) {
    CmdHeader header;
    header.op = cell.op;
    header.flags = cell.flags;
    header.handle = cell.handle;
    header.offset = cell.offset;
    header.token = cell.token;
    header.aux1 = cell.value;
    header.aux2 = cell.aux2;
    return header;
  }

  struct alignas(kCacheLine) DestQueue {
    explicit DestQueue(std::size_t capacity) : blocks(capacity) {}
    MpmcQueue<CommandBlock*> blocks;
    std::atomic<std::uint64_t> queued_bytes{0};
    std::atomic<std::uint64_t> oldest_ns{0};  // 0 = empty
    // Flow control: remaining send credits toward this destination (signed:
    // overdraft, see credits_available), the peer's last applied cumulative
    // grant, and our own cumulative drained count *from* this peer.
    std::atomic<std::int64_t> credits{0};
    std::atomic<std::uint16_t> grant_seen{0};
    std::atomic<std::uint64_t> drained{0};
    // Adaptive flush: current AIMD queue deadline (0 = not yet
    // initialised; the first read seeds it from the configured timeout).
    std::atomic<std::uint64_t> adaptive_ns{0};
  };

  // Moves the slot's current block for dst into the destination queue.
  void push_block(AggregationSlot& slot, std::uint32_t dst);

  // Drains queue `dst` into aggregation buffers pushed on slot's channel.
  // With `force`, sends even a partially filled buffer.
  void aggregate(AggregationSlot& slot, std::uint32_t dst, bool force);

  // Hands a filled buffer to the comm server via the slot's channel queue.
  void send_buffer(AggregationSlot& slot, AggBuffer* buffer);

  // Returns a pooled block, recycling via forced aggregation under
  // exhaustion. In task context may park instead and return null — the
  // caller (append) must then re-evaluate slot state and retry. Non-task
  // callers never block: they receive an off-pool emergency block once
  // recycling has demonstrably failed.
  CommandBlock* acquire_block(AggregationSlot& slot, const CmdHeader* header);
  AggBuffer* acquire_buffer(AggregationSlot& slot);

  // Releases a block back to the pool (or deletes an emergency block).
  void recycle_block(CommandBlock* block);

  // Pops and recycles every block queued for a dead destination.
  void drain_dead(std::uint32_t dst);

  // Parks the calling task until wake_stalled runs; false when there is no
  // parkable task context (the caller must use a non-blocking fallback).
  // `header` identifies the command being appended: when it carries the
  // current task's own token, the op's pre-counted pending_op doubles as
  // the stall ticket (see the comment in the implementation).
  bool park_for_aggregation(const CmdHeader* header);

  // Effective flush deadlines for one destination (fixed config values, or
  // the AIMD-tuned deadline when config.adaptive_flush).
  std::uint64_t queue_timeout_ns(DestQueue& queue) const;
  std::uint64_t block_timeout_ns(std::uint64_t queue_timeout) const;

  Config config_;
  std::uint32_t num_nodes_;
  std::uint32_t combine_entries_;  // cells per table; 0 = combining off
  ObjectPool<CommandBlock> block_pool_;
  ObjectPool<AggBuffer> buffer_pool_;
  std::vector<std::unique_ptr<DestQueue>> queues_;
  std::vector<std::unique_ptr<AggregationSlot>> slots_;
  AggStats stats_;

  // Stall tickets of parked tasks; waiters_ mirrors the vector size so the
  // hot paths can skip the mutex when nobody is parked.
  std::mutex stall_mutex_;
  std::vector<std::uint64_t> stall_tokens_;
  std::atomic<std::uint32_t> stall_waiters_{0};
  std::atomic<std::uint32_t> emergency_outstanding_{0};

  // Destinations declared dead by the membership layer (bit per node id;
  // the membership protocol caps clusters at 64 nodes). Append refuses
  // them, aggregation drains them.
  std::atomic<std::uint64_t> dead_mask_{0};
};

}  // namespace gmt::rt
