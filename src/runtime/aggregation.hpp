// Multi-level command aggregation (paper §IV-C, Fig. 3).
//
// Level 1 — pre-aggregation: each worker/helper owns one *command block*
// per destination node and appends commands to it without synchronisation.
// Level 2 — aggregation queues: full (or timed-out) command blocks are
// pushed into a per-destination MPMC queue shared by all threads of the
// node. Level 3 — aggregation buffers: whichever thread observes a queue
// holding a buffer's worth of bytes pops blocks, memcpys them into a pooled
// aggregation buffer, and hands the buffer to the communication server over
// its private SPSC channel queue. Blocks and buffers recycle through
// fixed-population pools; nothing allocates on the command path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "collections/mpmc_queue.hpp"
#include "collections/pool.hpp"
#include "collections/spsc_ring.hpp"
#include "common/cacheline.hpp"
#include "common/config.hpp"
#include "obs/metrics.hpp"
#include "runtime/command.hpp"

namespace gmt::rt {

// Reusable array of serialised commands bound for one destination.
class CommandBlock {
 public:
  CommandBlock(std::uint32_t capacity_bytes, std::uint32_t capacity_cmds)
      : capacity_bytes_(capacity_bytes),
        capacity_cmds_(capacity_cmds),
        data_(std::make_unique<std::uint8_t[]>(capacity_bytes)) {}

  bool fits(std::size_t wire_bytes) const {
    return bytes_ + wire_bytes <= capacity_bytes_ && cmds_ < capacity_cmds_;
  }

  // Reserves wire_bytes and returns the write cursor.
  std::uint8_t* append(std::size_t wire_bytes, std::uint64_t now_ns) {
    GMT_DCHECK(fits(wire_bytes));
    if (cmds_ == 0) first_cmd_ns_ = now_ns;
    std::uint8_t* out = data_.get() + bytes_;
    bytes_ += static_cast<std::uint32_t>(wire_bytes);
    ++cmds_;
    return out;
  }

  void reset() {
    bytes_ = 0;
    cmds_ = 0;
    first_cmd_ns_ = 0;
  }

  const std::uint8_t* data() const { return data_.get(); }
  std::uint32_t bytes() const { return bytes_; }
  std::uint32_t cmds() const { return cmds_; }
  std::uint64_t first_cmd_ns() const { return first_cmd_ns_; }
  std::uint32_t capacity_bytes() const { return capacity_bytes_; }

 private:
  const std::uint32_t capacity_bytes_;
  const std::uint32_t capacity_cmds_;
  std::unique_ptr<std::uint8_t[]> data_;
  std::uint32_t bytes_ = 0;
  std::uint32_t cmds_ = 0;
  std::uint64_t first_cmd_ns_ = 0;
};

// Pooled network-sized buffer the comm server sends as one message. When
// the reliability layer is on, `header_reserve` placeholder bytes lead the
// buffer so the comm server seals the frame header in place — commands are
// never copied again after aggregation.
class AggBuffer {
 public:
  explicit AggBuffer(std::uint32_t capacity, std::uint32_t header_reserve = 0)
      : capacity_(capacity), header_reserve_(header_reserve) {
    reset();
  }

  std::uint32_t dst = 0;

  bool fits(std::size_t more) const { return data_.size() + more <= capacity_; }
  void append(const std::uint8_t* bytes, std::size_t count) {
    data_.insert(data_.end(), bytes, bytes + count);
  }
  void reset() {
    data_.clear();
    if (data_.capacity() < capacity_) data_.reserve(capacity_);
    data_.resize(header_reserve_);
  }

  // Moves the contents (header placeholder + commands) out for sending;
  // the buffer is unusable until the next reset() (release_buffer does it).
  std::vector<std::uint8_t> take() { return std::move(data_); }

  const std::vector<std::uint8_t>& data() const { return data_; }
  // Command bytes, excluding the reserved frame-header prefix.
  std::uint32_t payload_bytes() const {
    return static_cast<std::uint32_t>(data_.size()) - header_reserve_;
  }
  std::uint32_t capacity() const { return capacity_; }

 private:
  std::uint32_t capacity_;
  std::uint32_t header_reserve_;
  std::vector<std::uint8_t> data_;
};

// Aggregation statistics (per node, registry-backed; unbound handles are
// inert, so an Aggregator built without a registry simply counts nothing).
struct AggStats {
  obs::Counter commands;          // commands appended
  obs::Counter blocks_full;       // blocks flushed because full
  obs::Counter blocks_timeout;    // blocks flushed on timeout
  obs::Counter buffers_sent;      // aggregation buffers to comm server
  obs::Counter buffer_bytes;      // payload bytes in those buffers
  obs::Counter aggregations;      // aggregation passes executed
  obs::Histogram flush_bytes;     // payload-size distribution per buffer

  void bind(obs::Registry& reg);
};

class Aggregator;

// Per-thread face of the aggregator: the thread-local command blocks and
// the SPSC channel to the comm server. One per worker and per helper.
class AggregationSlot {
 public:
  AggregationSlot(Aggregator* owner, std::uint32_t num_nodes,
                  std::size_t channel_capacity)
      : owner_(owner), current_(num_nodes, nullptr),
        channel_(channel_capacity) {}

  SpscRing<AggBuffer*>& channel() { return channel_; }

 private:
  friend class Aggregator;
  Aggregator* owner_;
  std::vector<CommandBlock*> current_;  // per destination; lazily acquired
  SpscRing<AggBuffer*> channel_;        // filled buffers -> comm server
};

// Node-wide aggregation state: pools, per-destination queues, slots.
class Aggregator {
 public:
  // `registry` (may be null) receives the agg.* metrics.
  Aggregator(const Config& config, std::uint32_t num_nodes,
             std::uint32_t num_threads, obs::Registry* registry = nullptr);

  std::uint32_t num_slots() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  AggregationSlot& slot(std::uint32_t i) { return *slots_[i]; }

  // Appends one command (header + optional payload) bound for `dst` to the
  // slot's command block, flushing/aggregating as thresholds trip. Never
  // fails; applies internal backpressure (spins on pool exhaustion after
  // forcing aggregation).
  void append(AggregationSlot& slot, std::uint32_t dst,
              const CmdHeader& header, const void* payload);

  // Pushes the slot's non-empty timed-out command blocks into the
  // aggregation queues and runs aggregation on queues past their timeout
  // (paper's condition (ii)). Called by idle workers/helpers.
  void poll_flush(AggregationSlot& slot, std::uint64_t now_ns);

  // Unconditionally flushes everything the slot holds and aggregates all
  // queues (used at barriers/shutdown so no command is stranded).
  void flush_all(AggregationSlot& slot);

  // Comm server side: returns a sent buffer to the pool.
  void release_buffer(AggBuffer* buffer);

  const AggStats& stats() const { return stats_; }
  const Config& config() const { return config_; }

  // True when no commands are buffered anywhere in the aggregator (used by
  // quiescence tests).
  bool idle() const;

 private:
  struct alignas(kCacheLine) DestQueue {
    explicit DestQueue(std::size_t capacity) : blocks(capacity) {}
    MpmcQueue<CommandBlock*> blocks;
    std::atomic<std::uint64_t> queued_bytes{0};
    std::atomic<std::uint64_t> oldest_ns{0};  // 0 = empty
  };

  // Moves the slot's current block for dst into the destination queue.
  void push_block(AggregationSlot& slot, std::uint32_t dst);

  // Drains queue `dst` into aggregation buffers pushed on slot's channel.
  // With `force`, sends even a partially filled buffer.
  void aggregate(AggregationSlot& slot, std::uint32_t dst, bool force);

  // Hands a filled buffer to the comm server via the slot's channel queue.
  void send_buffer(AggregationSlot& slot, AggBuffer* buffer);

  CommandBlock* acquire_block(AggregationSlot& slot);
  AggBuffer* acquire_buffer(AggregationSlot& slot);

  Config config_;
  std::uint32_t num_nodes_;
  ObjectPool<CommandBlock> block_pool_;
  ObjectPool<AggBuffer> buffer_pool_;
  std::vector<std::unique_ptr<DestQueue>> queues_;
  std::vector<std::unique_ptr<AggregationSlot>> slots_;
  AggStats stats_;
};

}  // namespace gmt::rt
