#include "runtime/cluster.hpp"

#include "common/backoff.hpp"
#include "common/log.hpp"

namespace gmt::rt {

void Cluster::wrap_faults(const Config& config) {
  if (!config.fault.any()) return;
  faulty_.reserve(num_nodes_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    faulty_.push_back(
        std::make_unique<net::FaultyTransport>(transports_[n], config.fault));
    transports_[n] = faulty_[n].get();
  }
  GMT_LOG_INFO(
      "fault injection on: drop=%.3f dup=%.3f corrupt=%.3f reorder=%.3f "
      "backpressure=%.3f seed=%llu",
      config.fault.drop, config.fault.duplicate, config.fault.corrupt,
      config.fault.reorder, config.fault.backpressure,
      static_cast<unsigned long long>(config.fault.seed));
}

Cluster::Cluster(std::uint32_t num_nodes, const Config& config,
                 net::NetworkModel model)
    : num_nodes_(num_nodes),
      fabric_(std::make_unique<net::InprocFabric>(num_nodes, model)) {
  GMT_CHECK(num_nodes >= 1);
  for (std::uint32_t n = 0; n < num_nodes; ++n)
    transports_.push_back(fabric_->endpoint(n));
  wrap_faults(config);
  nodes_.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n)
    nodes_.push_back(
        std::make_unique<Node>(n, num_nodes, config, transports_[n]));
}

Cluster::Cluster(const std::vector<net::Transport*>& transports,
                 const Config& config)
    : num_nodes_(static_cast<std::uint32_t>(transports.size())),
      transports_(transports) {
  GMT_CHECK(num_nodes_ >= 1);
  wrap_faults(config);
  nodes_.reserve(num_nodes_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    GMT_CHECK(transports_[n]->node_id() == n);
    nodes_.push_back(
        std::make_unique<Node>(n, num_nodes_, config, transports_[n]));
  }
}

net::FaultCountersSnapshot Cluster::total_fault_counters() const {
  net::FaultCountersSnapshot total;
  for (const auto& faulty : faulty_) total += faulty->counters().snapshot();
  return total;
}

std::uint64_t Cluster::total_network_bytes() const {
  std::uint64_t total = 0;
  for (const net::Transport* t : transports_) total += t->bytes_sent();
  return total;
}

std::uint64_t Cluster::total_network_messages() const {
  std::uint64_t total = 0;
  for (const net::Transport* t : transports_) total += t->messages_sent();
  return total;
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  if (started_) return;
  for (auto& node : nodes_) node->start();
  started_ = true;
}

void Cluster::stop() {
  if (!started_) return;
  for (auto& node : nodes_) node->request_stop();
  for (auto& node : nodes_) node->join();
  started_ = false;
}

void Cluster::run(TaskFn fn, const void* args, std::size_t args_size) {
  start();
  // The root completion is tracked through an inert Task that never runs —
  // it only carries the pending_ops counter the root iteration block
  // reports into.
  Task root;
  nodes_[0]->spawn_root(fn, args, args_size, &root);
  Backoff backoff;
  while (root.pending_ops.load(std::memory_order_acquire) != 0)
    backoff.pause();
}

}  // namespace gmt::rt
