#include "runtime/cluster.hpp"

#include <cstdlib>
#include <utility>

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gmt::rt {

void Cluster::init_obs(const Config& config) {
  obs::init_from_env();
  if (config.trace) obs::Tracer::global().set_enabled(true);
  trace_file_ = config.trace_file;
  if (trace_file_.empty())
    if (const char* v = std::getenv("GMT_TRACE_FILE")) trace_file_ = v;
  obs_interval_ms_ = config.obs_interval_ms;
}

void Cluster::sample_tick(std::uint64_t now_ns) {
  obs::Snapshot merged;
  for (auto& node : nodes_) merged.merge(node->obs().snapshot());
  merged.wall_ns = now_ns;
  if (obs::trace_on()) {
    // Counter series: per-interval throughput deltas plus live gauges, so
    // the trace shows rates over time, not just end-of-run totals.
    const std::uint64_t tasks = merged.counter(obs::names::kTasksExecuted);
    const std::uint64_t buffers = merged.counter(obs::names::kAggBuffersSent);
    obs::trace_counter("tasks.executed/interval", tasks - prev_tasks_);
    obs::trace_counter("agg.buffers_sent/interval", buffers - prev_buffers_);
    obs::trace_counter(
        obs::names::kTasksResident,
        static_cast<std::uint64_t>(merged.gauge(obs::names::kTasksResident)));
    obs::trace_counter(
        obs::names::kIncomingDepth,
        static_cast<std::uint64_t>(merged.gauge(obs::names::kIncomingDepth)));
    prev_tasks_ = tasks;
    prev_buffers_ = buffers;
  }
  obs::push_interval_sample(obs::IntervalSample{now_ns, std::move(merged)});
}

void Cluster::wrap_faults(const Config& config) {
  if (!config.fault.any()) return;
  faulty_.reserve(num_nodes_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    faulty_.push_back(
        std::make_unique<net::FaultyTransport>(transports_[n], config.fault));
    transports_[n] = faulty_[n].get();
  }
  GMT_LOG_INFO(
      "fault injection on: drop=%.3f dup=%.3f corrupt=%.3f reorder=%.3f "
      "backpressure=%.3f seed=%llu",
      config.fault.drop, config.fault.duplicate, config.fault.corrupt,
      config.fault.reorder, config.fault.backpressure,
      static_cast<unsigned long long>(config.fault.seed));
}

Cluster::Cluster(std::uint32_t num_nodes, const Config& config,
                 net::NetworkModel model)
    : num_nodes_(num_nodes),
      fabric_(std::make_unique<net::InprocFabric>(num_nodes, model)) {
  GMT_CHECK(num_nodes >= 1);
  init_obs(config);
  for (std::uint32_t n = 0; n < num_nodes; ++n)
    transports_.push_back(fabric_->endpoint(n));
  wrap_faults(config);
  nodes_.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n)
    nodes_.push_back(
        std::make_unique<Node>(n, num_nodes, config, transports_[n]));
}

Cluster::Cluster(const std::vector<net::Transport*>& transports,
                 const Config& config)
    : num_nodes_(static_cast<std::uint32_t>(transports.size())),
      transports_(transports) {
  GMT_CHECK(num_nodes_ >= 1);
  init_obs(config);
  wrap_faults(config);
  nodes_.reserve(num_nodes_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    GMT_CHECK(transports_[n]->node_id() == n);
    nodes_.push_back(
        std::make_unique<Node>(n, num_nodes_, config, transports_[n]));
  }
}

net::FaultCountersSnapshot Cluster::total_fault_counters() const {
  net::FaultCountersSnapshot total;
  for (const auto& faulty : faulty_) total += faulty->counters().snapshot();
  return total;
}

std::uint64_t Cluster::total_network_bytes() const {
  std::uint64_t total = 0;
  for (const net::Transport* t : transports_) total += t->bytes_sent();
  return total;
}

std::uint64_t Cluster::total_network_messages() const {
  std::uint64_t total = 0;
  for (const net::Transport* t : transports_) total += t->messages_sent();
  return total;
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  if (started_) return;
  for (auto& node : nodes_) node->start();
  if (obs_interval_ms_ > 0 && sampler_ == nullptr)
    sampler_ = std::make_unique<obs::Sampler>(
        obs_interval_ms_, [this](std::uint64_t now_ns) { sample_tick(now_ns); });
  started_ = true;
}

void Cluster::stop() {
  if (!started_) return;
  // The sampler's final tick still reads the node registries, so retire it
  // while the nodes are alive (threads may still be running: snapshots are
  // concurrent-safe).
  sampler_.reset();
  for (auto& node : nodes_) node->request_stop();
  for (auto& node : nodes_) node->join();
  // All workers and helpers are parked, so no accessor pin is live: any
  // free that was deferred behind a pinned epoch is reclaimable now.
  for (auto& node : nodes_) node->memory().reclaim_deferred();
  started_ = false;
  // Mirror the transport fault-injection totals into the metrics registry:
  // they accumulate in transport-level atomics outside the obs shards, and
  // the public report can only see registries.
  const net::FaultCountersSnapshot faults = total_fault_counters();
  if (faults.total() != prev_faults_.total()) {
    obs::Registry& reg = nodes_[0]->obs();
    reg.counter(obs::names::kFaultDrops).add(faults.drops -
                                             prev_faults_.drops);
    reg.counter(obs::names::kFaultDuplicates)
        .add(faults.duplicates - prev_faults_.duplicates);
    reg.counter(obs::names::kFaultCorruptions)
        .add(faults.corruptions - prev_faults_.corruptions);
    reg.counter(obs::names::kFaultReorders)
        .add(faults.reorders - prev_faults_.reorders);
    reg.counter(obs::names::kFaultBackpressures)
        .add(faults.backpressures - prev_faults_.backpressures);
    reg.counter(obs::names::kFaultKills).add(faults.kills -
                                             prev_faults_.kills);
    prev_faults_ = faults;
  }
  // Dump after the join so the trace holds everything the threads recorded.
  if (!trace_file_.empty() && obs::trace_on()) {
    if (obs::Tracer::global().dump(trace_file_))
      GMT_LOG_INFO("trace written to %s", trace_file_.c_str());
    else
      GMT_LOG_WARN("failed to write trace to %s", trace_file_.c_str());
  }
}

void Cluster::run(TaskFn fn, const void* args, std::size_t args_size) {
  start();
  // The root completion is tracked through an inert Task that never runs —
  // it only carries the pending_ops counter the root iteration block
  // reports into. The previous run's last completer can still be reading
  // the TCB (complete_one checks wake/parked after its final decrement),
  // so the TCB is a cluster member, and bumping the generation first
  // invalidates any token still in flight from an earlier run.
  root_.generation.fetch_add(1, std::memory_order_release);
  root_.pending_ops.store(0, std::memory_order_relaxed);
  root_.parked.store(false, std::memory_order_relaxed);
  root_.status.store(0, std::memory_order_relaxed);
  nodes_[0]->spawn_root(fn, args, args_size, &root_);
  Backoff backoff;
  while (root_.pending_ops.load(std::memory_order_acquire) != 0)
    backoff.pause();
}

}  // namespace gmt::rt
