#include <pthread.h>

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

namespace {
thread_local Worker* t_current_worker = nullptr;
}  // namespace

Worker* Worker::current() { return t_current_worker; }

Worker::Worker(Node* node, std::uint32_t worker_id, AggregationSlot* slot)
    : node_(node),
      id_(worker_id),
      slot_(slot),
      stacks_(node->config().task_stack_size,
              /*initial_population=*/8),
      pooling_(node->config().task_pool),
      ready_(node->config().max_tasks_per_worker) {
  if (pooling_) {
    const std::uint32_t reserve = node->config().task_pool_reserve;
    free_tasks_.reserve(node->config().task_pool_cap);
    for (std::uint32_t i = 0; i < reserve; ++i)
      free_tasks_.push_back(allocate_task());
  }
}

Worker::~Worker() {
  for (Task* task : free_tasks_) delete task;
}

void Worker::start() {
  thread_ = std::thread([this] {
    t_current_worker = this;
    node_->pin_thread(id_);
    if (obs::trace_on())
      obs::name_thread_track("node" + std::to_string(node_->id()) +
                             "/worker" + std::to_string(id_));
    main_loop();
    t_current_worker = nullptr;
  });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

Task* Worker::allocate_task() {
  Task* task = new Task;
  task->stack = stacks_.acquire();
  task->ctx_top = context_top(task->stack.base(), task->stack.size());
  task->worker = this;
  task->wake = pooling_ ? &wake_list_ : nullptr;
  return task;
}

Task* Worker::make_task(IterBlock* itb, std::uint64_t begin,
                        std::uint64_t end) {
  Task* task;
  if (pooling_ && !free_tasks_.empty()) {
    task = free_tasks_.back();
    free_tasks_.pop_back();
  } else {
    task = allocate_task();
  }
  task->state = TaskState::kReady;
  task->started = false;
  task->status.store(0, std::memory_order_relaxed);
  task->itb = itb;
  task->fn = itb->fn;
  task->args = itb->args_ptr();
  task->begin = begin;
  task->end = end;
  // Lifetime spans need a birth timestamp; skip the clock read otherwise.
  task->born_ns = obs::trace_on() ? wall_ns() : 0;
  // Recycled TCBs re-arm from the cached aligned stack top: seven stores,
  // no full make_context validation.
  task->ctx = rearm_context(task->ctx_top, &Worker::task_entry, task);
  return task;
}

void Worker::release_task(Task* task) {
  // Invalidate every token issued against this incarnation: a delayed
  // completion now fails the generation check instead of touching the
  // recycled TCB.
  task->generation.fetch_add(1, std::memory_order_release);
  task->itb = nullptr;
  if (pooling_ && free_tasks_.size() < node_->config().task_pool_cap) {
    free_tasks_.push_back(task);
  } else {
    stacks_.release(std::move(task->stack));
    delete task;
  }
}

void Worker::task_entry(void* raw_task) {
  Task* task = static_cast<Task*>(raw_task);
  Worker* worker = task->worker;
  for (std::uint64_t i = task->begin; i < task->end; ++i) {
    task->fn(i, task->args);
    worker = task->worker;  // re-read: blocking ops resume on same worker
  }
  // Implicit wait: a task may finish its body with non-blocking operations
  // still in flight; it must not be reclaimed until they complete.
  worker->task_block();
  task->state = TaskState::kDone;
  // Final switch back to the scheduler; never returns.
  gmt_ctx_switch(&task->ctx.sp, worker->sched_ctx_.sp);
  GMT_CHECK_MSG(false, "finished task resumed");
}

void Worker::run_task(Task* task) {
  current_ = task;
  task->state = TaskState::kRunning;
  task->started = true;
  node_->stats().ctx_switches.add();
  const bool tracing = obs::trace_on();
  const std::uint64_t quantum_start_ns = tracing ? wall_ns() : 0;
  switch_context(&sched_ctx_, task->ctx);
  if (tracing) {
    const std::uint64_t now = wall_ns();
    obs::trace_complete("task.run", quantum_start_ns, now,
                        task->end - task->begin);
    node_->stats().task_quantum_ns.observe(now - quantum_start_ns);
  }
  current_ = nullptr;
  switch (task->state) {
    case TaskState::kDone:
      finish_task(task);
      break;
    case TaskState::kWaiting: {
      if (!pooling_) {
        // Ablation mode: blocked tasks stay in the scan queue.
        ready_.push_back(task);
        break;
      }
      // Park the task: publish the parked flag, then re-check pending_ops.
      // A completer that drained pending_ops before seeing the flag did not
      // push a wake — the re-check catches it; a completer that saw the
      // flag claimed it (exchange to false) and owns the single wake-list
      // push. seq_cst on both sides closes the store/load race.
      task->parked.store(true, std::memory_order_seq_cst);
      if (task->pending_ops.load(std::memory_order_seq_cst) == 0 &&
          task->parked.exchange(false, std::memory_order_seq_cst))
        ready_.push_back(task);
      break;
    }
    default:
      // kReady (yield): still runnable.
      ready_.push_back(task);
      break;
  }
}

void Worker::task_block() {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "task_block outside task context");
  while (task->pending_ops.load(std::memory_order_acquire) != 0) {
    task->state = TaskState::kWaiting;
    switch_context(&task->ctx, sched_ctx_);
  }
  task->state = TaskState::kRunning;
}

void Worker::task_yield() {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "task_yield outside task context");
  task->state = TaskState::kReady;
  switch_context(&task->ctx, sched_ctx_);
  task->state = TaskState::kRunning;
}

void Worker::finish_task(Task* task) {
  node_->stats().tasks_executed.add();
  node_->stats().iterations_executed.add(task->end - task->begin);
  if (task->born_ns != 0 && obs::trace_on())
    obs::trace_complete("task.lifetime", task->born_ns, wall_ns(),
                        task->end - task->begin);
  IterBlock* itb = task->itb;
  const std::uint64_t n = task->end - task->begin;
  const std::uint32_t task_status =
      task->status.load(std::memory_order_acquire);
  release_task(task);
  --live_tasks_;
  node_->stats().resident_tasks.dec();
  if (itb) {
    if (task_status != 0) {
      std::uint32_t expected = 0;
      itb->status.compare_exchange_strong(expected, task_status,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
    }
    const std::uint64_t done =
        itb->completed.fetch_add(n, std::memory_order_acq_rel) + n;
    if (done == itb->total()) node_->report_spawn_done(*this, itb);
  }
}

void Worker::drain_wake_list() {
  Task* task = wake_list_.drain_fifo();
  if (task == nullptr) return;
  const bool tracing = obs::trace_on();
  while (task != nullptr) {
    Task* next = task->wake_next;
    if (tracing)
      obs::trace_instant("task.wakeup",
                         reinterpret_cast<std::uint64_t>(task) &
                             kTokenAddrMask);
    ready_.push_back(task);
    task = next;
  }
}

bool Worker::try_adopt_work() {
  IterBlock* itb = nullptr;
  while (node_->itb_queue().pop(&itb)) {
    const std::uint64_t chunk = itb->chunk ? itb->chunk : 1;
    const std::uint64_t begin =
        itb->next.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= itb->end) {
      // Lost the race for the last chunk of this block (it stays alive
      // until its completed counter fires) — try the next queued block
      // instead of giving up the whole adoption pass.
      continue;
    }
    const std::uint64_t end =
        begin + chunk < itb->end ? begin + chunk : itb->end;
    if (end < itb->end) {
      // More iterations remain: make the block visible to other workers.
      GMT_CHECK_MSG(node_->itb_queue().push(itb), "itb queue overflow");
    }
    ready_.push_back(make_task(itb, begin, end));
    ++live_tasks_;
    node_->stats().resident_tasks.inc();
    return true;
  }
  return false;
}

void Worker::main_loop() {
  Backoff backoff;
  const std::uint64_t max_tasks = node_->config().max_tasks_per_worker;
  for (;;) {
    bool progressed = false;

    if (pooling_) {
      // O(1) scheduling pass: move freshly-woken tasks into the ready ring
      // and run its head. Blocked tasks are parked elsewhere, so nothing
      // here ever scans.
      drain_wake_list();
      Task* task = nullptr;
      if (ready_.pop_front(&task)) {
        run_task(task);
        progressed = true;
      }
    } else {
      // Ablation mode (pre-pool behaviour): one rotation over the queue,
      // running the first runnable task — O(resident tasks) per decision.
      const std::size_t scan = ready_.size();
      for (std::size_t i = 0; i < scan; ++i) {
        Task* task = nullptr;
        ready_.pop_front(&task);
        if (task->runnable()) {
          run_task(task);
          progressed = true;
          break;
        }
        ready_.push_back(task);
      }
    }

    // Adopt new work while below the concurrency cap — or, as the nested-
    // parallelism escape hatch, whenever every resident task is blocked
    // (their children may be the very work sitting in the itb queue).
    if (live_tasks_ < max_tasks || !progressed)
      progressed |= try_adopt_work();

    // Flush command blocks and aggregation queues past their deadlines.
    node_->aggregator().poll_flush(*slot_, wall_ns());

    if (progressed) {
      backoff.reset();
    } else {
      if (node_->stopping() && live_tasks_ == 0) break;
      backoff.pause();
    }
  }
}

}  // namespace gmt::rt
