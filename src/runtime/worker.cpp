#include <pthread.h>

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

namespace {
thread_local Worker* t_current_worker = nullptr;
}  // namespace

Worker* Worker::current() { return t_current_worker; }

Worker::Worker(Node* node, std::uint32_t worker_id, AggregationSlot* slot)
    : node_(node),
      id_(worker_id),
      slot_(slot),
      stacks_(node->config().task_stack_size,
              /*initial_population=*/8),
      pooling_(node->config().task_pool),
      ready_(node->config().max_tasks_per_worker) {
  if (pooling_) {
    const std::uint32_t reserve = node->config().task_pool_reserve;
    free_tasks_.reserve(node->config().task_pool_cap);
    for (std::uint32_t i = 0; i < reserve; ++i)
      free_tasks_.push_back(allocate_task());
  }
}

Worker::~Worker() {
  for (Task* task : free_tasks_) delete task;
  while (free_cells_ != nullptr) {
    FutureCell* next = free_cells_->next_free;
    delete free_cells_;
    free_cells_ = next;
  }
}

void Worker::start() {
  thread_ = std::thread([this] {
    t_current_worker = this;
    node_->pin_thread(id_);
    if (obs::trace_on())
      obs::name_thread_track("node" + std::to_string(node_->id()) +
                             "/worker" + std::to_string(id_));
    main_loop();
    t_current_worker = nullptr;
  });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

Task* Worker::allocate_task() {
  Task* task = new Task;
  task->stack = stacks_.acquire();
  task->ctx_top = context_top(task->stack.base(), task->stack.size());
  task->worker = this;
  task->wake = pooling_ ? &wake_list_ : nullptr;
  return task;
}

Task* Worker::make_task(IterBlock* itb, std::uint64_t begin,
                        std::uint64_t end) {
  Task* task;
  if (pooling_ && !free_tasks_.empty()) {
    task = free_tasks_.back();
    free_tasks_.pop_back();
  } else {
    task = allocate_task();
  }
  task->state = TaskState::kReady;
  task->started = false;
  task->status.store(0, std::memory_order_relaxed);
  task->itb = itb;
  task->fn = itb->fn;
  task->args = itb->args_ptr();
  task->begin = begin;
  task->end = end;
  // Lifetime spans need a birth timestamp; skip the clock read otherwise.
  task->born_ns = obs::trace_on() ? wall_ns() : 0;
  // Recycled TCBs re-arm from the cached aligned stack top: seven stores,
  // no full make_context validation.
  task->ctx = rearm_context(task->ctx_top, &Worker::task_entry, task);
  return task;
}

void Worker::release_task(Task* task) {
  // Invalidate every token issued against this incarnation: a delayed
  // completion now fails the generation check instead of touching the
  // recycled TCB.
  task->generation.fetch_add(1, std::memory_order_release);
  task->itb = nullptr;
  if (pooling_ && free_tasks_.size() < node_->config().task_pool_cap) {
    free_tasks_.push_back(task);
  } else {
    stacks_.release(std::move(task->stack));
    delete task;
  }
}

void Worker::task_entry(void* raw_task) {
  Task* task = static_cast<Task*>(raw_task);
  Worker* worker = task->worker;
  for (std::uint64_t i = task->begin; i < task->end; ++i) {
    task->fn(i, task->args);
    worker = task->worker;  // re-read: blocking ops resume on same worker
  }
  // Never-awaited futures must resolve before the TCB (and the futures'
  // destination buffers) can recycle — same discipline as the implicit
  // wait below, but per cell.
  if (task->futures != nullptr) worker->drain_futures(task);
  // Implicit wait: a task may finish its body with non-blocking operations
  // still in flight; it must not be reclaimed until they complete.
  worker->task_block();
  task->state = TaskState::kDone;
  // Final switch back to the scheduler; never returns.
  gmt_ctx_switch(&task->ctx.sp, worker->sched_ctx_.sp);
  GMT_CHECK_MSG(false, "finished task resumed");
}

void Worker::run_task(Task* task) {
  current_ = task;
  task->state = TaskState::kRunning;
  task->started = true;
  node_->stats().ctx_switches.add();
  const bool tracing = obs::trace_on();
  const std::uint64_t quantum_start_ns = tracing ? wall_ns() : 0;
  switch_context(&sched_ctx_, task->ctx);
  if (tracing) {
    const std::uint64_t now = wall_ns();
    obs::trace_complete("task.run", quantum_start_ns, now,
                        task->end - task->begin);
    node_->stats().task_quantum_ns.observe(now - quantum_start_ns);
  }
  current_ = nullptr;
  switch (task->state) {
    case TaskState::kDone:
      finish_task(task);
      break;
    case TaskState::kWaiting: {
      if (!pooling_) {
        // Ablation mode: blocked tasks stay in the scan queue.
        ready_.push_back(task);
        break;
      }
      // Park the task: publish the parked flag, then re-check pending_ops.
      // A completer that drained pending_ops before seeing the flag did not
      // push a wake — the re-check catches it; a completer that saw the
      // flag claimed it (exchange to false) and owns the single wake-list
      // push. seq_cst on both sides closes the store/load race.
      task->parked.store(true, std::memory_order_seq_cst);
      if (task->pending_ops.load(std::memory_order_seq_cst) == 0 &&
          task->parked.exchange(false, std::memory_order_seq_cst))
        ready_.push_back(task);
      break;
    }
    default:
      // kReady (yield): still runnable.
      ready_.push_back(task);
      break;
  }
}

void Worker::task_block() {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "task_block outside task context");
  while (task->pending_ops.load(std::memory_order_acquire) != 0) {
    task->state = TaskState::kWaiting;
    switch_context(&task->ctx, sched_ctx_);
  }
  task->state = TaskState::kRunning;
}

void Worker::task_yield() {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "task_yield outside task context");
  task->state = TaskState::kReady;
  switch_context(&task->ctx, sched_ctx_);
  task->state = TaskState::kRunning;
}

// ---------------------------------------------------------------- futures --

FutureCell* Worker::acquire_future_cell() {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "future issued outside task context");
  FutureCell* cell = free_cells_;
  if (cell != nullptr) {
    free_cells_ = cell->next_free;
  } else {
    cell = new FutureCell;
  }
  cell->pending.store(0, std::memory_order_relaxed);
  cell->status.store(0, std::memory_order_relaxed);
  cell->waiter.store(0, std::memory_order_relaxed);
  cell->inval_handle = 0;
  cell->install_handle = 0;
  cell->next_free = nullptr;
  cell->next_live = task->futures;
  task->futures = cell;
  return cell;
}

std::uint32_t Worker::consume_future(Task* task, FutureCell* cell) {
  const std::uint32_t status = cell->status.load(std::memory_order_acquire);
  // Deferred self-invalidation for mutating futures: runs at resolution,
  // i.e. after the write completed everywhere — never at issue time, when
  // a concurrent reader could still re-install pre-write data.
  if (cell->inval_handle != 0) {
    if (SwCache* cache = node_->cache()) cache->invalidate(cell->inval_handle);
    cell->inval_handle = 0;
  }
  // Deferred install for a single-line future get: the destination buffer
  // now holds the fetched bytes. A failed fetch (NODE_LOST) left garbage,
  // so only a clean resolution installs.
  if (cell->install_handle != 0) {
    if (status == 0) {
      if (SwCache* cache = node_->cache())
        cache->install(cell->install_handle, cell->install_line,
                       cell->install_src, cell->install_start,
                       cell->install_len, cell->install_epoch);
    }
    cell->install_handle = 0;
  }
  // Token emitted before the generation bump, so it matches future.issue.
  if (obs::trace_on()) obs::trace_instant("future.resolve", future_token(cell));
  FutureCell** link = &task->futures;
  while (*link != cell) link = &(*link)->next_live;
  *link = cell->next_live;
  cell->next_live = nullptr;
  // Invalidate every token issued against this incarnation, then recycle.
  cell->generation.fetch_add(1, std::memory_order_release);
  cell->next_free = free_cells_;
  free_cells_ = cell;
  node_->stats().futures_waits.add();
  return status;
}

std::uint32_t Worker::future_wait(std::uint64_t token) {
  if (token == 0) return 0;
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "gmt::wait outside task context");
  FutureCell* cell = future_from_token(token);
  if (cell->generation.load(std::memory_order_acquire) !=
      token_generation(token))
    return 0;  // already consumed (a wait on a stale copy is a no-op)
  if (cell->pending.load(std::memory_order_seq_cst) == 0)
    return consume_future(task, cell);
  // Register the wait: one pending_ops "ticket" plus the ctl pointer. The
  // completer that drains the cell claims the registration and fires the
  // ticket; seq_cst on the store and the recheck pairs with the completer's
  // fetch_sub/exchange (Dekker) so exactly one side owns it.
  FutureWaitCtl ctl;
  ctl.task_tok = task_token(task);
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  cell->waiter.store(reinterpret_cast<std::uint64_t>(&ctl),
                     std::memory_order_seq_cst);
  if (cell->pending.load(std::memory_order_seq_cst) == 0) {
    // Drained during registration. Either we take the registration back
    // (completer never saw it — undo the ticket) or a completer claimed it
    // (spin out its last touch before the ctl frame dies).
    if (cell->waiter.exchange(0, std::memory_order_seq_cst) != 0) {
      task->pending_ops.fetch_sub(1, std::memory_order_relaxed);
    } else {
      while (ctl.done.load(std::memory_order_acquire) < 1) cpu_relax();
    }
    return consume_future(task, cell);
  }
  node_->stats().futures_parked.add();
  task_block();
  // task_block returned ⇒ the ticket completed ⇒ the completer claimed the
  // registration and bumped done before firing. Defensive clear + spin all
  // the same — the ctl dies with this frame.
  cell->waiter.exchange(0, std::memory_order_seq_cst);
  while (ctl.done.load(std::memory_order_acquire) < 1) cpu_relax();
  return consume_future(task, cell);
}

std::size_t Worker::future_wait_any(const ::gmt::Future* futures,
                                    std::size_t n, std::uint32_t* status) {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "gmt::wait_any outside task context");
  GMT_CHECK_MSG(n > 0, "gmt::wait_any with no futures");
  // Pass 1: a null/consumed/drained future wins immediately.
  FutureCell* cells[kMaxWaitAny];
  std::size_t index_of[kMaxWaitAny];
  std::size_t ncells = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t tok = futures[i].token;
    if (tok == 0) {
      if (status != nullptr) *status = 0;
      return i;
    }
    FutureCell* cell = future_from_token(tok);
    if (cell->generation.load(std::memory_order_acquire) !=
        token_generation(tok)) {
      if (status != nullptr) *status = 0;
      return i;
    }
    if (cell->pending.load(std::memory_order_seq_cst) == 0) {
      const std::uint32_t st = consume_future(task, cell);
      if (status != nullptr) *status = st;
      return i;
    }
    // Dedup: registering the shared ctl twice on one cell would let its
    // single drain double-claim.
    bool dup = false;
    for (std::size_t c = 0; c < ncells; ++c) dup |= cells[c] == cell;
    if (!dup) {
      GMT_CHECK_MSG(ncells < kMaxWaitAny,
                    "gmt::wait_any over kMaxWaitAny distinct futures");
      cells[ncells] = cell;
      index_of[ncells] = i;
      ++ncells;
    }
  }
  // Register one ctl + one ticket across every cell; whichever drains
  // first claims the registration and fires the ticket (ctl.fired keeps
  // later drains from firing it again).
  FutureWaitCtl ctl;
  ctl.task_tok = task_token(task);
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t c = 0; c < ncells; ++c)
    cells[c]->waiter.store(reinterpret_cast<std::uint64_t>(&ctl),
                           std::memory_order_seq_cst);
  bool drained = false;
  for (std::size_t c = 0; c < ncells && !drained; ++c)
    drained = cells[c]->pending.load(std::memory_order_seq_cst) == 0;
  if (!drained) {
    node_->stats().futures_parked.add();
    task_block();
  }
  // Unregister everywhere, counting registrations a completer claimed;
  // each claim bumps ctl.done exactly once, so spin until they all let go
  // of the ctl before the frame dies.
  std::uint32_t claimed = 0;
  for (std::size_t c = 0; c < ncells; ++c)
    if (cells[c]->waiter.exchange(0, std::memory_order_seq_cst) == 0)
      ++claimed;
  if (claimed == 0) {
    // Only reachable on the no-park path: a cell drained before any
    // registration became visible, so the ticket is still ours to undo.
    task->pending_ops.fetch_sub(1, std::memory_order_relaxed);
  } else {
    while (ctl.done.load(std::memory_order_acquire) < claimed) cpu_relax();
  }
  for (std::size_t c = 0; c < ncells; ++c) {
    if (cells[c]->pending.load(std::memory_order_seq_cst) == 0) {
      const std::uint32_t st = consume_future(task, cells[c]);
      if (status != nullptr) *status = st;
      return index_of[c];
    }
  }
  GMT_CHECK_MSG(false, "gmt::wait_any resumed with no resolved future");
  return 0;
}

bool Worker::future_ready(std::uint64_t token) {
  if (token == 0) return true;
  FutureCell* cell = future_from_token(token);
  if (cell->generation.load(std::memory_order_acquire) !=
      token_generation(token))
    return true;  // consumed: a wait would return immediately
  return cell->pending.load(std::memory_order_acquire) == 0;
}

void Worker::drain_futures(Task* task) {
  while (task->futures != nullptr) {
    node_->stats().futures_abandoned.add();
    // An abandoned future's destination buffer may be out of scope by now
    // (the contract says buffers live until the wait); never let a drain
    // install from it and poison the cache for other tasks.
    task->futures->install_handle = 0;
    future_wait(future_token(task->futures));
  }
}

void Worker::finish_task(Task* task) {
  node_->stats().tasks_executed.add();
  node_->stats().iterations_executed.add(task->end - task->begin);
  if (task->born_ns != 0 && obs::trace_on())
    obs::trace_complete("task.lifetime", task->born_ns, wall_ns(),
                        task->end - task->begin);
  IterBlock* itb = task->itb;
  const std::uint64_t n = task->end - task->begin;
  const std::uint32_t task_status =
      task->status.load(std::memory_order_acquire);
  release_task(task);
  --live_tasks_;
  node_->stats().resident_tasks.dec();
  if (itb) {
    if (task_status != 0) {
      std::uint32_t expected = 0;
      itb->status.compare_exchange_strong(expected, task_status,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
    }
    const std::uint64_t done =
        itb->completed.fetch_add(n, std::memory_order_acq_rel) + n;
    if (done == itb->total()) node_->report_spawn_done(*this, itb);
  }
}

void Worker::drain_wake_list() {
  Task* task = wake_list_.drain_fifo();
  if (task == nullptr) return;
  const bool tracing = obs::trace_on();
  while (task != nullptr) {
    Task* next = task->wake_next;
    if (tracing)
      obs::trace_instant("task.wakeup",
                         reinterpret_cast<std::uint64_t>(task) &
                             kTokenAddrMask);
    ready_.push_back(task);
    task = next;
  }
}

bool Worker::try_adopt_work() {
  IterBlock* itb = nullptr;
  while (node_->itb_queue().pop(&itb)) {
    const std::uint64_t chunk = itb->chunk ? itb->chunk : 1;
    const std::uint64_t begin =
        itb->next.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= itb->end) {
      // Lost the race for the last chunk of this block (it stays alive
      // until its completed counter fires) — try the next queued block
      // instead of giving up the whole adoption pass.
      continue;
    }
    const std::uint64_t end =
        begin + chunk < itb->end ? begin + chunk : itb->end;
    if (end < itb->end) {
      // More iterations remain: make the block visible to other workers.
      GMT_CHECK_MSG(node_->itb_queue().push(itb), "itb queue overflow");
    }
    ready_.push_back(make_task(itb, begin, end));
    ++live_tasks_;
    node_->stats().resident_tasks.inc();
    return true;
  }
  return false;
}

void Worker::main_loop() {
  Backoff backoff;
  const std::uint64_t max_tasks = node_->config().max_tasks_per_worker;
  for (;;) {
    bool progressed = false;

    if (pooling_) {
      // O(1) scheduling pass: move freshly-woken tasks into the ready ring
      // and run its head. Blocked tasks are parked elsewhere, so nothing
      // here ever scans.
      drain_wake_list();
      Task* task = nullptr;
      if (ready_.pop_front(&task)) {
        run_task(task);
        progressed = true;
      }
    } else {
      // Ablation mode (pre-pool behaviour): one rotation over the queue,
      // running the first runnable task — O(resident tasks) per decision.
      const std::size_t scan = ready_.size();
      for (std::size_t i = 0; i < scan; ++i) {
        Task* task = nullptr;
        ready_.pop_front(&task);
        if (task->runnable()) {
          run_task(task);
          progressed = true;
          break;
        }
        ready_.push_back(task);
      }
    }

    // Adopt new work while below the concurrency cap — or, as the nested-
    // parallelism escape hatch, whenever every resident task is blocked
    // (their children may be the very work sitting in the itb queue).
    if (live_tasks_ < max_tasks || !progressed)
      progressed |= try_adopt_work();

    // Flush command blocks and aggregation queues past their deadlines.
    node_->aggregator().poll_flush(*slot_, wall_ns());

    if (progressed) {
      backoff.reset();
    } else {
      if (node_->stopping() && live_tasks_ == 0) break;
      backoff.pause();
    }
  }
}

}  // namespace gmt::rt
