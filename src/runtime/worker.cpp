#include <pthread.h>

#include "common/backoff.hpp"
#include "common/log.hpp"
#include "common/time.hpp"
#include "runtime/node.hpp"

namespace gmt::rt {

namespace {
thread_local Worker* t_current_worker = nullptr;
}  // namespace

Worker* Worker::current() { return t_current_worker; }

Worker::Worker(Node* node, std::uint32_t worker_id, AggregationSlot* slot)
    : node_(node),
      id_(worker_id),
      slot_(slot),
      stacks_(node->config().task_stack_size,
              /*initial_population=*/8) {}

void Worker::start() {
  thread_ = std::thread([this] {
    t_current_worker = this;
    if (node_->config().pin_threads) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(id_ % std::thread::hardware_concurrency(), &set);
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
    main_loop();
    t_current_worker = nullptr;
  });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

Task* Worker::make_task(IterBlock* itb, std::uint64_t begin,
                        std::uint64_t end) {
  Task* task = new Task;
  task->stack = stacks_.acquire();
  task->worker = this;
  task->itb = itb;
  task->fn = itb->fn;
  task->args = itb->args.empty() ? nullptr : itb->args.data();
  task->begin = begin;
  task->end = end;
  task->ctx = make_context(task->stack.base(), task->stack.size(),
                           &Worker::task_entry, task);
  return task;
}

void Worker::task_entry(void* raw_task) {
  Task* task = static_cast<Task*>(raw_task);
  Worker* worker = task->worker;
  for (std::uint64_t i = task->begin; i < task->end; ++i) {
    task->fn(i, task->args);
    worker = task->worker;  // re-read: blocking ops resume on same worker
  }
  // Implicit wait: a task may finish its body with non-blocking operations
  // still in flight; it must not be reclaimed until they complete.
  worker->task_block();
  task->state = TaskState::kDone;
  // Final switch back to the scheduler; never returns.
  gmt_ctx_switch(&task->ctx.sp, worker->sched_ctx_.sp);
  GMT_CHECK_MSG(false, "finished task resumed");
}

void Worker::run_task(Task* task) {
  current_ = task;
  task->state = TaskState::kRunning;
  task->started = true;
  node_->stats().ctx_switches.v.fetch_add(1, std::memory_order_relaxed);
  switch_context(&sched_ctx_, task->ctx);
  current_ = nullptr;
  if (task->state == TaskState::kDone) {
    finish_task(task);
  } else {
    runq_.push_back(task);
  }
}

void Worker::task_block() {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "task_block outside task context");
  while (task->pending_ops.load(std::memory_order_acquire) != 0) {
    task->state = TaskState::kWaiting;
    switch_context(&task->ctx, sched_ctx_);
  }
  task->state = TaskState::kRunning;
}

void Worker::task_yield() {
  Task* task = current_;
  GMT_CHECK_MSG(task != nullptr, "task_yield outside task context");
  task->state = TaskState::kReady;
  switch_context(&task->ctx, sched_ctx_);
  task->state = TaskState::kRunning;
}

void Worker::finish_task(Task* task) {
  node_->stats().tasks_executed.v.fetch_add(1, std::memory_order_relaxed);
  node_->stats().iterations_executed.v.fetch_add(task->end - task->begin,
                                                 std::memory_order_relaxed);
  IterBlock* itb = task->itb;
  const std::uint64_t n = task->end - task->begin;
  stacks_.release(std::move(task->stack));
  delete task;
  --live_tasks_;
  if (itb) {
    const std::uint64_t done =
        itb->completed.fetch_add(n, std::memory_order_acq_rel) + n;
    if (done == itb->total()) node_->report_spawn_done(*this, itb);
  }
}

bool Worker::try_adopt_work() {
  IterBlock* itb = nullptr;
  if (!node_->itb_queue().pop(&itb)) return false;

  const std::uint64_t chunk = itb->chunk ? itb->chunk : 1;
  const std::uint64_t begin =
      itb->next.fetch_add(chunk, std::memory_order_relaxed);
  if (begin >= itb->end) {
    // Lost the race for the last chunk; nothing left to claim. The block
    // stays alive until its completed counter fires — just drop it from
    // the queue.
    return false;
  }
  const std::uint64_t end =
      begin + chunk < itb->end ? begin + chunk : itb->end;
  if (end < itb->end) {
    // More iterations remain: make the block visible to other workers.
    GMT_CHECK_MSG(node_->itb_queue().push(itb), "itb queue overflow");
  }
  runq_.push_back(make_task(itb, begin, end));
  ++live_tasks_;
  return true;
}

void Worker::main_loop() {
  Backoff backoff;
  const std::uint64_t max_tasks = node_->config().max_tasks_per_worker;
  for (;;) {
    bool progressed = false;

    // One scheduling pass: run the first runnable task (round-robin).
    const std::size_t scan = runq_.size();
    for (std::size_t i = 0; i < scan; ++i) {
      Task* task = runq_.front();
      runq_.pop_front();
      if (task->runnable()) {
        run_task(task);
        progressed = true;
        break;
      }
      runq_.push_back(task);
    }

    // Adopt new work while below the concurrency cap — or, as the nested-
    // parallelism escape hatch, whenever every resident task is blocked
    // (their children may be the very work sitting in the itb queue).
    if (live_tasks_ < max_tasks || !progressed)
      progressed |= try_adopt_work();

    // Flush command blocks and aggregation queues past their deadlines.
    node_->aggregator().poll_flush(*slot_, wall_ns());

    if (progressed) {
      backoff.reset();
    } else {
      if (node_->stopping() && live_tasks_ == 0) break;
      backoff.pause();
    }
  }
}

}  // namespace gmt::rt
