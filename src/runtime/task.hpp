// Task control blocks and iteration blocks (paper §IV-D, Fig. 4).
//
// A *task* is one user-level execution context: a function pointer, an
// iteration range carved from a parallel loop, a stack and a saved context.
// Workers multiplex up to max_tasks_per_worker of them, switching on every
// blocking remote operation. An *iteration block* (itb) is the compact
// representation of a spawned loop — "function, arguments, and the number
// of tasks that execute the same function" — that travels in a single spawn
// command instead of per-iteration messages.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gmt/types.hpp"
#include "uthread/context.hpp"
#include "uthread/stack.hpp"

namespace gmt::rt {

class Worker;
struct IterBlock;

enum class TaskState : std::uint8_t {
  kReady,    // runnable (or never started)
  kRunning,  // currently on a worker
  kWaiting,  // parked until pending_ops drains to zero
  kDone,     // finished; worker reclaims stack and TCB
};

struct Task {
  // Execution state.
  Context ctx{};
  Stack stack;
  TaskState state = TaskState::kReady;
  bool started = false;
  Worker* worker = nullptr;  // owning worker (tasks do not migrate)

  // Outstanding operations: every remote command issued on behalf of this
  // task (blocking or not, including spawn-done acks of a parfor)
  // increments it; the completion handler decrements. The scheduler resumes
  // a kWaiting task only when this reaches zero. Written by helper threads,
  // read by the worker.
  std::atomic<std::uint32_t> pending_ops{0};

  // Work assignment: iterations [begin, end) of `itb` (null for the root
  // task, which carries fn/args directly).
  IterBlock* itb = nullptr;
  TaskFn fn = nullptr;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  const void* args = nullptr;

  bool runnable() const {
    return state == TaskState::kReady ||
           (state == TaskState::kWaiting &&
            pending_ops.load(std::memory_order_acquire) == 0);
  }
};

// Completion tokens: commands carry an opaque 64-bit cookie identifying the
// waiting task at the origin node; replies echo it and the origin helper
// decrements the task. (A real-MPI backend would index a request table; the
// cookie discipline is identical.)
inline std::uint64_t task_token(Task* task) {
  return reinterpret_cast<std::uint64_t>(task);
}
inline void complete_one(std::uint64_t token) {
  reinterpret_cast<Task*>(token)->pending_ops.fetch_sub(
      1, std::memory_order_acq_rel);
}

// One spawned loop at one node. Lives until every iteration completed;
// tasks reference its argument buffer in place.
struct IterBlock {
  TaskFn fn = nullptr;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t chunk = 1;
  std::vector<std::uint8_t> args;

  // Origin bookkeeping: where the parfor was issued and which task waits.
  std::uint32_t origin_node = 0;
  std::uint64_t token = 0;

  // Claim cursor: workers fetch_add chunks off it (may overshoot end).
  std::atomic<std::uint64_t> next{0};
  // Completed iterations; the worker that completes the last one reports
  // back to the origin and deletes the block.
  std::atomic<std::uint64_t> completed{0};

  std::uint64_t total() const { return end - begin; }
};

}  // namespace gmt::rt
