// Task control blocks and iteration blocks (paper §IV-D, Fig. 4).
//
// A *task* is one user-level execution context: a function pointer, an
// iteration range carved from a parallel loop, a stack and a saved context.
// Workers multiplex up to max_tasks_per_worker of them, switching on every
// blocking remote operation. An *iteration block* (itb) is the compact
// representation of a spawned loop — "function, arguments, and the number
// of tasks that execute the same function" — that travels in a single spawn
// command instead of per-iteration messages.
//
// Both live in pools: a worker recycles TCBs (stack and all) through a
// private free-list, and the node recycles iteration blocks through a shared
// ObjectPool, so the steady-state spawn/schedule/complete path performs no
// heap allocation. Recycling forces two disciplines:
//
//  - *Token generations.* Completion tokens carry the TCB's generation
//    counter next to its address; release_task bumps the generation, so a
//    stale completion (duplicate delivery, protocol bug) is dropped instead
//    of corrupting whatever task now owns the recycled TCB.
//  - *Parked/wake handshake.* A blocked task is parked off every queue; the
//    completion that drains its pending_ops to zero pushes it onto its
//    owning worker's MPSC wake-list. The scheduler therefore pops runnable
//    work in O(1) instead of scanning blocked tasks.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "collections/intrusive_mpsc.hpp"
#include "gmt/types.hpp"
#include "uthread/context.hpp"
#include "uthread/stack.hpp"

namespace gmt::rt {

class Worker;
struct FutureCell;
struct IterBlock;
struct Task;

using TaskWakeList = IntrusiveMpscStack<Task>;

enum class TaskState : std::uint8_t {
  kReady,    // runnable (or never started)
  kRunning,  // currently on a worker
  kWaiting,  // parked until pending_ops drains to zero
  kDone,     // finished; worker reclaims stack and TCB
};

struct Task {
  // Execution state.
  Context ctx{};
  Stack stack;
  void* ctx_top = nullptr;  // cached 16-aligned stack top for fast re-arm
  TaskState state = TaskState::kReady;
  bool started = false;
  Worker* worker = nullptr;  // owning worker (tasks do not migrate)

  // Outstanding operations: every remote command issued on behalf of this
  // task (blocking or not, including spawn-done acks of a parfor)
  // increments it; the completion handler decrements. Written by helper
  // threads, read by the worker.
  std::atomic<std::uint32_t> pending_ops{0};

  // Recycling generation: bumped every time the TCB returns to the pool.
  // Completion tokens embed the generation at issue time; a mismatch marks
  // the completion stale (see complete_one).
  std::atomic<std::uint16_t> generation{0};

  // Sticky per-task error status (gmt/error.hpp): the first operation that
  // fails (node lost mid-flight) latches its code here; the application
  // reads it via gmt_last_error() and clears it via gmt_clear_error().
  // Reset when the TCB is re-armed for a new task.
  std::atomic<std::uint32_t> status{0};

  // Parked/wake handshake (see task.hpp header comment). `parked` is set by
  // the scheduler after the task switches out in kWaiting; the completer
  // that claims it (exchange to false) owns the single wakeup and pushes
  // the task onto `wake`. Null wake = task never parks (the root task).
  std::atomic<bool> parked{false};
  TaskWakeList* wake = nullptr;
  Task* wake_next = nullptr;  // intrusive link, owned by the wake-list

  // Live future cells issued by this task (intrusive, newest first). The
  // implicit end-of-task wait drains them: a task must not be reclaimed
  // while a reply could still land in a future's destination buffer.
  FutureCell* futures = nullptr;

  // Work assignment: iterations [begin, end) of `itb` (null for the root
  // task, which carries fn/args directly).
  IterBlock* itb = nullptr;
  TaskFn fn = nullptr;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  const void* args = nullptr;

  // Creation timestamp for task-lifetime trace spans; 0 when the tracer
  // was off at spawn (finish emits nothing).
  std::uint64_t born_ns = 0;

  bool runnable() const {
    return state == TaskState::kReady ||
           (state == TaskState::kWaiting &&
            pending_ops.load(std::memory_order_acquire) == 0);
  }
};

// Completion tokens: commands carry an opaque 64-bit cookie identifying the
// waiter at the origin node; replies echo it and the origin helper releases
// the waiter. Layout: [ generation (16) | address (48) ] — user-space
// addresses fit 48 bits, so the generation rides in the spare high bits.
// (A real-MPI backend would index a request table; the cookie discipline is
// identical.)
//
// Two kinds of waiter share the token space, distinguished by address bit 0
// (both TCBs and future cells are at least 8-byte aligned, so the bit is
// spare): bit 0 clear = a Task (the completion decrements pending_ops and
// may wake it), bit 0 set = a FutureCell (the completion decrements the
// cell's own pending count; the task suspends only if and when it awaits
// the future). complete_one / complete_one_error dispatch on the bit, so
// every reply path — helpers, the membership death sweep, the combining
// table — handles both without knowing which it got.
inline constexpr std::uint64_t kTokenAddrMask = (1ull << 48) - 1;
inline constexpr std::uint64_t kFutureTokenBit = 1;

inline bool token_is_future(std::uint64_t token) {
  return (token & kFutureTokenBit) != 0;
}

inline std::uint64_t task_token(Task* task) {
  return (static_cast<std::uint64_t>(
              task->generation.load(std::memory_order_relaxed))
          << 48) |
         (reinterpret_cast<std::uint64_t>(task) & kTokenAddrMask);
}

inline Task* task_from_token(std::uint64_t token) {
  return reinterpret_cast<Task*>(token & kTokenAddrMask);
}

inline std::uint16_t token_generation(std::uint64_t token) {
  return static_cast<std::uint16_t>(token >> 48);
}

// Completion for future-token completions (defined after FutureCell).
inline void future_complete(std::uint64_t token, std::uint32_t status);

// Completes one outstanding operation of the token's waiter. Future tokens
// route to their cell (see future_complete). For task tokens: stale tokens
// (generation mismatch: the TCB was recycled since the token was issued)
// are dropped — a delayed duplicate completion must not wake whatever task
// now owns the TCB. The decrement that drains pending_ops to zero claims
// the parked flag and, on success, hands the task to its owning worker
// through the MPSC wake-list. seq_cst pairs with the scheduler's
// park-then-recheck sequence (Dekker-style store/load handshake).
inline void complete_one(std::uint64_t token) {
  if (token_is_future(token)) {
    future_complete(token, 0);
    return;
  }
  Task* task = task_from_token(token);
  if (task->generation.load(std::memory_order_acquire) !=
      token_generation(token))
    return;  // stale: the waiter is long gone
  if (task->pending_ops.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    if (task->wake != nullptr &&
        task->parked.exchange(false, std::memory_order_seq_cst))
      task->wake->push(task);
  }
}

// Completes one outstanding operation *with an error*. A future token
// latches the status on its cell — the error surfaces per-op from wait(),
// never as the sticky task error. A task token latches `status` on the
// task (first error wins; later codes do not overwrite) before the regular
// decrement/wake. Used by the membership layer when an in-flight
// operation's target node is declared dead — the waiter resumes and reads
// gmt_last_error() (or the future's status) instead of hanging on a reply
// that will never come.
inline void complete_one_error(std::uint64_t token, std::uint32_t status) {
  if (token_is_future(token)) {
    future_complete(token, status);
    return;
  }
  Task* task = task_from_token(token);
  if (task->generation.load(std::memory_order_acquire) !=
      token_generation(token))
    return;  // stale: the waiter is long gone
  std::uint32_t expected = 0;
  task->status.compare_exchange_strong(expected, status,
                                       std::memory_order_relaxed);
  if (task->pending_ops.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    if (task->wake != nullptr &&
        task->parked.exchange(false, std::memory_order_seq_cst))
      task->wake->push(task);
  }
}

// ---------------------------------------------------------------- futures --
//
// A FutureCell is the per-operation completion object behind gmt_get_f /
// gmt_put_f / gmt_atomic_add_f: pooled per worker (no allocation on the
// steady path), generation-tagged exactly like TCB completion tokens so a
// stale or duplicate reply is dropped instead of touching a recycled cell.
// The issuing op counts its commands into `pending` — NOT into the task's
// pending_ops — so the task keeps running until it chooses to await the
// future. wait()/wait_any() register a stack-resident FutureWaitCtl plus
// one pending_ops "ticket"; the completer that drains the cell claims the
// registration (waiter.exchange), fires complete_one on the ticket exactly
// once across all registered cells (ctl->fired), and bumps ctl->done so the
// waiter can quiesce the stack frame before returning.
struct FutureCell {
  // Outstanding commands issued under this cell's token. Written by the
  // issuing worker, decremented by completers (helpers, membership sweep).
  std::atomic<std::uint32_t> pending{0};

  // Recycling generation (embedded in the cell's tokens; bumped on release).
  std::atomic<std::uint16_t> generation{0};

  // First error among the cell's operations (GMT_ERR_* code); surfaced by
  // wait() as the per-op status.
  std::atomic<std::uint32_t> status{0};

  // Registered waiter: a FutureWaitCtl* (as uint64), or 0 when nobody is
  // awaiting. The completer that drains `pending` to zero claims it.
  std::atomic<std::uint64_t> waiter{0};

  // Write-invalidate hook: when the software cache is on and this cell
  // completes a mutation, wait() invalidates the local cache for this
  // handle after resolution (the remote caches were invalidated by the
  // broadcast riding this cell's token).
  std::uint64_t inval_handle = 0;

  // Deferred cache install for a single-line future get: at resolution the
  // destination buffer holds the fetched bytes, and consume_future installs
  // them (epoch-checked, exactly like the blocking miss path) so
  // future-routed reads warm the cache too. Only the owning worker thread
  // touches these fields — never a completer. install_handle == 0 means no
  // install is pending.
  std::uint64_t install_handle = 0;
  std::uint64_t install_line = 0;
  std::uint64_t install_epoch = 0;
  std::uint32_t install_start = 0;
  std::uint32_t install_len = 0;
  void* install_src = nullptr;

  FutureCell* next_live = nullptr;  // task's live-futures list
  FutureCell* next_free = nullptr;  // worker's cell free-list
};

// Stack-resident wait registration shared by every cell of one wait /
// wait_any call. `fired` makes the pending_ops ticket single-shot across
// cells; `done` counts claimers that finished touching the ctl, so the
// waiting task can spin out the (tiny) window between a completer claiming
// the registration and finishing with it before the frame dies.
struct FutureWaitCtl {
  std::uint64_t task_tok = 0;
  std::atomic<bool> fired{false};
  std::atomic<std::uint32_t> done{0};
};

inline std::uint64_t future_token(FutureCell* cell) {
  return (static_cast<std::uint64_t>(
              cell->generation.load(std::memory_order_relaxed))
          << 48) |
         (reinterpret_cast<std::uint64_t>(cell) & kTokenAddrMask) |
         kFutureTokenBit;
}

inline FutureCell* future_from_token(std::uint64_t token) {
  return reinterpret_cast<FutureCell*>(token & kTokenAddrMask &
                                       ~kFutureTokenBit);
}

inline void future_complete(std::uint64_t token, std::uint32_t status) {
  FutureCell* cell = future_from_token(token);
  if (cell->generation.load(std::memory_order_acquire) !=
      token_generation(token))
    return;  // stale: the cell was recycled
  if (status != 0) {
    std::uint32_t expected = 0;
    cell->status.compare_exchange_strong(expected, status,
                                         std::memory_order_relaxed);
  }
  if (cell->pending.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    const std::uint64_t w = cell->waiter.exchange(0, std::memory_order_seq_cst);
    if (w != 0) {
      auto* ctl = reinterpret_cast<FutureWaitCtl*>(w);
      const bool first = !ctl->fired.exchange(true, std::memory_order_acq_rel);
      const std::uint64_t ticket = ctl->task_tok;
      // After this increment the ctl is never touched again by this
      // completer; the waiter spins done == claimed before its frame dies.
      ctl->done.fetch_add(1, std::memory_order_release);
      if (first) complete_one(ticket);  // ticket is a task token: no recursion
    }
  }
}

// One spawned loop at one node. Lives until every iteration completed;
// tasks reference its argument buffer in place. Blocks come from the node's
// ObjectPool (pooled=true) with heap fallback under exhaustion; arguments
// up to kInlineArgs bytes live inline in the block (SBO), larger ones in a
// spill buffer whose capacity is retained across recycling.
struct IterBlock {
  static constexpr std::size_t kInlineArgs = 64;

  TaskFn fn = nullptr;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t chunk = 1;

  // Origin bookkeeping: where the parfor was issued and which task waits.
  std::uint32_t origin_node = 0;
  std::uint64_t token = 0;
  bool pooled = false;  // true = owned by the node's pool, not the heap

  // Claim cursor: workers fetch_add chunks off it (may overshoot end).
  std::atomic<std::uint64_t> next{0};
  // Completed iterations; the worker that completes the last one reports
  // back to the origin and returns the block.
  std::atomic<std::uint64_t> completed{0};
  // First nonzero sticky error among the block's iteration tasks; carried
  // back to the origin so the spawning task's gmt_last_error() sees child
  // failures (e.g. a remote iteration hitting a dead partition).
  std::atomic<std::uint32_t> status{0};

  std::uint32_t args_size = 0;
  std::uint8_t inline_args[kInlineArgs];
  std::vector<std::uint8_t> spill_args;  // only for args > kInlineArgs

  std::uint64_t total() const { return end - begin; }

  void set_args(const void* data, std::size_t size) {
    args_size = static_cast<std::uint32_t>(size);
    if (size == 0) return;
    if (size <= kInlineArgs) {
      std::memcpy(inline_args, data, size);
    } else {
      spill_args.assign(static_cast<const std::uint8_t*>(data),
                        static_cast<const std::uint8_t*>(data) + size);
    }
  }

  const void* args_ptr() const {
    if (args_size == 0) return nullptr;
    return args_size <= kInlineArgs
               ? static_cast<const void*>(inline_args)
               : static_cast<const void*>(spill_args.data());
  }

  // Re-initialises a recycled block. spill_args keeps its capacity so a
  // block that once carried large arguments never reallocates for them.
  void reset() {
    fn = nullptr;
    begin = end = 0;
    chunk = 1;
    origin_node = 0;
    token = 0;
    next.store(0, std::memory_order_relaxed);
    completed.store(0, std::memory_order_relaxed);
    status.store(0, std::memory_order_relaxed);
    args_size = 0;
    spill_args.clear();
  }
};

}  // namespace gmt::rt
