#include "runtime/stats_report.hpp"

#include <cstdio>

#include "common/units.hpp"
#include "runtime/cluster.hpp"

namespace gmt::rt {

ClusterStatsSummary summarize_stats(Cluster& cluster) {
  ClusterStatsSummary summary;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    Node& node = cluster.node(n);
    const NodeStats& stats = node.stats();
    summary.tasks_executed += stats.tasks_executed.v.load();
    summary.iterations_executed += stats.iterations_executed.v.load();
    summary.ctx_switches += stats.ctx_switches.v.load();
    summary.local_ops += stats.local_ops.v.load();
    summary.remote_commands += stats.remote_ops.v.load();
    summary.commands_executed += stats.cmds_executed.v.load();
    const AggStats& agg = node.aggregator().stats();
    summary.buffers_sent += agg.buffers_sent.v.load();
    summary.buffer_bytes += agg.buffer_bytes.v.load();
    const ReliabilityStats& rel = node.comm_server().reliability_stats();
    summary.data_frames_sent += rel.data_frames_sent.v.load();
    summary.retransmits += rel.retransmits.v.load();
    summary.acks_sent += rel.acks_sent.v.load();
    summary.crc_drops += rel.crc_drops.v.load();
    summary.dup_suppressed += rel.dup_suppressed.v.load();
    summary.out_of_order_held += rel.out_of_order_held.v.load();
    summary.acked_frames += rel.acked_frames.v.load();
    summary.ack_latency_ns += rel.ack_latency_ns.v.load();
  }
  summary.network_messages = cluster.total_network_messages();
  summary.network_bytes = cluster.total_network_bytes();
  summary.faults_injected = cluster.total_fault_counters().total();
  return summary;
}

std::string format_stats_report(Cluster& cluster) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-5s %12s %12s %12s %12s %12s %12s\n", "node", "tasks",
                "iters", "ctx-switch", "local ops", "remote cmds",
                "cmds exec");
  out += line;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    const NodeStats& stats = cluster.node(n).stats();
    std::snprintf(line, sizeof(line),
                  "%-5u %12llu %12llu %12llu %12llu %12llu %12llu\n", n,
                  static_cast<unsigned long long>(
                      stats.tasks_executed.v.load()),
                  static_cast<unsigned long long>(
                      stats.iterations_executed.v.load()),
                  static_cast<unsigned long long>(
                      stats.ctx_switches.v.load()),
                  static_cast<unsigned long long>(stats.local_ops.v.load()),
                  static_cast<unsigned long long>(stats.remote_ops.v.load()),
                  static_cast<unsigned long long>(
                      stats.cmds_executed.v.load()));
    out += line;
  }
  const ClusterStatsSummary summary = summarize_stats(cluster);
  std::snprintf(line, sizeof(line),
                "network: %llu messages, %s, %.1f commands/message, "
                "%s/message\n",
                static_cast<unsigned long long>(summary.network_messages),
                format_bytes(static_cast<double>(summary.network_bytes))
                    .c_str(),
                summary.commands_per_message(),
                format_bytes(summary.bytes_per_message()).c_str());
  out += line;
  if (summary.data_frames_sent != 0) {
    std::snprintf(
        line, sizeof(line),
        "reliability: %llu frames, %llu retransmits, %llu acks, "
        "%llu crc drops, %llu dups suppressed, %llu held ooo, "
        "%.1f us mean ack latency\n",
        static_cast<unsigned long long>(summary.data_frames_sent),
        static_cast<unsigned long long>(summary.retransmits),
        static_cast<unsigned long long>(summary.acks_sent),
        static_cast<unsigned long long>(summary.crc_drops),
        static_cast<unsigned long long>(summary.dup_suppressed),
        static_cast<unsigned long long>(summary.out_of_order_held),
        summary.mean_ack_latency_us());
    out += line;
  }
  const net::FaultCountersSnapshot faults = cluster.total_fault_counters();
  if (faults.total() != 0) {
    std::snprintf(line, sizeof(line),
                  "faults injected: %llu drops, %llu dups, %llu corruptions, "
                  "%llu reorders, %llu backpressures\n",
                  static_cast<unsigned long long>(faults.drops),
                  static_cast<unsigned long long>(faults.duplicates),
                  static_cast<unsigned long long>(faults.corruptions),
                  static_cast<unsigned long long>(faults.reorders),
                  static_cast<unsigned long long>(faults.backpressures));
    out += line;
  }
  return out;
}

}  // namespace gmt::rt
