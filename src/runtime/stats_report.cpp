#include "runtime/stats_report.hpp"

#include <cstdio>

#include "common/units.hpp"
#include "gmt/obs.hpp"
#include "runtime/cluster.hpp"

namespace gmt::rt {

ClusterStatsSummary summarize_stats(Cluster& cluster) {
  namespace names = obs::names;
  ClusterStatsSummary summary;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    const obs::Snapshot snap = cluster.node(n).obs().snapshot();
    summary.tasks_executed += snap.counter(names::kTasksExecuted);
    summary.iterations_executed += snap.counter(names::kIterationsExecuted);
    summary.ctx_switches += snap.counter(names::kCtxSwitches);
    summary.local_ops += snap.counter(names::kLocalOps);
    summary.remote_commands += snap.counter(names::kRemoteOps);
    summary.commands_executed += snap.counter(names::kCmdsExecuted);
    summary.buffers_sent += snap.counter(names::kAggBuffersSent);
    summary.buffer_bytes += snap.counter(names::kAggBufferBytes);
    summary.data_frames_sent += snap.counter(names::kRelDataFrames);
    summary.retransmits += snap.counter(names::kRelRetransmits);
    summary.acks_sent += snap.counter(names::kRelAcksSent);
    summary.crc_drops += snap.counter(names::kRelCrcDrops);
    summary.dup_suppressed += snap.counter(names::kRelDupSuppressed);
    summary.out_of_order_held += snap.counter(names::kRelOooHeld);
    if (const obs::HistogramValue* ack =
            snap.histogram(names::kRelAckLatencyNs)) {
      summary.acked_frames += ack->count;
      summary.ack_latency_ns += ack->sum;
    }
    summary.credits_consumed += snap.counter(names::kAggCreditsConsumed);
    summary.credits_granted += snap.counter(names::kAggCreditsGranted);
    summary.credit_stalls += snap.counter(names::kAggCreditStalls);
    summary.blocks_emergency += snap.counter(names::kAggBlocksEmergency);
    if (const obs::HistogramValue* stall =
            snap.histogram(names::kAggCreditStallNs))
      summary.credit_stall_ns += stall->sum;
    if (const obs::HistogramValue* adaptive =
            snap.histogram(names::kAggAdaptiveQueueNs)) {
      summary.adaptive_flushes += adaptive->count;
      summary.adaptive_queue_deadline_ns += adaptive->sum;
    }
    summary.combine_hits += snap.counter(names::kAggCombineHits);
    summary.combine_installs += snap.counter(names::kAggCombineInstalls);
    summary.combine_evictions += snap.counter(names::kAggCombineEvictions);
    summary.combine_drains += snap.counter(names::kAggCombineDrains);
    summary.cache_hits += snap.counter(names::kCacheHits);
    summary.cache_misses += snap.counter(names::kCacheMisses);
    summary.cache_installs += snap.counter(names::kCacheInstalls);
    summary.cache_invals += snap.counter(names::kCacheInvals);
    summary.cache_inval_lines += snap.counter(names::kCacheInvalLines);
    summary.futures_issued += snap.counter(names::kFuturesIssued);
    summary.futures_waits += snap.counter(names::kFuturesWaits);
    summary.futures_parked += snap.counter(names::kFuturesParked);
    summary.futures_abandoned += snap.counter(names::kFuturesAbandoned);
    summary.actor_sent += snap.counter(names::kActorSent);
    summary.actor_delivered += snap.counter(names::kActorDelivered);
    summary.actor_replies += snap.counter(names::kActorReplies);
    summary.actor_sender_parks += snap.counter(names::kActorParks);
    summary.actor_drains += snap.counter(names::kActorDrains);
    summary.actor_no_mailbox += snap.counter(names::kActorNoMailbox);
    const auto epoch =
        static_cast<std::uint64_t>(snap.gauge(names::kMembEpoch));
    if (epoch > summary.membership_epoch) summary.membership_epoch = epoch;
    summary.peers_lost += snap.counter(names::kMembPeersLost);
    summary.epoch_commits += snap.counter(names::kMembEpochCommits);
    summary.heartbeats_sent += snap.counter(names::kMembHeartbeats);
    summary.ops_failed_node_lost += snap.counter(names::kMembOpsFailed);
    summary.arrays_degraded += snap.counter(names::kMemArraysDegraded);
    summary.arrays_remapped += snap.counter(names::kMemArraysRemapped);
  }
  // Wire totals come from the transports: exact regardless of GMT_OBS and
  // inclusive of everything the fabric actually carried.
  summary.network_messages = cluster.total_network_messages();
  summary.network_bytes = cluster.total_network_bytes();
  summary.faults_injected = cluster.total_fault_counters().total();
  return summary;
}

std::string format_stats_report(Cluster& cluster) {
  namespace names = obs::names;
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-5s %12s %12s %12s %12s %12s %12s\n", "node", "tasks",
                "iters", "ctx-switch", "local ops", "remote cmds",
                "cmds exec");
  out += line;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    const obs::Snapshot snap = cluster.node(n).obs().snapshot();
    std::snprintf(
        line, sizeof(line), "%-5u %12llu %12llu %12llu %12llu %12llu %12llu\n",
        n,
        static_cast<unsigned long long>(snap.counter(names::kTasksExecuted)),
        static_cast<unsigned long long>(
            snap.counter(names::kIterationsExecuted)),
        static_cast<unsigned long long>(snap.counter(names::kCtxSwitches)),
        static_cast<unsigned long long>(snap.counter(names::kLocalOps)),
        static_cast<unsigned long long>(snap.counter(names::kRemoteOps)),
        static_cast<unsigned long long>(snap.counter(names::kCmdsExecuted)));
    out += line;
  }
  const ClusterStatsSummary summary = summarize_stats(cluster);
  if (summary.network_messages == 0) {
    // No ratio to report: a message-free run has no per-message average
    // (commands_per_message() is NaN here by design).
    out += "network: 0 messages (no remote traffic)\n";
  } else {
    std::snprintf(line, sizeof(line),
                  "network: %llu messages, %s, %.1f commands/message, "
                  "%s/message\n",
                  static_cast<unsigned long long>(summary.network_messages),
                  format_bytes(static_cast<double>(summary.network_bytes))
                      .c_str(),
                  summary.commands_per_message(),
                  format_bytes(summary.bytes_per_message()).c_str());
    out += line;
  }
  if (summary.data_frames_sent != 0) {
    std::snprintf(
        line, sizeof(line),
        "reliability: %llu frames, %llu retransmits, %llu acks, "
        "%llu crc drops, %llu dups suppressed, %llu held ooo, "
        "%.1f us mean ack latency\n",
        static_cast<unsigned long long>(summary.data_frames_sent),
        static_cast<unsigned long long>(summary.retransmits),
        static_cast<unsigned long long>(summary.acks_sent),
        static_cast<unsigned long long>(summary.crc_drops),
        static_cast<unsigned long long>(summary.dup_suppressed),
        static_cast<unsigned long long>(summary.out_of_order_held),
        summary.mean_ack_latency_us());
    out += line;
  }
  if (summary.credits_consumed != 0 || summary.credits_granted != 0) {
    std::snprintf(
        line, sizeof(line),
        "flow control: %llu credits consumed, %llu granted, %llu stalls "
        "(%.1f us mean park), %llu emergency blocks\n",
        static_cast<unsigned long long>(summary.credits_consumed),
        static_cast<unsigned long long>(summary.credits_granted),
        static_cast<unsigned long long>(summary.credit_stalls),
        summary.mean_stall_us(),
        static_cast<unsigned long long>(summary.blocks_emergency));
    out += line;
  }
  if (summary.adaptive_flushes != 0) {
    std::snprintf(
        line, sizeof(line),
        "adaptive flush: %llu timeout flushes, %.1f us mean deadline\n",
        static_cast<unsigned long long>(summary.adaptive_flushes),
        summary.mean_adaptive_deadline_us());
    out += line;
  }
  if (summary.combine_installs != 0 || summary.combine_hits != 0) {
    std::snprintf(
        line, sizeof(line),
        "combining: %llu commands elided (hits), %llu installs, "
        "%llu evictions, %llu drained\n",
        static_cast<unsigned long long>(summary.commands_elided()),
        static_cast<unsigned long long>(summary.combine_installs),
        static_cast<unsigned long long>(summary.combine_evictions),
        static_cast<unsigned long long>(summary.combine_drains));
    out += line;
  }
  if (summary.cache_hits != 0 || summary.cache_misses != 0 ||
      summary.cache_invals != 0) {
    std::snprintf(
        line, sizeof(line),
        "cache: %llu hits, %llu misses (%.1f%% hit rate), %llu installs, "
        "%llu invalidation rounds (%llu lines dropped)\n",
        static_cast<unsigned long long>(summary.cache_hits),
        static_cast<unsigned long long>(summary.cache_misses),
        summary.cache_hit_rate() * 100.0,
        static_cast<unsigned long long>(summary.cache_installs),
        static_cast<unsigned long long>(summary.cache_invals),
        static_cast<unsigned long long>(summary.cache_inval_lines));
    out += line;
  }
  if (summary.futures_issued != 0) {
    std::snprintf(
        line, sizeof(line),
        "futures: %llu issued, %llu waits (%llu parked the task), "
        "%llu abandoned at task end\n",
        static_cast<unsigned long long>(summary.futures_issued),
        static_cast<unsigned long long>(summary.futures_waits),
        static_cast<unsigned long long>(summary.futures_parked),
        static_cast<unsigned long long>(summary.futures_abandoned));
    out += line;
  }
  if (summary.actor_sent != 0) {
    std::snprintf(
        line, sizeof(line),
        "actors: %llu sent, %llu delivered (%llu replies), %llu sender "
        "parks, %llu drains, %llu no-mailbox rejects\n",
        static_cast<unsigned long long>(summary.actor_sent),
        static_cast<unsigned long long>(summary.actor_delivered),
        static_cast<unsigned long long>(summary.actor_replies),
        static_cast<unsigned long long>(summary.actor_sender_parks),
        static_cast<unsigned long long>(summary.actor_drains),
        static_cast<unsigned long long>(summary.actor_no_mailbox));
    out += line;
  }
  // Memory lifecycle totals across the cluster (skipped for runs that never
  // touched global memory, e.g. pure-spawn benches).
  std::uint64_t mem_allocs = 0, mem_frees = 0, mem_recycled = 0,
                mem_deferred = 0;
  std::int64_t mem_live = 0, mem_bytes = 0, mem_freelist = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    const obs::Snapshot snap = cluster.node(n).obs().snapshot();
    mem_allocs += snap.counter(names::kMemAllocs);
    mem_frees += snap.counter(names::kMemFrees);
    mem_recycled += snap.counter(names::kMemSlotsRecycled);
    mem_deferred += snap.counter(names::kMemDeferredReclaims);
    mem_live += snap.gauge(names::kMemLiveHandles);
    mem_bytes += snap.gauge(names::kMemLiveBytes);
    mem_freelist += snap.gauge(names::kMemFreeListDepth);
  }
  if (mem_allocs != 0) {
    std::snprintf(
        line, sizeof(line),
        "memory: %lld live entries (%s), %llu allocs, %llu frees, "
        "%llu slots recycled, %llu deferred reclaims, free list %lld\n",
        static_cast<long long>(mem_live),
        format_bytes(static_cast<double>(mem_bytes)).c_str(),
        static_cast<unsigned long long>(mem_allocs),
        static_cast<unsigned long long>(mem_frees),
        static_cast<unsigned long long>(mem_recycled),
        static_cast<unsigned long long>(mem_deferred),
        static_cast<long long>(mem_freelist));
    out += line;
  }
  const net::FaultCountersSnapshot faults = cluster.total_fault_counters();
  if (faults.total() != 0) {
    std::snprintf(line, sizeof(line),
                  "faults injected: %llu drops, %llu dups, %llu corruptions, "
                  "%llu reorders, %llu backpressures, %llu kill-swallowed\n",
                  static_cast<unsigned long long>(faults.drops),
                  static_cast<unsigned long long>(faults.duplicates),
                  static_cast<unsigned long long>(faults.corruptions),
                  static_cast<unsigned long long>(faults.reorders),
                  static_cast<unsigned long long>(faults.backpressures),
                  static_cast<unsigned long long>(faults.kills));
    out += line;
  }
  if (summary.heartbeats_sent != 0 || summary.peers_lost != 0 ||
      summary.epoch_commits != 0) {
    std::snprintf(
        line, sizeof(line),
        "membership: epoch %llu, %llu peers lost, %llu epoch commits, "
        "%llu heartbeats, %llu ops failed NODE_LOST, "
        "%llu arrays degraded (%llu remapped)\n",
        static_cast<unsigned long long>(summary.membership_epoch),
        static_cast<unsigned long long>(summary.peers_lost),
        static_cast<unsigned long long>(summary.epoch_commits),
        static_cast<unsigned long long>(summary.heartbeats_sent),
        static_cast<unsigned long long>(summary.ops_failed_node_lost),
        static_cast<unsigned long long>(summary.arrays_degraded),
        static_cast<unsigned long long>(summary.arrays_remapped));
    out += line;
    // Per-peer health as each node's channel sees it: <node>-><peer>
    // state/last-ack-age/consecutive-timeouts triples.
    for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
      const obs::Snapshot snap = cluster.node(n).obs().snapshot();
      std::string row = "health node" + std::to_string(n) + ":";
      bool any = false;
      for (std::uint32_t p = 0; p < cluster.num_nodes(); ++p) {
        if (p == n) continue;
        const std::string prefix = "health.peer" + std::to_string(p);
        const std::int64_t state = snap.gauge(prefix + ".state");
        const std::int64_t age = snap.gauge(prefix + ".last_ack_age_us");
        const std::int64_t timeouts = snap.gauge(prefix + ".timeouts");
        const char* tag =
            state == 0 ? "live" : (state == 1 ? "suspect" : "dead");
        std::snprintf(line, sizeof(line), " %u=%s(age=%lldus,to=%lld)", p,
                      tag, static_cast<long long>(age),
                      static_cast<long long>(timeouts));
        row += line;
        any = true;
      }
      if (any) out += row + "\n";
    }
  }
  return out;
}

}  // namespace gmt::rt
