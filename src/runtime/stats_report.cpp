#include "runtime/stats_report.hpp"

#include <cstdio>

#include "common/units.hpp"
#include "runtime/cluster.hpp"

namespace gmt::rt {

ClusterStatsSummary summarize_stats(Cluster& cluster) {
  ClusterStatsSummary summary;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    Node& node = cluster.node(n);
    const NodeStats& stats = node.stats();
    summary.tasks_executed += stats.tasks_executed.v.load();
    summary.iterations_executed += stats.iterations_executed.v.load();
    summary.ctx_switches += stats.ctx_switches.v.load();
    summary.local_ops += stats.local_ops.v.load();
    summary.remote_commands += stats.remote_ops.v.load();
    summary.commands_executed += stats.cmds_executed.v.load();
    const AggStats& agg = node.aggregator().stats();
    summary.buffers_sent += agg.buffers_sent.v.load();
    summary.buffer_bytes += agg.buffer_bytes.v.load();
  }
  summary.network_messages = cluster.total_network_messages();
  summary.network_bytes = cluster.total_network_bytes();
  return summary;
}

std::string format_stats_report(Cluster& cluster) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-5s %12s %12s %12s %12s %12s %12s\n", "node", "tasks",
                "iters", "ctx-switch", "local ops", "remote cmds",
                "cmds exec");
  out += line;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    const NodeStats& stats = cluster.node(n).stats();
    std::snprintf(line, sizeof(line),
                  "%-5u %12llu %12llu %12llu %12llu %12llu %12llu\n", n,
                  static_cast<unsigned long long>(
                      stats.tasks_executed.v.load()),
                  static_cast<unsigned long long>(
                      stats.iterations_executed.v.load()),
                  static_cast<unsigned long long>(
                      stats.ctx_switches.v.load()),
                  static_cast<unsigned long long>(stats.local_ops.v.load()),
                  static_cast<unsigned long long>(stats.remote_ops.v.load()),
                  static_cast<unsigned long long>(
                      stats.cmds_executed.v.load()));
    out += line;
  }
  const ClusterStatsSummary summary = summarize_stats(cluster);
  std::snprintf(line, sizeof(line),
                "network: %llu messages, %s, %.1f commands/message, "
                "%s/message\n",
                static_cast<unsigned long long>(summary.network_messages),
                format_bytes(static_cast<double>(summary.network_bytes))
                    .c_str(),
                summary.commands_per_message(),
                format_bytes(summary.bytes_per_message()).c_str());
  out += line;
  return out;
}

}  // namespace gmt::rt
