#include "runtime/global_memory.hpp"

#include <algorithm>
#include <cstring>

namespace gmt::rt {

std::uint64_t ArrayMeta::decompose_fill(std::uint64_t offset,
                                        std::uint64_t length, OwnedSpan* out,
                                        std::size_t cap,
                                        std::size_t* count) const {
  // Overflow-proof form: `offset + length <= size` wraps for offsets near
  // 2^64 and would admit out-of-bounds decompositions.
  GMT_CHECK_MSG(offset <= size && length <= size - offset,
                "gmt access out of bounds");
  const std::uint64_t block = block_size();
  std::uint64_t pos = offset;
  std::uint64_t remaining = length;
  std::size_t n = 0;
  while (remaining > 0 && n < cap) {
    const std::uint64_t part = pos / block;
    const std::uint64_t local = pos % block;
    const std::uint64_t in_block = block - local;
    const std::uint64_t take = remaining < in_block ? remaining : in_block;
    std::uint32_t owner = partition_node(static_cast<std::uint32_t>(part));
    std::uint64_t local_off = local;
    if (part == remap_partition) {
      // Lost partition remapped onto its buddy's replica: same intra-block
      // arithmetic, biased one block into the buddy's local address space.
      owner = remap_node;
      local_off = local + block;
    }
    out[n++] = OwnedSpan{owner, local_off, pos, take};
    pos += take;
    remaining -= take;
  }
  *count = n;
  return pos - offset;
}

void ArrayMeta::decompose(std::uint64_t offset, std::uint64_t length,
                          std::vector<OwnedSpan>* out) const {
  OwnedSpan spans[8];
  std::uint64_t covered = 0;
  do {
    std::size_t count = 0;
    covered += decompose_fill(offset + covered, length - covered, spans,
                              sizeof(spans) / sizeof(spans[0]), &count);
    for (std::size_t i = 0; i < count; ++i) out->push_back(spans[i]);
  } while (covered < length);
}

void MemStats::bind(obs::Registry& reg) {
  live_handles = reg.gauge(obs::names::kMemLiveHandles);
  live_bytes = reg.gauge(obs::names::kMemLiveBytes);
  free_list_depth = reg.gauge(obs::names::kMemFreeListDepth);
  allocs = reg.counter(obs::names::kMemAllocs);
  frees = reg.counter(obs::names::kMemFrees);
  slots_recycled = reg.counter(obs::names::kMemSlotsRecycled);
  deferred_reclaims = reg.counter(obs::names::kMemDeferredReclaims);
  slots_orphaned = reg.counter(obs::names::kMemSlotsOrphaned);
  arrays_degraded = reg.counter(obs::names::kMemArraysDegraded);
  arrays_remapped = reg.counter(obs::names::kMemArraysRemapped);
}

namespace {

inline std::uint64_t pack_head(std::uint64_t tag, std::uint32_t slot) {
  return (tag << 32) | slot;
}

std::atomic<std::uint64_t> g_gm_uid{1};

// Per-thread accessor registration cache: one entry, keyed by instance
// uid (not pointer — a recreated GlobalMemory can reuse the address).
// Runtime threads only ever touch their own node's table, so a single
// slot is a 100% hit. `depth` makes AccessGuard nestable: only the
// outermost guard publishes/clears the epoch.
struct TlsAccessor {
  std::uint64_t gm_uid = 0;
  std::uint32_t idx = 0;
  std::uint32_t depth = 0;
};
thread_local TlsAccessor t_accessor;

}  // namespace

GlobalMemory::GlobalMemory(std::uint32_t node_id, std::uint32_t num_nodes,
                           std::uint32_t max_handles, obs::Registry* registry,
                           std::uint64_t replicate_threshold)
    : node_id_(node_id),
      num_nodes_(num_nodes),
      max_handles_(max_handles),
      replicate_threshold_(replicate_threshold),
      uid_(g_gm_uid.fetch_add(1, std::memory_order_relaxed)),
      slots_(max_handles),
      free_head_(pack_head(0, kNoFreeSlot)),
      accessors_(std::make_unique<Accessor[]>(kMaxAccessors)) {
  if (registry != nullptr) stats_.bind(*registry);
}

GlobalMemory::~GlobalMemory() {
  // Threads are joined before the owning Node dies, so nobody is pinned:
  // drain the deferred list and delete whatever the application never
  // freed (the table owns its entries; leaking them on teardown would
  // trip ASan on every test that ends with live arrays).
  {
    std::lock_guard<std::mutex> lock(deferred_mu_);
    for (Deferred& d : deferred_) delete d.array;
    deferred_.clear();
  }
  for (Slot& slot : slots_)
    delete slot.array.load(std::memory_order_acquire);
}

// ---------------------------------------------------------- free list --

void GlobalMemory::push_free(std::uint32_t slot) {
  std::uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    slots_[slot].next_free.store(static_cast<std::uint32_t>(head),
                                 std::memory_order_relaxed);
    const std::uint64_t next = pack_head((head >> 32) + 1, slot);
    if (free_head_.compare_exchange_weak(head, next,
                                         std::memory_order_release,
                                         std::memory_order_relaxed))
      break;
  }
  free_depth_.fetch_add(1, std::memory_order_relaxed);
  stats_.free_list_depth.inc();
}

std::uint32_t GlobalMemory::pop_free() {
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    const auto slot = static_cast<std::uint32_t>(head);
    if (slot == kNoFreeSlot) return kNoFreeSlot;
    const std::uint32_t next =
        slots_[slot].next_free.load(std::memory_order_relaxed);
    const std::uint64_t want = pack_head((head >> 32) + 1, next);
    if (free_head_.compare_exchange_weak(head, want,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      free_depth_.fetch_sub(1, std::memory_order_relaxed);
      stats_.free_list_depth.dec();
      return slot;
    }
  }
}

// -------------------------------------------------------- handle table --

gmt_handle GlobalMemory::reserve_handle() {
  // Alloc-time reclamation keeps the deferred list bounded under steady
  // alloc/free traffic without a dedicated reaper thread.
  reclaim_deferred();
  std::uint32_t slot = pop_free();
  if (slot == kNoFreeSlot) {
    slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
    GMT_CHECK_MSG(slot < max_handles_, "handle space exhausted");
  } else {
    stats_.slots_recycled.add();
  }
  std::uint16_t gen = static_cast<std::uint16_t>(
      slots_[slot].generation.load(std::memory_order_relaxed) + 1);
  if (gen == 0) gen = 1;  // generation 0 is reserved: never a live handle
  return make_handle(node_id_, slot, gen);
}

void GlobalMemory::register_array(gmt_handle handle, std::uint64_t size,
                                  Alloc policy, std::uint32_t home_node) {
  const std::uint32_t slot = handle_slot(handle);
  GMT_CHECK(slot > 0 && slot < max_handles_);
  GMT_CHECK_MSG(slots_[slot].array.load(std::memory_order_acquire) == nullptr,
                "handle slot already registered");
  GMT_CHECK_MSG(handle_generation(handle) != 0,
                "handle with null generation");

  // Keep next_slot_ ahead of remotely-allocated slots too: the degrade
  // sweep scans [1, next_slot_), so on a node that never allocates locally
  // a stale counter would leave every broadcast-registered array out of
  // the death sweep (its partitions on a dead node would stay routed
  // there instead of degrading/remapping). It also stops a later local
  // reserve_handle from re-issuing a slot another node's allocator owns.
  std::uint32_t seen = next_slot_.load(std::memory_order_relaxed);
  while (seen <= slot &&
         !next_slot_.compare_exchange_weak(seen, slot + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
  }

  auto array = std::make_unique<LocalArray>();
  array->meta.size = size;
  array->meta.policy = policy;
  array->meta.home_node = home_node;
  array->meta.num_nodes = num_nodes_;
  array->meta.generation = handle_generation(handle);

  const std::uint64_t mine = array->meta.bytes_on_node(node_id_);
  if (mine > 0) {
    array->partition = std::make_unique<std::uint8_t[]>(mine);
    std::memset(array->partition.get(), 0, mine);
    array->partition_bytes = mine;
    local_bytes_.fetch_add(mine, std::memory_order_relaxed);
  }

  // Buddy replication: every node computes the same predicate, so all
  // nodes agree on `replicated` without coordination. This node wards the
  // ring-predecessor partition (the one whose buddy_node() is us).
  std::uint64_t replica_bytes = 0;
  array->meta.replicated = replicate_threshold_ > 0 &&
                           policy == Alloc::kPartition &&
                           size <= replicate_threshold_ &&
                           array->meta.partition_count() > 1;
  if (array->meta.replicated) {
    const std::uint32_t parts = array->meta.partition_count();
    if (node_id_ < parts) {
      const std::uint32_t ward = (node_id_ + parts - 1) % parts;
      replica_bytes = array->meta.bytes_on_node(ward);  // kPartition: owner==index
      if (replica_bytes > 0) {
        array->replica = std::make_unique<std::uint8_t[]>(replica_bytes);
        std::memset(array->replica.get(), 0, replica_bytes);
        array->replica_bytes = replica_bytes;
        array->replica_bias = array->meta.block_size();
        local_bytes_.fetch_add(replica_bytes, std::memory_order_relaxed);
      }
    }
  }

  live_handles_.fetch_add(1, std::memory_order_relaxed);
  stats_.allocs.add();
  stats_.live_handles.inc();
  stats_.live_bytes.add(static_cast<std::int64_t>(mine + replica_bytes));

  // Allocations made after a death are born degraded (or remapped).
  const std::uint64_t dead = dead_mask_.load(std::memory_order_acquire);
  const std::uint64_t word =
      dead != 0 ? degrade_word(array->meta, dead) : 0;
  if (word != 0) {
    stats_.arrays_degraded.add();
    if (word & kRemapValidBit) stats_.arrays_remapped.add();
  }
  slots_[slot].degrade.store(word, std::memory_order_relaxed);
  slots_[slot].generation.store(handle_generation(handle),
                                std::memory_order_relaxed);
  slots_[slot].array.store(array.release(), std::memory_order_release);
}

void GlobalMemory::unregister_array(gmt_handle handle) {
  const std::uint32_t slot = handle_slot(handle);
  GMT_CHECK(slot > 0 && slot < max_handles_);
  LocalArray* array = slots_[slot].array.exchange(nullptr,
                                                  std::memory_order_acq_rel);
  GMT_CHECK_MSG(array != nullptr, "double free of gmt_array");
  GMT_CHECK_MSG(array->meta.generation == handle_generation(handle),
                "stale handle in gmt_free");
  const std::uint64_t held = array->partition_bytes + array->replica_bytes;
  local_bytes_.fetch_sub(held, std::memory_order_relaxed);
  live_handles_.fetch_sub(1, std::memory_order_relaxed);
  stats_.frees.add();
  stats_.live_handles.dec();
  stats_.live_bytes.add(-static_cast<std::int64_t>(held));
  slots_[slot].degrade.store(0, std::memory_order_relaxed);
  retire(array);
}

void GlobalMemory::recycle_handle(gmt_handle handle) {
  GMT_CHECK_MSG(handle_node(handle) == node_id_,
                "recycle_handle off the reserving node");
  const std::uint32_t slot = handle_slot(handle);
  GMT_CHECK(slot > 0 && slot < max_handles_);
  GMT_CHECK_MSG(slots_[slot].array.load(std::memory_order_acquire) == nullptr,
                "recycle of a slot still registered");
  push_free(slot);
}

LocalArray& GlobalMemory::get(gmt_handle handle) {
  const std::uint32_t slot = handle_slot(handle);
  GMT_CHECK_MSG(slot > 0 && slot < max_handles_, "invalid gmt handle");
  LocalArray* array = slots_[slot].array.load(std::memory_order_acquire);
  GMT_CHECK_MSG(array != nullptr, "use of unallocated gmt handle");
  GMT_CHECK_MSG(array->meta.generation == handle_generation(handle),
                "use of stale gmt handle (freed and reused)");
  return *array;
}

ArrayMeta GlobalMemory::meta(gmt_handle handle) {
  AccessGuard guard(*this);
  ArrayMeta m = get(handle).meta;
  const std::uint64_t word =
      slots_[handle_slot(handle)].degrade.load(std::memory_order_acquire);
  if (word != 0) {
    m.degraded = true;
    if (word & kRemapValidBit) {
      m.remap_partition = static_cast<std::uint32_t>(word & 0xffff);
      m.remap_node = static_cast<std::uint32_t>((word >> 16) & 0xffff);
    }
  }
  return m;
}

std::uint64_t GlobalMemory::degrade_word(const ArrayMeta& meta,
                                         std::uint64_t dead_mask) const {
  std::uint64_t word = 0;
  for (std::uint32_t dead = 0; dead < num_nodes_ && dead < 64; ++dead) {
    if (!((dead_mask >> dead) & 1u)) continue;
    const std::int64_t part = meta.node_partition(dead);
    if (part < 0 || meta.bytes_on_node(dead) == 0) continue;
    word |= kDegradedBit;
    if (meta.replicated && meta.policy == Alloc::kPartition) {
      const std::uint32_t buddy =
          meta.buddy_node(static_cast<std::uint32_t>(part));
      // Remap only when the buddy survives; a second death involving the
      // buddy (or two lost partitions) leaves the array plain-degraded,
      // because one remap slot cannot cover both.
      if (!((dead_mask >> buddy) & 1u) && !(word & kRemapValidBit)) {
        word |= kRemapValidBit | (static_cast<std::uint64_t>(buddy) << 16) |
                static_cast<std::uint64_t>(part);
      } else {
        word &= ~(kRemapValidBit | 0xffffffffull);
      }
    }
  }
  return word;
}

void GlobalMemory::degrade_node(std::uint32_t dead) {
  const std::uint64_t bit = std::uint64_t{1} << dead;
  const std::uint64_t mask =
      dead_mask_.fetch_or(bit, std::memory_order_acq_rel) | bit;
  // Pin so a concurrent unregister cannot free an array under the sweep.
  AccessGuard guard(*this);
  const std::uint32_t limit =
      std::min(next_slot_.load(std::memory_order_acquire), max_handles_);
  for (std::uint32_t s = 1; s < limit; ++s) {
    LocalArray* array = slots_[s].array.load(std::memory_order_acquire);
    if (array == nullptr) continue;
    const std::uint64_t word = degrade_word(array->meta, mask);
    if (word == 0) continue;
    const std::uint64_t prev =
        slots_[s].degrade.exchange(word, std::memory_order_acq_rel);
    if (prev == 0) stats_.arrays_degraded.add();
    if ((word & kRemapValidBit) && !(prev & kRemapValidBit))
      stats_.arrays_remapped.add();
  }
}

bool GlobalMemory::valid(gmt_handle handle) const {
  const std::uint32_t slot = handle_slot(handle);
  if (slot == 0 || slot >= max_handles_) return false;
  const LocalArray* array = slots_[slot].array.load(std::memory_order_acquire);
  return array && array->meta.generation == handle_generation(handle);
}

// -------------------------------------------------- deferred reclamation --

std::uint32_t GlobalMemory::accessor_index() {
  if (t_accessor.gm_uid == uid_) return t_accessor.idx;
  // A thread may re-register against another table (tests that touch
  // several instances), but never while a guard on the old one is live —
  // the depth counter is shared across instances.
  GMT_DCHECK(t_accessor.depth == 0);
  const std::uint32_t idx =
      num_accessors_.fetch_add(1, std::memory_order_acq_rel);
  GMT_CHECK_MSG(idx < kMaxAccessors, "too many gmt memory accessor threads");
  t_accessor.gm_uid = uid_;
  t_accessor.idx = idx;
  t_accessor.depth = 0;
  return idx;
}

void GlobalMemory::pin(std::uint32_t idx) {
  // Publish the pinned epoch, then confirm the global epoch did not move:
  // both operations are seq_cst, so a retirer that bumped the epoch before
  // our re-read is guaranteed to either observe this pin in its scan or
  // have its slot-clearing exchange visible to our subsequent get() —
  // either way the array cannot be freed under us (store/load ordering,
  // same shape as the task park/wake handshake).
  std::atomic<std::uint64_t>& cell = accessors_[idx].epoch;
  std::uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  for (;;) {
    cell.store(e, std::memory_order_seq_cst);
    const std::uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
    if (g == e) break;
    e = g;
  }
}

void GlobalMemory::unpin(std::uint32_t idx) {
  // seq_cst (a release is the minimum): a reclaim scan that reads the 0
  // synchronizes with it, ordering this thread's accesses before any
  // delete the scan performs.
  accessors_[idx].epoch.store(0, std::memory_order_seq_cst);
}

GlobalMemory::AccessGuard::AccessGuard(GlobalMemory& gm)
    : gm_(gm), idx_(gm.accessor_index()), outermost_(t_accessor.depth == 0) {
  if (outermost_) gm_.pin(idx_);
  ++t_accessor.depth;
}

GlobalMemory::AccessGuard::~AccessGuard() {
  --t_accessor.depth;
  if (outermost_) gm_.unpin(idx_);
}

void GlobalMemory::retire(LocalArray* array) {
  const std::uint64_t safe =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  std::lock_guard<std::mutex> lock(deferred_mu_);
  deferred_.push_back(Deferred{array, safe, false});
  reclaim_locked();
}

void GlobalMemory::reclaim_deferred() {
  // Lock-free empty check first: the steady-state alloc path must not take
  // the mutex when nothing is retired.
  if (deferred_count_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> lock(deferred_mu_);
  reclaim_locked();
}

void GlobalMemory::reclaim_locked() {
  if (deferred_.empty()) return;
  // An entry is freeable once every pinned accessor's epoch is at or past
  // its retire epoch: such accessors pinned after the slot was emptied, so
  // their get() fails loudly instead of returning the dying array.
  std::uint64_t min_active = ~std::uint64_t{0};
  const std::uint32_t n = num_accessors_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t e = accessors_[i].epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min_active) min_active = e;
  }
  auto keep = deferred_.begin();
  for (auto it = deferred_.begin(); it != deferred_.end(); ++it) {
    if (it->safe_epoch <= min_active) {
      delete it->array;
      if (it->survived_scan) stats_.deferred_reclaims.add();
    } else {
      it->survived_scan = true;
      *keep++ = *it;
    }
  }
  deferred_.erase(keep, deferred_.end());
  deferred_count_.store(deferred_.size(), std::memory_order_release);
}

std::size_t GlobalMemory::deferred_depth() const {
  std::lock_guard<std::mutex> lock(deferred_mu_);
  return deferred_.size();
}

}  // namespace gmt::rt
