#include "runtime/global_memory.hpp"

#include <cstring>

namespace gmt::rt {

std::uint64_t ArrayMeta::decompose_fill(std::uint64_t offset,
                                        std::uint64_t length, OwnedSpan* out,
                                        std::size_t cap,
                                        std::size_t* count) const {
  GMT_CHECK_MSG(offset + length <= size, "gmt access out of bounds");
  const std::uint64_t block = block_size();
  std::uint64_t pos = offset;
  std::uint64_t remaining = length;
  std::size_t n = 0;
  while (remaining > 0 && n < cap) {
    const std::uint64_t part = pos / block;
    const std::uint64_t local = pos % block;
    const std::uint64_t in_block = block - local;
    const std::uint64_t take = remaining < in_block ? remaining : in_block;
    out[n++] = OwnedSpan{partition_node(static_cast<std::uint32_t>(part)),
                         local, pos, take};
    pos += take;
    remaining -= take;
  }
  *count = n;
  return pos - offset;
}

void ArrayMeta::decompose(std::uint64_t offset, std::uint64_t length,
                          std::vector<OwnedSpan>* out) const {
  OwnedSpan spans[8];
  std::uint64_t covered = 0;
  do {
    std::size_t count = 0;
    covered += decompose_fill(offset + covered, length - covered, spans,
                              sizeof(spans) / sizeof(spans[0]), &count);
    for (std::size_t i = 0; i < count; ++i) out->push_back(spans[i]);
  } while (covered < length);
}

GlobalMemory::GlobalMemory(std::uint32_t node_id, std::uint32_t num_nodes,
                           std::uint32_t max_handles)
    : node_id_(node_id),
      num_nodes_(num_nodes),
      max_handles_(max_handles),
      slots_(max_handles) {}

gmt_handle GlobalMemory::reserve_handle() {
  const std::uint32_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  GMT_CHECK_MSG(slot < max_handles_, "handle space exhausted");
  const std::uint16_t gen = static_cast<std::uint16_t>(
      slots_[slot].generation.load(std::memory_order_relaxed) + 1);
  return make_handle(node_id_, slot, gen);
}

void GlobalMemory::register_array(gmt_handle handle, std::uint64_t size,
                                  Alloc policy, std::uint32_t home_node) {
  const std::uint32_t slot = handle_slot(handle);
  GMT_CHECK(slot > 0 && slot < max_handles_);
  GMT_CHECK_MSG(slots_[slot].array.load(std::memory_order_acquire) == nullptr,
                "handle slot already registered");

  auto array = std::make_unique<LocalArray>();
  array->meta.size = size;
  array->meta.policy = policy;
  array->meta.home_node = home_node;
  array->meta.num_nodes = num_nodes_;
  array->meta.generation = handle_generation(handle);

  const std::uint64_t mine = array->meta.bytes_on_node(node_id_);
  if (mine > 0) {
    array->partition = std::make_unique<std::uint8_t[]>(mine);
    std::memset(array->partition.get(), 0, mine);
    array->partition_bytes = mine;
    local_bytes_.fetch_add(mine, std::memory_order_relaxed);
  }

  slots_[slot].generation.store(handle_generation(handle),
                                std::memory_order_relaxed);
  slots_[slot].array.store(array.release(), std::memory_order_release);
}

void GlobalMemory::unregister_array(gmt_handle handle) {
  const std::uint32_t slot = handle_slot(handle);
  GMT_CHECK(slot > 0 && slot < max_handles_);
  LocalArray* array = slots_[slot].array.exchange(nullptr,
                                                  std::memory_order_acq_rel);
  GMT_CHECK_MSG(array != nullptr, "double free of gmt_array");
  GMT_CHECK_MSG(array->meta.generation == handle_generation(handle),
                "stale handle in gmt_free");
  local_bytes_.fetch_sub(array->partition_bytes, std::memory_order_relaxed);
  delete array;
}

LocalArray& GlobalMemory::get(gmt_handle handle) {
  const std::uint32_t slot = handle_slot(handle);
  GMT_CHECK_MSG(slot > 0 && slot < max_handles_, "invalid gmt handle");
  LocalArray* array = slots_[slot].array.load(std::memory_order_acquire);
  GMT_CHECK_MSG(array != nullptr, "use of unallocated gmt handle");
  GMT_CHECK_MSG(array->meta.generation == handle_generation(handle),
                "use of stale gmt handle (freed and reused)");
  return *array;
}

bool GlobalMemory::valid(gmt_handle handle) const {
  const std::uint32_t slot = handle_slot(handle);
  if (slot == 0 || slot >= max_handles_) return false;
  const LocalArray* array = slots_[slot].array.load(std::memory_order_acquire);
  return array && array->meta.generation == handle_generation(handle);
}

}  // namespace gmt::rt
