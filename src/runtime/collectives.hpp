// Collective helpers built on the public GMT primitives.
//
// The paper keeps the core API lean (Table I) and expects richer patterns
// to be composed from it; these are the compositions every kernel ends up
// needing: bulk fill, parallel reductions over a global array, histogram,
// min/max search, and a global-to-global copy. All run inside a task and
// parallelise with nested gmt_parfor, so they inherit the runtime's
// aggregation and latency tolerance.
#pragma once

#include <cstdint>

#include "gmt/gmt.hpp"

namespace gmt::coll {

// Fills `count` u64 elements starting at element `first` with `value`.
void fill_u64(gmt_handle array, std::uint64_t first, std::uint64_t count,
              std::uint64_t value);

// Sum of `count` u64 elements starting at element `first`.
std::uint64_t reduce_sum_u64(gmt_handle array, std::uint64_t first,
                             std::uint64_t count);

// Minimum / maximum over the same range (~0 / 0 for an empty range).
std::uint64_t reduce_min_u64(gmt_handle array, std::uint64_t first,
                             std::uint64_t count);
std::uint64_t reduce_max_u64(gmt_handle array, std::uint64_t first,
                             std::uint64_t count);

// Number of elements equal to `value` in the range.
std::uint64_t count_equal_u64(gmt_handle array, std::uint64_t first,
                              std::uint64_t count, std::uint64_t value);

// Distributed exclusive prefix scan:
//   out[out_first + i] = sum of in[in_first .. in_first + i)   for i < count
// Returns the total (sum of the whole range). Three steps: a stripe-parallel
// partial-sum pass, a host scan of the (count / 512) stripe sums, and a
// stripe-parallel rewrite pass — so the wire traffic is two passes over the
// data plus one word per stripe, all riding the aggregation path. `in` and
// `out` may be the same handle only when the ranges coincide exactly (the
// in-place scan); partial overlap is undefined. Single-stripe scans borrow
// the node's cached scratch accumulator instead of allocating.
std::uint64_t exclusive_scan_u64(gmt_handle in, std::uint64_t in_first,
                                 std::uint64_t count, gmt_handle out,
                                 std::uint64_t out_first);

// Copies `bytes` from src[src_offset] to dst[dst_offset] (both global),
// parallelised in aggregation-buffer-sized stripes. Ranges must not
// overlap within the same handle.
void copy(gmt_handle dst, std::uint64_t dst_offset, gmt_handle src,
          std::uint64_t src_offset, std::uint64_t bytes);

// Histogram: for each element e in [first, first+count), atomically
// increments bins[e % num_bins] (u64 bins). A building block for degree
// distributions and load-balance diagnostics.
void histogram_mod_u64(gmt_handle array, std::uint64_t first,
                       std::uint64_t count, gmt_handle bins,
                       std::uint64_t num_bins);

}  // namespace gmt::coll
