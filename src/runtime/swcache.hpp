// Per-node read-mostly software cache for remote get data.
//
// The paper's hand-optimised UPC baseline beats naive one-sided code
// largely through a software cache in front of remote reads; this is that
// cache for the GMT runtime. It sits in front of op_get (blocking reads
// probe it; misses fetch and install whole lines, so neighbouring values
// ride along), keyed by (handle, 1 KB line of the array's global byte
// space). Because handles embed their slot's 16-bit generation, a freed
// and reallocated array never matches stale lines — the memory-lifecycle
// generation IS the free/realloc invalidation token.
//
// Coherence protocol (writes are expected to be rare — that is the point):
//
//   writer  — any mutation (put, put_value, atomics) with the cache
//             enabled broadcasts a kCacheInval command for the handle to
//             every other live node, riding the writing op's completion
//             token, and invalidates its own node's cache after the op
//             completes. A blocking write therefore returns only after no
//             cache in the cluster can serve pre-write data.
//   reader  — a miss snapshots the handle's invalidation epoch *before*
//             fetching the line from the owner, and installs only if the
//             epoch is unchanged (checked under the entry lock). An
//             invalidation bumps the epoch before walking entries, so a
//             fetch that raced a concurrent invalidation is either cleared
//             by the walk (installed first) or refused at install (epoch
//             moved) — a completed write can never be masked by a stale
//             install.
//
// Concurrency: entries carry a tiny spinlock held only across the memcpy
// in or out — never across a fiber suspension or remote fetch. Readers run
// on worker threads, invalidations on helper threads (remote kCacheInval)
// and worker threads (post-completion self-invalidation).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/backoff.hpp"
#include "common/cacheline.hpp"
#include "gmt/types.hpp"
#include "obs/metrics.hpp"

namespace gmt::rt {

struct SwCacheStats {
  obs::Counter hits;         // read segments served from a cached line
  obs::Counter misses;       // read segments that required a line fetch
  obs::Counter installs;     // lines installed after a miss fetch
  obs::Counter racy_skips;   // installs refused by the epoch check
  obs::Counter invals;       // invalidation sweeps (local + remote)
  obs::Counter inval_lines;  // lines dropped by those sweeps

  void bind(obs::Registry& reg);
};

class SwCache {
 public:
  // Line size: big enough that one miss prefetches a useful neighbourhood
  // (128 8-byte values), small enough to stay well under max_payload so a
  // line fetch is a single command.
  static constexpr std::uint64_t kLineBytes = 1024;

  SwCache(std::uint64_t capacity_bytes, obs::Registry* registry);

  // Copies bytes [line*kLineBytes + offset_in_line, +len) of `handle` into
  // `out` if the cached entry for the line covers that range.
  bool lookup(gmt_handle handle, std::uint64_t line,
              std::uint32_t offset_in_line, std::uint32_t len, void* out);

  // Invalidation-epoch snapshot for `handle`'s shard; taken by a reader
  // BEFORE issuing the miss fetch and passed to install().
  std::uint64_t epoch(gmt_handle handle) const;

  // Installs `len` fetched bytes covering line bytes [start, start + len)
  // — partial when the line straddles a partition boundary or the array
  // tail — unless `handle`'s epoch moved past `epoch_at_fetch` (a
  // concurrent invalidation: the data may predate the write, so it must
  // not be cached).
  void install(gmt_handle handle, std::uint64_t line, const void* data,
               std::uint32_t start, std::uint32_t len,
               std::uint64_t epoch_at_fetch);

  // Drops every cached line of `handle` after bumping its epoch; called
  // for remote kCacheInval commands and for post-completion
  // self-invalidation on the writing node.
  void invalidate(gmt_handle handle);

  std::size_t num_lines() const { return mask_ + 1; }

 private:
  struct Entry {
    std::atomic<std::uint8_t> lock{0};
    bool valid = false;
    gmt_handle handle = kNullHandle;
    std::uint64_t line = 0;
    std::uint32_t start = 0;  // first valid byte within the line
    std::uint32_t len = 0;    // valid bytes from `start`
    std::uint8_t data[kLineBytes];  // line-relative (byte i = line byte i)
  };

  struct alignas(kCacheLine) EpochCell {
    std::atomic<std::uint64_t> value{0};
  };

  static constexpr std::uint32_t kEpochShards = 64;

  static void lock_entry(Entry& e) {
    while (e.lock.exchange(1, std::memory_order_acquire) != 0) cpu_relax();
  }
  static void unlock_entry(Entry& e) {
    e.lock.store(0, std::memory_order_release);
  }

  std::size_t entry_index(gmt_handle handle, std::uint64_t line) const {
    // Fibonacci hashing over the (handle, line) pair; handle already mixes
    // node/slot/generation bits.
    std::uint64_t x = handle * 0x9e3779b97f4a7c15ull;
    x ^= (line + 0x7f4a7c15u) * 0xbf58476d1ce4e5b9ull;
    x ^= x >> 29;
    return static_cast<std::size_t>(x) & mask_;
  }

  std::uint32_t epoch_shard(gmt_handle handle) const {
    return static_cast<std::uint32_t>((handle * 0x9e3779b97f4a7c15ull) >> 58) &
           (kEpochShards - 1);
  }

  std::unique_ptr<Entry[]> entries_;
  std::size_t mask_ = 0;
  EpochCell epochs_[kEpochShards];
  SwCacheStats stats_;
};

}  // namespace gmt::rt
