#include "runtime/node.hpp"

#include <pthread.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "actor/mailbox.hpp"
#include "common/log.hpp"
#include "gmt/error.hpp"
#include "gmt/obs.hpp"
#include "obs/trace.hpp"

namespace gmt::rt {

void NodeStats::bind(obs::Registry& reg) {
  tasks_executed = reg.counter(obs::names::kTasksExecuted);
  iterations_executed = reg.counter(obs::names::kIterationsExecuted);
  ctx_switches = reg.counter(obs::names::kCtxSwitches);
  local_ops = reg.counter(obs::names::kLocalOps);
  remote_ops = reg.counter(obs::names::kRemoteOps);
  cmds_executed = reg.counter(obs::names::kCmdsExecuted);
  buffers_received = reg.counter(obs::names::kBuffersReceived);
  resident_tasks = reg.gauge(obs::names::kTasksResident);
  incoming_depth = reg.gauge(obs::names::kIncomingDepth);
  task_quantum_ns = reg.histogram("tasks.quantum_ns");
  futures_issued = reg.counter(obs::names::kFuturesIssued);
  futures_waits = reg.counter(obs::names::kFuturesWaits);
  futures_parked = reg.counter(obs::names::kFuturesParked);
  futures_abandoned = reg.counter(obs::names::kFuturesAbandoned);
}

namespace {

// Stack-resident span buffer for the put/get hot path: big enough that a
// typical transfer decomposes in one pass, small enough to live in a
// register-friendly stack frame. Longer ranges loop, refilling the buffer —
// no std::vector is ever constructed per operation.
constexpr std::size_t kSpanBatch = 8;

}  // namespace

Node::Node(std::uint32_t id, std::uint32_t num_nodes, const Config& config,
           net::Transport* transport)
    : id_(id),
      num_nodes_(num_nodes),
      config_(config),
      transport_(transport),
      obs_("node" + std::to_string(id)),
      gm_(id, num_nodes, 1 << 16, &obs_,
          config.replicate ? config.replicate_max_bytes : 0),
      agg_(config, num_nodes, config.num_workers + config.num_helpers,
           &obs_),
      itb_pool_(config.task_pool ? config.itb_pool_size : 1),
      itbs_(4096),
      // With flow control the incoming queue must admit every credited
      // buffer from every peer (plus the bounded aggregation overdraft) so
      // the comm server never refuses a delivery the window permitted.
      incoming_(config.flow_credits > 0 &&
                        static_cast<std::size_t>(config.flow_credits) *
                                num_nodes * 2 >
                            1024
                    ? static_cast<std::size_t>(config.flow_credits) *
                          num_nodes * 2
                    : 1024) {
  const std::string error = config.validate();
  GMT_CHECK_MSG(error.empty(), error.c_str());
  stats_.bind(obs_);
  if (config.cache)
    cache_ = std::make_unique<SwCache>(config.cache_bytes, &obs_);
  actors_ = std::make_unique<ActorRuntime>(this);
  workers_.reserve(config.num_workers);
  for (std::uint32_t w = 0; w < config.num_workers; ++w)
    workers_.push_back(std::make_unique<Worker>(this, w, &agg_.slot(w)));
  helpers_.reserve(config.num_helpers);
  for (std::uint32_t h = 0; h < config.num_helpers; ++h)
    helpers_.push_back(std::make_unique<Helper>(
        this, h, &agg_.slot(config.num_workers + h)));
  if (config.membership && config.reliable_transport)
    membership_ =
        std::make_unique<MembershipManager>(config, id, num_nodes, &obs_);
  comm_ = std::make_unique<CommServer>(this);
}

Node::~Node() {
  join();
  // Reclaim any iteration blocks that never ran (abnormal shutdown).
  IterBlock* itb = nullptr;
  while (itbs_.pop(&itb)) release_itb(itb);
  net::InMessage* msg = nullptr;
  while (incoming_.pop(&msg)) delete msg;
}

void Node::start() {
  for (auto& helper : helpers_) helper->start();
  comm_->start();
  for (auto& worker : workers_) worker->start();
  GMT_LOG_INFO("node %u started (%u workers, %u helpers)", id_,
               config_.num_workers, config_.num_helpers);
}

void Node::join() {
  for (auto& worker : workers_) worker->join();
  for (auto& helper : helpers_) helper->join();
  if (comm_) comm_->join();
}

IterBlock* Node::acquire_itb() {
  if (config_.task_pool) {
    if (IterBlock* itb = itb_pool_.try_acquire()) {
      itb->reset();
      itb->pooled = true;
      return itb;
    }
  }
  auto* itb = new IterBlock;
  itb->pooled = false;
  return itb;
}

void Node::release_itb(IterBlock* itb) {
  if (itb->pooled)
    itb_pool_.release(itb);
  else
    delete itb;
}

void Node::pin_thread(std::uint32_t slot) const {
  if (!config_.pin_threads) return;
  const std::uint32_t per_node = config_.num_workers + config_.num_helpers + 1;
  const std::uint32_t cores = std::thread::hardware_concurrency();
  // An in-process cluster runs num_nodes * per_node threads; pinning on a
  // host with fewer cores would stack them all on the same few cores and
  // serialise the runtime — skip entirely.
  if (cores < per_node * num_nodes_) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET((id_ * per_node + slot) % cores, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

void Node::emit(AggregationSlot& slot, std::uint32_t dst,
                const CmdHeader& header, const void* payload) {
  stats_.remote_ops.add();
  MembershipManager* m = membership_.get();
  const bool tracked = op_expects_completion(header.op);
  if (m != nullptr && !m->is_live(dst)) {
    if (tracked) m->fail_token(header.token);
    return;
  }
  if ((header.flags & kCombine) != 0 && agg_.combining()) {
    switch (agg_.combine(slot, dst, header)) {
      case CombineResult::kMerged:
        // Folded into the resident same-key entry: that entry's single
        // wire command (and its one ack) now stands for this op too, so
        // its pre-counted pending_op completes right here.
        complete_one(header.token);
        return;
      case CombineResult::kInstalled:
        // The held entry owns the op's completion; track it like an
        // emitted command so the death sweep fails it (and the drain drops
        // the entry) if the destination dies while it is held.
        if (m != nullptr) {
          m->tracker().track(dst, header.token);
          if (!m->is_live(dst) && m->tracker().complete(dst, header.token))
            m->fail_token(header.token);
        }
        return;
      case CombineResult::kBypass:
        break;  // destination died: fall through to the append below
    }
  }
  if (m == nullptr) {
    agg_.append(slot, dst, header, payload);
    return;
  }
  if (!agg_.append(slot, dst, header, payload)) {
    // The destination died while (or before) we were parked on credit; the
    // command was never buffered, so the completion is ours to fail.
    if (tracked) m->fail_token(header.token);
    return;
  }
  if (tracked) {
    // Track strictly after append accepted, so the aggregation stall
    // ticket never shares a pending count with the tracker. A reply that
    // outruns this track leaves a tombstone the track cancels.
    m->tracker().track(dst, header.token);
    // The death sweep may have run between append and track — it could
    // not see this count, so claim it back ourselves.
    if (!m->is_live(dst) && m->tracker().complete(dst, header.token))
      m->fail_token(header.token);
  }
}

// Mirrors one span of a put to the buddy holding the partition's replica.
// Skipped when the partition was already remapped (the primary write went
// to the replica itself) or the buddy is gone. A buddy that is this node
// writes the local replica directly; otherwise a kPut rides the task's
// token at the replica bias, so the task's next block covers the mirror.
void Node::mirror_span(Worker& w, Task* task, gmt_handle h,
                       const ArrayMeta& meta, const OwnedSpan& span,
                       const std::uint8_t* src) {
  if (!meta.replicated) return;
  const std::uint64_t block = meta.block_size();
  const auto part = static_cast<std::uint32_t>(span.global_offset / block);
  if (part == meta.remap_partition) return;
  const std::uint32_t buddy = meta.buddy_node(part);
  if (!node_is_live(buddy)) return;
  const std::uint64_t moff = block + (span.global_offset % block);
  if (buddy == id_) {
    GlobalMemory::AccessGuard guard(gm_);
    std::memcpy(gm_.get(h).local_ptr(moff), src, span.size);
    return;
  }
  std::uint64_t done = 0;
  while (done < span.size) {
    const std::uint64_t piece = span.size - done < max_payload()
                                    ? span.size - done
                                    : max_payload();
    task->pending_ops.fetch_add(1, std::memory_order_relaxed);
    CmdHeader cmd;
    cmd.op = Op::kPut;
    cmd.handle = h;
    cmd.offset = moff + done;
    cmd.token = task_token(task);
    cmd.payload_size = static_cast<std::uint32_t>(piece);
    emit(w.agg_slot(), buddy, cmd, src + done);
    done += piece;
  }
}

// Value flavour of mirror_span (puts of <= 8 bytes and the final value of
// remote atomics).
void Node::mirror_value(Worker& w, Task* task, gmt_handle h,
                        const ArrayMeta& meta, const OwnedSpan& span,
                        std::uint64_t value, std::uint32_t size) {
  if (!meta.replicated) return;
  const std::uint64_t block = meta.block_size();
  const auto part = static_cast<std::uint32_t>(span.global_offset / block);
  if (part == meta.remap_partition) return;
  const std::uint32_t buddy = meta.buddy_node(part);
  if (!node_is_live(buddy)) return;
  const std::uint64_t moff = block + (span.global_offset % block);
  if (buddy == id_) {
    GlobalMemory::AccessGuard guard(gm_);
    std::memcpy(gm_.get(h).local_ptr(moff), &value, size);
    return;
  }
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  CmdHeader cmd;
  cmd.op = Op::kPutValue;
  cmd.handle = h;
  cmd.offset = moff;
  cmd.token = task_token(task);
  cmd.aux1 = value;
  cmd.aux2 = size;
  emit(w.agg_slot(), buddy, cmd, nullptr);
}

std::uint64_t Node::apply_atomic_add(std::uint8_t* addr, std::uint64_t operand,
                                     std::uint32_t width) {
  if (width == 4) {
    auto* p = reinterpret_cast<std::uint32_t*>(addr);
    return std::atomic_ref<std::uint32_t>(*p).fetch_add(
        static_cast<std::uint32_t>(operand), std::memory_order_acq_rel);
  }
  auto* p = reinterpret_cast<std::uint64_t*>(addr);
  return std::atomic_ref<std::uint64_t>(*p).fetch_add(
      operand, std::memory_order_acq_rel);
}

std::uint64_t Node::apply_atomic_cas(std::uint8_t* addr,
                                     std::uint64_t expected,
                                     std::uint64_t desired,
                                     std::uint32_t width) {
  if (width == 4) {
    auto* p = reinterpret_cast<std::uint32_t*>(addr);
    auto want = static_cast<std::uint32_t>(expected);
    std::atomic_ref<std::uint32_t>(*p).compare_exchange_strong(
        want, static_cast<std::uint32_t>(desired), std::memory_order_acq_rel);
    return want;  // holds the observed value either way
  }
  auto* p = reinterpret_cast<std::uint64_t*>(addr);
  std::uint64_t want = expected;
  std::atomic_ref<std::uint64_t>(*p).compare_exchange_strong(
      want, desired, std::memory_order_acq_rel);
  return want;
}

// ---------------------------------------------------------------- alloc --

gmt_handle Node::op_alloc(Worker& w, std::uint64_t size, Alloc policy) {
  GMT_CHECK_MSG(size > 0, "gmt_new of zero bytes");
  const gmt_handle handle = gm_.reserve_handle();
  register_everywhere(w, handle, size, policy);
  return handle;
}

void Node::register_everywhere(Worker& w, gmt_handle handle,
                               std::uint64_t size, Alloc policy) {
  gm_.register_array(handle, size, policy, id_);
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_new outside task context");
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    // Dead nodes are skipped silently: the allocation proceeds on the
    // survivor set and stays usable there.
    if (n == id_ || !node_is_live(n)) continue;
    task->pending_ops.fetch_add(1, std::memory_order_relaxed);
    CmdHeader cmd;
    cmd.op = Op::kAlloc;
    cmd.handle = handle;
    cmd.offset = size;
    cmd.flags = static_cast<std::uint8_t>(policy);
    cmd.aux1 = id_;
    cmd.token = task_token(task);
    emit(w.agg_slot(), n, cmd, nullptr);
  }
  w.task_block();  // allocation is globally visible when this returns
}

void Node::op_free(Worker& w, gmt_handle handle) {
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_free outside task context");
  // Validate before broadcasting: a stale or unknown handle must fail on
  // the caller, not crash a remote helper with an undiagnosable FREE.
  GMT_CHECK_MSG(gm_.valid(handle), "gmt_free of unknown or stale handle");
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    if (n == id_ || !node_is_live(n)) continue;
    task->pending_ops.fetch_add(1, std::memory_order_relaxed);
    CmdHeader cmd;
    cmd.op = Op::kFree;
    cmd.handle = handle;
    cmd.token = task_token(task);
    emit(w.agg_slot(), n, cmd, nullptr);
  }
  w.task_block();
  gm_.unregister_array(handle);  // local partition last: remote acks are in
  if (handle_node(handle) == id_) {
    // Every node (remote acks are in, local unregister just ran) has
    // emptied the slot, so a re-registration of the recycled slot cannot
    // race any in-flight command for the old incarnation.
    gm_.recycle_handle(handle);
  } else {
    // Only the reserving node's counter can hand the slot out again;
    // freeing from elsewhere retires it for good.
    gm_.note_orphaned_slot();
  }
}

// ------------------------------------------------------------- put/get --

// Writer-side half of the cache coherence protocol: one kCacheInval per
// live peer, riding `sink` so the write's completion also waits for every
// remote cache to drop the handle's lines.
void Node::broadcast_inval(Worker& w, const OpSink& sink, gmt_handle h) {
  if (cache_ == nullptr) return;
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    if (n == id_ || !node_is_live(n)) continue;
    sink.pending->fetch_add(1, std::memory_order_relaxed);
    CmdHeader cmd;
    cmd.op = Op::kCacheInval;
    cmd.handle = h;
    cmd.token = sink.token;
    emit(w.agg_slot(), n, cmd, nullptr);
  }
}

void Node::do_put(Worker& w, Task* task, const OpSink& sink, gmt_handle h,
                  std::uint64_t offset, const void* data, std::uint64_t size,
                  const ArrayMeta& meta) {
  const auto* src = static_cast<const std::uint8_t*>(data);
  OwnedSpan spans[kSpanBatch];
  std::uint64_t covered = 0;
  while (covered < size) {
    std::size_t count = 0;
    covered += meta.decompose_fill(offset + covered, size - covered, spans,
                                   kSpanBatch, &count);
    for (std::size_t s = 0; s < count; ++s) {
      const OwnedSpan& span = spans[s];
      const std::uint8_t* span_src = src + (span.global_offset - offset);
      if (span.node == id_ && config_.local_fast_path) {
        {
          GlobalMemory::AccessGuard guard(gm_);
          std::memcpy(gm_.get(h).local_ptr(span.local_offset), span_src,
                      span.size);
        }
        stats_.local_ops.add();
        mirror_span(w, task, h, meta, span, span_src);
        continue;
      }
      // Chunk to the command payload limit.
      std::uint64_t done = 0;
      while (done < span.size) {
        const std::uint64_t piece = span.size - done < max_payload()
                                        ? span.size - done
                                        : max_payload();
        sink.pending->fetch_add(1, std::memory_order_relaxed);
        CmdHeader cmd;
        cmd.op = Op::kPut;
        cmd.handle = h;
        cmd.offset = span.local_offset + done;
        cmd.token = sink.token;
        cmd.payload_size = static_cast<std::uint32_t>(piece);
        emit(w.agg_slot(), span.node, cmd, span_src + done);
        done += piece;
      }
      mirror_span(w, task, h, meta, span, span_src);
    }
  }
}

void Node::op_put(Worker& w, gmt_handle h, std::uint64_t offset,
                  const void* data, std::uint64_t size, bool blocking) {
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_put outside task context");
  // By value: emit() below can suspend this fiber (flow-control parks),
  // and a reference into the table could dangle if another task frees the
  // handle while this one is parked.
  const ArrayMeta meta = gm_.meta(h);
  // With the cache on every write bears coherence: invalidations ride the
  // op's completion, so a non-blocking put degrades to blocking and the
  // local cache is swept once all acks (data + invalidations) are in.
  const bool coherent = cache_ != nullptr && !meta.replicated;
  do_put(w, task, task_sink(task), h, offset, data, size, meta);
  if (coherent) broadcast_inval(w, task_sink(task), h);
  if (blocking || coherent) w.task_block();
  if (coherent) cache_->invalidate(h);
}

void Node::op_put_value(Worker& w, gmt_handle h, std::uint64_t offset,
                        std::uint64_t value, std::uint32_t size,
                        bool blocking) {
  GMT_CHECK_MSG(size >= 1 && size <= 8, "gmt_put_value size must be 1..8");
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_put_value outside task context");
  const ArrayMeta meta = gm_.meta(h);
  // <= 8 bytes over >= 8-byte blocks: at most two spans.
  OwnedSpan spans[2];
  std::size_t count = 0;
  meta.decompose_fill(offset, size, spans, 2, &count);

  if (count > 1) {
    // Crosses a partition boundary: degrade to a byte put.
    op_put(w, h, offset, &value, size, blocking);
    return;
  }
  const OwnedSpan& span = spans[0];
  const bool coherent = cache_ != nullptr && !meta.replicated;
  if (span.node == id_ && config_.local_fast_path) {
    {
      GlobalMemory::AccessGuard guard(gm_);
      std::memcpy(gm_.get(h).local_ptr(span.local_offset), &value, size);
    }
    stats_.local_ops.add();
    mirror_value(w, task, h, meta, span, value, size);
    if (coherent) {
      broadcast_inval(w, task_sink(task), h);
      w.task_block();
      cache_->invalidate(h);
    }
    return;
  }
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  CmdHeader cmd;
  cmd.op = Op::kPutValue;
  // A non-blocking put-value is fire-and-forget at one address, so the
  // combining table may hold it and dedup repeats last-writer-wins. A
  // blocking one must ship now (the task waits on its ack), replicated
  // arrays bypass so the mirror below stays in lockstep with the primary,
  // and coherent writes block on their invalidations anyway.
  if (!blocking && !meta.replicated && !coherent) cmd.flags |= kCombine;
  cmd.handle = h;
  cmd.offset = span.local_offset;
  cmd.token = task_token(task);
  cmd.aux1 = value;
  cmd.aux2 = size;
  emit(w.agg_slot(), span.node, cmd, nullptr);
  mirror_value(w, task, h, meta, span, value, size);
  if (coherent) broadcast_inval(w, task_sink(task), h);
  if (blocking || coherent) w.task_block();
  if (coherent) cache_->invalidate(h);
}

void Node::do_get(Worker& w, const OpSink& sink, gmt_handle h,
                  std::uint64_t offset, void* data, std::uint64_t size,
                  const ArrayMeta& meta) {
  auto* dst = static_cast<std::uint8_t*>(data);
  OwnedSpan spans[kSpanBatch];
  std::uint64_t covered = 0;
  while (covered < size) {
    std::size_t count = 0;
    covered += meta.decompose_fill(offset + covered, size - covered, spans,
                                   kSpanBatch, &count);
    for (std::size_t s = 0; s < count; ++s) {
      const OwnedSpan& span = spans[s];
      std::uint8_t* span_dst = dst + (span.global_offset - offset);
      if (span.node == id_ && config_.local_fast_path) {
        GlobalMemory::AccessGuard guard(gm_);
        std::memcpy(span_dst, gm_.get(h).local_ptr(span.local_offset),
                    span.size);
        stats_.local_ops.add();
        continue;
      }
      std::uint64_t done = 0;
      while (done < span.size) {
        const std::uint64_t piece = span.size - done < max_payload()
                                        ? span.size - done
                                        : max_payload();
        sink.pending->fetch_add(1, std::memory_order_relaxed);
        CmdHeader cmd;
        cmd.op = Op::kGet;
        cmd.handle = h;
        cmd.offset = span.local_offset + done;
        cmd.token = sink.token;
        cmd.aux1 = reinterpret_cast<std::uint64_t>(span_dst + done);
        cmd.aux2 = piece;
        emit(w.agg_slot(), span.node, cmd, nullptr);
        done += piece;
      }
    }
  }
}

// Cache-aware blocking get. Walks the request line by line: hits copy out
// of the cache at local-memory speed; misses fetch the whole line (clipped
// to the partition and the array tail, so neighbouring data rides along),
// batched kMissBatch at a time with one suspension per batch, then install
// under the epoch check. Non-blocking gets probe but never install — they
// have no completion point to anchor the fetch buffers to.
void Node::cached_get(Worker& w, Task* task, gmt_handle h,
                      std::uint64_t offset, void* data, std::uint64_t size,
                      const ArrayMeta& meta, bool blocking) {
  constexpr std::uint64_t kLine = SwCache::kLineBytes;
  constexpr std::size_t kMissBatch = 4;
  struct Miss {
    std::uint64_t line;
    std::uint32_t start;     // first fetched byte within the line
    std::uint32_t len;       // fetched bytes
    std::uint64_t epoch;     // shard epoch before the fetch was issued
    std::uint8_t* dst;       // user destination of the wanted sub-range
    std::uint32_t want_off;  // wanted bytes start here within the fetch
    std::uint32_t want_len;
  };
  Miss misses[kMissBatch];
  std::uint8_t bufs[kMissBatch][SwCache::kLineBytes];
  std::size_t nmiss = 0;
  std::uint32_t batch_status = 0;  // task status before the batch's fetches

  const auto flush = [&] {
    if (nmiss == 0) return;
    w.task_block();
    // A status change during the batch means some fetch failed (NODE_LOST)
    // and its buffer holds garbage; skip the whole batch — the sticky task
    // error already marks the read as failed, exactly like a plain get.
    const bool clean =
        task->status.load(std::memory_order_acquire) == batch_status;
    for (std::size_t i = 0; i < nmiss; ++i) {
      const Miss& m = misses[i];
      if (!clean) continue;
      std::memcpy(m.dst, bufs[i] + m.want_off, m.want_len);
      cache_->install(h, m.line, bufs[i], m.start, m.len, m.epoch);
    }
    nmiss = 0;
  };

  const std::uint64_t block = meta.block_size();
  auto* dst = static_cast<std::uint8_t*>(data);
  OwnedSpan spans[kSpanBatch];
  std::uint64_t covered = 0;
  while (covered < size) {
    std::size_t count = 0;
    covered += meta.decompose_fill(offset + covered, size - covered, spans,
                                   kSpanBatch, &count);
    for (std::size_t s = 0; s < count; ++s) {
      const OwnedSpan& span = spans[s];
      if (span.node == id_ && config_.local_fast_path) {
        GlobalMemory::AccessGuard guard(gm_);
        std::memcpy(dst + (span.global_offset - offset),
                    gm_.get(h).local_ptr(span.local_offset), span.size);
        stats_.local_ops.add();
        continue;
      }
      const bool live = node_is_live(span.node);
      const std::uint64_t part_start = (span.global_offset / block) * block;
      const std::uint64_t part_end =
          part_start + block < meta.size ? part_start + block : meta.size;
      const std::uint64_t span_end = span.global_offset + span.size;
      std::uint64_t pos = span.global_offset;
      while (pos < span_end) {
        const std::uint64_t line = pos / kLine;
        const auto line_off = static_cast<std::uint32_t>(pos % kLine);
        const std::uint64_t seg_len =
            span_end - pos < kLine - line_off ? span_end - pos
                                             : kLine - line_off;
        std::uint8_t* out = dst + (pos - offset);
        // A dead owner must produce NODE_LOST, not a stale pre-death hit.
        if (live &&
            cache_->lookup(h, line, line_off,
                           static_cast<std::uint32_t>(seg_len), out)) {
          pos += seg_len;
          continue;
        }
        if (!blocking) {
          // Probe-only: fetch just the wanted bytes on the task's token
          // with no install (completion lands at the next blocking point,
          // long after this frame is gone).
          task->pending_ops.fetch_add(1, std::memory_order_relaxed);
          CmdHeader cmd;
          cmd.op = Op::kGet;
          cmd.handle = h;
          cmd.offset = span.local_offset + (pos - span.global_offset);
          cmd.token = task_token(task);
          cmd.aux1 = reinterpret_cast<std::uint64_t>(out);
          cmd.aux2 = seg_len;
          emit(w.agg_slot(), span.node, cmd, nullptr);
          pos += seg_len;
          continue;
        }
        // Miss: fetch the line clipped to this partition and the array.
        const std::uint64_t fetch_begin =
            line * kLine > part_start ? line * kLine : part_start;
        const std::uint64_t line_end = (line + 1) * kLine;
        const std::uint64_t fetch_end =
            line_end < part_end ? line_end : part_end;
        Miss& m = misses[nmiss];
        m.line = line;
        m.start = static_cast<std::uint32_t>(fetch_begin - line * kLine);
        m.len = static_cast<std::uint32_t>(fetch_end - fetch_begin);
        m.epoch = cache_->epoch(h);  // BEFORE the fetch is issued
        m.dst = out;
        m.want_off = static_cast<std::uint32_t>(pos - fetch_begin);
        m.want_len = static_cast<std::uint32_t>(
            seg_len < fetch_end - pos ? seg_len : fetch_end - pos);
        if (nmiss == 0)
          batch_status = task->status.load(std::memory_order_acquire);
        task->pending_ops.fetch_add(1, std::memory_order_relaxed);
        CmdHeader cmd;
        cmd.op = Op::kGet;
        cmd.handle = h;
        cmd.offset = span.local_offset + fetch_begin - span.global_offset;
        cmd.token = task_token(task);
        cmd.aux1 = reinterpret_cast<std::uint64_t>(bufs[nmiss]);
        cmd.aux2 = m.len;
        emit(w.agg_slot(), span.node, cmd, nullptr);
        pos += m.want_len;
        if (++nmiss == kMissBatch) flush();
      }
    }
  }
  flush();
  // The line walk above already blocked per batch; the non-blocking flavour
  // intentionally leaves its plain fetches outstanding.
}

void Node::op_get(Worker& w, gmt_handle h, std::uint64_t offset, void* data,
                  std::uint64_t size, bool blocking) {
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_get outside task context");
  const ArrayMeta meta = gm_.meta(h);
  // Replicated arrays stay off the cache entirely (their buddy mirrors
  // bypass the invalidation protocol); degraded ones too — a remapped
  // partition serves replica data the cache was never told about.
  if (cache_ != nullptr && !meta.replicated && !meta.degraded) {
    cached_get(w, task, h, offset, data, size, meta, blocking);
    return;
  }
  do_get(w, task_sink(task), h, offset, data, size, meta);
  if (blocking) w.task_block();
}

// ------------------------------------------------------------- atomics --

namespace {

// Atomics must target one naturally-aligned word on one node.
const OwnedSpan& atomic_span(const OwnedSpan* spans, std::size_t count,
                             std::uint64_t offset, std::uint32_t width) {
  GMT_CHECK_MSG(count == 1, "gmt atomic crosses a partition boundary");
  GMT_CHECK_MSG(offset % width == 0, "gmt atomic misaligned");
  GMT_CHECK_MSG(spans[0].local_offset % width == 0,
                "gmt atomic misaligned within partition");
  return spans[0];
}

}  // namespace

std::uint64_t Node::op_atomic_add(Worker& w, gmt_handle h,
                                  std::uint64_t offset, std::uint64_t operand,
                                  std::uint32_t width) {
  GMT_CHECK_MSG(width == 4 || width == 8, "gmt atomic width must be 4 or 8");
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_atomic_add outside task context");
  const ArrayMeta meta = gm_.meta(h);
  OwnedSpan spans[2];
  std::size_t count = 0;
  meta.decompose_fill(offset, width, spans, 2, &count);
  const OwnedSpan& span = atomic_span(spans, count, offset, width);

  if (span.node == id_ && config_.local_fast_path) {
    std::uint64_t old;
    {
      GlobalMemory::AccessGuard guard(gm_);
      old = apply_atomic_add(gm_.get(h).local_ptr(span.local_offset), operand,
                             width);
    }
    stats_.local_ops.add();
    mirror_value(w, task, h, meta, span, old + operand, width);
    if (cache_ != nullptr && !meta.replicated) {
      broadcast_inval(w, task_sink(task), h);
      w.task_block();
      cache_->invalidate(h);
    }
    return old;
  }
  const bool coherent = cache_ != nullptr && !meta.replicated;
  std::uint64_t old = 0;
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  CmdHeader cmd;
  cmd.op = Op::kAtomicAdd;
  cmd.flags = width == 4 ? kWidth4 : kWidth8;
  cmd.handle = h;
  cmd.offset = span.local_offset;
  cmd.token = task_token(task);
  cmd.aux1 = operand;
  cmd.aux2 = reinterpret_cast<std::uint64_t>(&old);
  emit(w.agg_slot(), span.node, cmd, nullptr);
  if (coherent) broadcast_inval(w, task_sink(task), h);
  w.task_block();  // atomics return the old value, so they always block
  if (coherent) cache_->invalidate(h);
  // Mirror the post-op value only when no op of this task failed: a
  // NODE_LOST atomic never executed, so `old` is not a real observation
  // and mirroring from it would corrupt the replica. (Conservative skips
  // are safe — the application-level retry re-applies against the
  // replica.)
  if (task->status.load(std::memory_order_acquire) == 0)
    mirror_value(w, task, h, meta, span, old + operand, width);
  return old;
}

void Node::op_atomic_add_nb(Worker& w, gmt_handle h, std::uint64_t offset,
                            std::uint64_t operand, std::uint32_t width) {
  GMT_CHECK_MSG(width == 4 || width == 8, "gmt atomic width must be 4 or 8");
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_atomic_add_nb outside task context");
  const ArrayMeta meta = gm_.meta(h);
  if (cache_ != nullptr && !meta.replicated) {
    // Coherent writes block on their invalidation round anyway, so the
    // fire-and-forget (and combinable) form buys nothing; degrade to the
    // blocking path, which runs the full protocol.
    (void)op_atomic_add(w, h, offset, operand, width);
    return;
  }
  OwnedSpan spans[2];
  std::size_t count = 0;
  meta.decompose_fill(offset, width, spans, 2, &count);
  const OwnedSpan& span = atomic_span(spans, count, offset, width);

  if (span.node == id_ && config_.local_fast_path) {
    std::uint64_t old;
    {
      GlobalMemory::AccessGuard guard(gm_);
      old = apply_atomic_add(gm_.get(h).local_ptr(span.local_offset), operand,
                             width);
    }
    stats_.local_ops.add();
    mirror_value(w, task, h, meta, span, old + operand, width);
    return;
  }
  if (meta.replicated) {
    // The buddy mirror needs the post-op value, which only the blocking
    // form observes; replicated arrays are small and rare, so degrade.
    (void)op_atomic_add(w, h, offset, operand, width);
    return;
  }
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  CmdHeader cmd;
  cmd.op = Op::kAtomicAdd;
  // kNoReply: the helper applies the add and acks with kPutAck — no old
  // value travels back, which is what makes same-key adds commutative and
  // therefore safe for the combining table (kCombine) to accumulate.
  cmd.flags = static_cast<std::uint8_t>((width == 4 ? kWidth4 : kWidth8) |
                                        kNoReply | kCombine);
  cmd.handle = h;
  cmd.offset = span.local_offset;
  cmd.token = task_token(task);
  cmd.aux1 = operand;
  emit(w.agg_slot(), span.node, cmd, nullptr);
}

std::uint64_t Node::op_atomic_cas(Worker& w, gmt_handle h,
                                  std::uint64_t offset, std::uint64_t expected,
                                  std::uint64_t desired, std::uint32_t width) {
  GMT_CHECK_MSG(width == 4 || width == 8, "gmt atomic width must be 4 or 8");
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_atomic_cas outside task context");
  const ArrayMeta meta = gm_.meta(h);
  OwnedSpan spans[2];
  std::size_t count = 0;
  meta.decompose_fill(offset, width, spans, 2, &count);
  const OwnedSpan& span = atomic_span(spans, count, offset, width);

  if (span.node == id_ && config_.local_fast_path) {
    std::uint64_t old;
    {
      GlobalMemory::AccessGuard guard(gm_);
      old = apply_atomic_cas(gm_.get(h).local_ptr(span.local_offset), expected,
                             desired, width);
    }
    stats_.local_ops.add();
    if (old == expected) mirror_value(w, task, h, meta, span, desired, width);
    if (cache_ != nullptr && !meta.replicated) {
      broadcast_inval(w, task_sink(task), h);
      w.task_block();
      cache_->invalidate(h);
    }
    return old;
  }
  const bool coherent = cache_ != nullptr && !meta.replicated;
  std::uint64_t old = 0;
  const std::uint64_t result_addr = reinterpret_cast<std::uint64_t>(&old);
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  CmdHeader cmd;
  cmd.op = Op::kAtomicCas;
  cmd.flags = width == 4 ? kWidth4 : kWidth8;
  cmd.handle = h;
  cmd.offset = span.local_offset;
  cmd.token = task_token(task);
  cmd.aux1 = expected;
  cmd.aux2 = desired;
  cmd.payload_size = sizeof(result_addr);
  emit(w.agg_slot(), span.node, cmd, &result_addr);
  if (coherent) broadcast_inval(w, task_sink(task), h);
  w.task_block();
  if (coherent) cache_->invalidate(h);
  // Mirror only a successful swap, and only when nothing failed (see
  // op_atomic_add).
  if (old == expected && task->status.load(std::memory_order_acquire) == 0)
    mirror_value(w, task, h, meta, span, desired, width);
  return old;
}

// ------------------------------------------------------------- futures --

::gmt::Future Node::op_get_f(Worker& w, gmt_handle h, std::uint64_t offset,
                             void* data, std::uint64_t size) {
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_get_f outside task context");
  const ArrayMeta meta = gm_.meta(h);
  // Single-line requests interact with the cache: a hit resolves
  // immediately (the already-resolved null future makes the caller's
  // wait() a no-op); a miss arms a deferred install so the fetched bytes
  // warm the cache at resolution. Multi-line requests skip both —
  // assembling partial hits would complicate the fast path for little
  // gain.
  const std::uint64_t line = offset / SwCache::kLineBytes;
  const auto line_off =
      static_cast<std::uint32_t>(offset % SwCache::kLineBytes);
  const bool single_line =
      cache_ != nullptr && !meta.replicated && !meta.degraded && size > 0 &&
      line_off + size <= SwCache::kLineBytes;
  if (single_line && cache_->lookup(h, line, line_off,
                                    static_cast<std::uint32_t>(size), data))
    return ::gmt::Future{};
  FutureCell* cell = w.acquire_future_cell();
  const ::gmt::Future f{future_token(cell)};
  stats_.futures_issued.add();
  if (obs::trace_on()) obs::trace_instant("future.issue", f.token);
  if (single_line) {
    // Arm the install only for a clean one-span remote fetch from a live
    // owner — the same conditions under which the blocking miss path would
    // install. Epoch snapshot BEFORE the fetch is issued.
    OwnedSpan span;
    std::size_t count = 0;
    const std::uint64_t covered =
        meta.decompose_fill(offset, size, &span, 1, &count);
    if (covered == size && count == 1 &&
        !(span.node == id_ && config_.local_fast_path) &&
        node_is_live(span.node)) {
      cell->install_handle = h;
      cell->install_line = line;
      cell->install_start = line_off;
      cell->install_len = static_cast<std::uint32_t>(size);
      cell->install_epoch = cache_->epoch(h);
      cell->install_src = data;
    }
  }
  do_get(w, future_sink(cell), h, offset, data, size, meta);
  return f;
}

::gmt::Future Node::op_put_f(Worker& w, gmt_handle h, std::uint64_t offset,
                             const void* data, std::uint64_t size) {
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_put_f outside task context");
  const ArrayMeta meta = gm_.meta(h);
  if (meta.replicated) {
    // Replica mirroring needs the blocking machinery; replicated arrays
    // are small control state, so a future buys nothing here.
    op_put(w, h, offset, data, size, /*blocking=*/true);
    return ::gmt::Future{};
  }
  FutureCell* cell = w.acquire_future_cell();
  const ::gmt::Future f{future_token(cell)};
  stats_.futures_issued.add();
  if (obs::trace_on()) obs::trace_instant("future.issue", f.token);
  do_put(w, task, future_sink(cell), h, offset, data, size, meta);
  if (cache_ != nullptr) {
    // Self-invalidation must wait for completion (an issue-time sweep
    // would let a concurrent reader re-install pre-write data); park the
    // handle on the cell and let consume_future run the sweep.
    cell->inval_handle = h;
    broadcast_inval(w, future_sink(cell), h);
  }
  return f;
}

::gmt::Future Node::op_atomic_add_f(Worker& w, gmt_handle h,
                                    std::uint64_t offset,
                                    std::uint64_t operand,
                                    std::uint64_t* old_out,
                                    std::uint32_t width) {
  GMT_CHECK_MSG(width == 4 || width == 8, "gmt atomic width must be 4 or 8");
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_atomic_add_f outside task context");
  const ArrayMeta meta = gm_.meta(h);
  if (meta.replicated) {
    *old_out = op_atomic_add(w, h, offset, operand, width);
    return ::gmt::Future{};
  }
  OwnedSpan spans[2];
  std::size_t count = 0;
  meta.decompose_fill(offset, width, spans, 2, &count);
  const OwnedSpan& span = atomic_span(spans, count, offset, width);

  if (span.node == id_ && config_.local_fast_path) {
    {
      GlobalMemory::AccessGuard guard(gm_);
      *old_out = apply_atomic_add(gm_.get(h).local_ptr(span.local_offset),
                                  operand, width);
    }
    stats_.local_ops.add();
    if (cache_ == nullptr) return ::gmt::Future{};
    // The add itself is done; the future tracks only the invalidation
    // round so wait() gives the same "no cache serves stale data" point
    // the blocking form does.
    FutureCell* cell = w.acquire_future_cell();
    const ::gmt::Future f{future_token(cell)};
    stats_.futures_issued.add();
    if (obs::trace_on()) obs::trace_instant("future.issue", f.token);
    cell->inval_handle = h;
    broadcast_inval(w, future_sink(cell), h);
    return f;
  }
  FutureCell* cell = w.acquire_future_cell();
  const ::gmt::Future f{future_token(cell)};
  stats_.futures_issued.add();
  if (obs::trace_on()) obs::trace_instant("future.issue", f.token);
  *old_out = 0;
  cell->pending.fetch_add(1, std::memory_order_relaxed);
  CmdHeader cmd;
  cmd.op = Op::kAtomicAdd;
  cmd.flags = width == 4 ? kWidth4 : kWidth8;
  cmd.handle = h;
  cmd.offset = span.local_offset;
  cmd.token = future_token(cell);
  cmd.aux1 = operand;
  cmd.aux2 = reinterpret_cast<std::uint64_t>(old_out);
  emit(w.agg_slot(), span.node, cmd, nullptr);
  if (cache_ != nullptr) {
    cell->inval_handle = h;
    broadcast_inval(w, future_sink(cell), h);
  }
  return f;
}

// -------------------------------------------------------- waits/parfor --

void Node::op_wait_commands(Worker& w) {
  GMT_CHECK_MSG(w.current_task() != nullptr,
                "gmt_wait_commands outside task context");
  w.task_block();
}

void Node::op_parfor(Worker& w, std::uint64_t iterations, std::uint64_t chunk,
                     TaskFn fn, const void* args, std::size_t args_size,
                     Spawn policy) {
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_parfor outside task context");
  GMT_CHECK_MSG(args_size <= max_payload(), "gmt_parfor args too large");
  if (iterations == 0) return;

  // Split [0, iterations) into per-node shares.
  struct Share {
    std::uint32_t node;
    std::uint64_t begin;
    std::uint64_t count;
  };
  std::vector<Share> shares;
  const auto split = [&](const std::vector<std::uint32_t>& nodes) {
    const auto n = static_cast<std::uint64_t>(nodes.size());
    const std::uint64_t per = (iterations + n - 1) / n;
    std::uint64_t begin = 0;
    for (std::uint32_t node : nodes) {
      if (begin >= iterations) break;
      const std::uint64_t count =
          per < iterations - begin ? per : iterations - begin;
      shares.push_back(Share{node, begin, count});
      begin += count;
    }
  };
  switch (policy) {
    case Spawn::kLocal:
      shares.push_back(Share{id_, 0, iterations});
      break;
    case Spawn::kPartition: {
      // Shares go to the current membership only: after an epoch change a
      // parfor redistributes over the survivors instead of silently losing
      // the dead node's iterations. (Self is always live.)
      std::vector<std::uint32_t> nodes;
      for (std::uint32_t n = 0; n < num_nodes_; ++n)
        if (n == id_ || node_is_live(n)) nodes.push_back(n);
      split(nodes);
      break;
    }
    case Spawn::kRemote: {
      std::vector<std::uint32_t> nodes;
      for (std::uint32_t n = 0; n < num_nodes_; ++n)
        if ((n != id_ || num_nodes_ == 1) && node_is_live(n))
          nodes.push_back(n);
      if (nodes.empty()) nodes.push_back(id_);  // all remotes dead: degrade
      split(nodes);
      break;
    }
  }

  for (const Share& share : shares) {
    if (share.node != id_ && !node_is_live(share.node)) {
      // Lost compute must be visible, not silent: latch NODE_LOST on the
      // spawning task (first error wins) and skip the share.
      std::uint32_t expected = 0;
      task->status.compare_exchange_strong(expected, GMT_ERR_NODE_LOST,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed);
      continue;
    }
    // Default chunk: enough tasks to keep every worker multithreaded
    // without flooding the task queues.
    std::uint64_t effective_chunk = chunk;
    if (effective_chunk == 0) {
      const std::uint64_t target_tasks =
          static_cast<std::uint64_t>(config_.num_workers) * 16;
      effective_chunk = share.count / (target_tasks ? target_tasks : 1);
      if (effective_chunk == 0) effective_chunk = 1;
    }
    task->pending_ops.fetch_add(1, std::memory_order_relaxed);
    if (share.node == id_) {
      IterBlock* itb = acquire_itb();
      itb->fn = fn;
      itb->chunk = effective_chunk;
      itb->begin = share.begin;
      itb->end = share.begin + share.count;
      itb->next.store(itb->begin, std::memory_order_relaxed);
      itb->origin_node = id_;
      itb->token = task_token(task);
      itb->set_args(args, args_size);
      GMT_CHECK_MSG(itbs_.push(itb), "itb queue overflow");
    } else {
      CmdHeader cmd;
      cmd.op = Op::kSpawn;
      cmd.handle = reinterpret_cast<std::uint64_t>(fn);
      cmd.offset = effective_chunk;
      cmd.aux1 = share.begin;
      cmd.aux2 = share.count;
      cmd.token = task_token(task);
      cmd.payload_size = static_cast<std::uint32_t>(args_size);
      emit(w.agg_slot(), share.node, cmd, args);
    }
  }
  // The calling task suspends until all iterations complete (paper §III-B).
  w.task_block();
}

void Node::op_execute_on(Worker& w, std::uint32_t target, TaskFn fn,
                         const void* args, std::size_t args_size) {
  Task* task = w.current_task();
  GMT_CHECK_MSG(task != nullptr, "gmt_on outside task context");
  GMT_CHECK_MSG(target < num_nodes_, "gmt_on target out of range");
  GMT_CHECK_MSG(args_size <= max_payload(), "gmt_on args too large");
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  if (target == id_) {
    IterBlock* itb = acquire_itb();
    itb->fn = fn;
    itb->chunk = 1;
    itb->begin = 0;
    itb->end = 1;
    itb->origin_node = id_;
    itb->token = task_token(task);
    itb->set_args(args, args_size);
    GMT_CHECK_MSG(itbs_.push(itb), "itb queue overflow");
  } else {
    CmdHeader cmd;
    cmd.op = Op::kSpawn;
    cmd.handle = reinterpret_cast<std::uint64_t>(fn);
    cmd.offset = 1;  // chunk
    cmd.aux1 = 0;
    cmd.aux2 = 1;  // one iteration
    cmd.token = task_token(task);
    cmd.payload_size = static_cast<std::uint32_t>(args_size);
    emit(w.agg_slot(), target, cmd, args);
  }
  w.task_block();
}

void Node::spawn_root(TaskFn fn, const void* args, std::size_t args_size,
                      Task* root) {
  IterBlock* itb = acquire_itb();
  itb->fn = fn;
  itb->chunk = 1;
  itb->begin = 0;
  itb->end = 1;
  itb->origin_node = id_;
  itb->token = task_token(root);
  itb->set_args(args, args_size);
  root->pending_ops.fetch_add(1, std::memory_order_relaxed);
  GMT_CHECK_MSG(itbs_.push(itb), "itb queue overflow");
}

void Node::report_spawn_done(Worker& w, IterBlock* itb) {
  const std::uint32_t status = itb->status.load(std::memory_order_acquire);
  if (itb->origin_node == id_) {
    if (status != 0)
      complete_one_error(itb->token, status);
    else
      complete_one(itb->token);
  } else {
    CmdHeader cmd;
    cmd.op = Op::kSpawnDone;
    cmd.token = itb->token;
    cmd.aux1 = itb->total();
    cmd.aux2 = status;  // first child error, 0 when the block was clean
    emit(w.agg_slot(), itb->origin_node, cmd, nullptr);
  }
  release_itb(itb);
}

}  // namespace gmt::rt
