// Reliable-delivery protocol between communication servers.
//
// The completion protocol (paper §IV) assumes MPI-grade delivery: nothing
// lost, nothing duplicated, per-pair ordered. ReliableChannel provides that
// guarantee over an arbitrary Transport: every outgoing aggregation buffer
// becomes a CRC-framed data frame with a per-(src,dst) sequence number; the
// receiver verifies integrity, suppresses duplicates through a per-source
// sequence window, buffers out-of-order arrivals, and acks cumulatively —
// piggybacked on reverse-direction data frames or as standalone ack frames
// after a short delay. The sender keeps each frame until acked and
// retransmits on timeout with exponential backoff, surfacing a hard error
// once the retry budget is exhausted instead of letting a blocked worker
// hang forever.
//
// Single-threaded by construction: owned and driven only by the node's
// communication server. Stats are registry-backed (sharded atomics), so
// stats readers may observe them concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"
#include "common/config.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace gmt::rt {

// Per-peer health as seen by the reliability layer. The channel records the
// raw signals (last valid frame heard, consecutive retransmissions without
// an ack); the membership layer turns them into suspicion and death.
enum class PeerState : std::uint8_t {
  kLive = 0,
  kSuspect = 1,  // retry budget exhausted or silence past the threshold
  kDead = 2,     // excluded by a membership epoch; all state purged
};

struct PeerHealthSnapshot {
  PeerState state = PeerState::kLive;
  std::uint64_t last_heard_ns = 0;  // 0 = never heard from
  std::uint32_t consec_timeouts = 0;
};

// Registry-backed reliability/wire counters. Unbound handles drop writes,
// so protocol tests that drive a standalone channel either bind() to their
// own registry or read nothing. Acked-frame count and summed first-send->
// ack latency live in the ack_latency_ns histogram (count/sum).
struct ReliabilityStats {
  obs::Counter data_frames_sent;   // first transmissions
  obs::Counter retransmits;        // timeout-driven resends
  obs::Counter acks_sent;          // standalone ack frames
  obs::Counter crc_drops;          // frames failing validation
  obs::Counter dup_suppressed;     // duplicate data frames discarded
  obs::Counter out_of_order_held;  // frames buffered awaiting a gap fill
  obs::Histogram ack_latency_ns;   // first send -> cumulative ack, per frame
  // Transport-level sends (every successful send(): data, retransmit, ack
  // — and raw buffers on the unreliable path, counted by the comm server).
  obs::Counter wire_messages;
  obs::Counter wire_bytes;

  void bind(obs::Registry& reg);
};

// Aggregation-layer hook for credit-based flow control. Credit grants ride
// the reliability protocol: the channel stamps outgoing_credit() into every
// frame it transmits toward a peer (data and acks alike) and reports every
// peer-advertised value through incoming_credit(); when a grant has no
// frame to ride (traffic toward the peer dried up — exactly the starved
// case), a standalone ack is scheduled to carry it. Null tap = flow control
// off: frames carry credit 0 and adverts are ignored, at zero added cost.
class FlowTap {
 public:
  virtual ~FlowTap() = default;
  // Cumulative count (mod 2^16) of `peer`'s buffers this node has drained.
  virtual std::uint16_t outgoing_credit(std::uint32_t peer) = 0;
  // `peer` advertised the cumulative count of our buffers it has drained.
  virtual void incoming_credit(std::uint32_t peer,
                               std::uint16_t cumulative) = 0;
};

class ReliableChannel {
 public:
  ReliableChannel(const Config& config, net::Transport* transport,
                  ReliabilityStats* stats, FlowTap* flow = nullptr);

  // Takes ownership of a frame buffer whose payload starts at
  // net::kFrameHeaderSize (the aggregation layer reserves the prefix),
  // assigns the next sequence number for `dst` and queues it. The channel
  // retains the frame until the peer acks it.
  void submit(std::uint32_t dst, std::vector<std::uint8_t>&& frame);

  // Drives transmission: first sends, expired retransmissions, due
  // standalone acks. Returns true when any frame moved.
  bool pump(std::uint64_t now_ns);

  // Ingests one raw transport message. Valid in-order data payloads are
  // appended to `deliverable` (frame header stripped, ready for helpers).
  void on_message(net::InMessage&& msg, std::uint64_t now_ns,
                  std::deque<net::InMessage>* deliverable);

  // Makes every pending ack eligible to send on the next pump (used at
  // shutdown so peers are not kept retransmitting against the ack delay).
  void force_acks();

  // True when nothing is unacked or pending on the send side and no ack is
  // owed on the receive side.
  bool quiescent() const;

  // Wall time of the last validly received frame (0 if none yet): the
  // comm server's shutdown grace timer.
  std::uint64_t last_recv_ns() const { return last_recv_ns_; }

  // ---- failure detection hooks (driven by the membership layer) ----

  // Recoverable retry-budget exhaustion: instead of aborting, the channel
  // marks the peer suspect, suspends transmissions toward it, and invokes
  // this callback once (comm-server thread). Unset = historical abort.
  void set_suspect_callback(std::function<void(std::uint32_t)> cb) {
    suspect_ = std::move(cb);
  }

  // Silence-based suspicion (detector decision): suspends transmissions to
  // `peer` until the membership layer resolves it. Idempotent.
  void note_suspect(std::uint32_t peer);

  // Fail-stop exclusion: drops every unacked frame, held out-of-order
  // arrival and owed ack for `peer`; future submits toward it are discarded
  // and frames from it ignored. Returns the number of unacked data frames
  // dropped. Idempotent.
  std::size_t purge_peer(std::uint32_t peer);

  // Sends a standalone heartbeat to `peer` carrying the current cumulative
  // ack and credit. Returns false on transport backpressure.
  bool send_heartbeat(std::uint32_t peer, std::uint64_t now_ns);

  // Sends a fire-and-forget membership control frame (kEpochPropose /
  // kEpochAck). Not retransmitted by the channel: the membership layer
  // rebroadcasts until acknowledged. Returns false on backpressure.
  bool send_control(std::uint32_t dst, net::FrameType type,
                    const net::EpochPayload& payload);

  // Control-frame sink: the channel validates and strips membership frames
  // and hands {src, type, payload} here (comm-server thread).
  void set_control_sink(
      std::function<void(std::uint32_t, net::FrameType,
                         const net::EpochPayload&)> sink) {
    control_ = std::move(sink);
  }

  // Health readbacks (any thread).
  PeerHealthSnapshot health(std::uint32_t peer) const;
  bool peer_dead(std::uint32_t peer) const {
    return health_[peer].state.load(std::memory_order_acquire) ==
           PeerState::kDead;
  }
  // Wall time of the last transmission toward `peer` (heartbeat pacing).
  std::uint64_t last_tx_ns(std::uint32_t peer) const {
    return health_[peer].last_tx_ns.load(std::memory_order_relaxed);
  }

 private:
  struct Unacked {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> frame;  // sealed; kept until acked
    std::vector<std::uint8_t> tx;     // in-flight copy after backpressure
    std::uint64_t first_send_ns = 0;
    std::uint64_t next_retx_ns = 0;
    std::uint64_t rto_ns = 0;
    std::uint32_t attempts = 0;
  };
  struct PeerSend {
    std::uint64_t next_seq = 1;
    std::deque<Unacked> window;  // seq order: pending + unacked
  };
  struct PeerRecv {
    std::uint64_t expect = 1;  // next in-order sequence number
    std::map<std::uint64_t, std::vector<std::uint8_t>> held;  // out-of-order
    bool ack_due = false;
    bool ack_immediate = false;  // dup seen: re-ack without delay
    std::uint64_t ack_due_since_ns = 0;
    // Last credit value stamped on a frame toward this peer; a fresh
    // outgoing_credit() makes an ack due so the grant is never stranded.
    std::uint16_t credit_advertised = 0;
  };

  // Signals are written by the comm-server thread; stats readers poll them
  // concurrently, hence atomics.
  struct PeerHealth {
    std::atomic<PeerState> state{PeerState::kLive};
    std::atomic<std::uint64_t> last_heard_ns{0};
    std::atomic<std::uint64_t> last_tx_ns{0};
    std::atomic<std::uint32_t> consec_timeouts{0};
  };

  bool pump_sends(std::uint32_t dst, std::uint64_t now_ns);
  bool pump_acks(std::uint32_t src, std::uint64_t now_ns);
  void process_ack(std::uint32_t src, std::uint64_t ack, std::uint64_t now_ns);
  void deliver(std::uint32_t src, std::vector<std::uint8_t>&& frame,
               std::deque<net::InMessage>* deliverable);
  void mark_suspect(std::uint32_t peer);

  const Config config_;
  net::Transport* transport_;
  ReliabilityStats* stats_;
  FlowTap* flow_;
  std::vector<PeerSend> send_;
  std::vector<PeerRecv> recv_;
  std::unique_ptr<PeerHealth[]> health_;
  std::function<void(std::uint32_t)> suspect_;
  std::function<void(std::uint32_t, net::FrameType, const net::EpochPayload&)>
      control_;
  std::uint64_t last_recv_ns_ = 0;
};

}  // namespace gmt::rt
