// Deterministic string workload for CHMA (paper §V-D: "a pool of 100
// million strings with at most 20 characters each").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gmt::hash {

// Fixed-size string record: length byte + up to 23 chars, 24 bytes total,
// trivially copyable so it moves through gmt_put/gmt_get and hash slots.
struct StringKey {
  std::uint8_t length = 0;
  char chars[23] = {};

  bool operator==(const StringKey& other) const;

  std::string to_string() const { return std::string(chars, length); }
  static StringKey from_string(const char* s, std::size_t n);

  // In-place character reversal (the paper's step-3 mutation).
  void reverse();
};
static_assert(sizeof(StringKey) == 24);

// FNV-1a over the record's significant bytes; never returns 0 (0 is the
// hash map's empty-slot marker).
std::uint64_t hash_key(const StringKey& key);

// Deterministic pool of random lowercase strings, lengths 4..20.
std::vector<StringKey> generate_pool(std::uint64_t count, std::uint64_t seed);

}  // namespace gmt::hash
