#include "hash/string_pool.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gmt::hash {

bool StringKey::operator==(const StringKey& other) const {
  return length == other.length &&
         std::memcmp(chars, other.chars, length) == 0;
}

StringKey StringKey::from_string(const char* s, std::size_t n) {
  GMT_CHECK(n <= sizeof(StringKey::chars));
  StringKey key;
  key.length = static_cast<std::uint8_t>(n);
  std::memcpy(key.chars, s, n);
  return key;
}

void StringKey::reverse() { std::reverse(chars, chars + length); }

std::uint64_t hash_key(const StringKey& key) {
  std::uint64_t h = 1469598103934665603ULL;
  h = (h ^ key.length) * 1099511628211ULL;
  for (std::uint8_t i = 0; i < key.length; ++i)
    h = (h ^ static_cast<std::uint8_t>(key.chars[i])) * 1099511628211ULL;
  return h ? h : 1;
}

std::vector<StringKey> generate_pool(std::uint64_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<StringKey> pool;
  pool.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    StringKey key;
    key.length = static_cast<std::uint8_t>(4 + rng.below(17));  // 4..20
    for (std::uint8_t c = 0; c < key.length; ++c)
      key.chars[c] = static_cast<char>('a' + rng.below(26));
    pool.push_back(key);
  }
  return pool;
}

}  // namespace gmt::hash
