// Distributed open-addressing hash map over a GMT global array.
//
// The CHMA kernel's data structure: fixed-size slots block-distributed
// across nodes, linear probing, CAS-based slot claiming. A slot is 32
// bytes: an 8-byte tag (0 = empty, otherwise the key's hash) followed by a
// 24-byte StringKey. Insertion claims the tag with gmt_atomic_cas and then
// writes the key; lookups probe tags and confirm with a key read.
//
// Concurrency semantics (synthetic-workload grade, like the paper's CHMA):
// inserts of distinct keys linearise on the tag CAS; a lookup racing the
// insert of the *same* key may miss it (tag visible before key bytes). The
// kernels never depend on that window.
#pragma once

#include <cstdint>
#include <optional>

#include "gmt/gmt.hpp"
#include "hash/string_pool.hpp"

namespace gmt::hash {

// Trivially copyable: passed through gmt_parfor argument buffers.
struct DistHashMap {
  gmt_handle slots = kNullHandle;
  std::uint64_t capacity = 0;  // number of slots (power of two)

  static constexpr std::uint64_t kSlotBytes = 32;

  // Allocates a map with at least `min_capacity` slots (inside a task).
  static DistHashMap create(std::uint64_t min_capacity);
  void destroy();

  // Inserts (or re-inserts) a key. Returns false when the table is full
  // (probed every slot) — callers treat that as workload exhaustion.
  bool insert(const StringKey& key) const;

  // True if the key is present.
  bool contains(const StringKey& key) const;

  // Removes a key by tombstoning is *not* provided: the paper's CHMA only
  // inserts and looks up; removal would need tombstone handling in probes.

  // Number of occupied slots (O(capacity); test/debug use).
  std::uint64_t count_occupied() const;

 private:
  std::uint64_t slot_offset(std::uint64_t index) const {
    return index * kSlotBytes;
  }
};

}  // namespace gmt::hash
