#include "hash/dist_hash_map.hpp"

#include "common/assert.hpp"

namespace gmt::hash {

DistHashMap DistHashMap::create(std::uint64_t min_capacity) {
  std::uint64_t capacity = 1;
  while (capacity < min_capacity) capacity <<= 1;
  DistHashMap map;
  map.capacity = capacity;
  map.slots = gmt_new(capacity * kSlotBytes, Alloc::kPartition);
  return map;
}

void DistHashMap::destroy() {
  if (slots != kNullHandle) gmt_free(slots);
  slots = kNullHandle;
  capacity = 0;
}

bool DistHashMap::insert(const StringKey& key) const {
  const std::uint64_t hash = hash_key(key);
  const std::uint64_t mask = capacity - 1;
  for (std::uint64_t probe = 0; probe < capacity; ++probe) {
    const std::uint64_t index = (hash + probe) & mask;
    const std::uint64_t base = slot_offset(index);
    const std::uint64_t tag = gmt_atomic_cas(slots, base, 0, hash, 8);
    if (tag == 0) {
      // Claimed an empty slot: land the key bytes.
      gmt_put(slots, base + 8, &key, sizeof(StringKey));
      return true;
    }
    if (tag == hash) {
      // Same hash: identical key (already present) or a collision.
      StringKey existing;
      gmt_get(slots, base + 8, &existing, sizeof(StringKey));
      if (existing == key) return true;
    }
  }
  return false;  // table full
}

bool DistHashMap::contains(const StringKey& key) const {
  const std::uint64_t hash = hash_key(key);
  const std::uint64_t mask = capacity - 1;
  for (std::uint64_t probe = 0; probe < capacity; ++probe) {
    const std::uint64_t index = (hash + probe) & mask;
    const std::uint64_t base = slot_offset(index);
    std::uint64_t tag = 0;
    gmt_get(slots, base, &tag, 8);
    if (tag == 0) return false;
    if (tag == hash) {
      StringKey existing;
      gmt_get(slots, base + 8, &existing, sizeof(StringKey));
      if (existing == key) return true;
    }
  }
  return false;
}

std::uint64_t DistHashMap::count_occupied() const {
  std::uint64_t occupied = 0;
  for (std::uint64_t index = 0; index < capacity; ++index) {
    std::uint64_t tag = 0;
    gmt_get(slots, slot_offset(index), &tag, 8);
    if (tag != 0) ++occupied;
  }
  return occupied;
}

}  // namespace gmt::hash
