// Bounded multi-producer multi-consumer queue (Vyukov's array queue).
//
// This is the paper's "aggregation queue": all workers and helpers of a node
// concurrently push filled command blocks for one destination, and whichever
// thread triggers aggregation concurrently pops them. Each slot carries a
// sequence number; producers and consumers claim slots with a single CAS on
// a ticket counter, so the queue is non-blocking and linearisable per
// operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/cacheline.hpp"

namespace gmt {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : capacity_(round_up_pow2(capacity ? capacity : 1)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i)
      slots_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  // Returns false when full.
  bool push(T item) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          slot.value = std::move(item);
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  // Returns false when empty.
  bool pop(T* out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          *out = std::move(slot.value);
          slot.sequence.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  std::size_t capacity() const { return capacity_; }

  // Approximate occupancy (exact only at quiescence).
  std::size_t size_approx() const {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq >= deq ? enq - deq : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence;
    T value;
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;

  alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace gmt
