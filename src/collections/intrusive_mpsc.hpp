// Intrusive multi-producer single-consumer stack (Treiber stack).
//
// The worker wake-list: helper threads (and peer workers reporting spawn
// completions) push tasks whose pending_ops just drained to zero; the owning
// worker drains the whole list with one exchange per scheduling pass. Being
// intrusive, a push is one CAS and zero allocations — exactly what the
// completion path needs to stay allocation-free. Each node may be on at most
// one stack at a time (enforced by the caller's parked-flag handshake).
#pragma once

#include <atomic>

namespace gmt {

template <typename T>
class IntrusiveMpscStack {
 public:
  IntrusiveMpscStack() = default;
  IntrusiveMpscStack(const IntrusiveMpscStack&) = delete;
  IntrusiveMpscStack& operator=(const IntrusiveMpscStack&) = delete;

  // Multi-producer push; wait-free except for CAS retries under contention.
  void push(T* node) {
    T* head = head_.load(std::memory_order_relaxed);
    do {
      node->wake_next = head;
    } while (!head_.compare_exchange_weak(head, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  // Single-consumer: detaches the whole stack and returns it in FIFO order
  // (pushes are LIFO; the reversal restores rough arrival order so early
  // completions resume first). Null when empty.
  T* drain_fifo() {
    T* node = head_.exchange(nullptr, std::memory_order_acquire);
    T* fifo = nullptr;
    while (node != nullptr) {
      T* next = node->wake_next;
      node->wake_next = fifo;
      fifo = node;
      node = next;
    }
    return fifo;
  }

  bool empty_approx() const {
    return head_.load(std::memory_order_relaxed) == nullptr;
  }

 private:
  std::atomic<T*> head_{nullptr};
};

}  // namespace gmt
