// Bounded single-producer single-consumer ring buffer.
//
// This is the paper's "channel queue": the high-throughput SPSC queue
// through which exactly one worker (or helper) hands filled aggregation
// buffers to the single communication server, and through which the comm
// server returns drained buffers. Head and tail live on separate cache
// lines; each side caches the opposite index to avoid coherence traffic on
// the fast path (classic Lamport queue with index caching).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "common/cacheline.hpp"

namespace gmt {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(round_up_pow2(capacity ? capacity : 1)),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when full.
  bool push(T item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool pop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side emptiness probe (exact for the consumer, a hint for
  // anyone else).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return capacity_; }

  // Approximate occupancy; safe from any thread, exact only at quiescence.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        // consumer-owned
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer
  alignas(kCacheLine) std::size_t head_cache_ = 0;        // producer-owned
};

}  // namespace gmt
