// Fixed-population lock-free object pools.
//
// The paper recycles command blocks and aggregation buffers from
// pre-allocated pools "for performance reasons" (no allocation on the
// command path). ObjectPool owns all objects for its lifetime and hands out
// raw pointers through a Vyukov MPMC freelist; acquire() fails (nullptr)
// under exhaustion so callers can apply backpressure instead of allocating.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "collections/mpmc_queue.hpp"
#include "common/assert.hpp"
#include "common/backoff.hpp"

namespace gmt {

template <typename T>
class ObjectPool {
 public:
  // Constructs `population` objects, each built with `args...`.
  template <typename... Args>
  explicit ObjectPool(std::size_t population, Args&&... args)
      : population_(population), freelist_(population) {
    storage_.reserve(population);
    for (std::size_t i = 0; i < population; ++i) {
      storage_.push_back(std::make_unique<T>(args...));
      GMT_CHECK(freelist_.push(storage_.back().get()));
    }
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  // nullptr when the pool is exhausted.
  T* try_acquire() {
    T* obj = nullptr;
    freelist_.pop(&obj);
    return obj;
  }

  void release(T* obj) {
    GMT_DCHECK(obj != nullptr);
    // A Vyukov queue's push can fail *transiently* when the queue is
    // near-full while concurrent pops are mid-flight (the popped slot's
    // sequence is not yet republished). With a fixed population the queue
    // can never be genuinely full at a release, so retry; a genuine
    // over-release (a real bug) would spin forever, caught by the bounded
    // check below.
    Backoff backoff;
    for (std::uint32_t attempt = 0; !freelist_.push(obj); ++attempt) {
      GMT_CHECK_MSG(attempt < 1u << 24, "pool released more than acquired");
      backoff.pause();
    }
  }

  std::size_t population() const { return population_; }

  // Number of objects currently in the freelist; equals population() at
  // quiescence — the leak-detection invariant tests assert on.
  std::size_t available_approx() const { return freelist_.size_approx(); }

 private:
  const std::size_t population_;
  std::vector<std::unique_ptr<T>> storage_;
  MpmcQueue<T*> freelist_;
};

// RAII guard returning an object to its pool on scope exit.
template <typename T>
class PoolGuard {
 public:
  PoolGuard(ObjectPool<T>& pool, T* obj) : pool_(&pool), obj_(obj) {}
  ~PoolGuard() {
    if (obj_) pool_->release(obj_);
  }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;
  PoolGuard(PoolGuard&& other) noexcept
      : pool_(other.pool_), obj_(std::exchange(other.obj_, nullptr)) {}

  T* get() const { return obj_; }
  T* operator->() const { return obj_; }
  explicit operator bool() const { return obj_ != nullptr; }

  // Detaches ownership (e.g., when the object is handed to another thread).
  T* detach() { return std::exchange(obj_, nullptr); }

 private:
  ObjectPool<T>* pool_;
  T* obj_;
};

}  // namespace gmt
