// Single-threaded growable ring buffer.
//
// The worker's ready queue: push_back/pop_front are pointer stores plus a
// mask — no deque block allocation, no branchy iterator machinery on the
// per-task scheduling path. Capacity doubles on demand (amortised O(1));
// steady state never allocates because the ring only ever holds up to the
// worker's resident-task cap.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

namespace gmt {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t initial_capacity = 16)
      : capacity_(round_up_pow2(initial_capacity ? initial_capacity : 1)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  void push_back(T item) {
    if (size_ == capacity_) grow();
    slots_[(head_ + size_) & mask_] = std::move(item);
    ++size_;
  }

  bool pop_front(T* out) {
    if (size_ == 0) return false;
    *out = std::move(slots_[head_ & mask_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void grow() {
    const std::size_t new_capacity = capacity_ * 2;
    auto new_slots = std::make_unique<T[]>(new_capacity);
    for (std::size_t i = 0; i < size_; ++i)
      new_slots[i] = std::move(slots_[(head_ + i) & mask_]);
    slots_ = std::move(new_slots);
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
    head_ = 0;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<T[]> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gmt
