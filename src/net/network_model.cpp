#include "net/network_model.hpp"

namespace gmt::net {

NetworkModel NetworkModel::olympus() { return NetworkModel{}; }

NetworkModel NetworkModel::instant() {
  NetworkModel m;
  m.alpha_s = 0;
  m.bandwidth_Bps = 1e18;
  m.latency_s = 0;
  return m;
}

double MpiEndpointModel::aggregate_rate_Bps(std::uint64_t bytes) const {
  // Two serial resources bound the rate. (1) The NIC: one message every
  // alpha + wire seconds regardless of how many ranks feed it — QDR's
  // message-rate ceiling is what pins the paper's 9.63 MB/s at 16 B and
  // 72.26 MB/s at 128 B with 32 processes (~0.6 M msgs/s either way).
  // (2) The sender software: each rank needs sender_sw + alpha + wire per
  // message, parallelised across processes; threads inside one rank add a
  // library-lock serialisation instead of parallelism — which is why the
  // threaded rows of Table II stay low.
  const double wire_s = static_cast<double>(bytes) / link.bandwidth_Bps;
  const double lock_s =
      threads > 1 ? thread_lock_penalty * static_cast<double>(threads) : 0.0;
  const double nic_interval_s = link.alpha_s + wire_s;
  const double sender_interval_s =
      (sender_sw_s + lock_s + link.alpha_s + wire_s) /
      static_cast<double>(processes > 0 ? processes : 1);
  const double interval_s =
      sender_interval_s > nic_interval_s ? sender_interval_s
                                         : nic_interval_s;
  return static_cast<double>(bytes) / interval_s;
}

}  // namespace gmt::net
