#include "net/inproc_transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace gmt::net {

InprocFabric::InprocFabric(std::uint32_t num_nodes, NetworkModel model,
                           std::size_t ring_capacity)
    : num_nodes_(num_nodes),
      model_(model),
      link_free_ns_(static_cast<std::size_t>(num_nodes) * num_nodes) {
  GMT_CHECK(num_nodes >= 1);
  rings_.reserve(static_cast<std::size_t>(num_nodes) * num_nodes);
  for (std::size_t i = 0; i < static_cast<std::size_t>(num_nodes) * num_nodes;
       ++i) {
    rings_.push_back(std::make_unique<Ring>(ring_capacity));
    link_free_ns_[i].store(0, std::memory_order_relaxed);
  }
  endpoints_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    endpoints_.push_back(
        std::unique_ptr<InprocEndpoint>(new InprocEndpoint(this, i)));
}

InprocFabric::~InprocFabric() {
  // Drain undelivered messages so their heap payloads are reclaimed.
  for (auto& ring : rings_) {
    TimedMessage* msg = nullptr;
    while (ring->pop(&msg)) delete msg;
  }
}

InprocEndpoint* InprocFabric::endpoint(std::uint32_t id) {
  GMT_CHECK(id < num_nodes_);
  return endpoints_[id].get();
}

std::uint64_t InprocFabric::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep->bytes_sent();
  return total;
}

std::uint64_t InprocFabric::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& ep : endpoints_) total += ep->messages_sent();
  return total;
}

std::uint32_t InprocEndpoint::num_nodes() const {
  return fabric_->num_nodes();
}

bool InprocEndpoint::send(std::uint32_t dst,
                          std::vector<std::uint8_t>& payload) {
  GMT_DCHECK(dst < fabric_->num_nodes());
  const std::uint64_t now = wall_ns();
  const std::uint64_t size = payload.size();

  // Modelled delivery: the message starts when the link is free or now,
  // occupies the link for alpha + size/bandwidth, then arrives latency
  // later. link_free advances under a CAS so concurrent modelled sends on
  // the same link serialise correctly.
  const auto& model = fabric_->model_;
  const auto occupancy_ns =
      static_cast<std::uint64_t>(model.occupancy_s(size) * 1e9);
  const auto latency_ns = static_cast<std::uint64_t>(model.latency_s * 1e9);

  auto& link = fabric_->link_free_ns_[static_cast<std::size_t>(id_) *
                                          fabric_->num_nodes_ +
                                      dst];
  std::uint64_t free_at = link.load(std::memory_order_relaxed);
  std::uint64_t start, done;
  do {
    start = free_at > now ? free_at : now;
    done = start + occupancy_ns;
  } while (!link.compare_exchange_weak(free_at, done,
                                       std::memory_order_relaxed));

  auto msg = std::make_unique<InprocFabric::TimedMessage>();
  std::uint64_t jitter_ns = 0;
  if (model.jitter_s > 0) {
    // Deterministic hash of (src, dst, sequence) -> [0, jitter).
    std::uint64_t state = (static_cast<std::uint64_t>(id_) << 32) ^ dst ^
                          (msgs_sent_.load(std::memory_order_relaxed) *
                           0x9e3779b97f4a7c15ULL);
    state ^= state >> 33;
    state *= 0xff51afd7ed558ccdULL;
    state ^= state >> 33;
    jitter_ns = state % static_cast<std::uint64_t>(model.jitter_s * 1e9);
  }
  msg->deliver_at_ns = done + latency_ns + jitter_ns;
  msg->src = id_;
  msg->payload = std::move(payload);

  if (!fabric_->ring(id_, dst).push(msg.get())) {
    // Ring full: hand the payload back (the send contract preserves it on
    // backpressure). The link model keeps its pessimism; a retried send
    // will just queue behind.
    payload = std::move(msg->payload);
    return false;
  }
  msg.release();
  bytes_sent_.fetch_add(size, std::memory_order_relaxed);
  msgs_sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool InprocEndpoint::try_recv(InMessage* out) {
  // Pull everything already queued from the source rings into the pending
  // list (cheap — pointers), then deliver the first message whose modelled
  // arrival time has passed. Round-robin over sources for fairness.
  const std::uint32_t n = fabric_->num_nodes();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t src = (rr_cursor_ + i) % n;
    InprocFabric::TimedMessage* raw = nullptr;
    while (fabric_->ring(src, id_).pop(&raw)) {
      pending_.push_back(Pending{raw->deliver_at_ns,
                                 InMessage{raw->src, std::move(raw->payload)}});
      delete raw;
    }
  }
  rr_cursor_ = (rr_cursor_ + 1) % n;

  if (pending_.empty()) return false;
  const std::uint64_t now = wall_ns();
  // Messages from one source arrive in order; across sources we deliver any
  // due message (find first due — pending_ stays small in practice).
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->deliver_at_ns <= now) {
      *out = std::move(it->msg);
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace gmt::net
