// Transport abstraction.
//
// The paper's runtime sits on MPI point-to-point messaging; everything GMT
// needs from it is "move an opaque buffer from node A to node B, polled,
// non-blocking". Transport captures exactly that, so the runtime is
// oblivious to whether bytes travel over MPI, sockets, or the in-process
// fabric this repo substitutes for a physical cluster.
//
// Threading contract (mirrors the paper's single communication server):
// for a given endpoint, send() and try_recv() are each called by one thread
// at a time — the node's comm server. Different endpoints run concurrently.
#pragma once

#include <cstdint>
#include <vector>

namespace gmt::net {

struct InMessage {
  std::uint32_t src = 0;
  std::vector<std::uint8_t> payload;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::uint32_t node_id() const = 0;
  virtual std::uint32_t num_nodes() const = 0;

  // Non-blocking send attempt; false means backpressure (retry later).
  // On success the payload is consumed (moved from); on failure it is left
  // intact so the caller retries the same bytes without reallocating.
  // Self-sends (dst == node_id()) are legal and loop back through recv.
  virtual bool send(std::uint32_t dst, std::vector<std::uint8_t>& payload) = 0;

  // Convenience for temporaries; the payload is lost on backpressure, so
  // only callers that do not retry (tests, fire-and-forget) should use it.
  bool send(std::uint32_t dst, std::vector<std::uint8_t>&& payload) {
    return send(dst, payload);
  }

  // Non-blocking receive; false when nothing is deliverable yet.
  virtual bool try_recv(InMessage* out) = 0;

  // Bytes and messages sent by this endpoint (monotonic; for benches).
  virtual std::uint64_t bytes_sent() const = 0;
  virtual std::uint64_t messages_sent() const = 0;
};

}  // namespace gmt::net
