// Unix-domain-datagram transport.
//
// A second, real-kernel implementation of Transport: every node endpoint
// owns a SOCK_DGRAM AF_UNIX socket; sends are sendto() datagrams (message
// boundaries preserved, like MPI), receives are non-blocking recvfrom().
// Unlike the in-process fabric this pushes every aggregation buffer
// through the kernel — the closest a single machine gets to the paper's
// MPI byte path — and is the natural seam for a true multi-process
// deployment (each node in its own process binding its own socket).
//
// Datagram size is bounded by the kernel (typically ~208 KB default); the
// runtime's 64 KB aggregation buffers fit comfortably.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.hpp"

namespace gmt::net {

class UdsFabric;

class UdsEndpoint final : public Transport {
 public:
  using Transport::send;

  ~UdsEndpoint() override;

  std::uint32_t node_id() const override { return id_; }
  std::uint32_t num_nodes() const override;

  bool send(std::uint32_t dst, std::vector<std::uint8_t>& payload) override;
  bool try_recv(InMessage* out) override;

  std::uint64_t bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_sent() const override {
    return msgs_sent_.load(std::memory_order_relaxed);
  }

  // Torn/truncated datagrams detected and dropped by try_recv().
  std::uint64_t dropped_invalid() const {
    return dropped_invalid_.load(std::memory_order_relaxed);
  }

 private:
  friend class UdsFabric;
  UdsEndpoint(UdsFabric* fabric, std::uint32_t id);

  UdsFabric* fabric_;
  std::uint32_t id_;
  int fd_ = -1;
  std::vector<std::uint8_t> recv_buffer_;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> msgs_sent_{0};
  std::atomic<std::uint64_t> dropped_invalid_{0};
};

// Creates and owns the N sockets under a unique directory in $TMPDIR;
// unlinks them on destruction. Each datagram carries a 4-byte source-id
// header (AF_UNIX datagrams do not identify unbound senders portably).
class UdsFabric {
 public:
  explicit UdsFabric(std::uint32_t num_nodes);
  ~UdsFabric();

  UdsFabric(const UdsFabric&) = delete;
  UdsFabric& operator=(const UdsFabric&) = delete;

  std::uint32_t num_nodes() const { return num_nodes_; }
  UdsEndpoint* endpoint(std::uint32_t id);

  const std::string& socket_path(std::uint32_t id) const {
    return paths_[id];
  }

 private:
  friend class UdsEndpoint;

  const std::uint32_t num_nodes_;
  std::string directory_;
  std::vector<std::string> paths_;
  std::vector<std::unique_ptr<UdsEndpoint>> endpoints_;
};

}  // namespace gmt::net
