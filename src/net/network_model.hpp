// Parametric network cost model (LogP-style alpha-beta), calibrated against
// the paper's Olympus measurements.
//
// The paper's QDR InfiniBand numbers pin the model:
//   - small messages are per-message-overhead bound: 32-process MPI moves
//     9.63 MB/s at 16 B and 72.26 MB/s at 128 B — both ~0.6 M msgs/s, i.e.
//     ~1.7 us of NIC/stack occupancy per message regardless of size;
//   - large messages are bandwidth bound: 2815.01 MB/s at 64 KB.
// transfer_time(n) = alpha + n / bandwidth reproduces both regimes, and the
// economics that make aggregation win: 4096 16-byte commands cost 4096*alpha
// sent raw, but ~1*alpha + 64KB/B aggregated.
//
// The model is used three ways: (1) the discrete-event simulator charges it
// for every modelled message; (2) the in-process transport can inject the
// corresponding real delays so the threaded runtime experiences cluster-like
// latency; (3) the Table II bench evaluates it directly to regenerate the
// paper's MPI rate table.
#pragma once

#include <cstdint>

namespace gmt::net {

struct NetworkModel {
  // Per-message overhead (seconds): NIC + MPI stack occupancy. Calibrated
  // from the paper's small-message MPI rates.
  double alpha_s = 1.7e-6;

  // Effective link bandwidth (bytes/second). Calibrated so a 64 KB message
  // sustains the paper's 2815 MB/s.
  double bandwidth_Bps = 2.95e9;

  // One-way propagation latency (seconds): time before the first byte is
  // visible at the receiver, on top of occupancy. QDR IB end-to-end.
  double latency_s = 1.5e-6;

  // Deterministic per-message latency jitter bound (seconds). Nonzero
  // values make in-flight messages from different sources overtake each
  // other — a robustness knob for tests: GMT's completion protocol never
  // relies on cross-source ordering.
  double jitter_s = 0;

  // Time the link is occupied by a message of `bytes` payload.
  double occupancy_s(std::uint64_t bytes) const {
    return alpha_s + static_cast<double>(bytes) / bandwidth_Bps;
  }

  // End-to-end delivery time for an uncontended message.
  double delivery_s(std::uint64_t bytes) const {
    return occupancy_s(bytes) + latency_s;
  }

  // Steady-state transfer rate (bytes/second) for back-to-back messages of
  // a given size on one link — the quantity Table II and Fig. 2 report.
  double rate_Bps(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / occupancy_s(bytes);
  }

  // The paper's Olympus QDR InfiniBand calibration (default).
  static NetworkModel olympus();

  // Zero-cost model: in-process tests that want no injected delay.
  static NetworkModel instant();
};

// Models the paper's Table II MPI configurations. MPI with t threads per
// process funnels sends through a lock, capping message rate; p processes
// drive the NIC concurrently but share link occupancy. Effective per-message
// overhead scales as alpha * contention_factor.
struct MpiEndpointModel {
  NetworkModel link = NetworkModel::olympus();
  std::uint32_t processes = 1;     // concurrently sending ranks
  std::uint32_t threads = 1;       // threads inside one rank
  double thread_lock_penalty = 0.35e-6;  // per extra thread, per message
  double sender_sw_s = 1.2e-6;     // per-message MPI library cost in a rank

  // Aggregate transfer rate between two nodes for messages of `bytes`
  // (paper Table II rows).
  double aggregate_rate_Bps(std::uint64_t bytes) const;
};

}  // namespace gmt::net
