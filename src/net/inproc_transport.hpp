// In-process cluster fabric.
//
// Substitutes for the physical network: N node endpoints living in one OS
// process, connected by per-ordered-pair SPSC rings (each pair has exactly
// one producing comm server and one consuming comm server, so SPSC is
// sufficient and fast). An optional NetworkModel injects realistic delivery
// delays — per-message overhead, wire time and propagation latency — so the
// threaded runtime above experiences cluster-like timing: a message is
// visible to try_recv() only once its modelled delivery time has passed,
// and back-to-back messages on one link serialise on modelled occupancy.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "collections/spsc_ring.hpp"
#include "net/network_model.hpp"
#include "net/transport.hpp"

namespace gmt::net {

class InprocFabric;

class InprocEndpoint final : public Transport {
 public:
  using Transport::send;

  std::uint32_t node_id() const override { return id_; }
  std::uint32_t num_nodes() const override;

  bool send(std::uint32_t dst, std::vector<std::uint8_t>& payload) override;
  bool try_recv(InMessage* out) override;

  std::uint64_t bytes_sent() const override {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_sent() const override {
    return msgs_sent_.load(std::memory_order_relaxed);
  }

 private:
  friend class InprocFabric;
  InprocEndpoint(InprocFabric* fabric, std::uint32_t id)
      : fabric_(fabric), id_(id) {}

  InprocFabric* fabric_;
  std::uint32_t id_;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> msgs_sent_{0};

  // Messages popped from rings but not yet past their delivery deadline.
  struct Pending {
    std::uint64_t deliver_at_ns;
    InMessage msg;
  };
  std::deque<Pending> pending_;
  std::uint32_t rr_cursor_ = 0;  // fair round-robin over source rings
};

class InprocFabric {
 public:
  // `model` instant() means zero injected delay (pure functional fabric).
  InprocFabric(std::uint32_t num_nodes, NetworkModel model,
               std::size_t ring_capacity = 1024);
  ~InprocFabric();

  InprocFabric(const InprocFabric&) = delete;
  InprocFabric& operator=(const InprocFabric&) = delete;

  std::uint32_t num_nodes() const { return num_nodes_; }
  const NetworkModel& model() const { return model_; }

  // Endpoint for node `id`; owned by the fabric, valid for its lifetime.
  InprocEndpoint* endpoint(std::uint32_t id);

  // Total traffic across all endpoints.
  std::uint64_t total_bytes() const;
  std::uint64_t total_messages() const;

 private:
  friend class InprocEndpoint;

  struct TimedMessage {
    std::uint64_t deliver_at_ns;
    std::uint32_t src;
    std::vector<std::uint8_t> payload;
  };
  using Ring = SpscRing<TimedMessage*>;

  Ring& ring(std::uint32_t src, std::uint32_t dst) {
    return *rings_[static_cast<std::size_t>(src) * num_nodes_ + dst];
  }

  const std::uint32_t num_nodes_;
  const NetworkModel model_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<InprocEndpoint>> endpoints_;
  // Per ordered pair: modelled time the link becomes free (ns since epoch).
  std::vector<std::atomic<std::uint64_t>> link_free_ns_;
};

}  // namespace gmt::net
