// Fault-injecting Transport decorator.
//
// Wraps any Transport endpoint and perturbs its send path with seeded,
// per-message faults: drops, duplicates, single-bit payload corruption,
// cross-pair reordering (a message is held back while later sends — to any
// destination — overtake it) and transient backpressure. Every injected
// fault is counted, so tests can assert both that the reliability layer
// recovered and that the faults actually fired. Deterministic: the same
// seed and traffic produce the same fault schedule.
//
// Threading: follows the Transport contract — one thread (the node's comm
// server) calls send() and try_recv(); counters are atomics so other
// threads (tests, stats) may read them concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"

namespace gmt::net {

// Copyable snapshot of the injected-fault counters.
struct FaultCountersSnapshot {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t reorders = 0;
  std::uint64_t backpressures = 0;
  std::uint64_t kills = 0;  // messages swallowed after the peer-kill fired

  std::uint64_t total() const {
    return drops + duplicates + corruptions + reorders + backpressures +
           kills;
  }
  FaultCountersSnapshot& operator+=(const FaultCountersSnapshot& other) {
    drops += other.drops;
    duplicates += other.duplicates;
    corruptions += other.corruptions;
    reorders += other.reorders;
    backpressures += other.backpressures;
    kills += other.kills;
    return *this;
  }
};

struct FaultCounters {
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> corruptions{0};
  std::atomic<std::uint64_t> reorders{0};
  std::atomic<std::uint64_t> backpressures{0};
  std::atomic<std::uint64_t> kills{0};

  FaultCountersSnapshot snapshot() const {
    return FaultCountersSnapshot{drops.load(std::memory_order_relaxed),
                                 duplicates.load(std::memory_order_relaxed),
                                 corruptions.load(std::memory_order_relaxed),
                                 reorders.load(std::memory_order_relaxed),
                                 backpressures.load(std::memory_order_relaxed),
                                 kills.load(std::memory_order_relaxed)};
  }
  std::uint64_t total() const { return snapshot().total(); }
};

class FaultyTransport final : public Transport {
 public:
  using Transport::send;

  // Decorates `inner` (not owned; must outlive this object). The fault
  // stream is seeded from spec.seed and the endpoint id so each node draws
  // an independent, reproducible sequence.
  FaultyTransport(Transport* inner, const FaultInjection& spec);
  ~FaultyTransport() override;

  std::uint32_t node_id() const override { return inner_->node_id(); }
  std::uint32_t num_nodes() const override { return inner_->num_nodes(); }

  bool send(std::uint32_t dst, std::vector<std::uint8_t>& payload) override;
  bool try_recv(InMessage* out) override;

  std::uint64_t bytes_sent() const override { return inner_->bytes_sent(); }
  std::uint64_t messages_sent() const override {
    return inner_->messages_sent();
  }

  const FaultCounters& counters() const { return counters_; }
  const FaultInjection& spec() const { return spec_; }

  // Peer-kill state: true once this endpoint went dark, and the wall
  // timestamp when it did (0 while alive) — the anchor for detection-
  // latency measurements.
  bool killed() const { return killed_.load(std::memory_order_acquire); }
  std::uint64_t killed_ns() const {
    return killed_ns_.load(std::memory_order_acquire);
  }

 private:
  // A message held back for reordering: released once `countdown` later
  // sends passed it or its deadline expired.
  struct Held {
    std::uint32_t dst;
    std::vector<std::uint8_t> payload;
    std::uint64_t release_ns;
    std::uint32_t countdown;
  };

  bool roll(double probability);
  void release_held(std::uint64_t now_ns, bool force);

  Transport* inner_;
  FaultInjection spec_;
  FaultCounters counters_;
  Xoshiro256 rng_;
  std::deque<Held> held_;

  // Peer-kill fault: when this endpoint is the victim, after `kill_at`
  // sends it goes permanently dark — sends swallowed, receives drained and
  // discarded — modelling a fail-stop crash visible only as silence.
  bool kill_armed_ = false;
  std::uint64_t sends_before_kill_ = 0;
  std::atomic<bool> killed_{false};
  std::atomic<std::uint64_t> killed_ns_{0};
};

}  // namespace gmt::net
