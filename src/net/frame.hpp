// Reliable-delivery wire framing.
//
// When the reliability layer is enabled every transport message is a frame:
// a fixed header carrying magic/version, the sender id, a per-(src,dst)
// sequence number, a piggybacked cumulative ack for the reverse direction,
// the payload length and CRC32C checksums over header and payload. The
// header lets the receiver detect corruption and truncation, suppress
// duplicates, and reorder out-of-order arrivals; pure-ack frames have an
// empty payload. Aggregation buffers reserve kFrameHeaderSize bytes at the
// front so the comm server seals the header in place — framing never copies
// the payload.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/crc32.hpp"

namespace gmt::net {

inline constexpr std::uint32_t kFrameMagic = 0x474d5446;  // "GMTF"
inline constexpr std::uint8_t kFrameVersion = 1;

enum class FrameType : std::uint8_t {
  kData = 1,  // seq-numbered payload of aggregated commands
  kAck = 2,   // standalone cumulative ack, empty payload
  // Membership-layer control frames (src/runtime/membership). All carry a
  // live cumulative ack + credit like kAck, so they double as keepalive
  // traffic for the reliability layer.
  kHeartbeat = 3,     // empty payload; proves the sender is alive
  kEpochPropose = 4,  // payload: EpochPayload{epoch, members}
  kEpochAck = 5,      // payload: EpochPayload echoed by the accepting peer
};

// Payload of kEpochPropose / kEpochAck: the proposed epoch number and the
// surviving member set as a bitmask (bit n = node n lives; caps the
// membership layer at 64 nodes, far above the in-process fabric's reach).
struct EpochPayload {
  std::uint64_t epoch = 0;
  std::uint64_t members = 0;
};
static_assert(sizeof(EpochPayload) == 16, "epoch payload is 16 wire bytes");

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint8_t version = kFrameVersion;
  std::uint8_t type = 0;
  // Flow-control grant: the sender's cumulative count (mod 2^16) of
  // aggregation buffers its helpers have drained from this frame's
  // destination. Always 0 when flow control is off (the field's previous
  // reserved value), so the wire format is unchanged for old traffic.
  std::uint16_t credit = 0;
  std::uint32_t src = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t seq = 0;       // data frames; 0 for pure acks
  std::uint64_t ack = 0;       // cumulative: all reverse seqs <= ack received
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;  // over the preceding 36 bytes
};
static_assert(sizeof(FrameHeader) == 40, "frame header is 40 wire bytes");

inline constexpr std::size_t kFrameHeaderSize = sizeof(FrameHeader);

// Seals `header` into frame[0..kFrameHeaderSize): fills payload_len from
// the buffer size, computes both CRCs. The payload must already be in
// place after the header. `payload_crc` is only recomputed when
// `with_payload_crc` (retransmits reuse the stored value).
inline void seal_frame(std::vector<std::uint8_t>& frame, FrameHeader header) {
  header.payload_len =
      static_cast<std::uint32_t>(frame.size() - kFrameHeaderSize);
  header.payload_crc =
      crc32c(frame.data() + kFrameHeaderSize, header.payload_len);
  header.header_crc = crc32c(&header, kFrameHeaderSize - sizeof(std::uint32_t));
  std::memcpy(frame.data(), &header, kFrameHeaderSize);
}

// Refreshes the piggybacked cumulative ack — and the flow-control credit
// grant — of an already-sealed frame (used on every transmission so the
// peer sees our latest state; the stored payload CRC is untouched).
inline void refresh_frame_ack(std::vector<std::uint8_t>& frame,
                              std::uint64_t ack, std::uint16_t credit = 0) {
  FrameHeader header;
  std::memcpy(&header, frame.data(), kFrameHeaderSize);
  header.ack = ack;
  header.credit = credit;
  header.header_crc = crc32c(&header, kFrameHeaderSize - sizeof(std::uint32_t));
  std::memcpy(frame.data(), &header, kFrameHeaderSize);
}

// Validates magic, version, header CRC, declared length and payload CRC.
// Returns false (without touching `out`) on any mismatch — the frame was
// truncated, corrupted, or is not a frame at all.
inline bool parse_frame(const std::vector<std::uint8_t>& buf,
                        FrameHeader* out) {
  if (buf.size() < kFrameHeaderSize) return false;
  FrameHeader header;
  std::memcpy(&header, buf.data(), kFrameHeaderSize);
  if (header.magic != kFrameMagic || header.version != kFrameVersion)
    return false;
  if (crc32c(&header, kFrameHeaderSize - sizeof(std::uint32_t)) !=
      header.header_crc)
    return false;
  if (buf.size() != kFrameHeaderSize + header.payload_len) return false;
  if (crc32c(buf.data() + kFrameHeaderSize, header.payload_len) !=
      header.payload_crc)
    return false;
  *out = header;
  return true;
}

// Cheap length-only sanity check for transports that want to reject torn
// datagrams before the reliability layer sees them: true when `buf` starts
// with frame magic but its size contradicts the declared payload length.
inline bool frame_length_mismatch(const std::uint8_t* buf, std::size_t size) {
  if (size < kFrameHeaderSize) return false;
  std::uint32_t magic;
  std::uint32_t payload_len;
  std::memcpy(&magic, buf, 4);
  if (magic != kFrameMagic) return false;
  std::memcpy(&payload_len, buf + 12, 4);
  return size != kFrameHeaderSize + payload_len;
}

}  // namespace gmt::net
