#include "net/faulty_transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace gmt::net {

FaultyTransport::FaultyTransport(Transport* inner, const FaultInjection& spec)
    : inner_(inner),
      spec_(spec),
      rng_(spec.seed ^ (0x9e3779b97f4a7c15ULL *
                        (static_cast<std::uint64_t>(inner->node_id()) + 1))) {
  GMT_CHECK(inner != nullptr);
  kill_armed_ = spec.kill_node == inner->node_id();
}

FaultyTransport::~FaultyTransport() {
  // Flush stragglers so a message held for reordering is not lost outright
  // at teardown (best effort; inner backpressure here means it is).
  release_held(~0ULL, /*force=*/true);
}

bool FaultyTransport::roll(double probability) {
  return probability > 0 && rng_.uniform() < probability;
}

void FaultyTransport::release_held(std::uint64_t now_ns, bool force) {
  while (!held_.empty()) {
    Held& front = held_.front();
    if (!force && front.countdown > 0 && front.release_ns > now_ns) break;
    if (!inner_->send(front.dst, front.payload)) break;  // retry next call
    held_.pop_front();
  }
}

bool FaultyTransport::send(std::uint32_t dst,
                          std::vector<std::uint8_t>& payload) {
  const std::uint64_t now = wall_ns();
  if (kill_armed_) {
    if (!killed_.load(std::memory_order_relaxed) &&
        sends_before_kill_++ >= spec_.kill_at) {
      killed_ns_.store(now, std::memory_order_release);
      killed_.store(true, std::memory_order_release);
      held_.clear();  // in-flight reorder holds die with the node
    }
    if (killed_.load(std::memory_order_relaxed)) {
      counters_.kills.fetch_add(1, std::memory_order_relaxed);
      payload.clear();  // swallowed: the victim's traffic never leaves
      return true;
    }
  }
  for (Held& held : held_) {
    if (held.countdown > 0) --held.countdown;
  }
  release_held(now, /*force=*/false);

  if (roll(spec_.backpressure)) {
    counters_.backpressures.fetch_add(1, std::memory_order_relaxed);
    return false;  // payload intact: caller sees transient backpressure
  }
  if (roll(spec_.drop)) {
    counters_.drops.fetch_add(1, std::memory_order_relaxed);
    payload.clear();  // swallowed: reported as sent, never delivered
    return true;
  }
  if (!payload.empty() && roll(spec_.corrupt)) {
    const std::uint64_t bit = rng_.below(payload.size() * 8);
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    counters_.corruptions.fetch_add(1, std::memory_order_relaxed);
  }
  if (roll(spec_.duplicate)) {
    std::vector<std::uint8_t> copy = payload;
    if (inner_->send(dst, copy))
      counters_.duplicates.fetch_add(1, std::memory_order_relaxed);
  }
  if (roll(spec_.reorder)) {
    held_.push_back(Held{dst, std::move(payload),
                         now + spec_.reorder_hold_ns, spec_.reorder_depth});
    counters_.reorders.fetch_add(1, std::memory_order_relaxed);
    payload.clear();
    return true;
  }
  return inner_->send(dst, payload);
}

bool FaultyTransport::try_recv(InMessage* out) {
  if (kill_armed_ && killed_.load(std::memory_order_relaxed)) {
    // The dead node hears nothing: drain and discard whatever peers still
    // send so the fabric's queues don't fill against a corpse.
    InMessage sink;
    while (inner_->try_recv(&sink)) {
    }
    return false;
  }
  // Time-based release also happens here so a held message is not stranded
  // when the sender goes quiet.
  release_held(wall_ns(), /*force=*/false);
  return inner_->try_recv(out);
}

}  // namespace gmt::net
