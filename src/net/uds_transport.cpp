#include "net/uds_transport.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "net/frame.hpp"

namespace gmt::net {

namespace {

// Largest datagram we attempt; the runtime's buffers stay below this.
constexpr std::size_t kMaxDatagram = 192 * 1024;

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  GMT_CHECK_MSG(path.size() < sizeof(addr.sun_path), "socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UdsFabric::UdsFabric(std::uint32_t num_nodes) : num_nodes_(num_nodes) {
  GMT_CHECK(num_nodes >= 1);
  const char* tmp = std::getenv("TMPDIR");
  char tmpl[256];
  std::snprintf(tmpl, sizeof(tmpl), "%s/gmt-uds-XXXXXX",
                tmp && *tmp ? tmp : "/tmp");
  GMT_CHECK_MSG(mkdtemp(tmpl) != nullptr, "mkdtemp for UDS sockets failed");
  directory_ = tmpl;

  paths_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    paths_.push_back(directory_ + "/node" + std::to_string(i) + ".sock");

  endpoints_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i)
    endpoints_.push_back(
        std::unique_ptr<UdsEndpoint>(new UdsEndpoint(this, i)));
}

UdsFabric::~UdsFabric() {
  endpoints_.clear();  // closes fds first
  for (const std::string& path : paths_) ::unlink(path.c_str());
  ::rmdir(directory_.c_str());
}

UdsEndpoint* UdsFabric::endpoint(std::uint32_t id) {
  GMT_CHECK(id < num_nodes_);
  return endpoints_[id].get();
}

UdsEndpoint::UdsEndpoint(UdsFabric* fabric, std::uint32_t id)
    : fabric_(fabric), id_(id), recv_buffer_(kMaxDatagram + 8) {
  fd_ = ::socket(AF_UNIX, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  GMT_CHECK_MSG(fd_ >= 0, "AF_UNIX socket() failed");
  // Generous kernel buffers: the comm server may burst many 64 KB
  // datagrams before the receiver drains.
  const int size = 4 << 20;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &size, sizeof(size));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &size, sizeof(size));
  const sockaddr_un addr = make_addr(fabric->socket_path(id));
  GMT_CHECK_MSG(::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "bind on UDS socket failed");
}

UdsEndpoint::~UdsEndpoint() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint32_t UdsEndpoint::num_nodes() const { return fabric_->num_nodes(); }

bool UdsEndpoint::send(std::uint32_t dst, std::vector<std::uint8_t>& payload) {
  GMT_CHECK_MSG(payload.size() <= kMaxDatagram,
                "payload exceeds UDS datagram bound");
  // Prefix the source id (datagram senders are anonymous on AF_UNIX).
  std::uint8_t header[4];
  std::memcpy(header, &id_, 4);
  iovec iov[2] = {{header, 4}, {payload.data(), payload.size()}};
  sockaddr_un addr = make_addr(fabric_->socket_path(dst));
  msghdr msg{};
  msg.msg_name = &addr;
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;

  ssize_t sent;
  do {
    sent = ::sendmsg(fd_, &msg, 0);
  } while (sent < 0 && errno == EINTR);
  if (sent < 0) {
    // Receiver's buffer full (or not yet draining): backpressure. The
    // payload stays with the caller per the send contract.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS)
      return false;
    GMT_CHECK_MSG(false, "UDS sendmsg failed");
  }
  // A datagram socket never short-writes a datagram that fit; a short
  // count here means the kernel truncated — treat as a hard error.
  GMT_CHECK_MSG(static_cast<std::size_t>(sent) == payload.size() + 4,
                "UDS short write (datagram truncated by kernel)");
  bytes_sent_.fetch_add(payload.size(), std::memory_order_relaxed);
  msgs_sent_.fetch_add(1, std::memory_order_relaxed);
  payload.clear();
  return true;
}

bool UdsEndpoint::try_recv(InMessage* out) {
  for (;;) {
    // MSG_TRUNC makes recv() return the datagram's true length even when
    // it exceeds the buffer, so oversized/torn datagrams are detectable.
    ssize_t got;
    do {
      got = ::recv(fd_, recv_buffer_.data(), recv_buffer_.size(), MSG_TRUNC);
    } while (got < 0 && errno == EINTR);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      GMT_CHECK_MSG(false, "UDS recv failed");
    }
    if (static_cast<std::size_t>(got) > recv_buffer_.size() || got < 4) {
      // Truncated by the kernel or missing the source header: a torn
      // datagram. Drop it (the reliability layer retransmits) instead of
      // delivering bytes that would desynchronise command parsing.
      dropped_invalid_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::uint8_t* body = recv_buffer_.data() + 4;
    const std::size_t body_size = static_cast<std::size_t>(got) - 4;
    if (frame_length_mismatch(body, body_size)) {
      // Starts with frame magic but the declared payload length contradicts
      // the datagram size: torn mid-frame. Same recovery as above.
      dropped_invalid_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::memcpy(&out->src, recv_buffer_.data(), 4);
    out->payload.assign(body, body + body_size);
    return true;
  }
}

}  // namespace gmt::net
