// Actor runtime: per-node mailbox table, sender-side windows, and the
// delivery machinery behind include/gmt/actor.hpp.
//
// The layer adds no transport of its own. A send is one kActorMsg command
// through the regular emit path — command blocks, aggregation buffers,
// combining table bypass (actor messages are never combined: they carry
// unique sequence numbers), credit flow control, reliable delivery,
// membership tracking — and one kActorAck back. What the layer does own:
//
//  - *Sequencing.* Helpers execute different aggregation buffers
//    concurrently, so two messages from one sender can reach deliver() out
//    of order. Each sender stamps a per-(destination, mailbox) sequence
//    number (aux1); the receiver holds early arrivals in a small ordered
//    map and releases runs of consecutive numbers. RecvState outlives
//    mailbox registration so the sequence survives register/unregister
//    races without gaps.
//  - *Single drainer per mailbox.* The first message queued on an idle
//    mailbox schedules one delivery task (a pooled iteration block on the
//    O(1) scheduler); that task drains the ready deque and re-arms itself
//    in batches, so handlers for one mailbox never run concurrently —
//    which is what makes handler state lock-free by construction.
//  - *Processed-not-enqueued acks.* The ack that opens the sender's window
//    is sent *after* the handler ran, so GMT_ACTOR_MAILBOX_DEPTH bounds
//    unprocessed messages, not merely undelivered bytes.
//  - *Window parking.* A sender at the window limit parks on the
//    aggregator's stall-ticket list (the same latency-hiding suspension
//    credit exhaustion uses); note_ack wakes the stalled tasks. Liveness
//    is rechecked before every park so a window held open by a dead peer
//    resolves through the membership death sweep instead of wedging.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gmt/actor.hpp"
#include "obs/metrics.hpp"
#include "runtime/command.hpp"
#include "runtime/task.hpp"

namespace gmt::rt {

class Node;
class Worker;
class AggregationSlot;

// Registry-backed actor counters (same discipline as NodeStats).
struct ActorStats {
  obs::Counter sent;          // kActorMsg commands issued from this node
  obs::Counter delivered;     // handler invocations on this node
  obs::Counter acks;          // delivery acks produced (incl. NO_ACTOR nacks)
  obs::Counter replies;       // acks that carried handler reply bytes
  obs::Counter sender_parks;  // sends that parked on a full window
  obs::Counter drains;        // delivery-task activations
  obs::Counter no_mailbox;    // messages rejected: no such actor id here
  obs::Gauge queued;          // messages buffered (held + ready) right now

  void bind(obs::Registry& reg);
};

// One node's actor layer; owned by Node, constructed with it.
class ActorRuntime {
 public:
  explicit ActorRuntime(Node* node);

  // ---- sender side (task context on this node) ----

  // Issues one kActorMsg toward (dst, id) under `token` (a task or future
  // token, already counted by the caller). Blocks — by parking the calling
  // task — while this node's window toward (dst, id) is full. `reply` /
  // `reply_cap` name the sender-local buffer the handler's reply() bytes
  // land in (0 = no reply expected).
  void send(Worker& w, std::uint32_t dst, std::uint64_t id, const void* data,
            std::uint32_t size, void* reply, std::uint32_t reply_cap,
            std::uint64_t token);

  // ---- receiver side ----

  bool register_mailbox(std::uint64_t id, actor::Handler fn, void* ctx);
  bool unregister_mailbox(std::uint64_t id);

  // Entry point for an arriving kActorMsg (called by helpers, and by the
  // local fast path in send()). Sequences, queues, and schedules the
  // mailbox's delivery task; nacks unregistered ids.
  void deliver(AggregationSlot& slot, const CmdHeader& cmd,
               const std::uint8_t* payload, std::uint32_t src);

  // Window bookkeeping for an arriving kActorAck from `src` (runs before
  // the token-echo completion, whether or not the echo is stale).
  void note_ack(std::uint32_t src, std::uint64_t id);

  // True when no delivery task is outstanding and no message is buffered.
  // (Non-const: also sweeps resequencing state left by dead senders.)
  bool idle();

  std::uint32_t mailbox_depth() const { return depth_; }
  ActorStats& stats() { return stats_; }

 private:
  // A message the receiver owns (payload copied out of the aggregation
  // buffer; the buffer recycles long before the handler runs).
  struct OwnedMsg {
    std::vector<std::uint8_t> bytes;
    std::uint64_t token = 0;       // sender's completion token (echoed)
    std::uint64_t reply_addr = 0;  // sender-local reply buffer (0 = none)
    std::uint32_t reply_cap = 0;
    std::uint32_t src = 0;
  };

  struct Mailbox {
    actor::Handler fn = nullptr;
    void* ctx = nullptr;
    // Registration generation: delivery tasks carry it, so a drainer armed
    // for a mailbox that was unregistered and re-registered under the same
    // id dies instead of racing the new mailbox's drainer.
    std::uint64_t gen = 0;
    std::deque<OwnedMsg> ready;  // in delivery order
    bool draining = false;       // a delivery task is scheduled/running
  };

  // Receiver-side resequencing per (sender node, mailbox id). Kept outside
  // Mailbox: sequence state must survive unregister/register cycles or a
  // re-registered mailbox would wait forever for numbers that were nacked.
  struct RecvState {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, OwnedMsg> held;  // early arrivals, by seq
  };

  // Sender-side window per (destination node, mailbox id). Node-stable:
  // created under send_mu_, then referenced without it (the maps only
  // grow; std::map nodes never move).
  struct SendState {
    std::atomic<std::uint32_t> inflight{0};
    std::atomic<std::uint64_t> next_seq{0};
  };

  using Key = std::pair<std::uint32_t, std::uint64_t>;

  SendState& send_state(std::uint32_t dst, std::uint64_t id);

  // Queues one in-order message (mu_ held): pushes onto the mailbox and
  // arms its drainer, or records a NO_ACTOR nack into `nacks`.
  void dispatch_locked(std::uint64_t id, OwnedMsg&& msg,
                       std::vector<OwnedMsg>* nacks);

  // Schedules the mailbox's delivery task (mu_ held, draining already set).
  void schedule_drain_locked(std::uint64_t id, std::uint64_t gen);
  static void drain_entry(std::uint64_t iter, const void* raw_args);
  void drain(Worker& w, std::uint64_t id, std::uint64_t gen);

  // Epoch-lazy sweep (mu_ held): a dead sender can never fill its sequence
  // gaps, so release everything it managed to land (in sequence order,
  // skipping the gaps) instead of holding it — and the node's quiescence —
  // forever.
  void purge_dead_locked();

  // Acks `msg` back to its sender with `status`; `reply` (may be null) is
  // the handler's staged reply bytes. Local senders complete in place.
  void send_ack(AggregationSlot& slot, const OwnedMsg& msg, std::uint64_t id,
                std::uint32_t status, const std::vector<std::uint8_t>* reply);

  Node* node_;
  const std::uint32_t depth_;
  ActorStats stats_;

  // Completion anchor for delivery tasks: each scheduled drain holds one
  // pending_ops count here (wake stays null — nothing ever parks on it),
  // so idle() can see "no delivery task outstanding" in O(1).
  Task anchor_;

  // Messages buffered on this node (held + ready), for idle().
  std::atomic<std::int64_t> buffered_{0};

  mutable std::mutex mu_;  // guards mailboxes_, recv_, and the two below
  std::unordered_map<std::uint64_t, Mailbox> mailboxes_;
  std::map<Key, RecvState> recv_;
  std::uint64_t mailbox_gen_ = 0;  // registration counter (see Mailbox::gen)
  std::uint64_t seen_epoch_ = 0;   // last membership epoch swept

  std::mutex send_mu_;  // guards send_states_ growth only
  std::map<Key, SendState> send_states_;
};

}  // namespace gmt::rt
