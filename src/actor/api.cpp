// Public actor API (gmt/actor.hpp): thin dispatch from the calling worker
// thread to its node's ActorRuntime, plus the token plumbing that decides
// who observes a send's completion (a future cell, or the task itself).
#include "gmt/actor.hpp"

#include "actor/mailbox.hpp"
#include "common/assert.hpp"
#include "runtime/node.hpp"

namespace gmt::actor {

namespace {

rt::Worker& current_worker() {
  rt::Worker* worker = rt::Worker::current();
  GMT_CHECK_MSG(worker != nullptr && worker->current_task() != nullptr,
                "GMT actor API called outside a task context");
  return *worker;
}

}  // namespace

bool register_mailbox(std::uint64_t id, Handler fn, void* ctx) {
  return current_worker().node().actors().register_mailbox(id, fn, ctx);
}

bool unregister_mailbox(std::uint64_t id) {
  return current_worker().node().actors().unregister_mailbox(id);
}

Future send(std::uint32_t node, std::uint64_t id, const void* data,
            std::uint32_t size) {
  return call(node, id, data, size, nullptr, 0);
}

Future call(std::uint32_t node, std::uint64_t id, const void* data,
            std::uint32_t size, void* reply, std::uint32_t reply_capacity) {
  rt::Worker& w = current_worker();
  rt::FutureCell* cell = w.acquire_future_cell();
  cell->pending.fetch_add(1, std::memory_order_relaxed);
  w.node().stats().futures_issued.add();
  w.node().actors().send(w, node, id, data, size, reply, reply_capacity,
                         rt::future_token(cell));
  return Future{rt::future_token(cell)};
}

void post(std::uint32_t node, std::uint64_t id, const void* data,
          std::uint32_t size) {
  rt::Worker& w = current_worker();
  rt::Task* task = w.current_task();
  task->pending_ops.fetch_add(1, std::memory_order_relaxed);
  w.node().actors().send(w, node, id, data, size, /*reply=*/nullptr,
                         /*reply_cap=*/0, rt::task_token(task));
}

bool idle() { return current_worker().node().actors().idle(); }

std::uint32_t max_message_bytes() {
  return current_worker().node().max_payload();
}

}  // namespace gmt::actor
