#include "actor/mailbox.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "gmt/error.hpp"
#include "runtime/node.hpp"

namespace gmt::actor {

void Message::reply(const void* bytes, std::uint32_t n) const {
  if (reply_out_ == nullptr || reply_cap_ == 0) return;  // sender: no reply
  GMT_CHECK_MSG(n <= reply_cap_, "actor reply larger than caller's buffer");
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  reply_out_->assign(p, p + n);
}

}  // namespace gmt::actor

namespace gmt::rt {

namespace {

// Messages one delivery-task activation processes before re-arming itself
// at the back of the scheduler, so a hot mailbox shares its worker.
constexpr std::uint32_t kDrainBatch = 128;

struct DrainArgs {
  ActorRuntime* rt;
  std::uint64_t id;
  std::uint64_t gen;
};

}  // namespace

void ActorStats::bind(obs::Registry& reg) {
  sent = reg.counter(obs::names::kActorSent);
  delivered = reg.counter(obs::names::kActorDelivered);
  acks = reg.counter(obs::names::kActorAcks);
  replies = reg.counter(obs::names::kActorReplies);
  sender_parks = reg.counter(obs::names::kActorParks);
  drains = reg.counter(obs::names::kActorDrains);
  no_mailbox = reg.counter(obs::names::kActorNoMailbox);
  queued = reg.gauge(obs::names::kActorQueued);
}

ActorRuntime::ActorRuntime(Node* node)
    : node_(node), depth_(node->config().actor_mailbox_depth) {
  stats_.bind(node->obs());
}

ActorRuntime::SendState& ActorRuntime::send_state(std::uint32_t dst,
                                                  std::uint64_t id) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return send_states_[Key{dst, id}];
}

void ActorRuntime::send(Worker& w, std::uint32_t dst, std::uint64_t id,
                        const void* data, std::uint32_t size, void* reply,
                        std::uint32_t reply_cap, std::uint64_t token) {
  GMT_CHECK_MSG(dst < node_->num_nodes(), "actor send: node out of range");
  GMT_CHECK_MSG(size <= node_->max_payload(), "actor message too large");
  GMT_CHECK_MSG(reply_cap <= node_->max_payload(),
                "actor reply buffer larger than a command payload");
  stats_.sent.add();
  SendState& st = send_state(dst, id);

  CmdHeader cmd;
  cmd.op = Op::kActorMsg;
  cmd.handle = id;
  cmd.token = token;
  cmd.offset = reinterpret_cast<std::uint64_t>(reply);
  cmd.aux2 = reply_cap;
  cmd.payload_size = size;

  // Claim one window slot toward (dst, id); park (not spin) while full.
  // Liveness is rechecked each round: if dst died, skip the window — the
  // emit below fails the token through the membership path, and a window
  // wedged open by the corpse's unacked slots must not trap the sender.
  for (;;) {
    if (!node_->node_is_live(dst)) break;
    std::uint32_t cur = st.inflight.load(std::memory_order_acquire);
    if (cur < depth_) {
      if (st.inflight.compare_exchange_weak(cur, cur + 1,
                                            std::memory_order_acq_rel))
        break;
      continue;
    }
    stats_.sender_parks.add();
    if (!node_->aggregator().park_for_stall(&cmd)) w.task_yield();
  }

  // Sequence after the window claim: the receiver releases messages in
  // sequence order, so a number must not be assigned to a send that could
  // still park behind a smaller unassigned one.
  cmd.aux1 = st.next_seq.fetch_add(1, std::memory_order_relaxed);
  if (dst == node_->id())
    deliver(w.agg_slot(), cmd, static_cast<const std::uint8_t*>(data),
            node_->id());
  else
    node_->emit(w.agg_slot(), dst, cmd, data);
}

bool ActorRuntime::register_mailbox(std::uint64_t id, actor::Handler fn,
                                    void* ctx) {
  GMT_CHECK_MSG(fn != nullptr, "actor mailbox needs a handler");
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = mailboxes_.try_emplace(id);
  if (!inserted) return false;
  it->second.fn = fn;
  it->second.ctx = ctx;
  it->second.gen = ++mailbox_gen_;
  return true;
}

bool ActorRuntime::unregister_mailbox(std::uint64_t id) {
  std::vector<OwnedMsg> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = mailboxes_.find(id);
    if (it == mailboxes_.end()) return false;
    for (auto& m : it->second.ready) orphans.push_back(std::move(m));
    mailboxes_.erase(it);
  }
  if (!orphans.empty()) {
    Worker* w = Worker::current();
    GMT_CHECK_MSG(w != nullptr,
                  "unregister_mailbox with queued messages outside a worker");
    for (auto& m : orphans) {
      buffered_.fetch_sub(1, std::memory_order_relaxed);
      stats_.queued.dec();
      stats_.no_mailbox.add();
      send_ack(w->agg_slot(), m, id, GMT_ERR_NO_ACTOR, nullptr);
    }
  }
  return true;
}

void ActorRuntime::deliver(AggregationSlot& slot, const CmdHeader& cmd,
                           const std::uint8_t* payload, std::uint32_t src) {
  OwnedMsg msg;
  msg.bytes.assign(payload, payload + cmd.payload_size);
  msg.token = cmd.token;
  msg.reply_addr = cmd.offset;
  msg.reply_cap = static_cast<std::uint32_t>(cmd.aux2);
  msg.src = src;

  std::vector<OwnedMsg> nacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    purge_dead_locked();
    RecvState& rs = recv_[Key{src, cmd.handle}];
    if (cmd.aux1 > rs.expected) {
      // Early arrival (helpers execute buffers concurrently): hold until
      // the gap fills.
      buffered_.fetch_add(1, std::memory_order_relaxed);
      stats_.queued.inc();
      rs.held.emplace(cmd.aux1, std::move(msg));
    } else if (cmd.aux1 == rs.expected) {
      rs.expected++;
      dispatch_locked(cmd.handle, std::move(msg), &nacks);
      // Release the run of consecutive numbers this arrival unblocked.
      auto it = rs.held.begin();
      while (it != rs.held.end() && it->first == rs.expected) {
        rs.expected++;
        buffered_.fetch_sub(1, std::memory_order_relaxed);
        stats_.queued.dec();
        dispatch_locked(cmd.handle, std::move(it->second), &nacks);
        it = rs.held.erase(it);
      }
    }
    // aux1 < expected cannot happen without duplicate delivery, which the
    // reliability layer already suppresses; drop defensively.
  }
  for (const OwnedMsg& m : nacks) {
    stats_.no_mailbox.add();
    send_ack(slot, m, cmd.handle, GMT_ERR_NO_ACTOR, nullptr);
  }
}

void ActorRuntime::dispatch_locked(std::uint64_t id, OwnedMsg&& msg,
                                   std::vector<OwnedMsg>* nacks) {
  auto it = mailboxes_.find(id);
  if (it == mailboxes_.end()) {
    nacks->push_back(std::move(msg));
    return;
  }
  Mailbox& mb = it->second;
  mb.ready.push_back(std::move(msg));
  buffered_.fetch_add(1, std::memory_order_relaxed);
  stats_.queued.inc();
  if (!mb.draining) {
    mb.draining = true;
    schedule_drain_locked(id, mb.gen);
  }
}

void ActorRuntime::purge_dead_locked() {
  const std::uint64_t epoch = node_->membership_epoch();
  if (epoch == seen_epoch_) return;
  seen_epoch_ = epoch;
  std::vector<OwnedMsg> nacks;
  for (auto& [key, rs] : recv_) {
    if (rs.held.empty() || node_->node_is_live(key.first)) continue;
    for (auto& [seq, held] : rs.held) {
      rs.expected = seq + 1;
      buffered_.fetch_sub(1, std::memory_order_relaxed);
      stats_.queued.dec();
      dispatch_locked(key.second, std::move(held), &nacks);
    }
    rs.held.clear();
  }
  // The nack targets are exactly the dead senders — nothing to tell them.
  for (std::size_t i = 0; i < nacks.size(); ++i) stats_.no_mailbox.add();
}

void ActorRuntime::schedule_drain_locked(std::uint64_t id, std::uint64_t gen) {
  anchor_.pending_ops.fetch_add(1, std::memory_order_relaxed);
  IterBlock* itb = node_->acquire_itb();
  itb->fn = &ActorRuntime::drain_entry;
  itb->chunk = 1;
  itb->begin = 0;
  itb->end = 1;
  itb->origin_node = node_->id();
  itb->token = task_token(&anchor_);
  const DrainArgs args{this, id, gen};
  itb->set_args(&args, sizeof(args));
  GMT_CHECK_MSG(node_->itb_queue().push(itb), "itb queue overflow");
}

void ActorRuntime::drain_entry(std::uint64_t, const void* raw_args) {
  DrainArgs a;
  std::memcpy(&a, raw_args, sizeof(a));
  a.rt->drain(*Worker::current(), a.id, a.gen);
}

void ActorRuntime::drain(Worker& w, std::uint64_t id, std::uint64_t gen) {
  stats_.drains.add();
  std::vector<std::uint8_t> reply;
  std::uint32_t processed = 0;
  for (;;) {
    OwnedMsg msg;
    actor::Handler fn = nullptr;
    void* ctx = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = mailboxes_.find(id);
      // The mailbox this drainer was armed for is gone (unregistered, and
      // possibly re-registered — the new registration arms its own).
      if (it == mailboxes_.end() || it->second.gen != gen) return;
      Mailbox& mb = it->second;
      if (mb.ready.empty()) {
        mb.draining = false;
        return;
      }
      if (processed >= kDrainBatch) {
        // Re-arm at the back of the scheduler instead of monopolising
        // this worker; `draining` stays true for the successor.
        schedule_drain_locked(id, gen);
        return;
      }
      msg = std::move(mb.ready.front());
      mb.ready.pop_front();
      fn = mb.fn;
      ctx = mb.ctx;
    }
    ++processed;
    reply.clear();
    actor::Message m;
    m.src = msg.src;
    m.data = msg.bytes.data();
    m.size = static_cast<std::uint32_t>(msg.bytes.size());
    m.reply_out_ = &reply;
    m.reply_cap_ = msg.reply_cap;
    fn(ctx, m);
    stats_.delivered.add();
    buffered_.fetch_sub(1, std::memory_order_relaxed);
    stats_.queued.dec();
    send_ack(w.agg_slot(), msg, id, GMT_ERR_OK, &reply);
  }
}

void ActorRuntime::send_ack(AggregationSlot& slot, const OwnedMsg& msg,
                            std::uint64_t id, std::uint32_t status,
                            const std::vector<std::uint8_t>* reply) {
  stats_.acks.add();
  const bool has_reply = status == GMT_ERR_OK && reply != nullptr &&
                         !reply->empty() && msg.reply_addr != 0;
  if (has_reply) stats_.replies.add();
  if (msg.src == node_->id()) {
    // Local sender: open its window and complete its token in place.
    note_ack(msg.src, id);
    if (has_reply)
      std::memcpy(reinterpret_cast<void*>(msg.reply_addr), reply->data(),
                  reply->size());
    if (status != GMT_ERR_OK)
      complete_one_error(msg.token, status);
    else
      complete_one(msg.token);
    return;
  }
  CmdHeader ack;
  ack.op = Op::kActorAck;
  ack.handle = id;
  ack.token = msg.token;
  ack.aux1 = has_reply ? msg.reply_addr : 0;
  ack.aux2 = status;
  ack.payload_size =
      has_reply ? static_cast<std::uint32_t>(reply->size()) : 0;
  node_->emit(slot, msg.src, ack, has_reply ? reply->data() : nullptr);
}

void ActorRuntime::note_ack(std::uint32_t src, std::uint64_t id) {
  SendState& st = send_state(src, id);
  // Floor-guarded: a slot leaked by a send that raced the death sweep must
  // not let a late ack underflow the window.
  std::uint32_t cur = st.inflight.load(std::memory_order_acquire);
  while (cur != 0 && !st.inflight.compare_exchange_weak(
                         cur, cur - 1, std::memory_order_acq_rel)) {
  }
  node_->aggregator().wake_stalled();
}

bool ActorRuntime::idle() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    purge_dead_locked();
  }
  return anchor_.pending_ops.load(std::memory_order_acquire) == 0 &&
         buffered_.load(std::memory_order_acquire) == 0;
}

}  // namespace gmt::rt
