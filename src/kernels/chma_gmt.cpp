#include "kernels/chma_gmt.hpp"

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace gmt::kernels {

namespace {

struct PopulateArgs {
  hash::DistHashMap map;
  gmt_handle pool;
};

void populate_body(std::uint64_t i, const void* raw) {
  PopulateArgs args;
  std::memcpy(&args, raw, sizeof(args));
  hash::StringKey key;
  gmt_get(args.pool, i * sizeof(hash::StringKey), &key, sizeof(key));
  args.map.insert(key);
}

struct AccessArgs {
  hash::DistHashMap map;
  gmt_handle pool;
  std::uint64_t pool_size;
  gmt_handle counters;  // [0] accesses
  std::uint64_t steps;
  std::uint64_t seed;
};

void access_body(std::uint64_t task, const void* raw) {
  AccessArgs args;
  std::memcpy(&args, raw, sizeof(args));
  Xoshiro256 rng(args.seed ^ (task * 0xbf58476d1ce4e5b9ULL));

  std::uint64_t accesses = 0;
  hash::StringKey current;
  gmt_get(args.pool, rng.below(args.pool_size) * sizeof(current), &current,
          sizeof(current));
  for (std::uint64_t step = 0; step < args.steps; ++step) {
    if (args.map.contains(current)) {
      current.reverse();
      args.map.insert(current);
    } else {
      gmt_get(args.pool, rng.below(args.pool_size) * sizeof(current),
              &current, sizeof(current));
    }
    ++accesses;
  }
  gmt_atomic_add(args.counters, 0, accesses, 8);
}

}  // namespace

ChmaWorkload ChmaWorkload::setup(std::uint64_t map_capacity,
                                 std::uint64_t pool_size,
                                 std::uint64_t populate, std::uint64_t seed) {
  ChmaWorkload workload;
  workload.map = hash::DistHashMap::create(map_capacity);
  workload.pool_size = pool_size;
  workload.pool =
      gmt_new(pool_size * sizeof(hash::StringKey), Alloc::kPartition);

  // Upload the deterministic pool, then insert the first `populate` keys in
  // parallel from all nodes.
  const std::vector<hash::StringKey> host_pool =
      hash::generate_pool(pool_size, seed);
  gmt_put(workload.pool, 0, host_pool.data(),
          pool_size * sizeof(hash::StringKey));

  PopulateArgs args{workload.map, workload.pool};
  if (populate)
    gmt_parfor(populate, 0, &populate_body, &args, sizeof(args),
               Spawn::kPartition);
  return workload;
}

void ChmaWorkload::destroy() {
  map.destroy();
  if (pool != kNullHandle) gmt_free(pool);
  pool = kNullHandle;
  pool_size = 0;
}

ChmaResult chma_gmt(const ChmaWorkload& workload, std::uint64_t tasks,
                    std::uint64_t steps, std::uint64_t seed) {
  AccessArgs args;
  args.map = workload.map;
  args.pool = workload.pool;
  args.pool_size = workload.pool_size;
  args.counters = gmt_new(8, Alloc::kLocal);
  args.steps = steps;
  args.seed = seed;

  ChmaResult result;
  result.tasks = tasks;
  result.steps_per_task = steps;

  StopWatch watch;
  gmt_parfor(tasks, 1, &access_body, &args, sizeof(args), Spawn::kPartition);
  result.seconds = watch.elapsed_s();
  gmt_get(args.counters, 0, &result.accesses, 8);
  gmt_free(args.counters);
  return result;
}

}  // namespace gmt::kernels
