// Graph Random Walk, GMT programming model (paper §V-C).
//
// W walker tasks each start at a distinct source vertex and take L steps;
// every step reads the current vertex's adjacency bounds and one random
// neighbour id from the global graph — three fine-grained remote reads per
// step, the paper's archetype of unpredictable single-word traffic.
#pragma once

#include <cstdint>

#include "graph/dist_graph.hpp"

namespace gmt::kernels {

struct GrwResult {
  std::uint64_t walkers = 0;
  std::uint64_t steps_per_walker = 0;
  std::uint64_t edges_traversed = 0;
  double seconds = 0;

  double mteps() const {
    return seconds > 0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                       : 0;
  }
};

// Must be called from inside a GMT task. Walker w starts at vertex
// (w * stride) % V; dead ends teleport to a seeded random vertex.
GrwResult grw_gmt(const graph::DistGraph& graph, std::uint64_t walkers,
                  std::uint64_t length, std::uint64_t seed = 42);

}  // namespace gmt::kernels
