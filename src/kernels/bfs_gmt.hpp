// Breadth-First Search over a distributed graph, GMT programming model
// (paper §V-B).
//
// Level-synchronous, queue-based — the same structure as the paper's
// XMT/GMT codes: a parallel loop over the current frontier; every neighbour
// is claimed with an atomic CAS on its parent word; winners append to the
// next frontier through an atomic counter. Fine-grained single-word global
// accesses throughout; the runtime's aggregation and multithreading are
// what make it scale.
#pragma once

#include <cstdint>

#include "graph/dist_graph.hpp"

namespace gmt::kernels {

struct BfsResult {
  std::uint64_t visited = 0;          // vertices reached (incl. root)
  std::uint64_t edges_traversed = 0;  // adjacency entries examined
  std::uint64_t levels = 0;
  double seconds = 0;

  double mteps() const {
    return seconds > 0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                       : 0;
  }
};

// Runs BFS from `root`. Must be called from inside a GMT task. `chunk` is
// the parfor chunk size (0 = runtime default).
BfsResult bfs_gmt(const graph::DistGraph& graph, std::uint64_t root,
                  std::uint64_t chunk = 0);

}  // namespace gmt::kernels
