#include "kernels/pagerank_gmt.hpp"

#include <cstring>

#include "common/time.hpp"

namespace gmt::kernels {

namespace {

constexpr double kFixedOne = 4294967296.0;  // 2^32

struct PrArgs {
  graph::DistGraph graph;
  gmt_handle cur;      // current ranks (Q32.32)
  gmt_handle next;     // next ranks being accumulated
  gmt_handle dangling; // [0]: sum of dangling-vertex rank (Q32.32)
  std::uint64_t base;  // teleport+dangling base term for this iteration
};

void init_body(std::uint64_t v, const void* raw) {
  PrArgs args;
  std::memcpy(&args, raw, sizeof(args));
  const std::uint64_t uniform =
      static_cast<std::uint64_t>(kFixedOne / args.graph.vertices);
  gmt_put_value_nb(args.cur, v * 8, uniform, 8);
}

void scatter_body(std::uint64_t v, const void* raw) {
  PrArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t begin = 0, end = 0;
  args.graph.edge_range(v, &begin, &end);
  std::uint64_t rank;
  gmt_get(args.cur, v * 8, &rank, 8);
  if (begin == end) {
    // Dangling: the rank redistributes uniformly next round.
    gmt_atomic_add(args.dangling, 0, rank, 8);
    return;
  }
  const std::uint64_t share = rank / (end - begin);
  std::uint64_t buffer[256];
  for (std::uint64_t e = begin; e < end; e += 256) {
    const std::uint64_t n = end - e < 256 ? end - e : 256;
    args.graph.neighbors(e, n, buffer);
    for (std::uint64_t k = 0; k < n; ++k)
      gmt_atomic_add(args.next, buffer[k] * 8, share, 8);
  }
  gmt_wait_commands();
}

void apply_body(std::uint64_t v, const void* raw) {
  // next[v] = base + damping * next[v]; damping folded in by the caller
  // via fixed-point multiply on read-back is awkward remotely, so the
  // scatter already distributed damped shares and `base` carries the
  // teleport + dangling terms.
  PrArgs args;
  std::memcpy(&args, raw, sizeof(args));
  gmt_atomic_add(args.next, v * 8, args.base, 8);
}

void zero_body(std::uint64_t v, const void* raw) {
  PrArgs args;
  std::memcpy(&args, raw, sizeof(args));
  gmt_put_value_nb(args.next, v * 8, 0, 8);
}

void damp_body(std::uint64_t v, const void* raw) {
  // Scale cur[v] by the damping factor before scattering (fixed point).
  PrArgs args;
  std::memcpy(&args, raw, sizeof(args));
  std::uint64_t rank;
  gmt_get(args.cur, v * 8, &rank, 8);
  // base field reused as the damping factor in Q32.32.
  const std::uint64_t damped = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(rank) * args.base) >> 32);
  gmt_put_value(args.cur, v * 8, damped, 8);
}

}  // namespace

PagerankResult pagerank_gmt(const graph::DistGraph& graph,
                            std::uint32_t iterations, double damping) {
  PrArgs args;
  args.graph = graph;
  args.cur = gmt_new(graph.vertices * 8, Alloc::kPartition);
  args.next = gmt_new(graph.vertices * 8, Alloc::kPartition);
  args.dangling = gmt_new(8, Alloc::kPartition);

  PagerankResult result;
  StopWatch watch;
  gmt_parfor(graph.vertices, 0, &init_body, &args, sizeof(args),
             Spawn::kPartition);

  const auto damping_fixed =
      static_cast<std::uint64_t>(damping * kFixedOne);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    ++result.iterations;
    gmt_put_value(args.dangling, 0, 0, 8);
    gmt_parfor(graph.vertices, 0, &zero_body, &args, sizeof(args),
               Spawn::kPartition);
    // Damp in place, scatter shares, then add the base term.
    args.base = damping_fixed;
    gmt_parfor(graph.vertices, 0, &damp_body, &args, sizeof(args),
               Spawn::kPartition);
    gmt_parfor(graph.vertices, 0, &scatter_body, &args, sizeof(args),
               Spawn::kPartition);
    std::uint64_t dangling = 0;
    gmt_get(args.dangling, 0, &dangling, 8);
    // Teleport + dangling redistribution, uniform per vertex.
    args.base = static_cast<std::uint64_t>(
                    (1.0 - damping) * kFixedOne / graph.vertices) +
                dangling / graph.vertices;
    gmt_parfor(graph.vertices, 0, &apply_body, &args, sizeof(args),
               Spawn::kPartition);
    std::swap(args.cur, args.next);
  }
  result.seconds = watch.elapsed_s();
  result.ranks = args.cur;
  gmt_free(args.next);
  gmt_free(args.dangling);
  return result;
}

}  // namespace gmt::kernels
